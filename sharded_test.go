package znscache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"znscache/internal/sim"
)

func TestOpenShardedValidation(t *testing.T) {
	if _, err := OpenSharded(ShardedConfig{Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := OpenSharded(ShardedConfig{Config: Config{Zones: 2}, Shards: 8}); err == nil {
		t.Fatal("more shards than zones accepted")
	}
}

func TestOpenShardedBasic(t *testing.T) {
	c, err := OpenSharded(ShardedConfig{
		Config: Config{Zones: 24, TrackValues: true},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.NumShards() != 4 {
		t.Fatalf("NumShards = %d", c.NumShards())
	}
	const keys = 500
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("user:%04d", i)
		if err := c.Set(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != keys {
		t.Fatalf("Len = %d, want %d", c.Len(), keys)
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("user:%04d", i)
		v, ok, err := c.Get(k)
		if err != nil || !ok || string(v) != k {
			t.Fatalf("Get(%s) = %q, %v, %v", k, v, ok, err)
		}
	}
	if !c.Delete("user:0000") || c.Contains("user:0000") {
		t.Fatal("delete through the sharded facade failed")
	}
	st := c.Stats()
	if st.Sets != keys || st.Hits != keys {
		t.Fatalf("merged stats Sets=%d Hits=%d, want %d each", st.Sets, st.Hits, keys)
	}
	if st.WriteAmplification < 1 {
		t.Fatalf("WA = %v < 1", st.WriteAmplification)
	}
	if c.SimulatedTime() <= 0 {
		t.Fatal("simulated time did not advance")
	}
}

func TestOpenShardedTTLThroughFacade(t *testing.T) {
	c, err := OpenSharded(ShardedConfig{Config: Config{Zones: 8}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetWithTTL("ephemeral", nil, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if !c.Contains("ephemeral") {
		t.Fatal("item absent before TTL")
	}
	// Advance every shard clock past the TTL (the key's shard owns the
	// deadline, but advancing all is simplest and exercises independence).
	for i := 0; i < c.NumShards(); i++ {
		c.Rig(i).Clock.Advance(5 * time.Second)
	}
	if c.Contains("ephemeral") {
		t.Fatal("Contains sees a TTL-expired item through the sharded facade")
	}
	if _, ok, _ := c.Get("ephemeral"); ok {
		t.Fatal("Get sees a TTL-expired item")
	}
}

// TestShardedDeleteContains pins the facade-level semantics of Delete and
// Contains on the sharded cache: present, absent, re-set, and deleted keys,
// with keys spread over every shard so the per-shard routing is exercised,
// not just one engine.
func TestShardedDeleteContains(t *testing.T) {
	c, err := OpenSharded(ShardedConfig{
		Config: Config{Zones: 16, TrackValues: true},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	// Pick one key per shard so every engine sees each path.
	keys := make([]string, c.NumShards())
	filled := 0
	for i := 0; filled < len(keys); i++ {
		k := fmt.Sprintf("dc:%04d", i)
		if keys[c.ShardFor(k)] == "" {
			keys[c.ShardFor(k)] = k
			filled++
		}
	}
	for _, k := range keys {
		if c.Contains(k) {
			t.Fatalf("Contains(%q) true before Set", k)
		}
		if c.Delete(k) {
			t.Fatalf("Delete(%q) true before Set", k)
		}
		if err := c.Set(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
		if !c.Contains(k) {
			t.Fatalf("Contains(%q) false after Set", k)
		}
		if !c.Delete(k) {
			t.Fatalf("Delete(%q) false for a present key", k)
		}
		if c.Contains(k) {
			t.Fatalf("Contains(%q) true after Delete", k)
		}
		if c.Delete(k) {
			t.Fatalf("second Delete(%q) returned true", k)
		}
		// A re-set key is fully alive again.
		if err := c.Set(k, []byte("again")); err != nil {
			t.Fatal(err)
		}
		if !c.Contains(k) {
			t.Fatalf("Contains(%q) false after re-Set", k)
		}
	}
	if st := c.Stats(); st.Deletes == 0 {
		t.Fatal("merged stats recorded no deletes")
	}
}

// TestShardedContainsTTLExpiry covers the TTL paths of Contains and Delete
// through the sharded facade, advancing only the owning shard's simulated
// clock: expiry is a per-shard-clock fact, and the other shards' items must
// be unaffected.
func TestShardedContainsTTLExpiry(t *testing.T) {
	c, err := OpenSharded(ShardedConfig{Config: Config{Zones: 16}, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	const victim = "ttl:victim"
	const bystander = "ttl:bystander-on-another-shard"
	if c.ShardFor(victim) == c.ShardFor(bystander) {
		t.Fatalf("test keys landed on the same shard %d; pick different keys", c.ShardFor(victim))
	}
	if err := c.SetWithTTL(victim, nil, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.SetWithTTL(bystander, nil, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(victim) || !c.Contains(bystander) {
		t.Fatal("items absent before TTL")
	}

	// Advance only the victim's shard clock past the TTL.
	c.Rig(c.ShardFor(victim)).Clock.Advance(5 * time.Second)
	if c.Contains(victim) {
		t.Fatal("Contains sees a TTL-expired item")
	}
	if !c.Contains(bystander) {
		t.Fatal("expiry on one shard clock leaked into another shard")
	}
	// Contains lazily removed the expired entry, so Delete now misses.
	if c.Delete(victim) {
		t.Fatal("Delete found a key Contains already expired")
	}
	st := c.Stats()
	if want := c.Len(); want != 1 {
		t.Fatalf("Len = %d after expiry, want 1", want)
	}
	_ = st
}

// TestShardedCloseReopen is the warm-roll contract: Close snapshots every
// shard, Reopen rebuilds the engines over the same simulated devices, and
// the reopened cache serves the pre-shutdown contents.
func TestShardedCloseReopen(t *testing.T) {
	c, err := OpenSharded(ShardedConfig{
		Config: Config{Zones: 8, TrackValues: true},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 64
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("persist:%03d", i)
		if err := c.Set(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain()
	before := c.Len()

	if _, err := c.Reopen(); err == nil {
		t.Fatal("Reopen succeeded on an open cache")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if got := len(c.Snapshots()); got != 2 {
		t.Fatalf("Snapshots count = %d, want 2", got)
	}
	if err := c.Set("late", []byte("x")); err != ErrClosed {
		t.Fatalf("Set after Close = %v, want ErrClosed", err)
	}

	r, err := c.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Len(); got != before {
		t.Fatalf("reopened Len = %d, want %d", got, before)
	}
	hits := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("persist:%03d", i)
		v, ok, err := r.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			hits++
			if string(v) != k {
				t.Fatalf("reopened Get(%q) = %q", k, v)
			}
		}
	}
	// Sealed regions survive; only the open region's DRAM buffer may drop.
	if hits < keys/2 {
		t.Fatalf("only %d/%d keys survived the warm roll", hits, keys)
	}
	// The reopened cache keeps serving writes.
	if err := r.Set("after-roll", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := r.Get("after-roll"); !ok {
		t.Fatal("reopened cache dropped a fresh write")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// replayFacade drives a seeded mixed workload with one goroutine per shard,
// each applying only its shard's slice of the stream.
func replayFacade(t *testing.T, c *ShardedCache, seed uint64, ops int) Stats {
	t.Helper()
	var wg sync.WaitGroup
	for shard := 0; shard < c.NumShards(); shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			rng := sim.NewRand(seed)
			for i := 0; i < ops; i++ {
				kind := rng.Intn(10)
				k := fmt.Sprintf("obj:%05d", rng.Intn(3000))
				if c.ShardFor(k) != shard {
					continue
				}
				switch kind {
				case 0:
					c.Delete(k)
				case 1, 2, 3:
					if err := c.SetSized(k, 8192); err != nil {
						t.Errorf("Set: %v", err)
						return
					}
				default:
					if _, _, err := c.Get(k); err != nil {
						t.Errorf("Get: %v", err)
						return
					}
				}
			}
		}(shard)
	}
	wg.Wait()
	c.Drain()
	return c.Stats()
}

// TestOpenShardedDeterminism is the facade-level acceptance check: same
// seed, same shard count, concurrent replay — identical merged stats.
func TestOpenShardedDeterminism(t *testing.T) {
	build := func() *ShardedCache {
		// Cache smaller than the 3000-key working set so eviction and zone
		// GC run during the replay, not just the fill path.
		c, err := OpenSharded(ShardedConfig{
			Config: Config{Zones: 16, CacheBytes: 16 << 20},
			Shards: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a := replayFacade(t, build(), 99, 30_000)
	b := replayFacade(t, build(), 99, 30_000)
	if a != b {
		t.Fatalf("same-seed runs diverged:\n  run1: %+v\n  run2: %+v", a, b)
	}
	if a.Evictions == 0 {
		t.Fatal("replay produced no evictions; shrink the cache so the test covers eviction")
	}
}
