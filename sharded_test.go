package znscache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"znscache/internal/sim"
)

func TestOpenShardedValidation(t *testing.T) {
	if _, err := OpenSharded(ShardedConfig{Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := OpenSharded(ShardedConfig{Config: Config{Zones: 2}, Shards: 8}); err == nil {
		t.Fatal("more shards than zones accepted")
	}
}

func TestOpenShardedBasic(t *testing.T) {
	c, err := OpenSharded(ShardedConfig{
		Config: Config{Zones: 24, TrackValues: true},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.NumShards() != 4 {
		t.Fatalf("NumShards = %d", c.NumShards())
	}
	const keys = 500
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("user:%04d", i)
		if err := c.Set(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != keys {
		t.Fatalf("Len = %d, want %d", c.Len(), keys)
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("user:%04d", i)
		v, ok, err := c.Get(k)
		if err != nil || !ok || string(v) != k {
			t.Fatalf("Get(%s) = %q, %v, %v", k, v, ok, err)
		}
	}
	if !c.Delete("user:0000") || c.Contains("user:0000") {
		t.Fatal("delete through the sharded facade failed")
	}
	st := c.Stats()
	if st.Sets != keys || st.Hits != keys {
		t.Fatalf("merged stats Sets=%d Hits=%d, want %d each", st.Sets, st.Hits, keys)
	}
	if st.WriteAmplification < 1 {
		t.Fatalf("WA = %v < 1", st.WriteAmplification)
	}
	if c.SimulatedTime() <= 0 {
		t.Fatal("simulated time did not advance")
	}
}

func TestOpenShardedTTLThroughFacade(t *testing.T) {
	c, err := OpenSharded(ShardedConfig{Config: Config{Zones: 8}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetWithTTL("ephemeral", nil, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if !c.Contains("ephemeral") {
		t.Fatal("item absent before TTL")
	}
	// Advance every shard clock past the TTL (the key's shard owns the
	// deadline, but advancing all is simplest and exercises independence).
	for i := 0; i < c.NumShards(); i++ {
		c.Rig(i).Clock.Advance(5 * time.Second)
	}
	if c.Contains("ephemeral") {
		t.Fatal("Contains sees a TTL-expired item through the sharded facade")
	}
	if _, ok, _ := c.Get("ephemeral"); ok {
		t.Fatal("Get sees a TTL-expired item")
	}
}

// replayFacade drives a seeded mixed workload with one goroutine per shard,
// each applying only its shard's slice of the stream.
func replayFacade(t *testing.T, c *ShardedCache, seed uint64, ops int) Stats {
	t.Helper()
	var wg sync.WaitGroup
	for shard := 0; shard < c.NumShards(); shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			rng := sim.NewRand(seed)
			for i := 0; i < ops; i++ {
				kind := rng.Intn(10)
				k := fmt.Sprintf("obj:%05d", rng.Intn(3000))
				if c.ShardFor(k) != shard {
					continue
				}
				switch kind {
				case 0:
					c.Delete(k)
				case 1, 2, 3:
					if err := c.SetSized(k, 8192); err != nil {
						t.Errorf("Set: %v", err)
						return
					}
				default:
					if _, _, err := c.Get(k); err != nil {
						t.Errorf("Get: %v", err)
						return
					}
				}
			}
		}(shard)
	}
	wg.Wait()
	c.Drain()
	return c.Stats()
}

// TestOpenShardedDeterminism is the facade-level acceptance check: same
// seed, same shard count, concurrent replay — identical merged stats.
func TestOpenShardedDeterminism(t *testing.T) {
	build := func() *ShardedCache {
		// Cache smaller than the 3000-key working set so eviction and zone
		// GC run during the replay, not just the fill path.
		c, err := OpenSharded(ShardedConfig{
			Config: Config{Zones: 16, CacheBytes: 16 << 20},
			Shards: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a := replayFacade(t, build(), 99, 30_000)
	b := replayFacade(t, build(), 99, 30_000)
	if a != b {
		t.Fatalf("same-seed runs diverged:\n  run1: %+v\n  run2: %+v", a, b)
	}
	if a.Evictions == 0 {
		t.Fatal("replay produced no evictions; shrink the cache so the test covers eviction")
	}
}
