// Command loadgen benchmarks a memcached-protocol server (cmd/cacheserver or
// real memcached) with pipelined connections and a zipf-skewed get/set/delete
// mix. Two modes:
//
//   - closed loop (default): every connection keeps its pipeline full, so
//     achieved QPS is the server's ceiling at that concurrency.
//   - open loop (-qps): batches are sent on a fixed schedule and latency is
//     measured from the scheduled time, so a slow server accrues queueing
//     delay instead of silently slowing the clients (coordinated omission).
//
// The summary prints achieved QPS with p50/p99/p999 latency; -json writes a
// BENCH_serve.json report in the harness schema.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"

	"znscache/internal/harness"
	"znscache/internal/server"
	"znscache/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:11211", "server address")
		conns    = flag.Int("conns", 8, "concurrent connections")
		pipeline = flag.Int("pipeline", 8, "requests in flight per connection")
		ops      = flag.Uint64("ops", 0, "total operation budget (0: run for -duration)")
		duration = flag.Duration("duration", 3*time.Second, "run length when -ops is 0")
		qps      = flag.Float64("qps", 0, "target rate for open-loop mode (0: closed loop)")
		keys     = flag.Int64("keys", 65536, "key-space size")
		theta    = flag.Float64("theta", 0, "zipf skew (0: workload default)")
		getPct   = flag.Int("get-pct", 0, "get share of the mix in percent (0: workload default 50/30/20)")
		setPct   = flag.Int("set-pct", 0, "set share of the mix in percent")
		delPct   = flag.Int("del-pct", 0, "delete share of the mix in percent")
		seed     = flag.Uint64("seed", 1, "workload seed")
		fill     = flag.Bool("fill", true, "set the key after a get miss (read-through fill)")
		exptime  = flag.Int64("exptime", 0, "exptime on every set: <=30d relative TTL seconds, larger is absolute unix time, 0 no expiry")
		multiget = flag.Int("multiget", 0, "group up to N consecutive gets into one multi-key get (<=1 disables)")
		sizes    = flag.String("value-sizes", "", "comma-separated object sizes in bytes (default 512,1024,4096,8192,16384)")
		weights  = flag.String("value-weights", "", "comma-separated weights matching -value-sizes")
		valdist  = flag.String("valdist", "", "continuous value-size distribution, e.g. pareto:1.2:4096:1048576 (alpha:min:max bytes); overrides -value-sizes")
		jsonDir  = flag.String("json", "", "write a BENCH_serve.json report into this directory")
		progress = flag.Duration("progress", 0, "print a one-line readout (ops/s, p50/p99) every interval and record the per-interval timeline in the -json report (0 disables)")
		gogc     = flag.Int("gogc", 400, "GC target percentage (SetGCPercent); 0 leaves the runtime default")
	)
	flag.Parse()

	if *gogc > 0 {
		// The generator's steady-state allocation rate is low (interned
		// keys, reused buffers); a high GC target keeps collection cycles
		// from perturbing the latency measurement.
		debug.SetGCPercent(*gogc)
	}

	valueSizes, err := parseInts(*sizes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: -value-sizes: %v\n", err)
		os.Exit(1)
	}
	valueWeights, err := parseInts(*weights)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: -value-weights: %v\n", err)
		os.Exit(1)
	}
	valueDist, err := workload.ParseSizeDist(*valdist)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: -valdist: %v\n", err)
		os.Exit(1)
	}

	res, err := server.Run(server.LoadConfig{
		Addr:         *addr,
		Conns:        *conns,
		Pipeline:     *pipeline,
		Ops:          *ops,
		Duration:     *duration,
		TargetQPS:    *qps,
		Keys:         *keys,
		Theta:        *theta,
		GetPct:       *getPct,
		SetPct:       *setPct,
		DelPct:       *delPct,
		ValueSizes:   valueSizes,
		ValueWeights: valueWeights,
		ValueDist:    valueDist,
		Seed:         *seed,
		FillOnMiss:   *fill,
		Exptime:      *exptime,
		Multiget:     *multiget,
		Progress:     *progress,
		ProgressW:    os.Stderr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("mode=%s conns=%d pipeline=%d", res.Mode, res.Conns, res.Pipeline)
	if res.TargetQPS > 0 {
		fmt.Printf(" target=%.0f/s", res.TargetQPS)
	}
	fmt.Printf("\nops=%d (get=%d set=%d del=%d fill=%d) errors=%d\n",
		res.Ops, res.Gets, res.Sets, res.Deletes, res.Fills, res.Errors)
	fmt.Printf("achieved %.0f ops/s over %v, hit ratio %.4f\n",
		res.AchievedQPS, res.Elapsed.Round(time.Millisecond), res.HitRatio())
	l := res.Latency
	fmt.Printf("latency p50=%v p90=%v p99=%v p999=%v mean=%v max=%v\n",
		l.P50, l.P90, l.P99, l.P999, l.Mean, l.Max)
	if res.Multiget > 1 && len(res.GetBatchSizes) > 0 {
		fmt.Printf("get batch sizes (multiget=%d):", res.Multiget)
		for n := 1; n <= res.Multiget; n++ {
			if c, ok := res.GetBatchSizes[n]; ok {
				fmt.Printf(" %d×%d", n, c)
			}
		}
		fmt.Println()
	}
	if len(res.ValueSizeBuckets) > 0 {
		buckets := make([]int, 0, len(res.ValueSizeBuckets))
		for b := range res.ValueSizeBuckets {
			buckets = append(buckets, b)
		}
		sort.Ints(buckets)
		fmt.Printf("set value sizes (pow2 buckets):")
		for _, b := range buckets {
			fmt.Printf(" ≤%s×%d", sizeLabel(b), res.ValueSizeBuckets[b])
		}
		fmt.Println()
	}

	if *jsonDir != "" {
		rep := harness.NewServeReport([]harness.ServeRowJSON{toRow(res)})
		path, err := rep.WriteFile(*jsonDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if res.Errors > 0 {
		os.Exit(2)
	}
}

// sizeLabel renders a power-of-two byte count compactly (4096 -> "4K").
func sizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return strconv.Itoa(n>>20) + "M"
	case n >= 1<<10 && n%(1<<10) == 0:
		return strconv.Itoa(n>>10) + "K"
	default:
		return strconv.Itoa(n)
	}
}

// parseInts splits a comma-separated list of positive integers.
func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// toRow converts a load result to the report wire form.
func toRow(r *server.LoadResult) harness.ServeRowJSON {
	return harness.ServeRowJSON{
		Mode:             r.Mode,
		Conns:            r.Conns,
		Pipeline:         r.Pipeline,
		TargetQPS:        r.TargetQPS,
		AchievedQPS:      r.AchievedQPS,
		Ops:              r.Ops,
		Gets:             r.Gets,
		Sets:             r.Sets,
		Deletes:          r.Deletes,
		Hits:             r.Hits,
		Misses:           r.Misses,
		Fills:            r.Fills,
		Errors:           r.Errors,
		HitRatio:         r.HitRatio(),
		ElapsedNs:        r.Elapsed.Nanoseconds(),
		P50Ns:            r.Latency.P50.Nanoseconds(),
		P90Ns:            r.Latency.P90.Nanoseconds(),
		P99Ns:            r.Latency.P99.Nanoseconds(),
		P999Ns:           r.Latency.P999.Nanoseconds(),
		MeanNs:           r.Latency.Mean.Nanoseconds(),
		MaxNs:            r.Latency.Max.Nanoseconds(),
		Multiget:         r.Multiget,
		GetBatchSizes:    r.GetBatchSizes,
		ValueSizeBuckets: r.ValueSizeBuckets,
		Timeline:         toTimeline(r.Timeline),
	}
}

// toTimeline converts the interval series to wire form (nil when progress
// sampling was off, so the report field is omitted).
func toTimeline(ts []server.IntervalStat) []harness.ServeIntervalJSON {
	if len(ts) == 0 {
		return nil
	}
	out := make([]harness.ServeIntervalJSON, len(ts))
	for i, t := range ts {
		out[i] = harness.ServeIntervalJSON{
			TNs:   t.T.Nanoseconds(),
			Ops:   t.Ops,
			QPS:   t.QPS,
			P50Ns: t.P50.Nanoseconds(),
			P99Ns: t.P99.Nanoseconds(),
		}
	}
	return out
}
