// Command zonectl builds a simulated ZNS device, optionally exercises it,
// and prints a zone report — a small introspection tool in the spirit of
// the Linux blkzone utility, for poking at the model's zone state machine.
//
//	zonectl -zones 8 -zone-mib 16 -exercise seq    # fill a few zones
//	zonectl -zones 8 -exercise churn               # fill/reset cycles
//	zonectl -zones 8 -exercise cache               # run a Region-Cache on top
//	zonectl -top 127.0.0.1:9090                    # live serving dashboard
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"znscache/internal/device"
	"znscache/internal/flash"
	"znscache/internal/harness"
	"znscache/internal/obs"
	"znscache/internal/workload"
	"znscache/internal/zns"
)

func main() {
	var (
		zones       = flag.Int("zones", 8, "zone count")
		zoneMiB     = flag.Int("zone-mib", 16, "zone size in MiB")
		exercise    = flag.String("exercise", "seq", "seq|churn|cache|none")
		ops         = flag.Int("ops", 50_000, "cache exercise op count")
		watch       = flag.Int("watch", 0, "print N per-zone snapshots (from the metrics registry) during the exercise")
		top         = flag.String("top", "", "live dashboard: poll HOST:PORT/metrics (a cacheserver's -metrics-addr) and render serving headlines in place")
		topInterval = flag.Duration("top-interval", 2*time.Second, "dashboard poll interval for -top")
	)
	flag.Parse()

	if *top != "" {
		err := obs.RunTop(obs.TopConfig{
			URL:      "http://" + *top + "/metrics",
			Interval: *topInterval,
			Out:      os.Stdout,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "zonectl:", err)
			os.Exit(1)
		}
		return
	}

	hw := harness.DefaultHW(*zones)
	hw.BlocksPerZone = *zoneMiB

	switch *exercise {
	case "cache":
		if err := cacheExercise(hw, *ops, *watch); err != nil {
			fmt.Fprintln(os.Stderr, "zonectl:", err)
			os.Exit(1)
		}
		return
	case "seq", "churn", "none":
	default:
		fmt.Fprintf(os.Stderr, "unknown exercise %q\n", *exercise)
		os.Exit(2)
	}

	dev, err := zns.New(zns.Config{
		Geometry:      hw.Geometry(),
		Timing:        flash.DefaultTiming(),
		BlocksPerZone: hw.BlocksPerZone,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "zonectl:", err)
		os.Exit(1)
	}
	w := newWatcher(*watch, dev.ZoneSize())
	if w != nil {
		dev.MetricsInto(w.reg, obs.L("rig", "0"))
	}

	switch *exercise {
	case "seq":
		// Fill the first half of the zones sequentially.
		n := dev.NumZones() / 2
		for z := 0; z < n; z++ {
			if _, err := dev.Write(0, nil, int(dev.ZoneSize()), int64(z)*dev.ZoneSize()); err != nil {
				fmt.Fprintln(os.Stderr, "zonectl: write:", err)
				os.Exit(1)
			}
			w.maybe(z, n)
		}
	case "churn":
		// Three fill/reset laps over every zone.
		for lap := 0; lap < 3; lap++ {
			for z := 0; z < dev.NumZones(); z++ {
				if _, err := dev.Write(0, nil, int(dev.ZoneSize()), int64(z)*dev.ZoneSize()); err != nil {
					fmt.Fprintln(os.Stderr, "zonectl: write:", err)
					os.Exit(1)
				}
				if _, err := dev.Reset(0, z); err != nil {
					fmt.Fprintln(os.Stderr, "zonectl: reset:", err)
					os.Exit(1)
				}
				w.maybe(lap*dev.NumZones()+z, 3*dev.NumZones())
			}
		}
	}
	report(dev)
}

// watcher prints periodic per-zone snapshots sourced from the metrics
// registry — the same zns_zone_* gauges a live /metrics scrape would see —
// rather than from the device directly, so watch output and exposition can
// never disagree.
type watcher struct {
	reg      *obs.Registry
	zoneSize int64
	want     int
	printed  int
}

// newWatcher returns nil when n snapshots were not requested; a nil watcher's
// maybe is a no-op, so call sites need no guards.
func newWatcher(n int, zoneSize int64) *watcher {
	if n <= 0 {
		return nil
	}
	return &watcher{reg: obs.NewRegistry(), zoneSize: zoneSize, want: n}
}

// maybe emits a snapshot when step i of total crosses the next of the n
// evenly spaced sample points.
func (w *watcher) maybe(i, total int) {
	if w == nil || total <= 0 {
		return
	}
	due := (i + 1) * w.want / total
	if due <= w.printed {
		return
	}
	w.printed = due
	w.dump(i+1, total)
}

// dump renders one compact per-zone line: a state glyph per zone
// (E=empty O=open C=closed F=full, grouped by 8) plus aggregate occupancy
// and reset totals read from the gauges.
func (w *watcher) dump(i, total int) {
	type zrow struct {
		state, wp, resets float64
	}
	rows := map[int]*zrow{}
	maxZone := -1
	for _, s := range w.reg.Gather() {
		zl := s.Labels.Get("zone")
		if zl == "" {
			continue
		}
		z, err := strconv.Atoi(zl)
		if err != nil {
			continue
		}
		r := rows[z]
		if r == nil {
			r = &zrow{}
			rows[z] = r
		}
		if z > maxZone {
			maxZone = z
		}
		switch s.Name {
		case "zns_zone_state":
			r.state = s.Value
		case "zns_zone_wp_bytes":
			r.wp = s.Value
		case "zns_zone_reset_count":
			r.resets = s.Value
		}
	}
	glyphs := []byte{'E', 'O', 'C', 'F'}
	var line []byte
	var wp, resets float64
	for z := 0; z <= maxZone; z++ {
		if z > 0 && z%8 == 0 {
			line = append(line, ' ')
		}
		g := byte('?')
		if r := rows[z]; r != nil {
			if s := int(r.state); s >= 0 && s < len(glyphs) {
				g = glyphs[s]
			}
			wp += r.wp
			resets += r.resets
		}
		line = append(line, g)
	}
	occ := 0.0
	if maxZone >= 0 && w.zoneSize > 0 {
		occ = wp / (float64(maxZone+1) * float64(w.zoneSize)) * 100
	}
	fmt.Printf("watch %d/%d [%s] occupancy %5.1f%%  resets %.0f\n",
		i, total, line, occ, resets)
}

func report(dev *zns.Device) {
	fmt.Printf("device: %d zones × %d MiB = %d MiB, max %d open zones\n",
		dev.NumZones(), dev.ZoneSize()>>20, dev.Size()>>20, dev.MaxOpenZones())
	fmt.Printf("%-6s %-8s %12s %8s\n", "zone", "state", "wp", "resets")
	for _, z := range dev.Zones() {
		fmt.Printf("%-6d %-8s %12d %8d\n", z.Index, z.State, z.WP, z.Resets)
	}
	fmt.Printf("totals: %d sectors written, %d resets, %d flash erases (max wear %d)\n",
		dev.HostWrites.Load()/device.SectorSize, dev.Resets.Load(),
		dev.Array().TotalErases(), dev.Array().MaxEraseCount())
}

// cacheExercise runs a Region-Cache over the device and reports both the
// cache view and the zone view — showing how region churn maps to zone
// lifecycle.
func cacheExercise(hw harness.HWProfile, ops, watch int) error {
	w := newWatcher(watch, 0)
	if w != nil {
		harness.SetMetricsRegistry(w.reg)
	}
	rig, err := harness.Build(harness.RigConfig{
		Scheme: harness.RegionCache,
		HW:     hw,
	})
	if err != nil {
		return err
	}
	if w != nil {
		w.zoneSize = rig.ZNS.ZoneSize()
	}
	gen := workload.NewBC(workload.BCConfig{Keys: 16 << 10, Seed: 1})
	for i := 0; i < ops; i++ {
		op := gen.Next()
		switch op.Kind {
		case workload.OpGet:
			if _, ok, _ := rig.Engine.Get(op.Key); !ok {
				rig.Engine.Set(op.Key, nil, op.ValLen) //nolint:errcheck
			}
		case workload.OpSet:
			rig.Engine.Set(op.Key, nil, op.ValLen) //nolint:errcheck
		case workload.OpDelete:
			rig.Engine.Delete(op.Key)
		}
		w.maybe(i, ops)
	}
	st := rig.Engine.Stats()
	fmt.Printf("cache: %d ops in %v simulated — hit %.2f%%, %d evictions, WAF %.2f\n",
		st.Gets+st.Sets+st.Deletes, st.SimulatedTime, st.HitRatio*100,
		st.Evictions, rig.WAFactor())
	fmt.Printf("middle layer: %d GC runs, %d regions migrated, %d empty zones\n\n",
		rig.Middle.GCRuns.Load(), rig.Middle.Migrated.Load(), rig.Middle.EmptyZones())
	report(rig.ZNS)
	return nil
}
