// Command zonectl builds a simulated ZNS device, optionally exercises it,
// and prints a zone report — a small introspection tool in the spirit of
// the Linux blkzone utility, for poking at the model's zone state machine.
//
//	zonectl -zones 8 -zone-mib 16 -exercise seq    # fill a few zones
//	zonectl -zones 8 -exercise churn               # fill/reset cycles
//	zonectl -zones 8 -exercise cache               # run a Region-Cache on top
package main

import (
	"flag"
	"fmt"
	"os"

	"znscache/internal/device"
	"znscache/internal/flash"
	"znscache/internal/harness"
	"znscache/internal/workload"
	"znscache/internal/zns"
)

func main() {
	var (
		zones    = flag.Int("zones", 8, "zone count")
		zoneMiB  = flag.Int("zone-mib", 16, "zone size in MiB")
		exercise = flag.String("exercise", "seq", "seq|churn|cache|none")
		ops      = flag.Int("ops", 50_000, "cache exercise op count")
	)
	flag.Parse()

	hw := harness.DefaultHW(*zones)
	hw.BlocksPerZone = *zoneMiB

	switch *exercise {
	case "cache":
		if err := cacheExercise(hw, *ops); err != nil {
			fmt.Fprintln(os.Stderr, "zonectl:", err)
			os.Exit(1)
		}
		return
	case "seq", "churn", "none":
	default:
		fmt.Fprintf(os.Stderr, "unknown exercise %q\n", *exercise)
		os.Exit(2)
	}

	dev, err := zns.New(zns.Config{
		Geometry:      hw.Geometry(),
		Timing:        flash.DefaultTiming(),
		BlocksPerZone: hw.BlocksPerZone,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "zonectl:", err)
		os.Exit(1)
	}

	switch *exercise {
	case "seq":
		// Fill the first half of the zones sequentially.
		for z := 0; z < dev.NumZones()/2; z++ {
			if _, err := dev.Write(0, nil, int(dev.ZoneSize()), int64(z)*dev.ZoneSize()); err != nil {
				fmt.Fprintln(os.Stderr, "zonectl: write:", err)
				os.Exit(1)
			}
		}
	case "churn":
		// Three fill/reset laps over every zone.
		for lap := 0; lap < 3; lap++ {
			for z := 0; z < dev.NumZones(); z++ {
				if _, err := dev.Write(0, nil, int(dev.ZoneSize()), int64(z)*dev.ZoneSize()); err != nil {
					fmt.Fprintln(os.Stderr, "zonectl: write:", err)
					os.Exit(1)
				}
				if _, err := dev.Reset(0, z); err != nil {
					fmt.Fprintln(os.Stderr, "zonectl: reset:", err)
					os.Exit(1)
				}
			}
		}
	}
	report(dev)
}

func report(dev *zns.Device) {
	fmt.Printf("device: %d zones × %d MiB = %d MiB, max %d open zones\n",
		dev.NumZones(), dev.ZoneSize()>>20, dev.Size()>>20, dev.MaxOpenZones())
	fmt.Printf("%-6s %-8s %12s %8s\n", "zone", "state", "wp", "resets")
	for _, z := range dev.Zones() {
		fmt.Printf("%-6d %-8s %12d %8d\n", z.Index, z.State, z.WP, z.Resets)
	}
	fmt.Printf("totals: %d sectors written, %d resets, %d flash erases (max wear %d)\n",
		dev.HostWrites.Load()/device.SectorSize, dev.Resets.Load(),
		dev.Array().TotalErases(), dev.Array().MaxEraseCount())
}

// cacheExercise runs a Region-Cache over the device and reports both the
// cache view and the zone view — showing how region churn maps to zone
// lifecycle.
func cacheExercise(hw harness.HWProfile, ops int) error {
	rig, err := harness.Build(harness.RigConfig{
		Scheme: harness.RegionCache,
		HW:     hw,
	})
	if err != nil {
		return err
	}
	gen := workload.NewBC(workload.BCConfig{Keys: 16 << 10, Seed: 1})
	for i := 0; i < ops; i++ {
		op := gen.Next()
		switch op.Kind {
		case workload.OpGet:
			if _, ok, _ := rig.Engine.Get(op.Key); !ok {
				rig.Engine.Set(op.Key, nil, op.ValLen) //nolint:errcheck
			}
		case workload.OpSet:
			rig.Engine.Set(op.Key, nil, op.ValLen) //nolint:errcheck
		case workload.OpDelete:
			rig.Engine.Delete(op.Key)
		}
	}
	st := rig.Engine.Stats()
	fmt.Printf("cache: %d ops in %v simulated — hit %.2f%%, %d evictions, WAF %.2f\n",
		st.Gets+st.Sets+st.Deletes, st.SimulatedTime, st.HitRatio*100,
		st.Evictions, rig.WAFactor())
	fmt.Printf("middle layer: %d GC runs, %d regions migrated, %d empty zones\n\n",
		rig.Middle.GCRuns.Load(), rig.Middle.Migrated.Load(), rig.Middle.EmptyZones())
	report(rig.ZNS)
	return nil
}
