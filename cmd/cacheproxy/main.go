// Command cacheproxy fronts a cluster of cacheservers with one memcached
// endpoint. It is a server.Server whose backend is a cluster.Router: keys
// consistent-hash across the configured nodes, writes replicate to R owners,
// reads fail over across replicas (spreading over the whole replica set for
// keys the hot-key detector promotes), and multigets scatter-gather one
// pipelined exchange per backend. Clients cannot tell a proxy from a node —
// same protocol in, scattered protocol out.
//
// Node syntax: -nodes takes a comma-separated list of "name=host:port" pairs
// (bare "host:port" entries are named node-00, node-01, … in list order).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"znscache/internal/cluster"
	"znscache/internal/obs"
	"znscache/internal/server"
)

type options struct {
	addr        string
	nodes       string
	replication int
	vnodes      int
	poolIdle    int
	timeout     time.Duration
	hotWindow   int
	hotTopK     int
	hotMinCount int
	maxConns    int
	maxValue    int
	idle        time.Duration
	drain       time.Duration
	metricsAddr string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:11212", "listen address for the memcached protocol")
	flag.StringVar(&o.nodes, "nodes", "", `backend cacheservers, comma-separated "name=host:port" (or bare "host:port")`)
	flag.IntVar(&o.replication, "replication", 1, "replicas per key (writes go to R ring owners)")
	flag.IntVar(&o.vnodes, "vnodes", cluster.DefaultVirtualNodes, "virtual nodes per member on the hash ring")
	flag.IntVar(&o.poolIdle, "pool-idle", 4, "idle pooled connections kept per backend")
	flag.DurationVar(&o.timeout, "timeout", 5*time.Second, "per-exchange backend timeout")
	flag.IntVar(&o.hotWindow, "hot-window", 4096, "hot-key detector window in observed gets (0 disables hot-key read replication)")
	flag.IntVar(&o.hotTopK, "hot-topk", 8, "keys each window may promote to read-from-any-replica")
	flag.IntVar(&o.hotMinCount, "hot-min", 16, "minimum per-window count for hot-key promotion")
	flag.IntVar(&o.maxConns, "max-conns", 1024, "client connection limit")
	flag.IntVar(&o.maxValue, "max-value", 1<<20, "largest accepted value in bytes")
	flag.DurationVar(&o.idle, "idle", 5*time.Minute, "idle client connection timeout")
	flag.DurationVar(&o.drain, "drain", 10*time.Second, "graceful shutdown drain deadline")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "cacheproxy: %v\n", err)
		os.Exit(1)
	}
}

// parseNodes turns the -nodes flag into cluster members.
func parseNodes(spec string) ([]cluster.Node, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-nodes is required")
	}
	var nodes []cluster.Node
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr := fmt.Sprintf("node-%02d", i), part
		if eq := strings.IndexByte(part, '='); eq >= 0 {
			name, addr = strings.TrimSpace(part[:eq]), strings.TrimSpace(part[eq+1:])
		}
		if name == "" || addr == "" {
			return nil, fmt.Errorf("bad -nodes entry %q", part)
		}
		nodes = append(nodes, cluster.Node{Name: name, Addr: addr})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("-nodes named no backends")
	}
	return nodes, nil
}

func run(o options) error {
	nodes, err := parseNodes(o.nodes)
	if err != nil {
		return err
	}
	rt, err := cluster.New(cluster.Config{
		Nodes:        nodes,
		Replication:  o.replication,
		VirtualNodes: o.vnodes,
		PoolIdle:     o.poolIdle,
		Timeout:      o.timeout,
		HotWindow:    o.hotWindow,
		HotTopK:      o.hotTopK,
		HotMinCount:  o.hotMinCount,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	reg := obs.NewRegistry()
	srv, err := server.New(server.Config{
		Addr:          o.addr,
		Backend:       rt,
		MaxConns:      o.maxConns,
		MaxValueBytes: o.maxValue,
		IdleTimeout:   o.idle,
		StatsExtra: func() map[string]string {
			m := rt.MetricsSnapshot()
			return map[string]string{
				"proxy_nodes":                fmt.Sprintf("%d", len(rt.Nodes())),
				"proxy_replication":          fmt.Sprintf("%d", o.replication),
				"proxy_hot_reads":            fmt.Sprintf("%d", m.HotReads),
				"proxy_replica_reads":        fmt.Sprintf("%d", m.ReplicaReads),
				"proxy_read_failovers":       fmt.Sprintf("%d", m.Failovers),
				"proxy_backend_errors":       fmt.Sprintf("%d", m.BackendErrors),
				"proxy_replica_write_errors": fmt.Sprintf("%d", m.ReplicaWriteErrors),
				"proxy_ring_moves":           fmt.Sprintf("%d", m.RingMoves),
			}
		},
	})
	if err != nil {
		return err
	}
	srv.MetricsInto(reg, obs.L("job", "cacheproxy"))
	rt.MetricsInto(reg, obs.L("job", "cacheproxy"))
	if o.metricsAddr != "" {
		ms, err := obs.StartServer(o.metricsAddr, reg)
		if err != nil {
			return err
		}
		defer ms.Close() //nolint:errcheck
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", ms.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()
	names := make([]string, len(nodes))
	for i, n := range nodes {
		names[i] = n.Name
	}
	fmt.Fprintf(os.Stderr, "proxying %s (R=%d) on %s\n", strings.Join(names, ","), o.replication, srv.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "caught %v, draining (deadline %v)\n", sig, o.drain)
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "drain incomplete: %v\n", err)
	}
	return nil
}
