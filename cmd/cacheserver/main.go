// Command cacheserver serves a sharded znscache over the memcached text
// protocol. It is the network face of the simulation: any memcached client
// (or cmd/loadgen) can drive the paper's cache designs over TCP, with
// metrics, request-stage spans, SLO burn tracking, event tracing, and a
// graceful shutdown that persists the cache snapshot before exit.
//
// Shutdown ordering matters: on SIGINT/SIGTERM the server first drains
// in-flight connections (server.Shutdown), and only then Closes the cache so
// the snapshot covers every request that received a response.
//
// With -top, cacheserver is instead a live terminal dashboard: it polls the
// /metrics endpoint named by -metrics-addr (of an already-running server)
// and renders ops/s, hit ratio, stage latencies, zones, GC, and SLO burn in
// place.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"znscache"
	"znscache/internal/harness"
	"znscache/internal/obs"
	"znscache/internal/server"
)

// options collects the flag values run needs.
type options struct {
	addr          string
	scheme        string
	shards        int
	zones         int
	cacheMiB      int64
	regionKiB     int64
	admission     string
	admitBudget   float64
	maxConns      int
	maxValue      int
	idle          time.Duration
	drain         time.Duration
	metricsAddr   string
	eventsFile    string
	traceCap      int
	slowMs        int
	fastReads     bool
	spanEvery     int
	slowlogFile   string
	sloSpec       string
	sloProfileDir string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:11211", "listen address for the memcached protocol")
	flag.StringVar(&o.scheme, "scheme", "region", "cache backend: block|file|zone|region")
	flag.IntVar(&o.shards, "shards", 4, "independent cache engines (key-hash partitioned)")
	flag.IntVar(&o.zones, "zones", 64, "simulated device zone count (split across shards)")
	flag.Int64Var(&o.cacheMiB, "cache-mib", 0, "cache capacity in MiB (default 80% of the device)")
	flag.Int64Var(&o.regionKiB, "region-kib", 0, "region size in KiB for block/file/region schemes (default scheme-specific); raise it so large values fit a region")
	flag.StringVar(&o.admission, "admission", "", "admission policy: all|prob:P|reject-first[:BITS,WINDOW]|dynamic-random[:WINDOW_MS]|frequency[:THRESHOLD]")
	flag.Float64Var(&o.admitBudget, "admit-budget", 0, "device-write budget in bytes/simulated-second (for dynamic-random)")
	flag.IntVar(&o.maxConns, "max-conns", 1024, "connection limit; excess connections wait in the accept queue")
	flag.IntVar(&o.maxValue, "max-value", 1<<20, "largest accepted value in bytes")
	flag.DurationVar(&o.idle, "idle", 5*time.Minute, "idle connection timeout")
	flag.DurationVar(&o.drain, "drain", 10*time.Second, "graceful shutdown drain deadline")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address")
	flag.StringVar(&o.eventsFile, "events", "", "record slow-request events and write them as JSON to this file on exit")
	flag.IntVar(&o.traceCap, "trace-cap", obs.DefaultTraceCap, "event ring capacity for -events (newest kept)")
	flag.IntVar(&o.slowMs, "slow-ms", 50, "slow-request threshold in milliseconds (-events trace and -span exemplar log)")
	flag.BoolVar(&o.fastReads, "fast-reads", true, "serve gets from the lock-free read index")
	flag.IntVar(&o.spanEvery, "span", 0, "request-stage spans: observe 1 in N batches into per-stage histograms (0 disables spans entirely)")
	flag.StringVar(&o.slowlogFile, "slowlog", "", "write the slow-request exemplar log (stage breakdowns) as JSON to this file on exit; requires -span")
	flag.StringVar(&o.sloSpec, "slo", "", `per-verb latency objectives, e.g. "get=2ms@0.999,set=10ms@0.99"`)
	flag.StringVar(&o.sloProfileDir, "slo-profile-dir", "", "capture CPU+mutex pprof profiles into this directory on sustained SLO burn")
	lockProf := flag.Int("lock-profile", 0, "runtime mutex/block profiling rate for -metrics-addr pprof (0 disables)")
	gogc := flag.Int("gogc", 400, "GC target percentage (SetGCPercent); 0 leaves the runtime default")
	top := flag.Bool("top", false, "live dashboard: poll -metrics-addr's /metrics and render serving headlines in place (starts no server)")
	topInterval := flag.Duration("top-interval", 2*time.Second, "dashboard poll interval for -top")
	flag.Parse()

	if *top {
		if o.metricsAddr == "" {
			fmt.Fprintln(os.Stderr, "cacheserver: -top needs -metrics-addr pointing at a running server")
			os.Exit(1)
		}
		err := obs.RunTop(obs.TopConfig{
			URL:      "http://" + o.metricsAddr + "/metrics",
			Interval: *topInterval,
			Out:      os.Stdout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cacheserver: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *gogc > 0 {
		// A cache server's live heap is dominated by its fixed-size region
		// buffers and index, so a high GC target trades bounded memory
		// headroom for materially fewer collection cycles on the hot path.
		debug.SetGCPercent(*gogc)
	}
	if *lockProf > 0 {
		obs.SetLockProfiling(*lockProf)
	}
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "cacheserver: %v\n", err)
		os.Exit(1)
	}
}

func run(o options) error {
	schemes := map[string]harness.Scheme{
		"block": znscache.BlockCache, "file": znscache.FileCache,
		"zone": znscache.ZoneCache, "region": znscache.RegionCache,
	}
	s, ok := schemes[o.scheme]
	if !ok {
		return fmt.Errorf("unknown scheme %q", o.scheme)
	}

	// The registry exists before the cache is built and is installed as the
	// harness's global hook, so every layer of every shard's rig (cache_*,
	// zns_*, middle_*, ...) registers at Build time — that is what makes the
	// dashboard's zone and GC panels live, not just the server_* series.
	reg := obs.NewRegistry()
	harness.SetMetricsRegistry(reg)
	defer harness.SetMetricsRegistry(nil)

	// Request-stage spans: one recorder shared by the serving path (batch
	// spans) and every shard engine (cache-stage observations).
	var spans *obs.SpanRecorder
	if o.spanEvery > 0 {
		spans = obs.NewSpanRecorder(obs.SpanConfig{
			SampleEvery:   o.spanEvery,
			SlowThreshold: time.Duration(o.slowMs) * time.Millisecond,
		})
	} else if o.slowlogFile != "" {
		return fmt.Errorf("-slowlog needs -span enabled")
	}

	var slo *obs.SLOTracker
	if o.sloSpec != "" {
		objectives, err := obs.ParseObjectives(o.sloSpec)
		if err != nil {
			return err
		}
		slo = obs.NewSLOTracker(obs.SLOConfig{
			Objectives: objectives,
			ProfileDir: o.sloProfileDir,
		})
	}

	cfg := znscache.ShardedConfig{
		Config: znscache.Config{
			Scheme:      s,
			Zones:       o.zones,
			CacheBytes:  o.cacheMiB << 20,
			RegionBytes: o.regionKiB << 10,
			TrackValues: true,        // the server returns real payloads
			FastReads:   o.fastReads, // lock-free get path for the serving layer
			Spans:       spans,
		},
		Shards: o.shards,
	}
	if o.admission != "" {
		f, err := znscache.ParseAdmission(o.admission, o.admitBudget)
		if err != nil {
			return err
		}
		cfg.Admission = f
	}
	c, err := znscache.OpenSharded(cfg)
	if err != nil {
		return err
	}

	var tracer *obs.Tracer
	if o.eventsFile != "" {
		tracer = obs.NewTracer(o.traceCap)
	}

	srv, err := server.New(server.Config{
		Addr:          o.addr,
		Backend:       c,
		MaxConns:      o.maxConns,
		MaxValueBytes: o.maxValue,
		IdleTimeout:   o.idle,
		Tracer:        tracer,
		SlowThreshold: time.Duration(o.slowMs) * time.Millisecond,
		Spans:         spans,
		SLO:           slo,
		StatsExtra: func() map[string]string {
			st := c.Stats()
			return map[string]string{
				"cache_scheme":    st.Scheme.String(),
				"cache_items":     fmt.Sprintf("%d", st.Items),
				"cache_hit_ratio": fmt.Sprintf("%.4f", st.HitRatio),
				"cache_evictions": fmt.Sprintf("%d", st.Evictions),
				"cache_wa_factor": fmt.Sprintf("%.3f", st.WriteAmplification),
			}
		},
	})
	if err != nil {
		return err
	}

	srv.MetricsInto(reg, obs.L("job", "cacheserver"))
	obs.LockMetricsInto(reg, obs.L("job", "cacheserver"))
	slo.Start()
	defer slo.Stop()
	if o.metricsAddr != "" {
		ms, err := obs.StartServer(o.metricsAddr, reg)
		if err != nil {
			return err
		}
		defer ms.Close() //nolint:errcheck
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", ms.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()
	fmt.Fprintf(os.Stderr, "serving %s/%d-shard cache on %s\n", o.scheme, o.shards, srv.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "caught %v, draining (deadline %v)\n", sig, o.drain)
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	}

	// Drain in-flight connections first, then snapshot: the snapshot must
	// cover everything a client got a response for.
	ctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "drain incomplete: %v (snapshotting anyway)\n", err)
	}
	if err := c.Close(); err != nil {
		return fmt.Errorf("cache close: %w", err)
	}
	fmt.Fprintf(os.Stderr, "cache snapshot persisted (%d shards)\n", len(c.Snapshots()))

	if o.eventsFile != "" {
		if err := writeEvents(o.eventsFile, tracer); err != nil {
			return fmt.Errorf("events: %w", err)
		}
	}
	if o.slowlogFile != "" {
		if err := writeSlowLog(o.slowlogFile, spans); err != nil {
			return fmt.Errorf("slowlog: %w", err)
		}
	}
	return nil
}

// writeEvents dumps the retained trace ring as JSON.
func writeEvents(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(tr.Events()); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d events retained, %d total)\n", path, len(tr.Events()), tr.Total())
	return nil
}

// writeSlowLog dumps the slow-request exemplar ring as JSON.
func writeSlowLog(path string, rec *obs.SpanRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteSlowLog(f); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d slow exemplars retained, %d total)\n",
		path, len(rec.SlowRequests()), rec.SlowTotal())
	return nil
}
