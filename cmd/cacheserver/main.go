// Command cacheserver serves a sharded znscache over the memcached text
// protocol. It is the network face of the simulation: any memcached client
// (or cmd/loadgen) can drive the paper's cache designs over TCP, with
// metrics, event tracing, and a graceful shutdown that persists the cache
// snapshot before exit.
//
// Shutdown ordering matters: on SIGINT/SIGTERM the server first drains
// in-flight connections (server.Shutdown), and only then Closes the cache so
// the snapshot covers every request that received a response.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"znscache"
	"znscache/internal/harness"
	"znscache/internal/obs"
	"znscache/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:11211", "listen address for the memcached protocol")
		scheme      = flag.String("scheme", "region", "cache backend: block|file|zone|region")
		shards      = flag.Int("shards", 4, "independent cache engines (key-hash partitioned)")
		zones       = flag.Int("zones", 64, "simulated device zone count (split across shards)")
		cacheMiB    = flag.Int64("cache-mib", 0, "cache capacity in MiB (default 80% of the device)")
		admission   = flag.String("admission", "", "admission policy: all|prob:P|reject-first[:BITS,WINDOW]|dynamic-random[:WINDOW_MS]|frequency[:THRESHOLD]")
		admitBudget = flag.Float64("admit-budget", 0, "device-write budget in bytes/simulated-second (for dynamic-random)")
		maxConns    = flag.Int("max-conns", 1024, "connection limit; excess connections wait in the accept queue")
		maxValue    = flag.Int("max-value", 1<<20, "largest accepted value in bytes")
		idle        = flag.Duration("idle", 5*time.Minute, "idle connection timeout")
		drain       = flag.Duration("drain", 10*time.Second, "graceful shutdown drain deadline")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address")
		eventsFile  = flag.String("events", "", "record slow-request events and write them as JSON to this file on exit")
		traceCap    = flag.Int("trace-cap", obs.DefaultTraceCap, "event ring capacity for -events (newest kept)")
		slowMs      = flag.Int("slow-ms", 50, "slow-request threshold in milliseconds for -events")
		fastReads   = flag.Bool("fast-reads", true, "serve gets from the lock-free read index")
		lockProf    = flag.Int("lock-profile", 0, "runtime mutex/block profiling rate for -metrics-addr pprof (0 disables)")
		gogc        = flag.Int("gogc", 400, "GC target percentage (SetGCPercent); 0 leaves the runtime default")
	)
	flag.Parse()

	if *gogc > 0 {
		// A cache server's live heap is dominated by its fixed-size region
		// buffers and index, so a high GC target trades bounded memory
		// headroom for materially fewer collection cycles on the hot path.
		debug.SetGCPercent(*gogc)
	}
	if *lockProf > 0 {
		obs.SetLockProfiling(*lockProf)
	}
	if err := run(*addr, *scheme, *shards, *zones, *cacheMiB, *admission, *admitBudget,
		*maxConns, *maxValue, *idle, *drain, *metricsAddr, *eventsFile, *traceCap, *slowMs, *fastReads); err != nil {
		fmt.Fprintf(os.Stderr, "cacheserver: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, schemeName string, shards, zones int, cacheMiB int64, admission string,
	admitBudget float64, maxConns, maxValue int, idle, drain time.Duration,
	metricsAddr, eventsFile string, traceCap, slowMs int, fastReads bool) error {
	schemes := map[string]harness.Scheme{
		"block": znscache.BlockCache, "file": znscache.FileCache,
		"zone": znscache.ZoneCache, "region": znscache.RegionCache,
	}
	s, ok := schemes[schemeName]
	if !ok {
		return fmt.Errorf("unknown scheme %q", schemeName)
	}
	cfg := znscache.ShardedConfig{
		Config: znscache.Config{
			Scheme:      s,
			Zones:       zones,
			CacheBytes:  cacheMiB << 20,
			TrackValues: true,      // the server returns real payloads
			FastReads:   fastReads, // lock-free get path for the serving layer
		},
		Shards: shards,
	}
	if admission != "" {
		f, err := znscache.ParseAdmission(admission, admitBudget)
		if err != nil {
			return err
		}
		cfg.Admission = f
	}
	c, err := znscache.OpenSharded(cfg)
	if err != nil {
		return err
	}

	var tracer *obs.Tracer
	if eventsFile != "" {
		tracer = obs.NewTracer(traceCap)
	}

	srv, err := server.New(server.Config{
		Addr:          addr,
		Backend:       c,
		MaxConns:      maxConns,
		MaxValueBytes: maxValue,
		IdleTimeout:   idle,
		Tracer:        tracer,
		SlowThreshold: time.Duration(slowMs) * time.Millisecond,
		StatsExtra: func() map[string]string {
			st := c.Stats()
			return map[string]string{
				"cache_scheme":    st.Scheme.String(),
				"cache_items":     fmt.Sprintf("%d", st.Items),
				"cache_hit_ratio": fmt.Sprintf("%.4f", st.HitRatio),
				"cache_evictions": fmt.Sprintf("%d", st.Evictions),
				"cache_wa_factor": fmt.Sprintf("%.3f", st.WriteAmplification),
			}
		},
	})
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	srv.MetricsInto(reg, obs.L("job", "cacheserver"))
	obs.LockMetricsInto(reg, obs.L("job", "cacheserver"))
	if metricsAddr != "" {
		ms, err := obs.StartServer(metricsAddr, reg)
		if err != nil {
			return err
		}
		defer ms.Close() //nolint:errcheck
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", ms.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()
	fmt.Fprintf(os.Stderr, "serving %s/%d-shard cache on %s\n", schemeName, shards, srv.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "caught %v, draining (deadline %v)\n", sig, drain)
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	}

	// Drain in-flight connections first, then snapshot: the snapshot must
	// cover everything a client got a response for.
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "drain incomplete: %v (snapshotting anyway)\n", err)
	}
	if err := c.Close(); err != nil {
		return fmt.Errorf("cache close: %w", err)
	}
	fmt.Fprintf(os.Stderr, "cache snapshot persisted (%d shards)\n", len(c.Snapshots()))

	if eventsFile != "" {
		if err := writeEvents(eventsFile, tracer); err != nil {
			return fmt.Errorf("events: %w", err)
		}
	}
	return nil
}

// writeEvents dumps the retained trace ring as JSON.
func writeEvents(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(tr.Events()); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d events retained, %d total)\n", path, len(tr.Events()), tr.Total())
	return nil
}
