// Command cachebench reruns the paper's micro-benchmark evaluation (§4.1)
// on the simulated device stack: CacheBench's bc mix against all four
// schemes.
//
// Experiments:
//
//	cachebench -experiment fig2    # overall throughput + hit ratio (Figure 2)
//	cachebench -experiment fig3    # region buffer fill times (Figure 3)
//	cachebench -experiment fig4    # OP-ratio sweep (Figure 4)
//	cachebench -experiment table1  # WA factors under OP ratios (Table 1)
//	cachebench -experiment contracts # zone-resource limit sweep (open/active caps)
//	cachebench -experiment cluster # cluster tier: nodes × replication × skew
//	cachebench -experiment cdn     # chunked large-object sweep: chunk size × scheme
//	cachebench -experiment all     # everything
//
// Scale flags shrink or grow the run; defaults regenerate the numbers in
// EXPERIMENTS.md in a few minutes of wall-clock time.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"znscache/internal/cache"
	"znscache/internal/fault"
	"znscache/internal/harness"
	"znscache/internal/obs"
	"znscache/internal/workload"
)

func main() {
	var (
		experiment  = flag.String("experiment", "all", "fig2|fig3|fig4|table1|smallzone|admission|contracts|cluster|cdn|all")
		limits      = flag.String("limits", "", "comma-separated open-zone caps for -experiment contracts (default 14,8,4,2,1)")
		chunkKiB    = flag.String("chunk-kib", "", "comma-separated bigobj chunk sizes in KiB for -experiment cdn (default 128,512)")
		admission   = flag.String("admission", "", "admission policy for every rig: all|prob:P|reject-first[:BITS,WINDOW]|dynamic-random[:WINDOW_MS]|frequency[:THRESHOLD]")
		admitBudget = flag.Float64("admit-budget", 0, "device-write budget in bytes per simulated second (required by -admission dynamic-random; overrides the admission sweep's derived budgets)")
		zones       = flag.Int("zones", 0, "override device zone count")
		ops         = flag.Int("ops", 0, "override measured op count")
		warmup      = flag.Int("warmup", 0, "override warmup op count")
		keys        = flag.Int64("keys", 0, "override key-space size")
		seed        = flag.Uint64("seed", 0, "override workload seed")
		traceFile   = flag.String("trace", "", "replay a trace file instead of an experiment")
		traceFormat = flag.String("trace-format", "auto", "trace file format: auto|ops ('op key [len]' lines)|csv ('ts,key,size,op' records)")
		scheme      = flag.String("scheme", "region", "scheme for -trace: block|file|zone|region")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address while running")
		jsonDir     = flag.String("json", "", "also write BENCH_<experiment>.json report files into this directory")
		eventsFile  = flag.String("events", "", "record device/cache events and write them as JSON to this file")
		traceCap    = flag.Int("trace-cap", obs.DefaultTraceCap, "event ring capacity for -events (newest kept)")
		faultRate   = flag.Float64("faults", 0, "inject device faults (errors, torn writes, latency spikes) at this per-op rate under every scheme")
		faultSeed   = flag.Uint64("fault-seed", 1, "seed for the -faults schedule")
	)
	flag.Parse()

	if *admission != "" {
		f, err := cache.ParseAdmission(*admission, *admitBudget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cachebench: %v\n", err)
			os.Exit(2)
		}
		harness.SetAdmissionFactory(f)
		if f != nil {
			fmt.Fprintf(os.Stderr, "admission policy armed: %s\n", f.Name())
		}
	}

	if *faultRate > 0 {
		harness.SetFaultConfig(&fault.Config{
			Seed:             *faultSeed,
			ReadErrorRate:    *faultRate,
			WriteErrorRate:   *faultRate,
			ResetErrorRate:   *faultRate,
			TornWriteRate:    *faultRate,
			LatencySpikeRate: *faultRate,
		})
		fmt.Fprintf(os.Stderr, "fault injection armed: rate %g, seed %d\n", *faultRate, *faultSeed)
	}

	reg := obs.NewRegistry()
	if *metricsAddr != "" {
		harness.SetMetricsRegistry(reg)
		srv, err := obs.StartServer(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cachebench metrics: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close() //nolint:errcheck
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", srv.Addr())
	}
	var tracer *obs.Tracer
	if *eventsFile != "" {
		tracer = obs.NewTracer(*traceCap)
		harness.SetTracer(tracer)
		defer func() {
			if err := writeEvents(*eventsFile, tracer); err != nil {
				fmt.Fprintf(os.Stderr, "cachebench events: %v\n", err)
			}
		}()
	}

	if *traceFile != "" {
		if err := replayTrace(*traceFile, *traceFormat, *scheme, *zones); err != nil {
			fmt.Fprintf(os.Stderr, "cachebench trace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	report := func(rep *harness.Report) error {
		if *jsonDir == "" {
			return nil
		}
		path, err := rep.WriteFile(*jsonDir)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}

	run := func(name string, f func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "cachebench %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("fig2", func() error {
		p := harness.DefaultFig2()
		applyFig2(&p, *zones, *ops, *warmup, *keys, *seed)
		rows, err := harness.RunFig2(p)
		if err != nil {
			return err
		}
		harness.PrintFig2(os.Stdout, rows)
		return report(harness.NewFig2Report(rows))
	})
	run("smallzone", func() error {
		p := harness.DefaultSmallZone()
		if *keys != 0 {
			p.Keys = *keys
		}
		if *ops != 0 {
			p.MeasureOps = *ops
		}
		if *seed != 0 {
			p.Seed = *seed
		}
		rows, err := harness.RunSmallZone(p)
		if err != nil {
			return err
		}
		harness.PrintSmallZone(os.Stdout, rows)
		return report(harness.NewSmallZoneReport(rows))
	})
	run("admission", func() error {
		p := harness.DefaultAdmissionSweep()
		if *zones != 0 {
			p.Zones = *zones
		}
		if *ops != 0 {
			p.MeasureOps = *ops
		}
		if *warmup != 0 {
			p.WarmupOps = *warmup
		}
		if *keys != 0 {
			p.Keys = *keys
		}
		if *seed != 0 {
			p.Seed = *seed
		}
		if *admitBudget > 0 {
			p.BudgetBytesPerSec = *admitBudget
		}
		rows, err := harness.RunAdmissionSweep(p)
		if err != nil {
			return err
		}
		harness.PrintAdmission(os.Stdout, rows)
		return report(harness.NewAdmissionReport(rows))
	})
	run("contracts", func() error {
		p := harness.DefaultContracts()
		if *zones != 0 {
			p.Zones = *zones
		}
		if *ops != 0 {
			p.MeasureOps = *ops
		}
		if *warmup != 0 {
			p.WarmupOps = *warmup
		}
		if *keys != 0 {
			p.Keys = *keys
		}
		if *seed != 0 {
			p.Seed = *seed
		}
		if *limits != "" {
			parsed, err := parseLimits(*limits)
			if err != nil {
				return err
			}
			p.Limits = parsed
		}
		rows, err := harness.RunContracts(p)
		if err != nil {
			return err
		}
		harness.PrintContracts(os.Stdout, rows)
		return report(harness.NewContractsReport(rows))
	})
	run("cdn", func() error {
		var p harness.CDNParams
		if *zones != 0 {
			p.Zones = *zones
		}
		if *ops != 0 {
			p.MeasureOps = *ops
		}
		if *warmup != 0 {
			p.WarmupOps = *warmup
		}
		if *keys != 0 {
			p.Objects = *keys
		}
		if *seed != 0 {
			p.Seed = *seed
		}
		if *chunkKiB != "" {
			kib, err := parseLimits(*chunkKiB)
			if err != nil {
				return fmt.Errorf("-chunk-kib: %w", err)
			}
			for _, k := range kib {
				p.ChunkSizes = append(p.ChunkSizes, k<<10)
			}
		}
		rows, err := harness.RunCDN(p)
		if err != nil {
			return err
		}
		harness.PrintCDN(os.Stdout, rows)
		return report(harness.NewCDNReport(rows))
	})
	run("cluster", func() error {
		points := harness.DefaultClusterSweep()
		for i := range points {
			if *ops != 0 {
				points[i].Ops = *ops
			}
			if *keys != 0 {
				points[i].Keys = int(*keys)
			}
			if *seed != 0 {
				points[i].Seed = *seed
			}
		}
		rows, err := harness.RunClusterSweep(points)
		if err != nil {
			return err
		}
		harness.PrintCluster(os.Stdout, rows)
		return report(harness.NewClusterReport(rows))
	})
	run("fig3", func() error {
		p := harness.DefaultFig3()
		if *zones != 0 {
			p.Zones = *zones
		}
		if *seed != 0 {
			p.Seed = *seed
		}
		rows, err := harness.RunFig3(p)
		if err != nil {
			return err
		}
		harness.PrintFig3(os.Stdout, rows)
		return report(harness.NewFig3Report(rows))
	})
	runFig4 := func() ([]harness.Fig4Row, error) {
		p := harness.DefaultFig4()
		if *zones != 0 {
			p.Zones = *zones
		}
		if *ops != 0 {
			p.MeasureOps = *ops
		}
		if *warmup != 0 {
			p.WarmupOps = *warmup
		}
		if *keys != 0 {
			p.Keys = *keys
		}
		if *seed != 0 {
			p.Seed = *seed
		}
		return harness.RunFig4Table1(p)
	}
	// fig4 and table1 come from the same runs; print both when either (or
	// all) is requested, but run only once.
	if *experiment == "all" || *experiment == "fig4" || *experiment == "table1" {
		rows, err := runFig4()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cachebench fig4/table1: %v\n", err)
			os.Exit(1)
		}
		harness.PrintFig4Table1(os.Stdout, rows)
		if err := report(harness.NewFig4Table1Report(rows)); err != nil {
			fmt.Fprintf(os.Stderr, "cachebench fig4/table1: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}

	switch *experiment {
	case "all", "fig2", "fig3", "fig4", "table1", "smallzone", "admission", "contracts", "cluster", "cdn":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

// parseLimits parses the -limits flag: comma-separated positive ints.
func parseLimits(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -limits entry %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// writeEvents dumps the tracer's retained events as a JSON array.
func writeEvents(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d events retained, %d total)\n", path, len(tr.Events()), tr.Total())
	return nil
}

// opStream is the surface both trace parsers share.
type opStream interface {
	Next() (workload.Op, bool)
	Err() error
}

// openTrace opens a trace file in the requested format; "auto" sniffs the
// head of the file for commas (the CSV shape) vs whitespace op lines.
func openTrace(path, format string) (*os.File, opStream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	br := bufio.NewReaderSize(f, 64<<10)
	if format == "auto" {
		head, _ := br.Peek(4 << 10)
		format = "ops"
		for _, line := range strings.Split(string(head), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if strings.Contains(line, ",") {
				format = "csv"
			}
			break
		}
	}
	switch format {
	case "ops":
		return f, workload.NewTrace(br), nil
	case "csv":
		return f, workload.NewCSVTrace(br), nil
	default:
		f.Close() //nolint:errcheck
		return nil, nil, fmt.Errorf("unknown trace format %q (want auto, ops, or csv)", format)
	}
}

// replayTrace runs a trace file against one scheme and reports the outcome.
func replayTrace(path, format, schemeName string, zones int) error {
	schemes := map[string]harness.Scheme{
		"block": harness.BlockCache, "file": harness.FileCache,
		"zone": harness.ZoneCache, "region": harness.RegionCache,
	}
	s, ok := schemes[schemeName]
	if !ok {
		return fmt.Errorf("unknown scheme %q", schemeName)
	}
	if zones == 0 {
		zones = 25
	}
	hw := harness.DefaultHW(zones)
	cfg := harness.RigConfig{Scheme: s, HW: hw, CacheBytes: int64(zones) * hw.ZoneBytes() * 8 / 10}
	if s == harness.ZoneCache {
		cfg.ZoneCount = zones
	}
	rig, err := harness.Build(cfg)
	if err != nil {
		return err
	}
	f, tr, err := openTrace(path, format)
	if err != nil {
		return err
	}
	defer f.Close()
	ops := 0
	for {
		op, ok := tr.Next()
		if !ok {
			break
		}
		ops++
		switch op.Kind {
		case workload.OpGet:
			if _, hit, _ := rig.Engine.Get(op.Key); !hit && op.ValLen > 0 {
				rig.Engine.Set(op.Key, nil, op.ValLen) //nolint:errcheck
			}
		case workload.OpSet:
			rig.Engine.Set(op.Key, nil, op.ValLen) //nolint:errcheck
		case workload.OpDelete:
			rig.Engine.Delete(op.Key)
		}
	}
	if err := tr.Err(); err != nil {
		return err
	}
	st := rig.Engine.Stats()
	fmt.Printf("%s: %d trace ops in %v simulated (%.0f ops/s)\n",
		s, ops, st.SimulatedTime, float64(ops)/st.SimulatedTime.Seconds())
	fmt.Printf("hit %.2f%%, %d evictions, WAF %.2f\n", st.HitRatio*100, st.Evictions, rig.WAFactor())
	return nil
}

func applyFig2(p *harness.Fig2Params, zones, ops, warmup int, keys int64, seed uint64) {
	if zones != 0 {
		p.Zones = zones
	}
	if ops != 0 {
		p.MeasureOps = ops
	}
	if warmup != 0 {
		p.WarmupOps = warmup
	}
	if keys != 0 {
		p.Keys = keys
	}
	if seed != 0 {
		p.Seed = seed
	}
}
