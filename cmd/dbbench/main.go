// Command dbbench reruns the paper's end-to-end evaluation (§4.2): an LSM
// key-value store (the RocksDB stand-in) on a simulated HDD with each of
// the four cache schemes as its flash secondary cache.
//
// Experiments:
//
//	dbbench -experiment fig5    # ops/s, hit ratio, P50/P99 per scheme (Figure 5)
//	dbbench -experiment table2  # Zone-Cache cache-size sweep (Table 2)
//	dbbench -experiment all     # both
package main

import (
	"flag"
	"fmt"
	"os"

	"znscache/internal/cache"
	"znscache/internal/fault"
	"znscache/internal/harness"
	"znscache/internal/obs"
)

func main() {
	var (
		experiment  = flag.String("experiment", "all", "fig5|table2|all")
		keys        = flag.Int64("keys", 0, "override fillrandom key count")
		reads       = flag.Int("reads", 0, "override readrandom op count")
		cacheZones  = flag.Int("cache-zones", 0, "override flash cache size in zones")
		seed        = flag.Uint64("seed", 0, "override workload seed")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address while running")
		jsonDir     = flag.String("json", "", "also write BENCH_<experiment>.json report files into this directory")
		faultRate   = flag.Float64("faults", 0, "inject device faults (errors, torn writes, latency spikes) at this per-op rate under every scheme")
		faultSeed   = flag.Uint64("fault-seed", 1, "seed for the -faults schedule")
		admission   = flag.String("admission", "", "admission policy for every flash cache: all|prob:P|reject-first[:BITS,WINDOW]|dynamic-random[:WINDOW_MS]|frequency[:THRESHOLD]")
		admitBudget = flag.Float64("admit-budget", 0, "device-write budget in bytes per simulated second (required by -admission dynamic-random)")
	)
	flag.Parse()

	if *admission != "" {
		f, err := cache.ParseAdmission(*admission, *admitBudget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbbench: %v\n", err)
			os.Exit(2)
		}
		harness.SetAdmissionFactory(f)
		if f != nil {
			fmt.Fprintf(os.Stderr, "admission policy armed: %s\n", f.Name())
		}
	}

	if *faultRate > 0 {
		harness.SetFaultConfig(&fault.Config{
			Seed:             *faultSeed,
			ReadErrorRate:    *faultRate,
			WriteErrorRate:   *faultRate,
			ResetErrorRate:   *faultRate,
			TornWriteRate:    *faultRate,
			LatencySpikeRate: *faultRate,
		})
		fmt.Fprintf(os.Stderr, "fault injection armed: rate %g, seed %d\n", *faultRate, *faultSeed)
	}

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		harness.SetMetricsRegistry(reg)
		srv, err := obs.StartServer(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbbench metrics: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close() //nolint:errcheck
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", srv.Addr())
	}

	report := func(rep *harness.Report) error {
		if *jsonDir == "" {
			return nil
		}
		path, err := rep.WriteFile(*jsonDir)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}

	p := harness.DefaultFig5()
	if *keys != 0 {
		p.Keys = *keys
	}
	if *reads != 0 {
		p.Reads = *reads
	}
	if *cacheZones != 0 {
		p.FlashCacheZones = *cacheZones
	}
	if *seed != 0 {
		p.Seed = *seed
	}

	if *experiment == "all" || *experiment == "fig5" {
		rows, err := harness.RunFig5(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbbench fig5: %v\n", err)
			os.Exit(1)
		}
		harness.PrintFig5(os.Stdout, rows)
		if err := report(harness.NewFig5Report(rows)); err != nil {
			fmt.Fprintf(os.Stderr, "dbbench fig5: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *experiment == "all" || *experiment == "table2" {
		rows, err := harness.RunTable2(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbbench table2: %v\n", err)
			os.Exit(1)
		}
		harness.PrintTable2(os.Stdout, rows)
		if err := report(harness.NewTable2Report(rows)); err != nil {
			fmt.Fprintf(os.Stderr, "dbbench table2: %v\n", err)
			os.Exit(1)
		}
	}
	switch *experiment {
	case "all", "fig5", "table2":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}
