package znscache

import (
	"fmt"
	"testing"

	"znscache/internal/obs"
	"znscache/internal/workload"
)

// replayStats runs a fixed workload against a fresh cache and returns the
// full Stats rendering — every counter, latency quantile, and the virtual
// clock position.
func replayStats(t *testing.T, spans *obs.SpanRecorder) string {
	t.Helper()
	c, err := Open(Config{Scheme: RegionCache, Zones: 12, Spans: spans})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewBC(workload.BCConfig{Keys: 4 << 10, Seed: 99})
	for i := 0; i < 20_000; i++ {
		op := gen.Next()
		switch op.Kind {
		case workload.OpGet:
			if _, ok, _ := c.Get(op.Key); !ok {
				c.SetSized(op.Key, op.ValLen) //nolint:errcheck
			}
		case workload.OpSet:
			c.SetSized(op.Key, op.ValLen) //nolint:errcheck
		case workload.OpDelete:
			c.Delete(op.Key)
		}
	}
	return fmt.Sprintf("%+v", c.Stats())
}

// TestSpanSamplingPreservesDeterminism replays the same seeded workload with
// spans off and with spans fully on. Span timings are wall-clock only — the
// recorder never touches the virtual clock — so the replay statistics
// (counters, simulated latencies, simulated time) must be byte-identical.
func TestSpanSamplingPreservesDeterminism(t *testing.T) {
	base := replayStats(t, nil)
	if again := replayStats(t, nil); again != base {
		t.Fatalf("baseline replay is itself nondeterministic:\n%s\n%s", base, again)
	}
	sampled := replayStats(t, obs.NewSpanRecorder(obs.SpanConfig{
		SampleEvery: 1, SlowThreshold: 1,
	}))
	if sampled != base {
		t.Fatalf("span sampling perturbed the replay.\nspans off: %s\nspans on:  %s",
			base, sampled)
	}
}
