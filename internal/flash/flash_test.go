package flash

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func testGeo() Geometry {
	return Geometry{Channels: 2, DiesPerChan: 2, BlocksPerDie: 4, PagesPerBlock: 8, PageSize: 512}
}

func newTestArray(t *testing.T, store bool) *Array {
	t.Helper()
	a, err := NewArray(testGeo(), DefaultTiming(), store)
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	return a
}

func TestGeometryMath(t *testing.T) {
	g := testGeo()
	if g.Dies() != 4 {
		t.Fatalf("Dies = %d, want 4", g.Dies())
	}
	if g.Blocks() != 16 {
		t.Fatalf("Blocks = %d, want 16", g.Blocks())
	}
	if g.Pages() != 128 {
		t.Fatalf("Pages = %d, want 128", g.Pages())
	}
	if g.TotalBytes() != 128*512 {
		t.Fatalf("TotalBytes = %d, want %d", g.TotalBytes(), 128*512)
	}
	if g.BlockBytes() != 8*512 {
		t.Fatalf("BlockBytes = %d, want %d", g.BlockBytes(), 8*512)
	}
}

func TestGeometryValidate(t *testing.T) {
	bad := []Geometry{
		{},
		{Channels: 1},
		{Channels: 1, DiesPerChan: 1, BlocksPerDie: 1, PagesPerBlock: 1, PageSize: 0},
		{Channels: -1, DiesPerChan: 1, BlocksPerDie: 1, PagesPerBlock: 1, PageSize: 512},
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Errorf("case %d: Validate accepted invalid geometry %+v", i, g)
		}
	}
	if err := testGeo().Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	a := newTestArray(t, true)
	want := bytes.Repeat([]byte{0xAB}, 512)
	if _, err := a.Program(0, Addr{Block: 3, Page: 0}, want); err != nil {
		t.Fatalf("Program: %v", err)
	}
	_, got, err := a.Read(0, Addr{Block: 3, Page: 0})
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read-back mismatch")
	}
}

func TestMetadataOnlyReadsZeros(t *testing.T) {
	a := newTestArray(t, false)
	if _, err := a.Program(0, Addr{Block: 0, Page: 0}, bytes.Repeat([]byte{1}, 512)); err != nil {
		t.Fatalf("Program: %v", err)
	}
	_, got, err := a.Read(0, Addr{Block: 0, Page: 0})
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != 512 || !bytes.Equal(got, make([]byte, 512)) {
		t.Fatal("metadata-only array should return zero-filled pages")
	}
}

func TestProgramNilDataAllowed(t *testing.T) {
	a := newTestArray(t, true)
	if _, err := a.Program(0, Addr{}, nil); err != nil {
		t.Fatalf("nil-data Program: %v", err)
	}
	_, got, err := a.Read(0, Addr{})
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != 512 {
		t.Fatalf("read returned %d bytes, want full page", len(got))
	}
}

func TestProgramOutOfOrderRejected(t *testing.T) {
	a := newTestArray(t, true)
	if _, err := a.Program(0, Addr{Block: 0, Page: 1}, nil); !errors.Is(err, ErrProgramOrder) {
		t.Fatalf("out-of-order Program err = %v, want ErrProgramOrder", err)
	}
}

func TestProgramTwiceRejected(t *testing.T) {
	a := newTestArray(t, true)
	mustProgram(t, a, Addr{Block: 0, Page: 0})
	// Programming page 0 again: the write front moved, so it's an order error.
	if _, err := a.Program(0, Addr{Block: 0, Page: 0}, nil); err == nil {
		t.Fatal("reprogramming a page did not fail")
	}
}

func TestReadFreePageRejected(t *testing.T) {
	a := newTestArray(t, true)
	if _, _, err := a.Read(0, Addr{Block: 1, Page: 0}); !errors.Is(err, ErrReadFree) {
		t.Fatalf("read-free err = %v, want ErrReadFree", err)
	}
}

func TestReadInvalidPageAllowed(t *testing.T) {
	// Invalidated pages are still physically readable until erased; GC in
	// the layers above relies on reading pages it is about to migrate.
	a := newTestArray(t, true)
	mustProgram(t, a, Addr{Block: 0, Page: 0})
	if err := a.Invalidate(Addr{Block: 0, Page: 0}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Read(0, Addr{Block: 0, Page: 0}); err != nil {
		t.Fatalf("reading invalidated page: %v", err)
	}
}

func TestAddressRangeChecks(t *testing.T) {
	a := newTestArray(t, true)
	cases := []Addr{
		{Block: -1, Page: 0},
		{Block: 16, Page: 0},
		{Block: 0, Page: -1},
		{Block: 0, Page: 8},
	}
	for _, addr := range cases {
		if _, err := a.Program(0, addr, nil); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("Program(%v) err = %v, want ErrOutOfRange", addr, err)
		}
		if _, _, err := a.Read(0, addr); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("Read(%v) err = %v, want ErrOutOfRange", addr, err)
		}
	}
	if _, err := a.Erase(0, 99); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Erase(99) err = %v, want ErrOutOfRange", err)
	}
}

func TestWrongDataSizeRejected(t *testing.T) {
	a := newTestArray(t, true)
	if _, err := a.Program(0, Addr{}, []byte{1, 2, 3}); !errors.Is(err, ErrDataSize) {
		t.Fatalf("short-data Program err = %v, want ErrDataSize", err)
	}
}

func TestEraseFreesAndBumpsWear(t *testing.T) {
	a := newTestArray(t, true)
	for p := 0; p < 8; p++ {
		mustProgram(t, a, Addr{Block: 2, Page: p})
	}
	if a.ValidPages(2) != 8 {
		t.Fatalf("ValidPages = %d, want 8", a.ValidPages(2))
	}
	if _, err := a.Erase(0, 2); err != nil {
		t.Fatalf("Erase: %v", err)
	}
	if a.ValidPages(2) != 0 || a.WriteFront(2) != 0 {
		t.Fatal("erase did not reset block state")
	}
	if a.EraseCount(2) != 1 {
		t.Fatalf("EraseCount = %d, want 1", a.EraseCount(2))
	}
	if st, _ := a.State(Addr{Block: 2, Page: 0}); st != PageFree {
		t.Fatalf("page state after erase = %v, want PageFree", st)
	}
	// Block is programmable again from page 0.
	mustProgram(t, a, Addr{Block: 2, Page: 0})
}

func TestInvalidateMaintainsValidCount(t *testing.T) {
	a := newTestArray(t, true)
	for p := 0; p < 4; p++ {
		mustProgram(t, a, Addr{Block: 5, Page: p})
	}
	a.Invalidate(Addr{Block: 5, Page: 1})
	a.Invalidate(Addr{Block: 5, Page: 1}) // double-invalidate is a no-op
	a.Invalidate(Addr{Block: 5, Page: 3})
	if got := a.ValidPages(5); got != 2 {
		t.Fatalf("ValidPages = %d, want 2", got)
	}
}

func TestTimingDieSerialization(t *testing.T) {
	// Two programs to the same die must serialize; to different dies they
	// overlap. Blocks 0 and 4 share die 0 (16 blocks / 4 dies interleaved);
	// blocks 0 and 1 are on different dies.
	g := testGeo()
	a, _ := NewArray(g, DefaultTiming(), false)
	tm := DefaultTiming()

	d1, err := a.Program(0, Addr{Block: 0, Page: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := a.Program(0, Addr{Block: 4, Page: 0}, nil) // same die as block 0
	if err != nil {
		t.Fatal(err)
	}
	if d2 < d1+tm.ProgPage {
		t.Fatalf("same-die programs overlapped: first done %v, second done %v", d1, d2)
	}

	b, _ := NewArray(g, DefaultTiming(), false)
	e1, _ := b.Program(0, Addr{Block: 0, Page: 0}, nil)
	e2, err := b.Program(0, Addr{Block: 1, Page: 0}, nil) // different die & channel
	if err != nil {
		t.Fatal(err)
	}
	if e2 >= e1+tm.ProgPage {
		t.Fatalf("different-die programs fully serialized: %v then %v", e1, e2)
	}
}

func TestTimingMonotoneCompletion(t *testing.T) {
	a := newTestArray(t, false)
	done, err := a.Program(100*time.Microsecond, Addr{Block: 0, Page: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 100*time.Microsecond {
		t.Fatalf("completion %v not after arrival", done)
	}
}

func TestStatsCounters(t *testing.T) {
	a := newTestArray(t, true)
	mustProgram(t, a, Addr{Block: 0, Page: 0})
	a.Read(0, Addr{Block: 0, Page: 0})
	a.Erase(0, 0)
	if a.Programs.Load() != 1 || a.Reads.Load() != 1 || a.Erases.Load() != 1 {
		t.Fatalf("counters = P%d R%d E%d, want 1/1/1",
			a.Programs.Load(), a.Reads.Load(), a.Erases.Load())
	}
	if a.MaxEraseCount() != 1 || a.TotalErases() != 1 {
		t.Fatal("wear accounting wrong")
	}
}

// Property: programming all pages of any block in order always succeeds and
// leaves every page valid; a full erase cycle restores programmability.
func TestBlockLifecycleProperty(t *testing.T) {
	if err := quick.Check(func(blockSel uint8, cycles uint8) bool {
		a, _ := NewArray(testGeo(), DefaultTiming(), false)
		block := int(blockSel) % a.Geometry().Blocks()
		n := int(cycles)%3 + 1
		for c := 0; c < n; c++ {
			for p := 0; p < a.Geometry().PagesPerBlock; p++ {
				if _, err := a.Program(0, Addr{Block: block, Page: p}, nil); err != nil {
					return false
				}
			}
			if a.ValidPages(block) != a.Geometry().PagesPerBlock {
				return false
			}
			if _, err := a.Erase(0, block); err != nil {
				return false
			}
			if a.ValidPages(block) != 0 {
				return false
			}
		}
		return a.EraseCount(block) == uint32(n)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func mustProgram(t *testing.T, a *Array, addr Addr) {
	t.Helper()
	if _, err := a.Program(0, addr, nil); err != nil {
		t.Fatalf("Program(%v): %v", addr, err)
	}
}

// TestStripeBijective checks that the chunked stripe maps the linear page
// indices of a block group onto each physical page exactly once, for several
// chunk sizes including the degenerate per-page round-robin (ChunkPages 1)
// and the no-striping extreme (ChunkPages == PagesPerBlock).
func TestStripeBijective(t *testing.T) {
	const ppb = 8
	for _, chunk := range []int{1, 2, 4, 8} {
		s := Stripe{Blocks: 4, ChunkPages: chunk}
		if err := s.Validate(ppb); err != nil {
			t.Fatalf("Validate(chunk=%d): %v", chunk, err)
		}
		seen := make(map[Addr]int64)
		total := int64(s.Blocks * ppb)
		for p := int64(0); p < total; p++ {
			a := s.Addr(10, p)
			if a.Block < 10 || a.Block >= 10+s.Blocks {
				t.Fatalf("chunk=%d p=%d block %d outside group [10,%d)", chunk, p, a.Block, 10+s.Blocks)
			}
			if a.Page < 0 || a.Page >= ppb {
				t.Fatalf("chunk=%d p=%d page %d outside [0,%d)", chunk, p, a.Page, ppb)
			}
			if prev, dup := seen[a]; dup {
				t.Fatalf("chunk=%d p=%d maps to %v, already claimed by p=%d", chunk, p, a, prev)
			}
			seen[a] = p
		}
		if int64(len(seen)) != total {
			t.Fatalf("chunk=%d mapped %d distinct pages, want %d", chunk, len(seen), total)
		}
	}
}

// TestStripeSequentialWithinBlock checks that a sequential sweep of linear
// indices visits each block's pages in strictly increasing order — the
// property that lets a zone write program NAND pages in-order per block.
func TestStripeSequentialWithinBlock(t *testing.T) {
	const ppb = 16
	s := Stripe{Blocks: 4, ChunkPages: 2}
	last := make(map[int]int)
	for b := 0; b < s.Blocks; b++ {
		last[b] = -1
	}
	for p := int64(0); p < int64(s.Blocks*ppb); p++ {
		a := s.Addr(0, p)
		if a.Page != last[a.Block]+1 {
			t.Fatalf("p=%d block %d jumps page %d -> %d", p, a.Block, last[a.Block], a.Page)
		}
		last[a.Block] = a.Page
	}
}

// TestStripeChunkLocality checks the two halves of the striping bargain: a
// sub-chunk run stays on one block (one die — small writes serialize), while
// a run spanning k chunks touches k consecutive blocks (large writes
// parallelize across dies).
func TestStripeChunkLocality(t *testing.T) {
	s := Stripe{Blocks: 4, ChunkPages: 4}
	// Pages 0..3 are one chunk: all on the group's first block.
	for p := int64(0); p < 4; p++ {
		if a := s.Addr(0, p); a.Block != 0 {
			t.Fatalf("p=%d block %d, want 0 (single-chunk run must stay on one die)", p, a.Block)
		}
	}
	// A 16-page run covers 4 chunks: one per block.
	blocks := make(map[int]bool)
	for p := int64(0); p < 16; p++ {
		blocks[s.Addr(0, p).Block] = true
	}
	if len(blocks) != 4 {
		t.Fatalf("16-page run touched %d blocks, want 4", len(blocks))
	}
	// Chunk i lands on block i.
	for i := int64(0); i < 4; i++ {
		if a := s.Addr(0, i*4); a.Block != int(i) {
			t.Fatalf("chunk %d starts on block %d, want %d", i, a.Block, i)
		}
	}
}

// TestStripeChunkOneMatchesRoundRobin pins ChunkPages=1 to the historical
// per-page round-robin mapping, so configs that ask for it reproduce the old
// behavior exactly.
func TestStripeChunkOneMatchesRoundRobin(t *testing.T) {
	s := Stripe{Blocks: 4, ChunkPages: 1}
	for p := int64(0); p < 64; p++ {
		want := Addr{Block: int(p % 4), Page: int(p / 4)}
		if got := s.Addr(0, p); got != want {
			t.Fatalf("p=%d: got %v, want %v", p, got, want)
		}
	}
}

// TestStripeValidate covers the rejection cases.
func TestStripeValidate(t *testing.T) {
	cases := []struct {
		s   Stripe
		ppb int
		ok  bool
	}{
		{Stripe{Blocks: 4, ChunkPages: 2}, 8, true},
		{Stripe{Blocks: 1, ChunkPages: 8}, 8, true},
		{Stripe{Blocks: 0, ChunkPages: 2}, 8, false},  // no blocks
		{Stripe{Blocks: -1, ChunkPages: 2}, 8, false}, // negative blocks
		{Stripe{Blocks: 4, ChunkPages: 0}, 8, false},  // no chunk
		{Stripe{Blocks: 4, ChunkPages: 16}, 8, false}, // chunk > block
		{Stripe{Blocks: 4, ChunkPages: 3}, 8, false},  // does not divide
	}
	for _, c := range cases {
		err := c.s.Validate(c.ppb)
		if c.ok && err != nil {
			t.Errorf("Validate(%+v, ppb=%d) = %v, want nil", c.s, c.ppb, err)
		}
		if !c.ok && err == nil {
			t.Errorf("Validate(%+v, ppb=%d) = nil, want error", c.s, c.ppb)
		}
	}
}
