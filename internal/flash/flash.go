// Package flash models a NAND flash array: channels, dies, blocks, and
// pages, with program/read/erase timing, per-die and per-channel queueing,
// and wear (erase-count) accounting.
//
// Both simulated devices in this repository — the regular block SSD
// (internal/ssd) and the zoned-namespace SSD (internal/zns) — are built on
// the same Array with the same geometry and timing, mirroring the paper's
// setup where the WD ZN540 (ZNS) and SN540 (regular) are "hardware
// compatible" devices differing only in interface and over-provisioning.
//
// The array is purely mechanical about time: every operation takes the
// caller's arrival time and returns its completion time, computed from
// per-die service times and per-channel transfer slots. Callers (the FTL,
// the zone manager) decide how those latencies propagate to the host.
package flash

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"znscache/internal/sim"
	"znscache/internal/stats"
)

// PageState tracks the lifecycle of a physical page.
type PageState uint8

// Page lifecycle states. A free page has never been programmed since the
// last erase; a valid page holds live data; an invalid page holds data that
// has been superseded and awaits erase.
const (
	PageFree PageState = iota
	PageValid
	PageInvalid
)

// Geometry describes the physical layout of the array.
type Geometry struct {
	Channels      int // independent buses
	DiesPerChan   int // dies sharing one bus
	BlocksPerDie  int
	PagesPerBlock int
	PageSize      int // bytes
}

// Dies returns the total die count.
func (g Geometry) Dies() int { return g.Channels * g.DiesPerChan }

// Blocks returns the total block count.
func (g Geometry) Blocks() int { return g.Dies() * g.BlocksPerDie }

// Pages returns the total page count.
func (g Geometry) Pages() int { return g.Blocks() * g.PagesPerBlock }

// TotalBytes returns the raw capacity in bytes.
func (g Geometry) TotalBytes() int64 {
	return int64(g.Pages()) * int64(g.PageSize)
}

// BlockBytes returns the bytes held by one block.
func (g Geometry) BlockBytes() int64 {
	return int64(g.PagesPerBlock) * int64(g.PageSize)
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0:
		return errors.New("flash: Channels must be positive")
	case g.DiesPerChan <= 0:
		return errors.New("flash: DiesPerChan must be positive")
	case g.BlocksPerDie <= 0:
		return errors.New("flash: BlocksPerDie must be positive")
	case g.PagesPerBlock <= 0:
		return errors.New("flash: PagesPerBlock must be positive")
	case g.PageSize <= 0:
		return errors.New("flash: PageSize must be positive")
	}
	return nil
}

// Timing holds NAND operation latencies, normalized to the model's 4 KiB
// page. Real TLC programs a 16 KiB page (×4 planes) in ~400µs; per 4 KiB of
// bandwidth that is ~25–100µs. The default uses 100µs so one die sustains
// ~40 MB/s and a 16-die array ~640 MB/s — NVMe-class, keeping experiments
// latency- and software-bound like the paper's testbed rather than
// artificially bandwidth-bound.
type Timing struct {
	ReadPage   time.Duration // cell read (die busy)
	ProgPage   time.Duration // cell program (die busy)
	EraseBlock time.Duration // block erase (die busy)
	Transfer   time.Duration // one page over the channel bus
}

// DefaultTiming returns TLC-class timing normalized to 4 KiB pages.
func DefaultTiming() Timing {
	return Timing{
		ReadPage:   50 * time.Microsecond,
		ProgPage:   100 * time.Microsecond,
		EraseBlock: 2 * time.Millisecond,
		Transfer:   8 * time.Microsecond,
	}
}

// Addr names one physical page: a global block index and page-in-block.
type Addr struct {
	Block int
	Page  int
}

// Stripe maps the linear page sequence of a block group (a zone) onto its
// blocks in chunks: ChunkPages consecutive pages land on one block before
// the mapping advances to the next, wrapping around the group. Blocks with
// consecutive indices interleave across dies (dieOf), so a write shorter
// than one chunk occupies a single die while a multi-chunk write spreads
// across up to Blocks dies — the intra-zone parallelism asymmetry real
// zoned drives show between small and large sequential writes.
//
// Because the linear sequence visits each block's pages in increasing
// order, the mapping preserves the NAND in-block program-order rule for
// any sequential (write-pointer-ordered) producer.
type Stripe struct {
	Blocks     int // blocks in the group
	ChunkPages int // consecutive pages per block before advancing
}

// Validate reports whether the stripe is usable over blocks of the given
// page count. ChunkPages must divide PagesPerBlock: otherwise the wrap from
// the group's last block back to the first would land mid-chunk and map
// pages past the end of a block.
func (s Stripe) Validate(pagesPerBlock int) error {
	switch {
	case s.Blocks <= 0:
		return errors.New("flash: stripe Blocks must be positive")
	case s.ChunkPages <= 0:
		return errors.New("flash: stripe ChunkPages must be positive")
	case s.ChunkPages > pagesPerBlock:
		return fmt.Errorf("flash: stripe ChunkPages %d exceeds PagesPerBlock %d",
			s.ChunkPages, pagesPerBlock)
	case pagesPerBlock%s.ChunkPages != 0:
		return fmt.Errorf("flash: stripe ChunkPages %d does not divide PagesPerBlock %d",
			s.ChunkPages, pagesPerBlock)
	}
	return nil
}

// Addr maps linear page index p of the group starting at firstBlock to its
// physical page.
func (s Stripe) Addr(firstBlock int, p int64) Addr {
	chunk := p / int64(s.ChunkPages)
	blockInGroup := chunk % int64(s.Blocks)
	page := (chunk/int64(s.Blocks))*int64(s.ChunkPages) + p%int64(s.ChunkPages)
	return Addr{Block: firstBlock + int(blockInGroup), Page: int(page)}
}

// String renders the address for diagnostics.
func (a Addr) String() string { return fmt.Sprintf("b%d/p%d", a.Block, a.Page) }

// Errors returned by Array operations.
var (
	ErrOutOfRange   = errors.New("flash: address out of range")
	ErrProgramOrder = errors.New("flash: pages within a block must be programmed sequentially")
	ErrProgramTwice = errors.New("flash: page already programmed since last erase")
	ErrReadFree     = errors.New("flash: reading a free (erased) page")
	ErrDataSize     = errors.New("flash: data length does not match page size")
)

// blockMeta is per-block bookkeeping.
type blockMeta struct {
	states     []PageState
	writeFront int // next programmable page (NAND in-block program order)
	eraseCount uint32
	valid      int // live page count, maintained for GC victim selection
}

// Array is a simulated NAND array. It is safe for concurrent use.
type Array struct {
	geo    Geometry
	timing Timing

	mu        sync.Mutex
	blocks    []blockMeta
	data      map[int64][]byte // page index -> payload; nil when !storeData
	storeData bool

	dies     []sim.Busy // die-level service
	channels []sim.Busy // bus-level transfer

	// Stats visible to the harness.
	Reads    stats.Counter
	Programs stats.Counter
	Erases   stats.Counter
}

// NewArray builds an array. storeData controls whether page payloads are
// retained: correctness tests use true; large benchmarks use false, in
// which case reads return zero-filled pages while all state transitions,
// ordering rules, timing, and wear accounting remain exact.
func NewArray(geo Geometry, timing Timing, storeData bool) (*Array, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	a := &Array{
		geo:       geo,
		timing:    timing,
		blocks:    make([]blockMeta, geo.Blocks()),
		dies:      make([]sim.Busy, geo.Dies()),
		channels:  make([]sim.Busy, geo.Channels),
		storeData: storeData,
	}
	if storeData {
		a.data = make(map[int64][]byte)
	}
	for i := range a.blocks {
		a.blocks[i].states = make([]PageState, geo.PagesPerBlock)
	}
	return a, nil
}

// Geometry returns the array layout.
func (a *Array) Geometry() Geometry { return a.geo }

// Timing returns the operation latencies.
func (a *Array) Timing() Timing { return a.timing }

// dieOf maps a block to its die; blocks are interleaved across dies so that
// consecutive block indices land on different dies (maximizing parallelism
// for striped writes).
func (a *Array) dieOf(block int) int { return block % a.geo.Dies() }

// chanOf maps a die to its channel.
func (a *Array) chanOf(die int) int { return die % a.geo.Channels }

func (a *Array) checkAddr(addr Addr) error {
	if addr.Block < 0 || addr.Block >= a.geo.Blocks() ||
		addr.Page < 0 || addr.Page >= a.geo.PagesPerBlock {
		return fmt.Errorf("%w: %v", ErrOutOfRange, addr)
	}
	return nil
}

func (a *Array) pageIndex(addr Addr) int64 {
	return int64(addr.Block)*int64(a.geo.PagesPerBlock) + int64(addr.Page)
}

// occupy reserves die + channel for one operation arriving at now with die
// service time svc, and returns the completion time.
func (a *Array) occupy(now time.Duration, block int, svc time.Duration) time.Duration {
	die := a.dieOf(block)
	ch := a.chanOf(die)
	// Channel transfer happens first (command+data in), then die service.
	_, xferDone := a.channels[ch].Acquire(now, a.timing.Transfer)
	_, done := a.dies[die].Acquire(xferDone, svc)
	return done
}

// Program writes one page. data must be exactly PageSize bytes, or nil for
// a metadata-only write (allowed regardless of storeData; the page is
// recorded as valid with zero content). Pages within a block must be
// programmed in order, each exactly once between erases — the NAND rule the
// ZNS interface exposes and the FTL hides.
func (a *Array) Program(now time.Duration, addr Addr, data []byte) (time.Duration, error) {
	if err := a.checkAddr(addr); err != nil {
		return now, err
	}
	if data != nil && len(data) != a.geo.PageSize {
		return now, fmt.Errorf("%w: got %d want %d", ErrDataSize, len(data), a.geo.PageSize)
	}
	a.mu.Lock()
	b := &a.blocks[addr.Block]
	if addr.Page != b.writeFront {
		a.mu.Unlock()
		return now, fmt.Errorf("%w: block %d next=%d got=%d", ErrProgramOrder, addr.Block, b.writeFront, addr.Page)
	}
	if b.states[addr.Page] != PageFree {
		a.mu.Unlock()
		return now, fmt.Errorf("%w: %v", ErrProgramTwice, addr)
	}
	b.states[addr.Page] = PageValid
	b.writeFront++
	b.valid++
	if a.storeData && data != nil {
		buf := make([]byte, len(data))
		copy(buf, data)
		a.data[a.pageIndex(addr)] = buf
	}
	a.mu.Unlock()

	a.Programs.Inc()
	return a.occupy(now, addr.Block, a.timing.ProgPage), nil
}

// Read returns the page payload (zero-filled when payloads are not stored)
// and the completion time. Reading a free page is an error: it means the
// layer above lost track of its mapping.
func (a *Array) Read(now time.Duration, addr Addr) (time.Duration, []byte, error) {
	if err := a.checkAddr(addr); err != nil {
		return now, nil, err
	}
	a.mu.Lock()
	b := &a.blocks[addr.Block]
	if b.states[addr.Page] == PageFree {
		a.mu.Unlock()
		return now, nil, fmt.Errorf("%w: %v", ErrReadFree, addr)
	}
	var out []byte
	if a.storeData {
		if d, ok := a.data[a.pageIndex(addr)]; ok {
			out = make([]byte, len(d))
			copy(out, d)
		}
	}
	a.mu.Unlock()
	if out == nil {
		out = make([]byte, a.geo.PageSize)
	}

	a.Reads.Inc()
	return a.occupy(now, addr.Block, a.timing.ReadPage), out, nil
}

// Invalidate marks a page dead (its logical data was overwritten or
// discarded). It is a metadata operation with no media latency.
func (a *Array) Invalidate(addr Addr) error {
	if err := a.checkAddr(addr); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b := &a.blocks[addr.Block]
	if b.states[addr.Page] == PageValid {
		b.states[addr.Page] = PageInvalid
		b.valid--
	}
	return nil
}

// Erase wipes a block, freeing all pages and bumping its wear count.
func (a *Array) Erase(now time.Duration, block int) (time.Duration, error) {
	if block < 0 || block >= a.geo.Blocks() {
		return now, fmt.Errorf("%w: block %d", ErrOutOfRange, block)
	}
	a.mu.Lock()
	b := &a.blocks[block]
	for i := range b.states {
		b.states[i] = PageFree
		if a.storeData {
			delete(a.data, a.pageIndex(Addr{Block: block, Page: i}))
		}
	}
	b.writeFront = 0
	b.valid = 0
	b.eraseCount++
	a.mu.Unlock()

	a.Erases.Inc()
	return a.occupy(now, block, a.timing.EraseBlock), nil
}

// State returns the lifecycle state of one page.
func (a *Array) State(addr Addr) (PageState, error) {
	if err := a.checkAddr(addr); err != nil {
		return PageFree, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.blocks[addr.Block].states[addr.Page], nil
}

// ValidPages returns the live-page count of a block (for GC victim choice).
func (a *Array) ValidPages(block int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.blocks[block].valid
}

// WriteFront returns the next programmable page index of a block.
func (a *Array) WriteFront(block int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.blocks[block].writeFront
}

// EraseCount returns the wear count of a block.
func (a *Array) EraseCount(block int) uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.blocks[block].eraseCount
}

// MaxEraseCount returns the highest wear across all blocks, a proxy for the
// lifespan arguments in the paper (§1: "additional in-device data movements
// will further decrease the lifespan").
func (a *Array) MaxEraseCount() uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var max uint32
	for i := range a.blocks {
		if a.blocks[i].eraseCount > max {
			max = a.blocks[i].eraseCount
		}
	}
	return max
}

// TotalErases returns the sum of erase counts across all blocks.
func (a *Array) TotalErases() uint64 { return a.Erases.Load() }
