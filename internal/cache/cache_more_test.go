package cache

import (
	"fmt"
	"testing"
	"time"
)

func TestWouldBlockStates(t *testing.T) {
	st := newMemStore(8, 4096)
	st.writeLat = 50 * time.Millisecond
	c, err := New(Config{Store: st, BufferMemory: 8192}) // pipeline depth 1
	if err != nil {
		t.Fatal(err)
	}
	// Empty open region: plenty of room, never blocks.
	if c.WouldBlock(4, 1000) {
		t.Fatal("WouldBlock true on empty region")
	}
	// Fill the open region so the next insert must roll, and saturate the
	// pipeline with an in-flight flush.
	for i := 0; i < 3; i++ {
		c.Set(fmt.Sprintf("k%d", i), nil, 1000)
	}
	c.Set("roll", nil, 1000) // rolls region 0: flush in flight (50ms)
	for i := 0; i < 2; i++ {
		c.Set(fmt.Sprintf("fill%d", i), nil, 1000)
	}
	// Open region is nearly full again and the only buffer slot is still
	// flushing: a roll-requiring insert would block.
	if !c.WouldBlock(4, 2100) {
		t.Fatal("WouldBlock false with saturated pipeline and full region")
	}
	// An insert that fits the open region never blocks.
	if c.WouldBlock(1, 1) {
		t.Fatal("WouldBlock true for an item that fits")
	}
}

func TestDrainIdempotent(t *testing.T) {
	c, _ := newTestCache(t, 8, 4096)
	for i := 0; i < 20; i++ {
		c.Set(fmt.Sprintf("k%d", i), nil, 1000)
	}
	c.Drain()
	before := c.Clock().Now()
	c.Drain()
	if c.Clock().Now() != before {
		t.Fatal("second Drain advanced time")
	}
}

func TestOverwriteDecrementsOldRegionLive(t *testing.T) {
	c, _ := newTestCache(t, 8, 4096)
	c.Set("k", nil, 1000)
	// Push "k"'s region out by filling, then overwrite k.
	for i := 0; i < 3; i++ {
		c.Set(fmt.Sprintf("f%d", i), nil, 1000)
	}
	oldRegion := c.index["k"].region
	c.Set("k", nil, 1000)
	if c.index["k"].region == oldRegion {
		t.Fatal("overwrite stayed in a sealed region")
	}
	if c.regions[oldRegion].live != 3 {
		t.Fatalf("old region live = %d, want 3 after overwrite", c.regions[oldRegion].live)
	}
}

func TestHitsSaturateWithoutOverflow(t *testing.T) {
	c, _ := newTestCache(t, 4, 64<<10)
	c.Set("k", nil, 10)
	for i := 0; i < 300; i++ { // > 255 accesses
		if _, ok, _ := c.Get("k"); !ok {
			t.Fatal("lost key")
		}
	}
	if c.index["k"].hits != 255 {
		t.Fatalf("hits = %d, want saturated 255", c.index["k"].hits)
	}
}

func TestFillLogSeqContinuesAcrossEvictions(t *testing.T) {
	c, _ := newTestCache(t, 4, 4096)
	for i := 0; c.Stats().Evictions < 5; i++ {
		c.Set(fmt.Sprintf("key-%06d", i), nil, 1000)
	}
	log := c.FillLog()
	for i := 1; i < len(log); i++ {
		if log[i].Seq != log[i-1].Seq+1 {
			t.Fatalf("fill seq gap at %d", i)
		}
	}
}

func TestMetadataGetFromSealedRegion(t *testing.T) {
	// Without TrackValues, sealed-region gets still pay the device read and
	// return found=true with nil payload.
	st := newMemStore(8, 4096)
	st.readLat = 5 * time.Millisecond
	c, err := New(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	c.Set("k0", nil, 1000)
	for i := 1; i < 8; i++ {
		c.Set(fmt.Sprintf("k%d", i), nil, 1000)
	}
	c.Drain()
	before := c.Clock().Now()
	v, ok, err := c.Get("k0")
	if err != nil || !ok || v != nil {
		t.Fatalf("Get = (%v, %v, %v)", v, ok, err)
	}
	if c.Clock().Now()-before < 5*time.Millisecond {
		t.Fatal("sealed metadata get skipped the device read")
	}
}

func TestInvalidateRegionIgnoresNonSealed(t *testing.T) {
	c, _ := newTestCache(t, 4, 64<<10)
	c.Set("k", nil, 10)
	c.InvalidateRegion(0) // region 0 is open
	if !c.Contains("k") {
		t.Fatal("InvalidateRegion dropped the open region")
	}
	c.InvalidateRegion(-1) // out of range: must not panic
	c.InvalidateRegion(99)
}

func TestRegionDroppableBounds(t *testing.T) {
	c, _ := newTestCache(t, 4, 4096)
	if c.RegionDroppable(-1, 1) || c.RegionDroppable(99, 1) {
		t.Fatal("out-of-range region droppable")
	}
	if c.RegionDroppable(0, 1) {
		t.Fatal("open region droppable")
	}
	// Seal regions, then the coldest must be droppable at frac 1.0.
	for i := 0; i < 12; i++ {
		c.Set(fmt.Sprintf("k%d", i), nil, 1000)
	}
	c.Drain()
	found := false
	for id := 0; id < 4; id++ {
		if c.RegionDroppable(id, 1.0) {
			found = true
		}
	}
	if !found {
		t.Fatal("no sealed region droppable at coldFrac=1.0")
	}
	// coldFrac 0 never drops.
	for id := 0; id < 4; id++ {
		if c.RegionDroppable(id, 0) {
			t.Fatal("droppable at coldFrac=0")
		}
	}
}

func TestEvictedKeysNotFiredForReinserted(t *testing.T) {
	st := newMemStore(4, 4096)
	c, err := New(Config{Store: st, ReinsertHits: 1, Policy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	var dropped []string
	c.EvictedKeys = func(keys []string) { dropped = append(dropped, keys...) }
	c.Set("hot", nil, 1000)
	c.Get("hot")
	for i := 0; c.Stats().Evictions < 1; i++ {
		c.Set(fmt.Sprintf("cold%04d", i), nil, 1000)
	}
	if c.Stats().Reinsertions == 0 {
		t.Skip("hot region not yet evicted in this layout")
	}
	for _, k := range dropped {
		if k == "hot" {
			t.Fatal("reinserted key reported as evicted")
		}
	}
}

func TestBufferMemoryBelowRegionRejected(t *testing.T) {
	st := newMemStore(4, 64<<10)
	if _, err := New(Config{Store: st, BufferMemory: 4096}); err == nil {
		t.Fatal("BufferMemory < RegionSize accepted")
	}
}

func TestStatsReinsertionsCounted(t *testing.T) {
	st := newMemStore(4, 4096)
	c, _ := New(Config{Store: st, ReinsertHits: 1, Policy: FIFO})
	c.Set("hot", nil, 1000)
	c.Get("hot")
	for i := 0; c.Stats().Evictions < 3; i++ {
		c.Set(fmt.Sprintf("cold%05d", i), nil, 1000)
	}
	if c.Stats().Reinsertions == 0 {
		t.Fatal("reinsertions not counted in stats")
	}
}

func TestTTLExpiryOnVirtualClock(t *testing.T) {
	c, _ := newTestCache(t, 4, 64<<10)
	if err := c.SetTTL("short", []byte("v"), 0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	c.Set("forever", []byte("v"), 0)
	if _, ok, _ := c.Get("short"); !ok {
		t.Fatal("item expired immediately")
	}
	// Advance the virtual clock past the TTL.
	c.Clock().Advance(5 * time.Second)
	if _, ok, _ := c.Get("short"); ok {
		t.Fatal("item survived its TTL")
	}
	if c.Stats().Expirations != 1 {
		t.Fatalf("Expirations = %d, want 1", c.Stats().Expirations)
	}
	if _, ok, _ := c.Get("forever"); !ok {
		t.Fatal("no-TTL item expired")
	}
	// Re-setting the key resurrects it with a fresh TTL.
	c.SetTTL("short", []byte("v2"), 0, time.Hour)
	if _, ok, _ := c.Get("short"); !ok {
		t.Fatal("re-set item missing")
	}
}

func TestTTLSurvivesSnapshot(t *testing.T) {
	st := newMemStore(4, 64<<10)
	c, _ := New(Config{Store: st, TrackValues: true})
	c.SetTTL("k", []byte("v"), 0, time.Second)
	// Seal the region so the key survives the restart (open-region keys
	// are dropped by design).
	for i := 0; i < 70; i++ {
		c.Set(fmt.Sprintf("fill-%03d", i), make([]byte, 1000), 0)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	clock := c.Clock()
	r, err := Restore(Config{Store: st, TrackValues: true, Clock: clock}, snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := r.Get("k"); !ok {
		t.Skip("key landed in the open region; TTL persistence untestable here")
	}
	clock.Advance(time.Hour)
	if _, ok, _ := r.Get("k"); ok {
		t.Fatal("TTL lost across snapshot/restore")
	}
}
