package cache

import (
	"sync"
	"time"

	"znscache/internal/stats"
)

// This file implements the lock-free read path (DESIGN.md §12): an RCU-style
// copy-on-write read index maintained alongside the engine's authoritative
// index. The engine itself stays single-threaded — every structure it owns
// (index map, region table, eviction order) is only touched under the shard
// write lock — but mutators additionally publish an immutable per-key view
// into a sync.Map that concurrent readers may consult without any lock.
//
// The contract:
//
//   - A readEntry is immutable after publication. Mutators never modify a
//     published entry; they Store a fresh one (copy-on-write) or Delete it.
//     Readers therefore only ever observe a complete, consistent view.
//   - The read index mirrors the authoritative index: every insert publishes
//     (appendItem), every removal unpublishes (delete/expiry/eviction/loss).
//     A reader that misses the read index may correctly report a miss; the
//     only transient skew a concurrent reader can observe is a spurious miss
//     mid-eviction-reinsert — never stale or wrong bytes.
//   - Side effects a classic Get performs under the lock (LRU recency, the
//     reinsertion hit counter, lazy TTL removal) are deferred: the fast path
//     enqueues a note into a bounded queue, and mutators drain the queue at
//     the top of every locked operation. The queue drops on overflow (the
//     drop is counted) — recency hints are advisory, correctness never
//     depends on a note being processed.
//   - Fast reads do not advance the virtual clock. The simulated-time model
//     belongs to the single-threaded replay; a concurrent serving workload
//     observes the constant index-lookup cost in the latency histogram and
//     leaves the clock to the mutators.

// readEntry is one published item: an immutable value copy plus the TTL
// deadline. val is nil for metadata-only items (or TrackValues off), in
// which case servable is false and value-returning reads fall back to the
// locked path (which may promote the entry after a verified sealed read).
type readEntry struct {
	val      []byte
	servable bool
	expireAt uint32 // virtual-clock second; 0 = no TTL
}

// readNote is one deferred side effect observed by the lock-free path.
type readNote struct {
	key    string
	expire bool // true: TTL expiry observed; false: touch (recency + hits)
}

// readNoteCap bounds the deferred-note queue. Overflow drops notes (counted
// in noteDrops): under a read-only storm with no mutator to drain the queue,
// recency hints are shed rather than memory grown.
const readNoteCap = 4096

// readIndex is the lock-free view. All mutation happens on the engine's
// (locked, single-threaded) side; Load and the note queue are the only
// concurrent surfaces.
type readIndex struct {
	m sync.Map // string -> *readEntry

	noteMu sync.Mutex
	notes  []readNote
	spare  []readNote // swap buffer so draining never allocates

	fastHits   stats.Counter // gets answered without the shard lock
	fastMisses stats.Counter // misses answered without the shard lock
	noteDrops  stats.Counter // deferred notes shed on queue overflow
}

func newReadIndex() *readIndex {
	return &readIndex{
		notes: make([]readNote, 0, readNoteCap),
		spare: make([]readNote, 0, readNoteCap),
	}
}

// publish installs a fresh immutable entry for key. val must be a private
// copy the caller relinquishes; it is served to concurrent readers as-is.
func (ri *readIndex) publish(key string, val []byte, expireAt uint32) {
	ri.m.Store(key, &readEntry{val: val, servable: val != nil, expireAt: expireAt})
}

// setExpire re-publishes key with a new TTL deadline (copy-on-write: the
// value slice is shared between the old and new entry — both immutable).
func (ri *readIndex) setExpire(key string, expireAt uint32) {
	if v, ok := ri.m.Load(key); ok {
		old := v.(*readEntry)
		ri.m.Store(key, &readEntry{val: old.val, servable: old.servable, expireAt: expireAt})
	}
}

// unpublish removes key from the read index.
func (ri *readIndex) unpublish(key string) {
	ri.m.Delete(key)
}

// note enqueues a deferred side effect, dropping it if the queue is full.
func (ri *readIndex) note(n readNote) {
	ri.noteMu.Lock()
	if len(ri.notes) >= readNoteCap {
		ri.noteMu.Unlock()
		ri.noteDrops.Inc()
		return
	}
	ri.notes = append(ri.notes, n)
	ri.noteMu.Unlock()
}

// expired reports whether the entry's TTL deadline has passed at virtual
// time now.
func (e *readEntry) expired(now time.Duration) bool {
	return e.expireAt != 0 && now >= time.Duration(e.expireAt)*time.Second
}

// TryFastGet attempts to answer a Get without the shard lock. done reports
// whether the lookup was fully answered; when done is false the caller must
// retry on the locked path. On a hit the returned slice is the read index's
// immutable copy — callers must treat it as read-only.
//
// Accounting on the fast path: the op and hit/miss counters are atomic and
// updated immediately; the latency histogram observes the constant index
// lookup cost; recency/TTL side effects become deferred notes. The virtual
// clock is not advanced.
func (c *Cache) TryFastGet(key string) (val []byte, found, done bool) {
	ri := c.reads
	if ri == nil {
		return nil, false, false
	}
	v, ok := ri.m.Load(key)
	if !ok {
		c.gets.Inc()
		c.hitRatio.Miss()
		c.getLat.Observe(c.cpu.IndexLookup)
		ri.fastMisses.Inc()
		return nil, false, true
	}
	e := v.(*readEntry)
	if e.expired(c.clock.Now()) {
		// Reader-side lazy expiry: remove exactly the entry we loaded (a
		// concurrent re-Set's fresh entry survives the CompareAndDelete) and
		// leave the authoritative cleanup to a mutator via the note queue.
		ri.m.CompareAndDelete(key, v)
		ri.note(readNote{key: key, expire: true})
		c.gets.Inc()
		c.hitRatio.Miss()
		c.getLat.Observe(c.cpu.IndexLookup)
		ri.fastMisses.Inc()
		return nil, false, true
	}
	if !e.servable && c.cfg.TrackValues {
		// Value bytes not in DRAM (metadata-only insert, or a restored entry
		// not yet promoted): the locked path must perform the device read.
		return nil, false, false
	}
	ri.note(readNote{key: key})
	c.gets.Inc()
	c.hitRatio.Hit()
	c.getLat.Observe(c.cpu.IndexLookup)
	ri.fastHits.Inc()
	return e.val, true, true
}

// TryFastContains answers Contains without the shard lock; done=false means
// the read index is disabled and the caller must use the locked path.
func (c *Cache) TryFastContains(key string) (found, done bool) {
	ri := c.reads
	if ri == nil {
		return false, false
	}
	v, ok := ri.m.Load(key)
	if !ok {
		return false, true
	}
	e := v.(*readEntry)
	if e.expired(c.clock.Now()) {
		ri.m.CompareAndDelete(key, v)
		ri.note(readNote{key: key, expire: true})
		return false, true
	}
	return true, true
}

// drainReadNotes applies the deferred side effects accumulated by the fast
// path. It must run under the shard write lock (the engine's single-threaded
// context): it touches the authoritative index, the eviction order, and the
// expiry counters. Called at the top of every locked operation so note
// processing points are deterministic under a per-shard replay.
func (c *Cache) drainReadNotes() {
	ri := c.reads
	if ri == nil {
		return
	}
	ri.noteMu.Lock()
	if len(ri.notes) == 0 {
		ri.noteMu.Unlock()
		return
	}
	batch := ri.notes
	ri.notes = ri.spare[:0]
	ri.noteMu.Unlock()

	now := c.clock.Now()
	for _, n := range batch {
		e, ok := c.index[n.key]
		if !ok {
			continue
		}
		if n.expire {
			// Re-check: a Set after the reader's observation may have
			// replaced the item with a live one — only remove if the entry
			// is still past its deadline.
			if e.expireAt != 0 && now >= time.Duration(e.expireAt)*time.Second {
				delete(c.index, n.key)
				if m := &c.regions[e.region]; m.live > 0 {
					m.live--
				}
				c.expirations.Inc()
				ri.unpublish(n.key)
			}
			continue
		}
		// Touch: the recency and reinsertion-counter effects of a classic
		// locked Get.
		if e.hits < ^uint8(0) {
			e.hits++
			c.index[n.key] = e
		}
		if c.cfg.Policy == LRU {
			if m := &c.regions[e.region]; m.elem != nil && m.elem != c.order.Front() {
				c.order.MoveToFront(m.elem)
				c.orderVer++
			}
		}
	}
	ri.spare = batch[:0]
}

// promoteRead publishes a servable copy of val for key after a verified
// sealed-region read, so subsequent Gets are answered lock-free. No-op when
// the entry is already servable.
func (c *Cache) promoteRead(key string, e entry, val []byte) {
	ri := c.reads
	if ri == nil || val == nil {
		return
	}
	if v, ok := ri.m.Load(key); ok && v.(*readEntry).servable {
		return
	}
	ri.publish(key, append([]byte(nil), val...), e.expireAt)
}

// FastReadStats reports the lock-free path's counters: gets answered without
// the shard lock (hits, misses) and deferred notes dropped on overflow.
// Zeros when the read index is disabled.
func (c *Cache) FastReadStats() (fastHits, fastMisses, noteDrops uint64) {
	if c.reads == nil {
		return 0, 0, 0
	}
	return c.reads.fastHits.Load(), c.reads.fastMisses.Load(), c.reads.noteDrops.Load()
}
