package cache

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
)

// sizedStore is a memStore that reports a configurable readable extent per
// region, modelling a zone whose write pointer ended up short of what the
// snapshot recorded (torn flush, post-snapshot reset).
type sizedStore struct {
	*memStore
	avail map[int]int64 // readable-bytes override; absent → whole region
}

func (s *sizedStore) RegionReadableBytes(id int) (int64, bool) {
	if v, ok := s.avail[id]; ok {
		return v, true
	}
	return s.regionSize, true
}

// fillSealed builds a cache over ss, fills enough regions to seal several,
// and returns the written values plus a sealed region holding at least two
// entries, sorted by offset.
func fillSealed(t *testing.T, ss *sizedStore) (*Cache, map[string][]byte, int, []entry, []string) {
	t.Helper()
	c, err := New(Config{Store: ss, TrackValues: true})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][]byte{}
	for i := 0; i < 24; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v := bytes.Repeat([]byte{byte(i + 1)}, 900)
		vals[k] = v
		if err := c.Set(k, v, 0); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain()
	byRegion := map[int][]string{}
	for k, e := range c.index {
		if int(e.region) != c.open && c.regions[e.region].state == regionSealed {
			byRegion[int(e.region)] = append(byRegion[int(e.region)], k)
		}
	}
	for id, keys := range byRegion {
		if len(keys) < 2 {
			continue
		}
		sort.Slice(keys, func(a, b int) bool {
			return c.index[keys[a]].offset < c.index[keys[b]].offset
		})
		ents := make([]entry, len(keys))
		for i, k := range keys {
			ents[i] = c.index[k]
		}
		return c, vals, id, ents, keys
	}
	t.Fatal("no sealed region with two entries; test setup broken")
	return nil, nil, 0, nil, nil
}

// TestRestoreTruncatesOverstatedFill is the regression test for the repair
// pass: when a restored region's snapshot Fill exceeds what the store can
// actually serve, Restore truncates to the readable extent — entries past
// it are dropped and counted, entries before it keep working.
func TestRestoreTruncatesOverstatedFill(t *testing.T) {
	ss := &sizedStore{memStore: newMemStore(8, 4096), avail: map[int]int64{}}
	c, vals, victim, ents, keys := fillSealed(t, ss)

	// The store now claims only the first entry's bytes are readable.
	first := ents[0]
	cut := int64(first.offset) + itemHeaderSize + int64(first.keyLen) + int64(first.valLen)
	ss.avail[victim] = cut

	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(Config{Store: ss, TrackValues: true}, snap)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if r.regions[victim].fill != cut {
		t.Errorf("region %d fill = %d after repair, want %d", victim, r.regions[victim].fill, cut)
	}
	got, ok, err := r.Get(keys[0])
	if err != nil || !ok {
		t.Fatalf("surviving key %s: Get = (%v, %v)", keys[0], ok, err)
	}
	if !bytes.Equal(got, vals[keys[0]]) {
		t.Fatalf("surviving key %s corrupted by repair", keys[0])
	}
	for _, k := range keys[1:] {
		if r.Contains(k) {
			t.Errorf("key %s beyond the readable extent survived restore", k)
		}
		if _, ok, err := r.Get(k); ok || err != nil {
			t.Errorf("truncated key %s: Get = (%v, %v), want clean miss", k, ok, err)
		}
	}
	if drops := r.Stats().RestoreDrops; drops != uint64(len(keys)-1) {
		t.Errorf("RestoreDrops = %d, want %d", drops, len(keys)-1)
	}
}

// TestRestoreFreesUnreadableRegion covers the extreme repair: a sealed
// region with nothing readable returns to the free pool, and every one of
// its entries is dropped.
func TestRestoreFreesUnreadableRegion(t *testing.T) {
	ss := &sizedStore{memStore: newMemStore(8, 4096), avail: map[int]int64{}}
	c, _, victim, _, keys := fillSealed(t, ss)
	ss.avail[victim] = 0

	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(Config{Store: ss, TrackValues: true}, snap)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if st := r.regions[victim].state; st != regionFree {
		t.Errorf("fully unreadable region %d in state %d, want free", victim, st)
	}
	for _, k := range keys {
		if r.Contains(k) {
			t.Errorf("key %s survived a fully unreadable region", k)
		}
	}
	if drops := r.Stats().RestoreDrops; drops < uint64(len(keys)) {
		t.Errorf("RestoreDrops = %d, want at least %d", drops, len(keys))
	}
	// The freed region must be reusable: keep inserting and verify service.
	for i := 0; i < 30; i++ {
		if err := r.Set(fmt.Sprintf("re-%03d", i), bytes.Repeat([]byte{7}, 900), 0); err != nil {
			t.Fatalf("post-repair Set: %v", err)
		}
	}
	if !r.Contains("re-029") {
		t.Fatal("post-repair inserts not readable")
	}
}
