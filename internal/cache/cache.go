// Package cache implements a log-structured flash cache engine modelled on
// CacheLib's block cache ("Navy"), the engine the paper holds constant
// across all four schemes (§2.1):
//
//   - Flash space is partitioned into fixed-size regions. New objects are
//     packed into an in-memory region buffer; when it fills, the whole
//     region is flushed to the backing store in one large I/O.
//   - A DRAM index maps keys to (region, offset, size).
//   - Eviction is region-granular: when no free region remains, an entire
//     region (LRU or FIFO) is dropped — every key it holds leaves the index
//     at once. This amortizes flash GC cost but, with zone-sized regions,
//     throws away ~1 GiB of possibly-hot objects in one stroke (the
//     Zone-Cache hit-ratio cliff of §4.2).
//   - Flushes pipeline: up to BufferMemory/RegionSize region buffers may be
//     in flight at once. Small regions afford several buffers and overlap
//     device writes; a zone-sized region affords one, serializing fill and
//     flush — the paper's "coarse-grained parallelism" penalty (§3.2).
//
// The backing store is abstracted as a RegionStore; the four schemes plug
// in internal/store (Block/File/Zone) and internal/middle (Region).
package cache

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"znscache/internal/device"
	"znscache/internal/obs"
	"znscache/internal/sim"
	"znscache/internal/stats"
)

// RegionStore is the persistence backend for regions. Implementations
// return simulated latencies; the engine advances its clock with them.
type RegionStore interface {
	// NumRegions is how many regions the store can hold.
	NumRegions() int
	// RegionSize is the fixed region size in bytes (sector-aligned).
	RegionSize() int64
	// WriteRegion persists a full region. data may be nil (metadata-only).
	WriteRegion(now time.Duration, id int, data []byte) (time.Duration, error)
	// ReadRegion reads n bytes at sector-aligned offset off within region
	// id into p (p may be nil for a metadata-only read of n bytes).
	ReadRegion(now time.Duration, id int, p []byte, n int, off int64) (time.Duration, error)
	// EvictRegion tells the store the region's content is dead. The next
	// WriteRegion with the same id replaces it.
	EvictRegion(now time.Duration, id int) (time.Duration, error)
}

// SyncCoster is an optional RegionStore extension, consulted once after
// each WriteRegion: WriteSyncCost reports the portion of that flush which
// burned the flusher thread synchronously — filesystem page-cache copies
// and per-block index updates, or a device GC stall inside the write
// syscall — as opposed to DMA device time that overlaps with other work.
// The engine charges it to the insertion path even when the device write
// itself is pipelined.
type SyncCoster interface {
	WriteSyncCost() time.Duration
}

// Policy selects the region eviction order.
type Policy uint8

// Eviction policies over regions.
const (
	LRU Policy = iota
	FIFO
)

// Errors returned by the engine.
var (
	ErrItemTooLarge = errors.New("cache: item larger than region")
	ErrBadConfig    = errors.New("cache: invalid configuration")
	ErrEmptyKey     = errors.New("cache: empty key")
	ErrChecksum     = errors.New("cache: on-flash checksum mismatch")
)

// itemHeaderSize is the per-item on-flash overhead (lengths + checksum),
// mirroring Navy's entry header.
const itemHeaderSize = 16

// CPUModel is the software-side cost model. Flash dominates end-to-end
// latency, but index maintenance under the shared lock is what turns
// zone-sized evictions into insertion-time spikes (Figure 3).
type CPUModel struct {
	IndexLookup  time.Duration // per Get/exists check
	IndexInsert  time.Duration // per Set index update
	IndexRemove  time.Duration // per single-key delete
	AppendItem   time.Duration // per item appended to the region buffer
	AppendPerKiB time.Duration // buffer memcpy cost per KiB
	// EvictPerKey is the cost of removing one key during a region
	// eviction. It is far above IndexRemove: eviction iterates the region
	// under the shared index lock while other threads contend for it, and
	// each removal also updates allocator and policy state — the mechanism
	// the paper blames for the Figure 3 insertion-time spikes ("eviction
	// operations in other threads, which involve lock controls for the
	// shared index").
	EvictPerKey time.Duration
}

// DefaultCPUModel returns costs typical of a sharded in-memory index.
func DefaultCPUModel() CPUModel {
	return CPUModel{
		IndexLookup:  time.Microsecond,
		IndexInsert:  1500 * time.Nanosecond,
		IndexRemove:  1500 * time.Nanosecond,
		AppendItem:   500 * time.Nanosecond,
		AppendPerKiB: 50 * time.Nanosecond,
		EvictPerKey:  25 * time.Microsecond,
	}
}

// Config parameterizes the engine.
type Config struct {
	Store RegionStore
	// Policy picks LRU (default) or FIFO region eviction.
	Policy Policy
	// Admission filters inserts; nil admits everything. An Admission
	// instance belongs to exactly one engine — multi-engine frontends must
	// use AdmissionFactory (or CloneAdmission) so each engine gets its own
	// instance; NewSharded rejects shared stateful instances.
	Admission Admission
	// AdmissionFactory, when set (and Admission is nil), builds this
	// engine's policy instance seeded with AdmissionSeed and bound to the
	// engine's clock. This is the seam multi-engine frontends use to get
	// per-engine instances from one shared configuration value.
	AdmissionFactory AdmissionFactory
	// AdmissionSeed seeds the policy instance built by AdmissionFactory
	// (decorrelate shards with ShardSeed). Ignored when Admission is set.
	AdmissionSeed uint64
	// BufferMemory bounds DRAM spent on region buffers. One buffer is
	// always filling; the remaining BufferMemory/RegionSize − 1 may hold
	// in-flight flushes, so a budget of exactly one region makes flushes
	// synchronous. Default 64 MiB.
	BufferMemory int64
	// TrackValues keeps payload bytes in region buffers so Get returns
	// real data (requires a data-storing device for sealed regions).
	TrackValues bool
	// ReinsertHits enables Navy's hits-based reinsertion policy: when a
	// region is evicted, items accessed at least this many times since
	// insertion are rewritten into the open region instead of dropped.
	// Zero disables reinsertion.
	ReinsertHits uint8
	// CPU overrides the software cost model; zero value = defaults.
	CPU CPUModel
	// Clock is the virtual clock; a fresh one is created if nil.
	Clock *sim.Clock
	// FillLogCap bounds the Figure 3 fill log to the most recent entries so
	// long runs stop growing memory linearly: 0 uses the default (4096,
	// ample for every experiment in the harness), a negative value keeps the
	// log unbounded. FillCount and EvictionOnset stay exact regardless.
	FillLogCap int
	// Trace receives admission, seal, and eviction events; nil (the default)
	// disables tracing at the cost of one pointer test per event site.
	Trace *obs.Tracer
	// MaxRetries bounds the extra attempts after a failed store write, read,
	// or evict before the engine gives the region up (default 2; negative
	// disables retries). Retries back off on the virtual clock.
	MaxRetries int
	// RetryBackoff is the first inter-attempt backoff, doubling per retry
	// (default 100µs).
	RetryBackoff time.Duration
	// QuarantineAfter is how many exhausted-retry failures a region may
	// accumulate before it is quarantined — withdrawn from allocation and
	// eviction so a bad zone/region stops eating retries (default 3;
	// negative disables quarantine).
	QuarantineAfter int
	// SkipChecksum disables on-flash checksum verification on sealed-region
	// reads. Only the crash harness's mutation check sets it: it proves the
	// checksum is what stands between corrupt recovery metadata and wrong
	// data being served.
	SkipChecksum bool
	// ReadIndex enables the lock-free read path (readindex.go): mutators
	// additionally publish an immutable copy-on-write view of each key into
	// a concurrent read index, and TryFastGet/TryFastContains answer lookups
	// against it without the shard lock. Off by default — single-threaded
	// replays keep the exact classic accounting; the serving layer opts in.
	ReadIndex bool
	// Spans, when non-nil, samples wall-clock engine stage timings
	// (fast/locked gets, set publish, region flush, store I/O) into the
	// recorder. The virtual clock is never touched, so replay determinism
	// is unaffected; nil costs one pointer test per site.
	Spans *obs.SpanRecorder
}

// defaultFillLogCap bounds the fill log unless Config.FillLogCap overrides
// it. 4096 records cover the longest harness experiment (~1300 region fills
// in Figure 3's small-region arm) with room to spare.
const defaultFillLogCap = 4096

// entry is one index record: where an item lives, plus a saturating
// access counter driving the reinsertion policy.
type entry struct {
	region int32
	offset uint32 // item start within region
	keyLen uint16
	valLen uint32
	hits   uint8
	// expireAt is the virtual-clock second after which the item is dead
	// (0 = no TTL). Second granularity keeps the entry compact, as
	// CacheLib does.
	expireAt uint32
}

func (e entry) itemSize() int64 {
	return itemHeaderSize + int64(e.keyLen) + int64(e.valLen)
}

// regionState is the lifecycle of a region slot.
type regionState uint8

const (
	regionFree regionState = iota
	regionOpen
	regionFlushing
	regionSealed
	// regionQuarantined withdraws a region whose store kept failing: it is
	// never allocated, flushed to, or evicted again. The capacity loss is
	// the price of keeping the cache serving around a bad zone.
	regionQuarantined
)

// regionMeta tracks one region slot.
type regionMeta struct {
	state     regionState
	keys      keyLog // insertion order, for eviction cleanup
	fill      int64  // bytes appended
	live      int    // items still indexed
	flushDone time.Duration
	openedAt  time.Duration
	elem      *list.Element // position in eviction order (sealed/flushing)
	buf       []byte        // non-nil while open/flushing and TrackValues
	fails     int           // exhausted-retry failures; quarantine trigger
}

// FillRecord is one entry of the Figure 3 log: how long it took to fill a
// region buffer, including any stalls from flushing and eviction.
type FillRecord struct {
	Seq      uint64
	Duration time.Duration
	Evicted  bool // an eviction was needed to open this region's successor
}

// Stats is a snapshot of engine counters.
type Stats struct {
	Gets, Sets, Deletes    uint64
	Hits, Misses           uint64
	HitRatio               float64
	Evictions, Flushes     uint64
	Reinsertions           uint64
	Expirations            uint64
	CoDesignDrops          uint64
	AdmitRejects           uint64
	HostWriteBytes         uint64
	StoreRetries           uint64
	Quarantined            uint64
	LostKeys               uint64
	RestoreDrops           uint64
	GetLatency, SetLatency stats.HistSnapshot
	SimulatedTime          time.Duration
}

// Cache is the engine. Its methods are not safe for concurrent use: the
// simulation is driven single-threaded for determinism, with contention
// modelled through the CPU cost model instead of real lock waits.
type Cache struct {
	cfg   Config
	store RegionStore
	clock *sim.Clock
	cpu   CPUModel

	index   map[string]entry
	regions []regionMeta
	free    []int
	order   *list.List // eviction order: front = MRU, back = LRU victim
	open    int        // open region id
	seq     uint64     // fill sequence counter

	// flush pipeline: regions written but not yet completed, oldest first
	inflight    []int
	maxInflight int

	// fillLog is a bounded ring over the most recent FillRecords (cap
	// fillCap; unbounded when fillCap <= 0). fillStart is the ring's oldest
	// slot once it has wrapped; fillCount and firstEvictSeq summarize the
	// whole history so trimming never loses the eviction-onset answer.
	fillLog       []FillRecord
	fillStart     int
	fillCap       int
	fillCount     uint64
	firstEvictSeq uint64 // noEvictSeq until the first Evicted record

	// readBuf pools the sector-aligned scratch buffers sealed-region Gets
	// read into. The payload is copied out before the buffer is returned, so
	// pooling is invisible to callers; it removes the largest per-Get
	// allocation (up to a region of bytes per lookup).
	readBuf sync.Pool

	// orderVer counts mutations of the eviction order; coldSet caches, per
	// (orderVer, coldFrac), which regions sit in the cold tail that
	// RegionDroppable reports on. GC probes ask about many regions between
	// order mutations, so the O(regions) tail walk amortizes to O(1).
	orderVer     uint64
	coldVer      uint64
	coldFrac     float64
	coldSet      []bool
	coldSetValid bool

	trace *obs.Tracer       // nil when tracing is disabled
	spans *obs.SpanRecorder // nil when span sampling is disabled

	// reads is the lock-free read index (nil unless Config.ReadIndex). All
	// mutation of it happens on the engine's single-threaded side; see
	// readindex.go for the concurrency contract.
	reads *readIndex

	// metrics
	hitRatio    stats.HitRatio
	getLat      *stats.Histogram
	setLat      *stats.Histogram
	sets        stats.Counter
	gets        stats.Counter
	dels        stats.Counter
	evicts      stats.Counter
	drops       stats.Counter
	reinserts   stats.Counter
	expirations stats.Counter
	flushes     stats.Counter
	rejects     stats.Counter
	hostBytes   stats.Counter
	retriesCtr  stats.Counter // store operations retried after an error
	quarantines stats.Counter // regions withdrawn after repeated failures
	lostKeys    stats.Counter // keys dropped because their bytes became unreachable
	restoreDrop stats.Counter // snapshot entries dropped by the Restore repair pass
	// EvictedKeys is called (if set) with every key dropped by a region
	// eviction — used by integrations that must mirror the cache contents.
	EvictedKeys func(keys []string)
}

// New builds an engine over the given store.
func New(cfg Config) (*Cache, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("%w: nil store", ErrBadConfig)
	}
	if cfg.Store.NumRegions() < 2 {
		return nil, fmt.Errorf("%w: need at least 2 regions, store has %d",
			ErrBadConfig, cfg.Store.NumRegions())
	}
	if cfg.Store.RegionSize() <= 0 || cfg.Store.RegionSize()%device.SectorSize != 0 {
		return nil, fmt.Errorf("%w: region size %d", ErrBadConfig, cfg.Store.RegionSize())
	}
	if cfg.BufferMemory == 0 {
		cfg.BufferMemory = 64 << 20
	}
	if cfg.Clock == nil {
		cfg.Clock = sim.NewClock()
	}
	if (cfg.CPU == CPUModel{}) {
		cfg.CPU = DefaultCPUModel()
	}
	if cfg.Admission == nil && cfg.AdmissionFactory != nil {
		cfg.Admission = cfg.AdmissionFactory.New(AdmissionParams{
			Seed:  cfg.AdmissionSeed,
			Clock: cfg.Clock,
		})
	}
	if cfg.Admission == nil {
		cfg.Admission = AdmitAll{}
	}
	if cfg.FillLogCap == 0 {
		cfg.FillLogCap = defaultFillLogCap
	}
	switch {
	case cfg.MaxRetries == 0:
		cfg.MaxRetries = 2
	case cfg.MaxRetries < 0:
		cfg.MaxRetries = 0
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 100 * time.Microsecond
	}
	switch {
	case cfg.QuarantineAfter == 0:
		cfg.QuarantineAfter = 3
	case cfg.QuarantineAfter < 0:
		cfg.QuarantineAfter = 0
	}
	n := cfg.Store.NumRegions()
	c := &Cache{
		cfg:           cfg,
		store:         cfg.Store,
		clock:         cfg.Clock,
		cpu:           cfg.CPU,
		index:         make(map[string]entry),
		regions:       make([]regionMeta, n),
		order:         list.New(),
		getLat:        stats.NewHistogram(),
		setLat:        stats.NewHistogram(),
		fillCap:       cfg.FillLogCap,
		firstEvictSeq: noEvictSeq,
		trace:         cfg.Trace,
		spans:         cfg.Spans,
	}
	if cfg.ReadIndex {
		c.reads = newReadIndex()
	}
	// One buffer is always the one being filled; only the remainder can
	// hold in-flight flushes. A single zone-sized buffer therefore flushes
	// synchronously — the Zone-Cache DRAM-budget penalty of §3.2.
	c.maxInflight = int(cfg.BufferMemory/cfg.Store.RegionSize()) - 1
	if c.maxInflight < 0 {
		return nil, fmt.Errorf("%w: BufferMemory %d below region size %d",
			ErrBadConfig, cfg.BufferMemory, cfg.Store.RegionSize())
	}
	for i := n - 1; i >= 1; i-- {
		c.free = append(c.free, i)
	}
	c.open = 0
	c.openRegion(0)
	return c, nil
}

// Clock exposes the engine's virtual clock.
func (c *Cache) Clock() *sim.Clock { return c.clock }

// Admission exposes the engine's admission policy instance (inspection,
// shared-instance validation in NewSharded). Never nil after New.
func (c *Cache) Admission() Admission { return c.cfg.Admission }

// RegionSize returns the store's region size.
func (c *Cache) RegionSize() int64 { return c.store.RegionSize() }

// openRegion initializes region id as the open region.
func (c *Cache) openRegion(id int) {
	m := &c.regions[id]
	m.state = regionOpen
	m.keys.reset()
	m.fill = 0
	m.live = 0
	m.openedAt = c.clock.Now()
	m.elem = nil
	if c.cfg.TrackValues {
		if m.buf == nil {
			m.buf = make([]byte, c.store.RegionSize())
		}
	}
	c.open = id
}

// Set inserts or replaces key with a value of length valLen. value may be
// nil for a metadata-only insert (sizes, timing, and index behaviour are
// identical; only payload bytes are absent).
func (c *Cache) Set(key string, value []byte, valLen int) error {
	return c.SetTTL(key, value, valLen, 0)
}

// SetTTL is Set with a time-to-live measured on the virtual clock; the
// item expires ttl after insertion (0 = never). Expired items answer Get
// as misses and are lazily removed from the index.
func (c *Cache) SetTTL(key string, value []byte, valLen int, ttl time.Duration) error {
	return c.setInternal(key, value, valLen, ttl, false)
}

// SetOwned is Set for callers that relinquish value: the engine may retain
// the slice (it becomes the read index's published copy) instead of copying
// it. The caller must not read or write value after the call. The serving
// layer uses this — it allocates a fresh body per set and never touches it
// again, so the publish copy would be pure waste.
func (c *Cache) SetOwned(key string, value []byte, valLen int) error {
	return c.setInternal(key, value, valLen, 0, true)
}

// SetTTLOwned is SetTTL with the SetOwned ownership transfer.
func (c *Cache) SetTTLOwned(key string, value []byte, valLen int, ttl time.Duration) error {
	return c.setInternal(key, value, valLen, ttl, true)
}

func (c *Cache) setInternal(key string, value []byte, valLen int, ttl time.Duration, owned bool) error {
	if key == "" {
		return ErrEmptyKey
	}
	if value != nil {
		valLen = len(value)
	}
	start := c.clock.Now()
	c.sets.Inc()
	size := itemHeaderSize + int64(len(key)) + int64(valLen)
	if size > c.store.RegionSize() {
		return fmt.Errorf("%w: item %d > region %d", ErrItemTooLarge, size, c.store.RegionSize())
	}
	if !c.cfg.Admission.Admit(key, valLen) {
		c.rejects.Inc()
		if c.trace != nil {
			c.trace.Emit(obs.Event{T: start, Type: obs.EvReject, Zone: -1, Region: -1, Bytes: size})
		}
		return nil
	}
	if c.trace != nil {
		c.trace.Emit(obs.Event{T: start, Type: obs.EvAdmit, Zone: -1, Region: -1, Bytes: size})
	}

	// Span sampling (wall clock only — the virtual clock below is never
	// touched, so replays stay deterministic). Region rolls are timed on
	// every roll (they are rare and are exactly the tail the paper chases);
	// their duration is carved out of the sampled set_publish window so the
	// two stages stay disjoint.
	rec := c.spans
	sampled := rec != nil && rec.SampleNow()
	var w0 time.Time
	if sampled {
		w0 = time.Now()
	}
	var rollDur time.Duration

	c.clock.Advance(c.cpu.IndexInsert)
	// Roll the open region if the item does not fit.
	if c.regions[c.open].fill+size > c.store.RegionSize() {
		var r0 time.Time
		if rec != nil {
			r0 = time.Now()
		}
		err := c.rollRegion()
		if rec != nil {
			rollDur = time.Since(r0)
			rec.Observe(obs.StageRegionFlush, rollDur)
		}
		if err != nil {
			return err
		}
	}
	c.appendItem(key, value, valLen, owned)
	if ttl > 0 {
		e := c.index[key]
		e.expireAt = uint32(((c.clock.Now() + ttl) / time.Second) + 1)
		c.index[key] = e
		if c.reads != nil {
			c.reads.setExpire(key, e.expireAt)
		}
	}
	c.hostBytes.Add(uint64(size))
	c.setLat.Observe(c.clock.Now() - start)
	if sampled {
		if d := time.Since(w0) - rollDur; d > 0 {
			rec.Observe(obs.StageSetPublish, d)
		}
	}
	return nil
}

// appendItem packs one item into the open region (which must have room)
// and indexes it. With TrackValues, the on-flash layout is
// [header: keyLen|valLen|flags|checksum][key][value]; the checksum guards
// read-back integrity across region stores, migrations, and recovery.
// owned means the caller relinquished value: the read index may publish
// the slice directly instead of copying it (entries are immutable once
// published, so this is safe whenever the caller never touches value again).
func (c *Cache) appendItem(key string, value []byte, valLen int, owned bool) {
	m := &c.regions[c.open]
	// Replacing an existing key: the old copy becomes dead weight in its
	// region (reclaimed only when that region is evicted).
	if old, ok := c.index[key]; ok {
		if r := &c.regions[old.region]; r.live > 0 {
			r.live--
		}
	}
	size := itemHeaderSize + int64(len(key)) + int64(valLen)
	off := uint32(m.fill)
	if c.cfg.TrackValues && value != nil {
		p := m.buf[m.fill:]
		binary.LittleEndian.PutUint16(p[0:], uint16(len(key)))
		binary.LittleEndian.PutUint32(p[2:], uint32(valLen))
		binary.LittleEndian.PutUint64(p[8:], itemChecksum(key, value))
		copy(p[itemHeaderSize:], key)
		copy(p[itemHeaderSize+len(key):], value)
	}
	c.clock.Advance(c.cpu.AppendItem + c.cpu.AppendPerKiB*time.Duration((size+1023)/1024))
	m.fill += size
	m.live++
	m.keys.append(key)
	c.index[key] = entry{
		region: int32(c.open),
		offset: off,
		keyLen: uint16(len(key)),
		valLen: uint32(valLen),
	}
	if c.reads != nil {
		var rv []byte
		if c.cfg.TrackValues && value != nil {
			if owned {
				rv = value[:valLen:valLen]
			} else {
				rv = append([]byte(nil), value[:valLen]...)
			}
		}
		c.reads.publish(key, rv, 0)
	}
}

// itemChecksum hashes key and value for the on-flash header: FNV-1a over
// key then value, inlined (no hash.Hash allocation, no []byte(key) copy)
// because it runs on every tracked set. The digest is identical to
// fnv.New64a over the same bytes, so snapshots written before this was
// inlined still verify.
func itemChecksum(key string, value []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	for _, b := range value {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// retryStore runs one store operation with bounded retries: up to
// Config.MaxRetries extra attempts, backing the virtual clock off between
// them (doubling from Config.RetryBackoff). It returns the last attempt's
// latency and error; transient injected faults usually clear within the
// budget, persistent ones surface to the caller's degradation path.
func (c *Cache) retryStore(op func(now time.Duration) (time.Duration, error)) (time.Duration, error) {
	backoff := c.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		lat, err := op(c.clock.Now())
		if err == nil || attempt >= c.cfg.MaxRetries {
			return lat, err
		}
		c.retriesCtr.Inc()
		c.clock.Advance(backoff)
		backoff *= 2
	}
}

// sampledRetryStore is retryStore plus span sampling: 1-in-N calls also
// observe the operation's wall-clock cost (simulator compute — device
// latency lives on the virtual clock) as the store_io stage.
func (c *Cache) sampledRetryStore(op func(now time.Duration) (time.Duration, error)) (time.Duration, error) {
	rec := c.spans
	if rec == nil || !rec.SampleNow() {
		return c.retryStore(op)
	}
	w0 := time.Now()
	lat, err := c.retryStore(op)
	rec.Observe(obs.StageStoreIO, time.Since(w0))
	return lat, err
}

// regionFailed charges one exhausted-retry failure to region id and reports
// whether it crossed the quarantine threshold (the caller decides what
// quarantining means for the region's current state).
func (c *Cache) regionFailed(id int) bool {
	m := &c.regions[id]
	m.fails++
	return c.cfg.QuarantineAfter > 0 && m.fails >= c.cfg.QuarantineAfter
}

// dropRegionKeys removes every index entry still pointing at region id,
// counting each as a fault-lost key, and notifies EvictedKeys so mirrors
// stay consistent. Used by the degradation paths; the data is gone (or
// untrustworthy), and a lost key is a miss, never wrong data.
func (c *Cache) dropRegionKeys(id int) {
	m := &c.regions[id]
	var dropped []string
	wantDropped := c.EvictedKeys != nil
	m.keys.each(func(kb []byte) bool {
		if e, ok := c.index[string(kb)]; ok && int(e.region) == id {
			delete(c.index, string(kb))
			if c.reads != nil {
				c.reads.unpublish(string(kb))
			}
			c.lostKeys.Inc()
			if wantDropped {
				dropped = append(dropped, string(kb))
			}
		}
		return true
	})
	if wantDropped && len(dropped) > 0 {
		c.EvictedKeys(dropped)
	}
	m.keys.reset()
	m.live = 0
	m.fill = 0
}

// quarantineSealed withdraws a sealed region after repeated read failures:
// its keys are dropped (accounted as lost), it leaves the eviction order,
// and it never hosts data again.
func (c *Cache) quarantineSealed(id int) {
	m := &c.regions[id]
	c.dropRegionKeys(id)
	if m.elem != nil {
		c.order.Remove(m.elem)
		c.orderVer++
		m.elem = nil
	}
	m.state = regionQuarantined
	c.quarantines.Inc()
}

// loseKey drops key (index entry e) after its sealed bytes proved
// unreadable or unverifiable, and charges the failure to its region —
// quarantining the region once it exhausts its budget.
func (c *Cache) loseKey(key string, e entry) {
	delete(c.index, key)
	if c.reads != nil {
		c.reads.unpublish(key)
	}
	id := int(e.region)
	m := &c.regions[id]
	if m.live > 0 {
		m.live--
	}
	c.lostKeys.Inc()
	if c.EvictedKeys != nil {
		c.EvictedKeys([]string{key})
	}
	if c.regionFailed(id) && m.state == regionSealed {
		c.quarantineSealed(id)
	}
}

// rollRegion flushes the open region and installs a fresh one, evicting the
// policy victim when the free list is empty. This is the only place the
// engine stalls: on pipeline saturation and on eviction bookkeeping.
func (c *Cache) rollRegion() error {
	id := c.open
	m := &c.regions[id]

	// Figure 3's measurement: time to fill this buffer, stall-inclusive.
	c.recordFill(FillRecord{
		Seq:      c.seq,
		Duration: c.clock.Now() - m.openedAt,
		Evicted:  len(c.free) == 0,
	})
	c.seq++
	// The successor's fill time starts now: everything below (pipeline
	// waits, flush submission, eviction) is insertion-path stall charged
	// to the next region's record, as the paper measures it.
	rollStart := c.clock.Now()

	// Pipeline admission: wait for the oldest in-flight flush if all
	// buffers are busy.
	if len(c.inflight) > 0 && len(c.inflight) >= c.maxInflight {
		oldest := c.inflight[0]
		c.inflight = c.inflight[1:]
		c.completeFlush(oldest)
	}

	now := c.clock.Now()
	// Every flush write observes its wall-clock store_io cost (rolls are too
	// rare for 1-in-N sampling to see them).
	var w0 time.Time
	if c.spans != nil {
		w0 = time.Now()
	}
	lat, err := c.retryStore(func(t time.Duration) (time.Duration, error) {
		return c.store.WriteRegion(t, id, m.buf)
	})
	if c.spans != nil {
		c.spans.Observe(obs.StageStoreIO, time.Since(w0))
	}
	if err != nil {
		// Availability first, CacheLib-style: a flush that keeps failing
		// loses the buffer's keys (misses, accounted below — never wrong
		// data) and the engine moves on with a fresh region. The failed
		// region returns to the free pool, or is quarantined once it has
		// burned its failure budget.
		c.dropRegionKeys(id)
		if c.regionFailed(id) {
			m.state = regionQuarantined
			c.quarantines.Inc()
		} else {
			m.state = regionFree
			c.free = append(c.free, id)
		}
	} else {
		// The synchronous share of the flush (filesystem CPU, a device GC
		// stall inside the write syscall) occupies this thread even though
		// the device write itself is pipelined.
		if sc, ok := c.store.(SyncCoster); ok {
			c.clock.Advance(sc.WriteSyncCost())
		}
		c.flushes.Inc()
		if c.trace != nil {
			c.trace.Emit(obs.Event{T: now, Type: obs.EvRegionSeal, Zone: -1, Region: int32(id), Bytes: m.fill})
		}
		m.state = regionFlushing
		m.flushDone = c.clock.Now() + lat
		m.elem = c.order.PushFront(id)
		c.orderVer++
		if c.maxInflight == 0 {
			// No spare buffer: the flush completes synchronously.
			c.completeFlush(id)
		} else {
			c.inflight = append(c.inflight, id)
		}
	}

	// Find the next region: free list first, then evict the LRU victim.
	var next int
	var reinsert []reinsertItem
	if len(c.free) > 0 {
		next = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	} else {
		victim, items, err := c.evictVictim()
		if err != nil {
			return err
		}
		next = victim
		reinsert = items
	}
	c.openRegion(next)
	c.regions[next].openedAt = rollStart
	// Reinsertion (Navy's hits-based policy): hot items from the evicted
	// region are rewritten into the fresh buffer, capped at its capacity.
	for i, it := range reinsert {
		size := itemHeaderSize + int64(len(it.key)) + int64(it.valLen)
		if c.regions[next].fill+size > c.store.RegionSize() {
			// The remainder is dropped after all: withdraw the read-index
			// entries kept alive for the reinsert window.
			if c.reads != nil {
				for _, rest := range reinsert[i:] {
					c.reads.unpublish(rest.key)
				}
			}
			break
		}
		// it.value is the private copy made during eviction — owned.
		c.appendItem(it.key, it.value, it.valLen, true)
		c.reinserts.Inc()
	}
	return nil
}

// reinsertItem is a hot item rescued from an evicted region.
type reinsertItem struct {
	key    string
	value  []byte
	valLen int
}

// completeFlush retires an in-flight flush, advancing the clock to its
// completion if it has not finished yet.
func (c *Cache) completeFlush(id int) {
	m := &c.regions[id]
	c.clock.AdvanceTo(m.flushDone)
	if m.state == regionFlushing {
		m.state = regionSealed
	}
	if !c.cfg.TrackValues {
		m.buf = nil
	}
}

// evictVictim drops the least-recently-used sealed region and returns its
// id for reuse. Every key the region still indexes is removed — the
// region-granular eviction CacheLib uses to avoid item-level flash GC.
// A victim whose store-side evict keeps failing is quarantined and the
// next victim is tried; eviction itself must not fail transiently.
func (c *Cache) evictVictim() (int, []reinsertItem, error) {
	for {
		id, reinsert, err := c.evictOnce()
		if err == nil || id < 0 {
			return id, reinsert, err
		}
		m := &c.regions[id]
		m.fails++
		m.state = regionQuarantined
		m.keys.reset()
		m.live = 0
		m.fill = 0
		c.quarantines.Inc()
	}
}

// evictOnce evicts the current LRU victim. On a store failure it returns
// the victim's id (index already cleaned) so evictVictim can quarantine it;
// id -1 means no victim exists at all.
func (c *Cache) evictOnce() (int, []reinsertItem, error) {
	back := c.order.Back()
	if back == nil {
		return -1, nil, fmt.Errorf("cache: no evictable region")
	}
	id := back.Value.(int)
	m := &c.regions[id]
	// A still-flushing victim must land before it can be reused.
	if m.state == regionFlushing {
		for i, f := range c.inflight {
			if f == id {
				c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
				break
			}
		}
		c.completeFlush(id)
	}
	c.order.Remove(back)
	c.orderVer++
	m.elem = nil

	// Snapshot the victim's payload once if reinsertion may need bytes.
	var regionBytes []byte
	if c.cfg.ReinsertHits > 0 && c.cfg.TrackValues && m.fill > 0 {
		n := int((m.fill + device.SectorSize - 1) / device.SectorSize * device.SectorSize)
		regionBytes = make([]byte, n)
		if _, err := c.store.ReadRegion(c.clock.Now(), id, regionBytes, n, 0); err != nil {
			// Fall back to dropping everything; eviction must not fail.
			regionBytes = nil
		}
	}

	// Index cleanup under the shared lock: the insertion-time spike of
	// Figure 3a. Zone-sized regions remove tens of thousands of keys here.
	// The m[string(b)] / delete(m, string(b)) forms below are recognized by
	// the compiler and do not allocate; string copies are made only for keys
	// that outlive the eviction.
	var dropped []string
	var reinsert []reinsertItem
	wantDropped := c.EvictedKeys != nil
	m.keys.each(func(kb []byte) bool {
		e, ok := c.index[string(kb)]
		if !ok || int(e.region) != id {
			return true
		}
		delete(c.index, string(kb))
		if c.cfg.ReinsertHits > 0 && e.hits >= c.cfg.ReinsertHits {
			// Reinsert candidates stay published: appendItem re-publishes
			// them moments later, and a fast reader in the window between
			// sees at worst the old (identical) bytes.
			it := reinsertItem{key: string(kb), valLen: int(e.valLen)}
			if regionBytes != nil {
				base := int64(e.offset) + itemHeaderSize + int64(e.keyLen)
				if base+int64(e.valLen) <= int64(len(regionBytes)) {
					it.value = append([]byte(nil), regionBytes[base:base+int64(e.valLen)]...)
				}
			}
			reinsert = append(reinsert, it)
		} else {
			if c.reads != nil {
				c.reads.unpublish(string(kb))
			}
			if wantDropped {
				dropped = append(dropped, string(kb))
			}
		}
		return true
	})
	c.clock.Advance(c.cpu.EvictPerKey * time.Duration(m.keys.len()))

	now := c.clock.Now()
	if c.EvictedKeys != nil && len(dropped) > 0 {
		c.EvictedKeys(dropped)
	}
	lat, err := c.retryStore(func(t time.Duration) (time.Duration, error) {
		return c.store.EvictRegion(t, id)
	})
	if err != nil {
		// Index is already clean; hand the id back for quarantine. The
		// reinsert candidates kept published for the reinsert window are
		// dropped with it.
		if c.reads != nil {
			for _, it := range reinsert {
				c.reads.unpublish(it.key)
			}
		}
		return id, nil, fmt.Errorf("cache: evict region %d: %w", id, err)
	}
	c.clock.Advance(lat)
	c.evicts.Inc()
	if c.trace != nil {
		c.trace.Emit(obs.Event{T: now, Type: obs.EvEvict, Zone: -1, Region: int32(id), Bytes: int64(m.keys.len())})
	}
	m.state = regionFree
	return id, reinsert, nil
}

// WouldBlock reports whether inserting an item of the given sizes right now
// would stall on the flush pipeline: the open region cannot take the item
// and every region buffer is still being written out. Best-effort callers
// (RocksDB's secondary-cache adapter) drop the insert instead of blocking —
// CacheLib's allocation-failure behaviour under flush backlog, and the
// mechanism that couples device stalls to hit ratio in Figure 5.
func (c *Cache) WouldBlock(keyLen, valLen int) bool {
	size := itemHeaderSize + int64(keyLen) + int64(valLen)
	if c.regions[c.open].fill+size <= c.store.RegionSize() {
		return false
	}
	if len(c.inflight) == 0 || len(c.inflight) < c.maxInflight {
		return false
	}
	oldest := c.inflight[0]
	return c.regions[oldest].flushDone > c.clock.Now()
}

// Get looks up key. With TrackValues it returns the payload; otherwise it
// returns nil with found=true and all timing/accounting still exact.
func (c *Cache) Get(key string) ([]byte, bool, error) {
	start := c.clock.Now()
	c.gets.Inc()
	c.clock.Advance(c.cpu.IndexLookup)
	e, ok := c.index[key]
	if !ok {
		c.hitRatio.Miss()
		c.getLat.Observe(c.clock.Now() - start)
		return nil, false, nil
	}
	if e.expireAt != 0 && c.clock.Now() >= time.Duration(e.expireAt)*time.Second {
		// Lazy expiry: drop the index entry; the flash copy dies with its
		// region.
		delete(c.index, key)
		if c.reads != nil {
			c.reads.unpublish(key)
		}
		if m := &c.regions[e.region]; m.live > 0 {
			m.live--
		}
		c.expirations.Inc()
		c.hitRatio.Miss()
		c.getLat.Observe(c.clock.Now() - start)
		return nil, false, nil
	}
	m := &c.regions[e.region]
	var val []byte
	switch m.state {
	case regionOpen:
		// Served straight from the in-memory buffer.
		if c.cfg.TrackValues {
			base := int64(e.offset) + itemHeaderSize + int64(e.keyLen)
			val = append([]byte(nil), m.buf[base:base+int64(e.valLen)]...)
		}
	case regionFlushing:
		// The buffer is being written out; real Navy serves such reads
		// from the in-flight buffer. Model the same: memory-speed access.
		if c.cfg.TrackValues {
			base := int64(e.offset) + itemHeaderSize + int64(e.keyLen)
			val = append([]byte(nil), m.buf[base:base+int64(e.valLen)]...)
		}
	case regionSealed:
		// Device read of the sector-aligned span covering the item.
		itemStart := int64(e.offset)
		itemEnd := itemStart + e.itemSize()
		alignedStart := itemStart / device.SectorSize * device.SectorSize
		alignedEnd := (itemEnd + device.SectorSize - 1) / device.SectorSize * device.SectorSize
		if alignedEnd > c.store.RegionSize() {
			alignedEnd = c.store.RegionSize()
		}
		n := int(alignedEnd - alignedStart)
		var pv *[]byte
		var p []byte
		if c.cfg.TrackValues {
			pv = c.getScratch(n)
			p = *pv
		}
		lat, err := c.sampledRetryStore(func(t time.Duration) (time.Duration, error) {
			return c.store.ReadRegion(t, int(e.region), p, n, alignedStart)
		})
		if err != nil {
			// Persistent read failure: degrade to a miss. The key is dropped
			// (its bytes are unreachable — a lost key, never wrong data) and
			// the region is charged a failure toward quarantine.
			c.putScratch(pv)
			c.loseKey(key, e)
			c.hitRatio.Miss()
			c.getLat.Observe(c.clock.Now() - start)
			return nil, false, nil
		}
		c.clock.Advance(lat)
		if c.cfg.TrackValues {
			head := itemStart - alignedStart
			base := head + itemHeaderSize + int64(e.keyLen)
			val = append([]byte(nil), p[base:base+int64(e.valLen)]...)
			// Verify the on-flash header checksum: corruption in the store,
			// a GC migration, or stale recovery metadata surfaces here and
			// becomes a miss — the cache never serves unverified bytes.
			want := binary.LittleEndian.Uint64(p[head+8 : head+16])
			got := itemChecksum(key, val)
			c.putScratch(pv)
			if !c.cfg.SkipChecksum && got != want {
				c.loseKey(key, e)
				c.hitRatio.Miss()
				c.getLat.Observe(c.clock.Now() - start)
				return nil, false, nil
			}
			// Promote the verified bytes into the read index so later Gets
			// for this (restored or metadata-published) key go lock-free.
			c.promoteRead(key, e, val)
		}
	default:
		// Entry pointing into a free region would be an index invariant
		// violation; eviction always removes keys first.
		return nil, false, fmt.Errorf("cache: index points to free region %d", e.region)
	}
	if c.cfg.Policy == LRU && m.elem != nil {
		if m.elem != c.order.Front() {
			c.order.MoveToFront(m.elem)
			c.orderVer++
		}
	}
	if e.hits < ^uint8(0) {
		e.hits++
		c.index[key] = e
	}
	c.hitRatio.Hit()
	c.getLat.Observe(c.clock.Now() - start)
	return val, true, nil
}

// getScratch returns a sealed-read scratch buffer of length n, reusing a
// pooled buffer when possible. The same *[]byte box cycles through the pool
// so steady-state Gets allocate nothing for the read span.
func (c *Cache) getScratch(n int) *[]byte {
	v, _ := c.readBuf.Get().(*[]byte)
	if v == nil {
		b := make([]byte, n)
		return &b
	}
	if cap(*v) < n {
		*v = make([]byte, n)
	}
	*v = (*v)[:n]
	return v
}

// putScratch returns a buffer box obtained from getScratch to the pool. A
// nil box (metadata-only read) is ignored.
func (c *Cache) putScratch(v *[]byte) {
	if v != nil {
		c.readBuf.Put(v)
	}
}

// Contains reports whether key is present without touching recency or
// latency accounting beyond the index lookup. TTL-expired items count as
// absent and are lazily removed, exactly as Get treats them.
func (c *Cache) Contains(key string) bool {
	c.clock.Advance(c.cpu.IndexLookup)
	e, ok := c.index[key]
	if !ok {
		return false
	}
	if e.expireAt != 0 && c.clock.Now() >= time.Duration(e.expireAt)*time.Second {
		delete(c.index, key)
		if c.reads != nil {
			c.reads.unpublish(key)
		}
		if m := &c.regions[e.region]; m.live > 0 {
			m.live--
		}
		c.expirations.Inc()
		return false
	}
	return true
}

// Delete removes key from the index. The flash copy stays until its region
// is evicted (region-granular reclaim).
func (c *Cache) Delete(key string) bool {
	c.dels.Inc()
	c.clock.Advance(c.cpu.IndexRemove)
	e, ok := c.index[key]
	if !ok {
		return false
	}
	delete(c.index, key)
	if c.reads != nil {
		c.reads.unpublish(key)
	}
	if m := &c.regions[e.region]; m.live > 0 {
		m.live--
	}
	return true
}

// Len returns the number of indexed items.
func (c *Cache) Len() int { return len(c.index) }

// RegionDroppable reports whether region id is sealed and sits in the
// coldest coldFrac fraction of the eviction order. It is the cache-side
// answer to the middle layer's co-design question (§3.4): "by using the
// cache information or hints, the GC overhead can be effectively minimized
// without explicitly sacrificing the cache hit ratio".
func (c *Cache) RegionDroppable(id int, coldFrac float64) bool {
	if id < 0 || id >= len(c.regions) {
		return false
	}
	m := &c.regions[id]
	if m.state != regionSealed || m.elem == nil {
		return false
	}
	// The cold tail only changes when the eviction order does, but the GC
	// probes every candidate region between mutations. Rebuild the
	// membership set once per (order version, coldFrac) and answer each
	// probe with an O(1) lookup instead of walking the list from the back.
	if !c.coldSetValid || c.coldVer != c.orderVer || c.coldFrac != coldFrac {
		if c.coldSet == nil {
			c.coldSet = make([]bool, len(c.regions))
		} else {
			for i := range c.coldSet {
				c.coldSet[i] = false
			}
		}
		limit := int(float64(c.order.Len()) * coldFrac)
		for e, i := c.order.Back(), 0; e != nil && i < limit; e, i = e.Prev(), i+1 {
			c.coldSet[e.Value.(int)] = true
		}
		c.coldVer = c.orderVer
		c.coldFrac = coldFrac
		c.coldSetValid = true
	}
	return c.coldSet[id]
}

// InvalidateRegion force-evicts region id without a store call: the
// middle-layer GC already discarded the bytes (co-design drop), so the
// engine only cleans its index and returns the region to the free pool.
func (c *Cache) InvalidateRegion(id int) {
	if id < 0 || id >= len(c.regions) {
		return
	}
	m := &c.regions[id]
	if m.state != regionSealed {
		return
	}
	var dropped []string
	wantDropped := c.EvictedKeys != nil
	m.keys.each(func(kb []byte) bool {
		if e, ok := c.index[string(kb)]; ok && int(e.region) == id {
			delete(c.index, string(kb))
			if c.reads != nil {
				c.reads.unpublish(string(kb))
			}
			if wantDropped {
				dropped = append(dropped, string(kb))
			}
		}
		return true
	})
	c.clock.Advance(c.cpu.EvictPerKey * time.Duration(m.keys.len()))
	if m.elem != nil {
		c.order.Remove(m.elem)
		c.orderVer++
		m.elem = nil
	}
	m.state = regionFree
	m.keys.reset()
	m.live = 0
	c.free = append(c.free, id)
	c.drops.Inc()
	if c.EvictedKeys != nil && len(dropped) > 0 {
		c.EvictedKeys(dropped)
	}
}

// noEvictSeq marks firstEvictSeq as "no eviction recorded yet".
const noEvictSeq = ^uint64(0)

// recordFill appends one FillRecord, overwriting the oldest entry once the
// configured ring capacity is reached.
func (c *Cache) recordFill(r FillRecord) {
	if r.Evicted && c.firstEvictSeq == noEvictSeq {
		c.firstEvictSeq = r.Seq
	}
	c.fillCount++
	if c.fillCap > 0 && len(c.fillLog) == c.fillCap {
		c.fillLog[c.fillStart] = r
		c.fillStart = (c.fillStart + 1) % c.fillCap
		return
	}
	c.fillLog = append(c.fillLog, r)
}

// FillLog returns the retained per-region buffer fill records (Figure 3) in
// chronological order. With a bounded Config.FillLogCap only the most recent
// records survive; the returned slice must not be modified and is valid
// until the next Set.
func (c *Cache) FillLog() []FillRecord {
	if c.fillStart == 0 {
		return c.fillLog
	}
	out := make([]FillRecord, 0, len(c.fillLog))
	out = append(out, c.fillLog[c.fillStart:]...)
	out = append(out, c.fillLog[:c.fillStart]...)
	return out
}

// FillCount returns how many region fills have been recorded over the
// cache's lifetime, including records trimmed from a bounded fill log.
func (c *Cache) FillCount() uint64 { return c.fillCount }

// EvictionOnset returns the sequence number of the first region fill that
// required an eviction, and whether eviction has started. It is exact even
// when the bounded fill log has trimmed the onset record, and turns the
// harness's per-Set onset scan into an O(1) query.
func (c *Cache) EvictionOnset() (uint64, bool) {
	return c.firstEvictSeq, c.firstEvictSeq != noEvictSeq
}

// Drain completes all in-flight flushes (used before reading stats so the
// simulated time covers all issued work).
func (c *Cache) Drain() {
	for _, id := range c.inflight {
		c.completeFlush(id)
	}
	c.inflight = c.inflight[:0]
}

// SealOpen flushes the open region's partially-filled buffer to the store
// through the normal roll path and drains the pipeline. Snapshot drops the
// open region's DRAM contents — the right model for a crash, but a graceful
// shutdown can do better: seal first and the buffered items persist like any
// sealed region. Rolling follows insertion-path rules, so when no free
// region remains it evicts the policy victim (trading the coldest region for
// the freshest writes). A no-op when the buffer is empty.
func (c *Cache) SealOpen() error {
	if c.regions[c.open].fill > 0 {
		if err := c.rollRegion(); err != nil {
			return err
		}
	}
	c.Drain()
	return nil
}

// Stats snapshots the engine counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Gets:           c.gets.Load(),
		Sets:           c.sets.Load(),
		Deletes:        c.dels.Load(),
		Hits:           c.hitRatio.Hits(),
		Misses:         c.hitRatio.Misses(),
		HitRatio:       c.hitRatio.Ratio(),
		Evictions:      c.evicts.Load(),
		Reinsertions:   c.reinserts.Load(),
		Expirations:    c.expirations.Load(),
		CoDesignDrops:  c.drops.Load(),
		Flushes:        c.flushes.Load(),
		AdmitRejects:   c.rejects.Load(),
		HostWriteBytes: c.hostBytes.Load(),
		StoreRetries:   c.retriesCtr.Load(),
		Quarantined:    c.quarantines.Load(),
		LostKeys:       c.lostKeys.Load(),
		RestoreDrops:   c.restoreDrop.Load(),
		GetLatency:     c.getLat.Snapshot(),
		SetLatency:     c.setLat.Snapshot(),
		SimulatedTime:  c.clock.Now(),
	}
}

// MetricsInto implements obs.MetricSource, registering the same instruments
// Stats() snapshots. Only atomically- or mutex-backed instruments are
// registered — never closures over the engine's maps or region table, which
// belong to the (single-threaded) simulation goroutine — so a concurrent
// scrape mid-run is safe.
func (c *Cache) MetricsInto(r *obs.Registry, labels obs.Labels) {
	ls := labels.With("layer", "cache")
	r.HitRatio("cache_lookup", "Cache lookups", ls, &c.hitRatio)
	r.Histogram("cache_get_seconds", "Get latency (simulated)", ls, c.getLat)
	r.Histogram("cache_set_seconds", "Set latency (simulated)", ls, c.setLat)
	r.Counter("cache_gets_total", "Get operations", ls, &c.gets)
	r.Counter("cache_sets_total", "Set operations", ls, &c.sets)
	r.Counter("cache_deletes_total", "Delete operations", ls, &c.dels)
	r.Counter("cache_evictions_total", "Region evictions", ls, &c.evicts)
	r.Counter("cache_codesign_drops_total", "Regions invalidated by GC co-design drops", ls, &c.drops)
	r.Counter("cache_reinsertions_total", "Hot items reinserted at eviction", ls, &c.reinserts)
	r.Counter("cache_expirations_total", "TTL expirations", ls, &c.expirations)
	r.Counter("cache_flushes_total", "Region flushes", ls, &c.flushes)
	r.Counter("cache_admit_rejects_total", "Inserts rejected by the admission policy", ls, &c.rejects)
	r.Counter("cache_host_write_bytes_total", "Item bytes accepted from the host", ls, &c.hostBytes)
	r.Counter("cache_store_retries_total", "Store operations retried after an error", ls, &c.retriesCtr)
	r.Counter("region_quarantined_total", "Regions withdrawn after repeated store failures", ls, &c.quarantines)
	r.Counter("cache_fault_lost_keys_total", "Keys dropped because their bytes became unreachable", ls, &c.lostKeys)
	r.Counter("cache_restore_dropped_entries_total", "Snapshot entries dropped by the Restore repair pass", ls, &c.restoreDrop)
	if c.reads != nil {
		r.Counter("cache_fast_get_hits_total", "Gets answered lock-free from the read index", ls, &c.reads.fastHits)
		r.Counter("cache_fast_get_misses_total", "Misses answered lock-free from the read index", ls, &c.reads.fastMisses)
		r.Counter("cache_read_note_drops_total", "Deferred read notes shed on queue overflow", ls, &c.reads.noteDrops)
	}
	if am, ok := c.cfg.Admission.(AdmissionMetrics); ok {
		am.MetricsInto(r, ls)
	}
}

// GetLatencyHistogram exposes the raw get-latency histogram for percentile
// queries beyond the snapshot.
func (c *Cache) GetLatencyHistogram() *stats.Histogram { return c.getLat }

// SetLatencyHistogram exposes the raw set-latency histogram.
func (c *Cache) SetLatencyHistogram() *stats.Histogram { return c.setLat }
