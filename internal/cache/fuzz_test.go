package cache

import (
	"bytes"
	"fmt"
	"testing"
)

// fuzzSeedSnapshot builds a realistic snapshot to seed the corpus: a small
// engine with sealed regions, an eviction history, and a part-filled open
// region, so mutations explore the interesting metadata shapes rather than
// just gob framing.
func fuzzSeedSnapshot(tb testing.TB) []byte {
	tb.Helper()
	st := newMemStore(8, 4096)
	c, err := New(Config{Store: st, TrackValues: true})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if err := c.Set(k, bytes.Repeat([]byte{byte(i + 1)}, 700), 0); err != nil {
			tb.Fatal(err)
		}
	}
	snap, err := c.Snapshot()
	if err != nil {
		tb.Fatal(err)
	}
	return snap
}

// FuzzRestore hammers the snapshot decode + validate + repair path: for any
// input whatsoever, Restore must either return an error or a fully usable
// engine. It must never panic — a corrupt snapshot file on a production
// host is an expected failure mode, not a crash.
func FuzzRestore(f *testing.F) {
	snap := fuzzSeedSnapshot(f)
	f.Add(snap)
	f.Add(snap[:len(snap)/2])
	f.Add(snap[:7])
	f.Add([]byte{})
	f.Add([]byte("not a gob stream at all"))
	// A few single-byte corruptions spread across the stream, so the corpus
	// starts with decodable-but-wrong variants too.
	for _, pos := range []int{8, len(snap) / 3, len(snap) / 2, len(snap) - 9} {
		mut := append([]byte(nil), snap...)
		mut[pos] ^= 0xFF
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		st := newMemStore(8, 4096)
		c, err := Restore(Config{Store: st, TrackValues: true}, data)
		if err != nil {
			return // rejected cleanly; that is a correct outcome
		}
		// Restore accepted the snapshot: the engine must be internally
		// consistent enough to serve reads and writes without panicking.
		for i := 0; i < 40; i += 7 {
			k := fmt.Sprintf("key-%04d", i)
			if _, _, err := c.Get(k); err != nil {
				t.Fatalf("restored Get(%q): %v", k, err)
			}
		}
		for i := 0; i < 12; i++ {
			k := fmt.Sprintf("post-%03d", i)
			if err := c.Set(k, bytes.Repeat([]byte{0xA5}, 600), 0); err != nil {
				t.Fatalf("restored Set(%q): %v", k, err)
			}
		}
		c.Drain()
		if !c.Contains("post-011") {
			t.Fatal("restored engine lost a fresh insert")
		}
	})
}
