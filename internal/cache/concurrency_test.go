package cache

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// newTestShardedFast builds n independent engines with the lock-free read
// index enabled and wraps them in a Sharded frontend — the serving-layer
// configuration (Config.ReadIndex on, values tracked).
func newTestShardedFast(t testing.TB, n, regions int, regionSize int64) *Sharded {
	t.Helper()
	engines := make([]*Cache, n)
	for i := range engines {
		st := newMemStore(regions, regionSize)
		c, err := New(Config{Store: st, TrackValues: true, ReadIndex: true})
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		engines[i] = c
	}
	s, err := NewSharded(engines)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	return s
}

// testRNG is a splitmix64 stepper for deterministic op streams.
type testRNG struct{ s uint64 }

func (r *testRNG) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// TestFastReadStressOneShard hammers a single shard from many goroutines at
// once — lock-free Gets and Contains racing locked Sets, Deletes, periodic
// SealOpen via WithShard, and whole-cache Len/Stats cuts. Run under -race
// this is the read-path's memory-safety oracle; the assertions below check
// the counters still reconcile after the storm.
func TestFastReadStressOneShard(t *testing.T) {
	s := newTestShardedFast(t, 1, 8, 32<<10)
	const keys = 200
	key := func(i uint64) string { return fmt.Sprintf("stress-%03d", i%keys) }

	// Warm the shard so readers see a mix of hits and misses from the start.
	for i := uint64(0); i < keys; i += 2 {
		if err := s.Set(key(i), []byte(key(i)), 0); err != nil {
			t.Fatalf("warm Set: %v", err)
		}
	}

	const (
		writers = 2
		readers = 4
		opsEach = 3000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := testRNG{s: seed}
			for i := 0; i < opsEach; i++ {
				r := rng.next()
				k := key(r)
				switch {
				case r%10 < 6:
					if err := s.Set(k, []byte(k), 0); err != nil {
						t.Errorf("Set(%s): %v", k, err)
						return
					}
				case r%10 < 8:
					s.Delete(k)
				default:
					// Seal the open region mid-traffic: readers must keep
					// serving across the open→sealed transition.
					s.WithShard(0, func(c *Cache) { c.SealOpen() }) //nolint:errcheck
				}
			}
		}(uint64(w) + 1)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := testRNG{s: seed}
			for i := 0; i < opsEach; i++ {
				r := rng.next()
				k := key(r)
				if r%2 == 0 {
					v, ok, err := s.Get(k)
					if err != nil {
						t.Errorf("Get(%s): %v", k, err)
						return
					}
					if ok && string(v) != k {
						t.Errorf("Get(%s) returned %q", k, v)
						return
					}
				} else {
					s.Contains(k)
				}
			}
		}(uint64(100 + g))
	}
	// Consistent cuts while both paths run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if n := s.Len(); n < 0 || n > keys {
				t.Errorf("Len = %d out of range", n)
				return
			}
			s.Stats()
		}
	}()
	wg.Wait()

	st := s.Stats()
	if st.Gets != st.Hits+st.Misses {
		t.Fatalf("gets=%d but hits+misses=%d", st.Gets, st.Hits+st.Misses)
	}
	fastHits, fastMisses, _ := s.FastReadStats()
	if fastHits+fastMisses == 0 {
		t.Fatal("lock-free path never answered a get; stress test exercised nothing")
	}
	if fastHits+fastMisses > st.Gets {
		t.Fatalf("fast gets %d exceed total gets %d", fastHits+fastMisses, st.Gets)
	}
}

// TestShardedFastReadReplayDeterminism replays the same seeded per-shard op
// sequences twice — one goroutine per shard, lock-free reads enabled — and
// requires identical merged Stats. This is the determinism contract from the
// Sharded doc comment extended to the fast-read path: deferred notes drain at
// locked-op boundaries, so with a single goroutine per shard the note
// processing points (and thus recency, expiry, and every counter) depend only
// on the op sequence, not on cross-shard goroutine interleaving.
func TestShardedFastReadReplayDeterminism(t *testing.T) {
	const (
		shards  = 4
		keys    = 512
		opsEach = 4000
		seed    = 99
	)
	run := func() (Stats, [shards]Stats) {
		s := newTestShardedFast(t, shards, 8, 16<<10)
		// Pre-partition the keyspace so each goroutine only ever touches its
		// own shard: per-shard serialization is what makes the replay
		// deterministic.
		perShard := make([][]string, shards)
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("det-%05d", i)
			sh := s.ShardFor(k)
			perShard[sh] = append(perShard[sh], k)
		}
		var wg sync.WaitGroup
		for sh := 0; sh < shards; sh++ {
			wg.Add(1)
			go func(sh int) {
				defer wg.Done()
				rng := testRNG{s: ShardSeed(seed, sh)}
				mine := perShard[sh]
				for i := 0; i < opsEach; i++ {
					r := rng.next()
					k := mine[r%uint64(len(mine))]
					switch {
					case r%10 < 5:
						if _, _, err := s.Get(k); err != nil {
							t.Errorf("shard %d Get(%s): %v", sh, k, err)
							return
						}
					case r%10 < 8:
						if err := s.Set(k, []byte(k), 0); err != nil {
							t.Errorf("shard %d Set(%s): %v", sh, k, err)
							return
						}
					case r%10 < 9:
						s.Delete(k)
					default:
						s.Contains(k)
					}
				}
			}(sh)
		}
		wg.Wait()
		var per [shards]Stats
		for i := range per {
			per[i] = s.ShardStats(i)
		}
		return s.Stats(), per
	}

	merged1, per1 := run()
	merged2, per2 := run()
	if !reflect.DeepEqual(merged1, merged2) {
		t.Fatalf("merged stats differ across identical replays:\n run1: %+v\n run2: %+v", merged1, merged2)
	}
	for i := range per1 {
		if !reflect.DeepEqual(per1[i], per2[i]) {
			t.Fatalf("shard %d stats differ across identical replays:\n run1: %+v\n run2: %+v", i, per1[i], per2[i])
		}
	}
	if merged1.Gets == 0 || merged1.Sets == 0 {
		t.Fatalf("replay exercised nothing: %+v", merged1)
	}
}
