package cache

import "encoding/binary"

// keyLog is the per-region record of inserted keys in insertion order. The
// engine used to keep a []string next to the index map; at millions of items
// that is one string header per key for the GC to trace on every cycle, plus
// repeated slice regrowth per region generation. The log instead packs keys
// into a single pointer-free byte buffer ([2-byte little-endian length][key
// bytes] per entry) that is reused across region generations, so steady-state
// appends never allocate and region metadata holds exactly one pointer.
//
// Lookups against the index during eviction use the m[string(b)] /
// delete(m, string(b)) forms, which the compiler optimizes to avoid
// materializing a string; real string copies are made only for keys that
// outlive the eviction (reinsertion candidates and the EvictedKeys callback).
type keyLog struct {
	data []byte
	n    int
}

// append records key at the end of the log. Key length fits uint16 by the
// engine's construction (entry.keyLen is uint16).
func (kl *keyLog) append(key string) {
	var pfx [2]byte
	binary.LittleEndian.PutUint16(pfx[:], uint16(len(key)))
	kl.data = append(kl.data, pfx[0], pfx[1])
	kl.data = append(kl.data, key...)
	kl.n++
}

// len returns the number of recorded keys.
func (kl *keyLog) len() int { return kl.n }

// reset empties the log, keeping the buffer for reuse.
func (kl *keyLog) reset() {
	kl.data = kl.data[:0]
	kl.n = 0
}

// strings returns the logged keys as freshly-allocated strings, for
// serialization paths that need the []string form.
func (kl *keyLog) strings() []string {
	if kl.n == 0 {
		return nil
	}
	out := make([]string, 0, kl.n)
	kl.each(func(k []byte) bool {
		out = append(out, string(k))
		return true
	})
	return out
}

// setStrings replaces the log's contents with keys.
func (kl *keyLog) setStrings(keys []string) {
	kl.reset()
	for _, k := range keys {
		kl.append(k)
	}
}

// each calls fn for every key in insertion order until fn returns false. The
// byte slice passed to fn aliases the log's buffer: valid only for the call.
func (kl *keyLog) each(fn func(k []byte) bool) {
	for off := 0; off+2 <= len(kl.data); {
		n := int(binary.LittleEndian.Uint16(kl.data[off:]))
		off += 2
		if off+n > len(kl.data) {
			return
		}
		if !fn(kl.data[off : off+n]) {
			return
		}
		off += n
	}
}
