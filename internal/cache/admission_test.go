package cache

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"testing"
	"time"

	"znscache/internal/sim"
)

// TestRejectFirstFalsePositiveRate is the regression test for the correlated
// hash2 bug: the second bloom position used to be a rotation of the same
// FNV-1a sum, collapsing the two-hash filter toward a one-hash filter whose
// false-positive rate is the bit-fill fraction itself. With independent
// hashes the FPR must track the two-hash bound fill^2.
func TestRejectFirstFalsePositiveRate(t *testing.T) {
	const (
		filterBits = 8192
		inserted   = 512
		probes     = 20000
	)
	a := NewRejectFirstAdmitSeeded(filterBits, 1<<20, 3)
	for i := 0; i < inserted; i++ {
		a.Admit(fmt.Sprintf("member-%06d", i), 1)
	}
	set := 0
	for _, w := range a.bits {
		set += bits.OnesCount64(w)
	}
	fill := float64(set) / float64(a.nbits)

	// Probe unseen keys through hash2 directly so the probes do not mutate
	// the filter (Admit would insert them).
	fp := 0
	for i := 0; i < probes; i++ {
		b1, b2 := a.hash2(fmt.Sprintf("probe-%06d", i))
		if a.bits[b1/64]&(1<<(b1%64)) != 0 && a.bits[b2/64]&(1<<(b2%64)) != 0 {
			fp++
		}
	}
	fpr := float64(fp) / probes

	// Two-hash bound is fill^2 (~1.4% at this fill); the correlated hash sat
	// near fill (~12%). 3x the bound leaves room for sampling noise while
	// still failing hard on the old behaviour.
	if bound := 3 * fill * fill; fpr > bound {
		t.Fatalf("false-positive rate %.4f exceeds 3x two-hash bound %.4f (fill %.4f); hashes correlated?", fpr, bound, fill)
	}
	if fpr > fill/2 {
		t.Fatalf("false-positive rate %.4f is within 2x of fill %.4f — second hash adds no information", fpr, fill)
	}
}

// TestRejectFirstHash2Positions sanity-checks that the two positions are not
// a deterministic function of one another across keys.
func TestRejectFirstHash2Positions(t *testing.T) {
	a := NewRejectFirstAdmitSeeded(4096, 1<<20, 0)
	same := 0
	diffs := make(map[uint64]int)
	const n = 4096
	for i := 0; i < n; i++ {
		b1, b2 := a.hash2(fmt.Sprintf("key-%06d", i))
		if b1 == b2 {
			same++
		}
		diffs[(b2-b1)%a.nbits]++
	}
	if same > n/100 {
		t.Fatalf("positions collide for %d/%d keys", same, n)
	}
	for d, c := range diffs {
		// A rotation-derived h2 makes b2-b1 concentrate on a few values.
		if c > n/20 {
			t.Fatalf("position delta %d occurs for %d/%d keys — correlated hashes", d, c, n)
		}
	}
}

// TestDynamicRandomBudgetConvergence drives the controller with a controlled
// clock and a constant offered write stream, and checks the admitted byte
// rate settles within 10% of the budget — the policy's whole contract.
func TestDynamicRandomBudgetConvergence(t *testing.T) {
	const (
		dt     = 100 * time.Microsecond
		valLen = 1000
		keyLen = 12 // "key-" + 8 digits
	)
	itemBytes := float64(itemHeaderSize + keyLen + valLen)
	offered := itemBytes / dt.Seconds()
	cases := []struct {
		name   string
		frac   float64 // budget as a fraction of the offered rate
		window time.Duration
	}{
		{"quarter-default-window", 0.25, 0},
		{"sixty-pct-default-window", 0.60, 0},
		{"quarter-short-window", 0.25, 10 * time.Millisecond},
		{"tenth-long-window", 0.10, 200 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := sim.NewClock()
			budget := tc.frac * offered
			a, err := NewDynamicRandomAdmit(budget, tc.window, clk, 42)
			if err != nil {
				t.Fatal(err)
			}
			run := func(ops int) float64 {
				var admitted float64
				for i := 0; i < ops; i++ {
					clk.Advance(dt)
					if a.Admit(fmt.Sprintf("key-%08d", i), valLen) {
						admitted += itemBytes
					}
				}
				return admitted / (float64(ops) * dt.Seconds())
			}
			run(30_000) // converge
			rate := run(50_000)
			if math.Abs(rate-budget)/budget > 0.10 {
				t.Fatalf("admitted rate %.0f B/s not within 10%% of budget %.0f B/s (offered %.0f)", rate, budget, offered)
			}
			if p := a.Probability(); p <= 0 || p > 1 {
				t.Fatalf("probability %v out of range", p)
			}
		})
	}
}

// TestDynamicRandomDeviceSource checks the controller regulates the
// downstream device counter — not just admitted item bytes — when a bytes
// source is wired in: with a device writing 2x the admitted bytes (WA 2.0),
// the device rate must converge to the budget, i.e. admits shed twice as
// hard.
func TestDynamicRandomDeviceSource(t *testing.T) {
	const (
		dt     = 100 * time.Microsecond
		valLen = 1000
		keyLen = 12
	)
	itemBytes := float64(itemHeaderSize + keyLen + valLen)
	offered := itemBytes / dt.Seconds()
	budget := 0.30 * offered

	clk := sim.NewClock()
	a, err := NewDynamicRandomAdmit(budget, 0, clk, 7)
	if err != nil {
		t.Fatal(err)
	}
	var device uint64
	a.SetBytesSource(func() uint64 { return device })

	run := func(ops int) float64 {
		start := device
		for i := 0; i < ops; i++ {
			clk.Advance(dt)
			if a.Admit(fmt.Sprintf("key-%08d", i), valLen) {
				device += 2 * uint64(itemBytes) // WA 2.0
			}
		}
		return float64(device-start) / (float64(ops) * dt.Seconds())
	}
	run(30_000)
	rate := run(50_000)
	if math.Abs(rate-budget)/budget > 0.10 {
		t.Fatalf("device rate %.0f B/s not within 10%% of budget %.0f B/s under WA 2.0", rate, budget)
	}
}

func TestDynamicRandomConfigErrors(t *testing.T) {
	clk := sim.NewClock()
	if _, err := NewDynamicRandomAdmit(0, 0, clk, 1); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero budget err = %v", err)
	}
	if _, err := NewDynamicRandomAdmit(-5, 0, clk, 1); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative budget err = %v", err)
	}
	if _, err := NewDynamicRandomAdmit(1e6, 0, nil, 1); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil clock err = %v", err)
	}
	if err := (DynamicRandomFactory{}).Validate(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("factory zero budget err = %v", err)
	}
}

// TestFrequencyAdmitOneHitWonders: at the default threshold (2), every first
// access is rejected and every second access is admitted.
func TestFrequencyAdmitOneHitWonders(t *testing.T) {
	a := NewFrequencyAdmit(1<<12, 2, 0, 9)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%05d", i)
		if a.Admit(k, 1) {
			t.Fatalf("one-hit wonder %q admitted on first access", k)
		}
	}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%05d", i)
		if !a.Admit(k, 1) {
			t.Fatalf("repeated key %q rejected on second access", k)
		}
	}
	if a.Admits() != 200 || a.Rejects() != 200 {
		t.Fatalf("counters admits=%d rejects=%d, want 200/200", a.Admits(), a.Rejects())
	}
}

// TestFrequencyAdmitHalving: the periodic halve must age out stale counts so
// a formerly-hot key has to re-earn admission.
func TestFrequencyAdmitHalving(t *testing.T) {
	a := NewFrequencyAdmit(1024, 3, 8, 5)
	for i := 0; i < 3; i++ {
		a.Admit("hot", 1)
	}
	if est := a.Estimate("hot"); est != 3 {
		t.Fatalf("Estimate(hot) = %d after 3 accesses, want 3", est)
	}
	// Five more observations reach halveEvery=8 and trigger the decay.
	for i := 0; i < 5; i++ {
		a.Admit(fmt.Sprintf("filler-%d", i), 1)
	}
	if est := a.Estimate("hot"); est != 1 {
		t.Fatalf("Estimate(hot) = %d after halving, want 1 (3>>1)", est)
	}
	// The aged key is below threshold again: next access is rejected.
	if a.Admit("hot", 1) {
		t.Fatal("aged-out key still admitted at threshold 3")
	}
}

// TestFrequencyAdmitSaturation: 4-bit counters cap at 15 and stay there.
func TestFrequencyAdmitSaturation(t *testing.T) {
	a := NewFrequencyAdmit(1024, 2, 1<<20, 1)
	for i := 0; i < 50; i++ {
		a.Admit("hot", 1)
	}
	if est := a.Estimate("hot"); est != nibbleMax {
		t.Fatalf("Estimate(hot) = %d after 50 accesses, want %d", est, nibbleMax)
	}
	if !a.Admit("hot", 1) {
		t.Fatal("saturated key rejected")
	}
}

func TestParseAdmission(t *testing.T) {
	valid := []struct {
		spec   string
		budget float64
		name   string
	}{
		{"all", 0, "all"},
		{"prob:0.5", 0, "prob:0.5"},
		{"reject-first", 0, "reject-first"},
		{"reject-first:1024,100", 0, "reject-first"},
		{"dynamic-random", 1e6, "dynamic-random"},
		{"dynamic-random:20", 1e6, "dynamic-random"},
		{"frequency", 0, "frequency"},
		{"frequency:3", 0, "frequency"},
	}
	for _, tc := range valid {
		f, err := ParseAdmission(tc.spec, tc.budget)
		if err != nil {
			t.Fatalf("ParseAdmission(%q) = %v", tc.spec, err)
		}
		if f.Name() != tc.name {
			t.Fatalf("ParseAdmission(%q).Name() = %q, want %q", tc.spec, f.Name(), tc.name)
		}
	}
	for _, spec := range []string{"", "none"} {
		f, err := ParseAdmission(spec, 0)
		if err != nil || f != nil {
			t.Fatalf("ParseAdmission(%q) = %v, %v, want nil, nil", spec, f, err)
		}
	}
	invalid := []struct {
		spec   string
		budget float64
	}{
		{"bogus", 0},
		{"prob:", 0},
		{"prob:0", 0},
		{"prob:1.5", 0},
		{"reject-first:64", 0},
		{"reject-first:x,y", 0},
		{"dynamic-random", 0}, // needs a budget
		{"dynamic-random:-1", 1e6},
		{"frequency:0", 0},
		{"frequency:99", 0},
	}
	for _, tc := range invalid {
		if _, err := ParseAdmission(tc.spec, tc.budget); err == nil {
			t.Fatalf("ParseAdmission(%q, %g) accepted", tc.spec, tc.budget)
		}
	}
}

// TestAdmissionFactoryDeterminism: a factory handed the same params must
// build instances that make identical decision sequences — the property the
// sharded replay contract rests on.
func TestAdmissionFactoryDeterminism(t *testing.T) {
	factories := []AdmissionFactory{
		ProbAdmitFactory{P: 0.4},
		RejectFirstFactory{Bits: 4096, Window: 500},
		DynamicRandomFactory{BudgetBytesPerSec: 1 << 20},
		FrequencyFactory{},
	}
	for _, f := range factories {
		t.Run(f.Name(), func(t *testing.T) {
			decisions := func(seed uint64) []bool {
				clk := sim.NewClock()
				a := f.New(AdmissionParams{Seed: seed, Clock: clk})
				out := make([]bool, 0, 2000)
				rng := sim.NewRand(99)
				for i := 0; i < 2000; i++ {
					clk.Advance(time.Millisecond)
					out = append(out, a.Admit(fmt.Sprintf("key-%04d", rng.Intn(700)), 512))
				}
				return out
			}
			a, b := decisions(7), decisions(7)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("same-seed instances diverge at op %d", i)
				}
			}
		})
	}
}

// TestCloneAdmissionIndependence: a clone shares configuration but no state —
// mutating the original must not leak into the clone.
func TestCloneAdmissionIndependence(t *testing.T) {
	clk := sim.NewClock()
	orig := NewRejectFirstAdmitSeeded(2048, 1<<20, 1)
	orig.Admit("k", 1)
	clone := orig.CloneAdmission(AdmissionParams{Seed: 2, Clock: clk}).(*RejectFirstAdmit)
	if clone.Admit("k", 1) {
		t.Fatal("clone inherited the original's bloom bits")
	}
	fa := NewFrequencyAdmit(1024, 2, 0, 1)
	fa.Admit("k", 1)
	fclone := fa.CloneAdmission(AdmissionParams{Seed: 2}).(*FrequencyAdmit)
	if est := fclone.Estimate("k"); est != 0 {
		t.Fatalf("clone inherited sketch counts: Estimate = %d", est)
	}
}

// newShardedWithAdmission builds an n-shard frontend whose engines each get
// an independent policy instance from factory, seeded per shard.
func newShardedWithAdmission(t testing.TB, n int, factory AdmissionFactory, seed uint64) *Sharded {
	t.Helper()
	engines := make([]*Cache, n)
	for i := range engines {
		c, err := New(Config{
			Store:            newMemStore(8, 64<<10),
			AdmissionFactory: factory,
			AdmissionSeed:    ShardSeed(seed, i),
		})
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		engines[i] = c
	}
	s, err := NewSharded(engines)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	return s
}

// admissionTestFactories covers every stateful policy.
func admissionTestFactories() []AdmissionFactory {
	return []AdmissionFactory{
		ProbAdmitFactory{P: 0.5},
		RejectFirstFactory{Bits: 1 << 16, Window: 10_000},
		DynamicRandomFactory{BudgetBytesPerSec: 4 << 20},
		FrequencyFactory{},
	}
}

// TestNewShardedRejectsSharedAdmission is the regression test for the
// shared-admission data race: one stateful policy instance visible from two
// shards must be rejected at construction, while AdmitAll (stateless,
// SharedSafeAdmission) and independent per-shard instances pass.
func TestNewShardedRejectsSharedAdmission(t *testing.T) {
	shared := NewRejectFirstAdmit(1024, 1000)
	a, _ := New(Config{Store: newMemStore(4, 4096), Admission: shared})
	b, _ := New(Config{Store: newMemStore(4, 4096), Admission: shared})
	if _, err := NewSharded([]*Cache{a, b}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("shared stateful admission instance accepted: %v", err)
	}

	c, _ := New(Config{Store: newMemStore(4, 4096), Admission: AdmitAll{}})
	d, _ := New(Config{Store: newMemStore(4, 4096), Admission: AdmitAll{}})
	if _, err := NewSharded([]*Cache{c, d}); err != nil {
		t.Fatalf("shared AdmitAll rejected: %v", err)
	}

	// The factory seam builds independent instances — always accepted.
	s := newShardedWithAdmission(t, 4, RejectFirstFactory{}, 1)
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
}

// TestShardedAdmissionConcurrent is the -race regression test for the
// tentpole: concurrent cross-shard Sets and Gets with every stateful policy,
// each shard owning its own instance via the factory seam. Before the seam a
// shared instance made this a data race (PRNG state, bloom bits, sketch
// counters all mutate unlocked on Admit).
func TestShardedAdmissionConcurrent(t *testing.T) {
	for _, f := range admissionTestFactories() {
		t.Run(f.Name(), func(t *testing.T) {
			s := newShardedWithAdmission(t, 4, f, 17)
			const goroutines = 8
			const opsPer = 1500
			var wg sync.WaitGroup
			wg.Add(goroutines)
			for g := 0; g < goroutines; g++ {
				go func(g int) {
					defer wg.Done()
					rng := sim.NewRand(ShardSeed(23, g))
					for i := 0; i < opsPer; i++ {
						k := fmt.Sprintf("key-%04d", rng.Intn(600))
						if rng.Intn(4) == 0 {
							if _, _, err := s.Get(k); err != nil {
								t.Errorf("Get: %v", err)
								return
							}
						} else if err := s.Set(k, nil, 1024); err != nil {
							t.Errorf("Set: %v", err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			s.Drain()
			st := s.Stats()
			if st.Sets == 0 {
				t.Fatal("no Sets recorded")
			}
			if f.Name() != "all" && st.AdmitRejects == 0 {
				t.Fatalf("policy %s never rejected in %d ops", f.Name(), goroutines*opsPer)
			}
		})
	}
}

// TestShardedAdmissionDeterminism extends the replay contract to seeded
// per-shard policies: two concurrent replays over identically-built sharded
// caches must agree byte-for-byte on merged stats, including admission
// counters, regardless of goroutine interleaving.
func TestShardedAdmissionDeterminism(t *testing.T) {
	for _, f := range admissionTestFactories() {
		t.Run(f.Name(), func(t *testing.T) {
			a := shardedReplay(t, newShardedWithAdmission(t, 4, f, 3), 13, 12_000)
			b := shardedReplay(t, newShardedWithAdmission(t, 4, f, 3), 13, 12_000)
			if a != b {
				t.Fatalf("same-seed replays diverged under %s:\n  run1: %+v\n  run2: %+v", f.Name(), a, b)
			}
			if a.Sets == 0 {
				t.Fatalf("replay did no work: %+v", a)
			}
		})
	}
}
