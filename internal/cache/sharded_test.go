package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"znscache/internal/sim"
)

// newTestSharded builds n independent engines over memStores and wraps them
// in a Sharded frontend.
func newTestSharded(t testing.TB, n, regions int, regionSize int64) *Sharded {
	t.Helper()
	engines := make([]*Cache, n)
	for i := range engines {
		st := newMemStore(regions, regionSize)
		c, err := New(Config{Store: st, TrackValues: true})
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		engines[i] = c
	}
	s, err := NewSharded(engines)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	return s
}

func TestNewShardedRejectsBadInput(t *testing.T) {
	if _, err := NewSharded(nil); err == nil {
		t.Fatal("empty engine list accepted")
	}
	if _, err := NewSharded([]*Cache{nil}); err == nil {
		t.Fatal("nil engine accepted")
	}
	// Two engines sharing one clock must be rejected: they would serialize
	// through the clock and break per-shard determinism.
	clk := sim.NewClock()
	a, _ := New(Config{Store: newMemStore(4, 4096), Clock: clk})
	b, _ := New(Config{Store: newMemStore(4, 4096), Clock: clk})
	if _, err := NewSharded([]*Cache{a, b}); err == nil {
		t.Fatal("shared clock accepted")
	}
	// Two shards over one store must be rejected too.
	st := newMemStore(4, 4096)
	c1, _ := New(Config{Store: st})
	c2, _ := New(Config{Store: st})
	if _, err := NewSharded([]*Cache{c1, c2}); err == nil {
		t.Fatal("shared store accepted")
	}
}

func TestShardedBasicOps(t *testing.T) {
	s := newTestSharded(t, 4, 8, 64<<10)
	const keys = 200
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if err := s.Set(k, []byte(k), 0); err != nil {
			t.Fatalf("Set(%s): %v", k, err)
		}
	}
	if s.Len() != keys {
		t.Fatalf("Len = %d, want %d", s.Len(), keys)
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v, ok, err := s.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%s) = %v, %v", k, ok, err)
		}
		if string(v) != k {
			t.Fatalf("Get(%s) returned %q", k, v)
		}
		if !s.Contains(k) {
			t.Fatalf("Contains(%s) = false after Set", k)
		}
	}
	if !s.Delete("key-0000") {
		t.Fatal("Delete of present key returned false")
	}
	if s.Contains("key-0000") {
		t.Fatal("deleted key still present")
	}
	if s.Delete("never-set") {
		t.Fatal("Delete of absent key returned true")
	}
	st := s.Stats()
	if st.Sets != keys {
		t.Fatalf("merged Sets = %d, want %d", st.Sets, keys)
	}
	if st.Hits != keys {
		t.Fatalf("merged Hits = %d, want %d", st.Hits, keys)
	}
	if st.GetLatency.Count != keys {
		t.Fatalf("merged get histogram count = %d, want %d", st.GetLatency.Count, keys)
	}
}

func TestShardedShardForStableAndCovering(t *testing.T) {
	s := newTestSharded(t, 4, 4, 64<<10)
	hitShards := make(map[int]int)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%d", i)
		a, b := s.ShardFor(k), s.ShardFor(k)
		if a != b {
			t.Fatalf("ShardFor(%s) unstable: %d then %d", k, a, b)
		}
		if a < 0 || a >= s.NumShards() {
			t.Fatalf("ShardFor(%s) = %d out of range", k, a)
		}
		hitShards[a]++
	}
	for i := 0; i < s.NumShards(); i++ {
		if hitShards[i] == 0 {
			t.Fatalf("hash never picked shard %d over 1000 keys", i)
		}
	}
}

// TestShardedConcurrent drives mixed Get/Set/Delete from 8 goroutines; run
// under -race it checks the frontend's locking discipline.
func TestShardedConcurrent(t *testing.T) {
	s := newTestSharded(t, 4, 8, 64<<10)
	const goroutines = 8
	const opsPer = 2000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			rng := sim.NewRand(ShardSeed(42, g))
			for i := 0; i < opsPer; i++ {
				k := fmt.Sprintf("key-%04d", rng.Intn(500))
				switch rng.Intn(10) {
				case 0:
					s.Delete(k)
				case 1, 2, 3:
					if err := s.Set(k, nil, 1024); err != nil {
						t.Errorf("Set: %v", err)
						return
					}
				default:
					if _, _, err := s.Get(k); err != nil {
						t.Errorf("Get: %v", err)
						return
					}
				}
				if i%500 == 0 {
					s.Stats() // stats may be read concurrently with ops
					s.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	s.Drain()
	st := s.Stats()
	if st.Gets+st.Sets+st.Deletes != goroutines*opsPer {
		t.Fatalf("ops accounted = %d, want %d",
			st.Gets+st.Sets+st.Deletes, goroutines*opsPer)
	}
}

// shardedReplay replays a seeded op stream against s, one goroutine per
// shard: every goroutine scans the same derived stream and applies only the
// ops whose key hashes to its shard, so each shard sees a fixed sequence
// regardless of scheduling.
func shardedReplay(t *testing.T, s *Sharded, seed uint64, ops int) Stats {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(s.NumShards())
	for shard := 0; shard < s.NumShards(); shard++ {
		go func(shard int) {
			defer wg.Done()
			rng := sim.NewRand(seed)
			for i := 0; i < ops; i++ {
				kind := rng.Intn(10)
				k := fmt.Sprintf("key-%05d", rng.Intn(2000))
				if s.ShardFor(k) != shard {
					continue
				}
				switch kind {
				case 0:
					s.Delete(k)
				case 1, 2, 3, 4:
					if err := s.Set(k, nil, 2048); err != nil {
						t.Errorf("Set: %v", err)
						return
					}
				default:
					if _, _, err := s.Get(k); err != nil {
						t.Errorf("Get: %v", err)
						return
					}
				}
			}
		}(shard)
	}
	wg.Wait()
	s.Drain()
	return s.Stats()
}

// TestShardedDeterminism asserts the tentpole's contract: two concurrent
// replays with the same seed and shard count produce identical merged stats,
// byte for byte, despite nondeterministic goroutine scheduling.
func TestShardedDeterminism(t *testing.T) {
	const seed = 7
	const ops = 20_000
	a := shardedReplay(t, newTestSharded(t, 4, 8, 64<<10), seed, ops)
	b := shardedReplay(t, newTestSharded(t, 4, 8, 64<<10), seed, ops)
	if a != b {
		t.Fatalf("same-seed sharded replays diverged:\n  run1: %+v\n  run2: %+v", a, b)
	}
	if a.Sets == 0 || a.Gets == 0 {
		t.Fatalf("replay did no work: %+v", a)
	}
}

// TestShardedStatsMergeHistogram checks the latency merge is a true union:
// per-shard sample counts sum and the merged max dominates every shard max.
func TestShardedStatsMergeHistogram(t *testing.T) {
	s := newTestSharded(t, 3, 8, 64<<10)
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key-%04d", i)
		s.Set(k, nil, 4096)
		s.Get(k)
	}
	var want uint64
	var maxShard time.Duration
	for i := 0; i < s.NumShards(); i++ {
		st := s.ShardStats(i)
		want += st.GetLatency.Count
		if st.GetLatency.Max > maxShard {
			maxShard = st.GetLatency.Max
		}
	}
	merged := s.Stats()
	if merged.GetLatency.Count != want {
		t.Fatalf("merged count = %d, want sum of shards %d", merged.GetLatency.Count, want)
	}
	if merged.GetLatency.Max != maxShard {
		t.Fatalf("merged max = %v, want shard max %v", merged.GetLatency.Max, maxShard)
	}
}

// TestContainsExpiredItem is the regression test for the Contains TTL bug:
// Contains used to report true for items Get already considered dead.
func TestContainsExpiredItem(t *testing.T) {
	c, _ := newTestCache(t, 4, 64<<10)
	if err := c.SetTTL("k", []byte("v"), 0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if !c.Contains("k") {
		t.Fatal("item absent before its TTL")
	}
	c.Clock().Advance(5 * time.Second)
	if c.Contains("k") {
		t.Fatal("Contains returned true for a TTL-expired item")
	}
	if c.Stats().Expirations != 1 {
		t.Fatalf("Expirations = %d, want 1 (lazy expiry via Contains)", c.Stats().Expirations)
	}
	// The lazy removal must match Get's: the entry is gone, not just hidden.
	if _, ok, _ := c.Get("k"); ok {
		t.Fatal("expired item visible to Get after Contains")
	}
	if c.Stats().Expirations != 1 {
		t.Fatalf("Get re-expired an already-removed item: %d", c.Stats().Expirations)
	}
}

// TestFillLogRing checks the bounded fill log: capped length, chronological
// order, and exact FillCount/EvictionOnset even after trimming.
func TestFillLogRing(t *testing.T) {
	st := newMemStore(4, 4096)
	c, err := New(Config{Store: st, FillLogCap: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := c.Set(fmt.Sprintf("key-%04d", i), nil, 900); err != nil {
			t.Fatal(err)
		}
	}
	log := c.FillLog()
	if len(log) > 5 {
		t.Fatalf("fill log len = %d, cap 5", len(log))
	}
	for i := 1; i < len(log); i++ {
		if log[i].Seq != log[i-1].Seq+1 {
			t.Fatalf("ring out of order: %d after %d", log[i].Seq, log[i-1].Seq)
		}
	}
	if c.FillCount() <= 5 {
		t.Fatalf("FillCount = %d, want > cap (whole history)", c.FillCount())
	}
	if log[len(log)-1].Seq != c.FillCount()-1 {
		t.Fatalf("newest record seq %d, want %d", log[len(log)-1].Seq, c.FillCount()-1)
	}
	onset, ok := c.EvictionOnset()
	if !ok {
		t.Fatal("eviction never recorded despite cache turnover")
	}
	// With 4 regions the first eviction happens on the 4th roll (seq 3).
	if onset != 3 {
		t.Fatalf("eviction onset seq = %d, want 3", onset)
	}
}

// TestFillLogUnbounded preserves the pre-ring behaviour when FillLogCap < 0.
func TestFillLogUnbounded(t *testing.T) {
	st := newMemStore(4, 4096)
	c, err := New(Config{Store: st, FillLogCap: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		c.Set(fmt.Sprintf("key-%04d", i), nil, 900)
	}
	if got, want := uint64(len(c.FillLog())), c.FillCount(); got != want {
		t.Fatalf("unbounded log kept %d of %d records", got, want)
	}
}

// TestRegionDroppableCachedMatchesScan cross-checks the amortized cold-set
// cache against a reference walk of the eviction order, across mutations
// (Gets that reorder the LRU list and evictions that remove elements).
func TestRegionDroppableCachedMatchesScan(t *testing.T) {
	st := newMemStore(8, 4096)
	c, err := New(Config{Store: st, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(11)
	check := func(frac float64) {
		t.Helper()
		// Reference: walk the back of the order list directly.
		want := make(map[int]bool)
		limit := int(float64(c.order.Len()) * frac)
		for e, i := c.order.Back(), 0; e != nil && i < limit; e, i = e.Prev(), i+1 {
			want[e.Value.(int)] = true
		}
		for id := 0; id < 8; id++ {
			m := &c.regions[id]
			wantDrop := want[id] && m.state == regionSealed && m.elem != nil
			if got := c.RegionDroppable(id, frac); got != wantDrop {
				t.Fatalf("RegionDroppable(%d, %.2f) = %v, reference scan says %v",
					id, frac, got, wantDrop)
			}
		}
	}
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("key-%04d", rng.Intn(120))
		if rng.Intn(3) == 0 {
			c.Set(k, nil, 1000)
		} else {
			c.Get(k)
		}
		if i%25 == 0 {
			c.Drain()
			check(0.3)
			check(0.6) // changing frac must invalidate the cached set
		}
	}
}
