// Admission control: the subsystem that decides whether a Set is written to
// flash at all. Flash caches shed write bandwidth — and extend device
// lifetime — by refusing inserts that are unlikely to earn hits before they
// are evicted; the paper names CacheLib's dynamic random admission and
// Flashield as the canonical levers on the write-amplification axis its ZNS
// comparison (§4.3) is about.
//
// Policies are stateful (PRNG streams, bloom bits, sketch counters) and are
// mutated on every Admit, so one instance belongs to exactly one engine.
// The AdmissionFactory seam exists so multi-engine frontends (cache.Sharded,
// the harness rigs) build one independently-seeded instance per engine
// instead of sharing a policy across shards — sharing is a data race under
// concurrent cross-shard Sets and a determinism violation of Sharded's
// replay contract, and NewSharded rejects it.
package cache

import (
	"fmt"
	"math"
	"math/bits"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"znscache/internal/obs"
	"znscache/internal/sim"
	"znscache/internal/stats"
)

// Admission decides whether a Set is written to flash at all.
type Admission interface {
	// Admit reports whether the item should be inserted.
	Admit(key string, valLen int) bool
}

// AdmissionParams carries the engine-derived inputs a policy instance binds
// to when a factory builds it: a per-engine seed (shard-decorrelated by the
// caller, e.g. via ShardSeed) and the engine's virtual clock, which
// rate-aware policies read to measure write bandwidth in simulated time.
type AdmissionParams struct {
	Seed  uint64
	Clock *sim.Clock
}

// AdmissionFactory builds one independent policy instance per engine. The
// factory itself is an immutable configuration value and may be shared
// freely; only the Admission instances it returns are single-engine.
type AdmissionFactory interface {
	// Name identifies the policy for flags, reports, and metric labels.
	Name() string
	// New builds a fresh, independent policy instance.
	New(p AdmissionParams) Admission
}

// CloneableAdmission is implemented by stateful policies that can produce an
// independent copy of their configuration (not their accumulated state) —
// the instance-level half of the Factory/Clone seam, for callers that hold a
// configured policy rather than a factory.
type CloneableAdmission interface {
	Admission
	// CloneAdmission returns a fresh instance with the same configuration
	// and a new seed. Accumulated state (PRNG position, bloom bits, sketch
	// counts, rate windows) is not copied.
	CloneAdmission(p AdmissionParams) Admission
}

// SharedSafeAdmission marks policies whose Admit is safe to share across
// concurrently-running engines (stateless, like AdmitAll). Policies without
// this marker are rejected by NewSharded when one instance appears in more
// than one shard.
type SharedSafeAdmission interface {
	Admission
	// AdmissionSharedSafe is a marker; it is never called.
	AdmissionSharedSafe()
}

// AdmissionMetrics is implemented by policies that export per-policy
// instruments (admit/reject counters, the live admit-probability gauge).
// Cache.MetricsInto forwards to it, so per-policy series appear wherever the
// engine registers.
type AdmissionMetrics interface {
	MetricsInto(r *obs.Registry, labels obs.Labels)
}

// admissionCounters is the instrument pair every stateful policy embeds.
// The counters are atomic, so a concurrent metrics scrape mid-run is safe
// even though Admit itself is single-engine.
type admissionCounters struct {
	admits  stats.Counter
	rejects stats.Counter
}

func (c *admissionCounters) metricsInto(r *obs.Registry, labels obs.Labels, policy string) {
	ls := labels.With("policy", policy)
	r.Counter("admission_admits_total", "Inserts admitted by the policy", ls, &c.admits)
	r.Counter("admission_rejects_total", "Inserts rejected by the policy", ls, &c.rejects)
}

// Admits returns how many inserts the policy has admitted.
func (c *admissionCounters) Admits() uint64 { return c.admits.Load() }

// Rejects returns how many inserts the policy has rejected.
func (c *admissionCounters) Rejects() uint64 { return c.rejects.Load() }

// ---------------------------------------------------------------------------
// AdmitAll

// AdmitAll admits everything (CacheLib's default). It is stateless and may
// be shared across engines.
type AdmitAll struct{}

// Admit implements Admission.
func (AdmitAll) Admit(string, int) bool { return true }

// AdmissionSharedSafe marks AdmitAll as shareable across engines.
func (AdmitAll) AdmissionSharedSafe() {}

// AdmitAllFactory builds AdmitAll policies.
type AdmitAllFactory struct{}

// Name implements AdmissionFactory.
func (AdmitAllFactory) Name() string { return "all" }

// New implements AdmissionFactory.
func (AdmitAllFactory) New(AdmissionParams) Admission { return AdmitAll{} }

// ---------------------------------------------------------------------------
// ProbAdmit

// ProbAdmit admits a uniform fraction P of inserts, deterministic per
// engine instance via its own PRNG stream.
type ProbAdmit struct {
	P   float64
	rng *sim.Rand
	admissionCounters
}

// NewProbAdmit builds a probabilistic admitter.
func NewProbAdmit(p float64, seed uint64) *ProbAdmit {
	return &ProbAdmit{P: p, rng: sim.NewRand(seed)}
}

// Admit implements Admission.
func (a *ProbAdmit) Admit(string, int) bool {
	if a.rng.Float64() >= a.P {
		a.rejects.Inc()
		return false
	}
	a.admits.Inc()
	return true
}

// CloneAdmission implements CloneableAdmission.
func (a *ProbAdmit) CloneAdmission(p AdmissionParams) Admission {
	return NewProbAdmit(a.P, p.Seed)
}

// MetricsInto implements AdmissionMetrics.
func (a *ProbAdmit) MetricsInto(r *obs.Registry, labels obs.Labels) {
	a.metricsInto(r, labels, "prob")
}

// ProbAdmitFactory builds ProbAdmit policies with probability P.
type ProbAdmitFactory struct{ P float64 }

// Name implements AdmissionFactory.
func (f ProbAdmitFactory) Name() string { return fmt.Sprintf("prob:%g", f.P) }

// New implements AdmissionFactory.
func (f ProbAdmitFactory) New(p AdmissionParams) Admission { return NewProbAdmit(f.P, p.Seed) }

// ---------------------------------------------------------------------------
// RejectFirstAdmit

// RejectFirstAdmit admits a key only on its second appearance within the
// current window, filtering one-hit wonders. Appearance tracking uses a
// two-hash Bloom filter that is cleared each time Window inserts have been
// observed, bounding both memory and staleness.
type RejectFirstAdmit struct {
	bits   []uint64
	nbits  uint64
	window int
	seen   int
	seed   uint64
	admissionCounters
}

// NewRejectFirstAdmit builds a reject-first-access admitter with the given
// filter size (in bits, rounded up to 64) and reset window.
func NewRejectFirstAdmit(bitCount int, window int) *RejectFirstAdmit {
	return NewRejectFirstAdmitSeeded(bitCount, window, 0)
}

// NewRejectFirstAdmitSeeded is NewRejectFirstAdmit with a hash seed, so
// per-shard instances probe decorrelated bit positions for the same key.
func NewRejectFirstAdmitSeeded(bitCount int, window int, seed uint64) *RejectFirstAdmit {
	if bitCount < 64 {
		bitCount = 64
	}
	if window <= 0 {
		window = 1 << 20
	}
	words := (bitCount + 63) / 64
	return &RejectFirstAdmit{
		bits:   make([]uint64, words),
		nbits:  uint64(words * 64),
		window: window,
		seed:   seed,
	}
}

// hash2 derives the two bloom positions from two independent hash functions
// computed in one pass over the key: FNV-1a (xor-then-multiply) and FNV-1
// (multiply-then-xor) with a seed-perturbed offset basis. The previous
// implementation rotated the single FNV-1a sum, which made the two bit
// positions fully correlated modulo the (power-of-two) filter size — and let
// them collapse to one bit — inflating the false-positive admit rate well
// above the two-hash bloom bound.
func (a *RejectFirstAdmit) hash2(key string) (uint64, uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h1 := uint64(offset64) ^ a.seed
	h2 := uint64(offset64) ^ mix64(a.seed+1)
	for i := 0; i < len(key); i++ {
		h1 ^= uint64(key[i])
		h1 *= prime64
		h2 *= prime64
		h2 ^= uint64(key[i])
	}
	return h1 % a.nbits, h2 % a.nbits
}

// Admit implements Admission: false on first sight, true afterwards.
func (a *RejectFirstAdmit) Admit(key string, _ int) bool {
	b1, b2 := a.hash2(key)
	present := a.bits[b1/64]&(1<<(b1%64)) != 0 && a.bits[b2/64]&(1<<(b2%64)) != 0
	a.bits[b1/64] |= 1 << (b1 % 64)
	a.bits[b2/64] |= 1 << (b2 % 64)
	a.seen++
	if a.seen >= a.window {
		for i := range a.bits {
			a.bits[i] = 0
		}
		a.seen = 0
	}
	if present {
		a.admits.Inc()
	} else {
		a.rejects.Inc()
	}
	return present
}

// CloneAdmission implements CloneableAdmission.
func (a *RejectFirstAdmit) CloneAdmission(p AdmissionParams) Admission {
	return NewRejectFirstAdmitSeeded(int(a.nbits), a.window, p.Seed)
}

// MetricsInto implements AdmissionMetrics.
func (a *RejectFirstAdmit) MetricsInto(r *obs.Registry, labels obs.Labels) {
	a.metricsInto(r, labels, "reject-first")
}

// RejectFirstFactory builds RejectFirstAdmit policies. Zero values take the
// NewRejectFirstAdmit defaults.
type RejectFirstFactory struct {
	Bits   int
	Window int
}

// Name implements AdmissionFactory.
func (RejectFirstFactory) Name() string { return "reject-first" }

// New implements AdmissionFactory.
func (f RejectFirstFactory) New(p AdmissionParams) Admission {
	bits, window := f.Bits, f.Window
	if bits == 0 {
		bits = 1 << 20
	}
	return NewRejectFirstAdmitSeeded(bits, window, p.Seed)
}

// ---------------------------------------------------------------------------
// DynamicRandomAdmit

// Defaults for DynamicRandomAdmit. The window is simulated time: long enough
// to see hundreds of inserts per window in the harness workloads, short
// enough to converge within a fraction of a second of simulated traffic.
const (
	dynamicDefaultWindow = 50 * time.Millisecond
	// dynamicMaxStep bounds the per-window multiplicative probability change,
	// damping oscillation when one window's observed rate is noisy.
	dynamicMaxStep = 2.0
	// dynamicMinP keeps the policy probing even when far over budget, so it
	// can recover when the offered load drops.
	dynamicMinP = 1e-3
)

// DynamicRandomAdmit adapts its admit probability so the recent write rate
// (bytes of admitted inserts per second of simulated time, measured over a
// sliding window on the engine's clock) tracks a configured budget — the
// shape of CacheLib's dynamic random admission policy, the standard lever
// for shedding flash write bandwidth to meet a device-lifetime target. Admit
// decisions are randomized uniformly at the current probability, so the
// accepted stream remains an unbiased sample of the offered stream.
type DynamicRandomAdmit struct {
	budget float64 // target bytes/second of simulated time
	window time.Duration
	clock  *sim.Clock
	rng    *sim.Rand

	// p is the current admit probability, stored as Float64bits so the
	// metrics gauge can read it from another goroutine mid-run.
	p atomic.Uint64

	// bytesWritten, when set, is the downstream byte counter the budget
	// actually constrains (e.g. device media writes including GC and region
	// padding); the controller then regulates what the device truly absorbs,
	// compensating write amplification automatically. Nil falls back to
	// admitted item bytes.
	bytesWritten func() uint64
	devBase      uint64 // device counter value when the source was bound

	// The observed series is max(cumulative admitted bytes, cumulative device
	// bytes): device flushes lag admits by up to a whole region, so billing
	// each window the delta of the running max counts every byte exactly once
	// — admits as they happen, plus the device's write-amplification excess
	// when a flush lands — instead of double-counting buffered admits in both
	// the quiet window and the flush window.
	cumAdmitted float64
	lastCum     float64

	winStart time.Duration
	admissionCounters
}

// NewDynamicRandomAdmit builds a write-rate-aware admitter over the given
// virtual clock. budgetBytesPerSec is the device-write budget in bytes per
// simulated second; window is the rate-measurement window (0 = 50ms).
func NewDynamicRandomAdmit(budgetBytesPerSec float64, window time.Duration, clock *sim.Clock, seed uint64) (*DynamicRandomAdmit, error) {
	if budgetBytesPerSec <= 0 {
		return nil, fmt.Errorf("%w: dynamic-random budget %g bytes/s", ErrBadConfig, budgetBytesPerSec)
	}
	if clock == nil {
		return nil, fmt.Errorf("%w: dynamic-random needs a clock", ErrBadConfig)
	}
	if window <= 0 {
		window = dynamicDefaultWindow
	}
	a := &DynamicRandomAdmit{
		budget:   budgetBytesPerSec,
		window:   window,
		clock:    clock,
		rng:      sim.NewRand(seed),
		winStart: clock.Now(),
	}
	a.p.Store(math.Float64bits(1.0)) // start open; converge downward
	return a, nil
}

// SetBytesSource points the controller at the downstream byte counter the
// budget constrains (device media bytes, filesystem bytes, ...). Call before
// the first Admit; the harness wires each rig's device counter in here so
// dynamic-random holds the device — not just the admitted stream — to the
// budget.
func (a *DynamicRandomAdmit) SetBytesSource(fn func() uint64) {
	a.bytesWritten = fn
	if fn != nil {
		a.devBase = fn()
	}
}

// Probability returns the current admit probability. Safe to call
// concurrently with Admit (metrics gauge).
func (a *DynamicRandomAdmit) Probability() float64 {
	return math.Float64frombits(a.p.Load())
}

// Budget returns the configured write budget in bytes per simulated second.
func (a *DynamicRandomAdmit) Budget() float64 { return a.budget }

// retarget closes the current rate window: compare the observed byte rate
// against the budget and scale the probability toward the target, bounded
// per step so a single noisy window cannot slam the policy shut (or open).
func (a *DynamicRandomAdmit) retarget(now, elapsed time.Duration) {
	p := a.Probability()
	cum := a.cumAdmitted
	if a.bytesWritten != nil {
		if dev := float64(a.bytesWritten() - a.devBase); dev > cum {
			cum = dev
		}
	}
	winBytes := cum - a.lastCum
	a.lastCum = cum
	observed := winBytes / elapsed.Seconds()
	if observed <= 0 {
		// Nothing admitted (or nothing offered): probe upward so the policy
		// recovers once load returns.
		p *= dynamicMaxStep
	} else {
		f := a.budget / observed
		if f > dynamicMaxStep {
			f = dynamicMaxStep
		}
		if f < 1/dynamicMaxStep {
			f = 1 / dynamicMaxStep
		}
		p *= f
	}
	if p > 1 {
		p = 1
	}
	if p < dynamicMinP {
		p = dynamicMinP
	}
	a.p.Store(math.Float64bits(p))
	a.winStart = now
}

// Admit implements Admission.
func (a *DynamicRandomAdmit) Admit(key string, valLen int) bool {
	now := a.clock.Now()
	if elapsed := now - a.winStart; elapsed >= a.window {
		a.retarget(now, elapsed)
	}
	if a.rng.Float64() >= a.Probability() {
		a.rejects.Inc()
		return false
	}
	a.cumAdmitted += float64(itemHeaderSize + len(key) + valLen)
	a.admits.Inc()
	return true
}

// CloneAdmission implements CloneableAdmission. The clone's clock must be
// supplied; a clone bound to another engine must read that engine's time.
func (a *DynamicRandomAdmit) CloneAdmission(p AdmissionParams) Admission {
	clock := p.Clock
	if clock == nil {
		clock = a.clock
	}
	c, err := NewDynamicRandomAdmit(a.budget, a.window, clock, p.Seed)
	if err != nil {
		// The receiver was validly constructed, so the clone cannot fail.
		panic(err)
	}
	return c
}

// MetricsInto implements AdmissionMetrics, adding the live probability gauge
// next to the admit/reject counters.
func (a *DynamicRandomAdmit) MetricsInto(r *obs.Registry, labels obs.Labels) {
	ls := labels.With("policy", "dynamic-random")
	a.metricsInto(r, labels, "dynamic-random")
	r.Gauge("admission_admit_probability", "Current dynamic-random admit probability", ls, a.Probability)
	r.Gauge("admission_budget_bytes_per_sec", "Configured dynamic-random write budget", ls, func() float64 {
		return a.budget
	})
}

// DynamicRandomFactory builds DynamicRandomAdmit policies. The budget is
// per engine: a sharded frontend splitting traffic across N engines should
// hand each factory instance 1/N of the device budget.
type DynamicRandomFactory struct {
	BudgetBytesPerSec float64
	Window            time.Duration // 0 = default 50ms of simulated time
	// BytesWritten, when set, is handed to every built instance as the
	// downstream byte counter the budget constrains (see SetBytesSource).
	// Leave nil when one factory value builds instances for several engines —
	// each engine needs its own counter, wired per instance by the caller.
	BytesWritten func() uint64
}

// Name implements AdmissionFactory.
func (f DynamicRandomFactory) Name() string { return "dynamic-random" }

// New implements AdmissionFactory.
func (f DynamicRandomFactory) New(p AdmissionParams) Admission {
	a, err := NewDynamicRandomAdmit(f.BudgetBytesPerSec, f.Window, p.Clock, p.Seed)
	if err != nil {
		// Factories are validated at parse/config time; a bad budget
		// reaching New is a programming error.
		panic(err)
	}
	if f.BytesWritten != nil {
		a.SetBytesSource(f.BytesWritten)
	}
	return a
}

// Validate reports whether the factory can build instances.
func (f DynamicRandomFactory) Validate() error {
	if f.BudgetBytesPerSec <= 0 {
		return fmt.Errorf("%w: dynamic-random budget %g bytes/s", ErrBadConfig, f.BudgetBytesPerSec)
	}
	return nil
}

// ---------------------------------------------------------------------------
// FrequencyAdmit

// Defaults for FrequencyAdmit.
const (
	frequencyDefaultCounters  = 1 << 16
	frequencyDefaultThreshold = 2
	// frequencyDefaultHalveFactor: halve every counters×factor observations,
	// the TinyLFU "reset" that ages out stale popularity.
	frequencyDefaultHalveFactor = 8
	frequencyDepth              = 4
	nibbleMax                   = 15
	nibbleHalfMask              = 0x7777777777777777
)

// FrequencyAdmit is a TinyLFU-style frequency filter: a 4-bit count-min
// sketch estimates how often each key has been seen recently, and only keys
// whose estimated frequency (including the current access) clears Threshold
// are admitted — one-hit wonders never reach flash. Every HalveEvery
// observations all counters are halved, so popularity decays and the sketch
// tracks the recent workload rather than all history (Flashield's
// "write-worthiness" idea reduced to frequency).
type FrequencyAdmit struct {
	rows       [frequencyDepth][]uint64 // packed 4-bit counters, 16 per word
	mask       uint64                   // counters per row - 1 (power of two)
	threshold  uint8
	halveEvery int
	ops        int
	seed       uint64
	admissionCounters
}

// NewFrequencyAdmit builds a frequency admitter with counters counters per
// sketch row (rounded up to a power of two, min 1024), admitting keys whose
// estimated access count reaches threshold (min 1), and halving all counters
// every halveEvery observations (0 = 8× counters).
func NewFrequencyAdmit(counters int, threshold uint8, halveEvery int, seed uint64) *FrequencyAdmit {
	if counters < 1024 {
		counters = 1024
	}
	if bits.OnesCount(uint(counters)) != 1 {
		counters = 1 << bits.Len(uint(counters))
	}
	if threshold < 1 {
		threshold = 1
	}
	if halveEvery <= 0 {
		halveEvery = counters * frequencyDefaultHalveFactor
	}
	a := &FrequencyAdmit{
		mask:       uint64(counters - 1),
		threshold:  threshold,
		halveEvery: halveEvery,
		seed:       seed,
	}
	words := counters / 16
	for i := range a.rows {
		a.rows[i] = make([]uint64, words)
	}
	return a
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection used to
// derive decorrelated per-row sketch positions from one key hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// positions derives the frequencyDepth row positions for key.
func (a *FrequencyAdmit) positions(key string) [frequencyDepth]uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ a.seed
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	var pos [frequencyDepth]uint64
	for i := range pos {
		h = mix64(h + 0x9E3779B97F4A7C15)
		pos[i] = h & a.mask
	}
	return pos
}

// nibble returns counter c of row r.
func (a *FrequencyAdmit) nibble(r int, c uint64) uint8 {
	return uint8(a.rows[r][c/16] >> ((c % 16) * 4) & 0xF)
}

// setNibble stores v into counter c of row r.
func (a *FrequencyAdmit) setNibble(r int, c uint64, v uint8) {
	shift := (c % 16) * 4
	w := a.rows[r][c/16]
	w &^= 0xF << shift
	w |= uint64(v) << shift
	a.rows[r][c/16] = w
}

// Estimate returns the sketch's current frequency estimate for key, without
// recording an access (tests, introspection).
func (a *FrequencyAdmit) Estimate(key string) uint8 {
	pos := a.positions(key)
	est := uint8(nibbleMax)
	for r, c := range pos {
		if v := a.nibble(r, c); v < est {
			est = v
		}
	}
	return est
}

// Admit implements Admission: record the access in the sketch and admit iff
// the estimated frequency including this access reaches the threshold.
func (a *FrequencyAdmit) Admit(key string, _ int) bool {
	pos := a.positions(key)
	est := uint8(nibbleMax)
	for r, c := range pos {
		if v := a.nibble(r, c); v < est {
			est = v
		}
	}
	// Conservative update: only the minimal counters grow, which tightens
	// the count-min overestimate under collisions.
	if est < nibbleMax {
		for r, c := range pos {
			if a.nibble(r, c) == est {
				a.setNibble(r, c, est+1)
			}
		}
	}
	a.ops++
	if a.ops >= a.halveEvery {
		a.halve()
		a.ops = 0
	}
	if uint(est)+1 >= uint(a.threshold) {
		a.admits.Inc()
		return true
	}
	a.rejects.Inc()
	return false
}

// halve ages the sketch: every 4-bit counter is divided by two in place.
func (a *FrequencyAdmit) halve() {
	for r := range a.rows {
		row := a.rows[r]
		for i, w := range row {
			row[i] = (w >> 1) & nibbleHalfMask
		}
	}
}

// CloneAdmission implements CloneableAdmission.
func (a *FrequencyAdmit) CloneAdmission(p AdmissionParams) Admission {
	return NewFrequencyAdmit(int(a.mask)+1, a.threshold, a.halveEvery, p.Seed)
}

// MetricsInto implements AdmissionMetrics.
func (a *FrequencyAdmit) MetricsInto(r *obs.Registry, labels obs.Labels) {
	a.metricsInto(r, labels, "frequency")
}

// FrequencyFactory builds FrequencyAdmit policies. Zero values take the
// NewFrequencyAdmit defaults.
type FrequencyFactory struct {
	Counters   int
	Threshold  uint8
	HalveEvery int
}

// Name implements AdmissionFactory.
func (FrequencyFactory) Name() string { return "frequency" }

// New implements AdmissionFactory.
func (f FrequencyFactory) New(p AdmissionParams) Admission {
	threshold := f.Threshold
	if threshold == 0 {
		threshold = frequencyDefaultThreshold
	}
	counters := f.Counters
	if counters == 0 {
		counters = frequencyDefaultCounters
	}
	return NewFrequencyAdmit(counters, threshold, f.HalveEvery, p.Seed)
}

// ---------------------------------------------------------------------------
// Flag parsing

// ParseAdmission turns a bench-flag spec into a factory. Specs:
//
//	""             no admission control configured (nil factory)
//	all            admit everything
//	prob:P         uniform random admission at probability P (0..1]
//	reject-first[:BITS,WINDOW]
//	               bloom-filtered second-access admission
//	dynamic-random[:WINDOW_MS]
//	               write-rate-aware admission at budgetBytesPerSec
//	frequency[:THRESHOLD]
//	               TinyLFU-style sketch admission
//
// budgetBytesPerSec is consumed by dynamic-random only (bytes of admitted
// writes per second of simulated time); it must be positive for that spec.
func ParseAdmission(spec string, budgetBytesPerSec float64) (AdmissionFactory, error) {
	name, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	switch name {
	case "", "none":
		return nil, nil
	case "all":
		return AdmitAllFactory{}, nil
	case "prob":
		p, err := strconv.ParseFloat(arg, 64)
		if err != nil || p <= 0 || p > 1 {
			return nil, fmt.Errorf("cache: admission spec %q: need prob:P with P in (0,1]", spec)
		}
		return ProbAdmitFactory{P: p}, nil
	case "reject-first":
		f := RejectFirstFactory{}
		if arg != "" {
			parts := strings.Split(arg, ",")
			if len(parts) != 2 {
				return nil, fmt.Errorf("cache: admission spec %q: need reject-first:BITS,WINDOW", spec)
			}
			bits, err1 := strconv.Atoi(parts[0])
			window, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil || bits <= 0 || window <= 0 {
				return nil, fmt.Errorf("cache: admission spec %q: need reject-first:BITS,WINDOW", spec)
			}
			f.Bits, f.Window = bits, window
		}
		return f, nil
	case "dynamic-random":
		f := DynamicRandomFactory{BudgetBytesPerSec: budgetBytesPerSec}
		if arg != "" {
			ms, err := strconv.Atoi(arg)
			if err != nil || ms <= 0 {
				return nil, fmt.Errorf("cache: admission spec %q: need dynamic-random:WINDOW_MS", spec)
			}
			f.Window = time.Duration(ms) * time.Millisecond
		}
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("cache: admission spec %q needs a positive write budget (-admit-budget)", spec)
		}
		return f, nil
	case "frequency":
		f := FrequencyFactory{}
		if arg != "" {
			th, err := strconv.Atoi(arg)
			if err != nil || th < 1 || th > nibbleMax {
				return nil, fmt.Errorf("cache: admission spec %q: need frequency:THRESHOLD in [1,%d]", spec, nibbleMax)
			}
			f.Threshold = uint8(th)
		}
		return f, nil
	default:
		return nil, fmt.Errorf("cache: unknown admission policy %q", spec)
	}
}

// Interface conformance.
var (
	_ SharedSafeAdmission = AdmitAll{}
	_ CloneableAdmission  = (*ProbAdmit)(nil)
	_ CloneableAdmission  = (*RejectFirstAdmit)(nil)
	_ CloneableAdmission  = (*DynamicRandomAdmit)(nil)
	_ CloneableAdmission  = (*FrequencyAdmit)(nil)
	_ AdmissionMetrics    = (*ProbAdmit)(nil)
	_ AdmissionMetrics    = (*RejectFirstAdmit)(nil)
	_ AdmissionMetrics    = (*DynamicRandomAdmit)(nil)
	_ AdmissionMetrics    = (*FrequencyAdmit)(nil)
	_ AdmissionFactory    = AdmitAllFactory{}
	_ AdmissionFactory    = ProbAdmitFactory{}
	_ AdmissionFactory    = RejectFirstFactory{}
	_ AdmissionFactory    = DynamicRandomFactory{}
	_ AdmissionFactory    = FrequencyFactory{}
)
