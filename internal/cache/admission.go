package cache

import (
	"hash/fnv"

	"znscache/internal/sim"
)

// Admission decides whether a Set is written to flash at all. Flash caches
// use admission control to shed write bandwidth and extend device lifetime
// (Flashield and CacheLib's dynamic random admission are the canonical
// examples the paper cites as related work).
type Admission interface {
	// Admit reports whether the item should be inserted.
	Admit(key string, valLen int) bool
}

// AdmitAll admits everything (CacheLib's default).
type AdmitAll struct{}

// Admit implements Admission.
func (AdmitAll) Admit(string, int) bool { return true }

// ProbAdmit admits a uniform fraction P of inserts, deterministic per
// engine instance via its own PRNG stream.
type ProbAdmit struct {
	P   float64
	rng *sim.Rand
}

// NewProbAdmit builds a probabilistic admitter.
func NewProbAdmit(p float64, seed uint64) *ProbAdmit {
	return &ProbAdmit{P: p, rng: sim.NewRand(seed)}
}

// Admit implements Admission.
func (a *ProbAdmit) Admit(string, int) bool {
	return a.rng.Float64() < a.P
}

// RejectFirstAdmit admits a key only on its second appearance within the
// current window, filtering one-hit wonders. Appearance tracking uses a
// two-hash Bloom filter that is cleared each time Window inserts have been
// observed, bounding both memory and staleness.
type RejectFirstAdmit struct {
	bits   []uint64
	nbits  uint64
	window int
	seen   int
}

// NewRejectFirstAdmit builds a reject-first-access admitter with the given
// filter size (in bits, rounded up to 64) and reset window.
func NewRejectFirstAdmit(bitCount int, window int) *RejectFirstAdmit {
	if bitCount < 64 {
		bitCount = 64
	}
	if window <= 0 {
		window = 1 << 20
	}
	words := (bitCount + 63) / 64
	return &RejectFirstAdmit{
		bits:   make([]uint64, words),
		nbits:  uint64(words * 64),
		window: window,
	}
}

func (a *RejectFirstAdmit) hash2(key string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := h.Sum64()
	h2 := h1>>33 | h1<<31
	return h1 % a.nbits, h2 % a.nbits
}

// Admit implements Admission: false on first sight, true afterwards.
func (a *RejectFirstAdmit) Admit(key string, _ int) bool {
	b1, b2 := a.hash2(key)
	present := a.bits[b1/64]&(1<<(b1%64)) != 0 && a.bits[b2/64]&(1<<(b2%64)) != 0
	a.bits[b1/64] |= 1 << (b1 % 64)
	a.bits[b2/64] |= 1 << (b2 % 64)
	a.seen++
	if a.seen >= a.window {
		for i := range a.bits {
			a.bits[i] = 0
		}
		a.seen = 0
	}
	return present
}
