package cache

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
)

// Persistence ("warm roll"). A persistent cache must survive process
// restarts without losing the flash contents — CacheLib serializes its
// index and region metadata at shutdown and recovers them at startup,
// which is what makes the flash cache *persistent* rather than merely
// large. Snapshot captures everything the engine needs to re-attach to a
// store whose regions still hold the data; Restore rebuilds an engine from
// it.
//
// The open region's buffer is DRAM-only and is intentionally dropped, as
// CacheLib drops its in-flight allocation regions on shutdown: its keys
// are removed from the recovered index and the region restarts empty.

// snapshotVersion guards against format drift.
const snapshotVersion = 1

// snapEntry mirrors entry with exported fields for gob.
type snapEntry struct {
	Key      string
	Region   int32
	Offset   uint32
	KeyLen   uint16
	ValLen   uint32
	Hits     uint8
	ExpireAt uint32
}

// snapRegion mirrors the durable part of regionMeta.
type snapRegion struct {
	State regionState
	Keys  []string
	Fill  int64
	Live  int
}

type snapshotData struct {
	Version    int
	RegionSize int64
	NumRegions int
	Entries    []snapEntry
	Regions    []snapRegion
	Order      []int // region ids, MRU first
	Free       []int
	Open       int
	Seq        uint64
}

// Snapshot serializes the engine's recovery metadata. Call at a quiescent
// point (no in-flight flushes are carried over: Snapshot drains first).
func (c *Cache) Snapshot() ([]byte, error) {
	c.Drain()
	s := snapshotData{
		Version:    snapshotVersion,
		RegionSize: c.store.RegionSize(),
		NumRegions: c.store.NumRegions(),
		Open:       c.open,
		Seq:        c.seq,
		Free:       append([]int(nil), c.free...),
	}
	for k, e := range c.index {
		s.Entries = append(s.Entries, snapEntry{
			Key: k, Region: e.region, Offset: e.offset,
			KeyLen: e.keyLen, ValLen: e.valLen, Hits: e.hits,
			ExpireAt: e.expireAt,
		})
	}
	s.Regions = make([]snapRegion, len(c.regions))
	for i := range c.regions {
		m := &c.regions[i]
		s.Regions[i] = snapRegion{
			State: m.state,
			Keys:  m.keys.strings(),
			Fill:  m.fill,
			Live:  m.live,
		}
	}
	for e := c.order.Front(); e != nil; e = e.Next() {
		s.Order = append(s.Order, e.Value.(int))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
		return nil, fmt.Errorf("cache: snapshot encode: %w", err)
	}
	return buf.Bytes(), nil
}

// SnapshotKeys decodes only the key set a snapshot's index records — the
// warm set a cluster rebalance replays onto a joining node, without
// rebuilding an engine. Keys are returned sorted so replays are
// deterministic.
func SnapshotKeys(snapshot []byte) ([]string, error) {
	var s snapshotData
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&s); err != nil {
		return nil, fmt.Errorf("cache: snapshot decode: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("cache: snapshot version %d unsupported", s.Version)
	}
	keys := make([]string, 0, len(s.Entries))
	for i := range s.Entries {
		keys = append(keys, s.Entries[i].Key)
	}
	sort.Strings(keys)
	return keys, nil
}

// validate checks the snapshot's structural invariants so a corrupt or
// truncated snapshot is rejected with an error instead of corrupting the
// engine — or panicking on an out-of-range index — later. FuzzRestore
// hammers this path.
func (s *snapshotData) validate() error {
	n := s.NumRegions
	if len(s.Regions) != n {
		return fmt.Errorf("cache: snapshot has %d region records for %d regions", len(s.Regions), n)
	}
	if s.Open < 0 || s.Open >= n {
		return fmt.Errorf("cache: snapshot open region %d out of range", s.Open)
	}
	for i := range s.Regions {
		r := &s.Regions[i]
		if r.State > regionQuarantined {
			return fmt.Errorf("cache: region %d: unknown state %d", i, r.State)
		}
		if r.Fill < 0 || r.Fill > s.RegionSize {
			return fmt.Errorf("cache: region %d: fill %d outside [0, %d]", i, r.Fill, s.RegionSize)
		}
		if r.Live < 0 {
			return fmt.Errorf("cache: region %d: negative live count", i)
		}
	}
	seen := make([]bool, n)
	for _, id := range s.Order {
		if id < 0 || id >= n {
			return fmt.Errorf("cache: eviction order references region %d of %d", id, n)
		}
		if seen[id] {
			return fmt.Errorf("cache: region %d appears twice in the eviction order", id)
		}
		if st := s.Regions[id].State; st != regionSealed && st != regionFlushing {
			return fmt.Errorf("cache: eviction order holds region %d in state %d", id, st)
		}
		seen[id] = true
	}
	for _, id := range s.Free {
		if id < 0 || id >= n {
			return fmt.Errorf("cache: free list references region %d of %d", id, n)
		}
		if seen[id] {
			return fmt.Errorf("cache: region %d in the free list twice or also ordered", id)
		}
		if st := s.Regions[id].State; st != regionFree {
			return fmt.Errorf("cache: free list holds region %d in state %d", id, st)
		}
		seen[id] = true
	}
	for i := range s.Entries {
		e := &s.Entries[i]
		if e.Key == "" {
			return fmt.Errorf("cache: entry %d: empty key", i)
		}
		if int(e.KeyLen) != len(e.Key) {
			return fmt.Errorf("cache: entry %q: recorded key length %d != %d", e.Key, e.KeyLen, len(e.Key))
		}
		if e.Region < 0 || int(e.Region) >= n {
			return fmt.Errorf("cache: entry %q: region %d of %d", e.Key, e.Region, n)
		}
		end := int64(e.Offset) + itemHeaderSize + int64(e.KeyLen) + int64(e.ValLen)
		if end > s.RegionSize {
			return fmt.Errorf("cache: entry %q: [%d, %d) beyond region size %d", e.Key, e.Offset, end, s.RegionSize)
		}
		if r := &s.Regions[e.Region]; int(e.Region) != s.Open && end > r.Fill {
			return fmt.Errorf("cache: entry %q: end %d beyond region %d fill %d", e.Key, end, e.Region, r.Fill)
		}
	}
	return nil
}

// regionSizer is the optional RegionStore extension Restore's repair pass
// uses to cross-check snapshot metadata against what the store can really
// serve: RegionReadableBytes reports how many leading bytes of region id
// are readable (a zone's write pointer, a mapped region's size), with
// ok=false when the store cannot tell.
type regionSizer interface {
	RegionReadableBytes(id int) (int64, bool)
}

// Restore builds an engine over store from a Snapshot taken against the
// same store contents. The snapshot is validated structurally (a corrupt
// or truncated snapshot errors out, never panics), then repaired against
// the store: any sealed region whose recorded Fill exceeds what the store
// can actually serve — the zone was torn, reset, or only partially flushed
// after the snapshot cut — is truncated, and index entries past the
// readable extent are dropped (counted in Stats.RestoreDrops). Recovery
// may lose keys; it must never resurrect unverifiable ones.
func Restore(cfg Config, snapshot []byte) (*Cache, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	var s snapshotData
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&s); err != nil {
		return nil, fmt.Errorf("cache: snapshot decode: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("cache: snapshot version %d unsupported", s.Version)
	}
	if s.RegionSize != c.store.RegionSize() || s.NumRegions != c.store.NumRegions() {
		return nil, fmt.Errorf("cache: snapshot taken against %d regions of %d bytes; store has %d of %d",
			s.NumRegions, s.RegionSize, c.store.NumRegions(), c.store.RegionSize())
	}
	if err := s.validate(); err != nil {
		return nil, err
	}

	// Wipe the fresh-engine scaffolding New installed.
	c.index = make(map[string]entry, len(s.Entries))
	c.order.Init()
	c.free = nil
	c.seq = s.Seq

	sizer, hasSizer := c.store.(regionSizer)
	var repairedFree []int
	for i := range c.regions {
		m := &c.regions[i]
		src := s.Regions[i]
		m.state = src.State
		m.keys.setStrings(src.Keys)
		m.fill = src.Fill
		m.live = src.Live
		m.elem = nil
		// Flushing states cannot survive a restart; the device write either
		// completed (treat as sealed — the simulation's stores complete
		// writes they acknowledged) or its entries are dropped by the
		// cross-check below.
		if m.state == regionFlushing {
			m.state = regionSealed
		}
		if m.state == regionSealed && i != s.Open && hasSizer {
			if avail, ok := sizer.RegionReadableBytes(i); ok && avail < m.fill {
				m.fill = avail
				if m.fill == 0 {
					// Nothing survives: return the region to the free pool.
					m.state = regionFree
					m.keys.reset()
					m.live = 0
					repairedFree = append(repairedFree, i)
				}
			}
		}
	}
	for _, e := range s.Entries {
		// Keys living in the open region are dropped: its buffer was DRAM.
		if int(e.Region) == s.Open {
			continue
		}
		m := &c.regions[e.Region]
		end := int64(e.Offset) + itemHeaderSize + int64(e.KeyLen) + int64(e.ValLen)
		if m.state != regionSealed || end > m.fill {
			// The bytes this entry points at are not durably readable.
			c.restoreDrop.Inc()
			if m.live > 0 {
				m.live--
			}
			continue
		}
		c.index[e.Key] = entry{
			region: e.Region, offset: e.Offset,
			keyLen: e.KeyLen, valLen: e.ValLen, hits: e.Hits,
			expireAt: e.ExpireAt,
		}
	}
	for _, id := range s.Order {
		if id == s.Open || c.regions[id].state != regionSealed {
			continue
		}
		c.regions[id].elem = c.order.PushBack(id)
	}
	c.free = append(c.free, s.Free...)
	c.free = append(c.free, repairedFree...)
	// Reopen the snapshot's open region as a fresh buffer.
	c.open = s.Open
	c.openRegion(s.Open)
	if c.reads != nil {
		// Restored values live on flash, not DRAM: publish non-servable
		// entries so the lock-free path answers Contains and misses, and a
		// verified sealed read promotes each key to servable on first touch.
		for k, e := range c.index {
			c.reads.publish(k, nil, e.expireAt)
		}
	}
	return c, nil
}

// CorruptSnapshotForTest mutates recovery metadata in a structurally valid
// way: it shrinks the recorded value length of one sealed-region entry, so
// the restored index disagrees with the bytes on flash. The result decodes
// and validates cleanly; only the on-flash checksum stands between it and
// wrong data being served — which is exactly what the crash harness's
// mutation check verifies. Returns ok=false when the snapshot holds no
// suitable entry.
func CorruptSnapshotForTest(snapshot []byte) ([]byte, bool) {
	var s snapshotData
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&s); err != nil {
		return nil, false
	}
	for i := range s.Entries {
		e := &s.Entries[i]
		if e.Region < 0 || int(e.Region) >= len(s.Regions) || int(e.Region) == s.Open {
			continue
		}
		if st := s.Regions[e.Region].State; st != regionSealed && st != regionFlushing {
			continue
		}
		if e.ValLen < 2 {
			continue
		}
		e.ValLen /= 2
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
			return nil, false
		}
		return buf.Bytes(), true
	}
	return nil, false
}
