package cache

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Persistence ("warm roll"). A persistent cache must survive process
// restarts without losing the flash contents — CacheLib serializes its
// index and region metadata at shutdown and recovers them at startup,
// which is what makes the flash cache *persistent* rather than merely
// large. Snapshot captures everything the engine needs to re-attach to a
// store whose regions still hold the data; Restore rebuilds an engine from
// it.
//
// The open region's buffer is DRAM-only and is intentionally dropped, as
// CacheLib drops its in-flight allocation regions on shutdown: its keys
// are removed from the recovered index and the region restarts empty.

// snapshotVersion guards against format drift.
const snapshotVersion = 1

// snapEntry mirrors entry with exported fields for gob.
type snapEntry struct {
	Key      string
	Region   int32
	Offset   uint32
	KeyLen   uint16
	ValLen   uint32
	Hits     uint8
	ExpireAt uint32
}

// snapRegion mirrors the durable part of regionMeta.
type snapRegion struct {
	State regionState
	Keys  []string
	Fill  int64
	Live  int
}

type snapshotData struct {
	Version    int
	RegionSize int64
	NumRegions int
	Entries    []snapEntry
	Regions    []snapRegion
	Order      []int // region ids, MRU first
	Free       []int
	Open       int
	Seq        uint64
}

// Snapshot serializes the engine's recovery metadata. Call at a quiescent
// point (no in-flight flushes are carried over: Snapshot drains first).
func (c *Cache) Snapshot() ([]byte, error) {
	c.Drain()
	s := snapshotData{
		Version:    snapshotVersion,
		RegionSize: c.store.RegionSize(),
		NumRegions: c.store.NumRegions(),
		Open:       c.open,
		Seq:        c.seq,
		Free:       append([]int(nil), c.free...),
	}
	for k, e := range c.index {
		s.Entries = append(s.Entries, snapEntry{
			Key: k, Region: e.region, Offset: e.offset,
			KeyLen: e.keyLen, ValLen: e.valLen, Hits: e.hits,
			ExpireAt: e.expireAt,
		})
	}
	s.Regions = make([]snapRegion, len(c.regions))
	for i := range c.regions {
		m := &c.regions[i]
		s.Regions[i] = snapRegion{
			State: m.state,
			Keys:  m.keys.strings(),
			Fill:  m.fill,
			Live:  m.live,
		}
	}
	for e := c.order.Front(); e != nil; e = e.Next() {
		s.Order = append(s.Order, e.Value.(int))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
		return nil, fmt.Errorf("cache: snapshot encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore builds an engine over store from a Snapshot taken against the
// same store contents. The store must still hold the sealed regions'
// bytes; the engine trusts the snapshot's metadata about them.
func Restore(cfg Config, snapshot []byte) (*Cache, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	var s snapshotData
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&s); err != nil {
		return nil, fmt.Errorf("cache: snapshot decode: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("cache: snapshot version %d unsupported", s.Version)
	}
	if s.RegionSize != c.store.RegionSize() || s.NumRegions != c.store.NumRegions() {
		return nil, fmt.Errorf("cache: snapshot taken against %d regions of %d bytes; store has %d of %d",
			s.NumRegions, s.RegionSize, c.store.NumRegions(), c.store.RegionSize())
	}

	// Wipe the fresh-engine scaffolding New installed.
	c.index = make(map[string]entry, len(s.Entries))
	c.order.Init()
	c.free = nil
	c.seq = s.Seq

	for i := range c.regions {
		m := &c.regions[i]
		src := s.Regions[i]
		m.state = src.State
		m.keys.setStrings(src.Keys)
		m.fill = src.Fill
		m.live = src.Live
		m.elem = nil
		// Flushing states cannot survive a restart; the device write either
		// completed (treat as sealed — the simulation's stores complete
		// writes they acknowledged) or the region is dropped below.
		if m.state == regionFlushing {
			m.state = regionSealed
		}
	}
	for _, e := range s.Entries {
		// Keys living in the open region are dropped: its buffer was DRAM.
		if int(e.Region) == s.Open {
			continue
		}
		c.index[e.Key] = entry{
			region: e.Region, offset: e.Offset,
			keyLen: e.KeyLen, valLen: e.ValLen, hits: e.Hits,
			expireAt: e.ExpireAt,
		}
	}
	for _, id := range s.Order {
		if id == s.Open {
			continue
		}
		c.regions[id].elem = c.order.PushBack(id)
	}
	c.free = append(c.free, s.Free...)
	// Reopen the snapshot's open region as a fresh buffer.
	c.open = s.Open
	c.openRegion(s.Open)
	return c, nil
}
