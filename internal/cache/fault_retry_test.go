package cache

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"znscache/internal/obs"
)

// flakyStore fails the first failWrites region flushes / failReads region
// reads with a transient error, then behaves normally — the deterministic
// counterpart of the probabilistic fault injector, for pinning down the
// engine's exact retry and quarantine thresholds.
type flakyStore struct {
	*memStore
	failWrites int
	failReads  int
}

var errFlaky = errors.New("flaky store: transient failure")

func (s *flakyStore) WriteRegion(now time.Duration, id int, data []byte) (time.Duration, error) {
	if data != nil && s.failWrites > 0 {
		s.failWrites--
		return 0, errFlaky
	}
	return s.memStore.WriteRegion(now, id, data)
}

func (s *flakyStore) ReadRegion(now time.Duration, id int, p []byte, n int, off int64) (time.Duration, error) {
	if s.failReads > 0 {
		s.failReads--
		return 0, errFlaky
	}
	return s.memStore.ReadRegion(now, id, p, n, off)
}

func newFlakyCache(t *testing.T) (*Cache, *flakyStore) {
	t.Helper()
	fs := &flakyStore{memStore: newMemStore(8, 4096)}
	c, err := New(Config{
		Store: fs, TrackValues: true,
		MaxRetries: 2, RetryBackoff: time.Microsecond, QuarantineAfter: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, fs
}

// gatherCounter sums a registry counter's samples by name, skipping
// per-kind breakdown series so totals are not double counted.
func gatherCounter(t *testing.T, r *obs.Registry, name string) float64 {
	t.Helper()
	total, found := 0.0, false
	for _, s := range r.Gather() {
		if s.Name == name && s.Labels.Get("kind") == "" {
			total += s.Value
			found = true
		}
	}
	if !found {
		t.Fatalf("registry exposes no %q series", name)
	}
	return total
}

// TestFlushRetryAndQuarantine pins the write-path degradation thresholds:
// with MaxRetries=2 (three attempts per flush) and QuarantineAfter=1, a
// flush that fails fewer times than it has attempts succeeds transparently,
// while one that exhausts its attempts loses the region's keys and
// quarantines the region — and both outcomes are visible in Stats and the
// obs registry.
func TestFlushRetryAndQuarantine(t *testing.T) {
	cases := []struct {
		name        string
		failures    int
		wantRetries uint64
		wantQuar    uint64
		wantLost    bool
	}{
		{"clean", 0, 0, 0, false},
		{"recovers-within-retries", 2, 2, 0, false},
		{"exhausts-and-quarantines", 3, 2, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, fs := newFlakyCache(t)
			fs.failWrites = tc.failures
			vals := map[string][]byte{}
			for i := 0; i < 12; i++ {
				k := fmt.Sprintf("w-%02d", i)
				v := bytes.Repeat([]byte{byte(i + 1)}, 900)
				vals[k] = v
				if err := c.Set(k, v, 0); err != nil {
					t.Fatalf("Set(%s): %v", k, err)
				}
			}
			c.Drain()
			st := c.Stats()
			if st.StoreRetries != tc.wantRetries {
				t.Errorf("StoreRetries = %d, want %d", st.StoreRetries, tc.wantRetries)
			}
			if st.Quarantined != tc.wantQuar {
				t.Errorf("Quarantined = %d, want %d", st.Quarantined, tc.wantQuar)
			}
			if tc.wantLost && st.LostKeys == 0 {
				t.Error("exhausted flush lost no keys")
			}
			if !tc.wantLost {
				if st.LostKeys != 0 {
					t.Errorf("LostKeys = %d on a recoverable run", st.LostKeys)
				}
				// Every flushed key must read back intact after the retries.
				for k, want := range vals {
					got, ok, err := c.Get(k)
					if err != nil || !ok {
						t.Fatalf("Get(%s) = (%v, %v) after recovered flush", k, ok, err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("key %s corrupted across retried flush", k)
					}
				}
			}

			reg := obs.NewRegistry()
			c.MetricsInto(reg, obs.Labels{})
			if got := gatherCounter(t, reg, "cache_store_retries_total"); got != float64(tc.wantRetries) {
				t.Errorf("cache_store_retries_total = %v, want %d", got, tc.wantRetries)
			}
			if got := gatherCounter(t, reg, "region_quarantined_total"); got != float64(tc.wantQuar) {
				t.Errorf("region_quarantined_total = %v, want %d", got, tc.wantQuar)
			}
		})
	}
}

// TestReadRetryAndQuarantine pins the read path: a sealed-region read that
// recovers within its retry budget serves the verified value; one that
// exhausts it degrades to a miss, drops the key, and (QuarantineAfter=1)
// quarantines the region rather than erroring the lookup.
func TestReadRetryAndQuarantine(t *testing.T) {
	cases := []struct {
		name        string
		failures    int
		wantHit     bool
		wantRetries uint64
		wantQuar    uint64
	}{
		{"clean", 0, true, 0, 0},
		{"recovers-within-retries", 2, true, 2, 0},
		{"exhausts-drops-and-quarantines", 3, false, 2, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, fs := newFlakyCache(t)
			want := bytes.Repeat([]byte{0x42}, 900)
			if err := c.Set("victim", want, 0); err != nil {
				t.Fatal(err)
			}
			// Seal the victim's region so Get goes through the store.
			for i := 0; c.Stats().Flushes < 1; i++ {
				c.Set(fmt.Sprintf("fill-%03d", i), bytes.Repeat([]byte{9}, 900), 0)
			}
			c.Drain()

			fs.failReads = tc.failures
			got, ok, err := c.Get("victim")
			if err != nil {
				t.Fatalf("Get errored instead of degrading: %v", err)
			}
			if ok != tc.wantHit {
				t.Fatalf("hit = %v, want %v", ok, tc.wantHit)
			}
			if tc.wantHit && !bytes.Equal(got, want) {
				t.Fatal("retried read returned wrong bytes")
			}
			st := c.Stats()
			if st.StoreRetries != tc.wantRetries {
				t.Errorf("StoreRetries = %d, want %d", st.StoreRetries, tc.wantRetries)
			}
			if st.Quarantined != tc.wantQuar {
				t.Errorf("Quarantined = %d, want %d", st.Quarantined, tc.wantQuar)
			}
			if !tc.wantHit {
				if c.Contains("victim") {
					t.Error("unreadable key still indexed")
				}
				if st.LostKeys == 0 {
					t.Error("dropped key not counted as lost")
				}
			}
		})
	}
}
