package cache

import (
	"fmt"
	"reflect"
	"strconv"
	"sync"
	"time"

	"znscache/internal/obs"
	"znscache/internal/stats"
)

// Sharded is a concurrency-safe frontend over N independent Cache engines.
// The keyspace is partitioned by key hash (FNV-1a), so every key always
// lands on the same shard; each shard owns a full engine — its own region
// store partition, virtual clock, and mutex — and goroutines touching
// different shards never contend. This is CacheLib's own recipe (a sharded
// index in front of Navy) applied to the whole engine, and the concurrency
// model the follow-up ZNS work exploits: independent writers over disjoint
// zone sets scale with the device's zone parallelism.
//
// Determinism is preserved per shard: a key's shard depends only on the key
// and the shard count, and each shard serializes its own operations under
// its mutex against its own clock. Replaying the same per-shard operation
// sequences therefore yields byte-identical per-shard (and merged) stats
// regardless of goroutine interleaving across shards.
type Sharded struct {
	shards []shard
}

// shard pairs one engine with the lock that serializes access to it. The
// engine itself stays single-threaded (its simulation contract); the lock
// is the concurrency boundary. Mutating operations (and classic Gets, which
// mutate recency/TTL state) take the write lock; read-only snapshots
// (Len/Stats) take read locks. When the engine's lock-free read index is
// enabled (Config.ReadIndex), Get and Contains are answered without any
// lock at all on the fast path — see readindex.go.
type shard struct {
	mu sync.RWMutex
	c  *Cache
}

// lock takes shard sh's write lock and applies the deferred side effects
// the lock-free read path accumulated since the previous locked operation
// (recency touches, observed TTL expiries). Pairing the drain with lock
// acquisition keeps note processing points deterministic under a per-shard
// replay: the engine state after N locked ops depends only on the op
// sequence and the notes queued between them.
func (sh *shard) lock() {
	sh.mu.Lock()
	sh.c.drainReadNotes()
}

// NewSharded builds a sharded frontend over the given engines. Every engine
// must be independent: its own RegionStore, its own Clock, and (for stateful
// policies) its own Admission instance. Sharing a clock between shards would
// serialize them through the clock mutex and make merged timings depend on
// goroutine interleaving; sharing a stateful admission instance is a data
// race (ProbAdmit's PRNG and RejectFirstAdmit's bloom bits mutate unlocked
// on every Admit) and breaks per-shard replay determinism — both are
// rejected. Build engines with Config.AdmissionFactory (or CloneAdmission)
// to get independent per-shard instances; stateless policies marked
// SharedSafeAdmission (AdmitAll) may be shared.
func NewSharded(engines []*Cache) (*Sharded, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("%w: sharded frontend needs at least 1 engine", ErrBadConfig)
	}
	seen := make(map[interface{}]int, len(engines))
	for i, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("%w: nil engine for shard %d", ErrBadConfig, i)
		}
		if j, dup := seen[e.Clock()]; dup {
			return nil, fmt.Errorf("%w: shards %d and %d share a clock", ErrBadConfig, j, i)
		}
		seen[e.Clock()] = i
		if j, dup := seen[e.store]; dup {
			return nil, fmt.Errorf("%w: shards %d and %d share a store", ErrBadConfig, j, i)
		}
		seen[e.store] = i
		// Admission instances are checked by identity. Stateless policies
		// opt out via the SharedSafeAdmission marker; non-comparable policy
		// types (none in this package) are skipped — they cannot be map
		// keys, and a duplicate would already have been caught by the
		// pointer identity of their first comparable occurrence.
		if a := e.Admission(); a != nil {
			if _, shared := a.(SharedSafeAdmission); !shared && reflect.TypeOf(a).Comparable() {
				if j, dup := seen[a]; dup {
					return nil, fmt.Errorf("%w: shards %d and %d share a stateful admission policy instance (use Config.AdmissionFactory or CloneAdmission for per-shard instances)",
						ErrBadConfig, j, i)
				}
				seen[a] = i
			}
		}
	}
	s := &Sharded{shards: make([]shard, len(engines))}
	for i, e := range engines {
		s.shards[i].c = e
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardFor returns the shard index key maps to: FNV-1a over the key bytes,
// reduced modulo the shard count. Inlined (no hash.Hash allocation) because
// it runs on every operation.
func (s *Sharded) ShardFor(key string) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(len(s.shards)))
}

// Shard exposes shard i's engine for setup and inspection. The returned
// engine is not synchronized; do not call it while other goroutines use the
// frontend.
func (s *Sharded) Shard(i int) *Cache { return s.shards[i].c }

// ShardSeed derives shard i's workload seed from a run seed (splitmix64
// step), so seeded replays split deterministically across shards.
func ShardSeed(seed uint64, i int) uint64 {
	z := seed + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Set inserts or replaces key on its shard.
func (s *Sharded) Set(key string, value []byte, valLen int) error {
	sh := &s.shards[s.ShardFor(key)]
	sh.lock()
	defer sh.mu.Unlock()
	return sh.c.Set(key, value, valLen)
}

// SetTTL is Set with a time-to-live on the owning shard's virtual clock.
func (s *Sharded) SetTTL(key string, value []byte, valLen int, ttl time.Duration) error {
	sh := &s.shards[s.ShardFor(key)]
	sh.lock()
	defer sh.mu.Unlock()
	return sh.c.SetTTL(key, value, valLen, ttl)
}

// Get looks up key on its shard. With the engine's read index enabled
// (Config.ReadIndex) most lookups are answered lock-free; such hits return
// the index's immutable value copy, which callers must treat as read-only.
// Lookups the fast path cannot answer (value bytes not in DRAM yet) fall
// back to the classic path under the shard write lock.
func (s *Sharded) Get(key string) ([]byte, bool, error) {
	sh := &s.shards[s.ShardFor(key)]
	// Span sampling: 1-in-N gets time the path taken (lock-free fast path
	// vs locked fallback) on the wall clock. The sampling decision is one
	// atomic add; unsampled gets touch no clock.
	rec := sh.c.spans
	sampled := rec != nil && rec.SampleNow()
	var w0 time.Time
	if sampled {
		w0 = time.Now()
	}
	if val, found, done := sh.c.TryFastGet(key); done {
		if sampled {
			rec.Observe(obs.StageFastGet, time.Since(w0))
		}
		return val, found, nil
	}
	sh.lock()
	defer sh.mu.Unlock()
	val, found, err := sh.c.Get(key)
	if sampled {
		rec.Observe(obs.StageLockedGet, time.Since(w0))
	}
	return val, found, err
}

// Contains reports whether key is present (TTL-expired items count as
// absent, as in Cache.Contains). Lock-free when the read index is enabled.
func (s *Sharded) Contains(key string) bool {
	sh := &s.shards[s.ShardFor(key)]
	if found, done := sh.c.TryFastContains(key); done {
		return found
	}
	sh.lock()
	defer sh.mu.Unlock()
	return sh.c.Contains(key)
}

// Delete removes key from its shard.
func (s *Sharded) Delete(key string) bool {
	sh := &s.shards[s.ShardFor(key)]
	sh.lock()
	defer sh.mu.Unlock()
	return sh.c.Delete(key)
}

// WithShard runs fn against shard i's engine under the shard write lock,
// with deferred read notes drained first. This is the batch-dispatch hook:
// a caller holding several mutations for one shard executes them all in one
// critical section instead of taking the lock per operation. fn must not
// retain the engine past its return.
func (s *Sharded) WithShard(i int, fn func(*Cache)) {
	sh := &s.shards[i]
	sh.lock()
	defer sh.mu.Unlock()
	fn(sh.c)
}

// rlockAll takes every shard's read lock in shard order and returns the
// release function. While held, no mutator can run on any shard, so the
// caller observes one consistent cut of the whole cache: every operation is
// either fully before or fully after the snapshot. Two qualifications,
// which are the consistency model for Len/Stats:
//
//   - Lock-free reads (the Config.ReadIndex fast path) do not acquire the
//     shard lock, so fast-path counter updates (gets, hits/misses) can land
//     while the cut is held. Counters are monotonic atomics — the snapshot
//     is a valid linearization point, merely not a frozen instant for the
//     fast-read counters.
//   - Acquisition is ordered (shard 0..N-1) and read locks are shared, so
//     concurrent Len/Stats calls never deadlock and proceed in parallel.
func (s *Sharded) rlockAll() (release func()) {
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
	return func() {
		for i := range s.shards {
			s.shards[i].mu.RUnlock()
		}
	}
}

// Len returns the total number of indexed items across shards, counted on
// one consistent cut (see rlockAll): all shard read locks are held
// simultaneously, rather than polling shards one after another while
// earlier-counted shards keep mutating.
func (s *Sharded) Len() int {
	release := s.rlockAll()
	defer release()
	n := 0
	for i := range s.shards {
		n += s.shards[i].c.Len()
	}
	return n
}

// Snapshot captures every shard's recovery metadata for a graceful
// shutdown; the slice index is the shard index. Each shard, under its own
// lock, first seals its open region (SealOpen — a graceful shutdown, unlike
// a crash, gets to persist the DRAM buffer) and then serializes its
// metadata, so each shard's snapshot is a consistent cut of that shard,
// taken in shard order. A whole-cache warm roll wants quiescence first:
// stop the traffic, then Snapshot.
func (s *Sharded) Snapshot() ([][]byte, error) {
	out := make([][]byte, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.lock()
		err := sh.c.SealOpen()
		var snap []byte
		if err == nil {
			snap, err = sh.c.Snapshot()
		}
		sh.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("cache: shard %d snapshot: %w", i, err)
		}
		out[i] = snap
	}
	return out, nil
}

// Drain completes all in-flight flushes on every shard.
func (s *Sharded) Drain() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.lock()
		sh.c.Drain()
		sh.mu.Unlock()
	}
}

// MetricsInto implements obs.MetricSource: every shard's engine registers
// its instruments with a shard label appended, so per-shard skew (hash
// imbalance, clock divergence) is visible series-by-series. Engine
// instruments are atomics/mutexed histograms, so scrapes need no shard lock.
func (s *Sharded) MetricsInto(r *obs.Registry, labels obs.Labels) {
	for i := range s.shards {
		s.shards[i].c.MetricsInto(r, labels.With("shard", strconv.Itoa(i)))
	}
}

// ShardStats snapshots shard i's engine counters under the shard read lock,
// so it is safe to call while other goroutines use the frontend.
func (s *Sharded) ShardStats(i int) Stats {
	sh := &s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.c.Stats()
}

// FastReadStats sums the lock-free read path's counters across shards:
// gets answered without a shard lock (hits, misses) and deferred notes
// dropped on queue overflow. All zero when Config.ReadIndex is off.
func (s *Sharded) FastReadStats() (fastHits, fastMisses, noteDrops uint64) {
	for i := range s.shards {
		h, m, d := s.shards[i].c.FastReadStats()
		fastHits += h
		fastMisses += m
		noteDrops += d
	}
	return
}

// Stats merges all shards' counters into one snapshot taken on a single
// consistent cut — every shard's read lock is held simultaneously (see
// rlockAll for the exact consistency model), so no mutator lands between
// the first and last shard's snapshot. Counters sum; the latency
// distributions are merged at histogram resolution (exact — shards share
// bucket boundaries); HitRatio is recomputed from the summed hits and
// misses; SimulatedTime is the furthest shard clock, the makespan of a
// parallel replay.
func (s *Sharded) Stats() Stats {
	getH := stats.NewHistogram()
	setH := stats.NewHistogram()
	var out Stats
	release := s.rlockAll()
	defer release()
	for i := range s.shards {
		sh := &s.shards[i]
		st := sh.c.Stats()
		getH.Merge(sh.c.GetLatencyHistogram())
		setH.Merge(sh.c.SetLatencyHistogram())
		out.Gets += st.Gets
		out.Sets += st.Sets
		out.Deletes += st.Deletes
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Evictions += st.Evictions
		out.Flushes += st.Flushes
		out.Reinsertions += st.Reinsertions
		out.Expirations += st.Expirations
		out.CoDesignDrops += st.CoDesignDrops
		out.AdmitRejects += st.AdmitRejects
		out.HostWriteBytes += st.HostWriteBytes
		out.StoreRetries += st.StoreRetries
		out.Quarantined += st.Quarantined
		out.LostKeys += st.LostKeys
		out.RestoreDrops += st.RestoreDrops
		if st.SimulatedTime > out.SimulatedTime {
			out.SimulatedTime = st.SimulatedTime
		}
	}
	if out.Hits+out.Misses > 0 {
		out.HitRatio = float64(out.Hits) / float64(out.Hits+out.Misses)
	}
	out.GetLatency = getH.Snapshot()
	out.SetLatency = setH.Snapshot()
	return out
}
