package cache

import (
	"fmt"
	"testing"
)

// sealedGetCache builds an engine whose early regions are all sealed, and
// returns keys that live in sealed regions, so Get exercises the device-read
// path (the sector-aligned scratch buffer) on every call.
func sealedGetCache(b *testing.B, trackValues bool) (*Cache, []string) {
	b.Helper()
	st := newMemStore(32, 256<<10)
	c, err := New(Config{Store: st, TrackValues: trackValues})
	if err != nil {
		b.Fatal(err)
	}
	var keys []string
	val := make([]byte, 4000)
	// Fill ~24 of 32 regions so nothing is evicted and everything but the
	// open region seals.
	for i := 0; i < 24*60; i++ {
		k := fmt.Sprintf("key-%06d", i)
		var err error
		if trackValues {
			err = c.Set(k, val, 0)
		} else {
			err = c.Set(k, nil, len(val))
		}
		if err != nil {
			b.Fatal(err)
		}
		keys = append(keys, k)
	}
	c.Drain()
	// Keep only keys outside the open region.
	sealed := keys[:0]
	for _, k := range keys {
		if e, ok := c.index[k]; ok && int(e.region) != c.open {
			sealed = append(sealed, k)
		}
	}
	if len(sealed) == 0 {
		b.Fatal("no sealed keys")
	}
	return c, sealed
}

// BenchmarkSealedGetAlloc measures per-Get allocations on the sealed-read
// path with TrackValues on. Before the sync.Pool scratch buffer this path
// allocated the full sector-aligned read span (up to a region) per Get; now
// only the returned value copy allocates. EXPERIMENTS.md records numbers.
func BenchmarkSealedGetAlloc(b *testing.B) {
	c, keys := sealedGetCache(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := c.Get(keys[i%len(keys)]); err != nil || !ok {
			b.Fatalf("Get: ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkSealedGetMetadataOnly is the same path with TrackValues off
// (the harness's mode): no scratch buffer, no value copy.
func BenchmarkSealedGetMetadataOnly(b *testing.B) {
	c, keys := sealedGetCache(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := c.Get(keys[i%len(keys)]); err != nil || !ok {
			b.Fatalf("Get: ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkSetInsertAlloc measures per-Set allocations on the fill path:
// the packed key log amortizes to zero steady-state allocations where the
// old []string regrew per region generation.
func BenchmarkSetInsertAlloc(b *testing.B) {
	st := newMemStore(32, 256<<10)
	c, err := New(Config{Store: st})
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%06d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Set(keys[i%len(keys)], nil, 4096); err != nil {
			b.Fatal(err)
		}
	}
}
