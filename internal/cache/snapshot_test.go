package cache

import (
	"bytes"
	"fmt"
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	st := newMemStore(8, 4096)
	c, err := New(Config{Store: st, TrackValues: true})
	if err != nil {
		t.Fatal(err)
	}
	// Fill several regions so some are sealed and at least one eviction ran.
	vals := map[string][]byte{}
	for i := 0; i < 24; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v := bytes.Repeat([]byte{byte(i + 1)}, 900)
		vals[k] = v
		if err := c.Set(k, v, 0); err != nil {
			t.Fatal(err)
		}
	}
	before := map[string]bool{}
	for k := range vals {
		before[k] = c.Contains(k)
	}

	snap, err := c.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	// "Restart": a brand-new engine over the same store contents.
	r, err := Restore(Config{Store: st, TrackValues: true}, snap)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}

	recoveredHits := 0
	for k, wasThere := range before {
		got, ok, err := r.Get(k)
		if err != nil {
			t.Fatalf("Get(%s) after restore: %v", k, err)
		}
		if !wasThere && ok {
			t.Fatalf("key %s appeared after restore", k)
		}
		if !ok {
			continue // open-region keys are legitimately dropped
		}
		recoveredHits++
		if !bytes.Equal(got, vals[k]) {
			t.Fatalf("key %s corrupted across restore", k)
		}
	}
	if recoveredHits == 0 {
		t.Fatal("no sealed keys recovered; test vacuous")
	}
	// The restored engine keeps working: inserts and evictions proceed.
	for i := 0; i < 30; i++ {
		if err := r.Set(fmt.Sprintf("new-%04d", i), bytes.Repeat([]byte{7}, 900), 0); err != nil {
			t.Fatalf("post-restore Set: %v", err)
		}
	}
	if !r.Contains("new-0029") {
		t.Fatal("post-restore inserts not readable")
	}
}

func TestSnapshotDropsOpenRegionKeys(t *testing.T) {
	st := newMemStore(8, 64<<10)
	c, _ := New(Config{Store: st, TrackValues: true})
	c.Set("buffered", []byte("in-dram-only"), 0)
	snap, _ := c.Snapshot()
	r, err := Restore(Config{Store: st, TrackValues: true}, snap)
	if err != nil {
		t.Fatal(err)
	}
	if r.Contains("buffered") {
		t.Fatal("open-region (DRAM-only) key survived a restart")
	}
}

func TestRestoreRejectsMismatchedStore(t *testing.T) {
	st := newMemStore(8, 4096)
	c, _ := New(Config{Store: st})
	snap, _ := c.Snapshot()
	other := newMemStore(16, 4096)
	if _, err := Restore(Config{Store: other}, snap); err == nil {
		t.Fatal("restore against different store geometry succeeded")
	}
	if _, err := Restore(Config{Store: st}, []byte("garbage")); err == nil {
		t.Fatal("restore from garbage succeeded")
	}
}

func TestReinsertionKeepsHotItems(t *testing.T) {
	st := newMemStore(4, 4096)
	// FIFO: the region holding "hot" is evicted on schedule regardless of
	// accesses, so survival must come from reinsertion alone.
	c, err := New(Config{Store: st, TrackValues: true, ReinsertHits: 2, Policy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	hot := bytes.Repeat([]byte{0xAD}, 1000)
	c.Set("hot", hot, 0)
	// Make it hot: ≥2 accesses.
	c.Get("hot")
	c.Get("hot")
	c.Get("hot")
	// Fill until the region holding "hot" is evicted at least once.
	for i := 0; c.Stats().Evictions < 2; i++ {
		c.Set(fmt.Sprintf("cold-%05d", i), bytes.Repeat([]byte{1}, 1000), 0)
		// Keep touching hot so it stays above the threshold in new regions.
		if i%4 == 0 {
			c.Get("hot")
		}
	}
	if c.Stats().Reinsertions == 0 {
		t.Fatal("no reinsertions happened")
	}
	got, ok, err := c.Get("hot")
	if err != nil || !ok {
		t.Fatalf("hot key lost despite reinsertion: (%v, %v)", ok, err)
	}
	if !bytes.Equal(got, hot) {
		t.Fatal("hot key corrupted across reinsertion")
	}
}

func TestNoReinsertionWhenDisabled(t *testing.T) {
	st := newMemStore(4, 4096)
	c, _ := New(Config{Store: st, TrackValues: true})
	c.Set("hot", bytes.Repeat([]byte{2}, 1000), 0)
	for i := 0; i < 5; i++ {
		c.Get("hot")
	}
	for i := 0; c.Stats().Evictions < 4; i++ {
		c.Set(fmt.Sprintf("cold-%05d", i), nil, 1000)
	}
	if c.Stats().Reinsertions != 0 {
		t.Fatal("reinsertion ran while disabled")
	}
	if c.Contains("hot") {
		t.Fatal("hot key survived 4 evictions with reinsertion disabled")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	st := newMemStore(8, 4096)
	c, _ := New(Config{Store: st, TrackValues: true})
	want := bytes.Repeat([]byte{0x42}, 1000)
	c.Set("victim", want, 0)
	// Seal the victim's region by rolling past it.
	for i := 0; c.Stats().Flushes < 2; i++ {
		c.Set(fmt.Sprintf("fill-%04d", i), bytes.Repeat([]byte{9}, 1000), 0)
	}
	c.Drain()
	// Sanity: intact read passes the checksum.
	if _, ok, err := c.Get("victim"); !ok || err != nil {
		t.Fatalf("pre-corruption Get = (%v, %v)", ok, err)
	}
	// Corrupt the stored bytes of region 0 (where "victim" lives). The
	// engine must never serve the corrupt value: the checksum mismatch
	// degrades to a miss and the key is dropped as lost.
	e := c.index["victim"]
	data := st.data[int(e.region)]
	data[e.offset+itemHeaderSize+uint32(e.keyLen)+5] ^= 0xFF
	val, ok, err := c.Get("victim")
	if err != nil {
		t.Fatalf("corrupted Get errored: %v", err)
	}
	if ok || val != nil {
		t.Fatal("corrupted value passed the checksum")
	}
	if c.Contains("victim") {
		t.Fatal("unverifiable key still indexed")
	}
	if got := c.Stats().LostKeys; got == 0 {
		t.Fatal("checksum drop not counted as a lost key")
	}
}
