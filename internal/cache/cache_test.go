package cache

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// memStore is an in-memory RegionStore with configurable latencies, used to
// test the engine in isolation from the device models.
type memStore struct {
	n          int
	regionSize int64
	writeLat   time.Duration
	readLat    time.Duration
	evictLat   time.Duration
	data       map[int][]byte
	writes     int
	evictions  int
}

func newMemStore(n int, regionSize int64) *memStore {
	return &memStore{
		n: n, regionSize: regionSize,
		writeLat: time.Millisecond, readLat: 100 * time.Microsecond,
		data: make(map[int][]byte),
	}
}

func (s *memStore) NumRegions() int   { return s.n }
func (s *memStore) RegionSize() int64 { return s.regionSize }

func (s *memStore) WriteRegion(now time.Duration, id int, data []byte) (time.Duration, error) {
	s.writes++
	if data != nil {
		s.data[id] = append([]byte(nil), data...)
	} else {
		delete(s.data, id)
	}
	return s.writeLat, nil
}

func (s *memStore) ReadRegion(now time.Duration, id int, p []byte, n int, off int64) (time.Duration, error) {
	if p != nil {
		if d, ok := s.data[id]; ok {
			copy(p, d[off:off+int64(n)])
		}
	}
	return s.readLat, nil
}

func (s *memStore) EvictRegion(now time.Duration, id int) (time.Duration, error) {
	s.evictions++
	delete(s.data, id)
	return s.evictLat, nil
}

func newTestCache(t *testing.T, regions int, regionSize int64, opts ...func(*Config)) (*Cache, *memStore) {
	t.Helper()
	st := newMemStore(regions, regionSize)
	cfg := Config{Store: st, TrackValues: true}
	for _, o := range opts {
		o(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, st
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil store err = %v", err)
	}
	if _, err := New(Config{Store: newMemStore(1, 4096)}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("1 region err = %v", err)
	}
	if _, err := New(Config{Store: newMemStore(4, 1000)}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unaligned region err = %v", err)
	}
}

func TestSetGetFromOpenRegion(t *testing.T) {
	c, _ := newTestCache(t, 4, 64<<10)
	want := []byte("value-bytes")
	if err := c.Set("k1", want, 0); err != nil {
		t.Fatalf("Set: %v", err)
	}
	got, ok, err := c.Get("k1")
	if err != nil || !ok {
		t.Fatalf("Get = (%v, %v, %v)", got, ok, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, want %q", got, want)
	}
}

func TestGetMiss(t *testing.T) {
	c, _ := newTestCache(t, 4, 64<<10)
	if _, ok, _ := c.Get("absent"); ok {
		t.Fatal("hit on absent key")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	c, _ := newTestCache(t, 4, 64<<10)
	if err := c.Set("", nil, 10); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("empty key err = %v", err)
	}
}

func TestItemTooLarge(t *testing.T) {
	c, _ := newTestCache(t, 4, 4096)
	if err := c.Set("k", nil, 5000); !errors.Is(err, ErrItemTooLarge) {
		t.Fatalf("oversize err = %v", err)
	}
}

func TestGetFromSealedRegion(t *testing.T) {
	// Fill enough regions that the first one is sealed, then read from it.
	c, _ := newTestCache(t, 8, 4096)
	want := bytes.Repeat([]byte{0xEE}, 1000)
	if err := c.Set("k0", want, 0); err != nil {
		t.Fatal(err)
	}
	// Each region fits 3 such items (16+2+1000 = 1018 bytes). Fill several.
	for i := 1; i < 12; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 1000), 0); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain()
	got, ok, err := c.Get("k0")
	if err != nil || !ok {
		t.Fatalf("Get k0 = (%v, %v)", ok, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("sealed-region read mismatch")
	}
}

func TestOverwriteReturnsLatest(t *testing.T) {
	c, _ := newTestCache(t, 4, 64<<10)
	c.Set("k", []byte("old"), 0)
	c.Set("k", []byte("new"), 0)
	got, ok, _ := c.Get("k")
	if !ok || string(got) != "new" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestDelete(t *testing.T) {
	c, _ := newTestCache(t, 4, 64<<10)
	c.Set("k", []byte("v"), 0)
	if !c.Delete("k") {
		t.Fatal("Delete existing returned false")
	}
	if c.Delete("k") {
		t.Fatal("Delete absent returned true")
	}
	if _, ok, _ := c.Get("k"); ok {
		t.Fatal("deleted key still readable")
	}
}

func TestContains(t *testing.T) {
	c, _ := newTestCache(t, 4, 64<<10)
	c.Set("k", []byte("v"), 0)
	if !c.Contains("k") || c.Contains("nope") {
		t.Fatal("Contains wrong")
	}
}

// fillItems inserts metadata-only items of the given payload size until the
// cache has performed at least wantEvictions evictions.
func fillUntilEvictions(t *testing.T, c *Cache, itemVal int, wantEvictions uint64) int {
	t.Helper()
	i := 0
	for c.Stats().Evictions < wantEvictions {
		if err := c.Set(fmt.Sprintf("key-%08d", i), nil, itemVal); err != nil {
			t.Fatalf("Set %d: %v", i, err)
		}
		i++
		if i > 1_000_000 {
			t.Fatal("eviction never happened")
		}
	}
	return i
}

func TestEvictionRemovesAllRegionKeys(t *testing.T) {
	c, st := newTestCache(t, 4, 4096)
	n := fillUntilEvictions(t, c, 1000, 1)
	if st.evictions != 1 {
		t.Fatalf("store evictions = %d", st.evictions)
	}
	// The earliest keys (region 0) must be gone; the newest must remain.
	if c.Contains("key-00000000") {
		t.Fatal("evicted key still present")
	}
	if !c.Contains(fmt.Sprintf("key-%08d", n-1)) {
		t.Fatal("latest key missing")
	}
}

func TestLRUEvictionPrefersCold(t *testing.T) {
	// Keep key-0 hot by re-reading it; under LRU its region should survive
	// one eviction round while a cold region dies.
	c, _ := newTestCache(t, 4, 4096, func(cfg *Config) { cfg.Policy = LRU })
	// Items are 16+5+1000 = 1021 bytes: 4 per 4096-byte region. 16 inserts
	// fill all four regions (keys 0-3 in region 0, 4-7 in region 1, ...).
	for i := 0; i < 16; i++ {
		c.Set(fmt.Sprintf("key-%d", i), nil, 1000)
	}
	// Touch region 0, making it MRU among sealed regions.
	if _, ok, _ := c.Get("key-0"); !ok {
		t.Fatal("key-0 missing before eviction")
	}
	// The 17th insert seals the open region and must evict: the victim is
	// now region 1 (the coldest), not the re-touched region 0.
	c.Set("key-16", nil, 1000)
	if !c.Contains("key-0") {
		t.Fatal("hot region evicted under LRU")
	}
	if c.Contains("key-4") {
		t.Fatal("cold region survived while hot one was kept")
	}
}

func TestFIFOEvictionIgnoresAccess(t *testing.T) {
	c, _ := newTestCache(t, 4, 4096, func(cfg *Config) { cfg.Policy = FIFO })
	for i := 0; i < 16; i++ {
		c.Set(fmt.Sprintf("key-%d", i), nil, 1000)
	}
	c.Get("key-0") // access must not rescue region 0 under FIFO
	c.Set("key-16", nil, 1000)
	if c.Contains("key-0") {
		t.Fatal("FIFO kept the oldest region despite re-access")
	}
	if !c.Contains("key-4") {
		t.Fatal("FIFO evicted a newer region")
	}
}

func TestFillLogRecordsEvictionOnset(t *testing.T) {
	c, _ := newTestCache(t, 4, 4096)
	fillUntilEvictions(t, c, 1000, 3)
	log := c.FillLog()
	if len(log) < 4 {
		t.Fatalf("fill log too short: %d", len(log))
	}
	// The first fills need no eviction; later ones do.
	if log[0].Evicted {
		t.Fatal("first region fill flagged as evicting")
	}
	var sawEvict bool
	for _, r := range log {
		if r.Evicted {
			sawEvict = true
		}
		if r.Duration < 0 {
			t.Fatal("negative fill duration")
		}
	}
	if !sawEvict {
		t.Fatal("no fill flagged as evicting")
	}
	for i := 1; i < len(log); i++ {
		if log[i].Seq != log[i-1].Seq+1 {
			t.Fatal("fill sequence not contiguous")
		}
	}
}

func TestEvictionSpikeScalesWithRegionKeys(t *testing.T) {
	// The index-cleanup stall is proportional to keys per region: a region
	// with 4x the keys must stall ~4x longer (Figure 3's mechanism).
	stall := func(regionSize int64) time.Duration {
		st := newMemStore(4, regionSize)
		st.writeLat, st.readLat, st.evictLat = 0, 0, 0
		c, err := New(Config{Store: st, CPU: CPUModel{
			IndexLookup: 1, IndexInsert: 1, IndexRemove: 1,
			AppendItem: 1, AppendPerKiB: 1, EvictPerKey: time.Microsecond,
		}})
		if err != nil {
			t.Fatal(err)
		}
		before := c.Clock().Now()
		i := 0
		for c.Stats().Evictions < 2 {
			c.Set(fmt.Sprintf("key-%08d", i), nil, 1000)
			i++
		}
		_ = before
		// Compare the recorded fill durations before/after eviction onset.
		log := c.FillLog()
		var evictedMax time.Duration
		for _, r := range log {
			if r.Evicted && r.Duration > evictedMax {
				evictedMax = r.Duration
			}
		}
		return evictedMax
	}
	small, large := stall(4096), stall(16384)
	if large < small*2 {
		t.Fatalf("large-region eviction stall %v not ≫ small %v", large, small)
	}
}

func TestFlushPipelineBounded(t *testing.T) {
	// BufferMemory of exactly 2 regions: at most 2 in-flight flushes; the
	// 3rd roll must advance the clock to the oldest completion.
	st := newMemStore(16, 4096)
	st.writeLat = 10 * time.Millisecond
	c, err := New(Config{Store: st, BufferMemory: 8192})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; c.Stats().Flushes < 3; i++ {
		c.Set(fmt.Sprintf("key-%08d", i), nil, 1000)
	}
	// After 3 flushes with pipeline depth 2, at least one flush completion
	// (10ms) must have been waited on.
	if c.Clock().Now() < 10*time.Millisecond {
		t.Fatalf("clock %v: pipeline never stalled on flush completion", c.Clock().Now())
	}
}

func TestDeepPipelineOverlapsFlushes(t *testing.T) {
	// With a deep pipeline, three flushes cost less wall-clock than three
	// serial write latencies.
	run := func(bufMem int64) time.Duration {
		st := newMemStore(16, 4096)
		st.writeLat = 10 * time.Millisecond
		c, err := New(Config{Store: st, BufferMemory: bufMem})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; c.Stats().Flushes < 3; i++ {
			c.Set(fmt.Sprintf("key-%08d", i), nil, 1000)
		}
		return c.Clock().Now()
	}
	shallow := run(4096)   // depth 1: serial flushes
	deep := run(16 * 4096) // depth 16: fully overlapped
	if deep >= shallow {
		t.Fatalf("deep pipeline (%v) not faster than shallow (%v)", deep, shallow)
	}
}

func TestAdmissionRejectCounts(t *testing.T) {
	c, _ := newTestCache(t, 4, 64<<10, func(cfg *Config) {
		cfg.Admission = NewProbAdmit(0, 1) // reject everything
	})
	c.Set("k", nil, 100)
	if c.Contains("k") {
		t.Fatal("rejected item was admitted")
	}
	if c.Stats().AdmitRejects != 1 {
		t.Fatalf("AdmitRejects = %d", c.Stats().AdmitRejects)
	}
}

func TestRejectFirstAdmitsSecondAccess(t *testing.T) {
	a := NewRejectFirstAdmit(1024, 1000)
	if a.Admit("x", 1) {
		t.Fatal("first access admitted")
	}
	if !a.Admit("x", 1) {
		t.Fatal("second access rejected")
	}
}

func TestRejectFirstWindowResets(t *testing.T) {
	a := NewRejectFirstAdmit(1024, 2)
	a.Admit("x", 1)
	a.Admit("y", 1) // window hits 2, filter clears
	if a.Admit("x", 1) {
		t.Fatal("x should have been forgotten after window reset")
	}
}

func TestProbAdmitFraction(t *testing.T) {
	a := NewProbAdmit(0.3, 42)
	admits := 0
	for i := 0; i < 10000; i++ {
		if a.Admit("k", 1) {
			admits++
		}
	}
	if admits < 2700 || admits > 3300 {
		t.Fatalf("admit fraction %d/10000, want ~3000", admits)
	}
}

func TestEvictedKeysCallback(t *testing.T) {
	c, _ := newTestCache(t, 4, 4096)
	var dropped []string
	c.EvictedKeys = func(keys []string) { dropped = append(dropped, keys...) }
	fillUntilEvictions(t, c, 1000, 1)
	if len(dropped) == 0 {
		t.Fatal("eviction callback not invoked")
	}
	for _, k := range dropped {
		if c.Contains(k) {
			t.Fatalf("callback reported %s but key still present", k)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	c, _ := newTestCache(t, 4, 64<<10)
	c.Set("a", []byte("1"), 0)
	c.Get("a")
	c.Get("b")
	c.Delete("a")
	st := c.Stats()
	if st.Sets != 1 || st.Gets != 2 || st.Deletes != 1 {
		t.Fatalf("op counts: %+v", st)
	}
	if st.Hits != 1 || st.Misses != 1 || st.HitRatio != 0.5 {
		t.Fatalf("hit stats: %+v", st)
	}
	if st.HostWriteBytes == 0 || st.SimulatedTime == 0 {
		t.Fatalf("accounting zeros: %+v", st)
	}
	if st.GetLatency.Count != 2 || st.SetLatency.Count != 1 {
		t.Fatalf("latency counts: %+v", st)
	}
}

func TestIndexNeverPointsToFreeRegion(t *testing.T) {
	// Invariant check after heavy churn with overwrites and deletes.
	c, _ := newTestCache(t, 6, 4096)
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key-%04d", i%50)
		switch i % 5 {
		case 0, 1, 2:
			c.Set(k, nil, 700)
		case 3:
			c.Get(k)
		case 4:
			c.Delete(k)
		}
	}
	for k := range c.index {
		e := c.index[k]
		if c.regions[e.region].state == regionFree {
			t.Fatalf("key %s points to free region %d", k, e.region)
		}
	}
}

func TestMetadataOnlyGetReturnsNil(t *testing.T) {
	st := newMemStore(4, 4096)
	c, err := New(Config{Store: st}) // TrackValues off
	if err != nil {
		t.Fatal(err)
	}
	c.Set("k", nil, 100)
	v, ok, err := c.Get("k")
	if err != nil || !ok || v != nil {
		t.Fatalf("metadata-only Get = (%v, %v, %v), want (nil, true, nil)", v, ok, err)
	}
}
