package ssd

import (
	"testing"
	"time"

	"znscache/internal/device"
	"znscache/internal/sim"
)

func TestDiscardReducesGCWork(t *testing.T) {
	// Trimmed LBAs must not be migrated: with half the space discarded
	// before each overwrite round, WA stays lower than without trims.
	run := func(trim bool) float64 {
		cfg := testConfig()
		cfg.StoreData = false
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sectors := s.Size() / device.SectorSize
		rng := sim.NewRand(21)
		for i := int64(0); i < sectors*6; i++ {
			lpn := rng.Int63n(sectors)
			if trim && i%4 == 0 {
				s.Discard(lpn*device.SectorSize, device.SectorSize)
				continue
			}
			s.WriteAt(0, nil, device.SectorSize, lpn*device.SectorSize)
		}
		return s.WA.Factor()
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("WA with trims (%v) not below WA without (%v)", with, without)
	}
}

func TestLastWriteStallConsumedOnce(t *testing.T) {
	cfg := testConfig()
	cfg.StoreData = false
	s, _ := New(cfg)
	// Churn until a GC stall happens.
	sectors := s.Size() / device.SectorSize
	rng := sim.NewRand(5)
	var stall time.Duration
	for i := int64(0); i < sectors*4; i++ {
		s.WriteAt(0, nil, device.SectorSize, rng.Int63n(sectors)*device.SectorSize)
		if st := s.TakeLastWriteStall(); st > 0 {
			stall = st
			break
		}
	}
	if stall == 0 {
		t.Fatal("no GC stall observed")
	}
	if s.TakeLastWriteStall() != 0 {
		t.Fatal("stall not cleared after Take")
	}
}

func TestWritesAfterHeavyChurnStillReadable(t *testing.T) {
	// End-to-end FTL sanity at high utilization: the mapping stays a
	// bijection and the device never loses the latest write.
	cfg := testConfig()
	cfg.StoreData = false
	s, _ := New(cfg)
	sectors := s.Size() / device.SectorSize
	rng := sim.NewRand(31)
	for i := int64(0); i < sectors*8; i++ {
		s.WriteAt(0, nil, device.SectorSize, rng.Int63n(sectors)*device.SectorSize)
	}
	// p2l/l2p must agree for every mapped page.
	s.mu.Lock()
	defer s.mu.Unlock()
	live := 0
	for lpn, ppn := range s.l2p {
		if ppn == unmapped {
			continue
		}
		live++
		if s.p2l[ppn] != int64(lpn) {
			t.Fatalf("l2p/p2l disagree: lpn %d -> ppn %d -> lpn %d", lpn, ppn, s.p2l[ppn])
		}
	}
	if live == 0 {
		t.Fatal("no live mappings after churn")
	}
}

func TestReservePoolMaintained(t *testing.T) {
	cfg := testConfig()
	cfg.StoreData = false
	s, _ := New(cfg)
	if len(s.reserveBlks) != s.reserveTarget {
		t.Fatalf("initial reserve %d, want %d", len(s.reserveBlks), s.reserveTarget)
	}
	sectors := s.Size() / device.SectorSize
	rng := sim.NewRand(3)
	for i := int64(0); i < sectors*6; i++ {
		s.WriteAt(0, nil, device.SectorSize, rng.Int63n(sectors)*device.SectorSize)
	}
	if s.GCRuns.Load() == 0 {
		t.Fatal("churn never triggered GC")
	}
	s.mu.Lock()
	got := len(s.reserveBlks)
	s.mu.Unlock()
	if got != s.reserveTarget {
		t.Fatalf("reserve pool %d after GC churn, want %d (refilled)", got, s.reserveTarget)
	}
}

func TestGCStallsVisibleInHistogram(t *testing.T) {
	cfg := testConfig()
	cfg.StoreData = false
	s, _ := New(cfg)
	sectors := s.Size() / device.SectorSize
	rng := sim.NewRand(13)
	for i := int64(0); i < sectors*5; i++ {
		s.WriteAt(0, nil, device.SectorSize, rng.Int63n(sectors)*device.SectorSize)
	}
	if s.GCStalls.Count() != uint64(s.GCRuns.Load()) {
		t.Fatalf("stall samples %d != GC runs %d", s.GCStalls.Count(), s.GCRuns.Load())
	}
}
