// Package ssd simulates a regular (block-interface) SSD: a page-mapped FTL
// over a NAND array, with over-provisioning, greedy garbage collection, and
// device-level write-amplification accounting.
//
// This is the paper's baseline device (Block-Cache runs on it). Two of its
// modelled behaviours carry the paper's Figures 2 and 5:
//
//   - Write amplification: random small overwrites at high utilization force
//     the FTL to migrate live pages before erasing blocks, so media writes
//     exceed host writes (WAF > 1), burning lifespan and bandwidth.
//   - Uncontrollable GC: collection runs inside the device, in the
//     foreground of whichever host write trips the free-block watermark.
//     That write absorbs the whole migrate+erase cost — the high P99 the
//     paper measures for Block-Cache (Figure 5d).
package ssd

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"znscache/internal/device"
	"znscache/internal/flash"
	"znscache/internal/obs"
	"znscache/internal/stats"
)

// Config parameterizes the simulated SSD.
type Config struct {
	Geometry flash.Geometry
	Timing   flash.Timing
	// OPRatio is the fraction of raw capacity hidden from the host for GC
	// headroom. Regular SSDs ship with 7–28% (paper §2.2); 0.07 default.
	OPRatio float64
	// GCLowBlocks triggers collection when free blocks fall below it;
	// GCHighBlocks is the refill target. Zero values pick defaults sized
	// from the geometry (dies+2 and +4).
	GCLowBlocks  int
	GCHighBlocks int
	// StripeChunkPages is how many consecutive page allocations stay on one
	// open block (one die) before rotating to the next — the FTL-side twin
	// of the ZNS zone stripe chunk, so both devices show the same die-level
	// asymmetry: sub-chunk I/O serializes on one die, long runs spread.
	// Zero defaults to 2 (the model's 4 KiB pages make that one real
	// multi-plane NAND page), clamped to PagesPerBlock.
	StripeChunkPages int
	// StoreData retains page payloads for read-back (tests, examples).
	StoreData bool
}

func (c *Config) fillDefaults() {
	if c.OPRatio == 0 {
		c.OPRatio = 0.07
	}
	if c.GCLowBlocks == 0 {
		c.GCLowBlocks = c.Geometry.Dies()/2 + 2
		if max := c.Geometry.Blocks()/16 + 2; c.GCLowBlocks > max {
			c.GCLowBlocks = max
		}
	}
	if c.GCHighBlocks == 0 {
		c.GCHighBlocks = c.GCLowBlocks + 4
	}
	if c.StripeChunkPages <= 0 {
		c.StripeChunkPages = 2
	}
	if c.StripeChunkPages > c.Geometry.PagesPerBlock {
		c.StripeChunkPages = c.Geometry.PagesPerBlock
	}
}

// Errors specific to the SSD model.
var (
	ErrBadConfig = errors.New("ssd: invalid configuration")
	ErrReadHole  = errors.New("ssd: read of unwritten sector")
)

const unmapped = int64(-1)

// SSD is a simulated regular SSD. It is safe for concurrent use; internally
// a single lock serializes FTL state, which also models the serialization
// cost of the device's internal mapping structures.
type SSD struct {
	cfg   Config
	array *flash.Array

	mu       sync.Mutex
	l2p      []int64 // logical page -> physical page (block*ppb+page)
	p2l      []int64 // physical page -> logical page
	openBlks []int   // one open block per die for host/GC writes
	openNext int     // round-robin cursor over openBlks
	allocRun int     // consecutive allocations on the current open block
	freeBlks []int
	// reserveBlks is a dedicated pool only GC migrations may draw from; it
	// guarantees collection can always complete one victim even when the
	// general free pool is exhausted (the classic FTL GC reserve).
	reserveBlks   []int
	reserveTarget int
	inGC          bool
	fullBlks      map[int]struct{}
	exported      int64 // host-visible bytes

	// Observability.
	WA       stats.WriteAmp
	GCRuns   stats.Counter
	GCStalls *stats.Histogram // latency absorbed by host writes due to GC

	lastWriteStall time.Duration // GC stall charged to the latest WriteAt
}

// New builds the SSD and formats it empty.
func New(cfg Config) (*SSD, error) {
	cfg.fillDefaults()
	if cfg.Geometry.PageSize != device.SectorSize {
		return nil, fmt.Errorf("%w: flash page size %d must equal sector size %d",
			ErrBadConfig, cfg.Geometry.PageSize, device.SectorSize)
	}
	if cfg.OPRatio < 0 || cfg.OPRatio >= 1 {
		return nil, fmt.Errorf("%w: OP ratio %v", ErrBadConfig, cfg.OPRatio)
	}
	arr, err := flash.NewArray(cfg.Geometry, cfg.Timing, cfg.StoreData)
	if err != nil {
		return nil, err
	}
	geo := cfg.Geometry
	totalPages := geo.Pages()
	exportedPages := int64(float64(totalPages) * (1 - cfg.OPRatio))
	// The FTL needs working blocks beyond the exported space: the open
	// blocks, the GC reserve, and the GC watermark. Refuse geometries with
	// no headroom.
	// Open blocks stripe host writes across dies, but small devices cannot
	// afford one per die without eating their own OP.
	openBlocks := geo.Dies()
	if max := geo.Blocks() / 16; openBlocks > max {
		openBlocks = max
	}
	if openBlocks < 1 {
		openBlocks = 1
	}
	reserveTarget := openBlocks + 2
	minSlack := int64(openBlocks+reserveTarget+cfg.GCHighBlocks) * int64(geo.PagesPerBlock)
	if int64(totalPages)-exportedPages < minSlack {
		exportedPages = int64(totalPages) - minSlack
	}
	if exportedPages <= 0 {
		return nil, fmt.Errorf("%w: geometry too small for OP + GC reserve", ErrBadConfig)
	}

	s := &SSD{
		cfg:      cfg,
		array:    arr,
		l2p:      make([]int64, exportedPages),
		p2l:      make([]int64, totalPages),
		fullBlks: make(map[int]struct{}),
		exported: exportedPages * int64(geo.PageSize),
		GCStalls: stats.NewHistogram(),
	}
	for i := range s.l2p {
		s.l2p[i] = unmapped
	}
	for i := range s.p2l {
		s.p2l[i] = unmapped
	}
	for b := geo.Blocks() - 1; b >= 0; b-- {
		s.freeBlks = append(s.freeBlks, b)
	}
	s.reserveTarget = reserveTarget
	// Open blocks for host/GC writes; consecutive blocks interleave across
	// dies, so openBlocks-wide striping spreads over distinct dies.
	for d := 0; d < openBlocks; d++ {
		s.openBlks = append(s.openBlks, s.takeFreeLocked())
	}
	for r := 0; r < reserveTarget; r++ {
		s.reserveBlks = append(s.reserveBlks, s.takeFreeLocked())
	}
	return s, nil
}

// Size returns host-visible capacity.
func (s *SSD) Size() int64 { return s.exported }

// Array exposes the underlying NAND for wear inspection by the harness.
func (s *SSD) Array() *flash.Array { return s.array }

// takeFreeLocked pops a free block; caller holds mu and has ensured supply.
func (s *SSD) takeFreeLocked() int {
	n := len(s.freeBlks)
	b := s.freeBlks[n-1]
	s.freeBlks = s.freeBlks[:n-1]
	return b
}

// allocPageLocked returns the physical page to program next, rotating over
// the per-die open blocks in chunks of StripeChunkPages so consecutive
// writes share a die until the chunk fills. Caller holds mu and has ensured
// free supply.
func (s *SSD) allocPageLocked() flash.Addr {
	for {
		blk := s.openBlks[s.openNext]
		front := s.array.WriteFront(blk)
		if front < s.cfg.Geometry.PagesPerBlock {
			s.allocRun++
			if s.allocRun >= s.cfg.StripeChunkPages {
				s.allocRun = 0
				s.openNext = (s.openNext + 1) % len(s.openBlks)
			}
			return flash.Addr{Block: blk, Page: front}
		}
		s.allocRun = 0
		// Block filled: retire it and open a fresh one in its slot. GC
		// migrations may dip into the reserve; host writes never do (the
		// watermark check keeps the general pool stocked for them).
		s.fullBlks[blk] = struct{}{}
		var next int
		switch {
		case len(s.freeBlks) > 0:
			next = s.takeFreeLocked()
		case s.inGC && len(s.reserveBlks) > 0:
			next = s.reserveBlks[len(s.reserveBlks)-1]
			s.reserveBlks = s.reserveBlks[:len(s.reserveBlks)-1]
		default:
			panic("ssd: free and reserve pools exhausted — OP sizing violated")
		}
		s.openBlks[s.openNext] = next
	}
}

func (s *SSD) ppn(a flash.Addr) int64 {
	return int64(a.Block)*int64(s.cfg.Geometry.PagesPerBlock) + int64(a.Page)
}

func (s *SSD) addrOf(ppn int64) flash.Addr {
	ppb := int64(s.cfg.Geometry.PagesPerBlock)
	return flash.Addr{Block: int(ppn / ppb), Page: int(ppn % ppb)}
}

// WriteAt implements device.BlockDevice. Each sector is written
// out-of-place: the old physical page (if any) is invalidated and a fresh
// page programmed. If the free-block pool is below the watermark, garbage
// collection runs first and its full latency is charged to this write.
func (s *SSD) WriteAt(now time.Duration, data []byte, n int, off int64) (time.Duration, error) {
	if err := device.CheckRange(off, n, s.exported); err != nil {
		return 0, err
	}
	if data != nil && len(data) != n {
		return 0, fmt.Errorf("ssd: data length %d != n %d", len(data), n)
	}
	sectors := n / device.SectorSize
	if sectors == 0 {
		return 0, nil
	}
	start := now
	var latest time.Duration

	s.mu.Lock()
	s.lastWriteStall = 0
	lpnBase := off / device.SectorSize
	for i := 0; i < sectors; i++ {
		// Foreground GC: the "uncontrollable" collection any host write
		// can trip. Checked per sector so long writes cannot outrun the
		// watermark.
		if gcDone, ran := s.collectLocked(now); ran {
			stall := gcDone - now
			s.GCStalls.Observe(stall)
			s.lastWriteStall += stall
			now = gcDone
			if gcDone > latest {
				latest = gcDone
			}
		}
		lpn := lpnBase + int64(i)
		if old := s.l2p[lpn]; old != unmapped {
			s.array.Invalidate(s.addrOf(old))
			s.p2l[old] = unmapped
		}
		addr := s.allocPageLocked()
		var page []byte
		if data != nil {
			page = data[i*device.SectorSize : (i+1)*device.SectorSize]
		}
		done, err := s.array.Program(now, addr, page)
		if err != nil {
			s.mu.Unlock()
			return 0, fmt.Errorf("ssd: program: %w", err)
		}
		p := s.ppn(addr)
		s.l2p[lpn] = p
		s.p2l[p] = lpn
		if done > latest {
			latest = done
		}
	}
	s.mu.Unlock()

	s.WA.AddHost(uint64(n))
	s.WA.AddMedia(uint64(n))
	if latest < now {
		latest = now
	}
	return latest - start, nil
}

// ReadAt implements device.BlockDevice. Reading an unwritten sector fills
// zeros (fresh-device semantics) rather than erroring, matching real block
// devices.
func (s *SSD) ReadAt(now time.Duration, p []byte, off int64) (time.Duration, error) {
	n := len(p)
	if err := device.CheckRange(off, n, s.exported); err != nil {
		return 0, err
	}
	sectors := n / device.SectorSize
	start := now
	var latest time.Duration = now

	s.mu.Lock()
	lpnBase := off / device.SectorSize
	for i := 0; i < sectors; i++ {
		dst := p[i*device.SectorSize : (i+1)*device.SectorSize]
		ppn := s.l2p[lpnBase+int64(i)]
		if ppn == unmapped {
			for j := range dst {
				dst[j] = 0
			}
			continue
		}
		done, page, err := s.array.Read(now, s.addrOf(ppn))
		if err != nil {
			s.mu.Unlock()
			return 0, fmt.Errorf("ssd: read: %w", err)
		}
		copy(dst, page)
		if done > latest {
			latest = done
		}
	}
	s.mu.Unlock()
	return latest - start, nil
}

// Discard implements device.BlockDevice (TRIM). Unmapping dead sectors is
// how the cache layer above keeps device WA down; CacheLib issues discards
// when it drops regions.
func (s *SSD) Discard(off, n int64) error {
	if err := device.CheckRange(off, int(n), s.exported); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	lpnBase := off / device.SectorSize
	for i := int64(0); i < n/device.SectorSize; i++ {
		lpn := lpnBase + i
		if old := s.l2p[lpn]; old != unmapped {
			s.array.Invalidate(s.addrOf(old))
			s.p2l[old] = unmapped
			s.l2p[lpn] = unmapped
		}
	}
	return nil
}

// collectLocked runs greedy GC until the free pool reaches the high
// watermark. Returns the completion time and whether any work happened.
func (s *SSD) collectLocked(now time.Duration) (time.Duration, bool) {
	if len(s.freeBlks) >= s.cfg.GCLowBlocks {
		return now, false
	}
	s.GCRuns.Inc()
	s.inGC = true
	cur := now
	for len(s.freeBlks) < s.cfg.GCHighBlocks {
		victim, ok := s.pickVictimLocked()
		if !ok {
			break // nothing collectable; device is pathologically full
		}
		delete(s.fullBlks, victim)
		cur = s.migrateAndEraseLocked(cur, victim)
		// Erased capacity refills the GC reserve before the general pool.
		if len(s.reserveBlks) < s.reserveTarget {
			s.reserveBlks = append(s.reserveBlks, victim)
		} else {
			s.freeBlks = append(s.freeBlks, victim)
		}
	}
	s.inGC = false
	return cur, true
}

// pickVictimLocked chooses the full block with the fewest valid pages
// (greedy policy), skipping open blocks.
func (s *SSD) pickVictimLocked() (int, bool) {
	// Ties break toward the lowest block index: map iteration order is
	// random per run, and letting it pick among equal-valid victims makes
	// GC latencies (and thus simulated throughput) drift across runs.
	best, bestValid := -1, 1<<31
	for b := range s.fullBlks {
		if v := s.array.ValidPages(b); v < bestValid || (v == bestValid && b < best) {
			best, bestValid = b, v
		}
	}
	return best, best >= 0
}

// migrateAndEraseLocked relocates the victim's live pages and erases it.
// Migrated bytes count as media (not host) writes — the WA source. Reads
// serialize on the victim's die; the rewrites fan out across the open
// blocks' dies in parallel, as a real FTL's copy path does.
func (s *SSD) migrateAndEraseLocked(now time.Duration, victim int) time.Duration {
	geo := s.cfg.Geometry
	base := int64(victim) * int64(geo.PagesPerBlock)
	latest := now
	for p := 0; p < geo.PagesPerBlock; p++ {
		oldPPN := base + int64(p)
		lpn := s.p2l[oldPPN]
		if lpn == unmapped {
			continue
		}
		addr := flash.Addr{Block: victim, Page: p}
		rDone, page, err := s.array.Read(now, addr)
		if err != nil {
			panic(fmt.Sprintf("ssd: GC read of live page failed: %v", err))
		}
		dst := s.allocPageLocked()
		wDone, err := s.array.Program(rDone, dst, page)
		if err != nil {
			panic(fmt.Sprintf("ssd: GC program failed: %v", err))
		}
		s.array.Invalidate(addr)
		newPPN := s.ppn(dst)
		s.l2p[lpn] = newPPN
		s.p2l[newPPN] = lpn
		s.p2l[oldPPN] = unmapped
		s.WA.AddMedia(uint64(geo.PageSize))
		if wDone > latest {
			latest = wDone
		}
	}
	eDone, err := s.array.Erase(latest, victim)
	if err != nil {
		panic(fmt.Sprintf("ssd: GC erase failed: %v", err))
	}
	return eDone
}

// TakeLastWriteStall returns (and clears) the GC stall absorbed by the most
// recent WriteAt. The write syscall blocks the caller for this long — the
// foreground-GC tail the paper attributes to regular SSDs (§4.2).
func (s *SSD) TakeLastWriteStall() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.lastWriteStall
	s.lastWriteStall = 0
	return st
}

// FreeBlocks reports the current free-block pool size (for tests).
func (s *SSD) FreeBlocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.freeBlks)
}

// MetricsInto implements obs.MetricSource: the FTL's write amplification,
// GC run count, free-block gauge, and the GC-stall latency distribution that
// carries the paper's Block-Cache tail-latency story.
func (s *SSD) MetricsInto(r *obs.Registry, labels obs.Labels) {
	ls := labels.With("layer", "ssd")
	r.WriteAmp("ssd_wa", "FTL write amplification", ls, &s.WA)
	r.Counter("ssd_gc_runs_total", "Device GC collection passes", ls, &s.GCRuns)
	r.Histogram("ssd_gc_stall_seconds", "GC stall absorbed by host writes", ls, s.GCStalls)
	r.Gauge("ssd_free_blocks", "Blocks in the FTL free pool", ls, func() float64 {
		return float64(s.FreeBlocks())
	})
}

// MappedSectors reports how many logical sectors currently hold data.
func (s *SSD) MappedSectors() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var c int64
	for _, p := range s.l2p {
		if p != unmapped {
			c++
		}
	}
	return c
}

var _ device.BlockDevice = (*SSD)(nil)
