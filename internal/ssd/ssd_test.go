package ssd

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"znscache/internal/device"
	"znscache/internal/flash"
	"znscache/internal/sim"
)

func testConfig() Config {
	return Config{
		Geometry: flash.Geometry{
			Channels: 2, DiesPerChan: 2, BlocksPerDie: 16,
			PagesPerBlock: 16, PageSize: device.SectorSize,
		},
		Timing:    flash.DefaultTiming(),
		OPRatio:   0.20,
		StoreData: true,
	}
}

func newTestSSD(t *testing.T) *SSD {
	t.Helper()
	s, err := New(testConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Geometry.PageSize = 512
	if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("mismatched page size: err = %v, want ErrBadConfig", err)
	}
	cfg = testConfig()
	cfg.OPRatio = 1.5
	if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("OP 1.5: err = %v, want ErrBadConfig", err)
	}
	cfg = testConfig()
	cfg.Geometry.BlocksPerDie = 1 // no room for open blocks + GC reserve
	if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("tiny geometry: err = %v, want ErrBadConfig", err)
	}
}

func TestExportedSizeReflectsOP(t *testing.T) {
	s := newTestSSD(t)
	raw := testConfig().Geometry.TotalBytes()
	if s.Size() >= raw {
		t.Fatalf("exported %d not below raw %d", s.Size(), raw)
	}
	if s.Size()%device.SectorSize != 0 {
		t.Fatal("exported size not sector aligned")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := newTestSSD(t)
	want := bytes.Repeat([]byte{0x5A}, 2*device.SectorSize)
	if _, err := s.WriteAt(0, want, len(want), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(want))
	if _, err := s.ReadAt(0, got, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round-trip mismatch")
	}
}

func TestOverwriteReturnsLatest(t *testing.T) {
	s := newTestSSD(t)
	a := bytes.Repeat([]byte{1}, device.SectorSize)
	b := bytes.Repeat([]byte{2}, device.SectorSize)
	s.WriteAt(0, a, len(a), 4096)
	s.WriteAt(0, b, len(b), 4096)
	got := make([]byte, device.SectorSize)
	s.ReadAt(0, got, 4096)
	if !bytes.Equal(got, b) {
		t.Fatal("overwrite not visible")
	}
}

func TestReadUnwrittenReturnsZeros(t *testing.T) {
	s := newTestSSD(t)
	got := bytes.Repeat([]byte{0xFF}, device.SectorSize)
	if _, err := s.ReadAt(0, got, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, make([]byte, device.SectorSize)) {
		t.Fatal("unwritten sector not zero-filled")
	}
}

func TestAlignmentAndRangeErrors(t *testing.T) {
	s := newTestSSD(t)
	buf := make([]byte, device.SectorSize)
	if _, err := s.ReadAt(0, buf, 123); !errors.Is(err, device.ErrAlignment) {
		t.Fatalf("misaligned read err = %v", err)
	}
	if _, err := s.WriteAt(0, nil, device.SectorSize, s.Size()); !errors.Is(err, device.ErrOutOfRange) {
		t.Fatalf("out-of-range write err = %v", err)
	}
	if err := s.Discard(-4096, 4096); !errors.Is(err, device.ErrOutOfRange) {
		t.Fatalf("negative discard err = %v", err)
	}
}

func TestMetadataOnlyWrite(t *testing.T) {
	s := newTestSSD(t)
	if _, err := s.WriteAt(0, nil, 4*device.SectorSize, 0); err != nil {
		t.Fatalf("nil-data WriteAt: %v", err)
	}
	if s.MappedSectors() != 4 {
		t.Fatalf("MappedSectors = %d, want 4", s.MappedSectors())
	}
}

func TestDiscardUnmaps(t *testing.T) {
	s := newTestSSD(t)
	s.WriteAt(0, nil, 8*device.SectorSize, 0)
	if err := s.Discard(0, 4*device.SectorSize); err != nil {
		t.Fatalf("Discard: %v", err)
	}
	if s.MappedSectors() != 4 {
		t.Fatalf("MappedSectors after discard = %d, want 4", s.MappedSectors())
	}
	// Discarded sectors read back as zeros.
	got := bytes.Repeat([]byte{0xFF}, device.SectorSize)
	s.ReadAt(0, got, 0)
	if !bytes.Equal(got, make([]byte, device.SectorSize)) {
		t.Fatal("discarded sector not zeroed")
	}
}

func TestSequentialFillNoGC(t *testing.T) {
	// Writing the device once, sequentially, must not trigger GC: there is
	// nothing to collect.
	s := newTestSSD(t)
	sectors := s.Size() / device.SectorSize
	for i := int64(0); i < sectors; i++ {
		if _, err := s.WriteAt(0, nil, device.SectorSize, i*device.SectorSize); err != nil {
			t.Fatalf("fill write %d: %v", i, err)
		}
	}
	if s.GCRuns.Load() != 0 {
		t.Fatalf("sequential fill triggered %d GC runs", s.GCRuns.Load())
	}
	if f := s.WA.Factor(); f != 1.0 {
		t.Fatalf("sequential-fill WAF = %v, want 1.0", f)
	}
}

func TestRandomOverwriteTriggersGCAndWA(t *testing.T) {
	// Overwrite the full device several times over: GC must run and WA
	// must exceed 1 — the paper's core complaint about regular SSDs under
	// caching workloads.
	s := newTestSSD(t)
	sectors := s.Size() / device.SectorSize
	rng := sim.NewRand(7)
	for i := int64(0); i < sectors*4; i++ {
		lpn := rng.Int63n(sectors)
		if _, err := s.WriteAt(0, nil, device.SectorSize, lpn*device.SectorSize); err != nil {
			t.Fatalf("overwrite %d: %v", i, err)
		}
	}
	if s.GCRuns.Load() == 0 {
		t.Fatal("random overwrites never triggered GC")
	}
	if f := s.WA.Factor(); f <= 1.0 {
		t.Fatalf("WAF = %v, want > 1 under random overwrite", f)
	}
	if s.GCStalls.Count() == 0 {
		t.Fatal("no GC stalls recorded")
	}
	// GC stalls are orders of magnitude above a single program: tail source.
	if s.GCStalls.Max() < s.Array().Timing().EraseBlock {
		t.Fatalf("max GC stall %v below one erase %v", s.GCStalls.Max(), s.Array().Timing().EraseBlock)
	}
}

func TestGCPreservesData(t *testing.T) {
	// Fill a small logical window with known data, then hammer the rest of
	// the device to force GC over the victim blocks; the window must
	// survive migrations intact.
	s := newTestSSD(t)
	const window = 16
	want := make([][]byte, window)
	for i := range want {
		want[i] = bytes.Repeat([]byte{byte(i + 1)}, device.SectorSize)
		if _, err := s.WriteAt(0, want[i], device.SectorSize, int64(i)*device.SectorSize); err != nil {
			t.Fatal(err)
		}
	}
	sectors := s.Size() / device.SectorSize
	for round := 0; round < 6; round++ {
		for i := int64(window); i < sectors; i++ {
			if _, err := s.WriteAt(0, nil, device.SectorSize, i*device.SectorSize); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.GCRuns.Load() == 0 {
		t.Fatal("workload failed to trigger GC; test is vacuous")
	}
	got := make([]byte, device.SectorSize)
	for i := range want {
		if _, err := s.ReadAt(0, got, int64(i)*device.SectorSize); err != nil {
			t.Fatalf("read window %d: %v", i, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("sector %d corrupted by GC", i)
		}
	}
}

func TestHigherOPLowersWA(t *testing.T) {
	// Table 1's mechanism: more OP → fewer, cheaper collections → lower WA.
	waf := func(op float64) float64 {
		cfg := testConfig()
		cfg.OPRatio = op
		cfg.StoreData = false
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New(op=%v): %v", op, err)
		}
		sectors := s.Size() / device.SectorSize
		rng := sim.NewRand(3)
		for i := int64(0); i < sectors*6; i++ {
			s.WriteAt(0, nil, device.SectorSize, rng.Int63n(sectors)*device.SectorSize)
		}
		return s.WA.Factor()
	}
	low, high := waf(0.10), waf(0.30)
	if high >= low {
		t.Fatalf("WAF(op=30%%)=%v not below WAF(op=10%%)=%v", high, low)
	}
}

func TestMappedSectorsNeverExceedsExported(t *testing.T) {
	if err := quick.Check(func(writes []uint16) bool {
		cfg := testConfig()
		cfg.StoreData = false
		s, err := New(cfg)
		if err != nil {
			return false
		}
		sectors := s.Size() / device.SectorSize
		for _, w := range writes {
			off := (int64(w) % sectors) * device.SectorSize
			if _, err := s.WriteAt(0, nil, device.SectorSize, off); err != nil {
				return false
			}
		}
		return s.MappedSectors() <= sectors
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteLatencyPositive(t *testing.T) {
	s := newTestSSD(t)
	lat, err := s.WriteAt(0, nil, device.SectorSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatalf("write latency %v, want > 0", lat)
	}
	buf := make([]byte, device.SectorSize)
	rlat, err := s.ReadAt(lat, buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rlat <= 0 {
		t.Fatalf("read latency %v, want > 0", rlat)
	}
	if rlat >= lat {
		t.Fatalf("read latency %v not below write latency %v", rlat, lat)
	}
}

func TestStripedWriteFasterThanSerial(t *testing.T) {
	// An 8-sector write stripes across dies; it must complete in well under
	// 8 sequential program times.
	s := newTestSSD(t)
	tm := s.Array().Timing()
	lat, err := s.WriteAt(0, nil, 8*device.SectorSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	serial := 8 * (tm.ProgPage + tm.Transfer)
	if lat >= serial {
		t.Fatalf("striped write latency %v not below serial %v", lat, serial)
	}
}
