package cluster

import (
	"znscache/internal/obs"
	"znscache/internal/stats"
)

// rmetrics are the Router's instruments, registered by reference (the obs
// convention) so a /metrics scrape on the proxy reads the same atomics the
// routing path increments.
type rmetrics struct {
	gets    stats.Counter // routed get lookups (per key)
	sets    stats.Counter // routed sets
	deletes stats.Counter // routed deletes

	hotReads     stats.Counter // reads routed by hot-key replication
	replicaReads stats.Counter // reads served by a non-primary replica
	failovers    stats.Counter // read attempts beyond the first replica tried

	backendErrors      stats.Counter // transport/protocol errors talking to backends
	replicaWriteErrors stats.Counter // replica (non-primary) write failures

	ringMoves  stats.Counter // keys copied to a new owner by join/leave warming
	rebalances stats.Counter // topology changes (join, leave, mark-down)
	nodesDown  stats.Counter // members removed as crashed
}

// Metrics is a point-in-time copy of the Router's counters, for tests and
// the bench harness.
type Metrics struct {
	Gets, Sets, Deletes               uint64
	HotReads, ReplicaReads, Failovers uint64
	BackendErrors, ReplicaWriteErrors uint64
	RingMoves, Rebalances, NodesDown  uint64
}

// MetricsSnapshot reads every counter once.
func (rt *Router) MetricsSnapshot() Metrics {
	m := &rt.m
	return Metrics{
		Gets:               m.gets.Load(),
		Sets:               m.sets.Load(),
		Deletes:            m.deletes.Load(),
		HotReads:           m.hotReads.Load(),
		ReplicaReads:       m.replicaReads.Load(),
		Failovers:          m.failovers.Load(),
		BackendErrors:      m.backendErrors.Load(),
		ReplicaWriteErrors: m.replicaWriteErrors.Load(),
		RingMoves:          m.ringMoves.Load(),
		Rebalances:         m.rebalances.Load(),
		NodesDown:          m.nodesDown.Load(),
	}
}

// MetricsInto implements obs.MetricSource: the router's instruments register
// under cluster_* names with the caller's labels.
func (rt *Router) MetricsInto(r *obs.Registry, labels obs.Labels) {
	m := &rt.m
	r.Counter("cluster_ops_total", "Routed operations by verb", labels.With("verb", "get"), &m.gets)
	r.Counter("cluster_ops_total", "Routed operations by verb", labels.With("verb", "set"), &m.sets)
	r.Counter("cluster_ops_total", "Routed operations by verb", labels.With("verb", "delete"), &m.deletes)
	r.Counter("cluster_hot_reads_total", "Reads routed by hot-key replication", labels, &m.hotReads)
	r.Counter("cluster_replica_reads_total", "Reads served by a non-primary replica", labels, &m.replicaReads)
	r.Counter("cluster_read_failovers_total", "Read attempts beyond the first replica", labels, &m.failovers)
	r.Counter("cluster_backend_errors_total", "Transport/protocol errors talking to backends", labels, &m.backendErrors)
	r.Counter("cluster_replica_write_errors_total", "Replica (non-primary) write failures", labels, &m.replicaWriteErrors)
	r.Counter("cluster_ring_moves_total", "Keys copied to new owners by rebalance warming", labels, &m.ringMoves)
	r.Counter("cluster_rebalances_total", "Topology changes (join, leave, mark-down)", labels, &m.rebalances)
	r.Counter("cluster_nodes_down_total", "Members removed as crashed", labels, &m.nodesDown)
	r.Gauge("cluster_nodes", "Current member count", labels, func() float64 {
		rt.mu.RLock()
		defer rt.mu.RUnlock()
		return float64(len(rt.members))
	})
	r.Gauge("cluster_hot_keys", "Keys in the current hot set", labels, func() float64 {
		return float64(len(*rt.hot.hot.Load()))
	})
}
