package cluster

import (
	"sort"
	"sync"
	"sync/atomic"
)

// HotKeys is a sliding-window hot-key detector: gets are counted into the
// current window, and at each window boundary the top-k keys (above a
// minimum count) are published as the hot set. Reads of hot keys may be
// served by any replica instead of only the primary, flattening the load
// imbalance a zipf-skewed workload piles onto the hot key's owner.
//
// Promotion and demotion are both automatic: the published set is recomputed
// from scratch every window, so a key that cools off (a skew flip) drops out
// one window later. IsHot is lock-free (an atomic pointer swap publishes the
// set); Observe takes a mutex — the counting window is small and the proxy
// calls it once per get, far from the per-byte hot path.
type HotKeys struct {
	window   int
	topK     int
	minCount int

	mu   sync.Mutex
	cur  map[string]int
	seen int

	hot        atomic.Pointer[map[string]struct{}]
	promotions atomic.Uint64
	demotions  atomic.Uint64
}

// NewHotKeys builds a detector: every window observations, the top-k keys
// with at least minCount hits are promoted. window ≤ 0 disables detection
// (IsHot is always false).
func NewHotKeys(window, topK, minCount int) *HotKeys {
	if topK <= 0 {
		topK = 8
	}
	if minCount <= 0 {
		minCount = 2
	}
	h := &HotKeys{
		window:   window,
		topK:     topK,
		minCount: minCount,
		cur:      make(map[string]int, 256),
	}
	empty := map[string]struct{}{}
	h.hot.Store(&empty)
	return h
}

// Observe counts one get of key, rotating the window at the boundary.
func (h *HotKeys) Observe(key string) {
	if h.window <= 0 {
		return
	}
	h.mu.Lock()
	h.cur[key]++
	h.seen++
	if h.seen >= h.window {
		h.rotateLocked()
	}
	h.mu.Unlock()
}

// IsHot reports whether key was promoted in the last completed window.
func (h *HotKeys) IsHot(key string) bool {
	_, ok := (*h.hot.Load())[key]
	return ok
}

// Hot returns the current hot set's keys (unordered, a copy).
func (h *HotKeys) Hot() []string {
	set := *h.hot.Load()
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}

// Promotions and Demotions report how many keys entered/left the hot set
// across all window rotations.
func (h *HotKeys) Promotions() uint64 { return h.promotions.Load() }
func (h *HotKeys) Demotions() uint64  { return h.demotions.Load() }

// rotateLocked publishes the window's top-k as the new hot set and starts a
// fresh window. Called with h.mu held.
func (h *HotKeys) rotateLocked() {
	type kc struct {
		k string
		c int
	}
	cand := make([]kc, 0, len(h.cur))
	for k, c := range h.cur {
		if c >= h.minCount {
			cand = append(cand, kc{k, c})
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].c != cand[j].c {
			return cand[i].c > cand[j].c
		}
		return cand[i].k < cand[j].k // deterministic ties
	})
	if len(cand) > h.topK {
		cand = cand[:h.topK]
	}
	next := make(map[string]struct{}, len(cand))
	for _, e := range cand {
		next[e.k] = struct{}{}
	}
	prev := *h.hot.Load()
	for k := range next {
		if _, ok := prev[k]; !ok {
			h.promotions.Add(1)
		}
	}
	for k := range prev {
		if _, ok := next[k]; !ok {
			h.demotions.Add(1)
		}
	}
	h.hot.Store(&next)
	clear(h.cur)
	h.seen = 0
}
