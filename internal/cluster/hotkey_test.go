package cluster

import (
	"fmt"
	"testing"
)

// TestHotKeyPromotionDemotionOnSkewFlip drives a skewed window at one key,
// asserts promotion, then flips the skew to another key and asserts the old
// one demotes and the new one promotes within one window.
func TestHotKeyPromotionDemotionOnSkewFlip(t *testing.T) {
	h := NewHotKeys(1000, 4, 10)

	// Window 1: keyA dominates, background keys stay under minCount.
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			h.Observe("keyA")
		} else {
			h.Observe(fmt.Sprintf("bg-%d", i)) // each seen once
		}
	}
	if !h.IsHot("keyA") {
		t.Fatal("keyA not promoted after a skewed window")
	}
	if h.IsHot("bg-1") {
		t.Fatal("one-hit background key promoted")
	}
	if h.Promotions() == 0 {
		t.Fatal("promotion counter not incremented")
	}

	// Window 2: the skew flips to keyB; keyA goes cold.
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			h.Observe("keyB")
		} else {
			h.Observe(fmt.Sprintf("bg2-%d", i))
		}
	}
	if h.IsHot("keyA") {
		t.Fatal("keyA still hot after the skew flipped")
	}
	if !h.IsHot("keyB") {
		t.Fatal("keyB not promoted after the flip")
	}
	if h.Demotions() == 0 {
		t.Fatal("demotion counter not incremented")
	}
}

// TestHotKeyTopKBound: no window promotes more than topK keys, and the
// selection is the most-counted ones.
func TestHotKeyTopKBound(t *testing.T) {
	h := NewHotKeys(600, 2, 2)
	// Three contenders with distinct counts: 300, 200, 100.
	for i := 0; i < 300; i++ {
		h.Observe("big")
		if i < 200 {
			h.Observe("mid")
		}
		if i < 100 {
			h.Observe("small")
		}
	}
	if got := len(h.Hot()); got > 2 {
		t.Fatalf("hot set has %d keys, topK is 2", got)
	}
	if !h.IsHot("big") || !h.IsHot("mid") {
		t.Fatalf("top-2 selection wrong: hot=%v", h.Hot())
	}
	if h.IsHot("small") {
		t.Fatal("third-place key promoted past topK")
	}
}

// TestHotKeyDisabled: window 0 never promotes and never blocks.
func TestHotKeyDisabled(t *testing.T) {
	h := NewHotKeys(0, 4, 1)
	for i := 0; i < 10_000; i++ {
		h.Observe("k")
	}
	if h.IsHot("k") {
		t.Fatal("disabled detector promoted a key")
	}
}
