package cluster

import (
	"sync"
	"time"

	"znscache/internal/server"
)

// pool is a per-backend connection pool of pipelined server.Clients.
// Checkout semantics: get hands the caller an idle connection (dialing one
// when the pool is dry), put returns it, drop closes it (transport errors
// poison a pipelined client, so a failed exchange never returns to the
// pool). A closed pool refuses new checkouts; connections returned after
// close are closed on the spot.
type pool struct {
	addr    string
	timeout time.Duration

	mu     sync.Mutex
	free   []*server.Client
	max    int // max idle connections retained
	closed bool
}

func newPool(addr string, maxIdle int, timeout time.Duration) *pool {
	if maxIdle <= 0 {
		maxIdle = 4
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &pool{addr: addr, max: maxIdle, free: make([]*server.Client, 0, maxIdle), timeout: timeout}
}

func (p *pool) get() (*server.Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errPoolClosed
	}
	if n := len(p.free); n > 0 {
		cl := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return cl, nil
	}
	p.mu.Unlock()
	cl, err := server.Dial(p.addr)
	if err != nil {
		return nil, err
	}
	cl.Timeout = p.timeout
	return cl, nil
}

func (p *pool) put(cl *server.Client) {
	p.mu.Lock()
	if p.closed || len(p.free) >= p.max {
		p.mu.Unlock()
		cl.Close() //nolint:errcheck
		return
	}
	p.free = append(p.free, cl)
	p.mu.Unlock()
}

func (p *pool) drop(cl *server.Client) {
	cl.Close() //nolint:errcheck
}

func (p *pool) close() {
	p.mu.Lock()
	frees := p.free
	p.free = nil
	p.closed = true
	p.mu.Unlock()
	for _, cl := range frees {
		cl.Close() //nolint:errcheck
	}
}
