package cluster

import (
	"fmt"
)

// Join adds node n to the ring and warms it: warmKeys (typically decoded
// from the overlapping owners' persistent snapshots via cache.SnapshotKeys)
// are re-resolved under the new ring, and every key n now replicates is
// copied from a pre-change owner. It returns how many keys moved. Warming
// copies values, not TTLs — the memcached protocol cannot read a remaining
// TTL back, so warmed entries are stored without one (a cache may always
// expire early; it must not expire late, and an unwarmed miss is just a
// miss).
func (rt *Router) Join(n Node, warmKeys []string) (int, error) {
	rt.mu.Lock()
	if _, exists := rt.members[n.Name]; exists {
		rt.mu.Unlock()
		return 0, fmt.Errorf("cluster: node %q already joined", n.Name)
	}
	oldRing := rt.ring
	newRing, err := NewRing(append(append([]string(nil), oldRing.Nodes()...), n.Name), rt.cfg.VirtualNodes)
	if err != nil {
		rt.mu.Unlock()
		return 0, err
	}
	mb := &member{node: n, pool: newPool(n.Addr, rt.cfg.PoolIdle, rt.cfg.Timeout)}
	rt.members[n.Name] = mb
	rt.ring = newRing
	rt.mu.Unlock()
	rt.m.rebalances.Inc()

	moved := 0
	var scratch []string
	for _, key := range warmKeys {
		newOwners := newRing.OwnersInto(key, rt.r, scratch[:0])
		if !containsStr(newOwners, n.Name) {
			continue
		}
		scratch = newOwners
		// Read from a pre-change owner: the data's home before the join.
		v, hit, err := rt.getFailover(key, rt.membersFor(oldRing.OwnersInto(key, rt.r, nil)), 0, mb)
		if err != nil || !hit {
			continue // nothing to move (or the source is gone): a cold miss later
		}
		if rt.setOn(mb, key, v, 0) == nil {
			moved++
			rt.m.ringMoves.Inc()
		}
	}
	return moved, nil
}

// Leave gracefully removes node name: keys (typically the departing node's
// snapshot keys) are re-resolved under the shrunk ring, and every key whose
// new replica set gained a node is copied there from a current owner — the
// departing node is still serving, so its data is the warm source. The
// node's pool closes once warming finishes.
func (rt *Router) Leave(name string, keys []string) (int, error) {
	rt.mu.Lock()
	departing := rt.members[name]
	if departing == nil {
		rt.mu.Unlock()
		return 0, fmt.Errorf("cluster: unknown node %q", name)
	}
	oldRing := rt.ring
	remaining := make([]string, 0, len(oldRing.Nodes())-1)
	for _, n := range oldRing.Nodes() {
		if n != name {
			remaining = append(remaining, n)
		}
	}
	if len(remaining) == 0 {
		rt.mu.Unlock()
		return 0, fmt.Errorf("cluster: cannot remove the last node %q", name)
	}
	newRing, err := NewRing(remaining, rt.cfg.VirtualNodes)
	if err != nil {
		rt.mu.Unlock()
		return 0, err
	}
	// Publish the shrunk ring first so new writes land on the successors;
	// the departing member stays resolvable for warming reads until the end.
	rt.ring = newRing
	rt.mu.Unlock()
	rt.m.rebalances.Inc()

	moved := 0
	for _, key := range keys {
		oldOwners := oldRing.OwnersInto(key, rt.r, nil)
		if !containsStr(oldOwners, name) {
			continue
		}
		newOwners := newRing.OwnersInto(key, rt.r, nil)
		v, hit, gerr := rt.getFailover(key, rt.membersFor(oldOwners), 0, nil)
		if gerr != nil || !hit {
			continue
		}
		copied := false
		for _, owner := range newOwners {
			if containsStr(oldOwners, owner) {
				continue // already holds it from the replicated write
			}
			if mb := rt.memberOf(owner); mb != nil && rt.setOn(mb, key, v, 0) == nil {
				copied = true
			}
		}
		if copied {
			moved++
			rt.m.ringMoves.Inc()
		}
	}

	rt.mu.Lock()
	delete(rt.members, name)
	rt.mu.Unlock()
	departing.pool.close()
	return moved, nil
}

// MarkDown removes a crashed node: no warming (the node is gone), the ring
// shrinks, and surviving replicas take over. Keys replicated only on the
// dead node surface as misses — the lost-key accounting the failure drill
// asserts. Unknown names are a no-op (a drill may race a leave).
func (rt *Router) MarkDown(name string) {
	rt.mu.Lock()
	mb := rt.members[name]
	if mb == nil {
		rt.mu.Unlock()
		return
	}
	mb.down.Store(true)
	delete(rt.members, name)
	remaining := make([]string, 0, len(rt.ring.Nodes())-1)
	for _, n := range rt.ring.Nodes() {
		if n != name {
			remaining = append(remaining, n)
		}
	}
	if len(remaining) > 0 {
		if newRing, err := NewRing(remaining, rt.cfg.VirtualNodes); err == nil {
			rt.ring = newRing
		}
	}
	rt.mu.Unlock()
	rt.m.rebalances.Inc()
	rt.m.nodesDown.Inc()
	mb.pool.close()
}

// membersFor resolves names to live member handles under the current
// membership (missing names — already-removed nodes — are skipped).
func (rt *Router) membersFor(names []string) []*member {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	ms := make([]*member, 0, len(names))
	for _, n := range names {
		if mb := rt.members[n]; mb != nil {
			ms = append(ms, mb)
		}
	}
	return ms
}

func (rt *Router) memberOf(name string) *member {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.members[name]
}

func containsStr(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
