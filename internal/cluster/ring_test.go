package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%06d", i)
	}
	return keys
}

// TestRingDeterministic: the same node set yields the same assignment, in
// any insertion order, across fresh builds.
func TestRingDeterministic(t *testing.T) {
	keys := testKeys(5000)
	a, err := NewRing([]string{"n0", "n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3", "n1", "n0", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		ao := a.OwnersInto(k, 2, nil)
		bo := b.OwnersInto(k, 2, nil)
		if len(ao) != len(bo) || ao[0] != bo[0] || ao[1] != bo[1] {
			t.Fatalf("assignment differs for %q: %v vs %v", k, ao, bo)
		}
	}
}

// TestRingMinimalMovement: adding or removing one node moves roughly K/N of
// the keys and never more than a small multiple of it — the property that
// separates consistent hashing from mod-N.
func TestRingMinimalMovement(t *testing.T) {
	keys := testKeys(20000)
	nodes := []string{"n0", "n1", "n2", "n3", "n4"}
	before, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Join n5: only keys the new node captures change primary owner.
	after, err := NewRing(append(append([]string(nil), nodes...), "n5"), 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keys {
		bo, ao := before.Owner(k), after.Owner(k)
		if bo != ao {
			moved++
			if ao != "n5" {
				t.Fatalf("join moved %q from %s to %s (not the new node)", k, bo, ao)
			}
		}
	}
	ideal := len(keys) / 6
	if moved > 2*ideal {
		t.Fatalf("join moved %d keys, ideal %d — not minimal movement", moved, ideal)
	}
	if moved < ideal/3 {
		t.Fatalf("join moved only %d keys, ideal %d — new node underloaded", moved, ideal)
	}

	// Leave n2: only n2's keys change owner.
	smaller, err := NewRing([]string{"n0", "n1", "n3", "n4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved = 0
	for _, k := range keys {
		bo, so := before.Owner(k), smaller.Owner(k)
		if bo != so {
			moved++
			if bo != "n2" {
				t.Fatalf("leave moved %q whose owner was %s, not the departed node", k, bo)
			}
		}
	}
	ideal = len(keys) / 5
	if moved > 2*ideal {
		t.Fatalf("leave moved %d keys, ideal %d", moved, ideal)
	}
}

// TestRingReplicaSetDisjoint: replica sets are distinct nodes, primary
// first, never more than the ring has.
func TestRingReplicaSetDisjoint(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c", "d"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(3000) {
		for _, n := range []int{1, 2, 3, 4, 9} {
			owners := r.OwnersInto(k, n, nil)
			want := n
			if want > 4 {
				want = 4
			}
			if len(owners) != want {
				t.Fatalf("OwnersInto(%q, %d) = %v, want %d nodes", k, n, owners, want)
			}
			seen := map[string]bool{}
			for _, o := range owners {
				if seen[o] {
					t.Fatalf("replica set for %q has duplicate %q: %v", k, o, owners)
				}
				seen[o] = true
			}
			if owners[0] != r.Owner(k) {
				t.Fatalf("replica set for %q does not start at the primary: %v vs %s",
					k, owners, r.Owner(k))
			}
		}
	}
}

// TestRingBalance: with default vnodes, per-node primary ownership stays
// within a reasonable band of even.
func TestRingBalance(t *testing.T) {
	nodes := []string{"n0", "n1", "n2", "n3"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := testKeys(40000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	ideal := len(keys) / len(nodes)
	for _, n := range nodes {
		if c := counts[n]; c < ideal/2 || c > 2*ideal {
			t.Fatalf("node %s owns %d keys, ideal %d — ring badly unbalanced: %v", n, c, ideal, counts)
		}
	}
}

func TestRingRejectsBadConfigs(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
}
