package cluster

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"znscache/internal/server"
)

// memBackend is a concurrent map backend for the node servers under test.
type memBackend struct {
	mu      sync.Mutex
	m       map[string][]byte
	lastTTL time.Duration
}

func newMemBackend() *memBackend { return &memBackend{m: make(map[string][]byte)} }

func (b *memBackend) Get(key string) ([]byte, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[key]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

func (b *memBackend) Set(key string, value []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[key] = append([]byte(nil), value...)
	return nil
}

func (b *memBackend) SetWithTTL(key string, value []byte, ttl time.Duration) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[key] = append([]byte(nil), value...)
	b.lastTTL = ttl
	return nil
}

func (b *memBackend) Delete(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.m[key]
	delete(b.m, key)
	return ok
}

func (b *memBackend) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}

func (b *memBackend) has(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.m[key]
	return ok
}

// node under test: a real server over a memBackend.
type testNode struct {
	node Node
	srv  *server.Server
	be   *memBackend
}

func startNodes(t *testing.T, names ...string) map[string]*testNode {
	t.Helper()
	nodes := make(map[string]*testNode, len(names))
	for _, name := range names {
		be := newMemBackend()
		srv, err := server.New(server.Config{Backend: be})
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve() //nolint:errcheck
		n := &testNode{node: Node{Name: name, Addr: srv.Addr()}, srv: srv, be: be}
		nodes[name] = n
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck
		})
	}
	return nodes
}

func nodeList(nodes map[string]*testNode, names ...string) []Node {
	out := make([]Node, 0, len(names))
	for _, n := range names {
		out = append(out, nodes[n].node)
	}
	return out
}

// TestReplicatedWritesLandOnOwners: every acked write is present on exactly
// the R ring owners, and on no other node.
func TestReplicatedWritesLandOnOwners(t *testing.T) {
	nodes := startNodes(t, "n0", "n1", "n2")
	rt, err := New(Config{Nodes: nodeList(nodes, "n0", "n1", "n2"), Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	keys := testKeys(200)
	for _, k := range keys {
		if err := rt.Set(k, []byte("v-"+k)); err != nil {
			t.Fatalf("Set(%s): %v", k, err)
		}
	}
	for _, k := range keys {
		owners := rt.ring.OwnersInto(k, 2, nil)
		for name, n := range nodes {
			want := containsStr(owners, name)
			if got := n.be.has(k); got != want {
				t.Fatalf("key %s on node %s = %v, want %v (owners %v)", k, name, got, want, owners)
			}
		}
	}
}

// TestReadFailoverAfterNodeDeath: with R=2, killing one node and marking it
// down leaves every key readable from its surviving replica — correct value,
// never wrong data.
func TestReadFailoverAfterNodeDeath(t *testing.T) {
	nodes := startNodes(t, "n0", "n1", "n2")
	rt, err := New(Config{Nodes: nodeList(nodes, "n0", "n1", "n2"), Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	keys := testKeys(150)
	for _, k := range keys {
		if err := rt.Set(k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}

	// Kill n1 hard (force-close, no drain) and tell the router.
	victim := "n1"
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	nodes[victim].srv.Shutdown(ctx) //nolint:errcheck
	rt.MarkDown(victim)

	for _, k := range keys {
		v, hit, gerr := rt.Get(k)
		if gerr != nil {
			t.Fatalf("Get(%s) after kill: %v", k, gerr)
		}
		if !hit {
			t.Fatalf("Get(%s) missed: R=2 must leave a surviving replica", k)
		}
		if !bytes.Equal(v, []byte("v-"+k)) {
			t.Fatalf("Get(%s) = %q, want %q — wrong data after failover", k, v, "v-"+k)
		}
	}
	if rt.MetricsSnapshot().NodesDown != 1 {
		t.Fatalf("nodesDown = %d, want 1", rt.MetricsSnapshot().NodesDown)
	}
}

// TestJoinWarmsNewOwner: a joining node receives the keys it now owns,
// copied from the pre-join owners, and serves them immediately.
func TestJoinWarmsNewOwner(t *testing.T) {
	nodes := startNodes(t, "n0", "n1", "n2")
	rt, err := New(Config{Nodes: nodeList(nodes, "n0", "n1"), Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	keys := testKeys(300)
	for _, k := range keys {
		if err := rt.Set(k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}

	moved, err := rt.Join(nodes["n2"].node, keys)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("join moved no keys — warming did nothing")
	}
	captured := 0
	for _, k := range keys {
		if rt.ring.Owner(k) != "n2" {
			continue
		}
		captured++
		if !nodes["n2"].be.has(k) {
			t.Fatalf("key %s now owned by n2 but not warmed onto it", k)
		}
		v, hit, gerr := rt.Get(k)
		if gerr != nil || !hit || !bytes.Equal(v, []byte("v-"+k)) {
			t.Fatalf("Get(%s) after join = (%q, %v, %v)", k, v, hit, gerr)
		}
	}
	if captured == 0 {
		t.Fatal("new node captured no keys — ring did not rebalance")
	}
	if moved != captured {
		t.Fatalf("moved %d keys but new node owns %d", moved, captured)
	}
}

// TestLeaveRehomesKeys: a graceful leave copies the departing node's keys to
// their new owners before the node's pool closes.
func TestLeaveRehomesKeys(t *testing.T) {
	nodes := startNodes(t, "n0", "n1", "n2")
	rt, err := New(Config{Nodes: nodeList(nodes, "n0", "n1", "n2"), Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	keys := testKeys(300)
	for _, k := range keys {
		if err := rt.Set(k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	departed := 0
	for _, k := range keys {
		if rt.ring.Owner(k) == "n1" {
			departed++
		}
	}
	if departed == 0 {
		t.Fatal("test needs n1 to own some keys")
	}

	moved, err := rt.Leave("n1", keys)
	if err != nil {
		t.Fatal(err)
	}
	if moved != departed {
		t.Fatalf("leave moved %d keys, departing node owned %d", moved, departed)
	}
	for _, k := range keys {
		v, hit, gerr := rt.Get(k)
		if gerr != nil || !hit || !bytes.Equal(v, []byte("v-"+k)) {
			t.Fatalf("Get(%s) after leave = (%q, %v, %v)", k, v, hit, gerr)
		}
	}
	if containsStr(rt.Nodes(), "n1") {
		t.Fatal("departed node still in the ring")
	}
}

// TestGetMultiScatterGather: a multiget spanning all nodes resolves every
// key — hits with the right values, misses as plain misses.
func TestGetMultiScatterGather(t *testing.T) {
	nodes := startNodes(t, "n0", "n1", "n2")
	rt, err := New(Config{Nodes: nodeList(nodes, "n0", "n1", "n2"), Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	present := testKeys(60)
	for _, k := range present {
		if err := rt.Set(k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	keys := append(append([]string(nil), present...), "missing-a", "missing-b")
	vals := make([][]byte, len(keys))
	hits := make([]bool, len(keys))
	errs := make([]error, len(keys))
	rt.GetMulti(keys, vals, hits, errs)
	for i, k := range keys {
		if errs[i] != nil {
			t.Fatalf("GetMulti %s: %v", k, errs[i])
		}
		if i < len(present) {
			if !hits[i] || !bytes.Equal(vals[i], []byte("v-"+k)) {
				t.Fatalf("GetMulti %s = (%q, %v), want hit", k, vals[i], hits[i])
			}
		} else if hits[i] {
			t.Fatalf("GetMulti %s hit, want miss", k)
		}
	}
}

// TestHotKeyReadsSpreadOverReplicas: once the detector promotes a key, its
// reads rotate across the whole replica set instead of hammering the primary.
func TestHotKeyReadsSpreadOverReplicas(t *testing.T) {
	nodes := startNodes(t, "n0", "n1", "n2")
	rt, err := New(Config{
		Nodes: nodeList(nodes, "n0", "n1", "n2"), Replication: 3,
		HotWindow: 100, HotTopK: 2, HotMinCount: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	if err := rt.Set("celebrity", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		if _, hit, gerr := rt.Get("celebrity"); gerr != nil || !hit {
			t.Fatalf("hot read %d = (%v, %v)", i, hit, gerr)
		}
	}
	m := rt.MetricsSnapshot()
	if m.HotReads == 0 {
		t.Fatal("hot-key reads never engaged")
	}
	if m.ReplicaReads == 0 {
		t.Fatal("hot reads never left the primary")
	}
}

// TestWriteTTLForwarded: a TTL'd write reaches the backends with (roughly)
// the TTL intact, clamped to the relative range.
func TestWriteTTLForwarded(t *testing.T) {
	nodes := startNodes(t, "n0")
	rt, err := New(Config{Nodes: nodeList(nodes, "n0"), Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	if err := rt.SetWithTTL("k", []byte("v"), 90*time.Second); err != nil {
		t.Fatal(err)
	}
	nodes["n0"].be.mu.Lock()
	ttl := nodes["n0"].be.lastTTL
	nodes["n0"].be.mu.Unlock()
	if ttl != 90*time.Second {
		t.Fatalf("backend TTL = %v, want 90s", ttl)
	}
	if got := exptimeFor(400 * 24 * time.Hour); got != relativeExpCutoff {
		t.Fatalf("exptimeFor(400d) = %d, want clamp to %d", got, relativeExpCutoff)
	}
	if got := exptimeFor(300 * time.Millisecond); got != 1 {
		t.Fatalf("exptimeFor(300ms) = %d, want round-up to 1", got)
	}
}

// TestDeleteRemovesAllReplicas: a routed delete clears every replica.
func TestDeleteRemovesAllReplicas(t *testing.T) {
	nodes := startNodes(t, "n0", "n1", "n2")
	rt, err := New(Config{Nodes: nodeList(nodes, "n0", "n1", "n2"), Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	for _, k := range testKeys(50) {
		if err := rt.Set(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if !rt.Delete(k) {
			t.Fatalf("Delete(%s) reported not-found", k)
		}
		for name, n := range nodes {
			if n.be.has(k) {
				t.Fatalf("key %s survived delete on %s", k, name)
			}
		}
		if _, hit, _ := rt.Get(k); hit {
			t.Fatalf("key %s readable after delete", k)
		}
	}
}

func BenchmarkRingOwners(b *testing.B) {
	r, err := NewRing([]string{"n0", "n1", "n2", "n3", "n4", "n5", "n6", "n7"}, 0)
	if err != nil {
		b.Fatal(err)
	}
	var dst []string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = r.OwnersInto(fmt.Sprintf("key-%d", i&1023), 3, dst[:0])
	}
	_ = dst
}
