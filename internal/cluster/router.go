package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"znscache/internal/server"
)

var (
	errPoolClosed = errors.New("cluster: connection pool closed")
	// errNoReplicas is returned when every replica of a key is down or
	// unreachable — the cluster-wide analogue of a device error.
	errNoReplicas = errors.New("cluster: no live replica")
)

// relativeExpCutoff mirrors memcached's 30-day rule: TTLs forwarded to
// backends must stay in the relative range, so longer ones clamp here (a
// cache may always expire early).
const relativeExpCutoff = 30 * 24 * 3600

// Node names one cluster member and its memcached address.
type Node struct {
	Name string
	Addr string
}

// Config parameterizes a Router.
type Config struct {
	// Nodes is the initial membership. At least one required.
	Nodes []Node
	// Replication is the replica count R per key (default 1): writes go to
	// the first R distinct ring owners, reads fail over across them. Values
	// above the node count are served by every node.
	Replication int
	// VirtualNodes is the per-node vnode count (default DefaultVirtualNodes).
	VirtualNodes int
	// PoolIdle caps idle pooled connections per backend (default 4).
	PoolIdle int
	// Timeout bounds each backend exchange (default 5s).
	Timeout time.Duration
	// HotWindow is the hot-key detector's window in observed gets (0
	// disables hot-key read replication).
	HotWindow int
	// HotTopK is how many keys each window may promote (default 8).
	HotTopK int
	// HotMinCount is the minimum per-window count for promotion (default 2).
	HotMinCount int
}

// member is one live backend: its node identity, connection pool, and a down
// flag flipped by MarkDown so in-flight operations stop routing to it.
type member struct {
	node Node
	pool *pool
	down atomic.Bool
}

// Router consistent-hashes keys across the cluster's backends. It implements
// the serving layer's Backend (plus MultiGetter), so a Server fronting a
// Router is the cacheproxy: same protocol in, scattered protocol out.
//
// Writes go to all R owners; the ack tracks the primary (first owner), with
// replica failures counted but not surfaced — the acknowledged-write oracle
// in the harness drills exactly this asymmetry. Reads try the primary first
// and fail over across replicas on transport errors; keys promoted by the
// hot-key detector spread reads over the whole replica set round-robin.
type Router struct {
	cfg Config
	r   int
	hot *HotKeys
	rr  atomic.Uint64 // round-robin cursor for hot-key replica choice

	mu      sync.RWMutex // guards ring + members (topology)
	ring    *Ring
	members map[string]*member

	m rmetrics
}

// New builds a Router over the configured nodes.
func New(cfg Config) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: Config.Nodes is required")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 1
	}
	if cfg.HotTopK <= 0 {
		cfg.HotTopK = 8
	}
	names := make([]string, 0, len(cfg.Nodes))
	members := make(map[string]*member, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		if _, dup := members[n.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate node %q", n.Name)
		}
		names = append(names, n.Name)
		members[n.Name] = &member{node: n, pool: newPool(n.Addr, cfg.PoolIdle, cfg.Timeout)}
	}
	ring, err := NewRing(names, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	return &Router{
		cfg:     cfg,
		r:       cfg.Replication,
		hot:     NewHotKeys(cfg.HotWindow, cfg.HotTopK, cfg.HotMinCount),
		ring:    ring,
		members: members,
	}, nil
}

// Close releases every backend connection pool.
func (rt *Router) Close() {
	rt.mu.Lock()
	ms := rt.members
	rt.members = map[string]*member{}
	rt.mu.Unlock()
	for _, mb := range ms {
		mb.pool.close()
	}
}

// HotKeys exposes the detector (for tests and the bench harness).
func (rt *Router) HotKeys() *HotKeys { return rt.hot }

// Nodes returns the current member names, sorted.
func (rt *Router) Nodes() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return append([]string(nil), rt.ring.Nodes()...)
}

// Owners returns key's current replica set as node names, primary first —
// the topology view the harness's drills record before killing a node.
func (rt *Router) Owners(key string) []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.OwnersInto(key, rt.r, nil)
}

// replicaSet resolves key's replica members under the current topology.
func (rt *Router) replicaSet(key string) []*member {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	names := rt.ring.OwnersInto(key, rt.r, nil)
	ms := make([]*member, 0, len(names))
	for _, n := range names {
		if mb := rt.members[n]; mb != nil {
			ms = append(ms, mb)
		}
	}
	return ms
}

// Get serves a read: primary first (any replica, rotating, for hot keys),
// failing over across the replica set on backend errors. A miss from a live
// replica is authoritative — replicated writes put the value everywhere, so
// absence on one live owner means absence.
func (rt *Router) Get(key string) ([]byte, bool, error) {
	rt.m.gets.Inc()
	rt.hot.Observe(key)
	ms := rt.replicaSet(key)
	start := 0
	if len(ms) > 1 && rt.hot.IsHot(key) {
		start = int(rt.rr.Add(1) % uint64(len(ms)))
		rt.m.hotReads.Inc()
	}
	return rt.getFailover(key, ms, start, nil)
}

// getFailover walks the replica set from start, skipping down members and
// avoid, returning the first live answer.
func (rt *Router) getFailover(key string, ms []*member, start int, avoid *member) ([]byte, bool, error) {
	var lastErr error
	tried := 0
	for i := 0; i < len(ms); i++ {
		mb := ms[(start+i)%len(ms)]
		if mb == avoid || mb.down.Load() {
			continue
		}
		if tried > 0 {
			rt.m.failovers.Inc()
		}
		tried++
		v, hit, err := rt.getFrom(mb, key)
		if err != nil {
			rt.m.backendErrors.Inc()
			lastErr = err
			continue
		}
		if (start+i)%len(ms) != 0 {
			rt.m.replicaReads.Inc()
		}
		return v, hit, nil
	}
	if lastErr == nil {
		lastErr = errNoReplicas
	}
	return nil, false, lastErr
}

func (rt *Router) getFrom(mb *member, key string) ([]byte, bool, error) {
	cl, err := mb.pool.get()
	if err != nil {
		return nil, false, err
	}
	r, err := cl.Get(key)
	if err != nil {
		mb.pool.drop(cl)
		return nil, false, err
	}
	mb.pool.put(cl)
	if r.Err != "" {
		return nil, false, fmt.Errorf("cluster: %s: %s", mb.node.Name, r.Err)
	}
	return r.Value, r.Hit, nil
}

// GetMulti scatter-gathers one multiget per backend: keys group by their
// routed member (primary, or a rotating replica for hot keys), each group is
// one pipelined exchange, and unresolved keys — transport failures or the
// truncated-response error marking — fail over to the key's other replicas
// individually. Implements server.MultiGetter.
func (rt *Router) GetMulti(keys []string, vals [][]byte, hits []bool, errs []error) {
	rt.m.gets.Add(uint64(len(keys)))
	type group struct {
		mb  *member
		idx []int
	}
	groups := make(map[*member]*group, 4)
	sets := make([][]*member, len(keys))
	for i, key := range keys {
		rt.hot.Observe(key)
		ms := rt.replicaSet(key)
		sets[i] = ms
		start := 0
		if len(ms) > 1 && rt.hot.IsHot(key) {
			start = int(rt.rr.Add(1) % uint64(len(ms)))
			rt.m.hotReads.Inc()
		}
		var mb *member
		for j := 0; j < len(ms); j++ {
			cand := ms[(start+j)%len(ms)]
			if !cand.down.Load() {
				mb = cand
				if (start+j)%len(ms) != 0 {
					rt.m.replicaReads.Inc()
				}
				break
			}
		}
		if mb == nil {
			vals[i], hits[i], errs[i] = nil, false, errNoReplicas
			continue
		}
		g := groups[mb]
		if g == nil {
			g = &group{mb: mb}
			groups[mb] = g
		}
		g.idx = append(g.idx, i)
	}
	for _, g := range groups {
		rt.execGroup(g.mb, g.idx, keys, vals, hits, errs, sets)
	}
}

// execGroup runs one member's multiget and scatters the results; failed or
// unresolved keys retry on their remaining replicas.
func (rt *Router) execGroup(mb *member, idx []int, keys []string, vals [][]byte, hits []bool, errs []error, sets [][]*member) {
	gk := make([]string, len(idx))
	for j, i := range idx {
		gk[j] = keys[i]
	}
	cl, err := mb.pool.get()
	var rs []server.Resp
	if err == nil {
		cl.QueueGetMulti(gk)
		rs, err = cl.Exchange()
		if err != nil {
			mb.pool.drop(cl)
		} else {
			mb.pool.put(cl)
		}
	}
	if err != nil {
		rt.m.backendErrors.Inc()
		for _, i := range idx {
			vals[i], hits[i], errs[i] = rt.getFailover(keys[i], sets[i], 0, mb)
		}
		return
	}
	for j, i := range idx {
		r := rs[j]
		if r.Err != "" {
			// Unresolved under the truncated response: this key may or may
			// not exist on mb — ask another replica rather than report a
			// fabricated miss.
			rt.m.backendErrors.Inc()
			vals[i], hits[i], errs[i] = rt.getFailover(keys[i], sets[i], 0, mb)
			continue
		}
		// Resp.Value is a per-response allocation, safe to retain after the
		// client returns to the pool.
		vals[i], hits[i], errs[i] = r.Value, r.Hit, nil
	}
}

// Set replicates the write to all R owners. The ack is the primary's.
func (rt *Router) Set(key string, value []byte) error {
	rt.m.sets.Inc()
	return rt.write(key, value, 0)
}

// SetWithTTL replicates a TTL'd write. The TTL forwards as a relative
// exptime (clamped to memcached's 30-day relative range — a cache may
// expire early), measured on each backend's own clock.
func (rt *Router) SetWithTTL(key string, value []byte, ttl time.Duration) error {
	rt.m.sets.Inc()
	return rt.write(key, value, ttl)
}

func (rt *Router) write(key string, value []byte, ttl time.Duration) error {
	ms := rt.replicaSet(key)
	if len(ms) == 0 {
		return errNoReplicas
	}
	exptime := exptimeFor(ttl)
	var primaryErr error
	for i, mb := range ms {
		var err error
		if mb.down.Load() {
			err = fmt.Errorf("cluster: %s is down", mb.node.Name)
		} else {
			err = rt.setOn(mb, key, value, exptime)
			if err != nil {
				rt.m.backendErrors.Inc()
			}
		}
		if err != nil {
			if i == 0 {
				primaryErr = err
			} else {
				rt.m.replicaWriteErrors.Inc()
			}
		}
	}
	return primaryErr
}

func (rt *Router) setOn(mb *member, key string, value []byte, exptime int64) error {
	cl, err := mb.pool.get()
	if err != nil {
		return err
	}
	r, err := cl.Set(key, 0, exptime, value)
	if err != nil {
		mb.pool.drop(cl)
		return err
	}
	mb.pool.put(cl)
	if r.Err != "" {
		return fmt.Errorf("cluster: %s: %s", mb.node.Name, r.Err)
	}
	return nil
}

// exptimeFor renders a TTL as a memcached relative exptime: whole seconds,
// rounded up so sub-second TTLs don't become "store forever", clamped to the
// 30-day relative range.
func exptimeFor(ttl time.Duration) int64 {
	if ttl <= 0 {
		return 0
	}
	secs := int64((ttl + time.Second - 1) / time.Second)
	if secs > relativeExpCutoff {
		secs = relativeExpCutoff
	}
	return secs
}

// Delete removes key from every replica; found if any replica had it.
func (rt *Router) Delete(key string) bool {
	rt.m.deletes.Inc()
	found := false
	for _, mb := range rt.replicaSet(key) {
		if mb.down.Load() {
			continue
		}
		cl, err := mb.pool.get()
		if err != nil {
			rt.m.backendErrors.Inc()
			continue
		}
		r, err := cl.Delete(key)
		if err != nil {
			mb.pool.drop(cl)
			rt.m.backendErrors.Inc()
			continue
		}
		mb.pool.put(cl)
		if r.Hit {
			found = true
		}
	}
	return found
}

// Len sums curr_items across live members. Replicated keys count once per
// replica — it is a capacity/balance signal, not a distinct-key count.
func (rt *Router) Len() int {
	rt.mu.RLock()
	ms := make([]*member, 0, len(rt.members))
	for _, mb := range rt.members {
		ms = append(ms, mb)
	}
	rt.mu.RUnlock()
	total := 0
	for _, mb := range ms {
		if mb.down.Load() {
			continue
		}
		if st, err := rt.statsOf(mb); err == nil {
			if n, aerr := strconv.Atoi(st["curr_items"]); aerr == nil {
				total += n
			}
		}
	}
	return total
}

// NodeStats fetches one member's stats map (for the bench harness's
// per-node balance accounting).
func (rt *Router) NodeStats(name string) (map[string]string, error) {
	rt.mu.RLock()
	mb := rt.members[name]
	rt.mu.RUnlock()
	if mb == nil {
		return nil, fmt.Errorf("cluster: unknown node %q", name)
	}
	return rt.statsOf(mb)
}

func (rt *Router) statsOf(mb *member) (map[string]string, error) {
	cl, err := mb.pool.get()
	if err != nil {
		rt.m.backendErrors.Inc()
		return nil, err
	}
	st, err := cl.Stats()
	if err != nil {
		mb.pool.drop(cl)
		rt.m.backendErrors.Inc()
		return nil, err
	}
	mb.pool.put(cl)
	return st, nil
}
