// Package cluster is the scale-out tier over the single-node serving layer:
// a consistent-hash router that spreads keys across N cacheserver backends
// with R-way replicated writes, hot-key read replication, failover reads,
// and node join/leave rebalancing that warms the new owner from the
// overlapping owner's persistent snapshot. The Router implements the serving
// layer's Backend interface, so cmd/cacheproxy is just a cacheserver whose
// backend happens to be the rest of the cluster — clients speak the same
// memcached protocol to a proxy as to a node.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-node vnode count when Config leaves it
// zero: enough points that per-node key balance lands within a few percent
// of even, while a 16-node ring still builds in microseconds.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring: each node contributes vnodes
// points (finalized FNV-1a of "name#i") on a 64-bit circle, and a key is owned by the
// first points clockwise from its hash that belong to distinct nodes. Nodes
// are sorted before placement, so the same node set always builds the same
// ring regardless of insertion order — the determinism the unit tests pin.
// Lookups are lock-free; topology changes build a fresh ring.
type Ring struct {
	nodes  []string
	vnodes int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node int32 // index into nodes
}

// NewRing builds a ring over the given node names.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("cluster: duplicate node %q", sorted[i])
		}
	}
	r := &Ring{
		nodes:  sorted,
		vnodes: vnodes,
		points: make([]ringPoint, 0, len(sorted)*vnodes),
	}
	var buf []byte
	for ni, name := range sorted {
		for v := 0; v < vnodes; v++ {
			buf = append(buf[:0], name...)
			buf = append(buf, '#')
			buf = strconv.AppendInt(buf, int64(v), 10)
			r.points = append(r.points, ringPoint{hash: fnv64(buf), node: int32(ni)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (astronomically rare) break by node index so the sort —
		// and therefore ownership — is still a pure function of the node set.
		return a.node < b.node
	})
	return r, nil
}

// Nodes returns the ring's node names in sorted order. The slice is the
// ring's own; treat it as read-only.
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the node owning key (the primary replica).
func (r *Ring) Owner(key string) string {
	return r.nodes[r.points[r.firstPoint(key)].node]
}

// OwnersInto appends key's replica set — the first n distinct nodes
// clockwise from the key's hash, primary first — to dst and returns it.
// Fewer than n nodes in the ring yields all of them.
func (r *Ring) OwnersInto(key string, n int, dst []string) []string {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 {
		return dst
	}
	base := len(dst)
	i := r.firstPoint(key)
	for range r.points {
		name := r.nodes[r.points[i].node]
		dup := false
		for _, got := range dst[base:] {
			if got == name {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, name)
			if len(dst)-base == n {
				break
			}
		}
		i++
		if i == len(r.points) {
			i = 0
		}
	}
	return dst
}

// firstPoint returns the index of the first ring point at or clockwise of
// key's hash.
func (r *Ring) firstPoint(key string) int {
	h := fnv64String(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// mix64 finalizes a raw FNV hash before it is used as a ring position.
// FNV-1a avalanches well in its low-order bits but barely at all in the high
// ones, and ring placement orders points by the *full* 64-bit value — so
// sequential keys ("key-000001", "key-000002", …) land adjacent on the circle
// and per-node ownership skews badly. The splitmix64 finalizer spreads every
// input bit across the whole word.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func fnv64(p []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range p {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return mix64(h)
}

func fnv64String(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return mix64(h)
}
