// Package store provides the region stores for three of the paper's four
// schemes: Block-Cache (regions at fixed offsets on a regular SSD),
// File-Cache (regions inside one large file on the F2FS-like filesystem),
// and Zone-Cache (one region per zone on a ZNS device). The fourth scheme,
// Region-Cache, lives in internal/middle because it is the paper's main
// artifact.
package store

import (
	"errors"
	"fmt"
	"time"

	"znscache/internal/cache"
	"znscache/internal/device"
	"znscache/internal/obs"
	"znscache/internal/stats"
)

// Errors shared by the stores.
var (
	ErrBadConfig = errors.New("store: invalid configuration")
	ErrRegion    = errors.New("store: region index out of range")
	ErrBounds    = errors.New("store: read beyond region")
)

// BlockStore maps region i to byte range [i*regionSize, (i+1)*regionSize) on
// a block device — exactly how CacheLib uses a raw regular SSD. Eviction is
// a no-op at the device: the region's LBAs are simply overwritten by the
// next flush, and the FTL discovers the dead pages then. The FTL's GC pays
// for that opacity (device-level WA, tail stalls).
type BlockStore struct {
	dev        device.BlockDevice
	regionSize int64
	numRegions int
	scratch    []byte

	// Observability.
	RegionWrites stats.Counter
	RegionReads  stats.Counter
	Evictions    stats.Counter
}

// NewBlockStore builds a store over dev. If numRegions is 0, the device
// capacity is divided fully into regions.
func NewBlockStore(dev device.BlockDevice, regionSize int64, numRegions int) (*BlockStore, error) {
	if regionSize <= 0 || regionSize%device.SectorSize != 0 {
		return nil, fmt.Errorf("%w: region size %d", ErrBadConfig, regionSize)
	}
	max := int(dev.Size() / regionSize)
	if numRegions == 0 {
		numRegions = max
	}
	if numRegions <= 0 || numRegions > max {
		return nil, fmt.Errorf("%w: %d regions of %d bytes exceed device %d",
			ErrBadConfig, numRegions, regionSize, dev.Size())
	}
	return &BlockStore{dev: dev, regionSize: regionSize, numRegions: numRegions}, nil
}

// NumRegions implements cache.RegionStore.
func (s *BlockStore) NumRegions() int { return s.numRegions }

// RegionSize implements cache.RegionStore.
func (s *BlockStore) RegionSize() int64 { return s.regionSize }

func (s *BlockStore) check(id int, off int64, n int) error {
	if id < 0 || id >= s.numRegions {
		return fmt.Errorf("%w: %d", ErrRegion, id)
	}
	if off < 0 || n < 0 || off+int64(n) > s.regionSize {
		return fmt.Errorf("%w: [%d,+%d)", ErrBounds, off, n)
	}
	return nil
}

// WriteRegion implements cache.RegionStore.
func (s *BlockStore) WriteRegion(now time.Duration, id int, data []byte) (time.Duration, error) {
	if err := s.check(id, 0, int(s.regionSize)); err != nil {
		return 0, err
	}
	s.RegionWrites.Inc()
	return s.dev.WriteAt(now, data, int(s.regionSize), int64(id)*s.regionSize)
}

// ReadRegion implements cache.RegionStore.
func (s *BlockStore) ReadRegion(now time.Duration, id int, p []byte, n int, off int64) (time.Duration, error) {
	if err := s.check(id, off, n); err != nil {
		return 0, err
	}
	if p == nil {
		if cap(s.scratch) < n {
			s.scratch = make([]byte, n)
		}
		p = s.scratch[:n]
	}
	s.RegionReads.Inc()
	return s.dev.ReadAt(now, p[:n], int64(id)*s.regionSize+off)
}

// EvictRegion implements cache.RegionStore. No device action: the LBA range
// is reused in place by the next WriteRegion, mirroring CacheLib on raw
// block devices.
func (s *BlockStore) EvictRegion(time.Duration, int) (time.Duration, error) {
	s.Evictions.Inc()
	return 0, nil
}

// RegionReadableBytes implements the cache engine's recovery cross-check.
// Block regions are fixed LBA ranges: every byte is always readable (a torn
// flush leaves a new-prefix/old-suffix mix, which the engine's per-item
// checksum rejects at read time), so the full region is reported.
func (s *BlockStore) RegionReadableBytes(id int) (int64, bool) {
	if id < 0 || id >= s.numRegions {
		return 0, false
	}
	return s.regionSize, true
}

// MetricsInto implements obs.MetricSource.
func (s *BlockStore) MetricsInto(r *obs.Registry, labels obs.Labels) {
	registerStoreMetrics(r, labels.With("layer", "store").With("store", "block"),
		&s.RegionWrites, &s.RegionReads, &s.Evictions)
}

// registerStoreMetrics registers the counter trio every region store keeps,
// so the three stores expose identical series distinguished by the store
// label.
func registerStoreMetrics(r *obs.Registry, ls obs.Labels, writes, reads, evicts *stats.Counter) {
	r.Counter("store_region_writes_total", "Whole-region flushes accepted by the store", ls, writes)
	r.Counter("store_region_reads_total", "Region read requests served by the store", ls, reads)
	r.Counter("store_region_evictions_total", "Region evictions signalled to the store", ls, evicts)
}

// stallReporter is implemented by devices whose writes can block the caller
// beyond the media time (the regular SSD's foreground GC).
type stallReporter interface {
	TakeLastWriteStall() time.Duration
}

// WriteSyncCost implements cache.SyncCoster: the write syscall holds the
// flusher for as long as the device's internal GC stalled the write — the
// "uncontrollable GC" path of the paper's Block-Cache.
func (s *BlockStore) WriteSyncCost() time.Duration {
	if sr, ok := s.dev.(stallReporter); ok {
		return sr.TakeLastWriteStall()
	}
	return 0
}

var _ cache.RegionStore = (*BlockStore)(nil)
var _ cache.SyncCoster = (*BlockStore)(nil)
