package store

import (
	"fmt"
	"time"

	"znscache/internal/cache"
	"znscache/internal/device"
	"znscache/internal/f2fs"
	"znscache/internal/obs"
	"znscache/internal/stats"
)

// FileStore keeps regions inside one large preallocated file on the
// F2FS-like filesystem — the File-Cache scheme (Figure 1a). Every region
// I/O goes through file indexing, and region overwrites become filesystem
// out-of-place updates that the segment cleaner must collect later: the
// "too heavy for cache access patterns" management the paper criticizes.
type FileStore struct {
	file       *f2fs.File
	regionSize int64
	numRegions int
	scratch    []byte

	// Observability.
	RegionWrites stats.Counter
	RegionReads  stats.Counter
	Evictions    stats.Counter
}

// NewFileStore builds a store over file. If numRegions is 0 the file is
// divided fully into regions.
func NewFileStore(file *f2fs.File, regionSize int64, numRegions int) (*FileStore, error) {
	if regionSize <= 0 || regionSize%device.SectorSize != 0 {
		return nil, fmt.Errorf("%w: region size %d", ErrBadConfig, regionSize)
	}
	max := int(file.Size() / regionSize)
	if numRegions == 0 {
		numRegions = max
	}
	if numRegions <= 0 || numRegions > max {
		return nil, fmt.Errorf("%w: %d regions of %d bytes exceed file %d",
			ErrBadConfig, numRegions, regionSize, file.Size())
	}
	return &FileStore{file: file, regionSize: regionSize, numRegions: numRegions}, nil
}

// NumRegions implements cache.RegionStore.
func (s *FileStore) NumRegions() int { return s.numRegions }

// RegionSize implements cache.RegionStore.
func (s *FileStore) RegionSize() int64 { return s.regionSize }

func (s *FileStore) check(id int, off int64, n int) error {
	if id < 0 || id >= s.numRegions {
		return fmt.Errorf("%w: %d", ErrRegion, id)
	}
	if off < 0 || n < 0 || off+int64(n) > s.regionSize {
		return fmt.Errorf("%w: [%d,+%d)", ErrBounds, off, n)
	}
	return nil
}

// WriteRegion implements cache.RegionStore.
func (s *FileStore) WriteRegion(now time.Duration, id int, data []byte) (time.Duration, error) {
	if err := s.check(id, 0, int(s.regionSize)); err != nil {
		return 0, err
	}
	s.RegionWrites.Inc()
	return s.file.WriteAt(now, data, int(s.regionSize), int64(id)*s.regionSize)
}

// ReadRegion implements cache.RegionStore.
func (s *FileStore) ReadRegion(now time.Duration, id int, p []byte, n int, off int64) (time.Duration, error) {
	if err := s.check(id, off, n); err != nil {
		return 0, err
	}
	if p == nil {
		if cap(s.scratch) < n {
			s.scratch = make([]byte, n)
		}
		p = s.scratch[:n]
	}
	s.RegionReads.Inc()
	return s.file.ReadAt(now, p[:n], int64(id)*s.regionSize+off)
}

// EvictRegion implements cache.RegionStore. Like the raw block device, the
// file range is overwritten in place by the next flush; the filesystem only
// learns the old blocks are dead when the overwrite lands.
func (s *FileStore) EvictRegion(time.Duration, int) (time.Duration, error) {
	s.Evictions.Inc()
	return 0, nil
}

// RegionReadableBytes implements the cache engine's recovery cross-check.
// The backing file is preallocated, so the whole region range is always
// readable; torn flushes surface as per-item checksum misses instead.
func (s *FileStore) RegionReadableBytes(id int) (int64, bool) {
	if id < 0 || id >= s.numRegions {
		return 0, false
	}
	return s.regionSize, true
}

// MetricsInto implements obs.MetricSource.
func (s *FileStore) MetricsInto(r *obs.Registry, labels obs.Labels) {
	registerStoreMetrics(r, labels.With("layer", "store").With("store", "file"),
		&s.RegionWrites, &s.RegionReads, &s.Evictions)
}

// WriteSyncCost implements cache.SyncCoster: a region flush through the
// filesystem burns per-block CPU (VFS, page-cache copy, node updates) in
// the flusher thread itself, unlike a raw-device DMA write.
func (s *FileStore) WriteSyncCost() time.Duration {
	return s.file.MetaCostPerBlock() * time.Duration(s.regionSize/device.SectorSize)
}

var _ cache.RegionStore = (*FileStore)(nil)
var _ cache.SyncCoster = (*FileStore)(nil)
