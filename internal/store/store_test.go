package store

import (
	"bytes"
	"errors"
	"testing"

	"znscache/internal/device"
	"znscache/internal/f2fs"
	"znscache/internal/fault"
	"znscache/internal/flash"
	"znscache/internal/ssd"
	"znscache/internal/zns"
)

const testRegion = 8 * device.SectorSize // 32 KiB regions

func testGeo() flash.Geometry {
	return flash.Geometry{
		Channels: 2, DiesPerChan: 2, BlocksPerDie: 32,
		PagesPerBlock: 16, PageSize: device.SectorSize,
	}
}

func newSSD(t *testing.T) *ssd.SSD {
	t.Helper()
	d, err := ssd.New(ssd.Config{Geometry: testGeo(), Timing: flash.DefaultTiming(), OPRatio: 0.2, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newZNS(t *testing.T) *zns.Device {
	t.Helper()
	d, err := zns.New(zns.Config{
		Geometry: testGeo(), Timing: flash.DefaultTiming(),
		BlocksPerZone: 8, MaxOpenZones: 8, StoreData: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBlockStoreRoundTrip(t *testing.T) {
	s, err := NewBlockStore(newSSD(t), testRegion, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRegions() <= 0 || s.RegionSize() != testRegion {
		t.Fatalf("geometry: %d regions of %d", s.NumRegions(), s.RegionSize())
	}
	want := bytes.Repeat([]byte{0x77}, testRegion)
	if _, err := s.WriteRegion(0, 2, want); err != nil {
		t.Fatalf("WriteRegion: %v", err)
	}
	got := make([]byte, device.SectorSize)
	if _, err := s.ReadRegion(0, 2, got, len(got), device.SectorSize); err != nil {
		t.Fatalf("ReadRegion: %v", err)
	}
	if !bytes.Equal(got, want[:device.SectorSize]) {
		t.Fatal("round-trip mismatch")
	}
}

func TestBlockStoreBounds(t *testing.T) {
	s, _ := NewBlockStore(newSSD(t), testRegion, 2)
	if _, err := s.WriteRegion(0, 2, nil); !errors.Is(err, ErrRegion) {
		t.Fatalf("oob region err = %v", err)
	}
	if _, err := s.ReadRegion(0, 0, nil, device.SectorSize, testRegion); !errors.Is(err, ErrBounds) {
		t.Fatalf("oob offset err = %v", err)
	}
	if _, err := NewBlockStore(newSSD(t), 1000, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unaligned region size err = %v", err)
	}
	if _, err := NewBlockStore(newSSD(t), testRegion, 10000); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("too many regions err = %v", err)
	}
}

func TestBlockStoreOverwriteSameLBAs(t *testing.T) {
	// Overwriting a region must not consume new logical space (the FTL
	// sees an in-place overwrite and invalidates the old flash pages).
	dev := newSSD(t)
	s, _ := NewBlockStore(dev, testRegion, 2)
	for i := 0; i < 10; i++ {
		if _, err := s.WriteRegion(0, 0, nil); err != nil {
			t.Fatalf("overwrite %d: %v", i, err)
		}
	}
	if got := dev.MappedSectors(); got != testRegion/device.SectorSize {
		t.Fatalf("MappedSectors = %d, want %d", got, testRegion/device.SectorSize)
	}
}

func TestBlockStoreEvictIsFree(t *testing.T) {
	s, _ := NewBlockStore(newSSD(t), testRegion, 2)
	lat, err := s.EvictRegion(0, 0)
	if err != nil || lat != 0 {
		t.Fatalf("EvictRegion = (%v, %v), want free no-op", lat, err)
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	fs, err := f2fs.Mount(newZNS(t), f2fs.Config{OPRatio: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("cache", 4*testRegion)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewFileStore(f, testRegion, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRegions() != 4 {
		t.Fatalf("NumRegions = %d", s.NumRegions())
	}
	want := bytes.Repeat([]byte{0x31}, testRegion)
	if _, err := s.WriteRegion(0, 3, want); err != nil {
		t.Fatalf("WriteRegion: %v", err)
	}
	got := make([]byte, 2*device.SectorSize)
	if _, err := s.ReadRegion(0, 3, got, len(got), 0); err != nil {
		t.Fatalf("ReadRegion: %v", err)
	}
	if !bytes.Equal(got, want[:len(got)]) {
		t.Fatal("round-trip mismatch")
	}
}

func TestFileStoreAccountsFSWriteAmp(t *testing.T) {
	dev := newZNS(t)
	fs, _ := f2fs.Mount(dev, f2fs.Config{OPRatio: 0.25, CheckpointBytes: testRegion})
	f, _ := fs.Create("cache", 4*testRegion)
	s, _ := NewFileStore(f, testRegion, 0)
	// Write all regions twice: overwrites force out-of-place updates and
	// checkpoints; media > host at the filesystem layer.
	for round := 0; round < 2; round++ {
		for id := 0; id < 4; id++ {
			if _, err := s.WriteRegion(0, id, nil); err != nil {
				t.Fatalf("write round %d region %d: %v", round, id, err)
			}
		}
	}
	if fs.WA.Media() <= fs.WA.Host() {
		t.Fatalf("fs WA media %d not above host %d", fs.WA.Media(), fs.WA.Host())
	}
}

func TestZoneStoreRegionEqualsZone(t *testing.T) {
	dev := newZNS(t)
	s, err := NewZoneStore(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRegions() != dev.NumZones() {
		t.Fatalf("NumRegions = %d, want %d zones", s.NumRegions(), dev.NumZones())
	}
	if s.RegionSize() != dev.ZoneSize() {
		t.Fatalf("RegionSize = %d, want zone size %d", s.RegionSize(), dev.ZoneSize())
	}
}

func TestZoneStoreWriteResetCycle(t *testing.T) {
	dev := newZNS(t)
	s, _ := NewZoneStore(dev, 4)
	want := bytes.Repeat([]byte{0x42}, int(dev.ZoneSize()))
	if _, err := s.WriteRegion(0, 1, want); err != nil {
		t.Fatalf("WriteRegion: %v", err)
	}
	got := make([]byte, device.SectorSize)
	if _, err := s.ReadRegion(0, 1, got, len(got), 0); err != nil {
		t.Fatalf("ReadRegion: %v", err)
	}
	if !bytes.Equal(got, want[:device.SectorSize]) {
		t.Fatal("round-trip mismatch")
	}
	// Evict = reset; the zone must be writable from scratch again.
	if _, err := s.EvictRegion(0, 1); err != nil {
		t.Fatalf("EvictRegion: %v", err)
	}
	zi, _ := dev.ZoneInfo(1)
	if zi.State != zns.ZoneEmpty {
		t.Fatalf("zone state after evict = %v, want EMPTY", zi.State)
	}
	if _, err := s.WriteRegion(0, 1, want); err != nil {
		t.Fatalf("rewrite after evict: %v", err)
	}
	if err := fault.CheckZoneContract(dev); err != nil {
		t.Fatalf("zone contract violated after write/reset cycle: %v", err)
	}
}

func TestZoneStoreZeroWA(t *testing.T) {
	// The Zone-Cache invariant: flash programs == host sectors, always.
	dev := newZNS(t)
	s, _ := NewZoneStore(dev, 4)
	for round := 0; round < 3; round++ {
		for id := 0; id < 4; id++ {
			if round > 0 {
				if _, err := s.EvictRegion(0, id); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.WriteRegion(0, id, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	wantPrograms := uint64(3 * 4 * int(dev.ZoneSize()/device.SectorSize))
	if got := dev.Array().Programs.Load(); got != wantPrograms {
		t.Fatalf("flash programs = %d, want %d (zero WA)", got, wantPrograms)
	}
	if err := fault.CheckZoneContract(dev); err != nil {
		t.Fatalf("zone contract violated after evict/rewrite churn: %v", err)
	}
}

func TestZoneStoreBounds(t *testing.T) {
	s, _ := NewZoneStore(newZNS(t), 2)
	if _, err := s.WriteRegion(0, 5, nil); !errors.Is(err, ErrRegion) {
		t.Fatalf("oob region err = %v", err)
	}
	if _, err := s.EvictRegion(0, -1); !errors.Is(err, ErrRegion) {
		t.Fatalf("negative region err = %v", err)
	}
	if _, err := NewZoneStore(newZNS(t), 100); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("too many regions err = %v", err)
	}
}
