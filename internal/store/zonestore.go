package store

import (
	"fmt"
	"time"

	"znscache/internal/cache"
	"znscache/internal/obs"
	"znscache/internal/stats"
	"znscache/internal/zns"
)

// ZoneStore maps one region to exactly one zone — the Zone-Cache scheme
// (Figure 1b). Region eviction becomes a zone reset: no data migration,
// zero write amplification, no GC, and no over-provisioning; the entire
// device capacity serves the cache. The price is that the region size is
// dictated by the zone size, with everything §3.2 says follows from that.
type ZoneStore struct {
	dev        zns.Zoned
	numRegions int
	scratch    []byte

	// Observability.
	RegionWrites stats.Counter
	RegionReads  stats.Counter
	Evictions    stats.Counter
}

// NewZoneStore builds the store. If numRegions is 0, every zone of the
// device becomes a region; otherwise the first numRegions zones are used
// (the paper's experiments pin the zone count, e.g. 25 zones in Figure 2).
func NewZoneStore(dev zns.Zoned, numRegions int) (*ZoneStore, error) {
	if numRegions == 0 {
		numRegions = dev.NumZones()
	}
	if numRegions <= 0 || numRegions > dev.NumZones() {
		return nil, fmt.Errorf("%w: %d regions for %d zones", ErrBadConfig, numRegions, dev.NumZones())
	}
	return &ZoneStore{dev: dev, numRegions: numRegions}, nil
}

// NumRegions implements cache.RegionStore.
func (s *ZoneStore) NumRegions() int { return s.numRegions }

// RegionSize implements cache.RegionStore: the zone size, by construction.
func (s *ZoneStore) RegionSize() int64 { return s.dev.ZoneSize() }

func (s *ZoneStore) check(id int, off int64, n int) error {
	if id < 0 || id >= s.numRegions {
		return fmt.Errorf("%w: %d", ErrRegion, id)
	}
	if off < 0 || n < 0 || off+int64(n) > s.dev.ZoneSize() {
		return fmt.Errorf("%w: [%d,+%d)", ErrBounds, off, n)
	}
	return nil
}

// WriteRegion implements cache.RegionStore: one sequential whole-zone write
// starting at the zone's (reset) write pointer. A zone whose write pointer
// is not at the start — a torn previous flush, or a rewrite that skipped
// EvictRegion — is reset first, so a failed write never wedges the region:
// the engine's retry finds a clean zone.
func (s *ZoneStore) WriteRegion(now time.Duration, id int, data []byte) (time.Duration, error) {
	if err := s.check(id, 0, int(s.dev.ZoneSize())); err != nil {
		return 0, err
	}
	var resync time.Duration
	if info, err := s.dev.ZoneInfo(id); err == nil && info.WP != 0 {
		rlat, err := s.dev.Reset(now, id)
		if err != nil {
			return 0, err
		}
		resync = rlat
	}
	s.RegionWrites.Inc()
	lat, err := s.dev.Write(now+resync, data, int(s.dev.ZoneSize()), int64(id)*s.dev.ZoneSize())
	return resync + lat, err
}

// ReadRegion implements cache.RegionStore.
func (s *ZoneStore) ReadRegion(now time.Duration, id int, p []byte, n int, off int64) (time.Duration, error) {
	if err := s.check(id, off, n); err != nil {
		return 0, err
	}
	if p == nil {
		if cap(s.scratch) < n {
			s.scratch = make([]byte, n)
		}
		p = s.scratch[:n]
	}
	s.RegionReads.Inc()
	return s.dev.Read(now, p[:n], int64(id)*s.dev.ZoneSize()+off)
}

// EvictRegion implements cache.RegionStore: a zone reset. "When a region is
// evicted, the zone can be directly reset without any data migration"
// (§3.2) — the zero-WA property.
func (s *ZoneStore) EvictRegion(now time.Duration, id int) (time.Duration, error) {
	if id < 0 || id >= s.numRegions {
		return 0, fmt.Errorf("%w: %d", ErrRegion, id)
	}
	s.Evictions.Inc()
	return s.dev.Reset(now, id)
}

// RegionReadableBytes implements the cache engine's recovery cross-check:
// the readable extent of a region is its zone's write pointer, so a
// snapshot whose Fill exceeds it (the zone was reset or torn after the
// snapshot was taken) is detected and truncated at Restore.
func (s *ZoneStore) RegionReadableBytes(id int) (int64, bool) {
	if id < 0 || id >= s.numRegions {
		return 0, false
	}
	info, err := s.dev.ZoneInfo(id)
	if err != nil {
		return 0, false
	}
	return info.WP, true
}

// MetricsInto implements obs.MetricSource.
func (s *ZoneStore) MetricsInto(r *obs.Registry, labels obs.Labels) {
	registerStoreMetrics(r, labels.With("layer", "store").With("store", "zone"),
		&s.RegionWrites, &s.RegionReads, &s.Evictions)
}

// Device exposes the underlying ZNS device for stats.
func (s *ZoneStore) Device() zns.Zoned { return s.dev }

var _ cache.RegionStore = (*ZoneStore)(nil)
