package store

import (
	"errors"
	"testing"

	"znscache/internal/device"
	"znscache/internal/f2fs"
)

func TestBlockStoreScratchReads(t *testing.T) {
	// nil destination: a metadata-only read through the reusable scratch.
	s, _ := NewBlockStore(newSSD(t), testRegion, 2)
	s.WriteRegion(0, 0, nil)
	if _, err := s.ReadRegion(0, 0, nil, testRegion, 0); err != nil {
		t.Fatalf("scratch read: %v", err)
	}
	// Second scratch read reuses the buffer (no growth path).
	if _, err := s.ReadRegion(0, 0, nil, device.SectorSize, 0); err != nil {
		t.Fatalf("second scratch read: %v", err)
	}
}

func TestBlockStoreSyncCostReportsGCStall(t *testing.T) {
	dev := newSSD(t)
	s, _ := NewBlockStore(dev, testRegion, 0)
	// Before any GC, sync cost is zero.
	if c := s.WriteSyncCost(); c != 0 {
		t.Fatalf("idle sync cost = %v", c)
	}
	// Churn all regions repeatedly to trigger device GC; eventually a
	// write reports a nonzero stall.
	var sawStall bool
	for round := 0; round < 40 && !sawStall; round++ {
		for id := 0; id < s.NumRegions(); id++ {
			if _, err := s.WriteRegion(0, id, nil); err != nil {
				t.Fatal(err)
			}
			if s.WriteSyncCost() > 0 {
				sawStall = true
			}
		}
	}
	if !sawStall {
		t.Fatal("no GC stall surfaced through WriteSyncCost")
	}
}

func TestFileStoreScratchAndBounds(t *testing.T) {
	fs, _ := f2fs.Mount(newZNS(t), f2fs.Config{OPRatio: 0.25})
	f, _ := fs.Create("c", 4*testRegion)
	s, _ := NewFileStore(f, testRegion, 0)
	s.WriteRegion(0, 1, nil)
	if _, err := s.ReadRegion(0, 1, nil, device.SectorSize, 0); err != nil {
		t.Fatalf("scratch read: %v", err)
	}
	if _, err := s.ReadRegion(0, 9, nil, device.SectorSize, 0); !errors.Is(err, ErrRegion) {
		t.Fatalf("oob region err = %v", err)
	}
	if _, err := s.WriteRegion(0, -1, nil); !errors.Is(err, ErrRegion) {
		t.Fatalf("negative region err = %v", err)
	}
	if _, err := s.ReadRegion(0, 1, nil, testRegion, device.SectorSize); !errors.Is(err, ErrBounds) {
		t.Fatalf("overrun err = %v", err)
	}
	if _, err := s.EvictRegion(0, 1); err != nil {
		t.Fatalf("evict: %v", err)
	}
	if s.WriteSyncCost() <= 0 {
		t.Fatal("file store reports no per-flush CPU cost")
	}
}

func TestFileStoreBadConfig(t *testing.T) {
	fs, _ := f2fs.Mount(newZNS(t), f2fs.Config{OPRatio: 0.25})
	f, _ := fs.Create("c", 4*testRegion)
	if _, err := NewFileStore(f, 1000, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unaligned region size err = %v", err)
	}
	if _, err := NewFileStore(f, testRegion, 99); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("too many regions err = %v", err)
	}
}

func TestZoneStoreScratchAndBounds(t *testing.T) {
	dev := newZNS(t)
	s, _ := NewZoneStore(dev, 3)
	s.WriteRegion(0, 0, nil)
	if _, err := s.ReadRegion(0, 0, nil, device.SectorSize, 0); err != nil {
		t.Fatalf("scratch read: %v", err)
	}
	if _, err := s.ReadRegion(0, 0, nil, device.SectorSize, dev.ZoneSize()); !errors.Is(err, ErrBounds) {
		t.Fatalf("overrun err = %v", err)
	}
	if _, err := s.ReadRegion(0, -1, nil, device.SectorSize, 0); !errors.Is(err, ErrRegion) {
		t.Fatalf("negative region err = %v", err)
	}
	if s.Device() != dev {
		t.Fatal("Device accessor wrong")
	}
	if _, err := NewZoneStore(dev, -2); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative count err = %v", err)
	}
}
