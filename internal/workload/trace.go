package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace replays operations from a text stream, one op per line:
//
//	get <key>
//	set <key> <valueLen>
//	del <key>
//
// Blank lines and lines starting with '#' are skipped. This is the format
// produced by common cache-trace converters (one op per line, whitespace
// separated) and is sufficient to replay production traces against any of
// the four schemes via cachebench or the public API.
type Trace struct {
	sc   *bufio.Scanner
	line int
	err  error
}

// NewTrace wraps a reader. The reader is consumed lazily by Next.
func NewTrace(r io.Reader) *Trace {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	return &Trace{sc: sc}
}

// Err returns the first parse or read error encountered.
func (t *Trace) Err() error { return t.err }

// Line returns the number of lines consumed so far.
func (t *Trace) Line() int { return t.line }

// Next returns the next operation; ok is false at end of stream or on the
// first error (check Err). After an error the trace is dead: every further
// Next returns false with the same error — without this, a scanner that hit
// ErrTooLong would keep serving its truncated buffer as a token, and the
// replay would parse garbage ops past the point of failure.
func (t *Trace) Next() (op Op, ok bool) {
	if t.err != nil {
		return Op{}, false
	}
	for t.sc.Scan() {
		t.line++
		text := strings.TrimSpace(t.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		parsed, err := parseTraceOp(fields)
		if err != nil {
			t.err = fmt.Errorf("trace line %d: %w", t.line, err)
			return Op{}, false
		}
		return parsed, true
	}
	if err := t.sc.Err(); err != nil && t.err == nil {
		// The scanner failed reading the line after the last one consumed
		// (e.g. bufio.ErrTooLong on a line beyond the 1 MiB token limit).
		// Stamp that line number so a bad record in a multi-gigabyte trace
		// is findable.
		t.err = fmt.Errorf("trace line %d: %w", t.line+1, err)
	}
	return Op{}, false
}

func parseTraceOp(fields []string) (Op, error) {
	if len(fields) < 2 {
		return Op{}, fmt.Errorf("want 'op key [len]', got %d fields", len(fields))
	}
	key := fields[1]
	if key == "" {
		return Op{}, fmt.Errorf("empty key")
	}
	switch fields[0] {
	case "get", "GET":
		op := Op{Kind: OpGet, Key: key}
		if len(fields) >= 3 {
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return Op{}, fmt.Errorf("bad get size %q", fields[2])
			}
			op.ValLen = n // size hint for read-through fills
		}
		return op, nil
	case "set", "SET", "put", "PUT":
		if len(fields) < 3 {
			return Op{}, fmt.Errorf("set needs a value length")
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 0 {
			return Op{}, fmt.Errorf("bad set size %q", fields[2])
		}
		return Op{Kind: OpSet, Key: key, ValLen: n}, nil
	case "del", "DEL", "delete", "DELETE":
		return Op{Kind: OpDelete, Key: key}, nil
	default:
		return Op{}, fmt.Errorf("unknown op %q", fields[0])
	}
}
