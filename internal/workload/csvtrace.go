package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVTrace adapts public cache traces in the wiki/Twitter-cluster CSV shape
// into the same op stream Trace produces:
//
//	ts,key,size,op[,extra...]
//
// One record per line. ts is accepted and ignored (replay is paced by the
// simulation, not wall time); size is the object size in bytes (used as the
// set length or the get fill hint); op accepts the aliases common across
// published trace dumps (get/read/1 for reads, set/write/put/2 for writes,
// del/delete/3 for invalidations). A record with three fields is a read:
// several public dumps omit the op column entirely because everything is a
// request. A header line, blank lines, and '#' comments are skipped. Extra
// trailing columns (client id, TTL, ...) are tolerated.
type CSVTrace struct {
	sc   *bufio.Scanner
	line int
	err  error
}

// NewCSVTrace wraps a reader. The reader is consumed lazily by Next.
func NewCSVTrace(r io.Reader) *CSVTrace {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	return &CSVTrace{sc: sc}
}

// Err returns the first parse or read error encountered.
func (t *CSVTrace) Err() error { return t.err }

// Line returns the number of lines consumed so far.
func (t *CSVTrace) Line() int { return t.line }

// Next returns the next operation; ok is false at end of stream or on the
// first error (check Err). Like Trace, the stream is dead after an error.
func (t *CSVTrace) Next() (op Op, ok bool) {
	if t.err != nil {
		return Op{}, false
	}
	for t.sc.Scan() {
		t.line++
		text := strings.TrimSpace(t.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if t.line == 1 && looksLikeHeader(fields) {
			continue
		}
		parsed, err := parseCSVOp(fields)
		if err != nil {
			t.err = fmt.Errorf("csv trace line %d: %w", t.line, err)
			return Op{}, false
		}
		return parsed, true
	}
	if err := t.sc.Err(); err != nil && t.err == nil {
		t.err = fmt.Errorf("csv trace line %d: %w", t.line+1, err)
	}
	return Op{}, false
}

// looksLikeHeader reports whether the first record is a column-name header
// ("ts,key,size,op"): its timestamp column is not numeric.
func looksLikeHeader(fields []string) bool {
	if len(fields) == 0 {
		return false
	}
	_, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
	return err != nil
}

func parseCSVOp(fields []string) (Op, error) {
	if len(fields) < 3 {
		return Op{}, fmt.Errorf("want 'ts,key,size[,op]', got %d fields", len(fields))
	}
	if _, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64); err != nil {
		return Op{}, fmt.Errorf("bad timestamp %q", fields[0])
	}
	key := strings.TrimSpace(fields[1])
	if key == "" {
		return Op{}, fmt.Errorf("empty key")
	}
	size, err := strconv.Atoi(strings.TrimSpace(fields[2]))
	if err != nil || size < 0 {
		return Op{}, fmt.Errorf("bad size %q", fields[2])
	}
	kind := OpGet
	if len(fields) >= 4 {
		switch strings.ToLower(strings.TrimSpace(fields[3])) {
		case "get", "read", "gets", "1", "":
			kind = OpGet
		case "set", "write", "put", "add", "2":
			kind = OpSet
		case "del", "delete", "remove", "3":
			kind = OpDelete
		default:
			return Op{}, fmt.Errorf("unknown op %q", fields[3])
		}
	}
	op := Op{Kind: kind, Key: key}
	if kind != OpDelete {
		op.ValLen = size
	}
	return op, nil
}
