package workload

import (
	"testing"
	"testing/quick"
)

func TestZipfRangeAndDeterminism(t *testing.T) {
	a := NewZipf(1000, 0.99, 42)
	b := NewZipf(1000, 0.99, 42)
	for i := 0; i < 1000; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatal("same-seed zipf streams diverged")
		}
		if va < 0 || va >= 1000 {
			t.Fatalf("zipf value %d out of range", va)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(100000, 0.99, 7)
	const n = 200000
	top := 0
	for i := 0; i < n; i++ {
		if z.Next() < 100 { // hottest 0.1% of keys
			top++
		}
	}
	// Zipf(0.99): the top 0.1% should draw way above uniform share (0.1%).
	if float64(top)/n < 0.20 {
		t.Fatalf("top-100 share %.3f, want ≥0.20 for zipf 0.99", float64(top)/n)
	}
}

func TestZipfLargeN(t *testing.T) {
	z := NewZipf(100_000_000, 0.99, 3)
	for i := 0; i < 1000; i++ {
		if v := z.Next(); v < 0 || v >= 100_000_000 {
			t.Fatalf("large-n zipf out of range: %d", v)
		}
	}
}

func TestExpRangeSkewIncreasesWithER(t *testing.T) {
	share := func(er float64) float64 {
		g := NewExpRange(1_000_000, er, 11)
		const n = 100000
		top := 0
		for i := 0; i < n; i++ {
			if g.Next() < 1000 {
				top++
			}
		}
		return float64(top) / n
	}
	s15, s25 := share(15), share(25)
	if s25 <= s15 {
		t.Fatalf("ER=25 top-share %.3f not above ER=15 %.3f", s25, s15)
	}
	if s15 == 0 {
		t.Fatal("ER=15 never hit hot keys")
	}
}

func TestExpRangeBounds(t *testing.T) {
	g := NewExpRange(1000, 25, 5)
	for i := 0; i < 10000; i++ {
		if v := g.Next(); v < 0 || v >= 1000 {
			t.Fatalf("exp-range value %d out of range", v)
		}
	}
}

func TestBCOpMix(t *testing.T) {
	b := NewBC(BCConfig{Keys: 10000, Seed: 1})
	counts := map[OpKind]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		op := b.Next()
		counts[op.Kind]++
		if op.Kind == OpSet && op.ValLen == 0 {
			t.Fatal("set with zero value length")
		}
		if op.Key == "" {
			t.Fatal("empty key")
		}
	}
	within := func(got int, wantPct int) bool {
		want := n * wantPct / 100
		return got > want*9/10 && got < want*11/10
	}
	if !within(counts[OpGet], 50) || !within(counts[OpSet], 30) || !within(counts[OpDelete], 20) {
		t.Fatalf("op mix = %v, want ~50/30/20 of %d", counts, n)
	}
}

func TestBCValueSizesFromDistribution(t *testing.T) {
	b := NewBC(BCConfig{Keys: 100, ValueSizes: []int{100, 200}, ValueWeights: []int{1, 1}, Seed: 2})
	seen := map[int]int{}
	for i := 0; i < 10000; i++ {
		if op := b.Next(); op.Kind == OpSet {
			seen[op.ValLen]++
		}
	}
	if len(seen) != 2 || seen[100] == 0 || seen[200] == 0 {
		t.Fatalf("value sizes = %v, want both 100 and 200", seen)
	}
}

func TestKeyNameFixedWidth(t *testing.T) {
	if len(KeyName(0)) != len(KeyName(999_999_999)) {
		t.Fatal("KeyName not fixed width")
	}
	if KeyName(5) == KeyName(6) {
		t.Fatal("KeyName collision")
	}
}

func TestFillRandomVisitsEveryKeyOnce(t *testing.T) {
	const n = 5000
	f := NewFillRandom(n, 64, 9)
	seen := make([]bool, n)
	count := 0
	for {
		op, ok := f.Next()
		if !ok {
			break
		}
		if op.Kind != OpSet || op.ValLen != 64 {
			t.Fatalf("bad op %+v", op)
		}
		var idx int64
		if _, err := fmtSscanf(op.Key, &idx); err != nil {
			t.Fatalf("unparseable key %q", op.Key)
		}
		if idx < 0 || idx >= n || seen[idx] {
			t.Fatalf("key %d out of range or repeated", idx)
		}
		seen[idx] = true
		count++
	}
	if count != n {
		t.Fatalf("emitted %d keys, want %d", count, n)
	}
	if f.Remaining() != 0 {
		t.Fatalf("Remaining = %d", f.Remaining())
	}
}

func TestFillRandomNotSequential(t *testing.T) {
	f := NewFillRandom(10000, 64, 13)
	ascending := 0
	var prev int64 = -1
	for i := 0; i < 1000; i++ {
		op, _ := f.Next()
		var idx int64
		fmtSscanf(op.Key, &idx)
		if idx == prev+1 {
			ascending++
		}
		prev = idx
	}
	if ascending > 100 {
		t.Fatalf("%d/1000 consecutive keys ascending: not shuffled", ascending)
	}
}

func TestPermuterBijection(t *testing.T) {
	if err := quick.Check(func(seed uint64, sz uint16) bool {
		n := int64(sz%2000) + 1
		p := newPermuter(n, seed)
		seen := make([]bool, n)
		for i := int64(0); i < n; i++ {
			v := p.at(i)
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// fmtSscanf parses the KeyName format back to an index.
func fmtSscanf(key string, out *int64) (int, error) {
	var v int64
	n := 0
	for i := 4; i < len(key); i++ {
		v = v*10 + int64(key[i]-'0')
		n++
	}
	*out = v
	return n, nil
}
