// CDN-flavoured large-object workload. Four properties distinguish CDN
// traffic from the memcached-style bc mix and all four are modeled here:
//
//   - Heavy-tailed object sizes: a bounded Pareto over [MinSize, MaxSize].
//     The size is a deterministic property of the object's identity (hashed
//     from the stable object id), not a fresh sample per op — refetching an
//     object always refetches the same bytes.
//   - Zipf popularity with diurnal shift: every DiurnalPeriod requests the
//     popularity ranking rotates by a fixed stride through the catalog, so
//     the hot set drifts the way follower time zones drag a CDN's working
//     set around the clock. Cache contents earned under the old hot set
//     go cold and must be re-earned.
//   - Range requests: most CDN bytes move as byte-range reads (video
//     segments, partial downloads, resumed transfers). RangePct of reads
//     request a bounded segment at a random offset; the rest read the
//     whole object.
//   - TTL churn: each object carries a deterministic TTL drawn from
//     [TTLMin, TTLMax], so expiry constantly re-opens admission decisions
//     even for popular objects.
//
// The generator is a pure function of its seed: same seed, same op stream.
package workload

import (
	"time"

	"znscache/internal/sim"
)

// CDNOp is one generated large-object operation.
type CDNOp struct {
	// Key is the stable object key.
	Key string
	// Size is the full object size in bytes (a property of the key).
	Size int64
	// Off/Len describe the requested byte range of a read; Len == Size and
	// Off == 0 for a full-object read. Meaningless for deletes.
	Off, Len int64
	// TTL is the object's freshness lifetime, applied when a miss fills.
	TTL time.Duration
	// Delete marks an invalidation (origin purge) instead of a read.
	Delete bool
}

// CDNConfig parameterizes the generator.
type CDNConfig struct {
	// Objects is the catalog size (default 2000).
	Objects int64
	// Theta is the zipf popularity skew (default 0.99).
	Theta float64
	// Alpha is the Pareto shape for object sizes (default 1.2; smaller is
	// heavier-tailed).
	Alpha float64
	// MinSize/MaxSize bound object sizes in bytes (default 32 KiB / 2 MiB).
	MinSize, MaxSize int64
	// RangePct is the percentage of reads that are byte-range requests
	// instead of full-object reads (default 70).
	RangePct int
	// SegMin/SegMax bound range-request lengths in bytes (default
	// 16 KiB / 256 KiB), truncated to the object.
	SegMin, SegMax int64
	// DelPct is the percentage of ops that are invalidations (default 2).
	DelPct int
	// TTLMin/TTLMax bound per-object TTLs (default 2m / 20m of simulated
	// time). TTLMin < 0 disables expiry.
	TTLMin, TTLMax time.Duration
	// DiurnalPeriod rotates the popularity ranking every this many ops
	// (default 0: no rotation). Each rotation shifts the hot set by
	// Objects/24 — one "hour" of catalog drift.
	DiurnalPeriod int64
	Seed          uint64
}

func (c *CDNConfig) fillDefaults() {
	if c.Objects == 0 {
		c.Objects = 2000
	}
	if c.Theta == 0 {
		c.Theta = 0.99
	}
	if c.Alpha == 0 {
		c.Alpha = 1.2
	}
	if c.MinSize == 0 {
		c.MinSize = 32 << 10
	}
	if c.MaxSize == 0 {
		c.MaxSize = 2 << 20
	}
	if c.MaxSize < c.MinSize {
		c.MaxSize = c.MinSize
	}
	if c.RangePct == 0 {
		c.RangePct = 70
	}
	if c.SegMin == 0 {
		c.SegMin = 16 << 10
	}
	if c.SegMax == 0 {
		c.SegMax = 256 << 10
	}
	if c.DelPct == 0 {
		c.DelPct = 2
	}
	if c.TTLMin == 0 {
		c.TTLMin = 2 * time.Minute
	}
	if c.TTLMax == 0 {
		c.TTLMax = 20 * time.Minute
	}
}

// CDN is the large-object op generator.
type CDN struct {
	cfg   CDNConfig
	rng   *sim.Rand
	zipf  *Zipf
	sizes ParetoSizes
	phase int64
	ops   int64
	names []string
}

// NewCDN builds a generator. Same config (including seed) replays the same
// op stream.
func NewCDN(cfg CDNConfig) *CDN {
	cfg.fillDefaults()
	g := &CDN{
		cfg:   cfg,
		rng:   sim.NewRand(cfg.Seed*0x9e3779b97f4a7c15 + 0xcdcdcd),
		zipf:  NewZipf(cfg.Objects, cfg.Theta, cfg.Seed+7),
		sizes: ParetoSizes{Alpha: cfg.Alpha, Min: int(cfg.MinSize), Max: int(cfg.MaxSize)},
	}
	if cfg.Objects <= internKeysUpTo {
		g.names = make([]string, cfg.Objects)
	}
	return g
}

// mix64 is a splitmix-style finalizer used to derive stable per-object
// properties (size, TTL) from the object id.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SizeOf returns the stable size of object id: the bounded-Pareto inverse
// CDF evaluated at a hash-derived uniform, so the catalog's size profile is
// heavy-tailed but each object's size never changes.
func (g *CDN) SizeOf(id int64) int64 {
	h := mix64(uint64(id) ^ g.cfg.Seed ^ 0x5c1e5c1e5c1e5c1)
	r := sim.NewRand(h)
	return int64(g.sizes.SampleLen(r))
}

// TTLOf returns the stable TTL of object id in [TTLMin, TTLMax], or 0 (no
// expiry) when TTLMin < 0.
func (g *CDN) TTLOf(id int64) time.Duration {
	if g.cfg.TTLMin < 0 {
		return 0
	}
	span := int64(g.cfg.TTLMax - g.cfg.TTLMin)
	if span <= 0 {
		return g.cfg.TTLMin
	}
	h := mix64(uint64(id)*0x2545f4914f6cdd1d + g.cfg.Seed)
	return g.cfg.TTLMin + time.Duration(int64(h%uint64(span)))
}

// KeyOf renders the stable key of object id.
func (g *CDN) KeyOf(id int64) string {
	if g.names != nil {
		s := g.names[id]
		if s == "" {
			s = cdnKeyName(id)
			g.names[id] = s
		}
		return s
	}
	return cdnKeyName(id)
}

// cdnKeyName renders "cdn-############" without fmt (hot path, like
// KeyName).
func cdnKeyName(i int64) string {
	b := [16]byte{'c', 'd', 'n', '-', '0', '0', '0', '0', '0', '0', '0', '0', '0', '0', '0', '0'}
	for p := 15; p > 3 && i > 0; p-- {
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[:])
}

// Next returns the next operation.
func (g *CDN) Next() CDNOp {
	g.ops++
	if g.cfg.DiurnalPeriod > 0 && g.ops%g.cfg.DiurnalPeriod == 0 {
		stride := g.cfg.Objects / 24
		if stride < 1 {
			stride = 1
		}
		g.phase = (g.phase + stride) % g.cfg.Objects
	}

	if g.rng.Intn(100) < g.cfg.DelPct {
		// Invalidations purge uniformly: origin purges are not focused on
		// the hottest objects.
		id := g.rng.Int63n(g.cfg.Objects)
		return CDNOp{Key: g.KeyOf(id), Size: g.SizeOf(id), Delete: true}
	}

	// The zipf rank is the popularity slot; the diurnal phase maps slots
	// onto drifting catalog ids.
	id := (g.zipf.Next() + g.phase) % g.cfg.Objects
	size := g.SizeOf(id)
	op := CDNOp{Key: g.KeyOf(id), Size: size, TTL: g.TTLOf(id), Off: 0, Len: size}
	if g.rng.Intn(100) < g.cfg.RangePct && size > g.cfg.SegMin {
		// Sample the segment inside [SegMin, min(SegMax, size)]: on the
		// (majority) small objects of the heavy tail this still produces
		// a proper sub-range instead of degenerating to a full read.
		segMax := g.cfg.SegMax
		if segMax > size {
			segMax = size
		}
		length := g.cfg.SegMin + g.rng.Int63n(segMax-g.cfg.SegMin+1)
		op.Off = g.rng.Int63n(size - length + 1)
		op.Len = length
	}
	return op
}
