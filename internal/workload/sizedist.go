// Continuous value-size distributions. The discrete ValueSizes/ValueWeights
// tables model memcached-style small objects well, but CDN traffic is
// heavy-tailed: most objects are small, a few are enormous, and the few
// carry most of the bytes. A bounded Pareto captures that shape with one
// knob (alpha); production trace studies consistently fit web/CDN object
// sizes with alpha between roughly 0.9 and 1.5.
package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"znscache/internal/sim"
)

// SizeDist samples value sizes. Implementations must be deterministic
// functions of the supplied PRNG so same-seed runs replay identically.
type SizeDist interface {
	// SampleLen draws one value size in bytes (always >= 1).
	SampleLen(r *sim.Rand) int
	// MaxLen bounds the sizes SampleLen can return, so payload buffers
	// can be allocated once.
	MaxLen() int
	// String renders the spec form accepted by ParseSizeDist.
	String() string
}

// ParetoSizes is a bounded Pareto (power-law) size distribution over
// [Min, Max] with shape Alpha. Smaller alpha = heavier tail.
type ParetoSizes struct {
	Alpha    float64
	Min, Max int
}

// SampleLen draws by inversion from the bounded Pareto CDF: both bounds
// are folded into the inversion (rather than sampling the unbounded law
// and clamping) so the tail mass lands inside [Min, Max] instead of piling
// up at Max.
func (p ParetoSizes) SampleLen(r *sim.Rand) int {
	u := r.Float64()
	lo := float64(p.Min)
	hi := float64(p.Max)
	// Bounded Pareto inverse CDF: x = (lo^-a - u*(lo^-a - hi^-a))^(-1/a)
	la := math.Pow(lo, -p.Alpha)
	ha := math.Pow(hi, -p.Alpha)
	x := math.Pow(la-u*(la-ha), -1/p.Alpha)
	n := int(x)
	if n < p.Min {
		n = p.Min
	}
	if n > p.Max {
		n = p.Max
	}
	return n
}

// MaxLen implements SizeDist.
func (p ParetoSizes) MaxLen() int { return p.Max }

// String implements SizeDist in the flag-spec form.
func (p ParetoSizes) String() string {
	return fmt.Sprintf("pareto:%g:%d:%d", p.Alpha, p.Min, p.Max)
}

// ParseSizeDist parses a size-distribution spec of the form
// "pareto:<alpha>:<min>:<max>" (bytes). An empty spec returns (nil, nil):
// the caller falls back to its discrete table.
func ParseSizeDist(spec string) (SizeDist, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "pareto":
		if len(parts) != 4 {
			return nil, fmt.Errorf("workload: size dist %q: want pareto:<alpha>:<min>:<max>", spec)
		}
		alpha, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || alpha <= 0 {
			return nil, fmt.Errorf("workload: size dist %q: bad alpha", spec)
		}
		min, err := strconv.Atoi(parts[2])
		if err != nil || min < 1 {
			return nil, fmt.Errorf("workload: size dist %q: bad min", spec)
		}
		max, err := strconv.Atoi(parts[3])
		if err != nil || max < min {
			return nil, fmt.Errorf("workload: size dist %q: bad max", spec)
		}
		return ParetoSizes{Alpha: alpha, Min: min, Max: max}, nil
	default:
		return nil, fmt.Errorf("workload: unknown size distribution %q (supported: pareto)", parts[0])
	}
}
