package workload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"znscache/internal/sim"
)

func TestCDNSameSeedDeterminism(t *testing.T) {
	cfg := CDNConfig{Objects: 500, Seed: 42, DiurnalPeriod: 100}
	a, b := NewCDN(cfg), NewCDN(cfg)
	for i := 0; i < 5000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("op %d diverged: %+v vs %+v", i, x, y)
		}
	}
	// A different seed must produce a different stream.
	c := NewCDN(CDNConfig{Objects: 500, Seed: 43, DiurnalPeriod: 100})
	same := 0
	a2 := NewCDN(cfg)
	for i := 0; i < 1000; i++ {
		if a2.Next() == c.Next() {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("seeds 42 and 43 produced near-identical streams (%d/1000 equal)", same)
	}
}

func TestCDNOpInvariants(t *testing.T) {
	g := NewCDN(CDNConfig{Objects: 300, Seed: 7, DiurnalPeriod: 250})
	sizes := make(map[string]int64)
	ttls := make(map[string]time.Duration)
	ranges, fulls, dels := 0, 0, 0
	for i := 0; i < 20000; i++ {
		op := g.Next()
		if !strings.HasPrefix(op.Key, "cdn-") {
			t.Fatalf("bad key %q", op.Key)
		}
		if op.Size < 32<<10 || op.Size > 2<<20 {
			t.Fatalf("size %d outside default bounds", op.Size)
		}
		// Size and TTL are stable properties of the key.
		if prev, ok := sizes[op.Key]; ok && prev != op.Size {
			t.Fatalf("key %q changed size %d -> %d", op.Key, prev, op.Size)
		}
		sizes[op.Key] = op.Size
		if op.Delete {
			dels++
			continue
		}
		if prev, ok := ttls[op.Key]; ok && prev != op.TTL {
			t.Fatalf("key %q changed TTL %v -> %v", op.Key, prev, op.TTL)
		}
		ttls[op.Key] = op.TTL
		if op.TTL < 2*time.Minute || op.TTL > 20*time.Minute {
			t.Fatalf("TTL %v outside default bounds", op.TTL)
		}
		if op.Off < 0 || op.Len < 0 || op.Off+op.Len > op.Size {
			t.Fatalf("range [%d,+%d) outside object of %d bytes", op.Off, op.Len, op.Size)
		}
		if op.Off == 0 && op.Len == op.Size {
			fulls++
		} else {
			ranges++
		}
	}
	if dels == 0 || ranges == 0 || fulls == 0 {
		t.Fatalf("mix degenerate: dels=%d ranges=%d fulls=%d", dels, ranges, fulls)
	}
	// Default RangePct=70: range reads should dominate but not monopolize.
	if ranges < fulls {
		t.Fatalf("expected range reads to dominate: ranges=%d fulls=%d", ranges, fulls)
	}
}

func TestCDNDiurnalShiftMovesHotSet(t *testing.T) {
	// With rotation every 500 ops, the most popular key must change as the
	// phase advances; without rotation it must not.
	count := func(period int64) int {
		g := NewCDN(CDNConfig{Objects: 1000, Seed: 3, DiurnalPeriod: period})
		leaders := make(map[string]bool)
		for w := 0; w < 8; w++ {
			freq := make(map[string]int)
			for i := 0; i < 500; i++ {
				op := g.Next()
				if !op.Delete {
					freq[op.Key]++
				}
			}
			best, bestN := "", 0
			for k, n := range freq {
				if n > bestN {
					best, bestN = k, n
				}
			}
			leaders[best] = true
		}
		return len(leaders)
	}
	if n := count(500); n < 2 {
		t.Fatalf("diurnal rotation never moved the hot key (windows saw %d leaders)", n)
	}
	if n := count(0); n != 1 {
		t.Fatalf("static popularity moved the hot key across windows (%d leaders)", n)
	}
}

func TestParetoSizes(t *testing.T) {
	d, err := ParseSizeDist("pareto:1.2:1024:1048576")
	if err != nil {
		t.Fatalf("ParseSizeDist: %v", err)
	}
	p := d.(ParetoSizes)
	if p.Alpha != 1.2 || p.Min != 1024 || p.Max != 1048576 {
		t.Fatalf("parsed %+v", p)
	}
	if d.MaxLen() != 1048576 {
		t.Fatalf("MaxLen = %d", d.MaxLen())
	}
	r := sim.NewRand(1)
	var sum float64
	small := 0
	const n = 200000
	for i := 0; i < n; i++ {
		v := d.SampleLen(r)
		if v < 1024 || v > 1048576 {
			t.Fatalf("sample %d outside bounds", v)
		}
		sum += float64(v)
		if v < 8192 {
			small++
		}
	}
	// Heavy tail: most objects are small, yet the mean is far above the
	// median (for alpha=1.2 over [1k,1M] the mean lands around 5-6 KiB
	// with >75% of mass under 8 KiB).
	if frac := float64(small) / n; frac < 0.6 || frac > 0.95 {
		t.Fatalf("small-object fraction %.2f outside heavy-tail expectation", frac)
	}
	if mean := sum / n; mean < 3000 || mean > 20000 {
		t.Fatalf("mean %.0f outside expectation for alpha=1.2", mean)
	}

	// Spec round-trip.
	if d.String() != "pareto:1.2:1024:1048576" {
		t.Fatalf("String() = %q", d.String())
	}

	for _, bad := range []string{"pareto:0:1:2", "pareto:1.2:0:9", "pareto:1.2:10:5", "pareto:x", "uniform:1:2"} {
		if _, err := ParseSizeDist(bad); err == nil {
			t.Fatalf("ParseSizeDist(%q): want error", bad)
		}
	}
	if d, err := ParseSizeDist(""); d != nil || err != nil {
		t.Fatalf("empty spec: want (nil, nil)")
	}
}

func TestBCValueDist(t *testing.T) {
	bc := NewBC(BCConfig{Keys: 100, Seed: 1, ValueDist: ParetoSizes{Alpha: 1.2, Min: 100, Max: 999}})
	sawSet := false
	for i := 0; i < 1000; i++ {
		op := bc.Next()
		if op.Kind == OpSet {
			sawSet = true
			if op.ValLen < 100 || op.ValLen > 999 {
				t.Fatalf("set len %d outside dist bounds", op.ValLen)
			}
		}
	}
	if !sawSet {
		t.Fatalf("no sets generated")
	}
}

func TestCSVTraceFixtureRoundTrip(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "cdn_sample.csv"))
	if err != nil {
		t.Fatalf("open fixture: %v", err)
	}
	defer f.Close()
	tr := NewCSVTrace(f)
	var ops []Op
	for {
		op, ok := tr.Next()
		if !ok {
			break
		}
		ops = append(ops, op)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("fixture parse: %v", err)
	}
	if len(ops) != 22 {
		t.Fatalf("fixture yielded %d ops, want 22", len(ops))
	}
	// Spot-check shape: first record, the delete, and a set.
	if ops[0] != (Op{Kind: OpGet, Key: "vid-0001-seg-00", ValLen: 524288}) {
		t.Fatalf("first op = %+v", ops[0])
	}
	gets, sets, dels := 0, 0, 0
	for _, op := range ops {
		switch op.Kind {
		case OpGet:
			gets++
		case OpSet:
			sets++
		case OpDelete:
			dels++
			if op.ValLen != 0 {
				t.Fatalf("delete carries a length: %+v", op)
			}
		}
	}
	if gets != 19 || sets != 2 || dels != 1 {
		t.Fatalf("mix = %d/%d/%d, want 19/2/1", gets, sets, dels)
	}
}

func TestCSVTraceParsing(t *testing.T) {
	in := "ts,key,size,op\n" +
		"1.5,k1,100,get\n" +
		"# comment\n" +
		"\n" +
		"2.5,k2,200,WRITE\n" +
		"3.5,k3,300\n" + // no op column: a read
		"4.5,k4,0,delete,extra,cols\n"
	tr := NewCSVTrace(strings.NewReader(in))
	want := []Op{
		{Kind: OpGet, Key: "k1", ValLen: 100},
		{Kind: OpSet, Key: "k2", ValLen: 200},
		{Kind: OpGet, Key: "k3", ValLen: 300},
		{Kind: OpDelete, Key: "k4"},
	}
	for i, w := range want {
		op, ok := tr.Next()
		if !ok {
			t.Fatalf("stream ended at op %d: %v", i, tr.Err())
		}
		if op != w {
			t.Fatalf("op %d = %+v, want %+v", i, op, w)
		}
	}
	if _, ok := tr.Next(); ok {
		t.Fatalf("stream yielded extra ops")
	}
	if tr.Err() != nil {
		t.Fatalf("clean stream errored: %v", tr.Err())
	}

	// Errors carry line numbers and kill the stream.
	bad := NewCSVTrace(strings.NewReader("1.0,k,100,get\nnot-a-ts,k,100,get\n"))
	if _, ok := bad.Next(); !ok {
		t.Fatalf("first record should parse")
	}
	if _, ok := bad.Next(); ok {
		t.Fatalf("bad record should stop the stream")
	}
	if err := bad.Err(); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %v lacks line number", err)
	}
	if _, ok := bad.Next(); ok {
		t.Fatalf("dead stream revived")
	}
}
