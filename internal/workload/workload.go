// Package workload generates the access patterns the paper evaluates with:
// CacheBench's feature_stress/navy/bc mix (50% get, 30% set, 20% delete,
// §4.1) over a skewed key popularity, and db_bench's fillrandom/readrandom
// with the "ReadRandom Exp Range" (ER) skew knob (§4.2).
package workload

import (
	"fmt"
	"math"

	"znscache/internal/sim"
)

// OpKind is a cache operation type.
type OpKind uint8

// Operation kinds of the bc mix.
const (
	OpGet OpKind = iota
	OpSet
	OpDelete
)

// String names the op.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpSet:
		return "set"
	case OpDelete:
		return "del"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one generated cache operation.
type Op struct {
	Kind   OpKind
	Key    string
	ValLen int
}

// Zipf generates values in [0, n) with Zipfian popularity (theta in (0,1);
// ~0.99 matches caching workloads). It is the Gray et al. generator YCSB
// uses, with constants precomputed so Next is O(1).
type Zipf struct {
	rng   *sim.Rand
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

// NewZipf builds a generator over [0, n).
func NewZipf(n int64, theta float64, seed uint64) *Zipf {
	if n < 1 {
		n = 1
	}
	if theta <= 0 || theta >= 1 {
		theta = 0.99
	}
	z := &Zipf{rng: sim.NewRand(seed), n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n int64, theta float64) float64 {
	// For large n, approximate the tail with the integral: zeta(n) ≈
	// zeta(k0) + ∫k0..n x^-theta dx. Exact for small n.
	const exact = 10000
	var sum float64
	limit := n
	if limit > exact {
		limit = exact
	}
	for i := int64(1); i <= limit; i++ {
		sum += math.Pow(float64(i), -theta)
	}
	if n > exact {
		sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(exact), 1-theta)) / (1 - theta)
	}
	return sum
}

// Next returns the next sample; 0 is the hottest value.
func (z *Zipf) Next() int64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v < 0 {
		v = 0
	}
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// ExpRange generates key indices in [0, n) with db_bench's exponential-
// range skew: a log-uniform spread over er decades-of-e, so popularity of
// key k falls off as ~1/k and a larger er concentrates more traffic on the
// hottest keys — "larger ER value means more skewed data" (§4.2).
type ExpRange struct {
	rng *sim.Rand
	n   int64
	er  float64
}

// NewExpRange builds the generator (er of 15 and 25 reproduce Figure 5).
func NewExpRange(n int64, er float64, seed uint64) *ExpRange {
	if n < 1 {
		n = 1
	}
	if er <= 0 {
		er = 15
	}
	return &ExpRange{rng: sim.NewRand(seed), n: n, er: er}
}

// Next returns the next key index; 0 is the hottest key.
func (e *ExpRange) Next() int64 {
	u := e.rng.Float64()
	v := int64(float64(e.n) * math.Exp((u-1)*e.er))
	if v < 0 {
		v = 0
	}
	if v >= e.n {
		v = e.n - 1
	}
	return v
}

// KeyName renders key index i in the fixed-width form both benchmarks use
// (16-byte keys, matching the paper's db_bench configuration). Hand-rolled
// digit fill: this runs once per generated op, and fmt.Sprintf was the
// loadgen's single hottest call.
func KeyName(i int64) string {
	b := [16]byte{'k', 'e', 'y', '-', '0', '0', '0', '0', '0', '0', '0', '0', '0', '0', '0', '0'}
	for p := 15; p > 3 && i > 0; p-- {
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[:])
}

// BCConfig parameterizes the CacheBench-style generator.
type BCConfig struct {
	// Keys is the key-space size (working set; the paper sizes it above
	// the cache so misses exist).
	Keys int64
	// GetPct/SetPct/DelPct are the op mix percentages (default 50/30/20,
	// the feature_stress/navy/bc mix).
	GetPct, SetPct, DelPct int
	// Theta is the zipf skew (default 0.99).
	Theta float64
	// ValueSizes and ValueWeights describe the object-size distribution
	// (defaults approximate navy/bc: small KB-scale objects).
	ValueSizes   []int
	ValueWeights []int
	// ValueDist, when set, replaces the discrete ValueSizes/ValueWeights
	// table with a continuous distribution (e.g. ParetoSizes for
	// CDN-shaped heavy-tailed objects).
	ValueDist SizeDist
	Seed      uint64
}

func (c *BCConfig) fillDefaults() {
	if c.Keys == 0 {
		c.Keys = 1 << 20
	}
	if c.GetPct+c.SetPct+c.DelPct == 0 {
		c.GetPct, c.SetPct, c.DelPct = 50, 30, 20
	}
	if c.Theta == 0 {
		c.Theta = 0.99
	}
	if len(c.ValueSizes) == 0 {
		c.ValueSizes = []int{512, 1024, 4096, 8192, 16384}
		c.ValueWeights = []int{25, 30, 30, 10, 5}
	}
	if len(c.ValueWeights) != len(c.ValueSizes) {
		c.ValueWeights = make([]int, len(c.ValueSizes))
		for i := range c.ValueWeights {
			c.ValueWeights[i] = 1
		}
	}
}

// internKeysUpTo caps the key-name intern table: key spaces at or below
// this size reuse one string per key instead of allocating a fresh name
// every op (a 1M-key table costs ~16 MB of headers, the break-even point).
const internKeysUpTo = 1 << 20

// BC is the CacheBench-style op generator.
type BC struct {
	cfg       BCConfig
	rng       *sim.Rand
	zipf      *Zipf
	weightSum int
	names     []string // lazy key-name interning (small key spaces only)
}

// NewBC builds the generator.
func NewBC(cfg BCConfig) *BC {
	cfg.fillDefaults()
	b := &BC{
		cfg:  cfg,
		rng:  sim.NewRand(cfg.Seed + 1),
		zipf: NewZipf(cfg.Keys, cfg.Theta, cfg.Seed+2),
	}
	if cfg.Keys <= internKeysUpTo {
		b.names = make([]string, cfg.Keys)
	}
	for _, w := range cfg.ValueWeights {
		b.weightSum += w
	}
	return b
}

// keyName is KeyName with interning: under a skewed popularity the same
// hot keys recur constantly, and the per-op string allocation was the
// generator's dominant cost once rendering itself was hand-rolled.
func (b *BC) keyName(i int64) string {
	if b.names == nil {
		return KeyName(i)
	}
	s := b.names[i]
	if s == "" {
		s = KeyName(i)
		b.names[i] = s
	}
	return s
}

// valueLen samples the object-size distribution.
func (b *BC) valueLen() int {
	if b.cfg.ValueDist != nil {
		return b.cfg.ValueDist.SampleLen(b.rng)
	}
	r := b.rng.Intn(b.weightSum)
	for i, w := range b.cfg.ValueWeights {
		if r < w {
			return b.cfg.ValueSizes[i]
		}
		r -= w
	}
	return b.cfg.ValueSizes[len(b.cfg.ValueSizes)-1]
}

// Next returns the next operation. Get ops carry a ValLen too: CacheBench
// drivers insert the object on a miss (read-through fill), and the fill
// needs the object's size. Gets and sets follow the zipf popularity;
// deletes are drawn uniformly — they model invalidations, which in caching
// workloads are not focused on the hottest keys (a hot-focused delete
// stream would cap the achievable hit ratio far below the ~94% the paper's
// bc workload reaches).
func (b *BC) Next() Op {
	r := b.rng.Intn(100)
	switch {
	case r < b.cfg.GetPct:
		return Op{Kind: OpGet, Key: b.keyName(b.zipf.Next()), ValLen: b.valueLen()}
	case r < b.cfg.GetPct+b.cfg.SetPct:
		return Op{Kind: OpSet, Key: b.keyName(b.zipf.Next()), ValLen: b.valueLen()}
	default:
		return Op{Kind: OpDelete, Key: b.keyName(b.rng.Int63n(b.cfg.Keys))}
	}
}

// FillRandom yields n puts over a shuffled dense key space — db_bench's
// fillrandom phase. Keys are visited in pseudo-random order, each exactly
// once, without materializing a permutation (a Feistel-style bijection).
type FillRandom struct {
	n    int64
	next int64
	perm *permuter
	// ValLen is the value size for every put (paper: 64 bytes).
	ValLen int
}

// NewFillRandom builds the sequence.
func NewFillRandom(n int64, valLen int, seed uint64) *FillRandom {
	return &FillRandom{n: n, perm: newPermuter(n, seed), ValLen: valLen}
}

// Next returns the next put, and false once n keys have been emitted.
func (f *FillRandom) Next() (Op, bool) {
	if f.next >= f.n {
		return Op{}, false
	}
	i := f.perm.at(f.next)
	f.next++
	return Op{Kind: OpSet, Key: KeyName(i), ValLen: f.ValLen}, true
}

// Remaining reports how many puts are left.
func (f *FillRandom) Remaining() int64 { return f.n - f.next }

// permuter maps [0,n) to itself bijectively via a 4-round Feistel network
// over the next power-of-two domain with cycle-walking.
type permuter struct {
	n    int64
	bits uint
	keys [4]uint64
}

func newPermuter(n int64, seed uint64) *permuter {
	p := &permuter{n: n}
	r := sim.NewRand(seed)
	for i := range p.keys {
		p.keys[i] = r.Uint64()
	}
	p.bits = 1
	for int64(1)<<p.bits < n {
		p.bits++
	}
	if p.bits%2 != 0 {
		p.bits++
	}
	return p
}

func (p *permuter) at(i int64) int64 {
	v := uint64(i)
	for {
		v = p.feistel(v)
		if int64(v) < p.n {
			return int64(v)
		}
	}
}

func (p *permuter) feistel(v uint64) uint64 {
	half := p.bits / 2
	mask := uint64(1)<<half - 1
	l, r := v>>half, v&mask
	for _, k := range p.keys {
		l, r = r, l^(mix(r+k)&mask)
	}
	return l<<half | r
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}
