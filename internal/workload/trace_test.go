package workload

import (
	"strings"
	"testing"
)

func TestTraceParsesAllOps(t *testing.T) {
	in := `
# production trace excerpt
get photo:1
set photo:1 4096
GET photo:1 2048
put user:9 128
del photo:1
DELETE user:9
`
	tr := NewTrace(strings.NewReader(in))
	want := []Op{
		{Kind: OpGet, Key: "photo:1"},
		{Kind: OpSet, Key: "photo:1", ValLen: 4096},
		{Kind: OpGet, Key: "photo:1", ValLen: 2048},
		{Kind: OpSet, Key: "user:9", ValLen: 128},
		{Kind: OpDelete, Key: "photo:1"},
		{Kind: OpDelete, Key: "user:9"},
	}
	for i, w := range want {
		got, ok := tr.Next()
		if !ok {
			t.Fatalf("op %d: unexpected end (err=%v)", i, tr.Err())
		}
		if got != w {
			t.Fatalf("op %d = %+v, want %+v", i, got, w)
		}
	}
	if _, ok := tr.Next(); ok {
		t.Fatal("extra op after end")
	}
	if tr.Err() != nil {
		t.Fatalf("Err = %v", tr.Err())
	}
}

func TestTraceRejectsMalformed(t *testing.T) {
	cases := []string{
		"frobnicate key",
		"set key",
		"set key notanumber",
		"set key -5",
		"get",
	}
	for _, in := range cases {
		tr := NewTrace(strings.NewReader(in))
		if _, ok := tr.Next(); ok {
			t.Errorf("malformed line %q parsed", in)
		}
		if tr.Err() == nil {
			t.Errorf("malformed line %q produced no error", in)
		}
	}
}

func TestTraceSkipsCommentsAndBlanks(t *testing.T) {
	tr := NewTrace(strings.NewReader("\n\n# only comments\n\n"))
	if _, ok := tr.Next(); ok {
		t.Fatal("comment-only trace yielded an op")
	}
	if tr.Err() != nil {
		t.Fatalf("Err = %v", tr.Err())
	}
	if tr.Line() != 4 {
		t.Fatalf("Line = %d, want 4", tr.Line())
	}
}
