package workload

import (
	"bufio"
	"errors"
	"strings"
	"testing"
)

func TestTraceParsesAllOps(t *testing.T) {
	in := `
# production trace excerpt
get photo:1
set photo:1 4096
GET photo:1 2048
put user:9 128
del photo:1
DELETE user:9
`
	tr := NewTrace(strings.NewReader(in))
	want := []Op{
		{Kind: OpGet, Key: "photo:1"},
		{Kind: OpSet, Key: "photo:1", ValLen: 4096},
		{Kind: OpGet, Key: "photo:1", ValLen: 2048},
		{Kind: OpSet, Key: "user:9", ValLen: 128},
		{Kind: OpDelete, Key: "photo:1"},
		{Kind: OpDelete, Key: "user:9"},
	}
	for i, w := range want {
		got, ok := tr.Next()
		if !ok {
			t.Fatalf("op %d: unexpected end (err=%v)", i, tr.Err())
		}
		if got != w {
			t.Fatalf("op %d = %+v, want %+v", i, got, w)
		}
	}
	if _, ok := tr.Next(); ok {
		t.Fatal("extra op after end")
	}
	if tr.Err() != nil {
		t.Fatalf("Err = %v", tr.Err())
	}
}

func TestTraceRejectsMalformed(t *testing.T) {
	cases := []string{
		"frobnicate key",
		"set key",
		"set key notanumber",
		"set key -5",
		"get",
	}
	for _, in := range cases {
		tr := NewTrace(strings.NewReader(in))
		if _, ok := tr.Next(); ok {
			t.Errorf("malformed line %q parsed", in)
		}
		if tr.Err() == nil {
			t.Errorf("malformed line %q produced no error", in)
		}
	}
}

// TestTraceOversizedLineCarriesLineNumber feeds a line beyond the scanner's
// 1 MiB token limit and asserts the error both names the failing line and
// unwraps to bufio.ErrTooLong.
func TestTraceOversizedLineCarriesLineNumber(t *testing.T) {
	var b strings.Builder
	b.WriteString("get ok:1\n")
	b.WriteString("set ok:2 64\n")
	b.WriteString("set giant:")
	b.WriteString(strings.Repeat("k", (1<<20)+64)) // over the 1 MiB buffer
	b.WriteString(" 64\n")
	b.WriteString("get never-reached\n")

	tr := NewTrace(strings.NewReader(b.String()))
	for i := 0; i < 2; i++ {
		if _, ok := tr.Next(); !ok {
			t.Fatalf("good op %d: unexpected end (err=%v)", i, tr.Err())
		}
	}
	if _, ok := tr.Next(); ok {
		t.Fatal("oversized line parsed")
	}
	err := tr.Err()
	if err == nil {
		t.Fatal("oversized line produced no error")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("Err = %v, want wrapped bufio.ErrTooLong", err)
	}
	if !strings.Contains(err.Error(), "trace line 3") {
		t.Fatalf("Err = %q, want the failing line number (3)", err)
	}
	// The error is sticky: further Next calls keep failing with it.
	if _, ok := tr.Next(); ok {
		t.Fatal("Next succeeded after a scanner error")
	}
	if tr.Err() != err {
		t.Fatalf("Err changed after the failure: %v", tr.Err())
	}
}

// TestTraceMalformedSetLengthCarriesLineNumber asserts parse errors name the
// exact line, for each malformed length spelling.
func TestTraceMalformedSetLengthCarriesLineNumber(t *testing.T) {
	for _, bad := range []string{"set k notanumber", "set k -5", "set k 12x", "set k"} {
		in := "get warm:1\n# comment\n" + bad + "\n"
		tr := NewTrace(strings.NewReader(in))
		if _, ok := tr.Next(); !ok {
			t.Fatalf("%q: good first op rejected (err=%v)", bad, tr.Err())
		}
		if _, ok := tr.Next(); ok {
			t.Fatalf("%q: malformed set parsed", bad)
		}
		err := tr.Err()
		if err == nil {
			t.Fatalf("%q: no error", bad)
		}
		if !strings.Contains(err.Error(), "trace line 3") {
			t.Fatalf("%q: Err = %q, want the failing line number (3)", bad, err)
		}
	}
}

func TestTraceSkipsCommentsAndBlanks(t *testing.T) {
	tr := NewTrace(strings.NewReader("\n\n# only comments\n\n"))
	if _, ok := tr.Next(); ok {
		t.Fatal("comment-only trace yielded an op")
	}
	if tr.Err() != nil {
		t.Fatalf("Err = %v", tr.Err())
	}
	if tr.Line() != 4 {
		t.Fatalf("Line = %d, want 4", tr.Line())
	}
}
