package device

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestCheckRangeAccepts(t *testing.T) {
	cases := []struct {
		off  int64
		n    int
		size int64
	}{
		{0, SectorSize, SectorSize},
		{0, 0, 0},
		{4096, 8192, 16384},
		{SectorSize * 7, SectorSize, SectorSize * 8},
	}
	for _, c := range cases {
		if err := CheckRange(c.off, c.n, c.size); err != nil {
			t.Errorf("CheckRange(%d, %d, %d) = %v, want nil", c.off, c.n, c.size, err)
		}
	}
}

func TestCheckRangeRejects(t *testing.T) {
	cases := []struct {
		off  int64
		n    int
		size int64
		want error
	}{
		{1, SectorSize, 1 << 20, ErrAlignment},
		{0, 100, 1 << 20, ErrAlignment},
		{0, SectorSize, SectorSize - 1, ErrOutOfRange},
		{SectorSize, SectorSize, SectorSize, ErrOutOfRange},
		{-SectorSize, SectorSize, 1 << 20, ErrOutOfRange},
		{0, -SectorSize, 1 << 20, ErrOutOfRange},
	}
	for _, c := range cases {
		if err := CheckRange(c.off, c.n, c.size); !errors.Is(err, c.want) {
			t.Errorf("CheckRange(%d, %d, %d) = %v, want %v", c.off, c.n, c.size, err, c.want)
		}
	}
}

func TestCheckRangeProperty(t *testing.T) {
	// Any aligned window fully inside the device passes; shifting it past
	// the end fails.
	if err := quick.Check(func(sectors uint8, at uint8) bool {
		size := int64(sectors+1) * SectorSize
		off := int64(at) * SectorSize
		in := CheckRange(off, SectorSize, size) == nil
		wantIn := off+SectorSize <= size
		return in == wantIn
	}, nil); err != nil {
		t.Fatal(err)
	}
}
