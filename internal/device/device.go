// Package device defines the narrow interfaces the cache schemes program
// against: a block device (regular SSD, or a file on a filesystem) and the
// latency-reporting conventions shared by all simulated hardware.
//
// All device operations are 4 KiB-sector addressed, matching the paper's
// "4KiB I/O unit" for Block-Cache and File-Cache (Figure 1a).
package device

import (
	"errors"
	"time"
)

// SectorSize is the logical block size of every simulated device.
const SectorSize = 4096

// Common device errors.
var (
	ErrOutOfRange = errors.New("device: access beyond device size")
	ErrAlignment  = errors.New("device: offset or length not sector-aligned")
	ErrClosed     = errors.New("device: closed")
)

// BlockDevice is a random-access, sector-addressed device. Implementations
// return the simulated service latency of each call; callers advance the
// virtual clock with it and feed their latency histograms.
//
// Data may be nil on WriteAt to perform a metadata-only write of length n:
// the device accounts for the write (mapping, WA, timing, wear) without
// retaining payload bytes. ReadAt always fills p.
type BlockDevice interface {
	// ReadAt reads len(p) bytes at offset off.
	ReadAt(now time.Duration, p []byte, off int64) (time.Duration, error)
	// WriteAt writes n bytes at offset off. If data is non-nil it must be
	// exactly n bytes long.
	WriteAt(now time.Duration, data []byte, n int, off int64) (time.Duration, error)
	// Discard drops the mapping for [off, off+n), informing the device the
	// data is dead (TRIM). It is a metadata operation.
	Discard(off, n int64) error
	// Size returns the usable (exported) capacity in bytes.
	Size() int64
}

// CheckRange validates a sector-aligned access against a device size.
func CheckRange(off int64, n int, size int64) error {
	if off%SectorSize != 0 || n%SectorSize != 0 {
		return ErrAlignment
	}
	if off < 0 || n < 0 || off+int64(n) > size {
		return ErrOutOfRange
	}
	return nil
}
