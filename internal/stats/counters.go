package stats

import "sync/atomic"

// Counter is a concurrency-safe monotonically-increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset sets the counter to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// WriteAmp accounts for write amplification at one layer of the stack:
// bytes requested by the layer's client (host writes) versus bytes actually
// issued to the medium below (media writes, including GC migrations).
//
// Table 1 of the paper reports this ratio for the Region-Cache middle layer
// and the File-Cache filesystem; the regular-SSD FTL reports the same ratio
// at device level.
type WriteAmp struct {
	host  atomic.Uint64
	media atomic.Uint64
}

// AddHost records n bytes written by the client of this layer.
func (w *WriteAmp) AddHost(n uint64) { w.host.Add(n) }

// AddMedia records n bytes this layer wrote to the layer below.
func (w *WriteAmp) AddMedia(n uint64) { w.media.Add(n) }

// Host returns total client bytes.
func (w *WriteAmp) Host() uint64 { return w.host.Load() }

// Media returns total downstream bytes.
func (w *WriteAmp) Media() uint64 { return w.media.Load() }

// Factor returns media/host, the write-amplification factor. It returns 1
// when no host writes have been recorded, the neutral value for reporting.
func (w *WriteAmp) Factor() float64 {
	h := w.host.Load()
	if h == 0 {
		return 1
	}
	return float64(w.media.Load()) / float64(h)
}

// Reset zeroes both byte counts.
func (w *WriteAmp) Reset() {
	w.host.Store(0)
	w.media.Store(0)
}

// HitRatio tracks cache hits and misses and derives the hit ratio.
type HitRatio struct {
	hits   atomic.Uint64
	misses atomic.Uint64
}

// Hit records a cache hit.
func (h *HitRatio) Hit() { h.hits.Add(1) }

// Miss records a cache miss.
func (h *HitRatio) Miss() { h.misses.Add(1) }

// Hits returns the hit count.
func (h *HitRatio) Hits() uint64 { return h.hits.Load() }

// Misses returns the miss count.
func (h *HitRatio) Misses() uint64 { return h.misses.Load() }

// Ratio returns hits/(hits+misses), or 0 when no lookups were recorded.
func (h *HitRatio) Ratio() float64 {
	hits, misses := h.hits.Load(), h.misses.Load()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// Reset zeroes both counts.
func (h *HitRatio) Reset() {
	h.hits.Store(0)
	h.misses.Store(0)
}
