// Package stats provides the measurement plumbing the experiments report:
// log-bucketed latency histograms with percentile queries, operation
// counters, and write-amplification accounting. Every number printed by the
// harness (throughput, hit ratio, P50/P99 latency, WA factor) comes from
// this package.
package stats

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// histBuckets is the number of logarithmic buckets. With ~12% bucket growth
// starting at 1ns this spans beyond 1000s, enough for any simulated latency.
const (
	histBuckets = 256
	histGrowth  = 1.12
)

// bucketBounds[i] is the exclusive upper bound (in ns) of bucket i.
var bucketBounds = func() [histBuckets]float64 {
	var b [histBuckets]float64
	v := 1.0
	for i := 0; i < histBuckets; i++ {
		b[i] = v
		v *= histGrowth
	}
	b[histBuckets-1] = math.Inf(1)
	return b
}()

func bucketFor(d time.Duration) int {
	ns := float64(d.Nanoseconds())
	if ns <= 0 {
		return 0
	}
	// log_growth(ns) with clamping; direct computation avoids a scan.
	i := int(math.Log(ns)/math.Log(histGrowth)) + 1
	if i < 0 {
		i = 0
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	// The float math can land one bucket off; fix up against the bounds.
	for i > 0 && ns < bucketBounds[i-1] {
		i--
	}
	for i < histBuckets-1 && ns >= bucketBounds[i] {
		i++
	}
	return i
}

// Histogram is a concurrency-safe log-bucketed latency histogram.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets]uint64
	total  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.counts[bucketFor(d)]++
	h.total++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// ObserveN records n samples of the same latency under one lock acquisition.
// It is the batched form the serving layer uses when every request in a
// pipeline batch observes the batch's latency: one ObserveN per (batch, verb)
// instead of a lock round trip per request.
func (h *Histogram) ObserveN(d time.Duration, n int) {
	if n <= 0 {
		return
	}
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.counts[bucketFor(d)] += uint64(n)
	h.total += uint64(n)
	h.sum += d * time.Duration(n)
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the average sample, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Max returns the largest sample, or 0 if empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest sample, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Percentile returns the latency at quantile q in [0,1]. The value returned
// is the upper bound of the bucket containing the q-th sample, so it
// slightly overestimates; that bias is consistent across schemes and does
// not affect comparisons. Returns 0 for an empty histogram.
func (h *Histogram) Percentile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.percentileLocked(q)
}

// percentileLocked computes a quantile with h.mu held.
func (h *Histogram) percentileLocked(q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i == histBuckets-1 {
				return h.max
			}
			ub := time.Duration(bucketBounds[i])
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}

// Snapshot returns an immutable copy of headline statistics. All fields are
// computed under one lock acquisition, so the snapshot is internally
// consistent even while other goroutines Observe concurrently: the
// percentiles, mean, and max all describe the same sample population (a
// per-field locking scheme could report a P99 above Max).
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{
		Count: h.total,
		Sum:   h.sum,
		P50:   h.percentileLocked(0.50),
		P90:   h.percentileLocked(0.90),
		P99:   h.percentileLocked(0.99),
		P999:  h.percentileLocked(0.999),
	}
	if h.total > 0 {
		s.Mean = h.sum / time.Duration(h.total)
		s.Max = h.max
	}
	return s
}

// SnapshotAndReset atomically snapshots the histogram and clears it under
// one lock acquisition, so no concurrent Observe is lost between the read
// and the reset. It is the primitive an interval reporter uses to carve a
// continuous sample stream into disjoint windows.
func (h *Histogram) SnapshotAndReset() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{
		Count: h.total,
		Sum:   h.sum,
		P50:   h.percentileLocked(0.50),
		P90:   h.percentileLocked(0.90),
		P99:   h.percentileLocked(0.99),
		P999:  h.percentileLocked(0.999),
	}
	if h.total > 0 {
		s.Mean = h.sum / time.Duration(h.total)
		s.Max = h.max
	}
	h.counts = [histBuckets]uint64{}
	h.total = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
	return s
}

// Merge folds all of other's samples into h. Bucket boundaries are shared by
// construction, so the merge is exact at histogram resolution: percentiles of
// the merged histogram equal percentiles over the union of the sample
// streams (within one bucket's width). It is the primitive the sharded cache
// frontend uses to report one latency distribution across per-shard engines.
// Merging a histogram into itself is a no-op.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other == h {
		return
	}
	// Copy out under other's lock first so the two locks never nest in an
	// order that could deadlock with a concurrent reverse merge.
	other.mu.Lock()
	counts := other.counts
	total := other.total
	sum := other.sum
	min, max := other.min, other.max
	other.mu.Unlock()
	if total == 0 {
		return
	}
	h.mu.Lock()
	for i, c := range counts {
		h.counts[i] += c
	}
	h.total += total
	h.sum += sum
	if min < h.min {
		h.min = min
	}
	if max > h.max {
		h.max = max
	}
	h.mu.Unlock()
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts = [histBuckets]uint64{}
	h.total = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// HistSnapshot is a point-in-time summary of a Histogram.
type HistSnapshot struct {
	Count                     uint64
	Sum                       time.Duration
	Mean, P50, P90, P99, P999 time.Duration
	Max                       time.Duration
}

// String renders the snapshot in a compact single line.
func (s HistSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		s.Count, s.Mean, s.P50, s.P99, s.Max)
}
