package stats

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(0.99) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Observe(100 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if h.Mean() != 100*time.Microsecond {
		t.Fatalf("Mean = %v, want 100µs", h.Mean())
	}
	p50 := h.Percentile(0.5)
	if p50 < 100*time.Microsecond || p50 > 120*time.Microsecond {
		t.Fatalf("P50 = %v, want ~100µs (within one bucket)", p50)
	}
}

func TestHistogramPercentileOrdering(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	p50, p90, p99 := h.Percentile(0.5), h.Percentile(0.9), h.Percentile(0.99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("percentiles not monotone: p50=%v p90=%v p99=%v", p50, p90, p99)
	}
	// P50 of 1..1000µs should be near 500µs (bucketing overestimates ≤12%).
	if p50 < 450*time.Microsecond || p50 > 620*time.Microsecond {
		t.Fatalf("P50 = %v, want ~500µs", p50)
	}
	if p99 < 900*time.Microsecond {
		t.Fatalf("P99 = %v, want ≥900µs", p99)
	}
}

func TestHistogramTailDominatedByOutliers(t *testing.T) {
	// Models GC stalls: 99 fast ops, 1 slow op. P99 must expose the stall.
	h := NewHistogram()
	for i := 0; i < 980; i++ {
		h.Observe(50 * time.Microsecond)
	}
	for i := 0; i < 20; i++ {
		h.Observe(20 * time.Millisecond)
	}
	if p50 := h.Percentile(0.5); p50 > 100*time.Microsecond {
		t.Fatalf("P50 = %v, want fast-path latency", p50)
	}
	if p99 := h.Percentile(0.99); p99 < 10*time.Millisecond {
		t.Fatalf("P99 = %v, want stall latency ≥10ms", p99)
	}
}

func TestHistogramMinMax(t *testing.T) {
	h := NewHistogram()
	h.Observe(3 * time.Millisecond)
	h.Observe(1 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	if h.Min() != time.Millisecond {
		t.Fatalf("Min = %v, want 1ms", h.Min())
	}
	if h.Max() != 3*time.Millisecond {
		t.Fatalf("Max = %v, want 3ms", h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	if h.Count() != 1 || h.Min() != 0 {
		t.Fatal("negative samples should be clamped to zero")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
}

func TestHistogramPercentileNeverExceedsMax(t *testing.T) {
	if err := quick.Check(func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		h := NewHistogram()
		var max time.Duration
		for _, s := range samples {
			d := time.Duration(s)
			h.Observe(d)
			if d > max {
				max = d
			}
		}
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			if h.Percentile(q) > max {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
}

func TestHistogramSnapshotString(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.String() == "" {
		t.Fatal("snapshot incomplete")
	}
}

func TestBucketForMonotone(t *testing.T) {
	prev := -1
	for _, d := range []time.Duration{0, 1, 2, 10, 100, 1000, 1e6, 1e9, 1e12} {
		b := bucketFor(d)
		if b < prev {
			t.Fatalf("bucketFor not monotone at %v: %d < %d", d, b, prev)
		}
		prev = b
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("Counter = %d, want 5", c.Load())
	}
	c.Reset()
	if c.Load() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 16000 {
		t.Fatalf("Counter = %d, want 16000", c.Load())
	}
}

func TestWriteAmpNeutralWhenEmpty(t *testing.T) {
	var w WriteAmp
	if w.Factor() != 1 {
		t.Fatalf("empty WA factor = %v, want 1", w.Factor())
	}
}

func TestWriteAmpFactor(t *testing.T) {
	var w WriteAmp
	w.AddHost(100)
	w.AddMedia(139)
	if got := w.Factor(); got != 1.39 {
		t.Fatalf("WA factor = %v, want 1.39", got)
	}
	if w.Host() != 100 || w.Media() != 139 {
		t.Fatal("byte counts wrong")
	}
	w.Reset()
	if w.Factor() != 1 {
		t.Fatal("Reset did not clear WA")
	}
}

func TestWriteAmpNeverBelowOneForLogStructured(t *testing.T) {
	// Property: if media >= host (true for any log-structured layer that
	// writes at least what the client asked), factor >= 1.
	if err := quick.Check(func(host uint32, extra uint32) bool {
		var w WriteAmp
		w.AddHost(uint64(host))
		w.AddMedia(uint64(host) + uint64(extra))
		return w.Factor() >= 1 || host == 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHitRatio(t *testing.T) {
	var h HitRatio
	if h.Ratio() != 0 {
		t.Fatal("empty hit ratio should be 0")
	}
	for i := 0; i < 94; i++ {
		h.Hit()
	}
	for i := 0; i < 6; i++ {
		h.Miss()
	}
	if got := h.Ratio(); got != 0.94 {
		t.Fatalf("hit ratio = %v, want 0.94", got)
	}
	if h.Hits() != 94 || h.Misses() != 6 {
		t.Fatal("hit/miss counts wrong")
	}
	h.Reset()
	if h.Ratio() != 0 {
		t.Fatal("Reset did not clear hit ratio")
	}
}

func TestHistogramMergeUnion(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	union := NewHistogram()
	for i := 1; i <= 100; i++ {
		d := time.Duration(i) * time.Microsecond
		a.Observe(d)
		union.Observe(d)
	}
	for i := 1; i <= 50; i++ {
		d := time.Duration(i) * time.Millisecond
		b.Observe(d)
		union.Observe(d)
	}
	a.Merge(b)
	if a.Count() != union.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), union.Count())
	}
	if a.Mean() != union.Mean() {
		t.Fatalf("merged mean = %v, want %v", a.Mean(), union.Mean())
	}
	if a.Min() != union.Min() || a.Max() != union.Max() {
		t.Fatalf("merged min/max = %v/%v, want %v/%v",
			a.Min(), a.Max(), union.Min(), union.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		if got, want := a.Percentile(q), union.Percentile(q); got != want {
			t.Fatalf("merged P%.0f = %v, want %v (merge must equal observing the union)",
				q*100, got, want)
		}
	}
}

func TestHistogramMergeEdgeCases(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	h.Merge(nil)            // no-op
	h.Merge(h)              // self-merge: no-op, no deadlock
	h.Merge(NewHistogram()) // empty other: no-op, min must not be clobbered
	if h.Count() != 1 || h.Min() != time.Millisecond || h.Max() != time.Millisecond {
		t.Fatalf("edge-case merges changed the histogram: n=%d min=%v max=%v",
			h.Count(), h.Min(), h.Max())
	}
	// Merging into an empty histogram adopts the other's min.
	e := NewHistogram()
	e.Merge(h)
	if e.Count() != 1 || e.Min() != time.Millisecond {
		t.Fatalf("empty.Merge: n=%d min=%v", e.Count(), e.Min())
	}
}

func TestHistogramMergeConcurrent(t *testing.T) {
	shards := make([]*Histogram, 8)
	for i := range shards {
		shards[i] = NewHistogram()
		for j := 0; j < 1000; j++ {
			shards[i].Observe(time.Duration(i*1000+j) * time.Nanosecond)
		}
	}
	// Merge all shards into one sink from concurrent goroutines (the
	// sharded frontend's Stats does this under shard locks; the histogram
	// itself must tolerate it).
	sink := NewHistogram()
	var wg sync.WaitGroup
	for _, h := range shards {
		wg.Add(1)
		go func(h *Histogram) {
			defer wg.Done()
			sink.Merge(h)
		}(h)
	}
	wg.Wait()
	if sink.Count() != 8000 {
		t.Fatalf("concurrent merge lost samples: %d", sink.Count())
	}
}

// TestHistogramSnapshotConsistent verifies that Snapshot is computed under a
// single lock acquisition: while writers observe a fixed value concurrently,
// every snapshot's fields must describe one sample population — mean derived
// from the snapshot's own sum and count, and percentiles never above max.
func TestHistogramSnapshotConsistent(t *testing.T) {
	h := NewHistogram()
	const val = 250 * time.Microsecond
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(val)
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		if want := s.Sum / time.Duration(s.Count); s.Mean != want {
			t.Fatalf("torn snapshot: mean %v but sum/count = %v (%+v)", s.Mean, want, s)
		}
		if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.P999 {
			t.Fatalf("torn snapshot: percentiles not monotone: %+v", s)
		}
		if s.P999 > s.Max {
			t.Fatalf("torn snapshot: P999 %v above max %v", s.P999, s.Max)
		}
	}
	close(stop)
	wg.Wait()
}
