package harness

import (
	"bytes"
	"strings"
	"testing"

	"znscache/internal/workload"
)

// tinyFig2 shrinks Figure 2 to smoke-test scale.
func tinyFig2() Fig2Params {
	// The paper's 25-zone Figure 2 geometry with a reduced op count.
	// Working set (~72k keys × ~3.3 KiB ≈ 240 MiB) sits between the two
	// cache sizes' reach so the Zone-Cache capacity edge shows in the hit
	// ratio while hit ratios stay in the paper's ~90% regime.
	return Fig2Params{Zones: 25, Keys: 72 << 10, WarmupOps: 400_000, MeasureOps: 200_000, Seed: 1}
}

func TestBuildAllSchemes(t *testing.T) {
	hw := DefaultHW(12)
	for _, s := range AllSchemes {
		cfg := RigConfig{Scheme: s, HW: hw, CacheBytes: int64(9) * hw.ZoneBytes()}
		if s == ZoneCache {
			cfg.ZoneCount = 12
		}
		rig, err := Build(cfg)
		if err != nil {
			t.Fatalf("Build(%v): %v", s, err)
		}
		if rig.Engine == nil || rig.Clock == nil {
			t.Fatalf("Build(%v): incomplete rig", s)
		}
		// Exercise the engine minimally.
		if err := rig.Engine.Set("k", nil, 100); err != nil {
			t.Fatalf("%v Set: %v", s, err)
		}
		if _, ok, err := rig.Engine.Get("k"); !ok || err != nil {
			t.Fatalf("%v Get: (%v, %v)", s, ok, err)
		}
	}
}

func TestSchemeStringAndWAF(t *testing.T) {
	names := map[Scheme]string{
		BlockCache: "Block-Cache", FileCache: "File-Cache",
		ZoneCache: "Zone-Cache", RegionCache: "Region-Cache",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("String(%d) = %s", s, s.String())
		}
	}
}

func TestRunBCProducesSaneNumbers(t *testing.T) {
	hw := DefaultHW(12)
	rig, err := Build(RigConfig{Scheme: RegionCache, HW: hw, CacheBytes: 9 * hw.ZoneBytes()})
	if err != nil {
		t.Fatal(err)
	}
	res := RunBC(rig, 8<<10, 30_000, 30_000, 1)
	if res.OpsPerSec <= 0 {
		t.Fatalf("ops/sec = %v", res.OpsPerSec)
	}
	if res.HitRatio <= 0 || res.HitRatio > 1 {
		t.Fatalf("hit ratio = %v", res.HitRatio)
	}
	if res.WAFactor < 1 {
		t.Fatalf("WAF = %v < 1", res.WAFactor)
	}
	if res.SimTime <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestFig2ShapeTiny(t *testing.T) {
	rows, err := RunFig2(tinyFig2())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byScheme := map[Scheme]SchemeResult{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	// Core shape assertions from the paper (robust even at tiny scale):
	// Zone-Cache has the best hit ratio (largest capacity, no OP).
	zone := byScheme[ZoneCache]
	for _, s := range []Scheme{BlockCache, FileCache, RegionCache} {
		if zone.HitRatio <= byScheme[s].HitRatio {
			t.Errorf("Zone-Cache hit ratio %.4f not above %v's %.4f",
				zone.HitRatio, s, byScheme[s].HitRatio)
		}
	}
	// Throughput ordering (Figure 2a): Region ≥ Block > Zone > File.
	order := []Scheme{RegionCache, BlockCache, ZoneCache, FileCache}
	for i := 1; i < len(order); i++ {
		hi, lo := byScheme[order[i-1]], byScheme[order[i]]
		if hi.OpsPerSec <= lo.OpsPerSec {
			t.Errorf("%v ops/s %.0f not above %v's %.0f",
				order[i-1], hi.OpsPerSec, order[i], lo.OpsPerSec)
		}
	}
	// File-Cache's hit ratio is the lowest (smallest effective cache).
	for _, s := range []Scheme{BlockCache, ZoneCache, RegionCache} {
		if byScheme[FileCache].HitRatio >= byScheme[s].HitRatio {
			t.Errorf("File-Cache hit %.4f not below %v's %.4f",
				byScheme[FileCache].HitRatio, s, byScheme[s].HitRatio)
		}
	}
	// Zone-Cache is WA-free; File/Region amplify.
	if zone.WAFactor != 1.0 {
		t.Errorf("Zone-Cache WAF = %v", zone.WAFactor)
	}
}

func TestFig3LargeRegionsSpike(t *testing.T) {
	rows, err := RunFig3(Fig3Params{Zones: 10, ValueLen: 4096, RegionsAfterOnset: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	large, small := rows[0], rows[1]
	if large.RegionBytes <= small.RegionBytes {
		t.Fatal("row order: large first expected")
	}
	// Large-region fills are far slower than small-region fills, and both
	// rise after eviction onset (Figure 3's two panels).
	if large.MeanAfter <= small.MeanAfter {
		t.Errorf("large-region post-onset fill %v not above small %v",
			large.MeanAfter, small.MeanAfter)
	}
	if large.MeanAfter <= large.MeanBefore {
		t.Errorf("large-region fill did not rise after onset: %v -> %v",
			large.MeanBefore, large.MeanAfter)
	}
}

func TestCoDesignReducesWA(t *testing.T) {
	run := func(codesign bool) (float64, uint64) {
		hw := DefaultHW(8)
		rig, err := Build(RigConfig{
			Scheme: RegionCache, HW: hw,
			CacheBytes: 5 * hw.ZoneBytes(),
			CoDesign:   codesign,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Enough set volume (~3x the 80 MiB cache) to cycle regions and
		// put the middle-layer GC under pressure.
		res := RunBC(rig, 8<<10, 120_000, 120_000, 5)
		if rig.Middle.GCRuns.Load() == 0 {
			t.Fatal("test vacuous: middle-layer GC never ran")
		}
		return res.WAFactor, rig.Middle.Dropped.Load()
	}
	waOff, _ := run(false)
	waOn, dropped := run(true)
	if dropped == 0 {
		t.Fatal("co-design never dropped a region")
	}
	if waOn >= waOff {
		t.Errorf("co-design WAF %v not below baseline %v", waOn, waOff)
	}
}

func TestFig5TinyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run")
	}
	p := Fig5Params{
		Keys: 250_000, Reads: 20_000, ERValues: []float64{25},
		FlashCacheZones: 2, DeviceZones: 8, KeyLen: 16, ValLen: 64,
		DRAMCacheBytes: 128 << 10, Seed: 4,
	}
	rows, err := RunFig5(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byScheme := map[Scheme]Fig5Row{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
		if r.OpsPerSec <= 0 {
			t.Fatalf("%v ops/sec = %v", r.Scheme, r.OpsPerSec)
		}
	}
	// Zone-Cache's few huge regions must hurt its hit ratio (§4.2).
	if byScheme[ZoneCache].SecondaryHitRatio >= byScheme[RegionCache].SecondaryHitRatio {
		t.Errorf("Zone-Cache hit %.3f not below Region-Cache %.3f",
			byScheme[ZoneCache].SecondaryHitRatio, byScheme[RegionCache].SecondaryHitRatio)
	}
}

func TestTable2Monotone(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run")
	}
	p := Fig5Params{
		Keys: 250_000, Reads: 20_000, ERValues: []float64{25},
		DeviceZones: 16, KeyLen: 16, ValLen: 64,
		DRAMCacheBytes: 128 << 10, Seed: 4,
	}
	rows, err := RunTable2(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Hit ratio must increase with cache size (the paper's Table 2 trend).
	for i := 1; i < len(rows); i++ {
		if rows[i].HitRatio < rows[i-1].HitRatio {
			t.Errorf("hit ratio fell from %.3f (z=%d) to %.3f (z=%d)",
				rows[i-1].HitRatio, rows[i-1].Zones, rows[i].HitRatio, rows[i].Zones)
		}
	}
}

func TestSecondaryAdapterRoundTrip(t *testing.T) {
	hw := DefaultHW(8)
	rig, err := Build(RigConfig{Scheme: RegionCache, HW: hw, CacheBytes: 5 * hw.ZoneBytes()})
	if err != nil {
		t.Fatal(err)
	}
	sec := &EngineSecondary{Engine: rig.Engine}
	if sec.Lookup("blk", 4096) {
		t.Fatal("hit before insert")
	}
	sec.Insert("blk", 4096)
	if !sec.Lookup("blk", 4096) {
		t.Fatal("miss after insert")
	}
}

func TestReportsRender(t *testing.T) {
	var buf bytes.Buffer
	PrintFig2(&buf, []SchemeResult{{Scheme: ZoneCache, OpsPerSec: 1, HitRatio: 0.95, WAFactor: 1}})
	PrintFig4Table1(&buf, []Fig4Row{{Scheme: RegionCache, OPRatio: 0.1}})
	PrintFig5(&buf, []Fig5Row{{Scheme: BlockCache, ER: 15}})
	PrintTable2(&buf, []Table2Row{{Zones: 4, HitRatio: 0.8}})
	PrintFig3(&buf, []Fig3Result{{Label: "x", RegionBytes: 1}})
	PrintSmallZone(&buf, []SmallZoneRow{{Label: "Zone-Cache 4 MiB zones", ZoneMiB: 4}})
	out := buf.String()
	for _, want := range []string{"Figure 2", "Figure 3", "Figure 4", "Table 1", "Figure 5", "Table 2", "Small-zone"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestWorkloadIntegration(t *testing.T) {
	// The bc generator and a rig together: hit ratio settles above zero
	// for a zipfian mix whose working set exceeds the cache.
	hw := DefaultHW(8)
	rig, err := Build(RigConfig{Scheme: BlockCache, HW: hw, CacheBytes: 6 * hw.ZoneBytes()})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewBC(workload.BCConfig{Keys: 4 << 10, Seed: 9})
	for i := 0; i < 50_000; i++ {
		op := gen.Next()
		switch op.Kind {
		case workload.OpGet:
			rig.Engine.Get(op.Key)
		case workload.OpSet:
			rig.Engine.Set(op.Key, nil, op.ValLen)
		case workload.OpDelete:
			rig.Engine.Delete(op.Key)
		}
	}
	st := rig.Engine.Stats()
	if st.HitRatio < 0.3 {
		t.Fatalf("hit ratio %.3f unreasonably low", st.HitRatio)
	}
}

func TestSmallZoneHypothesisShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	p := SmallZoneParams{
		DeviceMiB:    400,
		ZoneSizesMiB: []int{16, 4},
		Keys:         72 << 10,
		WarmupOps:    300_000,
		MeasureOps:   200_000,
		Seed:         6,
	}
	rows, err := RunSmallZone(p)
	if err != nil {
		t.Fatal(err)
	}
	byZone := map[int]SchemeResult{}
	var ref SchemeResult
	for _, r := range rows {
		if r.ZoneMiB == 0 {
			ref = r.Result
		} else {
			byZone[r.ZoneMiB] = r.Result
		}
	}
	// §3.2/§4.2: smaller zones lift Zone-Cache's throughput substantially...
	if byZone[4].OpsPerSec <= byZone[16].OpsPerSec*11/10 {
		t.Errorf("4 MiB zones (%.0f ops/s) not well above 16 MiB (%.0f)",
			byZone[4].OpsPerSec, byZone[16].OpsPerSec)
	}
	// ...while the hit-ratio and capacity edge survives at every size.
	for zm, r := range byZone {
		if r.HitRatio <= ref.HitRatio {
			t.Errorf("Zone-Cache %d MiB hit %.4f not above Region reference %.4f",
				zm, r.HitRatio, ref.HitRatio)
		}
	}
}
