package harness

import (
	"fmt"
	"strconv"
	"time"

	"znscache/internal/cache"
	"znscache/internal/hdd"
	"znscache/internal/lsm"
	"znscache/internal/obs"
	"znscache/internal/sim"
	"znscache/internal/workload"
)

// EngineSecondary adapts the cache engine to the LSM's SecondaryCache
// interface: CacheLib serving as RocksDB's secondary cache (§4.2). Both
// sides share one virtual clock, so cache latency lands inside the DB's
// Get latency exactly as it does on real hardware.
//
// Inserts are best-effort, as in the real RocksDB/CacheLib integration:
// when the cache's flush pipeline is backed up — a zone-sized region still
// being written, or a device GC stall holding the flusher — the insert is
// dropped rather than blocking the DB. Dropped inserts depress the hit
// ratio, which is how device-level stalls surface in Figure 5's throughput.
type EngineSecondary struct {
	Engine *cache.Cache
	// Dropped counts best-effort inserts lost to flush backlog.
	Dropped uint64
}

// Lookup implements lsm.SecondaryCache.
func (s *EngineSecondary) Lookup(key string, _ int) bool {
	_, ok, err := s.Engine.Get(key)
	return err == nil && ok
}

// Insert implements lsm.SecondaryCache.
func (s *EngineSecondary) Insert(key string, size int) {
	if s.Engine.WouldBlock(len(key), size) {
		s.Dropped++
		return
	}
	s.Engine.Set(key, nil, size) //nolint:errcheck
}

var _ lsm.SecondaryCache = (*EngineSecondary)(nil)

// Fig5Params sizes the RocksDB end-to-end run. Paper: 100 M keys filled,
// 1 M read, 5 GiB flash cache, 32 MiB DRAM, HDD backend. Scaled ~64x.
type Fig5Params struct {
	Keys     int64 // fillrandom keys
	Reads    int   // readrandom ops
	ERValues []float64
	// FlashCacheZones is the Zone-Cache zone budget; other schemes get the
	// same byte capacity (paper: 5 GiB ≈ 4.75 zones).
	FlashCacheZones int
	DeviceZones     int
	KeyLen, ValLen  int
	DRAMCacheBytes  int64
	Seed            uint64
}

// DefaultFig5 returns scaled defaults: 8 MiB zones for the flash cache
// device so the 40 MiB cache spans ~5 zones, the paper's ratio.
func DefaultFig5() Fig5Params {
	return Fig5Params{
		Keys:            1_000_000,
		Reads:           120_000,
		ERValues:        []float64{15, 25},
		FlashCacheZones: 5,
		DeviceZones:     16, // ample device: "reserve enough OP space" (§4.2)
		KeyLen:          16,
		ValLen:          64,
		DRAMCacheBytes:  512 << 10,
		Seed:            4,
	}
}

// fig5HW is the flash profile for the secondary-cache device: 8 MiB zones.
func fig5HW(zones int) HWProfile {
	return HWProfile{
		Zones:         zones,
		BlocksPerZone: 8,   // 8 MiB zones
		PagesPerBlock: 256, // 1 MiB blocks
		Channels:      8,
		DiesPerChan:   2,
	}
}

// Fig5Row is one (scheme, ER) cell of Figure 5.
type Fig5Row struct {
	Scheme    Scheme
	ER        float64
	OpsPerSec float64
	// SecondaryHitRatio is Figure 5(b)'s metric.
	SecondaryHitRatio float64
	P50, P99          time.Duration
	SimTime           time.Duration
}

// BuildFig5Rig builds a scheme with the Figure 5 flash-cache sizing. A nil
// clock allocates a fresh one.
func BuildFig5Rig(s Scheme, p Fig5Params, clock *sim.Clock) (*Rig, error) {
	if clock == nil {
		clock = sim.NewClock()
	}
	hw := fig5HW(p.DeviceZones)
	cacheBytes := int64(p.FlashCacheZones) * hw.ZoneBytes()
	cfg := RigConfig{
		Scheme:      s,
		HW:          hw,
		CacheBytes:  cacheBytes,
		RegionBytes: 128 << 10, // 16 MiB at paper scale (1:64 of the zone)
		OPRatio:     0.20,      // "reserve enough OP space" (§4.2)
		Clock:       clock,
	}
	switch s {
	case ZoneCache:
		cfg.ZoneCount = p.FlashCacheZones
	case BlockCache:
		// The regular SSD runs at steady-state utilization: an aged block
		// drive collects continuously, which is where its tail latency
		// comes from (§2.3). A fresh, mostly-empty FTL never GCs and would
		// behave like Region-Cache.
		zones := int(float64(p.FlashCacheZones)/(1-cfg.OPRatio)) + 2
		if zones < p.FlashCacheZones+1 {
			zones = p.FlashCacheZones + 1
		}
		cfg.HW = fig5HW(zones)
	}
	return Build(cfg)
}

// runDBBench executes fillrandom + readrandom against a DB whose secondary
// cache is the given scheme. Returns the read-phase metrics.
func runDBBench(s Scheme, er float64, p Fig5Params, zoneCount int) (Fig5Row, error) {
	clock := sim.NewClock()
	if zoneCount == 0 {
		zoneCount = p.FlashCacheZones
	}
	p2 := p
	p2.FlashCacheZones = zoneCount
	rig, err := BuildFig5Rig(s, p2, clock)
	if err != nil {
		return Fig5Row{}, err
	}
	disk := hdd.New(hdd.Config{Capacity: 64 << 30})
	db, err := lsm.Open(lsm.Config{
		Disk:            disk,
		Secondary:       &EngineSecondary{Engine: rig.Engine},
		BlockCacheBytes: p.DRAMCacheBytes,
		Clock:           clock,
	})
	if err != nil {
		return Fig5Row{}, fmt.Errorf("dbbench %v: %w", s, err)
	}
	if reg := globalRegistry.Load(); reg != nil {
		db.MetricsInto(reg, obs.L(
			"rig", strconv.FormatUint(rigSeq.Add(1), 10),
			"scheme", s.String()))
	}

	// Phase 1: fillrandom.
	fill := workload.NewFillRandom(p.Keys, p.ValLen, p.Seed)
	for {
		op, ok := fill.Next()
		if !ok {
			break
		}
		if err := db.Put(op.Key, nil, op.ValLen); err != nil {
			return Fig5Row{}, fmt.Errorf("dbbench fill: %w", err)
		}
	}
	if err := db.Flush(); err != nil {
		return Fig5Row{}, err
	}

	// Phase 2: readrandom with ER skew; measure steady state after a
	// warmup third.
	gen := workload.NewExpRange(p.Keys, er, p.Seed+7)
	warm := p.Reads / 3
	for i := 0; i < warm; i++ {
		if _, _, err := db.Get(workload.KeyName(gen.Next())); err != nil {
			return Fig5Row{}, err
		}
	}
	db.GetLat.Reset()
	db.SecondaryHits.Reset()
	db.SecondaryLookups.Reset()
	start := clock.Now()
	for i := 0; i < p.Reads-warm; i++ {
		if _, _, err := db.Get(workload.KeyName(gen.Next())); err != nil {
			return Fig5Row{}, err
		}
	}
	elapsed := clock.Now() - start
	ops := float64(p.Reads - warm)
	row := Fig5Row{
		Scheme:            s,
		ER:                er,
		SecondaryHitRatio: db.SecondaryHitRatio(),
		P50:               db.GetLat.Percentile(0.5),
		P99:               db.GetLat.Percentile(0.99),
		SimTime:           elapsed,
	}
	if elapsed > 0 {
		row.OpsPerSec = ops / elapsed.Seconds()
	}
	return row, nil
}

// RunFig5 reruns Figure 5: all four schemes at each ER value. Every
// (scheme, ER) cell is an independent DB + cache stack, so the cells fan
// across the worker pool; row order matches the serial sweep.
func RunFig5(p Fig5Params) ([]Fig5Row, error) {
	type point struct {
		er float64
		s  Scheme
	}
	var points []point
	for _, er := range p.ERValues {
		for _, s := range []Scheme{BlockCache, FileCache, ZoneCache, RegionCache} {
			points = append(points, point{er, s})
		}
	}
	out := make([]Fig5Row, len(points))
	err := forEachPoint(len(points), func(i int) error {
		pt := points[i]
		row, err := runDBBench(pt.s, pt.er, p, 0)
		if err != nil {
			return fmt.Errorf("fig5 %v er=%v: %w", pt.s, pt.er, err)
		}
		out[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Table2Row is one cache-size cell of Table 2.
type Table2Row struct {
	Zones     int
	CacheGiB  float64 // paper-scale label (zones × 1077 MiB ≈ GiB steps)
	OpsPerSec float64
	HitRatio  float64
}

// RunTable2 reruns Table 2: Zone-Cache under growing cache sizes at ER 25.
// The paper sweeps 4–8 GiB, i.e. ~4–8 zones.
func RunTable2(p Fig5Params) ([]Table2Row, error) {
	const minZones, maxZones = 4, 8
	out := make([]Table2Row, maxZones-minZones+1)
	err := forEachPoint(len(out), func(i int) error {
		zones := minZones + i
		row, err := runDBBench(ZoneCache, 25, p, zones)
		if err != nil {
			return fmt.Errorf("table2 zones=%d: %w", zones, err)
		}
		out[i] = Table2Row{
			Zones:     zones,
			CacheGiB:  float64(zones), // 1 zone ≈ 1 GiB at paper scale
			OpsPerSec: row.OpsPerSec,
			HitRatio:  row.SecondaryHitRatio,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
