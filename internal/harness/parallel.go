package harness

import (
	"runtime"
	"sync"
)

// forEachPoint runs fn(0..n-1) across a bounded worker pool. Every
// experiment point in the harness sweeps (one scheme, one OP ratio, one
// cache size) builds its own device stack, clock, and seeded workload, so
// points are independent and replay bit-identically regardless of which
// worker runs them; results land in caller-owned slices indexed by point, so
// output ordering is deterministic too. The pool is GOMAXPROCS-sized: the
// sweeps are CPU-bound simulation, and more workers than cores only adds
// scheduler churn.
//
// The first error in point order wins, matching what the serial loops
// returned; later points still run to completion (they are side-effect-free
// beyond their own slots).
func forEachPoint(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
