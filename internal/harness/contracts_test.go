package harness

import (
	"strconv"
	"testing"
)

// TestContractsSweepSmoke runs a tiny two-limit sweep across all four
// schemes and checks the row layout and the structural facts the full sweep
// relies on: File-Cache is omitted below its two-log-head minimum, the
// Block-Cache control rows ignore the limits, and squeezing the open cap
// below the middle layer's working set makes Region-Cache pay for flushes
// with budget-freeing zone transitions (stalls) instead of errors.
func TestContractsSweepSmoke(t *testing.T) {
	p := ContractsParams{
		Zones:           25,
		Keys:            8 << 10,
		WarmupOps:       40_000,
		MeasureOps:      20_000,
		Seed:            7,
		Limits:          []int{14, 1},
		ActiveSlack:     2,
		MiddleOpenZones: 4,
	}
	rows, err := RunContracts(p)
	if err != nil {
		t.Fatalf("RunContracts: %v", err)
	}
	// 4 schemes × 2 limits, minus File-Cache at open=1.
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7: %+v", len(rows), rows)
	}
	byKey := map[string]ContractsRow{}
	for _, r := range rows {
		if r.Result.Ops != uint64(p.MeasureOps) {
			t.Errorf("%v open=%d: measured %d ops, want %d", r.Scheme, r.MaxOpen, r.Result.Ops, p.MeasureOps)
		}
		if r.Result.HitRatio < 0 || r.Result.HitRatio > 1 {
			t.Errorf("%v open=%d: hit ratio %v out of range", r.Scheme, r.MaxOpen, r.Result.HitRatio)
		}
		if r.Result.WAFactor < 1 {
			t.Errorf("%v open=%d: WAF %v below 1", r.Scheme, r.MaxOpen, r.Result.WAFactor)
		}
		if r.MaxActive != r.MaxOpen+p.ActiveSlack {
			t.Errorf("%v: active %d, want open %d + slack %d", r.Scheme, r.MaxActive, r.MaxOpen, p.ActiveSlack)
		}
		byKey[r.Scheme.String()+"@"+strconv.Itoa(r.MaxOpen)] = r
	}
	if _, ok := byKey["File-Cache@1"]; ok {
		t.Error("File-Cache row at open=1 should be omitted (f2fs needs two log heads)")
	}
	// A single open zone is below the middle layer's 4-zone working set:
	// every round-robin flush to a closed zone must transition another zone
	// out of the open state first. That pressure must surface as stalls,
	// never as failed flushes (Ops checked above).
	tight := byKey["Region-Cache@1"]
	if tight.BudgetStalls == 0 {
		t.Error("Region-Cache at open=1: no budget stalls recorded under a 4-zone working set")
	}
	wide := byKey["Region-Cache@14"]
	if wide.BudgetStalls != 0 {
		t.Errorf("Region-Cache at open=14: %d budget stalls with the working set inside the cap", wide.BudgetStalls)
	}
	// Block-Cache runs on a conventional SSD: the limits must not change its
	// results (same seed, same workload, same device stack).
	if a, b := byKey["Block-Cache@14"].Result, byKey["Block-Cache@1"].Result; a != b {
		t.Errorf("Block-Cache control rows differ across limits:\n  open=14: %+v\n  open=1:  %+v", a, b)
	}

	rep := NewContractsReport(rows)
	if err := rep.Validate(); err != nil {
		t.Fatalf("contracts report invalid: %v", err)
	}
	if len(rep.Contracts) != len(rows) {
		t.Fatalf("report has %d rows, want %d", len(rep.Contracts), len(rows))
	}
}
