package harness

import (
	"os"
	"path/filepath"
	"testing"
)

func smallCDNParams() CDNParams {
	return CDNParams{
		Zones:      4,
		Objects:    300,
		WarmupOps:  200,
		MeasureOps: 400,
		Seed:       42,
		ChunkSizes: []int{64 << 10, 256 << 10},
		Schemes:    []Scheme{RegionCache, ZoneCache},
	}
}

func TestRunCDNSmoke(t *testing.T) {
	p := smallCDNParams()
	rows, err := RunCDN(p)
	if err != nil {
		t.Fatalf("RunCDN: %v", err)
	}
	if want := len(p.Schemes) * len(p.ChunkSizes); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Ops != p.MeasureOps {
			t.Errorf("%v chunk=%d: Ops = %d, want %d", r.Scheme, r.ChunkBytes, r.Ops, p.MeasureOps)
		}
		// The read-through loop's accounting invariant: every read is
		// either served from cache or becomes a fill.
		if r.Reads != r.ObjectHits+r.Fills {
			t.Errorf("%v chunk=%d: reads=%d != hits=%d + fills=%d",
				r.Scheme, r.ChunkBytes, r.Reads, r.ObjectHits, r.Fills)
		}
		if r.Reads+r.Deletes != r.Ops {
			t.Errorf("%v chunk=%d: reads=%d + deletes=%d != ops=%d",
				r.Scheme, r.ChunkBytes, r.Reads, r.Deletes, r.Ops)
		}
		if r.Reads == 0 || r.Fills == 0 {
			t.Errorf("%v chunk=%d: degenerate window (reads=%d fills=%d)",
				r.Scheme, r.ChunkBytes, r.Reads, r.Fills)
		}
		if ratio := r.ObjectHitRatio(); ratio < 0 || ratio > 1 {
			t.Errorf("%v chunk=%d: hit ratio %v out of range", r.Scheme, r.ChunkBytes, ratio)
		}
		if r.ServedBytes == 0 || r.FillBytes == 0 {
			t.Errorf("%v chunk=%d: no bytes moved (served=%d filled=%d)",
				r.Scheme, r.ChunkBytes, r.ServedBytes, r.FillBytes)
		}
		if r.OpsPerSec <= 0 {
			t.Errorf("%v chunk=%d: OpsPerSec = %v", r.Scheme, r.ChunkBytes, r.OpsPerSec)
		}
		if r.WAFactor < 1 {
			t.Errorf("%v chunk=%d: WAFactor = %v < 1", r.Scheme, r.ChunkBytes, r.WAFactor)
		}
	}
}

func TestRunCDNDeterminism(t *testing.T) {
	p := smallCDNParams()
	p.Schemes = []Scheme{RegionCache}
	p.ChunkSizes = []int{128 << 10}
	a, err := RunCDN(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCDN(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Fatalf("runs diverged:\n  %+v\n  %+v", a, b)
	}
}

func TestCDNReportRoundTrip(t *testing.T) {
	p := smallCDNParams()
	p.Schemes = []Scheme{RegionCache}
	rows, err := RunCDN(p)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewCDNReport(rows)
	if err := rep.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	dir := t.TempDir()
	path, err := rep.WriteFile(dir)
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if filepath.Base(path) != "BENCH_cdn.json" {
		t.Fatalf("wrote %q, want BENCH_cdn.json", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatalf("ParseReport: %v", err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-trip Validate: %v", err)
	}
	if len(back.CDN) != len(rows) {
		t.Fatalf("round-trip rows = %d, want %d", len(back.CDN), len(rows))
	}
	for i, r := range back.CDN {
		if r.Reads != r.ObjectHits+r.Fills {
			t.Errorf("row %d: wire accounting broken: reads=%d hits=%d fills=%d",
				i, r.Reads, r.ObjectHits, r.Fills)
		}
	}
}
