package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"znscache/internal/cache"
)

func sampleSchemeResult(s Scheme) SchemeResult {
	return SchemeResult{
		Scheme:     s,
		OpsPerSec:  123456.5,
		HitRatio:   0.875,
		WAFactor:   1.25,
		SetP50:     90 * time.Microsecond,
		SetP99:     3 * time.Millisecond,
		GetP50:     40 * time.Microsecond,
		GetP99:     900 * time.Microsecond,
		CacheBytes: 400 << 20,
		SimTime:    17 * time.Second,
		Ops:        1_000_000,
	}
}

// TestReportRoundTrip locks the wire schema: every builder's document must
// encode, parse, and compare equal — emit → parse → equal.
func TestReportRoundTrip(t *testing.T) {
	reports := map[string]*Report{
		"fig2": NewFig2Report([]SchemeResult{
			sampleSchemeResult(ZoneCache), sampleSchemeResult(RegionCache),
		}),
		"fig3": NewFig3Report([]Fig3Result{{
			Label:       "Region-Cache 1 MiB",
			RegionBytes: 1 << 20,
			Records: []cache.FillRecord{
				{Seq: 0, Duration: 5 * time.Millisecond},
				{Seq: 1, Duration: 80 * time.Millisecond, Evicted: true},
			},
			EvictionOnsetSeq: 1,
			MeanBefore:       5 * time.Millisecond,
			MeanAfter:        80 * time.Millisecond,
		}}),
		"fig4_table1": NewFig4Table1Report([]Fig4Row{
			{Scheme: BlockCache, OPRatio: 0.1, Result: sampleSchemeResult(BlockCache)},
		}),
		"fig5": NewFig5Report([]Fig5Row{{
			Scheme: FileCache, ER: 25, OpsPerSec: 420.5, SecondaryHitRatio: 0.6,
			P50: time.Millisecond, P99: 40 * time.Millisecond, SimTime: time.Minute,
		}}),
		"table2": NewTable2Report([]Table2Row{
			{Zones: 5, CacheGiB: 5, OpsPerSec: 300, HitRatio: 0.55},
		}),
		"smallzone": NewSmallZoneReport([]SmallZoneRow{
			{Label: "Zone-Cache 4 MiB", ZoneMiB: 4, Result: sampleSchemeResult(ZoneCache)},
		}),
	}
	for experiment, rep := range reports {
		if rep.Experiment != experiment {
			t.Errorf("builder for %q stamped experiment %q", experiment, rep.Experiment)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: WriteJSON: %v", experiment, err)
		}
		parsed, err := ParseReport(buf.Bytes())
		if err != nil {
			t.Fatalf("%s: ParseReport: %v", experiment, err)
		}
		if !reflect.DeepEqual(rep, parsed) {
			t.Errorf("%s: round trip drifted.\nemitted: %+v\nparsed:  %+v", experiment, rep, parsed)
		}
	}
}

func TestReportValidate(t *testing.T) {
	good := NewTable2Report([]Table2Row{{Zones: 4}})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	bad := *good
	bad.Schema = "something/else"
	if err := bad.Validate(); err == nil {
		t.Error("wrong schema accepted")
	}
	bad = *good
	bad.Experiment = "fig9"
	if err := bad.Validate(); err == nil {
		t.Error("unknown experiment accepted")
	}
	bad = *good
	bad.Table2 = nil
	if err := bad.Validate(); err == nil {
		t.Error("missing section accepted")
	}
	bad = *good
	bad.Fig2 = []SchemeResultJSON{{}}
	if err := bad.Validate(); err == nil {
		t.Error("extra section accepted")
	}
}

func TestReportWriteFile(t *testing.T) {
	dir := t.TempDir()
	rep := NewFig2Report([]SchemeResult{sampleSchemeResult(ZoneCache)})
	path, err := rep.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := filepath.Base(path), "BENCH_fig2.json"; got != want {
		t.Fatalf("wrote %q, want %q", got, want)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Fig2[0].Scheme != "Zone-Cache" || parsed.Fig2[0].SimTimeNs != int64(17*time.Second) {
		t.Fatalf("parsed file content wrong: %+v", parsed.Fig2[0])
	}
	// An invalid document must not reach disk.
	broken := &Report{Schema: ReportSchema, Experiment: "fig2"}
	if _, err := broken.WriteFile(dir); err == nil {
		t.Fatal("sectionless report written without error")
	}
}

func TestFig3SampleIndices(t *testing.T) {
	cases := []struct {
		n, maxPoints, must int
	}{
		{0, 20, 0},
		{1, 20, 0},
		{19, 20, 7},
		{100, 20, 0},
		{100, 20, 57}, // onset off the stride grid must still appear
		{100, 20, 99},
		{100, 20, -1}, // no onset recorded
		{5000, 20, 4999},
		{7, 1, 3},
	}
	for _, tc := range cases {
		got := fig3SampleIndices(tc.n, tc.maxPoints, tc.must)
		if tc.n == 0 {
			if got != nil {
				t.Errorf("n=0 returned %v", got)
			}
			continue
		}
		if !sort.IntsAreSorted(got) {
			t.Errorf("n=%d must=%d: not sorted: %v", tc.n, tc.must, got)
		}
		seen := map[int]bool{}
		for _, i := range got {
			if i < 0 || i >= tc.n {
				t.Errorf("n=%d: index %d out of range", tc.n, i)
			}
			if seen[i] {
				t.Errorf("n=%d: duplicate index %d in %v", tc.n, i, got)
			}
			seen[i] = true
		}
		if tc.must >= 0 && tc.must < tc.n && !seen[tc.must] {
			t.Errorf("n=%d: required index %d missing from %v", tc.n, tc.must, got)
		}
		if len(got) > tc.maxPoints+2 {
			t.Errorf("n=%d maxPoints=%d: %d indices sampled", tc.n, tc.maxPoints, len(got))
		}
	}
}

// TestPrintFig3IncludesOnset checks the satellite fix end to end: the
// rendered series always contains the eviction-onset record, and a run that
// never evicted prints "n/a" instead of a division by zero.
func TestPrintFig3IncludesOnset(t *testing.T) {
	records := make([]cache.FillRecord, 100)
	for i := range records {
		records[i] = cache.FillRecord{Seq: uint64(i), Duration: time.Millisecond}
	}
	records[57].Evicted = true
	records[57].Duration = 90 * time.Millisecond
	var buf bytes.Buffer
	PrintFig3(&buf, []Fig3Result{{
		Label:            "onset",
		RegionBytes:      1 << 20,
		Records:          records,
		EvictionOnsetSeq: 57,
		MeanBefore:       time.Millisecond,
		MeanAfter:        90 * time.Millisecond,
	}})
	if !strings.Contains(buf.String(), "\n  57 ") {
		t.Fatalf("onset record seq 57 missing from output:\n%s", buf.String())
	}

	buf.Reset()
	PrintFig3(&buf, []Fig3Result{{
		Label:       "no-evictions",
		RegionBytes: 1 << 20,
		Records:     records[:5],
	}})
	if !strings.Contains(buf.String(), "n/a") {
		t.Fatalf("zero MeanBefore did not render n/a:\n%s", buf.String())
	}
}
