package harness

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"znscache/internal/bigobj"
	"znscache/internal/cache"
	"znscache/internal/sim"
)

// Crash consistency for chunked large objects. The engine-level oracle
// (RunCrash) proves single-value recovery; bigobj adds a failure mode of its
// own: a manifest can survive restore while some of its chunks were lost to
// the crash (unflushed region, quarantine, snapshot repair). Serving such an
// object as a short or spliced read would be wrong data at object scale even
// though every surviving engine value is individually intact. The contract
// under test: after restore, every object acknowledged at the snapshot cut
// is either served whole (matching an acknowledged version) or counted lost
// as one object — never a short read, never a cross-generation splice.

// BigObjCrashParams configures one run. The embedded CrashParams carries the
// scheme, seed, op budgets, and fault rates (CorruptSnapshot is not
// supported here — the engine-level oracle owns that check; chunked-object
// loss is produced by the crash itself).
type BigObjCrashParams struct {
	CrashParams
	// ChunkSize is the bigobj chunk payload size (default 8 KiB — small
	// against the 64 KiB crash-rig regions so objects span regions and
	// partial chunk loss is common).
	ChunkSize int
	// EagerRepair runs Store.Repair over the restored snapshot's keys
	// before the oracle replay (the recovery-time sweep); false leaves
	// detection to the lazy read path. Both must satisfy the oracle.
	EagerRepair bool
}

// BigObjCrashReport is the oracle's verdict.
type BigObjCrashReport struct {
	Scheme Scheme
	Seed   uint64
	// Crashed reports whether the armed crash fired within the op budget.
	Crashed     bool
	CrashWrites uint64
	// Hits/Lost partition the objects acknowledged at the snapshot cut:
	// served whole with an acknowledged version, or dropped (whole-object
	// miss / clean partial-object failure).
	Hits, Lost int
	// WrongData counts objects served with bytes matching no acknowledged
	// version — including short reads. Must be zero.
	WrongData int
	// PartialFailures is how many lost objects failed through the clean
	// partial-object path (manifest present, chunks gone) rather than a
	// whole-object miss.
	PartialFailures int
	// Repairs is the number of manifests dropped (eager sweep + lazy read
	// path) on the restored store.
	Repairs      uint64
	RestoreDrops uint64
}

// Err folds the report into a pass/fail error.
func (r *BigObjCrashReport) Err() error {
	if r.WrongData > 0 {
		return fmt.Errorf("harness: bigobj %v seed %d: %d objects served wrong or short data",
			r.Scheme, r.Seed, r.WrongData)
	}
	return nil
}

// RunBigObjCrash executes one seeded crash-consistency run over the chunked
// object layer. Identical params replay identical runs.
func RunBigObjCrash(p BigObjCrashParams) (*BigObjCrashReport, error) {
	p.fillDefaults()
	if p.Keys > 24 {
		// Objects are 1-2 orders larger than the engine oracle's values;
		// a smaller catalog keeps the tiny crash rig churning instead of
		// thrashing.
		p.Keys = 24
	}
	if p.ChunkSize == 0 {
		p.ChunkSize = 8 << 10
	}
	p.Faults.Seed = p.Seed
	rig, err := Build(crashRigConfig(p.CrashParams))
	if err != nil {
		return nil, fmt.Errorf("harness: bigobj crash rig: %w", err)
	}
	store, err := bigobj.New(bigobj.Config{
		Backend: rig.Engine, ChunkSize: p.ChunkSize, Clock: rig.Clock,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: bigobj crash store: %w", err)
	}

	rng := sim.NewRand(p.Seed ^ 0xb10b0b1ec7a5a5a5)
	rep := &BigObjCrashReport{Scheme: p.Scheme, Seed: p.Seed}

	keyOf := func(i int) string { return fmt.Sprintf("obj-%03d", i) }
	value := func() []byte {
		// 1.5-5 chunks with ragged tails: most objects span regions.
		b := make([]byte, p.ChunkSize+rng.Intn(4*p.ChunkSize)+rng.Intn(1000))
		rng.Bytes(b)
		return b
	}
	acked := make(map[string][]byte, p.Keys)
	writeOne := func(record map[string][][]byte) {
		k := keyOf(rng.Intn(p.Keys))
		v := value()
		if err := store.Put(k, bytes.NewReader(v), 0); err == nil {
			acked[k] = v
			if record != nil {
				record[k] = append(record[k], v)
			}
		}
	}

	// Phase 1: warm. Puts are chunk streams, so the warm budget is spent
	// in objects, not engine ops.
	warmPuts := p.WarmOps / 5
	if warmPuts < 20 {
		warmPuts = 20
	}
	for i := 0; i < warmPuts; i++ {
		writeOne(nil)
	}

	snap, err := rig.Engine.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("harness: bigobj snapshot: %w", err)
	}
	atSnap := make(map[string][]byte, len(acked))
	for k, v := range acked {
		atSnap[k] = v
	}
	afterSnap := make(map[string][][]byte, p.Keys)

	// Phase 2: arm the crash and write into it.
	w0 := rig.Faults.Writes()
	span := int(w0 / 2)
	if span < 2 {
		span = 2
	}
	rig.Faults.ArmCrash(w0 + 1 + uint64(rng.Intn(span)))
	for i := 0; i < p.MaxPostOps/5 && !rig.Faults.Crashed(); i++ {
		writeOne(afterSnap)
	}
	rep.Crashed = rig.Faults.Crashed()
	rep.CrashWrites = rig.Faults.Writes()

	// The process dies; restore over the surviving device state.
	rig.Faults.Revive()
	restored, err := cache.Restore(cache.Config{
		Store:       rig.Store,
		TrackValues: true,
		Clock:       rig.Clock,
	}, snap)
	if err != nil {
		return nil, fmt.Errorf("harness: bigobj restore: %w", err)
	}
	rstore, err := bigobj.New(bigobj.Config{
		Backend: restored, ChunkSize: p.ChunkSize, Clock: rig.Clock,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: bigobj restored store: %w", err)
	}
	rep.RestoreDrops = restored.Stats().RestoreDrops

	if p.EagerRepair {
		keys, err := cache.SnapshotKeys(snap)
		if err != nil {
			return nil, fmt.Errorf("harness: snapshot keys: %w", err)
		}
		// Chunk keys fail the manifest decode and are skipped; only
		// object keys are candidates.
		rstore.Repair(keys)
	}

	// Oracle replay in fixed order.
	keys := make([]string, 0, len(atSnap))
	for k := range atSnap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rr, err := rstore.NewRangeReader(k, 0, -1)
		if err != nil {
			rep.Lost++
			continue
		}
		data, rerr := io.ReadAll(rr)
		rr.Close()
		if rerr != nil {
			// Clean partial-object failure: manifest outlived its chunks
			// and the read refused to serve a short object.
			rep.Lost++
			rep.PartialFailures++
			continue
		}
		if matchesOracle(data, atSnap[k], afterSnap[k]) {
			rep.Hits++
		} else {
			rep.WrongData++
		}
	}

	// The restored store must keep serving chunked objects.
	for i := 0; i < 8; i++ {
		k := keyOf(rng.Intn(p.Keys))
		v := value()
		if err := rstore.Put(k, bytes.NewReader(v), 0); err != nil {
			return nil, fmt.Errorf("harness: post-recovery bigobj Put: %w", err)
		}
		got := make([]byte, len(v))
		if _, err := rstore.ReadAt(k, got, 0); err != nil {
			return nil, fmt.Errorf("harness: post-recovery bigobj ReadAt: %w", err)
		}
		if !bytes.Equal(got, v) {
			return nil, fmt.Errorf("harness: post-recovery bigobj read mismatch")
		}
	}

	rep.Repairs = rstore.Stats().ManifestRepairs
	return rep, nil
}
