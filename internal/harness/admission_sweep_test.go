package harness

import (
	"bytes"
	"strings"
	"testing"
)

func smokeAdmissionSweep() AdmissionSweepParams {
	p := DefaultAdmissionSweep()
	p.Keys = 16 << 10
	p.WarmupOps = 60_000
	p.MeasureOps = 60_000
	return p
}

// TestAdmissionSweepSmoke runs the sweep at a reduced scale and checks its
// structural invariants: row layout, per-policy measurements, the budget
// landing only on dynamic-random rows, and the budget actually constraining
// device writes relative to the admit-all baseline.
func TestAdmissionSweepSmoke(t *testing.T) {
	p := smokeAdmissionSweep()
	rows, err := RunAdmissionSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	perScheme := 1 + len(p.Policies)
	if want := len(AllSchemes) * perScheme; len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	baseline := map[Scheme]uint64{}
	for i, r := range rows {
		if i%perScheme == 0 {
			if r.Policy != "all" {
				t.Fatalf("row %d: scheme %v starts with policy %q, want all", i, r.Scheme, r.Policy)
			}
			if r.AdmitRejects != 0 {
				t.Fatalf("admit-all rejected %d inserts", r.AdmitRejects)
			}
			baseline[r.Scheme] = r.DeviceWriteBytes
		} else if r.AdmitRejects == 0 {
			t.Fatalf("%v/%s: policy never rejected", r.Scheme, r.Policy)
		}
		if r.DeviceWriteBytes == 0 || r.HostWriteBytes == 0 {
			t.Fatalf("%v/%s: no write bytes measured (%d dev, %d host)",
				r.Scheme, r.Policy, r.DeviceWriteBytes, r.HostWriteBytes)
		}
		if r.Result.HitRatio <= 0 || r.Result.HitRatio > 1 {
			t.Fatalf("%v/%s: hit ratio %v", r.Scheme, r.Policy, r.Result.HitRatio)
		}
		if isDyn := r.Policy == "dynamic-random"; isDyn != (r.BudgetBytesPerSec > 0) {
			t.Fatalf("%v/%s: budget %v on a non-dynamic row (or missing)",
				r.Scheme, r.Policy, r.BudgetBytesPerSec)
		}
		if r.Policy == "dynamic-random" && r.DeviceWriteBytes >= baseline[r.Scheme] {
			t.Fatalf("%v: dynamic-random wrote %d device bytes, not below the %d admit-all baseline",
				r.Scheme, r.DeviceWriteBytes, baseline[r.Scheme])
		}
	}

	var buf bytes.Buffer
	PrintAdmission(&buf, rows)
	if !strings.Contains(buf.String(), "dynamic-random") {
		t.Fatal("PrintAdmission output missing policy rows")
	}
	rep := NewAdmissionReport(rows)
	if err := rep.Validate(); err != nil {
		t.Fatalf("report: %v", err)
	}
	if len(rep.Admission) != len(rows) {
		t.Fatalf("report rows = %d, want %d", len(rep.Admission), len(rows))
	}
}

// TestAdmissionSweepDeterministic: the sweep's worker pool must not leak
// scheduling into results — two runs with the same params agree exactly.
func TestAdmissionSweepDeterministic(t *testing.T) {
	p := smokeAdmissionSweep()
	p.MeasureOps = 30_000
	p.WarmupOps = 30_000
	a, err := RunAdmissionSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAdmissionSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d diverged between identical runs:\n  run1: %+v\n  run2: %+v", i, a[i], b[i])
		}
	}
}
