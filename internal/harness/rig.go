// Package harness assembles the four cache schemes over hardware-compatible
// simulated devices and reruns every experiment in the paper's evaluation
// (§4): Figure 2 (overall comparison), Figure 3 (region fill times),
// Figure 4 + Table 1 (OP sweep), Figure 5 (RocksDB end-to-end), and
// Table 2 (Zone-Cache size sweep).
//
// Scale. The paper's testbed is a 1 TB ZNS SSD with 904 × 1077 MiB zones.
// The simulation keeps every ratio that drives the results — region:zone
// size ratio (≈1:64), cache:device ratio, OP ratios, op mixes, skew — but
// shrinks absolute capacity ~64x so experiments run in seconds. Absolute
// numbers therefore differ from the paper; shapes (ordering, rough factors,
// crossovers) are the reproduction target, as recorded in EXPERIMENTS.md.
package harness

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"znscache/internal/cache"
	"znscache/internal/device"
	"znscache/internal/f2fs"
	"znscache/internal/fault"
	"znscache/internal/flash"
	"znscache/internal/middle"
	"znscache/internal/obs"
	"znscache/internal/sim"
	"znscache/internal/ssd"
	"znscache/internal/store"
	"znscache/internal/zns"
)

// Scheme identifies one of the paper's four designs.
type Scheme int

// The four schemes of Figure 1 (plus the Block-Cache baseline). The zero
// value is Region-Cache, the paper's main artifact and this library's
// default.
const (
	RegionCache Scheme = iota
	ZoneCache
	FileCache
	BlockCache
)

// String names the scheme as the paper does.
func (s Scheme) String() string {
	switch s {
	case BlockCache:
		return "Block-Cache"
	case FileCache:
		return "File-Cache"
	case ZoneCache:
		return "Zone-Cache"
	case RegionCache:
		return "Region-Cache"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// AllSchemes lists the four schemes in the paper's presentation order.
var AllSchemes = []Scheme{RegionCache, ZoneCache, FileCache, BlockCache}

// HWProfile describes the simulated hardware both device types share.
type HWProfile struct {
	// Zones is the zone count of the flash the experiment may use.
	Zones int
	// BlocksPerZone and PagesPerBlock set the zone size
	// (zone = BlocksPerZone × PagesPerBlock × 4 KiB).
	BlocksPerZone int
	PagesPerBlock int
	// Channels/DiesPerChan set array parallelism.
	Channels, DiesPerChan int
}

// DefaultHW is the micro-benchmark profile: 16 MiB zones (64x scaled from
// the ZN540's 1077 MiB), 16-die array.
func DefaultHW(zones int) HWProfile {
	return HWProfile{
		Zones:         zones,
		BlocksPerZone: 16,  // 16 × 1 MiB blocks = 16 MiB zone
		PagesPerBlock: 256, // 1 MiB blocks
		Channels:      8,
		DiesPerChan:   2,
	}
}

// Geometry derives the flash geometry.
func (h HWProfile) Geometry() flash.Geometry {
	dies := h.Channels * h.DiesPerChan
	totalBlocks := h.Zones * h.BlocksPerZone
	bpd := (totalBlocks + dies - 1) / dies
	return flash.Geometry{
		Channels:      h.Channels,
		DiesPerChan:   h.DiesPerChan,
		BlocksPerDie:  bpd,
		PagesPerBlock: h.PagesPerBlock,
		PageSize:      device.SectorSize,
	}
}

// ZoneBytes is the derived zone size.
func (h HWProfile) ZoneBytes() int64 {
	return int64(h.BlocksPerZone) * int64(h.PagesPerBlock) * device.SectorSize
}

// actualZones is the zone count after geometry rounding.
func (h HWProfile) actualZones() int {
	g := h.Geometry()
	return g.Blocks() / h.BlocksPerZone
}

// RigConfig builds one scheme instance.
type RigConfig struct {
	Scheme Scheme
	HW     HWProfile
	// CacheBytes is the cache capacity exposed to the engine. Zone-Cache
	// ignores it in favour of ZoneCount full zones (no OP needed).
	CacheBytes int64
	// RegionBytes is the engine region size for Block/File/Region schemes;
	// Zone-Cache regions are zone-sized by construction.
	RegionBytes int64
	// OPRatio is the over-provisioning for Block (device FTL) and File
	// (filesystem reserve) schemes, and implicitly Region (device minus
	// CacheBytes). Default 0.20.
	OPRatio float64
	// FSMetaOverhead is the extra zone fraction F2FS loses to metadata on
	// top of OPRatio (File-Cache only). Figure 2 uses the paper's honest
	// accounting (~0.30: 38 zones + a 6 GiB block device for a 20 GiB
	// cache); Figure 4 folds everything into the stated OP (0).
	FSMetaOverhead    float64
	FSMetaOverheadSet bool
	// ZoneCount limits Zone-Cache to this many zones (0 = CacheBytes/zone).
	ZoneCount int
	// BufferMemory is the engine's region-buffer budget (default 16 MiB) —
	// fixed across schemes, so zone-sized regions afford fewer buffers.
	BufferMemory int64
	// Policy passes through to the engine when PolicySet is true;
	// otherwise the Navy-faithful default (FIFO region order) is used.
	Policy    cache.Policy
	PolicySet bool
	// Admission hands a pre-built policy instance to this rig's single
	// engine. Prefer AdmissionFactory: an instance is bound to one engine,
	// and handing the same instance to several rigs (or shards) is the data
	// race the factory seam exists to prevent.
	Admission cache.Admission
	// AdmissionFactory builds the engine's admission policy, seeded with
	// AdmissionSeed and bound to the engine's clock. Nil falls back to the
	// process-wide factory installed with SetAdmissionFactory (nil there too
	// admits everything). Ignored when Admission is set.
	AdmissionFactory cache.AdmissionFactory
	AdmissionSeed    uint64
	// CoDesign enables the §3.4 GC/cache co-design on Region-Cache: GC
	// drops regions from the coldest CoDesignColdFrac of the LRU instead
	// of migrating them.
	CoDesign         bool
	CoDesignColdFrac float64
	// ReinsertHits enables the engine's hits-based reinsertion policy.
	ReinsertHits uint8
	// Clock shares a virtual clock (e.g. with an LSM); nil = fresh clock.
	Clock *sim.Clock
	// TrackValues / StoreData enable full-fidelity payloads.
	TrackValues bool
	// ReadIndex enables the engine's lock-free read index (the serving
	// layer's fast-read path); off keeps classic single-threaded accounting.
	ReadIndex bool
	// Trace wires an event tracer through every layer of the rig. Nil falls
	// back to the process-wide tracer installed with SetTracer (nil there too
	// disables tracing).
	Trace *obs.Tracer
	// Spans samples wall-clock engine stage timings into the recorder (the
	// serving layer's request-stage spans); nil disables sampling.
	Spans *obs.SpanRecorder
	// Faults threads a fault injector under the scheme's devices. Nil falls
	// back to the process-wide config installed with SetFaultConfig (nil
	// there too runs fault-free). The injector is exposed as Rig.Faults.
	Faults *fault.Config
	// MaxOpenZones / MaxActiveZones bound the ZNS device's zone resources
	// (0 = device defaults: 14 open, active = open cap). Block-Cache runs
	// on a conventional SSD and ignores them. The unwritten-contracts sweep
	// tightens these to measure how each scheme degrades.
	MaxOpenZones   int
	MaxActiveZones int
	// MiddleOpenZones overrides how many zones Region-Cache's middle layer
	// writes concurrently (0 = the default 2); still clamped to the zone
	// slack, and at run time to the device's active budget.
	MiddleOpenZones int
}

func (c *RigConfig) fillDefaults() {
	if c.OPRatio == 0 {
		c.OPRatio = 0.20
	}
	if c.RegionBytes == 0 {
		c.RegionBytes = 256 << 10 // 16 MiB regions at paper scale / 64
	}
	if c.BufferMemory == 0 {
		c.BufferMemory = 16 << 20
	}
	if c.CoDesignColdFrac == 0 {
		c.CoDesignColdFrac = 0.3
	}
	if c.Clock == nil {
		c.Clock = sim.NewClock()
	}
	if !c.PolicySet {
		// Region eviction follows allocation order (FIFO). The paper's
		// "LRU" (§4.1) is CacheLib's DRAM-pool item policy; Navy's flash
		// regions are reclaimed oldest-first. Access-ordered region LRU is
		// available via PolicySet for the ablation bench — under item-level
		// zipf every old region keeps receiving stray hits, so region-LRU
		// degenerates to near-random region eviction and write
		// amplification multiplies (BenchmarkAblationPolicy shows this).
		c.Policy = cache.FIFO
	}
}

// Rig is one assembled scheme: the engine plus handles to every layer's
// stats.
type Rig struct {
	Scheme Scheme
	Engine *cache.Cache
	Clock  *sim.Clock
	// Store is the engine's region store (equal to Middle for Region-Cache).
	Store cache.RegionStore

	// Exactly one device handle is non-nil per scheme pair below.
	SSD    *ssd.SSD
	ZNS    *zns.Device
	FS     *f2fs.FS
	Middle *middle.Layer

	// Faults is the rig's injector when fault injection is enabled; nil
	// otherwise. FaultZoned/FaultBlock are the device wrappers the stack
	// actually runs on (FaultZoned also audits the ZNS zone contract).
	Faults     *fault.Injector
	FaultZoned *fault.ZonedDevice
	FaultBlock *fault.BlockDevice
}

// Process-wide observability hooks. The bench binaries install a registry
// (and optionally a tracer) once at startup; every rig Build() assembles
// afterwards wires itself in automatically, so sweeps that rebuild rigs per
// point stay observable without threading the registry through every
// RunFig*/RunTable* signature. Atomic pointers because experiments build
// rigs from the forEachPoint worker pool.
var (
	globalRegistry atomic.Pointer[obs.Registry]
	globalTracer   atomic.Pointer[obs.Tracer]
	globalFaults   atomic.Pointer[fault.Config]
	// globalAdmission boxes the factory interface (atomic.Pointer cannot
	// hold an interface directly).
	globalAdmission atomic.Pointer[admissionBox]
	rigSeq          atomic.Uint64
)

// admissionBox wraps the AdmissionFactory interface for atomic storage.
type admissionBox struct{ f cache.AdmissionFactory }

// SetMetricsRegistry installs the registry subsequently built rigs register
// their instruments into (nil uninstalls).
func SetMetricsRegistry(r *obs.Registry) { globalRegistry.Store(r) }

// SetTracer installs the tracer subsequently built rigs emit events into
// (nil uninstalls). RigConfig.Trace overrides it per rig.
func SetTracer(t *obs.Tracer) { globalTracer.Store(t) }

// SetFaultConfig installs a process-wide fault configuration; every rig
// built afterwards runs on fault-injecting device wrappers seeded from it
// (nil uninstalls). RigConfig.Faults overrides it per rig. The bench
// binaries' -faults flag lands here.
func SetFaultConfig(c *fault.Config) { globalFaults.Store(c) }

// SetAdmissionFactory installs a process-wide admission factory; every rig
// built afterwards gets its own policy instance from it (nil uninstalls).
// RigConfig.Admission/AdmissionFactory override it per rig. The bench
// binaries' -admission flag lands here. Factories are immutable
// configuration values, so sharing one across concurrently-built rigs is
// safe — each Build calls New for a fresh instance.
func SetAdmissionFactory(f cache.AdmissionFactory) {
	if f == nil {
		globalAdmission.Store(nil)
		return
	}
	globalAdmission.Store(&admissionBox{f: f})
}

// Build assembles a scheme.
func Build(cfg RigConfig) (*Rig, error) {
	cfg.fillDefaults()
	if cfg.Trace == nil {
		cfg.Trace = globalTracer.Load()
	}
	if cfg.Faults == nil {
		cfg.Faults = globalFaults.Load()
	}
	if cfg.Admission == nil && cfg.AdmissionFactory == nil {
		if box := globalAdmission.Load(); box != nil {
			cfg.AdmissionFactory = box.f
		}
	}
	geo := cfg.HW.Geometry()
	timing := flash.DefaultTiming()
	rig := &Rig{Scheme: cfg.Scheme, Clock: cfg.Clock}
	if cfg.Faults != nil {
		rig.Faults = fault.NewInjector(*cfg.Faults)
	}

	var st cache.RegionStore
	switch cfg.Scheme {
	case BlockCache:
		dev, err := ssd.New(ssd.Config{
			Geometry: geo, Timing: timing,
			OPRatio: cfg.OPRatio, StoreData: cfg.TrackValues,
		})
		if err != nil {
			return nil, fmt.Errorf("harness: block ssd: %w", err)
		}
		// The cache cannot exceed what the FTL exports ("assuming at least
		// 5 GiB OP space", §4.1) — clamp like CacheLib sizing to a device.
		n := int(cfg.CacheBytes / cfg.RegionBytes)
		if max := int(dev.Size() / cfg.RegionBytes); n > max {
			n = max
		}
		var bdev device.BlockDevice = dev
		if rig.Faults != nil {
			rig.FaultBlock = fault.WrapBlock(dev, rig.Faults)
			bdev = rig.FaultBlock
		}
		s, err := store.NewBlockStore(bdev, cfg.RegionBytes, n)
		if err != nil {
			return nil, fmt.Errorf("harness: block store: %w", err)
		}
		rig.SSD = dev
		st = s

	case FileCache:
		dev, err := newZNSDevice(cfg, geo, timing)
		if err != nil {
			return nil, err
		}
		meta := cfg.FSMetaOverhead
		if !cfg.FSMetaOverheadSet {
			meta = 0.12
		}
		fs, err := f2fs.Mount(rig.wrapZoned(dev), f2fs.Config{OPRatio: cfg.OPRatio, MetaOverhead: meta})
		if err != nil {
			return nil, fmt.Errorf("harness: f2fs: %w", err)
		}
		size := cfg.CacheBytes
		if size > fs.UsableBytes() {
			size = fs.UsableBytes() / cfg.RegionBytes * cfg.RegionBytes
		}
		file, err := fs.Create("cachelib", size)
		if err != nil {
			return nil, fmt.Errorf("harness: cache file: %w", err)
		}
		s, err := store.NewFileStore(file, cfg.RegionBytes, 0)
		if err != nil {
			return nil, fmt.Errorf("harness: file store: %w", err)
		}
		rig.ZNS = dev
		rig.FS = fs
		st = s

	case ZoneCache:
		dev, err := newZNSDevice(cfg, geo, timing)
		if err != nil {
			return nil, err
		}
		n := cfg.ZoneCount
		if n == 0 {
			n = int(cfg.CacheBytes / dev.ZoneSize())
		}
		s, err := store.NewZoneStore(rig.wrapZoned(dev), n)
		if err != nil {
			return nil, fmt.Errorf("harness: zone store: %w", err)
		}
		rig.ZNS = dev
		st = s

	case RegionCache:
		dev, err := newZNSDevice(cfg, geo, timing)
		if err != nil {
			return nil, err
		}
		// Size the middle layer's concurrency and watermarks to the OP
		// actually available: slack zones beyond the live regions.
		rpz := int(dev0ZoneSize(cfg.HW) / cfg.RegionBytes)
		numRegions := int(cfg.CacheBytes / cfg.RegionBytes)
		occupied := (numRegions + rpz - 1) / rpz
		slack := cfg.HW.actualZones() - occupied
		// Two concurrently-written zones: enough to aggregate per-zone
		// bandwidth beyond a single zone (the §3.3 multi-zone writing)
		// while keeping the region-placement window — and therefore the
		// number of zones still "aging" toward fully-dead — narrow. A wide
		// window scatters region deaths and inflates GC migrations.
		open := 2
		if cfg.MiddleOpenZones > 0 {
			open = cfg.MiddleOpenZones
		}
		if open > slack-1 {
			open = slack - 1
		}
		if open < 1 {
			open = 1
		}
		// The reclaim watermark scales with the available slack (the paper
		// uses 8 empty zones on a 904-zone device and notes the threshold
		// is configurable per setup, §3.3). Half the slack leaves the rest
		// as aging room; squeezing that room is what makes GC migrations —
		// and therefore WA — sensitive to the OP ratio (Table 1).
		minEmpty := slack / 2
		if minEmpty > 8 {
			minEmpty = 8
		}
		if minEmpty < 2 {
			minEmpty = 2
		}
		// Never exceed the layer's structural capacity (open zones plus one
		// zone of GC working space must stay free).
		if capRegions := (cfg.HW.actualZones() - open - 1) * rpz; numRegions > capRegions {
			numRegions = capRegions
		}
		mcfg := middle.Config{
			RegionSize:    cfg.RegionBytes,
			NumRegions:    numRegions,
			OpenZones:     open,
			MinEmptyZones: minEmpty,
		}
		if cfg.CoDesign {
			// The engine does not exist yet; late-bind through the rig.
			frac := cfg.CoDesignColdFrac
			mcfg.DropFilter = func(id int) bool {
				return rig.Engine != nil && rig.Engine.RegionDroppable(id, frac)
			}
			mcfg.OnDrop = func(id int) {
				if rig.Engine != nil {
					rig.Engine.InvalidateRegion(id)
				}
			}
		}
		mid, err := middle.New(rig.wrapZoned(dev), mcfg)
		if err != nil {
			return nil, fmt.Errorf("harness: middle layer: %w", err)
		}
		mid.Trace = cfg.Trace
		rig.ZNS = dev
		rig.Middle = mid
		st = mid

	default:
		return nil, fmt.Errorf("harness: unknown scheme %v", cfg.Scheme)
	}

	// Dynamic-random admission regulates what the device actually absorbs:
	// point the controller at this rig's device byte counter (unless the
	// caller wired a source already). The devices above are assembled before
	// the engine, so the method value reads live counters from the start.
	if f, ok := cfg.AdmissionFactory.(cache.DynamicRandomFactory); ok && f.BytesWritten == nil {
		f.BytesWritten = rig.DeviceWriteBytes
		cfg.AdmissionFactory = f
	}
	eng, err := cache.New(cache.Config{
		Store:            st,
		Policy:           cfg.Policy,
		Admission:        cfg.Admission,
		AdmissionFactory: cfg.AdmissionFactory,
		AdmissionSeed:    cfg.AdmissionSeed,
		BufferMemory:     cfg.BufferMemory,
		TrackValues:      cfg.TrackValues,
		ReadIndex:        cfg.ReadIndex,
		ReinsertHits:     cfg.ReinsertHits,
		Clock:            cfg.Clock,
		Trace:            cfg.Trace,
		Spans:            cfg.Spans,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: engine: %w", err)
	}
	rig.Engine = eng
	rig.Store = st
	if reg := globalRegistry.Load(); reg != nil {
		rig.RegisterMetrics(reg, obs.L("rig", strconv.FormatUint(rigSeq.Add(1), 10)))
	}
	return rig, nil
}

// RegisterMetrics registers every layer of the rig into reg, with a scheme
// label appended to base. Experiments that rebuild a rig for the same
// (scheme, rig) label set simply replace the prior series.
func (r *Rig) RegisterMetrics(reg *obs.Registry, base obs.Labels) {
	ls := base.With("scheme", r.Scheme.String())
	r.Engine.MetricsInto(reg, ls)
	if r.SSD != nil {
		r.SSD.MetricsInto(reg, ls)
	}
	if r.ZNS != nil {
		r.ZNS.MetricsInto(reg, ls)
	}
	if r.FS != nil {
		r.FS.MetricsInto(reg, ls)
	}
	if r.Middle != nil {
		r.Middle.MetricsInto(reg, ls)
	}
	// The store is the middle layer itself for Region-Cache (already
	// registered above); the package store types register their own trio.
	if ms, ok := r.Store.(obs.MetricSource); ok {
		if mid, isMid := r.Store.(*middle.Layer); !isMid || mid != r.Middle {
			ms.MetricsInto(reg, ls)
		}
	}
	if r.Faults != nil {
		r.Faults.MetricsInto(reg, ls)
	}
}

// wrapZoned interposes the rig's fault wrapper between a fresh ZNS device
// and the layer above it; without faults the device is used directly.
func (r *Rig) wrapZoned(dev *zns.Device) zns.Zoned {
	if r.Faults == nil {
		return dev
	}
	r.FaultZoned = fault.WrapZoned(dev, r.Faults)
	return r.FaultZoned
}

// dev0ZoneSize computes the zone size without building a device.
func dev0ZoneSize(hw HWProfile) int64 { return hw.ZoneBytes() }

func newZNSDevice(cfg RigConfig, geo flash.Geometry, timing flash.Timing) (*zns.Device, error) {
	dev, err := zns.New(zns.Config{
		Geometry:       geo,
		Timing:         timing,
		BlocksPerZone:  cfg.HW.BlocksPerZone,
		StoreData:      cfg.TrackValues,
		MaxOpenZones:   cfg.MaxOpenZones,
		MaxActiveZones: cfg.MaxActiveZones,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: zns device: %w", err)
	}
	dev.Trace = cfg.Trace
	return dev, nil
}

// WAFactor returns the write-amplification factor at the layer the paper
// reports for each scheme: the middle layer for Region-Cache, the
// filesystem for File-Cache, the device FTL for Block-Cache, and the
// constant 1 for Zone-Cache.
func (r *Rig) WAFactor() float64 {
	switch r.Scheme {
	case RegionCache:
		return r.Middle.WA.Factor()
	case FileCache:
		return r.FS.WA.Factor()
	case BlockCache:
		return r.SSD.WA.Factor()
	case ZoneCache:
		return 1.0
	}
	return 1.0
}

// DeviceWriteBytes returns the bytes actually written to the flash medium so
// far — the quantity a device-lifetime write budget constrains, measured at
// the same layer WAFactor reports: middle-layer media writes for
// Region-Cache (host flushes plus GC migrations), filesystem media writes
// for File-Cache, FTL media writes for Block-Cache, and raw host writes for
// Zone-Cache (its device WA is 1 by construction).
func (r *Rig) DeviceWriteBytes() uint64 {
	switch r.Scheme {
	case RegionCache:
		return r.Middle.WA.Media()
	case FileCache:
		return r.FS.WA.Media()
	case BlockCache:
		return r.SSD.WA.Media()
	case ZoneCache:
		return r.ZNS.HostWrites.Load()
	}
	return 0
}
