package harness

import (
	"fmt"
	"time"

	"znscache/internal/cache"
	"znscache/internal/workload"
)

// SchemeResult is one scheme's micro-benchmark outcome.
type SchemeResult struct {
	Scheme     Scheme
	OpsPerSec  float64
	HitRatio   float64
	WAFactor   float64
	SetP50     time.Duration
	SetP99     time.Duration
	GetP50     time.Duration
	GetP99     time.Duration
	CacheBytes int64
	SimTime    time.Duration
	Ops        uint64
}

// RunBC drives the CacheBench bc mix against a rig: a warmup phase sized to
// cycle the cache, then a measured window. Returns the measured result.
func RunBC(rig *Rig, keys int64, warmupOps, measureOps int, seed uint64) SchemeResult {
	return runBCMeasured(rig, keys, warmupOps, measureOps, seed).SchemeResult
}

// measuredBC is RunBC's result plus the measured-window byte and admission
// deltas the write-budget experiments need.
type measuredBC struct {
	SchemeResult
	// HostWriteBytes are item bytes the engine accepted in the window.
	HostWriteBytes uint64
	// DeviceWriteBytes are bytes the flash medium absorbed in the window
	// (Rig.DeviceWriteBytes delta: flushes, padding, GC).
	DeviceWriteBytes uint64
	// AdmitRejects counts inserts the admission policy refused in the window.
	AdmitRejects uint64
}

// runBCMeasured is RunBC with measured-window deltas of the write-path
// counters. Shared by RunBC and the admission sweep.
func runBCMeasured(rig *Rig, keys int64, warmupOps, measureOps int, seed uint64) measuredBC {
	gen := workload.NewBC(workload.BCConfig{Keys: keys, Seed: seed})
	eng := rig.Engine

	apply := func(op workload.Op) {
		switch op.Kind {
		case workload.OpGet:
			// Read-through: CacheBench inserts the object on a miss.
			if _, ok, _ := eng.Get(op.Key); !ok {
				eng.Set(op.Key, nil, op.ValLen) //nolint:errcheck
			}
		case workload.OpSet:
			eng.Set(op.Key, nil, op.ValLen) //nolint:errcheck
		case workload.OpDelete:
			eng.Delete(op.Key)
		}
	}

	for i := 0; i < warmupOps; i++ {
		apply(gen.Next())
	}
	// Reset measurement state at the window boundary.
	startStats := eng.Stats()
	startTime := rig.Clock.Now()
	startDevice := rig.DeviceWriteBytes()
	eng.GetLatencyHistogram().Reset()
	eng.SetLatencyHistogram().Reset()

	for i := 0; i < measureOps; i++ {
		apply(gen.Next())
	}
	eng.Drain()
	endStats := eng.Stats()
	elapsed := rig.Clock.Now() - startTime

	hits := endStats.Hits - startStats.Hits
	misses := endStats.Misses - startStats.Misses
	hitRatio := 0.0
	if hits+misses > 0 {
		hitRatio = float64(hits) / float64(hits+misses)
	}
	ops := float64(measureOps)
	opsPerSec := 0.0
	if elapsed > 0 {
		opsPerSec = ops / elapsed.Seconds()
	}
	return measuredBC{
		SchemeResult: SchemeResult{
			Scheme:    rig.Scheme,
			OpsPerSec: opsPerSec,
			HitRatio:  hitRatio,
			WAFactor:  rig.WAFactor(),
			SetP50:    eng.SetLatencyHistogram().Percentile(0.5),
			SetP99:    eng.SetLatencyHistogram().Percentile(0.99),
			GetP50:    eng.GetLatencyHistogram().Percentile(0.5),
			GetP99:    eng.GetLatencyHistogram().Percentile(0.99),
			SimTime:   elapsed,
			Ops:       uint64(measureOps),
		},
		HostWriteBytes:   endStats.HostWriteBytes - startStats.HostWriteBytes,
		DeviceWriteBytes: rig.DeviceWriteBytes() - startDevice,
		AdmitRejects:     endStats.AdmitRejects - startStats.AdmitRejects,
	}
}

// Fig2Params sizes the overall comparison (§4.1 "Overall Comparison"):
// 25 zones; Zone-Cache uses all 25 as cache (no OP), the other three use
// 20/25 of the capacity with 5/25 as OP — the paper's 25 GiB vs 20 GiB.
type Fig2Params struct {
	Zones      int
	Keys       int64
	WarmupOps  int
	MeasureOps int
	Seed       uint64
}

// DefaultFig2 returns the scaled default parameters.
func DefaultFig2() Fig2Params {
	return Fig2Params{
		Zones: 25,
		// Working set ~72k keys × ~3.3 KiB ≈ 240 MiB: between the 320 MiB
		// (Block/File/Region) and 400 MiB (Zone) cache reach, so capacity
		// differences show in the hit ratio while hit ratios stay in the
		// paper's ~90% regime.
		Keys:       72 << 10,
		WarmupOps:  500_000,
		MeasureOps: 400_000,
		Seed:       1,
	}
}

// RunFig2 reruns Figure 2 for all four schemes. The schemes are independent
// points (own device stack, own clock, same seed), so they run across a
// worker pool; output stays in presentation order.
func RunFig2(p Fig2Params) ([]SchemeResult, error) {
	hw := DefaultHW(p.Zones)
	zoneBytes := hw.ZoneBytes()
	deviceBytes := int64(hw.actualZones()) * zoneBytes
	cacheBytes := deviceBytes * 20 / 25 // 20 GiB of 25 at paper scale

	out := make([]SchemeResult, len(AllSchemes))
	err := forEachPoint(len(AllSchemes), func(i int) error {
		s := AllSchemes[i]
		cfg := RigConfig{
			Scheme:     s,
			HW:         hw,
			CacheBytes: cacheBytes,
			OPRatio:    0.20,
			// Honest F2FS capacity accounting: the paper needed 38 zones
			// plus a 6 GiB block device for a 20 GiB cache (§4.1), so on
			// the same 25-zone budget the file cache is much smaller.
			FSMetaOverhead:    0.30,
			FSMetaOverheadSet: true,
		}
		if s == ZoneCache {
			cfg.ZoneCount = hw.actualZones() // the whole device, 0% OP
		}
		rig, err := Build(cfg)
		if err != nil {
			return fmt.Errorf("fig2 %v: %w", s, err)
		}
		out[i] = RunBC(rig, p.Keys, p.WarmupOps, p.MeasureOps, p.Seed)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig3Result is the fill-time log of one region-size configuration.
type Fig3Result struct {
	Label       string
	RegionBytes int64
	Records     []cache.FillRecord
	// EvictionOnsetSeq is the first sequence that required an eviction.
	EvictionOnsetSeq uint64
	// MeanBefore/MeanAfter average the fill time before and after onset.
	MeanBefore, MeanAfter time.Duration
}

// Fig3Params sizes the insertion-time experiment (§3.2, Figure 3).
type Fig3Params struct {
	Zones    int
	ValueLen int
	// RegionsToFill bounds the run: fill until this many regions flushed
	// after eviction onset.
	RegionsAfterOnset int
	Seed              uint64
}

// DefaultFig3 returns scaled defaults: zone-sized (16 MiB) regions vs
// small (256 KiB) regions, the paper's 1024 MiB vs 16 MiB at 1/64 scale.
func DefaultFig3() Fig3Params {
	return Fig3Params{Zones: 25, ValueLen: 4096, RegionsAfterOnset: 30, Seed: 2}
}

// RunFig3 reruns Figure 3: set-only fill, recording per-region buffer fill
// time for a large-region (Zone-Cache) and small-region (Region-Cache)
// configuration.
func RunFig3(p Fig3Params) ([]Fig3Result, error) {
	type cfg struct {
		label  string
		scheme Scheme
		region int64
	}
	hw := DefaultHW(p.Zones)
	configs := []cfg{
		{"large (zone-sized)", ZoneCache, hw.ZoneBytes()},
		{"small (16 MiB-equivalent)", RegionCache, 256 << 10},
	}
	out := make([]Fig3Result, len(configs))
	err := forEachPoint(len(configs), func(ci int) error {
		c := configs[ci]
		rc := RigConfig{
			Scheme:      c.scheme,
			HW:          hw,
			CacheBytes:  int64(hw.actualZones()) * hw.ZoneBytes() * 20 / 25,
			RegionBytes: c.region,
		}
		if c.scheme == ZoneCache {
			rc.ZoneCount = hw.actualZones()
		}
		rig, err := Build(rc)
		if err != nil {
			return fmt.Errorf("fig3 %s: %w", c.label, err)
		}
		// Set-only fill with fixed-size values (the paper fills the region
		// buffer with inserts and measures fill time per region sequence).
		// The engine tracks eviction onset itself, so the stop condition is
		// O(1) per insert instead of a fill-log rescan.
		gen := workload.NewZipf(1<<40, 0.99, p.Seed) // effectively unique keys
		i := 0
		for {
			key := fmt.Sprintf("fill-%016d-%08d", gen.Next(), i)
			i++
			if err := rig.Engine.Set(key, nil, p.ValueLen); err != nil {
				return fmt.Errorf("fig3 %s set: %w", c.label, err)
			}
			if onset, ok := rig.Engine.EvictionOnset(); ok &&
				rig.Engine.FillCount()-onset >= uint64(p.RegionsAfterOnset) {
				break
			}
			if i > 20_000_000 {
				return fmt.Errorf("fig3 %s: eviction never started", c.label)
			}
		}
		log := rig.Engine.FillLog()
		res := Fig3Result{Label: c.label, RegionBytes: c.region, Records: log}
		var beforeSum, afterSum time.Duration
		var beforeN, afterN int
		for _, r := range log {
			if !r.Evicted {
				beforeSum += r.Duration
				beforeN++
			} else {
				if res.EvictionOnsetSeq == 0 {
					res.EvictionOnsetSeq = r.Seq
				}
				afterSum += r.Duration
				afterN++
			}
		}
		if beforeN > 0 {
			res.MeanBefore = beforeSum / time.Duration(beforeN)
		}
		if afterN > 0 {
			res.MeanAfter = afterSum / time.Duration(afterN)
		}
		out[ci] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig4Row is one (scheme, OP) cell of Figure 4 and Table 1.
type Fig4Row struct {
	Scheme  Scheme
	OPRatio float64
	Result  SchemeResult
}

// Fig4Params sizes the OP sweep (§4.1, 220 zones at paper scale).
type Fig4Params struct {
	Zones      int
	OPRatios   []float64
	Keys       int64
	WarmupOps  int
	MeasureOps int
	Seed       uint64
}

// DefaultFig4 returns scaled defaults. The warmup must write more than the
// cache capacity (~960 MiB at 60 zones) so eviction and zone GC reach
// steady state before the measured window; at ~1 KiB of cache writes per
// op, 1.2M warmup ops turn the cache over.
func DefaultFig4() Fig4Params {
	return Fig4Params{
		Zones:      60,
		OPRatios:   []float64{0.10, 0.15, 0.20},
		Keys:       256 << 10,
		WarmupOps:  1_200_000,
		MeasureOps: 500_000,
		Seed:       3,
	}
}

// RunFig4Table1 reruns Figure 4 (throughput & hit ratio under OP ratios)
// and Table 1 (WA factors); Zone-Cache appears once with 0% OP.
//
// This experiment runs the engine with access-ordered (LRU) region
// eviction — the policy the paper states for its evaluation (§4.1). Under
// item-level zipf traffic, region LRU scatters region deaths across zones,
// and the scatter is what makes the middle layer's (and filesystem's) GC
// migrations — Table 1's WA factors — sensitive to the OP ratio. The
// write-ordered FIFO default used elsewhere clusters deaths so well that
// WA pins at 1.0 regardless of OP (see BenchmarkAblationPolicy).
func RunFig4Table1(p Fig4Params) ([]Fig4Row, error) {
	hw := DefaultHW(p.Zones)
	deviceBytes := int64(hw.actualZones()) * hw.ZoneBytes()

	// Enumerate the sweep's (scheme, OP) points first, then fan them across
	// the worker pool; each point builds its own rig and clock, so the rows
	// replay bit-identically to the serial sweep, in the same order.
	type point struct {
		scheme Scheme
		op     float64
	}
	points := []point{{ZoneCache, 0}} // whole device, no OP
	for _, s := range []Scheme{FileCache, RegionCache} {
		for _, op := range p.OPRatios {
			points = append(points, point{s, op})
		}
	}

	out := make([]Fig4Row, len(points))
	err := forEachPoint(len(points), func(i int) error {
		pt := points[i]
		cfg := RigConfig{
			Scheme:    pt.scheme,
			HW:        hw,
			Policy:    cache.LRU,
			PolicySet: true,
		}
		if pt.scheme == ZoneCache {
			cfg.ZoneCount = hw.actualZones()
		} else {
			cfg.CacheBytes = int64(float64(deviceBytes)*(1-pt.op)/float64(256<<10)) * (256 << 10)
			cfg.OPRatio = pt.op
			// Figure 4 states the OP directly; fold all FS overhead
			// into it so File and Region see the same cache size.
			cfg.FSMetaOverheadSet = true
		}
		rig, err := Build(cfg)
		if err != nil {
			return fmt.Errorf("fig4 %v op=%v: %w", pt.scheme, pt.op, err)
		}
		out[i] = Fig4Row{
			Scheme: pt.scheme, OPRatio: pt.op,
			Result: RunBC(rig, p.Keys, p.WarmupOps, p.MeasureOps, p.Seed),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
