package harness

import "fmt"

// The small-zone hypothesis. The paper conjectures twice that Zone-Cache's
// problems are an artifact of huge zones: "If the ZNS SSD is produced with
// a small zone size (e.g., 16 or 64 MiB), Zone-Cache might be a good design
// to avoid the overhead of large region size. However, the smaller zone may
// have lower per-zone throughput which needs additional designs" (§3.2),
// and "We expect a better performance when small zone sizes (e.g., Samsung
// ZNS SSDs with 96 MiB zone size) are provided" (§4.2). This experiment
// tests that conjecture: Zone-Cache across zone sizes on constant-capacity
// hardware, with Region-Cache as the reference.

// SmallZoneRow is one zone-size data point.
type SmallZoneRow struct {
	// Label names the configuration.
	Label string
	// ZoneMiB is the zone size (Zone-Cache rows) or 0 for the reference.
	ZoneMiB int
	Result  SchemeResult
}

// SmallZoneParams sizes the experiment.
type SmallZoneParams struct {
	// DeviceMiB is the constant flash capacity split into zones.
	DeviceMiB int
	// ZoneSizesMiB are the Zone-Cache zone sizes to sweep.
	ZoneSizesMiB []int
	Keys         int64
	WarmupOps    int
	MeasureOps   int
	Seed         uint64
}

// DefaultSmallZone returns scaled defaults: the ZN540-class 16 MiB zone
// (1077 MiB at paper scale) down to a Samsung-class 2 MiB zone (~96 MiB at
// paper scale, ratio preserved).
func DefaultSmallZone() SmallZoneParams {
	return SmallZoneParams{
		DeviceMiB:    400,
		ZoneSizesMiB: []int{16, 8, 4, 2},
		Keys:         72 << 10,
		WarmupOps:    500_000,
		MeasureOps:   400_000,
		Seed:         6,
	}
}

// RunSmallZone sweeps Zone-Cache over zone sizes and appends the
// Region-Cache reference on the 16 MiB-zone device. The zone-size points
// plus the reference are independent stacks and fan across the worker pool;
// row order is fixed.
func RunSmallZone(p SmallZoneParams) ([]SmallZoneRow, error) {
	out := make([]SmallZoneRow, len(p.ZoneSizesMiB)+1)
	err := forEachPoint(len(out), func(i int) error {
		if i < len(p.ZoneSizesMiB) {
			zm := p.ZoneSizesMiB[i]
			hw := DefaultHW(p.DeviceMiB / zm)
			hw.BlocksPerZone = zm // 1 MiB blocks
			rig, err := Build(RigConfig{
				Scheme:    ZoneCache,
				HW:        hw,
				ZoneCount: hw.actualZones(),
			})
			if err != nil {
				return fmt.Errorf("smallzone %d MiB: %w", zm, err)
			}
			out[i] = SmallZoneRow{
				Label:   fmt.Sprintf("Zone-Cache %d MiB zones", zm),
				ZoneMiB: zm,
				Result:  RunBC(rig, p.Keys, p.WarmupOps, p.MeasureOps, p.Seed),
			}
			return nil
		}
		// Reference: Region-Cache on the large-zone device with the usual OP.
		hw := DefaultHW(p.DeviceMiB / 16)
		rig, err := Build(RigConfig{
			Scheme:     RegionCache,
			HW:         hw,
			CacheBytes: int64(hw.actualZones()) * hw.ZoneBytes() * 20 / 25,
		})
		if err != nil {
			return fmt.Errorf("smallzone reference: %w", err)
		}
		out[i] = SmallZoneRow{
			Label:  "Region-Cache (reference)",
			Result: RunBC(rig, p.Keys, p.WarmupOps, p.MeasureOps, p.Seed),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
