package harness

import (
	"fmt"
	"testing"

	"znscache/internal/obs"
)

// TestBuildRegistersMetrics: with a global registry installed, Build binds
// every layer's instruments, the series carry the scheme label, and driving
// the engine moves the scraped values.
func TestBuildRegistersMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetricsRegistry(reg)
	defer SetMetricsRegistry(nil)

	rig, err := Build(RigConfig{Scheme: RegionCache, HW: DefaultHW(8)})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() == 0 {
		t.Fatal("Build with a global registry registered nothing")
	}

	for i := 0; i < 4000; i++ {
		key := fmt.Sprintf("key-%d", i%512)
		if _, hit, _ := rig.Engine.Get(key); !hit {
			rig.Engine.Set(key, nil, 4096) //nolint:errcheck
		}
	}
	st := rig.Engine.Stats()

	byKey := map[string]float64{}
	var schemes, zoneSeries int
	for _, s := range reg.Gather() {
		if s.Labels.Get("scheme") == RegionCache.String() {
			schemes++
		}
		if s.Labels.Get("zone") != "" {
			zoneSeries++
		}
		byKey[s.Name+"/"+s.Labels.Get("zone")] = s.Value
	}
	if schemes == 0 {
		t.Error("no series carry the scheme label")
	}
	if zoneSeries < 3*8 {
		t.Errorf("per-zone gauges missing: %d series, want >= %d", zoneSeries, 3*8)
	}
	// Stats() and the scrape are views over the same instruments.
	if got := byKey["cache_gets_total/"]; got != float64(st.Gets) {
		t.Errorf("scraped cache_gets_total = %v, Stats().Gets = %d", got, st.Gets)
	}
	if got := byKey["cache_sets_total/"]; got != float64(st.Sets) {
		t.Errorf("scraped cache_sets_total = %v, Stats().Sets = %d", got, st.Sets)
	}

	// Rebuilding a rig re-binds series rather than duplicating them: the
	// second build reuses the same rig label only if the label matches, so
	// series count at most doubles and the registry never errors.
	before := reg.Len()
	if _, err := Build(RigConfig{Scheme: RegionCache, HW: DefaultHW(8)}); err != nil {
		t.Fatal(err)
	}
	if reg.Len() <= before {
		t.Errorf("second rig registered no new series (len %d -> %d)", before, reg.Len())
	}
}

// TestBuildWiresTracer: a tracer in RigConfig reaches the engine and the
// device layers, and a workload that seals regions and resets zones leaves
// the corresponding typed events in the ring.
func TestBuildWiresTracer(t *testing.T) {
	tr := obs.NewTracer(1 << 12)
	rig, err := Build(RigConfig{Scheme: RegionCache, HW: DefaultHW(8), Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	// Small device + steady inserts: regions seal, zones reset under churn.
	for i := 0; i < 60_000; i++ {
		key := fmt.Sprintf("key-%d", i)
		rig.Engine.Set(key, nil, 4096) //nolint:errcheck
	}
	if tr.Total() == 0 {
		t.Fatal("no events emitted")
	}
	kinds := map[obs.EventType]int{}
	for _, e := range tr.Events() {
		kinds[e.Type]++
	}
	for _, want := range []obs.EventType{obs.EvAdmit, obs.EvRegionSeal, obs.EvZoneReset} {
		if kinds[want] == 0 {
			t.Errorf("no %v events recorded (got %v)", want, kinds)
		}
	}
}

// TestBuildWithoutHooksIsClean: no global registry, no tracer — Build leaves
// both disabled (the zero-overhead default every benchmark relies on).
func TestBuildWithoutHooksIsClean(t *testing.T) {
	rig, err := Build(RigConfig{Scheme: RegionCache, HW: DefaultHW(8)})
	if err != nil {
		t.Fatal(err)
	}
	if rig.ZNS.Trace != nil || rig.Middle.Trace != nil {
		t.Error("tracer wired without being requested")
	}
}
