package harness

import "testing"

// The chunked-object crash oracle across schemes × seeds × repair modes:
// after a mid-write crash and restore, every object acknowledged at the
// snapshot cut is served whole or counted lost — never short, never spliced.
func TestBigObjCrashOracle(t *testing.T) {
	seeds := []uint64{1, 7, 23}
	for _, scheme := range AllSchemes {
		for _, eager := range []bool{false, true} {
			for _, seed := range seeds {
				scheme, eager, seed := scheme, eager, seed
				name := scheme.String() + "/lazy/"
				if eager {
					name = scheme.String() + "/eager/"
				}
				t.Run(name+itoa(seed), func(t *testing.T) {
					t.Parallel()
					rep, err := RunBigObjCrash(BigObjCrashParams{
						CrashParams: CrashParams{Scheme: scheme, Seed: seed},
						EagerRepair: eager,
					})
					if err != nil {
						t.Fatalf("RunBigObjCrash: %v", err)
					}
					if !rep.Crashed {
						t.Fatalf("crash never fired (writes=%d)", rep.CrashWrites)
					}
					if err := rep.Err(); err != nil {
						t.Fatalf("oracle: %v (hits=%d lost=%d partial=%d repairs=%d)",
							err, rep.Hits, rep.Lost, rep.PartialFailures, rep.Repairs)
					}
					if rep.Hits+rep.Lost == 0 {
						t.Fatal("oracle replayed zero objects")
					}
					if eager && rep.PartialFailures > 0 {
						// The eager sweep visits every snapshot key before the
						// replay, so no broken manifest should survive to fail
						// lazily.
						t.Errorf("eager repair left %d lazy partial failures", rep.PartialFailures)
					}
					t.Logf("scheme=%v seed=%d eager=%v hits=%d lost=%d partial=%d repairs=%d restoreDrops=%d",
						scheme, seed, eager, rep.Hits, rep.Lost, rep.PartialFailures, rep.Repairs, rep.RestoreDrops)
				})
			}
		}
	}
}

// Same params, same verdict: the crash run is fully seeded.
func TestBigObjCrashDeterminism(t *testing.T) {
	p := BigObjCrashParams{CrashParams: CrashParams{Scheme: RegionCache, Seed: 99}}
	a, err := RunBigObjCrash(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBigObjCrash(p)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("runs diverged:\n  %+v\n  %+v", *a, *b)
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for v > 0 {
		p--
		b[p] = byte('0' + v%10)
		v /= 10
	}
	return string(b[p:])
}
