package harness

import (
	"reflect"
	"testing"

	"znscache/internal/fault"
)

// crashFaults is the transient-fault mix the property test runs under:
// every fault class armed at rates high enough to fire many times per run.
func crashFaults() fault.Config {
	return fault.Config{
		ReadErrorRate:    0.01,
		WriteErrorRate:   0.02,
		ResetErrorRate:   0.01,
		TornWriteRate:    0.02,
		LatencySpikeRate: 0.01,
	}
}

// TestCrashConsistencyProperty is the seeded property test of the recovery
// contract: across all four schemes and many seeds, a crash at a random
// device-write count followed by a snapshot restore never serves wrong
// data and never violates the ZNS zone contract. Failures print the
// (scheme, seed) pair, which replays the exact run.
func TestCrashConsistencyProperty(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 12
	}
	for _, sch := range AllSchemes {
		sch := sch
		t.Run(sch.String(), func(t *testing.T) {
			t.Parallel()
			var crashed, lost, drops int
			for i := 0; i < iters; i++ {
				seed := uint64(i)*0x9e3779b9 + 1
				rep, err := RunCrash(CrashParams{Scheme: sch, Seed: seed, Faults: crashFaults()})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := rep.Err(); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
				if rep.Crashed {
					crashed++
				}
				lost += rep.Lost
				drops += int(rep.RestoreDrops)
			}
			// The test must not pass vacuously: the crash point has to fire
			// in most runs, and recovery has to be actually lossy sometimes
			// (keys lost, snapshot entries dropped by the repair pass).
			if crashed < iters/2 {
				t.Errorf("only %d/%d runs reached their crash point", crashed, iters)
			}
			if lost == 0 {
				t.Error("no run lost a key; the harness is not exercising recovery")
			}
			_ = drops // informative; schemes without repair-visible tears may be 0
		})
	}
}

// TestCrashRunDeterministic verifies a (scheme, seed) pair replays the
// exact same report — the property a failing seed's bug report rests on.
func TestCrashRunDeterministic(t *testing.T) {
	p := CrashParams{Scheme: RegionCache, Seed: 12345, Faults: crashFaults()}
	a, err := RunCrash(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCrash(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same params, different reports:\n%+v\n%+v", a, b)
	}
}

// TestCrashHarnessDetectsBrokenRepair is the mutation check: corrupt the
// snapshot's recovery metadata in a structurally valid way and disable the
// checksum (the deliberately broken repair path), and the oracle MUST
// report wrong data on at least one seed — proving the property test's
// pass is meaningful.
func TestCrashHarnessDetectsBrokenRepair(t *testing.T) {
	for _, sch := range []Scheme{RegionCache, ZoneCache, FileCache, BlockCache} {
		detected := false
		for seed := uint64(1); seed <= 8 && !detected; seed++ {
			rep, err := RunCrash(CrashParams{Scheme: sch, Seed: seed, CorruptSnapshot: true})
			if err != nil {
				t.Fatalf("%v seed %d: %v", sch, seed, err)
			}
			if rep.WrongData > 0 {
				detected = true
			}
		}
		if !detected {
			t.Errorf("%v: corrupted snapshot + disabled checksum produced no WrongData in 8 seeds; the oracle cannot detect wrong data", sch)
		}
	}
}

// TestCrashDegradationCounters checks the run surfaces the engine's
// degradation machinery: with aggressive fault rates, retries fire.
func TestCrashDegradationCounters(t *testing.T) {
	f := crashFaults()
	f.WriteErrorRate = 0.15
	f.ReadErrorRate = 0.10
	var retries uint64
	for seed := uint64(1); seed <= 6; seed++ {
		rep, err := RunCrash(CrashParams{Scheme: ZoneCache, Seed: seed, Faults: f})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rep.Err(); err != nil {
			t.Fatal(err)
		}
		retries += rep.Retries
	}
	if retries == 0 {
		t.Error("aggressive fault rates produced zero store retries")
	}
}
