package harness

import (
	"bytes"
	"fmt"
	"sort"

	"znscache/internal/cache"
	"znscache/internal/fault"
	"znscache/internal/sim"
)

// Crash-consistency harness. A persistent cache's recovery contract is
// asymmetric: after a crash it may forget acknowledged keys (a cache miss
// is always correct), but a hit must return exactly a value the client
// wrote — never torn, stale-beyond-the-index, or cross-keyed bytes. The
// harness runs a seeded workload against a fault-injected rig, kills the
// simulated process at a seeded device-write count, rebuilds the engine
// from the last snapshot over the surviving device state, and replays an
// oracle over every key the snapshot could have preserved.
//
// The oracle: a post-recovery hit for key k must return either the value
// acknowledged for k at the snapshot cut, or a value acknowledged for k
// after the cut (possible when a post-snapshot rewrite of the same key
// landed at the very index slot the snapshot recorded, which the per-item
// checksum then legitimately verifies). Anything else is WrongData and is
// a hard failure; a miss of a once-acked key is merely Lost, the accounted
// cost of crashing.
//
// The simulated crash kills the cache process: the engine's DRAM state is
// discarded and rebuilt from the snapshot. Device and translation state
// (zone write pointers, the middle layer's map table, filesystem metadata)
// survive, as their on-device persistence is out of scope for the cache's
// own recovery story.

// CrashParams configures one crash-consistency run.
type CrashParams struct {
	Scheme Scheme
	// Seed drives the workload, the fault schedule, and the crash point.
	Seed uint64
	// Keys is the working-set size (default 48).
	Keys int
	// WarmOps is how many Sets run before the snapshot cut (default 250).
	WarmOps int
	// MaxPostOps bounds the Sets issued after the cut while waiting for the
	// crash trigger (default 400).
	MaxPostOps int
	// Faults sets the transient-fault rates active throughout the run; the
	// crash trigger is armed on top. Seed is overridden with Seed.
	Faults fault.Config
	// CorruptSnapshot enables the mutation check: the snapshot is corrupted
	// (cache.CorruptSnapshotForTest) and the restored engine verifies no
	// checksums, so a sound harness MUST report WrongData > 0. It proves
	// the oracle actually detects wrong data.
	CorruptSnapshot bool
}

func (p *CrashParams) fillDefaults() {
	if p.Keys == 0 {
		p.Keys = 48
	}
	if p.WarmOps == 0 {
		p.WarmOps = 250
	}
	if p.MaxPostOps == 0 {
		p.MaxPostOps = 600
	}
}

// CrashReport is the oracle's verdict for one run.
type CrashReport struct {
	Scheme Scheme
	Seed   uint64
	// Crashed reports whether the armed crash point fired before the
	// post-snapshot op budget ran out.
	Crashed bool
	// CrashWrites is the device-write count the crash fired at.
	CrashWrites uint64
	// Hits/Lost partition the keys acknowledged at the snapshot cut after
	// recovery: served with a verified value, or forgotten.
	Hits, Lost int
	// WrongData counts hits whose value matches nothing ever acknowledged
	// for that key. It must be zero for a correct cache.
	WrongData int
	// RestoreDrops is the engine's count of snapshot entries its repair
	// pass refused to trust.
	RestoreDrops uint64
	// Quarantined/Retries expose the degradation counters accumulated
	// across the whole run (pre-crash engine + recovered engine).
	Quarantined, Retries uint64
	// ContractErr is any ZNS zone-contract violation the fault wrapper
	// observed (nil for Block-Cache or a clean run).
	ContractErr error
}

// Err folds the report into a pass/fail error: wrong data is the only
// correctness failure; a zone-contract violation is a device-layer bug.
func (r *CrashReport) Err() error {
	if r.WrongData > 0 {
		return fmt.Errorf("harness: %v seed %d: %d hits returned wrong data",
			r.Scheme, r.Seed, r.WrongData)
	}
	if r.ContractErr != nil {
		return fmt.Errorf("harness: %v seed %d: %w", r.Scheme, r.Seed, r.ContractErr)
	}
	return nil
}

// crashHW is the tiny profile crash runs use: 10 × 256 KiB zones on a
// 4-die array, so hundreds of seeded runs finish in seconds while every
// structure (multiple regions per zone, zone resets, GC) still cycles.
func crashHW() HWProfile {
	return HWProfile{Zones: 10, BlocksPerZone: 4, PagesPerBlock: 16, Channels: 4, DiesPerChan: 1}
}

// crashRigConfig sizes a scheme onto the tiny profile.
func crashRigConfig(p CrashParams) RigConfig {
	hw := crashHW()
	return RigConfig{
		Scheme:      p.Scheme,
		HW:          hw,
		CacheBytes:  6 * hw.ZoneBytes(), // 6 zones of cache, 4 of slack
		RegionBytes: 64 << 10,
		TrackValues: true,
		Faults:      &p.Faults,
	}
}

// RunCrash executes one seeded crash-consistency run and returns the
// oracle's report. Identical params replay identical runs.
func RunCrash(p CrashParams) (*CrashReport, error) {
	p.fillDefaults()
	p.Faults.Seed = p.Seed
	rig, err := Build(crashRigConfig(p))
	if err != nil {
		return nil, fmt.Errorf("harness: crash rig: %w", err)
	}
	rng := sim.NewRand(p.Seed ^ 0x9e3779b97f4a7c15)
	rep := &CrashReport{Scheme: p.Scheme, Seed: p.Seed}

	keyOf := func(i int) string { return fmt.Sprintf("key-%03d", i) }
	value := func() []byte {
		b := make([]byte, 64+rng.Intn(3<<10))
		rng.Bytes(b)
		return b
	}
	acked := make(map[string][]byte, p.Keys)
	writeOne := func() {
		k := keyOf(rng.Intn(p.Keys))
		v := value()
		if err := rig.Engine.Set(k, v, 0); err == nil {
			acked[k] = v
		}
	}

	// Phase 1: warm the cache, transient faults armed, no crash yet.
	for i := 0; i < p.WarmOps; i++ {
		writeOne()
	}

	// The snapshot cut. atSnap freezes the oracle's expectation for every
	// key the recovered index may still serve.
	snap, err := rig.Engine.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("harness: snapshot: %w", err)
	}
	atSnap := make(map[string][]byte, len(acked))
	for k, v := range acked {
		atSnap[k] = v
	}
	afterSnap := make(map[string][][]byte, p.Keys)

	// Phase 2: arm the crash a seeded distance ahead and write into it.
	// The distance scales with the warm phase's device-write rate so the
	// op budget reaches the crash point on every scheme: a zone-sized
	// region is one device write per quarter megabyte, while f2fs splits
	// each flush into dozens of per-block writes.
	w0 := rig.Faults.Writes()
	span := int(w0 / 2)
	if span < 2 {
		span = 2
	}
	rig.Faults.ArmCrash(w0 + 1 + uint64(rng.Intn(span)))
	for i := 0; i < p.MaxPostOps && !rig.Faults.Crashed(); i++ {
		k := keyOf(rng.Intn(p.Keys))
		v := value()
		if err := rig.Engine.Set(k, v, 0); err == nil {
			afterSnap[k] = append(afterSnap[k], v)
		}
	}
	rep.Crashed = rig.Faults.Crashed()
	rep.CrashWrites = rig.Faults.Writes()
	preStats := rig.Engine.Stats()

	// The process is dead: drop the engine, revive the device, and rebuild
	// from the last snapshot over whatever the device really holds now.
	rig.Faults.Revive()
	if p.CorruptSnapshot {
		mutated, ok := cache.CorruptSnapshotForTest(snap)
		if !ok {
			return nil, fmt.Errorf("harness: snapshot held no corruptible entry")
		}
		snap = mutated
	}
	restored, err := cache.Restore(cache.Config{
		Store:        rig.Store,
		TrackValues:  true,
		Clock:        rig.Clock,
		SkipChecksum: p.CorruptSnapshot,
	}, snap)
	if err != nil {
		return nil, fmt.Errorf("harness: restore: %w", err)
	}

	// Oracle replay over every key acknowledged at the cut, in a fixed
	// order so the run stays seed-deterministic.
	keys := make([]string, 0, len(atSnap))
	for k := range atSnap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v, ok, err := restored.Get(k)
		if err != nil {
			return nil, fmt.Errorf("harness: recovered Get(%q): %w", k, err)
		}
		if !ok {
			rep.Lost++
			continue
		}
		if matchesOracle(v, atSnap[k], afterSnap[k]) {
			rep.Hits++
		} else {
			rep.WrongData++
		}
	}

	// The recovered engine must keep serving: a short smoke workload.
	for i := 0; i < 32; i++ {
		k := keyOf(rng.Intn(p.Keys))
		if err := restored.Set(k, value(), 0); err != nil {
			return nil, fmt.Errorf("harness: post-recovery Set: %w", err)
		}
		if _, _, err := restored.Get(k); err != nil {
			return nil, fmt.Errorf("harness: post-recovery Get: %w", err)
		}
	}

	post := restored.Stats()
	rep.RestoreDrops = post.RestoreDrops
	rep.Quarantined = preStats.Quarantined + post.Quarantined
	rep.Retries = preStats.StoreRetries + post.StoreRetries
	if rig.FaultZoned != nil {
		rep.ContractErr = rig.FaultZoned.CheckContract()
	}
	return rep, nil
}

// matchesOracle reports whether a recovered hit value equals the at-cut
// value or any post-cut acknowledged value for the key.
func matchesOracle(got, atCut []byte, later [][]byte) bool {
	if bytes.Equal(got, atCut) {
		return true
	}
	for _, v := range later {
		if bytes.Equal(got, v) {
			return true
		}
	}
	return false
}
