package harness

import (
	"testing"
)

// TestRunClusterSmoke drives one small benchmark point end to end: real
// loopback nodes, router in front, zipf read-through traffic.
func TestRunClusterSmoke(t *testing.T) {
	res, err := RunCluster(ClusterParams{
		Nodes: 3, Replication: 2, Keys: 256, Ops: 1500,
		HotWindow: 200, HotTopK: 4, HotMinCount: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 1500 || res.Gets == 0 || res.Sets == 0 {
		t.Fatalf("op accounting off: %+v", res)
	}
	if res.HitRatio <= 0 || res.HitRatio > 1 {
		t.Fatalf("hit ratio %v out of range", res.HitRatio)
	}
	if res.BackendErrs != 0 {
		t.Fatalf("healthy run hit %d backend errors", res.BackendErrs)
	}
	if len(res.NodeGets) != 3 || res.Balance < 1 {
		t.Fatalf("balance accounting off: gets=%v balance=%v", res.NodeGets, res.Balance)
	}
	if res.HotReads == 0 {
		t.Fatal("zipf 0.99 never engaged the hot-key detector")
	}
}

// TestClusterDrillReplicated: with R=2, killing one node mid-run must lose
// nothing — every acked key is served by its surviving replica with correct
// bytes.
func TestClusterDrillReplicated(t *testing.T) {
	for _, seed := range []uint64{1, 7} {
		rep, err := RunClusterDrill(ClusterDrillParams{Seed: seed, Replication: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("seed %d: %v (report %+v)", seed, err, rep)
		}
		if rep.AckedKeys == 0 || rep.Hits == 0 {
			t.Fatalf("seed %d: drill exercised nothing: %+v", seed, rep)
		}
		if rep.Lost != 0 {
			t.Fatalf("seed %d: R=2 lost %d keys to a single death", seed, rep.Lost)
		}
	}
}

// TestClusterDrillUnreplicated: with R=1 the victim's keys are legitimately
// lost — counted, attributed to the victim, and never served as wrong data.
func TestClusterDrillUnreplicated(t *testing.T) {
	rep, err := RunClusterDrill(ClusterDrillParams{Seed: 3, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("%v (report %+v)", err, rep)
	}
	if rep.Lost == 0 {
		t.Fatalf("R=1 drill lost nothing — victim owned no keys? %+v", rep)
	}
	if rep.Hits == 0 {
		t.Fatalf("survivors served nothing: %+v", rep)
	}
}
