package harness

import (
	"bytes"
	"fmt"
	"testing"

	"znscache/internal/sim"
)

// TestFullFidelityRoundTrip runs every scheme with real payloads end to end
// (engine buffers → region store → simulated device and back), under enough
// churn to force evictions, zone GC (Region), filesystem cleaning (File),
// and FTL GC (Block). Every readable key must return exactly the bytes last
// written for it.
func TestFullFidelityRoundTrip(t *testing.T) {
	for _, s := range AllSchemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			hw := DefaultHW(10)
			cfg := RigConfig{
				Scheme:      s,
				HW:          hw,
				CacheBytes:  7 * hw.ZoneBytes(),
				TrackValues: true,
			}
			if s == ZoneCache {
				cfg.ZoneCount = hw.actualZones()
			}
			rig, err := Build(cfg)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			eng := rig.Engine

			// Model of what should be cached: key -> generation counter.
			// Values are derived from key+generation so staleness is
			// detectable.
			value := func(key string, gen int) []byte {
				return bytes.Repeat([]byte(fmt.Sprintf("%s/%d|", key, gen)), 600)
			}
			gens := map[string]int{}
			rng := sim.NewRand(99)
			const keys = 600
			for i := 0; i < 40_000; i++ {
				k := fmt.Sprintf("key-%04d", rng.Intn(keys))
				switch rng.Intn(10) {
				case 0:
					eng.Delete(k)
					delete(gens, k)
				default:
					gens[k]++
					if err := eng.Set(k, value(k, gens[k]), 0); err != nil {
						t.Fatalf("Set: %v", err)
					}
				}
			}

			checked, hits := 0, 0
			for k, g := range gens {
				got, ok, err := eng.Get(k)
				if err != nil {
					t.Fatalf("Get(%s): %v", k, err)
				}
				checked++
				if !ok {
					continue // evicted: allowed
				}
				hits++
				if !bytes.Equal(got, value(k, g)) {
					t.Fatalf("%v: key %s returned stale or corrupt value", s, k)
				}
			}
			if hits == 0 {
				t.Fatalf("%v: zero hits across %d keys; test vacuous", s, checked)
			}
			if eng.Stats().Evictions == 0 {
				t.Fatalf("%v: churn never forced an eviction; test vacuous", s)
			}
		})
	}
}

// TestSchemesSeeIdenticalLogicalState verifies that with identical op
// streams the engine state (hit counts, key population) is identical across
// Block/File/Region — the schemes must differ only below the region store.
func TestSchemesSeeIdenticalLogicalState(t *testing.T) {
	var base *SchemeResult
	for _, s := range []Scheme{BlockCache, FileCache, RegionCache} {
		hw := DefaultHW(12)
		rig, err := Build(RigConfig{Scheme: s, HW: hw, CacheBytes: 8 * hw.ZoneBytes()})
		if err != nil {
			t.Fatal(err)
		}
		res := RunBC(rig, 8<<10, 40_000, 40_000, 77)
		if base == nil {
			base = &res
			continue
		}
		if res.HitRatio != base.HitRatio {
			t.Errorf("%v hit ratio %.6f differs from baseline %.6f — logical divergence",
				s, res.HitRatio, base.HitRatio)
		}
	}
}

// TestMiddleLayerSurvivesDeviceChurn drives the Region-Cache hard enough to
// recycle every zone several times, then validates the middle layer's
// structural invariants against the device's zone states.
func TestMiddleLayerSurvivesDeviceChurn(t *testing.T) {
	hw := DefaultHW(10)
	rig, err := Build(RigConfig{Scheme: RegionCache, HW: hw, CacheBytes: 7 * hw.ZoneBytes()})
	if err != nil {
		t.Fatal(err)
	}
	RunBC(rig, 16<<10, 200_000, 200_000, 5)
	if rig.ZNS.Resets.Load() == 0 {
		t.Fatal("no zone was ever reset; churn insufficient")
	}
	// Every mapped region must be readable (mapping points below some
	// zone's write pointer).
	n := rig.Middle.NumRegions()
	readable := 0
	for id := 0; id < n; id++ {
		_, err := rig.Middle.ReadRegion(rig.Clock.Now(), id, nil, 4096, 0)
		if err == nil {
			readable++
		}
	}
	if readable == 0 {
		t.Fatal("no region readable after churn")
	}
	// Wear should be spread: no zone hogs all resets.
	var total, max uint64
	for _, z := range rig.ZNS.Zones() {
		total += z.Resets
		if z.Resets > max {
			max = z.Resets
		}
	}
	if total > 10 && max > total*6/10 {
		t.Errorf("zone wear concentrated: max %d of %d resets on one zone", max, total)
	}
}
