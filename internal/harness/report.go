package harness

import (
	"fmt"
	"io"
	"time"
)

// fmtDur renders a duration with millisecond-class precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}

// PrintFig2 renders the Figure 2 comparison.
func PrintFig2(w io.Writer, rows []SchemeResult) {
	fmt.Fprintln(w, "Figure 2 — overall comparison (CacheBench bc mix)")
	fmt.Fprintf(w, "%-14s %12s %10s %8s %10s %10s\n",
		"scheme", "ops/sec", "hit-ratio", "WAF", "get-p50", "get-p99")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %12.0f %9.2f%% %8.2f %10s %10s\n",
			r.Scheme, r.OpsPerSec, r.HitRatio*100, r.WAFactor,
			fmtDur(r.GetP50), fmtDur(r.GetP99))
	}
}

// PrintFig3 renders the Figure 3 fill-time summary plus a sampled series.
func PrintFig3(w io.Writer, rows []Fig3Result) {
	fmt.Fprintln(w, "Figure 3 — region buffer fill time vs region sequence")
	for _, r := range rows {
		fmt.Fprintf(w, "\n[%s] region=%d bytes, eviction onset at seq %d\n",
			r.Label, r.RegionBytes, r.EvictionOnsetSeq)
		fmt.Fprintf(w, "  mean fill before onset: %s   after onset: %s (%.1fx)\n",
			fmtDur(r.MeanBefore), fmtDur(r.MeanAfter),
			float64(r.MeanAfter)/float64(max64(1, int64(r.MeanBefore))))
		// Sample ~20 points across the series for the "plot".
		step := len(r.Records)/20 + 1
		fmt.Fprintf(w, "  %-8s %s\n", "seq", "fill-time")
		for i := 0; i < len(r.Records); i += step {
			rec := r.Records[i]
			marker := ""
			if rec.Evicted {
				marker = "  *evicting"
			}
			fmt.Fprintf(w, "  %-8d %s%s\n", rec.Seq, fmtDur(rec.Duration), marker)
		}
	}
}

// PrintFig4Table1 renders the OP sweep and the Table 1 WA factors.
func PrintFig4Table1(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "Figure 4 — throughput and hit ratio under OP ratios")
	fmt.Fprintf(w, "%-14s %6s %12s %10s\n", "scheme", "OP", "ops/sec", "hit-ratio")
	for _, r := range rows {
		op := "none"
		if r.OPRatio > 0 {
			op = fmt.Sprintf("%.0f%%", r.OPRatio*100)
		}
		fmt.Fprintf(w, "%-14s %6s %12.0f %9.2f%%\n",
			r.Scheme, op, r.Result.OpsPerSec, r.Result.HitRatio*100)
	}
	fmt.Fprintln(w, "\nTable 1 — WA factor under OP ratios")
	fmt.Fprintf(w, "%-14s %6s %8s\n", "scheme", "OP", "WAF")
	for _, r := range rows {
		op := "0%"
		if r.OPRatio > 0 {
			op = fmt.Sprintf("%.0f%%", r.OPRatio*100)
		}
		fmt.Fprintf(w, "%-14s %6s %8.2f\n", r.Scheme, op, r.Result.WAFactor)
	}
}

// PrintFig5 renders the RocksDB end-to-end comparison.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "Figure 5 — RocksDB with each scheme as secondary cache")
	fmt.Fprintf(w, "%-14s %5s %12s %10s %10s %10s\n",
		"scheme", "ER", "ops/sec", "hit-ratio", "P50", "P99")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %5.0f %12.0f %9.2f%% %10s %10s\n",
			r.Scheme, r.ER, r.OpsPerSec, r.SecondaryHitRatio*100,
			fmtDur(r.P50), fmtDur(r.P99))
	}
}

// PrintTable2 renders the Zone-Cache size sweep.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2 — Zone-Cache cache-size sweep (readrandom, ER 25)")
	fmt.Fprintf(w, "%-12s %12s %10s\n", "cache(zones)", "ops/sec", "hit-ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12d %12.0f %9.2f%%\n", r.Zones, r.OpsPerSec, r.HitRatio*100)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// PrintSmallZone renders the small-zone hypothesis sweep.
func PrintSmallZone(w io.Writer, rows []SmallZoneRow) {
	fmt.Fprintln(w, "Small-zone hypothesis (§3.2/§4.2) — Zone-Cache vs zone size")
	fmt.Fprintf(w, "%-26s %12s %10s %12s\n", "configuration", "ops/sec", "hit-ratio", "set-p99")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %12.0f %9.2f%% %12s\n",
			r.Label, r.Result.OpsPerSec, r.Result.HitRatio*100, fmtDur(r.Result.SetP99))
	}
}
