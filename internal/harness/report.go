package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// fmtDur renders a duration with millisecond-class precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}

// PrintFig2 renders the Figure 2 comparison.
func PrintFig2(w io.Writer, rows []SchemeResult) {
	fmt.Fprintln(w, "Figure 2 — overall comparison (CacheBench bc mix)")
	fmt.Fprintf(w, "%-14s %12s %10s %8s %10s %10s\n",
		"scheme", "ops/sec", "hit-ratio", "WAF", "get-p50", "get-p99")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %12.0f %9.2f%% %8.2f %10s %10s\n",
			r.Scheme, r.OpsPerSec, r.HitRatio*100, r.WAFactor,
			fmtDur(r.GetP50), fmtDur(r.GetP99))
	}
}

// PrintFig3 renders the Figure 3 fill-time summary plus a sampled series.
func PrintFig3(w io.Writer, rows []Fig3Result) {
	fmt.Fprintln(w, "Figure 3 — region buffer fill time vs region sequence")
	for _, r := range rows {
		fmt.Fprintf(w, "\n[%s] region=%d bytes, eviction onset at seq %d\n",
			r.Label, r.RegionBytes, r.EvictionOnsetSeq)
		ratio := "n/a"
		if r.MeanBefore > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(r.MeanAfter)/float64(r.MeanBefore))
		}
		fmt.Fprintf(w, "  mean fill before onset: %s   after onset: %s (%s)\n",
			fmtDur(r.MeanBefore), fmtDur(r.MeanAfter), ratio)
		// Sample ~20 points across the series for the "plot", always keeping
		// the eviction-onset record visible.
		onset := -1
		for i, rec := range r.Records {
			if rec.Seq == r.EvictionOnsetSeq {
				onset = i
				break
			}
		}
		fmt.Fprintf(w, "  %-8s %s\n", "seq", "fill-time")
		for _, i := range fig3SampleIndices(len(r.Records), 20, onset) {
			rec := r.Records[i]
			marker := ""
			if rec.Evicted {
				marker = "  *evicting"
			}
			fmt.Fprintf(w, "  %-8d %s%s\n", rec.Seq, fmtDur(rec.Duration), marker)
		}
	}
}

// fig3SampleIndices picks ~maxPoints indices striding evenly across n
// records, plus index must when 0 ≤ must < n — the stride alone can step
// over the eviction-onset record, which is the one point Figure 3 is about.
// The result is ascending with no duplicates.
func fig3SampleIndices(n, maxPoints, must int) []int {
	if n <= 0 {
		return nil
	}
	if maxPoints < 1 {
		maxPoints = 1
	}
	step := n/maxPoints + 1
	out := make([]int, 0, maxPoints+2)
	for i := 0; i < n; i += step {
		out = append(out, i)
	}
	if must >= 0 && must < n {
		pos := sort.SearchInts(out, must)
		if pos == len(out) || out[pos] != must {
			out = append(out, 0)
			copy(out[pos+1:], out[pos:])
			out[pos] = must
		}
	}
	return out
}

// PrintFig4Table1 renders the OP sweep and the Table 1 WA factors.
func PrintFig4Table1(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "Figure 4 — throughput and hit ratio under OP ratios")
	fmt.Fprintf(w, "%-14s %6s %12s %10s\n", "scheme", "OP", "ops/sec", "hit-ratio")
	for _, r := range rows {
		op := "none"
		if r.OPRatio > 0 {
			op = fmt.Sprintf("%.0f%%", r.OPRatio*100)
		}
		fmt.Fprintf(w, "%-14s %6s %12.0f %9.2f%%\n",
			r.Scheme, op, r.Result.OpsPerSec, r.Result.HitRatio*100)
	}
	fmt.Fprintln(w, "\nTable 1 — WA factor under OP ratios")
	fmt.Fprintf(w, "%-14s %6s %8s\n", "scheme", "OP", "WAF")
	for _, r := range rows {
		op := "0%"
		if r.OPRatio > 0 {
			op = fmt.Sprintf("%.0f%%", r.OPRatio*100)
		}
		fmt.Fprintf(w, "%-14s %6s %8.2f\n", r.Scheme, op, r.Result.WAFactor)
	}
}

// PrintFig5 renders the RocksDB end-to-end comparison.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "Figure 5 — RocksDB with each scheme as secondary cache")
	fmt.Fprintf(w, "%-14s %5s %12s %10s %10s %10s\n",
		"scheme", "ER", "ops/sec", "hit-ratio", "P50", "P99")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %5.0f %12.0f %9.2f%% %10s %10s\n",
			r.Scheme, r.ER, r.OpsPerSec, r.SecondaryHitRatio*100,
			fmtDur(r.P50), fmtDur(r.P99))
	}
}

// PrintTable2 renders the Zone-Cache size sweep.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2 — Zone-Cache cache-size sweep (readrandom, ER 25)")
	fmt.Fprintf(w, "%-12s %12s %10s\n", "cache(zones)", "ops/sec", "hit-ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12d %12.0f %9.2f%%\n", r.Zones, r.OpsPerSec, r.HitRatio*100)
	}
}

// PrintContracts renders the unwritten-contracts zone-resource sweep.
func PrintContracts(w io.Writer, rows []ContractsRow) {
	fmt.Fprintln(w, "Unwritten contracts — zone-resource limits (open/active) vs each scheme")
	fmt.Fprintf(w, "%-14s %5s %7s %12s %10s %6s %10s %8s %8s\n",
		"scheme", "open", "active", "ops/sec", "hit-ratio", "WAF", "set-p99", "stalls", "finishes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %5d %7d %12.0f %9.2f%% %6.2f %10s %8d %8d\n",
			r.Scheme, r.MaxOpen, r.MaxActive, r.Result.OpsPerSec,
			r.Result.HitRatio*100, r.Result.WAFactor, fmtDur(r.Result.SetP99),
			r.BudgetStalls, r.ZoneFinishes)
	}
}

// PrintSmallZone renders the small-zone hypothesis sweep.
func PrintSmallZone(w io.Writer, rows []SmallZoneRow) {
	fmt.Fprintln(w, "Small-zone hypothesis (§3.2/§4.2) — Zone-Cache vs zone size")
	fmt.Fprintf(w, "%-26s %12s %10s %12s\n", "configuration", "ops/sec", "hit-ratio", "set-p99")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %12.0f %9.2f%% %12s\n",
			r.Label, r.Result.OpsPerSec, r.Result.HitRatio*100, fmtDur(r.Result.SetP99))
	}
}

// ReportSchema identifies the layout of the machine-readable documents the
// bench binaries emit next to their text output. Bump the version when a
// field changes meaning; adding fields is compatible.
const ReportSchema = "znscache/bench-report/v1"

// Report is one experiment's machine-readable result. Exactly one section is
// populated, selected by Experiment. All durations are int64 nanoseconds
// (fields suffixed _ns) so documents round-trip exactly through JSON —
// float64 seconds would not.
type Report struct {
	Schema     string             `json:"schema"`
	Experiment string             `json:"experiment"`
	Fig2       []SchemeResultJSON `json:"fig2,omitempty"`
	Fig3       []Fig3JSON         `json:"fig3,omitempty"`
	Fig4Table1 []Fig4RowJSON      `json:"fig4_table1,omitempty"`
	Fig5       []Fig5RowJSON      `json:"fig5,omitempty"`
	Table2     []Table2RowJSON    `json:"table2,omitempty"`
	SmallZone  []SmallZoneRowJSON `json:"smallzone,omitempty"`
	Admission  []AdmissionRowJSON `json:"admission,omitempty"`
	Serve      []ServeRowJSON     `json:"serve,omitempty"`
	Contracts  []ContractsRowJSON `json:"contracts,omitempty"`
	Cluster    []ClusterRowJSON   `json:"cluster,omitempty"`
	CDN        []CDNRowJSON       `json:"cdn,omitempty"`
}

// CDNRowJSON is one CDN sweep cell (CDNRow) in wire form. Reads partition
// exactly into object_hits + fills; bytes are payload (chunk headers and
// manifests excluded); wa_factor is cumulative device write amplification.
type CDNRowJSON struct {
	Scheme            string  `json:"scheme"`
	ChunkBytes        int     `json:"chunk_bytes"`
	Ops               int     `json:"ops"`
	SimElapsedNs      int64   `json:"sim_elapsed_ns"`
	OpsPerSec         float64 `json:"ops_per_sec"`
	Reads             int     `json:"reads"`
	ObjectHits        int     `json:"object_hits"`
	Fills             int     `json:"fills"`
	Deletes           int     `json:"deletes"`
	ObjectHitRatio    float64 `json:"object_hit_ratio"`
	ServedBytes       uint64  `json:"served_bytes"`
	FillBytes         uint64  `json:"fill_bytes"`
	ChunkHits         uint64  `json:"chunk_hits"`
	ChunkMisses       uint64  `json:"chunk_misses"`
	PartialMisses     uint64  `json:"partial_object_misses"`
	ManifestRepairs   uint64  `json:"manifest_repairs"`
	EvictionsDeferred uint64  `json:"pinned_evictions_deferred"`
	WAFactor          float64 `json:"wa_factor"`
}

// ClusterRowJSON is one cluster benchmark point (ClusterResult) in wire
// form. Balance is max per-node gets over the mean (1.0 = perfectly even);
// node_gets is per-node cmd_get in sorted node-name order.
type ClusterRowJSON struct {
	Nodes         int      `json:"nodes"`
	Replication   int      `json:"replication"`
	ZipfTheta     float64  `json:"zipf_theta"`
	HotWindow     int      `json:"hot_window"`
	OpsPerSec     float64  `json:"ops_per_sec"`
	HitRatio      float64  `json:"hit_ratio"`
	Ops           uint64   `json:"ops"`
	Gets          uint64   `json:"gets"`
	Sets          uint64   `json:"sets"`
	Hits          uint64   `json:"hits"`
	Misses        uint64   `json:"misses"`
	ElapsedNs     int64    `json:"elapsed_ns"`
	P50Ns         int64    `json:"p50_ns"`
	P99Ns         int64    `json:"p99_ns"`
	NodeGets      []uint64 `json:"node_gets"`
	Balance       float64  `json:"balance"`
	HotReads      uint64   `json:"hot_reads"`
	ReplicaReads  uint64   `json:"replica_reads"`
	Failovers     uint64   `json:"failovers"`
	BackendErrors uint64   `json:"backend_errors"`
}

// ContractsRowJSON is ContractsRow in wire form.
type ContractsRowJSON struct {
	Scheme       string           `json:"scheme"`
	MaxOpen      int              `json:"max_open_zones"`
	MaxActive    int              `json:"max_active_zones"`
	Result       SchemeResultJSON `json:"result"`
	BudgetStalls uint64           `json:"budget_stalls"`
	ZoneFinishes uint64           `json:"zone_finishes"`
	StallNs      int64            `json:"stall_ns"`
}

// ServeRowJSON is one serving-benchmark run (cmd/loadgen against
// cmd/cacheserver) in wire form. Latencies are wall-clock request times
// measured at the client; hit_ratio is hits over get lookups.
type ServeRowJSON struct {
	Mode        string  `json:"mode"` // "closed" or "open"
	Conns       int     `json:"conns"`
	Pipeline    int     `json:"pipeline"`
	TargetQPS   float64 `json:"target_qps,omitempty"`
	AchievedQPS float64 `json:"achieved_qps"`
	Ops         uint64  `json:"ops"`
	Gets        uint64  `json:"gets"`
	Sets        uint64  `json:"sets"`
	Deletes     uint64  `json:"deletes"`
	Hits        uint64  `json:"hits"`
	Misses      uint64  `json:"misses"`
	Fills       uint64  `json:"fills"`
	Errors      uint64  `json:"errors"`
	HitRatio    float64 `json:"hit_ratio"`
	ElapsedNs   int64   `json:"elapsed_ns"`
	P50Ns       int64   `json:"p50_ns"`
	P90Ns       int64   `json:"p90_ns"`
	P99Ns       int64   `json:"p99_ns"`
	P999Ns      int64   `json:"p999_ns"`
	MeanNs      int64   `json:"mean_ns"`
	MaxNs       int64   `json:"max_ns"`
	// Multiget is the loadgen's get-grouping width (absent when grouping was
	// off); GetBatchSizes counts issued get commands by key count, so the
	// report shows the batch-size distribution the server actually saw.
	Multiget      int            `json:"multiget,omitempty"`
	GetBatchSizes map[int]uint64 `json:"get_batch_sizes,omitempty"`
	// ValueSizeBuckets histograms acknowledged set payload sizes into
	// power-of-two buckets (key = bucket upper bound in bytes); the size
	// mix the server actually stored, which matters under a heavy-tailed
	// -valdist.
	ValueSizeBuckets map[int]uint64 `json:"value_size_buckets,omitempty"`
	// Timeline is the per-interval latency series captured when the loadgen
	// ran with progress sampling on (absent otherwise). Intervals are
	// disjoint; percentiles are interval-local.
	Timeline []ServeIntervalJSON `json:"timeline,omitempty"`
}

// ServeIntervalJSON is one loadgen progress interval in wire form.
type ServeIntervalJSON struct {
	TNs   int64   `json:"t_ns"` // interval end, from run start
	Ops   uint64  `json:"ops"`  // requests completed in the interval
	QPS   float64 `json:"qps"`
	P50Ns int64   `json:"p50_ns"`
	P99Ns int64   `json:"p99_ns"`
}

// AdmissionRowJSON is AdmissionRow in wire form.
type AdmissionRowJSON struct {
	Scheme            string           `json:"scheme"`
	Policy            string           `json:"policy"`
	Result            SchemeResultJSON `json:"result"`
	HostWriteBytes    uint64           `json:"host_write_bytes"`
	DeviceWriteBytes  uint64           `json:"device_write_bytes"`
	DeviceBytesPerSec float64          `json:"device_bytes_per_sec"`
	BudgetBytesPerSec float64          `json:"budget_bytes_per_sec"`
	AdmitRejects      uint64           `json:"admit_rejects"`
}

// SchemeResultJSON is SchemeResult in wire form.
type SchemeResultJSON struct {
	Scheme     string  `json:"scheme"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	HitRatio   float64 `json:"hit_ratio"`
	WAFactor   float64 `json:"wa_factor"`
	SetP50Ns   int64   `json:"set_p50_ns"`
	SetP99Ns   int64   `json:"set_p99_ns"`
	GetP50Ns   int64   `json:"get_p50_ns"`
	GetP99Ns   int64   `json:"get_p99_ns"`
	CacheBytes int64   `json:"cache_bytes"`
	SimTimeNs  int64   `json:"sim_time_ns"`
	Ops        uint64  `json:"ops"`
}

// FillRecordJSON is one Figure 3 fill-log entry in wire form.
type FillRecordJSON struct {
	Seq        uint64 `json:"seq"`
	DurationNs int64  `json:"duration_ns"`
	Evicted    bool   `json:"evicted"`
}

// Fig3JSON is Fig3Result in wire form, with the full retained fill series.
type Fig3JSON struct {
	Label            string           `json:"label"`
	RegionBytes      int64            `json:"region_bytes"`
	EvictionOnsetSeq uint64           `json:"eviction_onset_seq"`
	MeanBeforeNs     int64            `json:"mean_before_ns"`
	MeanAfterNs      int64            `json:"mean_after_ns"`
	Records          []FillRecordJSON `json:"records"`
}

// Fig4RowJSON is Fig4Row in wire form (also carries Table 1: the WA factor
// lives inside Result).
type Fig4RowJSON struct {
	Scheme  string           `json:"scheme"`
	OPRatio float64          `json:"op_ratio"`
	Result  SchemeResultJSON `json:"result"`
}

// Fig5RowJSON is Fig5Row in wire form.
type Fig5RowJSON struct {
	Scheme            string  `json:"scheme"`
	ER                float64 `json:"er"`
	OpsPerSec         float64 `json:"ops_per_sec"`
	SecondaryHitRatio float64 `json:"secondary_hit_ratio"`
	P50Ns             int64   `json:"p50_ns"`
	P99Ns             int64   `json:"p99_ns"`
	SimTimeNs         int64   `json:"sim_time_ns"`
}

// Table2RowJSON is Table2Row in wire form.
type Table2RowJSON struct {
	Zones     int     `json:"zones"`
	CacheGiB  float64 `json:"cache_gib"`
	OpsPerSec float64 `json:"ops_per_sec"`
	HitRatio  float64 `json:"hit_ratio"`
}

// SmallZoneRowJSON is SmallZoneRow in wire form.
type SmallZoneRowJSON struct {
	Label   string           `json:"label"`
	ZoneMiB int              `json:"zone_mib"`
	Result  SchemeResultJSON `json:"result"`
}

func schemeResultJSON(r SchemeResult) SchemeResultJSON {
	return SchemeResultJSON{
		Scheme:     r.Scheme.String(),
		OpsPerSec:  r.OpsPerSec,
		HitRatio:   r.HitRatio,
		WAFactor:   r.WAFactor,
		SetP50Ns:   int64(r.SetP50),
		SetP99Ns:   int64(r.SetP99),
		GetP50Ns:   int64(r.GetP50),
		GetP99Ns:   int64(r.GetP99),
		CacheBytes: r.CacheBytes,
		SimTimeNs:  int64(r.SimTime),
		Ops:        r.Ops,
	}
}

// NewFig2Report wraps Figure 2 rows as a Report.
func NewFig2Report(rows []SchemeResult) *Report {
	rep := &Report{Schema: ReportSchema, Experiment: "fig2"}
	for _, r := range rows {
		rep.Fig2 = append(rep.Fig2, schemeResultJSON(r))
	}
	return rep
}

// NewFig3Report wraps Figure 3 rows as a Report.
func NewFig3Report(rows []Fig3Result) *Report {
	rep := &Report{Schema: ReportSchema, Experiment: "fig3"}
	for _, r := range rows {
		j := Fig3JSON{
			Label:            r.Label,
			RegionBytes:      r.RegionBytes,
			EvictionOnsetSeq: r.EvictionOnsetSeq,
			MeanBeforeNs:     int64(r.MeanBefore),
			MeanAfterNs:      int64(r.MeanAfter),
		}
		for _, rec := range r.Records {
			j.Records = append(j.Records, FillRecordJSON{
				Seq: rec.Seq, DurationNs: int64(rec.Duration), Evicted: rec.Evicted,
			})
		}
		rep.Fig3 = append(rep.Fig3, j)
	}
	return rep
}

// NewFig4Table1Report wraps the OP sweep (Figure 4 + Table 1) as a Report.
func NewFig4Table1Report(rows []Fig4Row) *Report {
	rep := &Report{Schema: ReportSchema, Experiment: "fig4_table1"}
	for _, r := range rows {
		rep.Fig4Table1 = append(rep.Fig4Table1, Fig4RowJSON{
			Scheme: r.Scheme.String(), OPRatio: r.OPRatio, Result: schemeResultJSON(r.Result),
		})
	}
	return rep
}

// NewFig5Report wraps Figure 5 rows as a Report.
func NewFig5Report(rows []Fig5Row) *Report {
	rep := &Report{Schema: ReportSchema, Experiment: "fig5"}
	for _, r := range rows {
		rep.Fig5 = append(rep.Fig5, Fig5RowJSON{
			Scheme:            r.Scheme.String(),
			ER:                r.ER,
			OpsPerSec:         r.OpsPerSec,
			SecondaryHitRatio: r.SecondaryHitRatio,
			P50Ns:             int64(r.P50),
			P99Ns:             int64(r.P99),
			SimTimeNs:         int64(r.SimTime),
		})
	}
	return rep
}

// NewTable2Report wraps Table 2 rows as a Report.
func NewTable2Report(rows []Table2Row) *Report {
	rep := &Report{Schema: ReportSchema, Experiment: "table2"}
	for _, r := range rows {
		rep.Table2 = append(rep.Table2, Table2RowJSON{
			Zones: r.Zones, CacheGiB: r.CacheGiB, OpsPerSec: r.OpsPerSec, HitRatio: r.HitRatio,
		})
	}
	return rep
}

// NewSmallZoneReport wraps the small-zone sweep as a Report.
func NewSmallZoneReport(rows []SmallZoneRow) *Report {
	rep := &Report{Schema: ReportSchema, Experiment: "smallzone"}
	for _, r := range rows {
		rep.SmallZone = append(rep.SmallZone, SmallZoneRowJSON{
			Label: r.Label, ZoneMiB: r.ZoneMiB, Result: schemeResultJSON(r.Result),
		})
	}
	return rep
}

// NewServeReport wraps serving-benchmark rows as a Report.
func NewServeReport(rows []ServeRowJSON) *Report {
	return &Report{Schema: ReportSchema, Experiment: "serve", Serve: rows}
}

// NewContractsReport wraps the unwritten-contracts sweep as a Report.
func NewContractsReport(rows []ContractsRow) *Report {
	rep := &Report{Schema: ReportSchema, Experiment: "contracts"}
	for _, r := range rows {
		rep.Contracts = append(rep.Contracts, ContractsRowJSON{
			Scheme:       r.Scheme.String(),
			MaxOpen:      r.MaxOpen,
			MaxActive:    r.MaxActive,
			Result:       schemeResultJSON(r.Result),
			BudgetStalls: r.BudgetStalls,
			ZoneFinishes: r.ZoneFinishes,
			StallNs:      int64(r.StallTime),
		})
	}
	return rep
}

// NewClusterReport wraps cluster sweep rows as a Report.
func NewClusterReport(rows []ClusterResult) *Report {
	rep := &Report{Schema: ReportSchema, Experiment: "cluster"}
	for _, r := range rows {
		rep.Cluster = append(rep.Cluster, ClusterRowJSON{
			Nodes:         r.Nodes,
			Replication:   r.Replication,
			ZipfTheta:     r.ZipfTheta,
			HotWindow:     r.HotWindow,
			OpsPerSec:     r.OpsPerSec,
			HitRatio:      r.HitRatio,
			Ops:           r.Ops,
			Gets:          r.Gets,
			Sets:          r.Sets,
			Hits:          r.Hits,
			Misses:        r.Misses,
			ElapsedNs:     int64(r.Elapsed),
			P50Ns:         int64(r.P50),
			P99Ns:         int64(r.P99),
			NodeGets:      r.NodeGets,
			Balance:       r.Balance,
			HotReads:      r.HotReads,
			ReplicaReads:  r.ReplicaReads,
			Failovers:     r.Failovers,
			BackendErrors: r.BackendErrs,
		})
	}
	return rep
}

// NewCDNReport wraps CDN sweep rows as a Report.
func NewCDNReport(rows []CDNRow) *Report {
	rep := &Report{Schema: ReportSchema, Experiment: "cdn"}
	for _, r := range rows {
		rep.CDN = append(rep.CDN, CDNRowJSON{
			Scheme:            r.Scheme.String(),
			ChunkBytes:        r.ChunkBytes,
			Ops:               r.Ops,
			SimElapsedNs:      int64(r.SimTime),
			OpsPerSec:         r.OpsPerSec,
			Reads:             r.Reads,
			ObjectHits:        r.ObjectHits,
			Fills:             r.Fills,
			Deletes:           r.Deletes,
			ObjectHitRatio:    r.ObjectHitRatio(),
			ServedBytes:       r.ServedBytes,
			FillBytes:         r.FillBytes,
			ChunkHits:         r.ChunkHits,
			ChunkMisses:       r.ChunkMisses,
			PartialMisses:     r.PartialMisses,
			ManifestRepairs:   r.ManifestRepairs,
			EvictionsDeferred: r.EvictionsDeferred,
			WAFactor:          r.WAFactor,
		})
	}
	return rep
}

// PrintCDN renders the CDN sweep.
func PrintCDN(w io.Writer, rows []CDNRow) {
	fmt.Fprintln(w, "CDN large-object sweep — chunk size × scheme (bigobj over each engine)")
	fmt.Fprintf(w, "%-13s %9s %10s %9s %7s %7s %8s %9s %9s %8s %7s\n",
		"scheme", "chunkKiB", "ops/sec", "hit-ratio", "fills", "partial", "repairs", "servedMB", "filledMB", "pinned", "WA")
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %9d %10.0f %8.2f%% %7d %7d %8d %9.1f %9.1f %8d %7.2f\n",
			r.Scheme, r.ChunkBytes>>10, r.OpsPerSec, r.ObjectHitRatio()*100,
			r.Fills, r.PartialMisses, r.ManifestRepairs,
			float64(r.ServedBytes)/(1<<20), float64(r.FillBytes)/(1<<20),
			r.EvictionsDeferred, r.WAFactor)
	}
}

// PrintCluster renders the cluster sweep.
func PrintCluster(w io.Writer, rows []ClusterResult) {
	fmt.Fprintln(w, "Cluster tier — node count × replication × skew (loopback cacheproxy routing)")
	fmt.Fprintf(w, "%-6s %3s %6s %8s %12s %10s %8s %10s %10s %9s %9s\n",
		"nodes", "R", "theta", "hotwin", "ops/sec", "hit-ratio", "balance", "p50", "p99", "hot-rds", "repl-rds")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %3d %6.2f %8d %12.0f %9.2f%% %8.2f %10s %10s %9d %9d\n",
			r.Nodes, r.Replication, r.ZipfTheta, r.HotWindow, r.OpsPerSec,
			r.HitRatio*100, r.Balance, fmtDur(r.P50), fmtDur(r.P99),
			r.HotReads, r.ReplicaReads)
	}
}

// Validate checks the document invariants: the schema tag matches, the
// experiment is named, and the named experiment's section is the one that is
// populated.
func (r *Report) Validate() error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("harness: report schema %q, want %q", r.Schema, ReportSchema)
	}
	sections := map[string]bool{
		"fig2":        r.Fig2 != nil,
		"fig3":        r.Fig3 != nil,
		"fig4_table1": r.Fig4Table1 != nil,
		"fig5":        r.Fig5 != nil,
		"table2":      r.Table2 != nil,
		"smallzone":   r.SmallZone != nil,
		"admission":   r.Admission != nil,
		"serve":       r.Serve != nil,
		"contracts":   r.Contracts != nil,
		"cluster":     r.Cluster != nil,
		"cdn":         r.CDN != nil,
	}
	populated, known := sections[r.Experiment]
	if !known {
		return fmt.Errorf("harness: report names unknown experiment %q", r.Experiment)
	}
	if !populated {
		return fmt.Errorf("harness: report for %q has no %q section", r.Experiment, r.Experiment)
	}
	for name, has := range sections {
		if has && name != r.Experiment {
			return fmt.Errorf("harness: report for %q also carries section %q", r.Experiment, name)
		}
	}
	return nil
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// WriteFile writes the report to dir/BENCH_<experiment>.json and returns the
// path.
func (r *Report) WriteFile(dir string) (string, error) {
	path := filepath.Join(dir, "BENCH_"+r.Experiment+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("harness: report file: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close() //nolint:errcheck
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("harness: report file: %w", err)
	}
	return path, nil
}

// ParseReport decodes and validates a report document.
func ParseReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("harness: parse report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
