package harness

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"znscache/internal/cluster"
	"znscache/internal/fault"
	"znscache/internal/server"
	"znscache/internal/sim"
	"znscache/internal/stats"
	"znscache/internal/workload"
)

// Cluster tier benchmark and failure drill. Each "node" is a real serving
// stack — a scheme rig under a memcached server on a loopback listener — and
// the cluster.Router consistent-hashes across them exactly as cmd/cacheproxy
// does. The sweep measures how node count, replication factor, and workload
// skew move throughput, hit ratio, per-node balance, and tail latency; the
// drill kills one node mid-run with the fault injector and replays the
// acknowledged-write oracle cluster-wide.

// ClusterParams configures one cluster benchmark point.
type ClusterParams struct {
	Scheme Scheme
	// Nodes is the cluster size (default 3).
	Nodes int
	// Replication is the per-key replica count R (default 1).
	Replication int
	// ZipfTheta is the workload skew (default 0.99).
	ZipfTheta float64
	// Keys is the working-set size (default 2048).
	Keys int
	// Ops is how many client operations the driver issues (default 20000).
	Ops int
	// ValueBytes is the mean payload size (default 512; actual sizes vary
	// ±50% around it, seeded).
	ValueBytes int
	// GetRatio is the read fraction of the op mix (default 0.9); misses fill
	// read-through, so the steady-state mix is get-heavy like CacheBench bc.
	GetRatio float64
	// Seed drives the workload (default 1).
	Seed uint64
	// HotWindow/HotTopK/HotMinCount configure the router's hot-key detector;
	// HotWindow 0 disables hot-key read replication for the point.
	HotWindow, HotTopK, HotMinCount int
}

func (p *ClusterParams) fillDefaults() {
	if p.Nodes == 0 {
		p.Nodes = 3
	}
	if p.Replication == 0 {
		p.Replication = 1
	}
	if p.ZipfTheta == 0 {
		p.ZipfTheta = 0.99
	}
	if p.Keys == 0 {
		p.Keys = 2048
	}
	if p.Ops == 0 {
		p.Ops = 20000
	}
	if p.ValueBytes == 0 {
		p.ValueBytes = 512
	}
	if p.GetRatio == 0 {
		p.GetRatio = 0.9
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// ClusterResult is one benchmark point's measurements.
type ClusterResult struct {
	Nodes       int
	Replication int
	ZipfTheta   float64
	HotWindow   int

	Ops       uint64
	Gets      uint64
	Sets      uint64
	Hits      uint64
	Misses    uint64
	HitRatio  float64
	OpsPerSec float64
	Elapsed   time.Duration
	P50, P99  time.Duration

	// NodeGets is cmd_get per node, in sorted node-name order. Balance is
	// max(NodeGets)/mean(NodeGets): 1.0 is perfectly even; hot-key read
	// replication should pull a skewed workload's balance toward 1.
	NodeGets []uint64
	Balance  float64

	// Router counters for the point.
	HotReads     uint64
	ReplicaReads uint64
	Failovers    uint64
	BackendErrs  uint64
}

// clusterHW is the per-node profile cluster runs use: 1 MiB zones, 16 zones,
// so a 2048-key working set cycles regions without swamping the run.
func clusterHW() HWProfile {
	return HWProfile{Zones: 16, BlocksPerZone: 8, PagesPerBlock: 32, Channels: 4, DiesPerChan: 1}
}

// clusterNode is one running member: rig, server, and its address.
type clusterNode struct {
	name string
	rig  *Rig
	srv  *server.Server
}

// rigBackend adapts a rig's engine to the serving layer's Backend. The
// engine is single-writer, so a mutex serializes the server's connections;
// ShardNow exposes the rig's simulated clock for absolute-exptime
// resolution.
type rigBackend struct {
	mu  sync.Mutex
	rig *Rig
}

func (b *rigBackend) Get(key string) ([]byte, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rig.Engine.Get(key)
}

func (b *rigBackend) Set(key string, value []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rig.Engine.Set(key, value, 0)
}

func (b *rigBackend) SetWithTTL(key string, value []byte, ttl time.Duration) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rig.Engine.SetTTL(key, value, 0, ttl)
}

func (b *rigBackend) Delete(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rig.Engine.Delete(key)
}

func (b *rigBackend) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rig.Engine.Len()
}

func (b *rigBackend) ShardNow(string) time.Duration { return b.rig.Clock.Now() }

// startClusterNodes builds and serves n scheme rigs on loopback listeners.
// Nodes are named node-00…; the returned stop func shuts every server down.
func startClusterNodes(scheme Scheme, n int, hw HWProfile, cacheZones int, regionBytes int64, faults func(i int) *fault.Config) ([]*clusterNode, func(), error) {
	nodes := make([]*clusterNode, 0, n)
	stop := func() {
		for _, cn := range nodes {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			cn.srv.Shutdown(ctx) //nolint:errcheck
			cancel()
		}
	}
	for i := 0; i < n; i++ {
		cfg := RigConfig{
			Scheme:      scheme,
			HW:          hw,
			CacheBytes:  int64(cacheZones) * hw.ZoneBytes(),
			RegionBytes: regionBytes,
			TrackValues: true,
		}
		if faults != nil {
			cfg.Faults = faults(i)
		}
		rig, err := Build(cfg)
		if err != nil {
			stop()
			return nil, nil, fmt.Errorf("harness: cluster node %d: %w", i, err)
		}
		srv, err := server.New(server.Config{Backend: &rigBackend{rig: rig}})
		if err != nil {
			stop()
			return nil, nil, fmt.Errorf("harness: cluster node %d server: %w", i, err)
		}
		go srv.Serve() //nolint:errcheck
		nodes = append(nodes, &clusterNode{name: fmt.Sprintf("node-%02d", i), rig: rig, srv: srv})
	}
	return nodes, stop, nil
}

func clusterNodeList(nodes []*clusterNode) []cluster.Node {
	out := make([]cluster.Node, len(nodes))
	for i, cn := range nodes {
		out[i] = cluster.Node{Name: cn.name, Addr: cn.srv.Addr()}
	}
	return out
}

// RunCluster executes one benchmark point: a seeded zipf read-through
// workload driven through a Router over real loopback nodes.
func RunCluster(p ClusterParams) (*ClusterResult, error) {
	p.fillDefaults()
	nodes, stop, err := startClusterNodes(p.Scheme, p.Nodes, clusterHW(), 10, 64<<10, nil)
	if err != nil {
		return nil, err
	}
	defer stop()

	rt, err := cluster.New(cluster.Config{
		Nodes:       clusterNodeList(nodes),
		Replication: p.Replication,
		HotWindow:   p.HotWindow,
		HotTopK:     p.HotTopK,
		HotMinCount: p.HotMinCount,
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()

	res := &ClusterResult{
		Nodes: p.Nodes, Replication: p.Replication,
		ZipfTheta: p.ZipfTheta, HotWindow: p.HotWindow,
	}
	zipf := workload.NewZipf(int64(p.Keys), p.ZipfTheta, p.Seed)
	rng := sim.NewRand(p.Seed ^ 0xc2b2ae3d27d4eb4f)
	hist := stats.NewHistogram()
	payload := make([]byte, p.ValueBytes*2)
	rng.Bytes(payload)
	valueFor := func(id int64) []byte {
		n := p.ValueBytes/2 + int(uint64(id*2654435761)%uint64(p.ValueBytes))
		return payload[:n]
	}
	keyName := func(id int64) string { return fmt.Sprintf("key-%08d", id) }

	t0 := time.Now()
	for i := 0; i < p.Ops; i++ {
		id := zipf.Next()
		key := keyName(id)
		op0 := time.Now()
		if rng.Float64() < p.GetRatio {
			res.Gets++
			_, hit, gerr := rt.Get(key)
			if gerr != nil {
				return nil, fmt.Errorf("harness: cluster get %s: %w", key, gerr)
			}
			if hit {
				res.Hits++
			} else {
				res.Misses++
				if serr := rt.Set(key, valueFor(id)); serr != nil {
					return nil, fmt.Errorf("harness: cluster fill %s: %w", key, serr)
				}
			}
		} else {
			res.Sets++
			if serr := rt.Set(key, valueFor(id)); serr != nil {
				return nil, fmt.Errorf("harness: cluster set %s: %w", key, serr)
			}
		}
		hist.Observe(time.Since(op0))
	}
	res.Elapsed = time.Since(t0)
	res.Ops = uint64(p.Ops)
	if res.Gets > 0 {
		res.HitRatio = float64(res.Hits) / float64(res.Gets)
	}
	if res.Elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / res.Elapsed.Seconds()
	}
	res.P50 = hist.Percentile(0.5)
	res.P99 = hist.Percentile(0.99)

	names := rt.Nodes()
	sort.Strings(names)
	var total, max uint64
	for _, name := range names {
		st, serr := rt.NodeStats(name)
		if serr != nil {
			return nil, fmt.Errorf("harness: cluster stats %s: %w", name, serr)
		}
		var gets uint64
		fmt.Sscanf(st["cmd_get"], "%d", &gets) //nolint:errcheck
		res.NodeGets = append(res.NodeGets, gets)
		total += gets
		if gets > max {
			max = gets
		}
	}
	if len(names) > 0 && total > 0 {
		mean := float64(total) / float64(len(names))
		res.Balance = float64(max) / mean
	}
	m := rt.MetricsSnapshot()
	res.HotReads, res.ReplicaReads = m.HotReads, m.ReplicaReads
	res.Failovers, res.BackendErrs = m.Failovers, m.BackendErrors
	return res, nil
}

// DefaultClusterSweep enumerates the benchmark grid: node count ×
// replication × zipf skew, ending in a matched pair (5 nodes, R=3, a
// concentrated 512-key working set, hot detector off vs on) so the report
// shows hot-key read replication flattening per-node imbalance — the only
// difference between the last two rows is the detector, and with R=3 it
// moves two thirds of the hot-key reads off each key's primary. Note the
// zipf generator clamps theta to (0,1), so skew beyond 0.99 must come from
// shrinking the key space, not raising theta.
func DefaultClusterSweep() []ClusterParams {
	hot := func(p ClusterParams) ClusterParams {
		p.HotWindow, p.HotTopK, p.HotMinCount = 1024, 8, 16
		return p
	}
	return []ClusterParams{
		{Nodes: 1, Replication: 1, ZipfTheta: 0.99},
		{Nodes: 3, Replication: 1, ZipfTheta: 0.6},
		{Nodes: 3, Replication: 1, ZipfTheta: 0.99},
		{Nodes: 3, Replication: 2, ZipfTheta: 0.99},
		{Nodes: 5, Replication: 3, ZipfTheta: 0.99, Keys: 512},
		hot(ClusterParams{Nodes: 5, Replication: 3, ZipfTheta: 0.99, Keys: 512}),
	}
}

// RunClusterSweep runs each point in order.
func RunClusterSweep(points []ClusterParams) ([]ClusterResult, error) {
	rows := make([]ClusterResult, 0, len(points))
	for _, p := range points {
		res, err := RunCluster(p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *res)
	}
	return rows, nil
}

// ClusterDrillParams configures one kill-a-node drill.
type ClusterDrillParams struct {
	Scheme Scheme
	// Nodes is the cluster size (default 3).
	Nodes int
	// Replication is the replica count (default 2 — the interesting case:
	// one death should lose approximately nothing).
	Replication int
	// Seed drives the workload, the victim choice, and the crash point.
	Seed uint64
	// Keys is the working-set size (default 48).
	Keys int
	// WarmOps is how many writes land before the crash is armed (default 250).
	WarmOps int
	// MaxPostOps bounds the writes issued while waiting for the victim's
	// device to die (default 400).
	MaxPostOps int
}

func (p *ClusterDrillParams) fillDefaults() {
	if p.Nodes == 0 {
		p.Nodes = 3
	}
	if p.Replication == 0 {
		p.Replication = 2
	}
	if p.Keys == 0 {
		p.Keys = 48
	}
	if p.WarmOps == 0 {
		p.WarmOps = 250
	}
	if p.MaxPostOps == 0 {
		p.MaxPostOps = 400
	}
}

// ClusterDrillReport is the cluster-wide oracle's verdict.
type ClusterDrillReport struct {
	Nodes       int
	Replication int
	Seed        uint64
	Victim      string
	// Crashed reports whether the armed device crash fired before the
	// post-arm op budget ran out.
	Crashed bool
	// AckedKeys is how many distinct keys had at least one acknowledged
	// write; Hits+Lost partitions them after the kill.
	AckedKeys int
	Hits      int
	Lost      int
	// WrongData counts post-kill hits whose value matches nothing ever
	// written for the key — the hard failure.
	WrongData int
	// LostNotOnVictim counts lost keys whose pre-kill replica set did not
	// include the victim: losses the kill cannot explain.
	LostNotOnVictim int
	// Router counters accumulated across the run.
	ReplicaWriteErrors uint64
	Failovers          uint64
	BackendErrors      uint64
}

// Err folds the report into pass/fail: wrong data is always a bug; a drill
// whose crash never fired tested nothing; losses the kill cannot explain
// point at a replication bug.
func (r *ClusterDrillReport) Err() error {
	if r.WrongData > 0 {
		return fmt.Errorf("harness: cluster drill seed %d: %d hits returned wrong data", r.Seed, r.WrongData)
	}
	if !r.Crashed {
		return fmt.Errorf("harness: cluster drill seed %d: crash never fired", r.Seed)
	}
	if r.LostNotOnVictim > 0 {
		return fmt.Errorf("harness: cluster drill seed %d: %d keys lost without the victim in their replica set",
			r.Seed, r.LostNotOnVictim)
	}
	return nil
}

// RunClusterDrill writes through the router, kills one node's device
// mid-run via the fault injector, marks it down, and replays the
// acknowledged-write oracle over every key: a hit must return bytes that
// were actually written for that key (acked or in flight when the device
// died); an acked key may be lost only if the victim held a replica of it.
func RunClusterDrill(p ClusterDrillParams) (*ClusterDrillReport, error) {
	p.fillDefaults()
	hw := crashHW()
	faults := func(i int) *fault.Config {
		return &fault.Config{Seed: p.Seed + uint64(i)}
	}
	// Small regions so writes reach the device often enough for the armed
	// crash to fire: traffic splits N ways, and a region's worth of buffered
	// bytes is the granularity at which a node actually touches flash.
	nodes, stop, err := startClusterNodes(p.Scheme, p.Nodes, hw, 6, 16<<10, faults)
	if err != nil {
		return nil, err
	}
	defer stop()

	rt, err := cluster.New(cluster.Config{
		Nodes:       clusterNodeList(nodes),
		Replication: p.Replication,
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()

	rng := sim.NewRand(p.Seed ^ 0x9e3779b97f4a7c15)
	rep := &ClusterDrillReport{Nodes: p.Nodes, Replication: p.Replication, Seed: p.Seed}
	victim := nodes[rng.Intn(len(nodes))]
	rep.Victim = victim.name

	keyOf := func(i int) string { return fmt.Sprintf("key-%03d", i) }
	value := func() []byte {
		b := make([]byte, 64+rng.Intn(2048))
		rng.Bytes(b)
		return b
	}
	// written holds every value ever sent for a key (the oracle's accept
	// set: a replica may legitimately serve a value whose ack failed on the
	// dying primary); acked marks keys with at least one acknowledged write.
	written := make(map[string][][]byte, p.Keys)
	acked := make(map[string]bool, p.Keys)
	writeOne := func() {
		k := keyOf(rng.Intn(p.Keys))
		v := value()
		written[k] = append(written[k], v)
		if err := rt.Set(k, v); err == nil {
			acked[k] = true
		}
	}

	// Phase 1: warm writes, everything healthy.
	for i := 0; i < p.WarmOps; i++ {
		writeOne()
	}
	// Record every key's replica set under the pre-kill topology.
	ownersPre := make(map[string][]string, len(written))
	for k := range written {
		ownersPre[k] = rt.Owners(k)
	}

	// Phase 2: arm the victim's device crash a seeded distance ahead and
	// write into it.
	w0 := victim.rig.Faults.Writes()
	span := int(w0 / 2)
	if span < 2 {
		span = 2
	}
	victim.rig.Faults.ArmCrash(w0 + 1 + uint64(rng.Intn(span)))
	for i := 0; i < p.MaxPostOps && !victim.rig.Faults.Crashed(); i++ {
		writeOne()
	}
	rep.Crashed = victim.rig.Faults.Crashed()

	// The node is dead: take it out of the topology, then kill its server.
	rt.MarkDown(victim.name)
	killCtx, cancel := context.WithCancel(context.Background())
	cancel()
	victim.srv.Shutdown(killCtx) //nolint:errcheck

	// Oracle replay over every key, in fixed order.
	keys := make([]string, 0, len(written))
	for k := range written {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rep.AckedKeys = len(acked)
	for _, k := range keys {
		v, hit, gerr := rt.Get(k)
		if gerr != nil {
			return nil, fmt.Errorf("harness: drill Get(%q): %w", k, gerr)
		}
		if !hit {
			if acked[k] {
				rep.Lost++
				if !containsName(ownersPre[k], victim.name) {
					rep.LostNotOnVictim++
				}
			}
			continue
		}
		if matchesAny(v, written[k]) {
			rep.Hits++
		} else {
			rep.WrongData++
		}
	}

	// The survivors must keep serving: a short smoke workload.
	for i := 0; i < 32; i++ {
		k := keyOf(rng.Intn(p.Keys))
		v := value()
		if err := rt.Set(k, v); err != nil {
			return nil, fmt.Errorf("harness: post-kill Set: %w", err)
		}
		got, hit, gerr := rt.Get(k)
		if gerr != nil {
			return nil, fmt.Errorf("harness: post-kill Get: %w", gerr)
		}
		if hit && !bytes.Equal(got, v) {
			rep.WrongData++
		}
	}

	m := rt.MetricsSnapshot()
	rep.ReplicaWriteErrors = m.ReplicaWriteErrors
	rep.Failovers = m.Failovers
	rep.BackendErrors = m.BackendErrors
	return rep, nil
}

func matchesAny(got []byte, vals [][]byte) bool {
	for _, v := range vals {
		if bytes.Equal(got, v) {
			return true
		}
	}
	return false
}

func containsName(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}
