package harness

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"znscache/internal/bigobj"
	"znscache/internal/cache"
	"znscache/internal/obs"
	"znscache/internal/sim"
	"znscache/internal/workload"
)

// CDN experiment: the chunked large-object layer (internal/bigobj) under a
// CDN-flavoured workload — heavy-tailed Pareto object sizes, zipf popularity
// with diurnal drift, byte-range reads, TTL churn, origin purges — swept
// across chunk size × scheme. The question it answers is the paper's
// write-amplification story transposed to large objects: chunk size sets
// both the range-read fill granularity (small chunks waste less device
// bandwidth on partial reads) and the metadata/actor overhead (large chunks
// amortize per-item headers and index entries), and the four schemes pay
// for it differently because their region sizes and GC stories differ.

// CDNParams sizes the sweep.
type CDNParams struct {
	// Zones is the device size in 16 MiB zones (default 6: small enough
	// that the touched working set overflows the cache and eviction/GC
	// pressure separates the schemes within a short run).
	Zones int
	// Objects is the catalog size (default 3000 — with the default Pareto
	// the catalog's full-body footprint is ~2× the cache, so eviction
	// pressure is real and chunk granularity matters).
	Objects int64
	// WarmupOps/MeasureOps split each point's run (defaults 1500/2500).
	// Counters are deltas over the measured window.
	WarmupOps  int
	MeasureOps int
	Seed       uint64
	// ChunkSizes are the bigobj chunk payload sizes to sweep (default
	// 128 KiB and 512 KiB).
	ChunkSizes []int
	// RegionBytes is the engine region size for non-zone schemes (default
	// 1 MiB; every swept chunk size must fit it).
	RegionBytes int64
	// Workload overrides the generator shape; zero-valued fields take the
	// CDNConfig defaults. Seed and Objects are forced from the params.
	Workload workload.CDNConfig
	Schemes  []Scheme
}

func (p *CDNParams) fillDefaults() {
	if p.Zones == 0 {
		p.Zones = 6
	}
	if p.Objects == 0 {
		p.Objects = 3000
	}
	if p.Workload.DiurnalPeriod == 0 {
		// One catalog "hour" of hot-set drift every 600 requests, so a
		// default run crosses several rotations.
		p.Workload.DiurnalPeriod = 600
	}
	if p.WarmupOps == 0 {
		p.WarmupOps = 1500
	}
	if p.MeasureOps == 0 {
		p.MeasureOps = 2500
	}
	if len(p.ChunkSizes) == 0 {
		p.ChunkSizes = []int{128 << 10, 512 << 10}
	}
	if p.RegionBytes == 0 {
		p.RegionBytes = 1 << 20
	}
	if len(p.Schemes) == 0 {
		p.Schemes = AllSchemes
	}
}

// CDNRow is one (scheme, chunk size) cell of the sweep.
type CDNRow struct {
	Scheme     Scheme
	ChunkBytes int
	// Ops is the measured-window op count; SimTime the simulated time it
	// took; OpsPerSec their ratio.
	Ops       int
	SimTime   time.Duration
	OpsPerSec float64
	// Reads partition into ObjectHits (range served entirely from cache)
	// and Fills (whole-object refetch after a miss — whole-object or
	// partial). Reads == ObjectHits + Fills.
	Reads      int
	ObjectHits int
	Fills      int
	// Deletes are origin purges applied in the window.
	Deletes int
	// ServedBytes is payload returned to readers; FillBytes is payload
	// streamed in by fills.
	ServedBytes uint64
	FillBytes   uint64
	// Bigobj counter deltas over the window.
	ChunkHits         uint64
	ChunkMisses       uint64
	PartialMisses     uint64
	ManifestRepairs   uint64
	EvictionsDeferred uint64
	// WAFactor is the device write amplification over the whole run
	// (cumulative, like the other experiments report it).
	WAFactor float64
}

// ObjectHitRatio is hits over reads in the measured window.
func (r CDNRow) ObjectHitRatio() float64 {
	if r.Reads == 0 {
		return 0
	}
	return float64(r.ObjectHits) / float64(r.Reads)
}

// RunCDN sweeps chunk size × scheme. Rows come back scheme-major in
// Schemes order, chunk sizes in the given order.
func RunCDN(p CDNParams) ([]CDNRow, error) {
	p.fillDefaults()
	hw := DefaultHW(p.Zones)
	cacheBytes := int64(hw.actualZones()) * hw.ZoneBytes() * 20 / 25

	type point struct {
		scheme Scheme
		chunk  int
	}
	var points []point
	for _, s := range p.Schemes {
		for _, c := range p.ChunkSizes {
			points = append(points, point{s, c})
		}
	}

	rows := make([]CDNRow, len(points))
	err := forEachPoint(len(points), func(i int) error {
		pt := points[i]
		cfg := RigConfig{
			Scheme:      pt.scheme,
			HW:          hw,
			CacheBytes:  cacheBytes,
			RegionBytes: p.RegionBytes,
			TrackValues: true,
			// bigobj owns admission at object granularity; the engine
			// below it must not second-guess individual chunks, so any
			// process-wide admission factory is overridden here.
			Admission: cache.AdmitAll{},
		}
		if pt.scheme == ZoneCache {
			cfg.ZoneCount = hw.actualZones()
		}
		rig, err := Build(cfg)
		if err != nil {
			return fmt.Errorf("cdn %v chunk=%d: %w", pt.scheme, pt.chunk, err)
		}
		row, err := runCDNPoint(rig, pt.chunk, p)
		if err != nil {
			return fmt.Errorf("cdn %v chunk=%d: %w", pt.scheme, pt.chunk, err)
		}
		rows[i] = *row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// runCDNPoint drives one rig through warmup + measure.
func runCDNPoint(rig *Rig, chunkSize int, p CDNParams) (*CDNRow, error) {
	store, err := bigobj.New(bigobj.Config{
		Backend:   rig.Engine,
		ChunkSize: chunkSize,
		Clock:     rig.Clock,
	})
	if err != nil {
		return nil, err
	}
	if reg := globalRegistry.Load(); reg != nil {
		store.MetricsInto(reg, obs.L(
			"experiment", "cdn",
			"scheme", rig.Scheme.String(),
			"chunk_bytes", strconv.Itoa(chunkSize),
		))
	}

	wcfg := p.Workload
	wcfg.Objects = p.Objects
	wcfg.Seed = p.Seed
	gen := workload.NewCDN(wcfg)

	// Origin content: a fixed random corpus sliced per object. Fills model
	// the origin fetch; content identity is irrelevant to the sweep (the
	// torn-read property has its own oracle tests), so one buffer serves
	// every object.
	if wcfg.MaxSize == 0 {
		wcfg.MaxSize = 2 << 20
	}
	corpus := make([]byte, wcfg.MaxSize)
	sim.NewRand(p.Seed ^ 0xC0FFEE).Bytes(corpus)

	row := &CDNRow{Scheme: rig.Scheme, ChunkBytes: chunkSize}
	copyBuf := make([]byte, 64<<10)

	apply := func(op workload.CDNOp) error {
		if op.Delete {
			store.Delete(op.Key)
			row.Deletes++
			return nil
		}
		row.Reads++
		rr, err := store.NewRangeReader(op.Key, op.Off, op.Len)
		if err == nil {
			n, cerr := io.CopyBuffer(io.Discard, rr, copyBuf)
			rr.Close()
			row.ServedBytes += uint64(n)
			if cerr == nil {
				row.ObjectHits++
				return nil
			}
			if !errors.Is(cerr, bigobj.ErrPartialObject) {
				return cerr
			}
		} else if !errors.Is(err, bigobj.ErrNotFound) && !errors.Is(err, bigobj.ErrPartialObject) {
			return err
		}
		// Miss (whole or partial): read-through fill of the whole object
		// from the origin corpus.
		row.Fills++
		row.FillBytes += uint64(op.Size)
		if err := store.Put(op.Key, bytes.NewReader(corpus[:op.Size]), op.TTL); err != nil {
			return fmt.Errorf("fill %q (%d bytes): %w", op.Key, op.Size, err)
		}
		return nil
	}

	for i := 0; i < p.WarmupOps; i++ {
		if err := apply(gen.Next()); err != nil {
			return nil, err
		}
	}

	// Reset the window: deltas from here on.
	*row = CDNRow{Scheme: rig.Scheme, ChunkBytes: chunkSize}
	s0 := store.Stats()
	t0 := rig.Clock.Now()

	for i := 0; i < p.MeasureOps; i++ {
		if err := apply(gen.Next()); err != nil {
			return nil, err
		}
	}

	s1 := store.Stats()
	row.Ops = p.MeasureOps
	row.SimTime = rig.Clock.Now() - t0
	if secs := row.SimTime.Seconds(); secs > 0 {
		row.OpsPerSec = float64(row.Ops) / secs
	}
	row.ChunkHits = s1.ChunkHits - s0.ChunkHits
	row.ChunkMisses = s1.ChunkMisses - s0.ChunkMisses
	row.PartialMisses = s1.PartialMisses - s0.PartialMisses
	row.ManifestRepairs = s1.ManifestRepairs - s0.ManifestRepairs
	row.EvictionsDeferred = s1.EvictionsDeferred - s0.EvictionsDeferred
	row.WAFactor = rig.WAFactor()
	return row, nil
}
