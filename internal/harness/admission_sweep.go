package harness

import (
	"fmt"
	"io"

	"znscache/internal/cache"
)

// AdmissionRow is one (scheme, admission policy) cell of the admission
// sweep: the usual bc-mix result plus the write-path quantities admission
// control exists to trade — device bytes written against hit ratio.
type AdmissionRow struct {
	Scheme Scheme
	// Policy is the admission spec the row ran under ("all", "reject-first",
	// "frequency", "dynamic-random", ...).
	Policy string
	Result SchemeResult
	// HostWriteBytes / DeviceWriteBytes are measured-window byte deltas; the
	// device figure includes region padding and GC, so DeviceWriteBytes /
	// HostWriteBytes is the end-to-end write cost per accepted item byte.
	HostWriteBytes   uint64
	DeviceWriteBytes uint64
	// DeviceBytesPerSec is DeviceWriteBytes over the measured simulated time.
	DeviceBytesPerSec float64
	// BudgetBytesPerSec is dynamic-random's configured device-write budget
	// (0 for every other policy).
	BudgetBytesPerSec float64
	// AdmitRejects counts inserts the policy refused in the window.
	AdmitRejects uint64
}

// AdmissionSweepParams sizes the admission sweep. The sweep runs in two
// phases: phase one measures each scheme's unconstrained device-write rate
// under admit-all (those runs double as the "all" rows), phase two replays
// the same workload under every other policy, with dynamic-random's budget
// set to BudgetFraction of the scheme's own unconstrained rate — so the
// budget is always a meaningful constraint, at any workload scale.
type AdmissionSweepParams struct {
	Zones      int
	Keys       int64
	WarmupOps  int
	MeasureOps int
	Seed       uint64
	// Policies are admission specs (see cache.ParseAdmission). "all" is
	// always run (it is the phase-one baseline) and need not be listed.
	Policies []string
	// BudgetFraction scales each scheme's unconstrained device-write rate
	// into dynamic-random's budget (default 0.5).
	BudgetFraction float64
	// BudgetBytesPerSec, when positive, overrides BudgetFraction with an
	// absolute device-write budget shared by all schemes.
	BudgetBytesPerSec float64
	Schemes           []Scheme
}

// DefaultAdmissionSweep returns scaled defaults matching the Figure 2 rig.
func DefaultAdmissionSweep() AdmissionSweepParams {
	return AdmissionSweepParams{
		Zones:      25,
		Keys:       72 << 10,
		WarmupOps:  500_000,
		MeasureOps: 400_000,
		Seed:       11,
		Policies:   []string{"reject-first", "frequency", "dynamic-random"},
		Schemes:    AllSchemes,
	}
}

// admissionRigConfig mirrors the Figure 2 rig: 20/25 of the device as cache,
// honest F2FS accounting, Zone-Cache on the whole device.
func admissionRigConfig(s Scheme, hw HWProfile) RigConfig {
	cfg := RigConfig{
		Scheme:            s,
		HW:                hw,
		CacheBytes:        int64(hw.actualZones()) * hw.ZoneBytes() * 20 / 25,
		OPRatio:           0.20,
		FSMetaOverhead:    0.30,
		FSMetaOverheadSet: true,
	}
	if s == ZoneCache {
		cfg.ZoneCount = hw.actualZones()
	}
	return cfg
}

// RunAdmissionSweep measures hit ratio, write amplification, and device
// bytes written for every (scheme, admission policy) pair — the §4.3
// write-bandwidth/lifetime axis with admission control as the lever. Rows
// come back scheme-major in AllSchemes order, "all" first within a scheme.
func RunAdmissionSweep(p AdmissionSweepParams) ([]AdmissionRow, error) {
	if p.BudgetFraction == 0 {
		p.BudgetFraction = 0.5
	}
	if len(p.Schemes) == 0 {
		p.Schemes = AllSchemes
	}
	hw := DefaultHW(p.Zones)

	// Phase one: unconstrained baselines, one per scheme, in parallel. These
	// are the "all" rows and the denominators for the dynamic-random budget.
	baselines := make([]measuredBC, len(p.Schemes))
	err := forEachPoint(len(p.Schemes), func(i int) error {
		cfg := admissionRigConfig(p.Schemes[i], hw)
		cfg.AdmissionFactory = cache.AdmitAllFactory{}
		rig, err := Build(cfg)
		if err != nil {
			return fmt.Errorf("admission %v baseline: %w", p.Schemes[i], err)
		}
		baselines[i] = runBCMeasured(rig, p.Keys, p.WarmupOps, p.MeasureOps, p.Seed)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase two: every remaining (scheme, policy) point, in parallel. Points
	// are enumerated before the fan-out, so seeds — and therefore rows — are
	// identical no matter how the worker pool schedules them.
	type point struct {
		schemeIdx int
		policy    string
		budget    float64 // dynamic-random only
	}
	var points []point
	for i := range p.Schemes {
		base := baselines[i]
		rate := 0.0
		if base.SimTime > 0 {
			rate = float64(base.DeviceWriteBytes) / base.SimTime.Seconds()
		}
		for _, spec := range p.Policies {
			if spec == "all" || spec == "" || spec == "none" {
				continue // already the baseline
			}
			budget := p.BudgetBytesPerSec
			if budget <= 0 {
				budget = rate * p.BudgetFraction
			}
			points = append(points, point{schemeIdx: i, policy: spec, budget: budget})
		}
	}
	results := make([]AdmissionRow, len(points))
	err = forEachPoint(len(points), func(i int) error {
		pt := points[i]
		s := p.Schemes[pt.schemeIdx]
		factory, err := cache.ParseAdmission(pt.policy, pt.budget)
		if err != nil {
			return fmt.Errorf("admission %v %q: %w", s, pt.policy, err)
		}
		cfg := admissionRigConfig(s, hw)
		cfg.AdmissionFactory = factory
		cfg.AdmissionSeed = cache.ShardSeed(p.Seed, i)
		rig, err := Build(cfg)
		if err != nil {
			return fmt.Errorf("admission %v %q: %w", s, pt.policy, err)
		}
		m := runBCMeasured(rig, p.Keys, p.WarmupOps, p.MeasureOps, p.Seed)
		row := admissionRow(s, pt.policy, m)
		if _, isDyn := factory.(cache.DynamicRandomFactory); isDyn {
			row.BudgetBytesPerSec = pt.budget
		}
		results[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Assemble scheme-major: baseline first, then the policies in order.
	rows := make([]AdmissionRow, 0, len(p.Schemes)+len(points))
	pi := 0
	for i, s := range p.Schemes {
		rows = append(rows, admissionRow(s, "all", baselines[i]))
		for pi < len(points) && points[pi].schemeIdx == i {
			rows = append(rows, results[pi])
			pi++
		}
	}
	return rows, nil
}

func admissionRow(s Scheme, policy string, m measuredBC) AdmissionRow {
	rate := 0.0
	if m.SimTime > 0 {
		rate = float64(m.DeviceWriteBytes) / m.SimTime.Seconds()
	}
	return AdmissionRow{
		Scheme:            s,
		Policy:            policy,
		Result:            m.SchemeResult,
		HostWriteBytes:    m.HostWriteBytes,
		DeviceWriteBytes:  m.DeviceWriteBytes,
		DeviceBytesPerSec: rate,
		AdmitRejects:      m.AdmitRejects,
	}
}

// PrintAdmission renders the admission sweep: the hit-ratio price paid for
// each policy's device-write savings, plus dynamic-random's budget tracking.
func PrintAdmission(w io.Writer, rows []AdmissionRow) {
	fmt.Fprintln(w, "Admission sweep — hit ratio vs device bytes written per policy")
	fmt.Fprintf(w, "%-14s %-15s %10s %8s %10s %12s %12s %10s\n",
		"scheme", "policy", "hit-ratio", "WAF", "dev-MiB", "dev-MiB/s", "budget-MiB/s", "rejects")
	const mib = 1 << 20
	for _, r := range rows {
		budget := "-"
		if r.BudgetBytesPerSec > 0 {
			budget = fmt.Sprintf("%.1f", r.BudgetBytesPerSec/mib)
		}
		fmt.Fprintf(w, "%-14s %-15s %9.2f%% %8.2f %10.1f %12.1f %12s %10d\n",
			r.Scheme, r.Policy, r.Result.HitRatio*100, r.Result.WAFactor,
			float64(r.DeviceWriteBytes)/mib, r.DeviceBytesPerSec/mib, budget,
			r.AdmitRejects)
	}
}

// NewAdmissionReport wraps admission sweep rows as a Report.
func NewAdmissionReport(rows []AdmissionRow) *Report {
	rep := &Report{Schema: ReportSchema, Experiment: "admission"}
	for _, r := range rows {
		rep.Admission = append(rep.Admission, AdmissionRowJSON{
			Scheme:            r.Scheme.String(),
			Policy:            r.Policy,
			Result:            schemeResultJSON(r.Result),
			HostWriteBytes:    r.HostWriteBytes,
			DeviceWriteBytes:  r.DeviceWriteBytes,
			DeviceBytesPerSec: r.DeviceBytesPerSec,
			BudgetBytesPerSec: r.BudgetBytesPerSec,
			AdmitRejects:      r.AdmitRejects,
		})
	}
	return rep
}
