package harness

import (
	"fmt"
	"time"
)

// ContractsRow is one (scheme, zone-resource limit) cell of the unwritten-
// contracts sweep: the bc-mix result plus the middle layer's budget-pressure
// counters. Block-Cache runs on a conventional SSD and ignores the limits —
// it is the flat control row the zoned schemes are read against.
type ContractsRow struct {
	Scheme Scheme
	// MaxOpen / MaxActive are the device limits the row ran under.
	MaxOpen   int
	MaxActive int
	Result    SchemeResult
	// BudgetStalls / ZoneFinishes / StallTime are Region-Cache's middle-layer
	// budget counters (zero for the other schemes): flushes that had to
	// close, finish, or reset another zone before the device would accept
	// them, zones finished early, and the simulated time lost to that work.
	BudgetStalls uint64
	ZoneFinishes uint64
	StallTime    time.Duration
}

// ContractsParams sizes the unwritten-contracts sweep (the §2 zone-resource
// limits the paper calls out: max open zones, max active zones). Every
// (scheme, limit) pair reruns the Figure 2 rig with the device's open-zone
// cap forced to the limit and the active budget to limit+ActiveSlack.
type ContractsParams struct {
	Zones      int
	Keys       int64
	WarmupOps  int
	MeasureOps int
	Seed       uint64
	// Limits are the open-zone caps to sweep (descending; the first should
	// be the device default so the leftmost column is the baseline).
	Limits []int
	// ActiveSlack is how many active slots the device grants beyond the
	// open cap (real devices report active ≥ open; ZN540: equal). Slack
	// above zero lets a scheme keep zones closed-but-unfinished when the
	// open cap pinches — the regime where open-cap churn shows up as
	// budget stalls rather than hard errors.
	ActiveSlack int
	// MiddleOpenZones is how many zones Region-Cache's middle layer wants
	// to write concurrently — its working set. Limits below it are where
	// the contract starts to bite (default 4).
	MiddleOpenZones int
	Schemes         []Scheme
}

// DefaultContracts returns scaled defaults: the ZN540 default cap down to a
// single open zone, two active slots of slack, and a middle layer sized for
// four concurrent zones.
func DefaultContracts() ContractsParams {
	return ContractsParams{
		Zones:           25,
		Keys:            72 << 10,
		WarmupOps:       400_000,
		MeasureOps:      300_000,
		Seed:            1,
		Limits:          []int{14, 8, 4, 2, 1},
		ActiveSlack:     2,
		MiddleOpenZones: 4,
		Schemes:         AllSchemes,
	}
}

// fileCacheMinOpen is the smallest open-zone cap File-Cache can run under:
// f2fs appends through two log heads (data and node), so it holds two zones
// open at once by construction. Below that the scheme does not degrade — it
// stops working, which is itself a finding the sweep reports by omission.
const fileCacheMinOpen = 2

// RunContracts sweeps the zone-resource limits across the schemes: for each
// (scheme, limit) pair the Figure 2 rig is rebuilt with MaxOpenZones=limit
// and MaxActiveZones=limit+ActiveSlack, and the bc mix rerun. Rows come
// back scheme-major in Schemes order, limits in the given order; File-Cache
// rows below its structural minimum are omitted.
func RunContracts(p ContractsParams) ([]ContractsRow, error) {
	if len(p.Schemes) == 0 {
		p.Schemes = AllSchemes
	}
	if len(p.Limits) == 0 {
		p.Limits = []int{14, 8, 4, 2, 1}
	}
	if p.MiddleOpenZones == 0 {
		p.MiddleOpenZones = 4
	}
	hw := DefaultHW(p.Zones)
	cacheBytes := int64(hw.actualZones()) * hw.ZoneBytes() * 20 / 25

	type point struct {
		scheme Scheme
		limit  int
	}
	var points []point
	for _, s := range p.Schemes {
		for _, l := range p.Limits {
			if s == FileCache && l < fileCacheMinOpen {
				continue
			}
			points = append(points, point{s, l})
		}
	}

	rows := make([]ContractsRow, len(points))
	err := forEachPoint(len(points), func(i int) error {
		pt := points[i]
		cfg := RigConfig{
			Scheme:            pt.scheme,
			HW:                hw,
			CacheBytes:        cacheBytes,
			OPRatio:           0.20,
			FSMetaOverhead:    0.30,
			FSMetaOverheadSet: true,
			MaxOpenZones:      pt.limit,
			MaxActiveZones:    pt.limit + p.ActiveSlack,
			MiddleOpenZones:   p.MiddleOpenZones,
		}
		if pt.scheme == ZoneCache {
			cfg.ZoneCount = hw.actualZones()
		}
		rig, err := Build(cfg)
		if err != nil {
			return fmt.Errorf("contracts %v open=%d: %w", pt.scheme, pt.limit, err)
		}
		row := ContractsRow{
			Scheme:    pt.scheme,
			MaxOpen:   pt.limit,
			MaxActive: pt.limit + p.ActiveSlack,
			Result:    RunBC(rig, p.Keys, p.WarmupOps, p.MeasureOps, p.Seed),
		}
		if rig.Middle != nil {
			row.BudgetStalls = rig.Middle.BudgetStalls.Load()
			row.ZoneFinishes = rig.Middle.ZoneFinishes.Load()
			row.StallTime = time.Duration(rig.Middle.StallTimeNs.Load())
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
