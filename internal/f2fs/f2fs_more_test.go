package f2fs

import (
	"bytes"
	"errors"
	"testing"

	"znscache/internal/sim"
)

func TestMultipleFilesIsolated(t *testing.T) {
	fs := mountTest(t, true)
	a, err := fs.Create("a", 8*BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fs.Create("b", 8*BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	av := bytes.Repeat([]byte{0xAA}, BlockSize)
	bv := bytes.Repeat([]byte{0xBB}, BlockSize)
	a.WriteAt(0, av, BlockSize, 0)
	b.WriteAt(0, bv, BlockSize, 0)
	got := make([]byte, BlockSize)
	a.ReadAt(0, got, 0)
	if !bytes.Equal(got, av) {
		t.Fatal("file a corrupted by file b's write")
	}
	b.ReadAt(0, got, 0)
	if !bytes.Equal(got, bv) {
		t.Fatal("file b corrupted")
	}
}

func TestCreateAccountsAcrossFiles(t *testing.T) {
	fs := mountTest(t, false)
	half := alignBlocks(fs.UsableBytes() / 2)
	if _, err := fs.Create("a", half); err != nil {
		t.Fatal(err)
	}
	// A second file of more than the remainder must be rejected.
	if _, err := fs.Create("b", fs.UsableBytes()-half+BlockSize); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("overcommit across files err = %v", err)
	}
	if _, err := fs.Create("b", alignBlocks(fs.UsableBytes()-half)); err != nil {
		t.Fatalf("exact-fit second file: %v", err)
	}
}

func TestSyncWithoutDirtyNodesIsNoop(t *testing.T) {
	fs := mountTest(t, false)
	before := fs.WA.Media()
	if _, err := fs.Sync(0); err != nil {
		t.Fatal(err)
	}
	if fs.WA.Media() != before {
		t.Fatal("empty Sync wrote node blocks")
	}
}

func TestMetaOverheadShrinksUsable(t *testing.T) {
	plain, err := Mount(testDev(t, false), Config{OPRatio: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Mount(testDev(t, false), Config{OPRatio: 0.2, MetaOverhead: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if heavy.UsableBytes() >= plain.UsableBytes() {
		t.Fatalf("MetaOverhead did not shrink usable: %d vs %d",
			heavy.UsableBytes(), plain.UsableBytes())
	}
}

func TestSequentialLargeWriteSpansSegments(t *testing.T) {
	// One write larger than a zone must stream across segments without
	// violating device write-pointer rules.
	fs := mountTest(t, false)
	zoneBytes := fs.dev.ZoneSize()
	f, err := fs.Create("big", 3*zoneBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(0, nil, int(2*zoneBytes), 0); err != nil {
		t.Fatalf("multi-segment write: %v", err)
	}
	if fs.LiveBlocks() != 2*zoneBytes/BlockSize {
		t.Fatalf("LiveBlocks = %d", fs.LiveBlocks())
	}
}

func TestCleanerVictimThresholdRespected(t *testing.T) {
	// With VictimMaxValid very low and plenty of free zones, the cleaner
	// must refuse expensive victims instead of thrashing.
	fs, err := Mount(testDev(t, false), Config{OPRatio: 0.4, VictimMaxValid: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	size := alignBlocks(fs.UsableBytes() / 2)
	f, _ := fs.Create("f", size)
	blocks := size / BlockSize
	rng := sim.NewRand(7)
	for i := int64(0); i < blocks*3; i++ {
		if _, err := f.WriteAt(0, nil, BlockSize, rng.Int63n(blocks)*BlockSize); err != nil {
			t.Fatal(err)
		}
	}
	// Half-utilized FS with huge OP: cleaning may run on fully-dead
	// segments but must not migrate valid blocks of expensive ones.
	if fs.WA.Factor() > 1.2 {
		t.Fatalf("cleaner migrated heavily (WA %.2f) despite 1%% victim threshold", fs.WA.Factor())
	}
}
