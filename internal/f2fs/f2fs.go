// Package f2fs implements a simplified flash-friendly, log-structured
// filesystem over a ZNS device, standing in for F2FS in the paper's
// File-Cache scheme (Figure 1a).
//
// The structural properties the paper attributes to F2FS are reproduced:
//
//   - Everything is written out-of-place into append-only segments (one
//     segment per zone), through two logs: a data log and a node (metadata)
//     log. Block indexing goes through per-file node blocks, so data
//     overwrites dirty node blocks too — the "internal indexing ... not
//     designed and optimized for cache" overhead of §3.1.
//   - The filesystem needs its own over-provisioning (§3.1: "additional
//     space provisioning (e.g., 20%)") to run segment cleaning; usable file
//     capacity is reduced accordingly.
//   - Frequent overwrites of cache regions leave dead blocks behind, and a
//     segment cleaner migrates live blocks and resets zones — filesystem-
//     level write amplification (Table 1's File-Cache row).
//   - Cleaning is incremental: each host write contributes a bounded
//     quantum of migration work, so stalls stay small. This models F2FS
//     being "optimized for tail latency" (§4.2, Figure 5d) — in contrast
//     to the regular SSD's all-at-once foreground device GC.
package f2fs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"znscache/internal/device"
	"znscache/internal/obs"
	"znscache/internal/stats"
	"znscache/internal/zns"
)

// BlockSize is the filesystem block size, equal to the device sector.
const BlockSize = device.SectorSize

// PointersPerNode is how many data-block pointers one node block covers.
// Each data write dirties its covering node block; dirty node blocks are
// flushed at checkpoints, charging metadata write amplification.
const PointersPerNode = 1024

// Errors returned by the filesystem.
var (
	ErrBadConfig = errors.New("f2fs: invalid configuration")
	ErrNoSpace   = errors.New("f2fs: out of space")
	ErrExists    = errors.New("f2fs: file exists")
	ErrNotFound  = errors.New("f2fs: file not found")
	ErrBeyondEOF = errors.New("f2fs: access beyond file size")
	ErrUnaligned = errors.New("f2fs: offset or length not block-aligned")
)

// Config parameterizes a mount.
type Config struct {
	// OPRatio is the fraction of zones reserved for cleaning headroom
	// (default 0.20, the figure §3.1 cites for F2FS-class filesystems).
	OPRatio float64
	// CheckpointBytes triggers a node-log flush after this many host bytes
	// (default 16 MiB).
	CheckpointBytes int64
	// CleanLowZones starts the cleaner when free zones drop below it
	// (default: half the reserve, minimum 3).
	CleanLowZones int
	// CleanQuantumBlocks bounds migration work charged to one host write
	// (default 64 blocks). Lower = smoother tail, slower reclaim.
	CleanQuantumBlocks int
	// VictimMaxValid rejects victims whose valid ratio exceeds this
	// (default 0.9); the cleaner prefers the emptiest segment regardless.
	VictimMaxValid float64
	// MetaLatency is the CPU cost charged per 4 KiB block of an operation
	// for the VFS path, node/index traversal, page-cache management, and
	// locking (default 25µs ≈ 160 MB/s of single-thread buffered FS I/O,
	// the measured class of real log-structured filesystems) — the
	// per-page software overhead that makes general-purpose file I/O
	// "too heavy for cache access patterns" (§3.1).
	MetaLatency time.Duration
	// MetaOverhead is the fraction of zones consumed by filesystem
	// metadata beyond the cleaning reserve (zero = none): node segments,
	// checkpoint packs, SIT/NAT — the reason the paper needed 38 zones
	// plus a 6 GiB regular block device to host a 20 GiB cache (§4.1).
	MetaOverhead float64
}

func (c *Config) fillDefaults() {
	if c.OPRatio == 0 {
		c.OPRatio = 0.20
	}
	if c.CheckpointBytes == 0 {
		c.CheckpointBytes = 16 << 20
	}
	if c.CleanQuantumBlocks == 0 {
		c.CleanQuantumBlocks = 64
	}
	if c.VictimMaxValid == 0 {
		c.VictimMaxValid = 0.9
	}
	if c.MetaLatency == 0 {
		c.MetaLatency = 25 * time.Microsecond
	}
}

// blockRef identifies the logical owner of one live device block, needed to
// relocate it during cleaning.
type blockRef struct {
	file   *File
	idx    int64 // file block index, or node block index when isNode
	isNode bool
}

// segment tracks one zone's occupancy.
type segment struct {
	zone  int
	valid int // live blocks
	used  int // blocks written (== wp in blocks once full)
}

// FS is a mounted filesystem. Safe for concurrent use.
type FS struct {
	dev zns.Zoned
	cfg Config

	mu       sync.Mutex
	files    map[string]*File
	segs     []segment // indexed by zone
	freeZone []int
	dataSeg  int                // zone of the open data segment, -1 if none
	nodeSeg  int                // zone of the open node segment, -1 if none
	refs     map[int64]blockRef // device block index -> owner

	dirtyNodes   map[nodeKey]struct{}
	sinceCkpt    int64 // host bytes since last checkpoint
	usableBlocks int64
	liveBlocks   int64 // file data blocks currently mapped

	// cleaning state: adopted victim being drained incrementally
	victim     int   // zone, -1 when none
	victimScan int64 // next block within victim to examine

	// Observability.
	WA          stats.WriteAmp // host file bytes vs device bytes (data+node+cleaning)
	CleanRuns   stats.Counter
	Checkpoints stats.Counter
	CleanStalls *stats.Histogram
}

type nodeKey struct {
	file *File
	idx  int64
}

// File is an open file. All I/O is block-aligned, matching the cache's
// region I/O which is always 4 KiB-aligned.
type File struct {
	fs   *FS
	name string
	size int64
	// blocks maps file block index -> device block index (-1 = hole).
	blocks []int64
	// nodeLive maps node block index -> device block of its latest version
	// (-1 = never flushed).
	nodeLive []int64
}

// Mount formats the device and mounts a fresh filesystem over it.
func Mount(dev zns.Zoned, cfg Config) (*FS, error) {
	cfg.fillDefaults()
	if cfg.OPRatio < 0 || cfg.OPRatio >= 1 {
		return nil, fmt.Errorf("%w: OP ratio %v", ErrBadConfig, cfg.OPRatio)
	}
	n := dev.NumZones()
	reserve := int(float64(n)*(cfg.OPRatio+cfg.MetaOverhead) + 0.5)
	if reserve < 3 {
		reserve = 3
	}
	if reserve >= n {
		return nil, fmt.Errorf("%w: %d zones cannot hold %d reserved", ErrBadConfig, n, reserve)
	}
	if cfg.CleanLowZones == 0 {
		cfg.CleanLowZones = reserve / 2
		if cfg.CleanLowZones < 3 {
			cfg.CleanLowZones = 3
		}
	}
	fs := &FS{
		dev:          dev,
		cfg:          cfg,
		files:        make(map[string]*File),
		segs:         make([]segment, n),
		refs:         make(map[int64]blockRef),
		dirtyNodes:   make(map[nodeKey]struct{}),
		dataSeg:      -1,
		nodeSeg:      -1,
		victim:       -1,
		usableBlocks: int64(n-reserve) * (dev.ZoneSize() / BlockSize),
		CleanStalls:  stats.NewHistogram(),
	}
	for z := n - 1; z >= 0; z-- {
		fs.segs[z] = segment{zone: z}
		fs.freeZone = append(fs.freeZone, z)
	}
	return fs, nil
}

// UsableBytes is the capacity available to files after the OP reserve.
func (fs *FS) UsableBytes() int64 { return fs.usableBlocks * BlockSize }

// FreeZones reports the free-zone pool size (tests, zonectl).
func (fs *FS) FreeZones() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.freeZone)
}

// MetricsInto implements obs.MetricSource: filesystem write amplification,
// segment-cleaning activity, checkpoint count, the incremental-cleaning stall
// distribution, and pool-health gauges.
func (fs *FS) MetricsInto(r *obs.Registry, labels obs.Labels) {
	ls := labels.With("layer", "f2fs")
	r.WriteAmp("f2fs_wa", "Filesystem write amplification (data+node+cleaning)", ls, &fs.WA)
	r.Counter("f2fs_clean_runs_total", "Segment-cleaner victim adoptions", ls, &fs.CleanRuns)
	r.Counter("f2fs_checkpoints_total", "Node-log checkpoints", ls, &fs.Checkpoints)
	r.Histogram("f2fs_clean_stall_seconds", "Cleaning work charged to host writes", ls, fs.CleanStalls)
	r.Gauge("f2fs_free_zones", "Zones in the free pool", ls, func() float64 {
		return float64(fs.FreeZones())
	})
	r.Gauge("f2fs_live_blocks", "File data blocks currently mapped", ls, func() float64 {
		return float64(fs.LiveBlocks())
	})
}

// Create allocates a file of fixed size (CacheLib's usage: one large
// preallocated cache file). The allocation is logical; blocks are assigned
// on first write.
func (fs *FS) Create(name string, size int64) (*File, error) {
	if size <= 0 || size%BlockSize != 0 {
		return nil, fmt.Errorf("%w: size %d", ErrUnaligned, size)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	var committed int64
	for _, f := range fs.files {
		committed += f.size
	}
	if committed+size > fs.UsableBytes() {
		return nil, fmt.Errorf("%w: %d committed + %d requested > %d usable",
			ErrNoSpace, committed, size, fs.UsableBytes())
	}
	nBlocks := size / BlockSize
	f := &File{
		fs:       fs,
		name:     name,
		size:     size,
		blocks:   make([]int64, nBlocks),
		nodeLive: make([]int64, (nBlocks+PointersPerNode-1)/PointersPerNode),
	}
	for i := range f.blocks {
		f.blocks[i] = -1
	}
	for i := range f.nodeLive {
		f.nodeLive[i] = -1
	}
	fs.files[name] = f
	return f, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return f, nil
}

// blockOffset converts a device block index to a byte offset.
func blockOffset(b int64) int64 { return b * BlockSize }

// takeZoneLocked pops a free zone. Caller must have ensured supply.
func (fs *FS) takeZoneLocked() int {
	n := len(fs.freeZone)
	z := fs.freeZone[n-1]
	fs.freeZone = fs.freeZone[:n-1]
	return z
}

// appendBlockLocked writes one block to the data or node log, returning the
// device block index and the flash completion time. It rolls the open
// segment when full.
func (fs *FS) appendBlockLocked(now time.Duration, data []byte, node bool) (int64, time.Duration, error) {
	segPtr := &fs.dataSeg
	if node {
		segPtr = &fs.nodeSeg
	}
	blocksPerZone := fs.dev.ZoneSize() / BlockSize
	if *segPtr == -1 || int64(fs.segs[*segPtr].used) == blocksPerZone {
		if *segPtr != -1 {
			// Segment full: finish the zone so its open slot frees up.
			if _, err := fs.dev.Finish(now, *segPtr); err != nil {
				return 0, now, err
			}
		}
		if len(fs.freeZone) == 0 {
			return 0, now, ErrNoSpace
		}
		*segPtr = fs.takeZoneLocked()
	}
	seg := &fs.segs[*segPtr]
	dst := int64(seg.zone)*blocksPerZone + int64(seg.used)
	lat, err := fs.dev.Write(now, data, BlockSize, blockOffset(dst))
	if err != nil {
		return 0, now, err
	}
	seg.used++
	seg.valid++
	fs.WA.AddMedia(BlockSize)
	return dst, now + lat, nil
}

// invalidateLocked marks a device block dead.
func (fs *FS) invalidateLocked(b int64) {
	blocksPerZone := fs.dev.ZoneSize() / BlockSize
	z := int(b / blocksPerZone)
	fs.segs[z].valid--
	delete(fs.refs, b)
}

// WriteAt writes block-aligned data. Returns the simulated latency,
// including any cleaning quantum and checkpoint flush charged to this call.
func (f *File) WriteAt(now time.Duration, data []byte, n int, off int64) (time.Duration, error) {
	if off%BlockSize != 0 || n%BlockSize != 0 {
		return 0, ErrUnaligned
	}
	if off < 0 || off+int64(n) > f.size {
		return 0, fmt.Errorf("%w: [%d,+%d) size %d", ErrBeyondEOF, off, n, f.size)
	}
	if data != nil && len(data) != n {
		return 0, fmt.Errorf("f2fs: data length %d != n %d", len(data), n)
	}
	fs := f.fs
	start := now
	now += fs.cfg.MetaLatency * time.Duration(n/BlockSize)

	fs.mu.Lock()
	defer fs.mu.Unlock()

	// Contribute a cleaning quantum if reclaim is behind.
	var err error
	now, err = fs.cleanQuantumLocked(now)
	if err != nil {
		return 0, err
	}

	blocks := int64(n) / BlockSize
	firstIdx := off / BlockSize
	latest := now
	for i := int64(0); i < blocks; i++ {
		idx := firstIdx + i
		if old := f.blocks[idx]; old != -1 {
			fs.invalidateLocked(old)
		} else {
			fs.liveBlocks++
		}
		var payload []byte
		if data != nil {
			payload = data[i*BlockSize : (i+1)*BlockSize]
		}
		dst, done, werr := fs.appendBlockLocked(now, payload, false)
		if werr != nil {
			return 0, werr
		}
		f.blocks[idx] = dst
		fs.refs[dst] = blockRef{file: f, idx: idx}
		fs.dirtyNodes[nodeKey{file: f, idx: idx / PointersPerNode}] = struct{}{}
		if done > latest {
			latest = done
		}
	}
	fs.WA.AddHost(uint64(n))
	fs.sinceCkpt += int64(n)

	// Periodic checkpoint: flush dirty node blocks to the node log.
	if fs.sinceCkpt >= fs.cfg.CheckpointBytes {
		var cerr error
		latest, cerr = fs.checkpointLocked(latest)
		if cerr != nil {
			return 0, cerr
		}
	}
	return latest - start, nil
}

// ReadAt reads block-aligned data; holes read as zeros.
func (f *File) ReadAt(now time.Duration, p []byte, off int64) (time.Duration, error) {
	n := len(p)
	if off%BlockSize != 0 || n%BlockSize != 0 {
		return 0, ErrUnaligned
	}
	if off < 0 || off+int64(n) > f.size {
		return 0, fmt.Errorf("%w: [%d,+%d) size %d", ErrBeyondEOF, off, n, f.size)
	}
	fs := f.fs
	start := now
	now += fs.cfg.MetaLatency * time.Duration(n/BlockSize)

	fs.mu.Lock()
	defer fs.mu.Unlock()
	latest := now
	for i := int64(0); i < int64(n)/BlockSize; i++ {
		dst := p[i*BlockSize : (i+1)*BlockSize]
		b := f.blocks[off/BlockSize+i]
		if b == -1 {
			for j := range dst {
				dst[j] = 0
			}
			continue
		}
		lat, err := fs.dev.Read(now, dst, blockOffset(b))
		if err != nil {
			return 0, fmt.Errorf("f2fs: read: %w", err)
		}
		if now+lat > latest {
			latest = now + lat
		}
	}
	return latest - start, nil
}

// Size returns the file size.
func (f *File) Size() int64 { return f.size }

// MetaCostPerBlock exposes the configured per-block CPU cost so callers
// (the cache's file store) can account for the synchronous share of writes.
func (f *File) MetaCostPerBlock() time.Duration { return f.fs.cfg.MetaLatency }

// checkpointLocked flushes dirty node blocks to the node log.
func (fs *FS) checkpointLocked(now time.Duration) (time.Duration, error) {
	latest := now
	for k := range fs.dirtyNodes {
		if old := k.file.nodeLive[k.idx]; old != -1 {
			fs.invalidateLocked(old)
		}
		dst, done, err := fs.appendBlockLocked(now, nil, true)
		if err != nil {
			return now, err
		}
		k.file.nodeLive[k.idx] = dst
		fs.refs[dst] = blockRef{file: k.file, idx: k.idx, isNode: true}
		if done > latest {
			latest = done
		}
	}
	fs.dirtyNodes = make(map[nodeKey]struct{})
	fs.sinceCkpt = 0
	fs.Checkpoints.Inc()
	return latest, nil
}

// Sync forces a checkpoint.
func (fs *FS) Sync(now time.Duration) (time.Duration, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	done, err := fs.checkpointLocked(now)
	return done - now, err
}

// cleanQuantumLocked advances segment cleaning by a bounded amount. When
// the free pool is below the watermark it adopts (or continues draining)
// the fullest-dead victim; when the pool is empty it drains synchronously
// until a zone is recovered (the rare foreground stall).
func (fs *FS) cleanQuantumLocked(now time.Duration) (time.Duration, error) {
	emergency := len(fs.freeZone) <= 1
	if fs.victim == -1 && len(fs.freeZone) >= fs.cfg.CleanLowZones {
		return now, nil
	}
	start := now
	for {
		if fs.victim == -1 {
			v, ok := fs.pickVictimLocked()
			if !ok {
				break
			}
			fs.victim = v
			fs.victimScan = 0
			fs.CleanRuns.Inc()
		}
		var err error
		var finished bool
		// Urgency scaling: the further below the watermark the free pool
		// falls, the more work each host write contributes, so the cleaner
		// converges instead of sliding into emergency full drains.
		urgency := fs.cfg.CleanLowZones - len(fs.freeZone) + 1
		if urgency < 1 {
			urgency = 1
		}
		quantum := fs.cfg.CleanQuantumBlocks * urgency
		if emergency {
			quantum = 1 << 30 // drain fully
		}
		now, finished, err = fs.drainVictimLocked(now, quantum)
		if err != nil {
			return now, err
		}
		if !finished {
			break // quantum exhausted; resume on a later write
		}
		if !emergency || len(fs.freeZone) > 1 {
			break
		}
	}
	if stall := now - start; stall > 0 {
		fs.CleanStalls.Observe(stall)
	}
	return now, nil
}

// pickVictimLocked selects the full segment with the lowest valid ratio.
// Open log segments and zones already free are excluded.
func (fs *FS) pickVictimLocked() (int, bool) {
	blocksPerZone := int(fs.dev.ZoneSize() / BlockSize)
	best, bestValid := -1, blocksPerZone+1
	for z := range fs.segs {
		s := &fs.segs[z]
		if s.used != blocksPerZone { // not full: still open or free
			continue
		}
		if z == fs.dataSeg || z == fs.nodeSeg {
			continue
		}
		if s.valid < bestValid {
			best, bestValid = z, s.valid
		}
	}
	if best == -1 {
		return -1, false
	}
	if float64(bestValid) > fs.cfg.VictimMaxValid*float64(blocksPerZone) {
		return -1, false // everything too full to be worth cleaning
	}
	return best, true
}

// drainVictimLocked migrates up to quantum live blocks out of the victim;
// when the scan completes it resets the zone and returns finished=true.
func (fs *FS) drainVictimLocked(now time.Duration, quantum int) (time.Duration, bool, error) {
	blocksPerZone := fs.dev.ZoneSize() / BlockSize
	z := fs.victim
	moved := 0
	for fs.victimScan < blocksPerZone && moved < quantum {
		b := int64(z)*blocksPerZone + fs.victimScan
		fs.victimScan++
		ref, live := fs.refs[b]
		if !live {
			continue
		}
		// Read the live block and append it to the proper log.
		buf := make([]byte, BlockSize)
		rlat, err := fs.dev.Read(now, buf, blockOffset(b))
		if err != nil {
			return now, false, fmt.Errorf("f2fs: clean read: %w", err)
		}
		dst, done, err := fs.appendBlockLocked(now+rlat, buf, ref.isNode)
		if err != nil {
			return now, false, err
		}
		fs.invalidateLocked(b)
		if ref.isNode {
			ref.file.nodeLive[ref.idx] = dst
		} else {
			ref.file.blocks[ref.idx] = dst
		}
		fs.refs[dst] = ref
		now = done
		moved++
	}
	if fs.victimScan < blocksPerZone {
		return now, false, nil
	}
	// Victim fully drained: reset and reclaim.
	rlat, err := fs.dev.Reset(now, z)
	if err != nil {
		return now, false, fmt.Errorf("f2fs: clean reset: %w", err)
	}
	now += rlat
	fs.segs[z] = segment{zone: z}
	fs.freeZone = append(fs.freeZone, z)
	fs.victim = -1
	fs.victimScan = 0
	return now, true, nil
}

// LiveBlocks reports mapped data blocks (tests).
func (fs *FS) LiveBlocks() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.liveBlocks
}

// Files lists file names (zonectl).
func (fs *FS) Files() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
