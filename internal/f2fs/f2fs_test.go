package f2fs

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"znscache/internal/device"
	"znscache/internal/flash"
	"znscache/internal/sim"
	"znscache/internal/zns"
)

// testDev builds a small ZNS device: 32 zones × 16 blocks × 4 KiB = 2 MiB
// zones... (4 blocks/zone, 64 KiB zones, 32 zones, 2 MiB total).
func testDev(t *testing.T, store bool) *zns.Device {
	t.Helper()
	d, err := zns.New(zns.Config{
		Geometry: flash.Geometry{
			Channels: 2, DiesPerChan: 2, BlocksPerDie: 32,
			PagesPerBlock: 16, PageSize: device.SectorSize,
		},
		Timing:        flash.DefaultTiming(),
		BlocksPerZone: 4,
		MaxOpenZones:  8,
		StoreData:     store,
	})
	if err != nil {
		t.Fatalf("zns.New: %v", err)
	}
	return d
}

func mountTest(t *testing.T, store bool) *FS {
	t.Helper()
	fs, err := Mount(testDev(t, store), Config{OPRatio: 0.25})
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	return fs
}

func alignBlocks(n int64) int64 { return n / BlockSize * BlockSize }

func TestMountRejectsBadOP(t *testing.T) {
	if _, err := Mount(testDev(t, false), Config{OPRatio: 1.2}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("OP 1.2 err = %v", err)
	}
}

func TestUsableBelowRaw(t *testing.T) {
	fs := mountTest(t, false)
	if fs.UsableBytes() >= fs.dev.Size() {
		t.Fatalf("usable %d not below raw %d — OP reserve missing", fs.UsableBytes(), fs.dev.Size())
	}
}

func TestCreateOpenSemantics(t *testing.T) {
	fs := mountTest(t, false)
	if _, err := fs.Create("a", 123); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned create err = %v", err)
	}
	f, err := fs.Create("a", 16*BlockSize)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if f.Size() != 16*BlockSize {
		t.Fatalf("Size = %d", f.Size())
	}
	if _, err := fs.Create("a", 16*BlockSize); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create err = %v", err)
	}
	if _, err := fs.Open("a"); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := fs.Open("b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing open err = %v", err)
	}
	if got := fs.Files(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Files = %v", got)
	}
}

func TestCreateOvercommitRejected(t *testing.T) {
	fs := mountTest(t, false)
	if _, err := fs.Create("big", fs.UsableBytes()+BlockSize); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("overcommit err = %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := mountTest(t, true)
	f, _ := fs.Create("f", 32*BlockSize)
	want := bytes.Repeat([]byte{0xAA}, 3*BlockSize)
	if _, err := f.WriteAt(0, want, len(want), 4*BlockSize); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(want))
	if _, err := f.ReadAt(0, got, 4*BlockSize); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round-trip mismatch")
	}
}

func TestHolesReadZero(t *testing.T) {
	fs := mountTest(t, true)
	f, _ := fs.Create("f", 8*BlockSize)
	got := bytes.Repeat([]byte{1}, BlockSize)
	if _, err := f.ReadAt(0, got, 0); err != nil {
		t.Fatalf("ReadAt hole: %v", err)
	}
	if !bytes.Equal(got, make([]byte, BlockSize)) {
		t.Fatal("hole not zero")
	}
}

func TestEOFAndAlignmentErrors(t *testing.T) {
	fs := mountTest(t, false)
	f, _ := fs.Create("f", 8*BlockSize)
	if _, err := f.WriteAt(0, nil, BlockSize, 8*BlockSize); !errors.Is(err, ErrBeyondEOF) {
		t.Fatalf("EOF write err = %v", err)
	}
	if _, err := f.ReadAt(0, make([]byte, 100), 0); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned read err = %v", err)
	}
}

func TestOverwriteVisible(t *testing.T) {
	fs := mountTest(t, true)
	f, _ := fs.Create("f", 8*BlockSize)
	a := bytes.Repeat([]byte{1}, BlockSize)
	b := bytes.Repeat([]byte{2}, BlockSize)
	f.WriteAt(0, a, BlockSize, 0)
	f.WriteAt(0, b, BlockSize, 0)
	got := make([]byte, BlockSize)
	f.ReadAt(0, got, 0)
	if !bytes.Equal(got, b) {
		t.Fatal("overwrite not visible")
	}
	if fs.LiveBlocks() != 1 {
		t.Fatalf("LiveBlocks = %d, want 1 (overwrite reuses slot)", fs.LiveBlocks())
	}
}

func TestCheckpointWritesNodeBlocks(t *testing.T) {
	fs := mountTest(t, false)
	f, _ := fs.Create("f", 8*BlockSize)
	f.WriteAt(0, nil, BlockSize, 0)
	if _, err := fs.Sync(0); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if fs.Checkpoints.Load() != 1 {
		t.Fatalf("Checkpoints = %d", fs.Checkpoints.Load())
	}
	// Media bytes must exceed host bytes: the node block was also written.
	if fs.WA.Media() <= fs.WA.Host() {
		t.Fatalf("media %d not above host %d after checkpoint", fs.WA.Media(), fs.WA.Host())
	}
}

func TestOverwriteChurnTriggersCleaningAndWA(t *testing.T) {
	// Fill a file close to usable capacity, then overwrite it repeatedly:
	// the cleaner must run, reclaim zones, and WA must exceed 1 — the
	// File-Cache behaviour in Table 1.
	fs := mountTest(t, false)
	size := alignBlocks(fs.UsableBytes() * 8 / 10)
	f, err := fs.Create("cache", size)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	blocks := size / BlockSize
	rng := sim.NewRand(11)
	now := time.Duration(0)
	for i := int64(0); i < blocks*5; i++ {
		off := rng.Int63n(blocks) * BlockSize
		lat, err := f.WriteAt(now, nil, BlockSize, off)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		now += lat
	}
	if fs.CleanRuns.Load() == 0 {
		t.Fatal("cleaner never ran under overwrite churn")
	}
	if wa := fs.WA.Factor(); wa <= 1.0 {
		t.Fatalf("WA factor = %v, want > 1", wa)
	}
	if fs.FreeZones() == 0 {
		t.Fatal("cleaner failed to keep free zones available")
	}
}

func TestCleanerPreservesData(t *testing.T) {
	// Write distinctive content, churn the rest of the file to force
	// cleaning, then verify the content survived block migration.
	fs := mountTest(t, true)
	size := alignBlocks(fs.UsableBytes() * 8 / 10)
	f, err := fs.Create("cache", size)
	if err != nil {
		t.Fatal(err)
	}
	blocks := size / BlockSize

	const keep = 4
	want := make([][]byte, keep)
	for i := range want {
		want[i] = bytes.Repeat([]byte{byte(0x10 + i)}, BlockSize)
		if _, err := f.WriteAt(0, want[i], BlockSize, int64(i)*BlockSize); err != nil {
			t.Fatal(err)
		}
	}
	rng := sim.NewRand(5)
	for i := int64(0); i < blocks*6; i++ {
		off := (keep + rng.Int63n(blocks-keep)) * BlockSize
		if _, err := f.WriteAt(0, nil, BlockSize, off); err != nil {
			t.Fatalf("churn write: %v", err)
		}
	}
	if fs.CleanRuns.Load() == 0 {
		t.Fatal("test vacuous: cleaner never ran")
	}
	got := make([]byte, BlockSize)
	for i := range want {
		if _, err := f.ReadAt(0, got, int64(i)*BlockSize); err != nil {
			t.Fatalf("read back %d: %v", i, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("block %d corrupted by cleaner", i)
		}
	}
}

func TestHigherOPReducesWA(t *testing.T) {
	run := func(op float64) float64 {
		fs, err := Mount(testDev(t, false), Config{OPRatio: op})
		if err != nil {
			t.Fatalf("Mount(op=%v): %v", op, err)
		}
		size := alignBlocks(fs.UsableBytes() * 9 / 10)
		f, err := fs.Create("cache", size)
		if err != nil {
			t.Fatal(err)
		}
		blocks := size / BlockSize
		rng := sim.NewRand(13)
		for i := int64(0); i < blocks*6; i++ {
			if _, err := f.WriteAt(0, nil, BlockSize, rng.Int63n(blocks)*BlockSize); err != nil {
				t.Fatalf("write: %v", err)
			}
		}
		return fs.WA.Factor()
	}
	low, high := run(0.15), run(0.40)
	if high >= low {
		t.Fatalf("WA(op=40%%)=%v not below WA(op=15%%)=%v", high, low)
	}
}

func TestCleaningStallsBounded(t *testing.T) {
	// The incremental cleaner spreads work: the common-case stall must be
	// far below draining a whole zone at once.
	fs, err := Mount(testDev(t, false), Config{OPRatio: 0.25, CleanQuantumBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	size := alignBlocks(fs.UsableBytes() * 8 / 10)
	f, _ := fs.Create("cache", size)
	blocks := size / BlockSize
	rng := sim.NewRand(17)
	now := time.Duration(0)
	for i := int64(0); i < blocks*5; i++ {
		lat, err := f.WriteAt(now, nil, BlockSize, rng.Int63n(blocks)*BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		now += lat
	}
	if fs.CleanStalls.Count() == 0 {
		t.Fatal("no cleaning stalls recorded; test vacuous")
	}
	tm := flash.DefaultTiming()
	wholeZone := time.Duration(16) * (tm.ReadPage + tm.ProgPage) // 16 blocks/zone worth
	if p50 := fs.CleanStalls.Percentile(0.5); p50 >= wholeZone {
		t.Fatalf("median clean stall %v not below whole-zone drain %v", p50, wholeZone)
	}
}

func TestWriteLatencyIncludesMetaCost(t *testing.T) {
	fs := mountTest(t, false)
	f, _ := fs.Create("f", 8*BlockSize)
	lat, err := f.WriteAt(0, nil, BlockSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lat < 2*time.Microsecond {
		t.Fatalf("latency %v below metadata cost", lat)
	}
}
