// Package sim provides the deterministic simulation substrate shared by all
// device models: a virtual clock measured in nanoseconds and a seedable
// pseudo-random number generator.
//
// The paper's evaluation runs on real hardware and reports wall-clock
// throughput and latency. This reproduction replaces wall-clock time with a
// virtual clock that device models advance explicitly, which makes every
// experiment deterministic and independent of the host machine.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is a virtual clock. Time only moves when a device model (or the
// harness) advances it. Clock is safe for concurrent use; Now is a single
// atomic load so lock-free read paths can consult the clock without
// serializing against writers that advance it.
type Clock struct {
	now atomic.Int64 // nanoseconds
}

// NewClock returns a clock positioned at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time since the start of the simulation.
func (c *Clock) Now() time.Duration {
	return time.Duration(c.now.Load())
}

// Advance moves the clock forward by d and returns the new time.
// Advancing by a negative duration panics: simulated time is monotonic.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative clock advance %v", d))
	}
	return time.Duration(c.now.Add(int64(d)))
}

// AdvanceTo moves the clock to t if t is later than the current time and
// returns the (possibly unchanged) current time. It models waiting for a
// busy resource: callers that must wait until a device is idle advance to
// the device's free time.
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return time.Duration(cur)
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return t
		}
	}
}

// Busy tracks the time at which a serially-shared resource (a flash channel,
// a disk arm) becomes free. It is the building block for modelling queueing
// delay without running an event loop: an operation that needs the resource
// at time t for duration d experiences waiting time max(0, free-t) and the
// resource's free time becomes start+d.
type Busy struct {
	mu   sync.Mutex
	free time.Duration
}

// Acquire reserves the resource at time now for duration d. It returns the
// total latency observed by the caller (queueing delay plus service time)
// and the completion time.
func (b *Busy) Acquire(now, d time.Duration) (latency, done time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	start := now
	if b.free > start {
		start = b.free
	}
	done = start + d
	b.free = done
	return done - now, done
}

// FreeAt returns the time at which the resource becomes idle.
func (b *Busy) FreeAt() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.free
}
