package sim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if got := c.Now(); got != 0 {
		t.Fatalf("new clock Now() = %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if got := c.Advance(5 * time.Millisecond); got != 5*time.Millisecond {
		t.Fatalf("Advance returned %v, want 5ms", got)
	}
	c.Advance(time.Microsecond)
	if got := c.Now(); got != 5*time.Millisecond+time.Microsecond {
		t.Fatalf("Now() = %v, want 5.001ms", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.Advance(10)
	if got := c.AdvanceTo(5); got != 10 {
		t.Fatalf("AdvanceTo(5) on clock at 10 = %v, want 10 (monotonic)", got)
	}
	if got := c.AdvanceTo(20); got != 20 {
		t.Fatalf("AdvanceTo(20) = %v, want 20", got)
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Advance(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != workers*per {
		t.Fatalf("concurrent advance total = %v, want %d", got, workers*per)
	}
}

func TestBusyIdleResource(t *testing.T) {
	var b Busy
	lat, done := b.Acquire(100, 10)
	if lat != 10 || done != 110 {
		t.Fatalf("idle Acquire = (%v, %v), want (10, 110)", lat, done)
	}
}

func TestBusyQueueingDelay(t *testing.T) {
	var b Busy
	b.Acquire(0, 100) // resource busy until 100
	lat, done := b.Acquire(30, 10)
	if lat != 80 || done != 110 {
		t.Fatalf("queued Acquire = (%v, %v), want (80, 110)", lat, done)
	}
	if b.FreeAt() != 110 {
		t.Fatalf("FreeAt = %v, want 110", b.FreeAt())
	}
}

func TestBusyAfterIdlePeriod(t *testing.T) {
	var b Busy
	b.Acquire(0, 10)
	// Arriving long after the resource went idle: no queueing delay.
	lat, done := b.Acquire(1000, 7)
	if lat != 7 || done != 1007 {
		t.Fatalf("Acquire after idle = (%v, %v), want (7, 1007)", lat, done)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestRandZeroSeedUsable(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero-seeded generator stuck at zero")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestRandIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		p := NewRand(seed).Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandBytesDeterministicAndFull(t *testing.T) {
	a := make([]byte, 37)
	b := make([]byte, 37)
	NewRand(9).Bytes(a)
	NewRand(9).Bytes(b)
	if string(a) != string(b) {
		t.Fatal("Bytes not deterministic for same seed")
	}
	zero := 0
	for _, v := range a {
		if v == 0 {
			zero++
		}
	}
	if zero == len(a) {
		t.Fatal("Bytes produced all zeros")
	}
}

func TestRandUniformity(t *testing.T) {
	// Coarse sanity check: buckets of Intn(10) within 20% of expectation.
	r := NewRand(7)
	const n = 100000
	var buckets [10]int
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, c := range buckets {
		if c < n/10*8/10 || c > n/10*12/10 {
			t.Fatalf("bucket %d has %d hits, expected ~%d", i, c, n/10)
		}
	}
}
