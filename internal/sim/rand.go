package sim

// Rand is a small, fast, deterministic PRNG (xorshift64*). The experiments
// must be reproducible bit-for-bit across runs and hosts, so the models
// avoid math/rand's global state and seed every stream explicitly.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bytes fills b with pseudo-random bytes.
func (r *Rand) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}
