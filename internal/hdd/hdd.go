// Package hdd models a mechanical disk: seek + rotational latency for
// random access, streaming transfer for sequential access, one arm.
//
// The paper backs RocksDB with a Seagate ST6000NM0115 (§4.2) precisely so
// that misses in the flash secondary cache are expensive; the throughput
// sensitivity to secondary-cache hit ratio (Table 2) follows from that
// gap. This model supplies the gap: ~a dozen milliseconds per random I/O
// versus microseconds for cached reads.
package hdd

import (
	"sync"
	"time"

	"znscache/internal/device"
	"znscache/internal/sim"
	"znscache/internal/stats"
)

// Config holds the mechanical parameters.
type Config struct {
	Capacity int64 // bytes
	// AvgSeek is the average arm move (default 8.5ms, 7200rpm class).
	AvgSeek time.Duration
	// RotationalLatency is the average half-rotation wait (default 4.16ms).
	RotationalLatency time.Duration
	// TransferRate is sustained media bandwidth in bytes/sec (default 180 MB/s).
	TransferRate int64
	// TrackSkipBytes: accesses within this distance of the previous one
	// count as sequential and skip seek+rotation (default 2 MiB).
	TrackSkipBytes int64
	// StoreData retains written payloads for read-back.
	StoreData bool
}

func (c *Config) fillDefaults() {
	if c.AvgSeek == 0 {
		c.AvgSeek = 8500 * time.Microsecond
	}
	if c.RotationalLatency == 0 {
		c.RotationalLatency = 4160 * time.Microsecond
	}
	if c.TransferRate == 0 {
		c.TransferRate = 180 << 20
	}
	if c.TrackSkipBytes == 0 {
		c.TrackSkipBytes = 2 << 20
	}
}

// Disk is a simulated HDD. Safe for concurrent use; the single arm is the
// serialization point, exactly as on real hardware.
type Disk struct {
	cfg Config

	mu   sync.Mutex
	arm  sim.Busy
	head int64            // byte position of the head after the last I/O
	data map[int64][]byte // sector -> payload, when StoreData

	Reads  stats.Counter
	Writes stats.Counter
	Seeks  stats.Counter
}

// New builds a disk.
func New(cfg Config) *Disk {
	cfg.fillDefaults()
	d := &Disk{cfg: cfg, head: -1 << 62}
	if cfg.StoreData {
		d.data = make(map[int64][]byte)
	}
	return d
}

// Size returns the capacity.
func (d *Disk) Size() int64 { return d.cfg.Capacity }

// serviceTime computes the latency of one access and updates head state.
// Caller holds mu.
func (d *Disk) serviceTime(off int64, n int) time.Duration {
	var t time.Duration
	dist := off - d.head
	if dist < 0 {
		dist = -dist
	}
	if dist > d.cfg.TrackSkipBytes {
		t += d.cfg.AvgSeek + d.cfg.RotationalLatency
		d.Seeks.Inc()
	}
	t += time.Duration(int64(n) * int64(time.Second) / d.cfg.TransferRate)
	d.head = off + int64(n)
	return t
}

// ReadAt implements device.BlockDevice.
func (d *Disk) ReadAt(now time.Duration, p []byte, off int64) (time.Duration, error) {
	if err := device.CheckRange(off, len(p), d.cfg.Capacity); err != nil {
		return 0, err
	}
	d.mu.Lock()
	svc := d.serviceTime(off, len(p))
	if d.data != nil {
		for i := 0; i < len(p)/device.SectorSize; i++ {
			dst := p[i*device.SectorSize : (i+1)*device.SectorSize]
			if src, ok := d.data[off/device.SectorSize+int64(i)]; ok {
				copy(dst, src)
			} else {
				for j := range dst {
					dst[j] = 0
				}
			}
		}
	}
	lat, _ := d.arm.Acquire(now, svc)
	d.mu.Unlock()
	d.Reads.Inc()
	return lat, nil
}

// WriteAt implements device.BlockDevice.
func (d *Disk) WriteAt(now time.Duration, data []byte, n int, off int64) (time.Duration, error) {
	if err := device.CheckRange(off, n, d.cfg.Capacity); err != nil {
		return 0, err
	}
	d.mu.Lock()
	svc := d.serviceTime(off, n)
	if d.data != nil && data != nil {
		for i := 0; i < n/device.SectorSize; i++ {
			buf := make([]byte, device.SectorSize)
			copy(buf, data[i*device.SectorSize:(i+1)*device.SectorSize])
			d.data[off/device.SectorSize+int64(i)] = buf
		}
	}
	lat, _ := d.arm.Acquire(now, svc)
	d.mu.Unlock()
	d.Writes.Inc()
	return lat, nil
}

// Discard implements device.BlockDevice; HDDs have no mapping to drop.
func (d *Disk) Discard(off, n int64) error {
	return device.CheckRange(off, int(n), d.cfg.Capacity)
}

var _ device.BlockDevice = (*Disk)(nil)
