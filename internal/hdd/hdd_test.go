package hdd

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"znscache/internal/device"
)

func newTestDisk() *Disk {
	return New(Config{Capacity: 1 << 30, StoreData: true})
}

func TestRoundTrip(t *testing.T) {
	d := newTestDisk()
	want := bytes.Repeat([]byte{0x42}, 2*device.SectorSize)
	if _, err := d.WriteAt(0, want, len(want), 8192); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(want))
	if _, err := d.ReadAt(0, got, 8192); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round-trip mismatch")
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	d := newTestDisk()
	got := bytes.Repeat([]byte{1}, device.SectorSize)
	d.ReadAt(0, got, 0)
	if !bytes.Equal(got, make([]byte, device.SectorSize)) {
		t.Fatal("unwritten sector not zero")
	}
}

func TestRangeChecks(t *testing.T) {
	d := newTestDisk()
	if _, err := d.ReadAt(0, make([]byte, device.SectorSize), d.Size()); !errors.Is(err, device.ErrOutOfRange) {
		t.Fatalf("oob read err = %v", err)
	}
	if _, err := d.WriteAt(0, nil, 100, 0); !errors.Is(err, device.ErrAlignment) {
		t.Fatalf("misaligned write err = %v", err)
	}
	if err := d.Discard(0, device.SectorSize); err != nil {
		t.Fatalf("Discard: %v", err)
	}
}

func TestRandomAccessCostsSeek(t *testing.T) {
	d := New(Config{Capacity: 1 << 30})
	lat1, _ := d.ReadAt(0, make([]byte, device.SectorSize), 0)
	// Far-away access after the first: must pay seek + rotation (~12.6ms).
	lat2, _ := d.ReadAt(lat1, make([]byte, device.SectorSize), 512<<20)
	if lat2 < 10*time.Millisecond {
		t.Fatalf("random read latency %v, want ≥10ms", lat2)
	}
	if d.Seeks.Load() != 2 {
		t.Fatalf("Seeks = %d, want 2", d.Seeks.Load())
	}
}

func TestSequentialAccessSkipsSeek(t *testing.T) {
	d := New(Config{Capacity: 1 << 30})
	now, _ := d.ReadAt(0, make([]byte, device.SectorSize), 0)
	lat, _ := d.ReadAt(now, make([]byte, device.SectorSize), device.SectorSize)
	if lat > time.Millisecond {
		t.Fatalf("sequential read latency %v, want sub-ms transfer only", lat)
	}
	if d.Seeks.Load() != 1 {
		t.Fatalf("Seeks = %d, want 1 (first access only)", d.Seeks.Load())
	}
}

func TestArmSerializes(t *testing.T) {
	// Two random I/Os issued at the same instant: the second queues behind
	// the first on the single arm.
	d := New(Config{Capacity: 1 << 30})
	lat1, _ := d.ReadAt(0, make([]byte, device.SectorSize), 0)
	lat2, _ := d.ReadAt(0, make([]byte, device.SectorSize), 600<<20)
	if lat2 <= lat1 {
		t.Fatalf("second concurrent read (%v) did not queue behind first (%v)", lat2, lat1)
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	d := New(Config{Capacity: 1 << 30})
	d.ReadAt(0, make([]byte, device.SectorSize), 0) // position the head
	small, _ := d.ReadAt(time.Second, make([]byte, device.SectorSize), device.SectorSize)
	big, _ := d.ReadAt(2*time.Second, make([]byte, 256*device.SectorSize), 2*device.SectorSize)
	if big <= small {
		t.Fatalf("1MiB transfer (%v) not slower than 4KiB (%v)", big, small)
	}
}
