package zns

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"znscache/internal/device"
	"znscache/internal/flash"
)

func testConfig() Config {
	return Config{
		Geometry: flash.Geometry{
			Channels: 2, DiesPerChan: 2, BlocksPerDie: 16,
			PagesPerBlock: 16, PageSize: device.SectorSize,
		},
		Timing:        flash.DefaultTiming(),
		BlocksPerZone: 4, // 16 zones of 256 KiB
		MaxOpenZones:  4,
		StoreData:     true,
	}
}

func newTestDev(t *testing.T) *Device {
	t.Helper()
	d, err := New(testConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.BlocksPerZone = 0
	if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero BlocksPerZone err = %v", err)
	}
	cfg = testConfig()
	cfg.BlocksPerZone = 7 // 64 blocks % 7 != 0
	if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("non-dividing BlocksPerZone err = %v", err)
	}
	cfg = testConfig()
	cfg.Geometry.PageSize = 512
	if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad page size err = %v", err)
	}
}

func TestGeometryExport(t *testing.T) {
	d := newTestDev(t)
	if d.NumZones() != 16 {
		t.Fatalf("NumZones = %d, want 16", d.NumZones())
	}
	if d.ZoneSize() != 4*16*device.SectorSize {
		t.Fatalf("ZoneSize = %d", d.ZoneSize())
	}
	// Full raw capacity exported: the ZNS capacity advantage.
	if d.Size() != testConfig().Geometry.TotalBytes() {
		t.Fatalf("Size = %d, want raw %d", d.Size(), testConfig().Geometry.TotalBytes())
	}
}

func TestSequentialWriteAndRead(t *testing.T) {
	d := newTestDev(t)
	want := bytes.Repeat([]byte{0xC3}, 3*device.SectorSize)
	if _, err := d.Write(0, want, len(want), 0); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(want))
	if _, err := d.Read(0, got, 0); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round-trip mismatch")
	}
	z, _ := d.ZoneInfo(0)
	if z.State != ZoneOpen || z.WP != int64(len(want)) {
		t.Fatalf("zone info = %+v, want OPEN wp=%d", z, len(want))
	}
}

func TestWriteNotAtWPRejected(t *testing.T) {
	d := newTestDev(t)
	if _, err := d.Write(0, nil, device.SectorSize, device.SectorSize); !errors.Is(err, ErrNotWritePointer) {
		t.Fatalf("gap write err = %v, want ErrNotWritePointer", err)
	}
	d.Write(0, nil, device.SectorSize, 0)
	// Rewriting sector 0 is also a WP violation — no in-place updates.
	if _, err := d.Write(0, nil, device.SectorSize, 0); !errors.Is(err, ErrNotWritePointer) {
		t.Fatalf("rewrite err = %v, want ErrNotWritePointer", err)
	}
}

func TestReadBeyondWPRejected(t *testing.T) {
	d := newTestDev(t)
	d.Write(0, nil, device.SectorSize, 0)
	buf := make([]byte, 2*device.SectorSize)
	if _, err := d.Read(0, buf, 0); !errors.Is(err, ErrReadBeyondWP) {
		t.Fatalf("read past wp err = %v, want ErrReadBeyondWP", err)
	}
}

func TestCrossZoneIORejected(t *testing.T) {
	d := newTestDev(t)
	zs := d.ZoneSize()
	// Fill zone 0 to its end, then try writing across the boundary.
	if _, err := d.Write(0, nil, int(zs), 0); err != nil {
		t.Fatalf("fill zone 0: %v", err)
	}
	buf := make([]byte, 2*device.SectorSize)
	if _, err := d.Read(0, buf, zs-device.SectorSize); !errors.Is(err, ErrCrossZone) {
		t.Fatalf("cross-zone read err = %v, want ErrCrossZone", err)
	}
}

func TestZoneFillTransitionsToFull(t *testing.T) {
	d := newTestDev(t)
	if _, err := d.Write(0, nil, int(d.ZoneSize()), 0); err != nil {
		t.Fatal(err)
	}
	z, _ := d.ZoneInfo(0)
	if z.State != ZoneFull {
		t.Fatalf("state = %v, want FULL", z.State)
	}
	if d.OpenZones() != 0 {
		t.Fatalf("OpenZones = %d, want 0 after fill", d.OpenZones())
	}
	if _, err := d.Write(0, nil, device.SectorSize, d.ZoneSize()-device.SectorSize); err == nil {
		t.Fatal("write into full zone succeeded")
	}
}

func TestOpenZoneCapEnforced(t *testing.T) {
	cfg := testConfig()
	// Leave slack in the active budget so this test isolates the open cap:
	// with budget == cap, closing a zone frees an open slot but not the
	// active slot a new empty zone needs (covered by the active-zone tests).
	cfg.MaxActiveZones = 6
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < 4; z++ {
		if _, err := d.Write(0, nil, device.SectorSize, int64(z)*d.ZoneSize()); err != nil {
			t.Fatalf("open zone %d: %v", z, err)
		}
	}
	if _, err := d.Write(0, nil, device.SectorSize, 4*d.ZoneSize()); !errors.Is(err, ErrTooManyOpen) {
		t.Fatalf("5th open err = %v, want ErrTooManyOpen", err)
	}
	// Closing one zone frees a slot.
	if err := d.Close(0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(0, nil, device.SectorSize, 4*d.ZoneSize()); err != nil {
		t.Fatalf("write after close: %v", err)
	}
	// Reopening the closed zone at its wp works (and re-consumes a slot)...
	if err := d.Close(4); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(0, nil, device.SectorSize, device.SectorSize); err != nil {
		t.Fatalf("reopen closed zone: %v", err)
	}
}

func TestMaxActiveBelowOpenRejected(t *testing.T) {
	cfg := testConfig()
	cfg.MaxActiveZones = 2 // below MaxOpenZones 4
	_, err := New(cfg)
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("MaxActiveZones < MaxOpenZones err = %v, want ErrBadConfig", err)
	}
}

func TestActiveZoneBudgetEnforced(t *testing.T) {
	d := newTestDev(t) // open cap 4, active budget defaults to 4
	if d.MaxActiveZones() != 4 {
		t.Fatalf("MaxActiveZones = %d, want defaulted 4", d.MaxActiveZones())
	}
	for z := 0; z < 4; z++ {
		if _, err := d.Write(0, nil, device.SectorSize, int64(z)*d.ZoneSize()); err != nil {
			t.Fatalf("open zone %d: %v", z, err)
		}
	}
	// Closing frees an open slot but not the active slot: a new empty zone
	// still cannot be opened.
	if err := d.Close(0); err != nil {
		t.Fatal(err)
	}
	if d.OpenZones() != 3 || d.ActiveZones() != 4 {
		t.Fatalf("open=%d active=%d after close, want 3/4", d.OpenZones(), d.ActiveZones())
	}
	if _, err := d.Write(0, nil, device.SectorSize, 4*d.ZoneSize()); !errors.Is(err, ErrTooManyActive) {
		t.Fatalf("open 5th with exhausted budget err = %v, want ErrTooManyActive", err)
	}
	// Finishing the closed zone returns its active slot.
	if _, err := d.Finish(0, 0); err != nil {
		t.Fatal(err)
	}
	if d.ActiveZones() != 3 {
		t.Fatalf("ActiveZones = %d after finish, want 3", d.ActiveZones())
	}
	if _, err := d.Write(0, nil, device.SectorSize, 4*d.ZoneSize()); err != nil {
		t.Fatalf("write after finish freed budget: %v", err)
	}
	// Reset frees it too.
	if _, err := d.Reset(0, 4); err != nil {
		t.Fatal(err)
	}
	if d.OpenZones() != 3 || d.ActiveZones() != 3 {
		t.Fatalf("open=%d active=%d after reset, want 3/3", d.OpenZones(), d.ActiveZones())
	}
}

func TestFullZoneHoldsNoActiveSlot(t *testing.T) {
	d := newTestDev(t)
	if _, err := d.Write(0, nil, int(d.ZoneSize()), 0); err != nil {
		t.Fatal(err)
	}
	if d.ActiveZones() != 0 {
		t.Fatalf("ActiveZones = %d after auto-full, want 0", d.ActiveZones())
	}
}

func TestResetReturnsZoneToEmpty(t *testing.T) {
	d := newTestDev(t)
	want := bytes.Repeat([]byte{7}, device.SectorSize)
	d.Write(0, want, len(want), 0)
	if _, err := d.Reset(0, 0); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	z, _ := d.ZoneInfo(0)
	if z.State != ZoneEmpty || z.WP != 0 || z.Resets != 1 {
		t.Fatalf("after reset: %+v", z)
	}
	if d.OpenZones() != 0 {
		t.Fatalf("OpenZones = %d after reset", d.OpenZones())
	}
	// The zone is writable from the start again, and old data is gone.
	fresh := bytes.Repeat([]byte{9}, device.SectorSize)
	if _, err := d.Write(0, fresh, len(fresh), 0); err != nil {
		t.Fatalf("write after reset: %v", err)
	}
	got := make([]byte, device.SectorSize)
	d.Read(0, got, 0)
	if !bytes.Equal(got, fresh) {
		t.Fatal("stale data visible after reset")
	}
}

func TestResetEmptyZoneIsCheap(t *testing.T) {
	d := newTestDev(t)
	lat, err := d.Reset(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 0 {
		t.Fatalf("resetting empty zone cost %v, want 0 (no erases)", lat)
	}
	if d.Array().TotalErases() != 0 {
		t.Fatal("empty reset erased blocks")
	}
}

func TestFinishMakesZoneFull(t *testing.T) {
	d := newTestDev(t)
	d.Write(0, nil, device.SectorSize, 0)
	if _, err := d.Finish(0, 0); err != nil {
		t.Fatal(err)
	}
	z, _ := d.ZoneInfo(0)
	if z.State != ZoneFull || z.WP != d.ZoneSize() {
		t.Fatalf("after finish: %+v", z)
	}
	if d.OpenZones() != 0 {
		t.Fatal("finish did not release open slot")
	}
	// The unwritten tail reads back as zeros.
	got := bytes.Repeat([]byte{0xFF}, device.SectorSize)
	if _, err := d.Read(0, got, d.ZoneSize()-device.SectorSize); err != nil {
		t.Fatalf("read of finished tail: %v", err)
	}
	if !bytes.Equal(got, make([]byte, device.SectorSize)) {
		t.Fatal("finished tail not zero-filled")
	}
}

func TestAppendReturnsOffsets(t *testing.T) {
	d := newTestDev(t)
	_, off1, err := d.Append(0, nil, device.SectorSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, off2, err := d.Append(0, nil, 2*device.SectorSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	if off1 != 2*d.ZoneSize() || off2 != off1+device.SectorSize {
		t.Fatalf("append offsets %d, %d", off1, off2)
	}
	if d.Appends.Load() != 2 {
		t.Fatalf("Appends = %d", d.Appends.Load())
	}
}

func TestAppendToBadZone(t *testing.T) {
	d := newTestDev(t)
	if _, _, err := d.Append(0, nil, device.SectorSize, 99); !errors.Is(err, ErrZoneRange) {
		t.Fatalf("append zone 99 err = %v", err)
	}
}

func TestZonesSnapshot(t *testing.T) {
	d := newTestDev(t)
	d.Write(0, nil, device.SectorSize, 0)
	zs := d.Zones()
	if len(zs) != 16 {
		t.Fatalf("Zones len = %d", len(zs))
	}
	if zs[0].State != ZoneOpen || zs[1].State != ZoneEmpty {
		t.Fatalf("snapshot states: %v, %v", zs[0].State, zs[1].State)
	}
	if zs[3].Start != 3*d.ZoneSize() {
		t.Fatalf("zone 3 start = %d", zs[3].Start)
	}
}

func TestHostWriteAccounting(t *testing.T) {
	d := newTestDev(t)
	d.Write(0, nil, 3*device.SectorSize, 0)
	if d.HostWrites.Load() != 3*device.SectorSize {
		t.Fatalf("HostWrites = %d", d.HostWrites.Load())
	}
	// Device-level WA of a ZNS drive is 1 by construction: flash programs
	// equal host sectors written.
	if d.Array().Programs.Load() != 3 {
		t.Fatalf("flash programs = %d, want 3", d.Array().Programs.Load())
	}
}

func TestLargeZoneWriteParallelism(t *testing.T) {
	// A full-zone write stripes over the zone's 4 blocks (4 dies): it must
	// beat fully-serial programming by at least 2x.
	d := newTestDev(t)
	tm := d.Array().Timing()
	sectors := int(d.ZoneSize() / device.SectorSize)
	lat, err := d.Write(0, nil, int(d.ZoneSize()), 0)
	if err != nil {
		t.Fatal(err)
	}
	serial := time.Duration(sectors) * (tm.ProgPage + tm.Transfer)
	if lat >= serial/2 {
		t.Fatalf("zone write %v, serial estimate %v: no parallelism", lat, serial)
	}
}

// Property: any sequence of (write at wp, reset) keeps the invariant
// wp ∈ [0, zoneSize] and state consistent with wp.
func TestZoneStateInvariant(t *testing.T) {
	if err := quick.Check(func(ops []uint8) bool {
		d, _ := New(testConfig())
		const z = 1
		for _, op := range ops {
			switch op % 3 {
			case 0, 1: // write one sector at wp
				zi, _ := d.ZoneInfo(z)
				if zi.State == ZoneFull {
					continue
				}
				if _, err := d.Write(0, nil, device.SectorSize, zi.Start+zi.WP); err != nil {
					return false
				}
			case 2:
				if _, err := d.Reset(0, z); err != nil {
					return false
				}
			}
			zi, _ := d.ZoneInfo(z)
			if zi.WP < 0 || zi.WP > d.ZoneSize() {
				return false
			}
			if zi.WP == 0 && zi.State != ZoneEmpty {
				return false
			}
			if zi.WP == d.ZoneSize() && zi.State != ZoneFull {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
