// Package zns simulates a Zoned Namespace SSD: the NAND array is exposed as
// zones that must be written sequentially at a per-zone write pointer, can
// be read randomly, and are reclaimed wholesale via reset.
//
// The device performs no internal garbage collection and hides almost no
// over-provisioning — the two properties the paper builds on: reclaim
// policy (and therefore write amplification) moves up to the application,
// and the same hardware exports more usable capacity than a regular SSD
// (§2.2: 7–28% more). The zone/flash mapping stripes each zone across the
// array's dies in chunks, so large sequential zone writes enjoy full
// parallelism while sub-chunk writes serialize on a single die.
//
// Beyond the written contract, the device models the zone-resource limits
// the ZNS characterization literature calls the unwritten contracts:
//
//   - An open-zone cap (ZN540: 14) bounds zones accepting writes.
//   - A distinct active-zone budget bounds zones holding device resources:
//     open zones plus closed-but-unfinished zones. Only finishing or
//     resetting a zone returns its active slot; exceeding the budget fails
//     with ErrTooManyActive.
//   - Opt-in ZRWA (zone random write area): a per-zone window ahead of the
//     write pointer that accepts random and overlapping writes, committed
//     to flash explicitly (CommitZRWA) or implicitly when writes land past
//     the window end.
package zns

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"znscache/internal/device"
	"znscache/internal/flash"
	"znscache/internal/obs"
	"znscache/internal/sim"
	"znscache/internal/stats"
)

// ZoneState is the condition of one zone, following the ZNS spec's state
// machine (reduced to the states the cache schemes exercise).
type ZoneState uint8

// Zone states.
const (
	ZoneEmpty ZoneState = iota
	ZoneOpen
	ZoneClosed
	ZoneFull
)

// String names the state for diagnostics and zonectl.
func (s ZoneState) String() string {
	switch s {
	case ZoneEmpty:
		return "EMPTY"
	case ZoneOpen:
		return "OPEN"
	case ZoneClosed:
		return "CLOSED"
	case ZoneFull:
		return "FULL"
	default:
		return fmt.Sprintf("ZoneState(%d)", uint8(s))
	}
}

// Errors returned by zone operations.
var (
	ErrBadConfig       = errors.New("zns: invalid configuration")
	ErrNotWritePointer = errors.New("zns: write not at the zone write pointer")
	ErrZoneFull        = errors.New("zns: zone is full")
	ErrReadBeyondWP    = errors.New("zns: read beyond write pointer")
	ErrTooManyOpen     = errors.New("zns: maximum open zones exceeded")
	ErrTooManyActive   = errors.New("zns: maximum active zones exceeded")
	ErrZoneRange       = errors.New("zns: zone index out of range")
	ErrCrossZone       = errors.New("zns: I/O crosses a zone boundary")
	ErrZRWADisabled    = errors.New("zns: ZRWA not enabled on this device")
)

// Config parameterizes the device.
type Config struct {
	Geometry flash.Geometry
	Timing   flash.Timing
	// BlocksPerZone sets the zone size (BlocksPerZone × block bytes). The
	// paper's ZN540 has 1077 MiB zones; small-zone devices (Samsung's
	// 96 MiB, §3.2) are modelled by shrinking this.
	BlocksPerZone int
	// MaxOpenZones caps concurrently writable zones (ZN540: 14).
	MaxOpenZones int
	// MaxActiveZones caps zones holding device resources: open zones plus
	// closed-but-unfinished zones. Zero defaults it to MaxOpenZones. Since
	// every open zone is active, a value below MaxOpenZones is rejected at
	// New with ErrBadConfig.
	MaxActiveZones int
	// ZoneStripeLanes caps the write parallelism available to any single
	// zone (default 4, clamped to BlocksPerZone). Real zoned drives expose
	// a per-zone write bandwidth well below the device aggregate; saturating
	// the device requires writing several zones concurrently. This is why
	// the paper's middle layer "supports concurrent writing of multiple
	// zones" (§3.3) and why one-zone-at-a-time Zone-Cache flushes lag.
	ZoneStripeLanes int
	// StripeChunkSectors is how many consecutive zone sectors map to one
	// flash block before the zone/flash mapping advances to the next block
	// (and therefore the next die). The model's pages are 4 KiB bandwidth
	// units, so the default chunk of 2 approximates one real multi-plane
	// NAND page worth of data per die. Zero picks the largest divisor of
	// PagesPerBlock at most 2; an explicit value must divide PagesPerBlock.
	StripeChunkSectors int
	// ZRWA enables a zone random write area: a window of ZRWABytes ahead of
	// each zone's write pointer that accepts random and overlapping writes.
	// Window contents live in device RAM until committed (explicitly via
	// CommitZRWA, or implicitly when a write lands beyond the window end),
	// so overwrites inside the window are absorbed without flash programs.
	ZRWA bool
	// ZRWABytes is the per-zone window size (sector multiple; default
	// 64 KiB, clamped to the zone size). Only meaningful with ZRWA set.
	ZRWABytes int64
	// StoreData retains payloads for read-back.
	StoreData bool
}

// Zone is a snapshot of one zone's state for introspection.
type Zone struct {
	Index int
	State ZoneState
	// Start is the device offset of the zone's first byte.
	Start int64
	// WP is the write pointer as an offset from Start.
	WP int64
	// Resets counts lifecycle cycles (wear proxy at zone granularity).
	Resets uint64
	// ZRWAWindow is the configured random-write window size in bytes; zero
	// when ZRWA is disabled.
	ZRWAWindow int64
	// ZRWAPending is the high-water mark of uncommitted window bytes: the
	// distance from WP to just past the highest buffered sector.
	ZRWAPending int64
}

// Zoned is the zone-op interface the upper layers (the F2FS model, the
// Zone-Cache store, and the Region-Cache middle layer) program against.
// *Device implements it directly; internal/fault wraps it to inject
// errors, latency spikes, torn writes, and crash points underneath every
// consumer without any of them knowing.
type Zoned interface {
	// NumZones returns the zone count.
	NumZones() int
	// ZoneSize returns the usable bytes per zone.
	ZoneSize() int64
	// Size returns total usable capacity in bytes.
	Size() int64
	// MaxOpenZones returns the open-zone cap.
	MaxOpenZones() int
	// OpenZones returns the number of zones currently open.
	OpenZones() int
	// MaxActiveZones returns the active-zone budget (open + closed).
	MaxActiveZones() int
	// ActiveZones returns the number of zones currently holding an active
	// slot (open or closed).
	ActiveZones() int
	// ZoneInfo returns a snapshot of zone z.
	ZoneInfo(z int) (Zone, error)
	// Write appends n bytes at offset off (must equal the zone's write
	// pointer, or fall inside the ZRWA window when enabled). data may be
	// nil for a metadata-only write.
	Write(now time.Duration, data []byte, n int, off int64) (time.Duration, error)
	// Append writes n bytes at zone z's write pointer, returning the
	// assigned device offset.
	Append(now time.Duration, data []byte, n int, z int) (time.Duration, int64, error)
	// Read reads len(p) bytes at off; must not cross the write pointer
	// (uncommitted ZRWA window sectors that were written are readable).
	Read(now time.Duration, p []byte, off int64) (time.Duration, error)
	// Reset erases zone z.
	Reset(now time.Duration, z int) (time.Duration, error)
	// Finish moves zone z's write pointer to the end (state full).
	Finish(now time.Duration, z int) (time.Duration, error)
	// Close transitions an open zone to closed.
	Close(z int) error
}

// ZRWACommitter is the optional interface of zoned devices with ZRWA
// support; *Device and the fault wrapper implement it.
type ZRWACommitter interface {
	// CommitZRWA makes the first upTo bytes of zone z durable: buffered
	// window sectors below upTo are programmed in order (holes as zeros)
	// and the write pointer advances to upTo (zone-relative, sector
	// aligned, at most one window past the current write pointer).
	CommitZRWA(now time.Duration, z int, upTo int64) (time.Duration, error)
}

// zrwaWin is one zone's random-write window, indexed relative to the
// zone's current write pointer. data is nil unless payloads are stored.
type zrwaWin struct {
	written []bool
	data    []byte
	high    int64 // 1 + highest written index; 0 when nothing buffered
}

// slide advances the window origin by shift sectors (after a commit).
func (w *zrwaWin) slide(shift int64) {
	if shift <= 0 {
		return
	}
	n := int64(len(w.written))
	if shift >= n {
		for i := range w.written {
			w.written[i] = false
		}
		w.high = 0
		return
	}
	copy(w.written, w.written[shift:])
	for i := n - shift; i < n; i++ {
		w.written[i] = false
	}
	if w.data != nil {
		copy(w.data, w.data[shift*device.SectorSize:])
	}
	w.high -= shift
	if w.high < 0 {
		w.high = 0
	}
}

// takeCommitted copies out the payloads of the first k window sectors; nil
// entries are holes or metadata-only sectors (programmed as zeros).
func (w *zrwaWin) takeCommitted(k int64) [][]byte {
	out := make([][]byte, k)
	if w == nil {
		return out
	}
	for i := int64(0); i < k && i < int64(len(w.written)); i++ {
		if !w.written[i] || w.data == nil {
			continue
		}
		buf := make([]byte, device.SectorSize)
		copy(buf, w.data[i*device.SectorSize:(i+1)*device.SectorSize])
		out[i] = buf
	}
	return out
}

// Device is a simulated ZNS SSD. Safe for concurrent use.
type Device struct {
	cfg      Config
	array    *flash.Array
	zoneSize int64
	numZones int
	stripe   flash.Stripe
	winSec   int64 // ZRWA window in sectors; 0 when disabled

	mu     sync.Mutex
	state  []ZoneState
	wp     []int64 // sectors written (committed), per zone
	reset  []uint64
	open   int
	active int
	zrwa   []*zrwaWin   // lazily allocated per open zone; nil when disabled
	lanes  [][]sim.Busy // per-zone write-bandwidth lanes

	// Observability. The device never writes on its own behalf (finishing a
	// partial zone fills the tail, but only when the caller asks), so its WA
	// factor is 1 in every normal-path run — asserted in tests, relied on by
	// Table 1.
	HostWrites stats.Counter // bytes
	Resets     stats.Counter
	Appends    stats.Counter
	Finishes   stats.Counter
	// FinishFill counts pages programmed to fill unwritten tails at finish —
	// the zone-finish cost of partially written zones.
	FinishFill stats.Counter
	// ZRWACommits counts explicit commits; ZRWAImplicit counts writes that
	// rolled the window forward; ZRWAAbsorbed counts sector overwrites the
	// window absorbed without a flash program.
	ZRWACommits  stats.Counter
	ZRWAImplicit stats.Counter
	ZRWAAbsorbed stats.Counter
	// Trace receives zone lifecycle events; nil disables tracing.
	Trace *obs.Tracer
}

// New builds the device with every zone empty.
func New(cfg Config) (*Device, error) {
	if cfg.Geometry.PageSize != device.SectorSize {
		return nil, fmt.Errorf("%w: flash page size %d must equal sector size %d",
			ErrBadConfig, cfg.Geometry.PageSize, device.SectorSize)
	}
	if cfg.BlocksPerZone <= 0 {
		return nil, fmt.Errorf("%w: BlocksPerZone must be positive", ErrBadConfig)
	}
	if cfg.Geometry.Blocks()%cfg.BlocksPerZone != 0 {
		return nil, fmt.Errorf("%w: %d blocks not divisible into zones of %d",
			ErrBadConfig, cfg.Geometry.Blocks(), cfg.BlocksPerZone)
	}
	if cfg.MaxOpenZones <= 0 {
		cfg.MaxOpenZones = 14 // ZN540 default
	}
	if cfg.MaxActiveZones == 0 {
		// Every open zone holds an active slot, so the open cap is the
		// natural floor for the active budget.
		cfg.MaxActiveZones = cfg.MaxOpenZones
	}
	if cfg.MaxActiveZones < cfg.MaxOpenZones {
		return nil, fmt.Errorf("%w: MaxActiveZones %d < MaxOpenZones %d "+
			"(open zones are active, so the active budget cannot be below the open cap)",
			ErrBadConfig, cfg.MaxActiveZones, cfg.MaxOpenZones)
	}
	if cfg.ZoneStripeLanes <= 0 {
		cfg.ZoneStripeLanes = 4
	}
	if cfg.ZoneStripeLanes > cfg.BlocksPerZone {
		cfg.ZoneStripeLanes = cfg.BlocksPerZone
	}
	ppb := cfg.Geometry.PagesPerBlock
	if cfg.StripeChunkSectors == 0 {
		c := 2
		if c > ppb {
			c = ppb
		}
		for ppb%c != 0 {
			c--
		}
		cfg.StripeChunkSectors = c
	}
	stripe := flash.Stripe{Blocks: cfg.BlocksPerZone, ChunkPages: cfg.StripeChunkSectors}
	if err := stripe.Validate(ppb); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	zoneSize := int64(cfg.BlocksPerZone) * cfg.Geometry.BlockBytes()
	var winSec int64
	if cfg.ZRWA {
		if cfg.ZRWABytes == 0 {
			cfg.ZRWABytes = 16 * device.SectorSize
		}
		if cfg.ZRWABytes < 0 || cfg.ZRWABytes%device.SectorSize != 0 {
			return nil, fmt.Errorf("%w: ZRWABytes %d must be a positive sector multiple",
				ErrBadConfig, cfg.ZRWABytes)
		}
		if cfg.ZRWABytes > zoneSize {
			cfg.ZRWABytes = zoneSize
		}
		winSec = cfg.ZRWABytes / device.SectorSize
	} else if cfg.ZRWABytes != 0 {
		return nil, fmt.Errorf("%w: ZRWABytes %d set without ZRWA", ErrBadConfig, cfg.ZRWABytes)
	}
	arr, err := flash.NewArray(cfg.Geometry, cfg.Timing, cfg.StoreData)
	if err != nil {
		return nil, err
	}
	n := cfg.Geometry.Blocks() / cfg.BlocksPerZone
	lanes := make([][]sim.Busy, n)
	for z := range lanes {
		lanes[z] = make([]sim.Busy, cfg.ZoneStripeLanes)
	}
	return &Device{
		cfg:      cfg,
		array:    arr,
		zoneSize: zoneSize,
		numZones: n,
		stripe:   stripe,
		winSec:   winSec,
		state:    make([]ZoneState, n),
		wp:       make([]int64, n),
		reset:    make([]uint64, n),
		zrwa:     make([]*zrwaWin, n),
		lanes:    lanes,
	}, nil
}

// NumZones returns the zone count.
func (d *Device) NumZones() int { return d.numZones }

// ZoneSize returns the usable bytes per zone.
func (d *Device) ZoneSize() int64 { return d.zoneSize }

// Size returns total usable capacity: every zone, no hidden OP.
func (d *Device) Size() int64 { return d.zoneSize * int64(d.numZones) }

// MaxOpenZones returns the open-zone cap.
func (d *Device) MaxOpenZones() int { return d.cfg.MaxOpenZones }

// MaxActiveZones returns the active-zone budget.
func (d *Device) MaxActiveZones() int { return d.cfg.MaxActiveZones }

// Array exposes the NAND for wear inspection.
func (d *Device) Array() *flash.Array { return d.array }

// ZoneInfo returns a snapshot of zone z.
func (d *Device) ZoneInfo(z int) (Zone, error) {
	if z < 0 || z >= d.numZones {
		return Zone{}, fmt.Errorf("%w: %d", ErrZoneRange, z)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	info := Zone{
		Index:  z,
		State:  d.state[z],
		Start:  int64(z) * d.zoneSize,
		WP:     d.wp[z] * device.SectorSize,
		Resets: d.reset[z],
	}
	if d.cfg.ZRWA {
		info.ZRWAWindow = d.cfg.ZRWABytes
		if w := d.zrwa[z]; w != nil {
			info.ZRWAPending = w.high * device.SectorSize
		}
	}
	return info, nil
}

// Zones returns snapshots of all zones.
func (d *Device) Zones() []Zone {
	out := make([]Zone, d.numZones)
	for z := range out {
		out[z], _ = d.ZoneInfo(z)
	}
	return out
}

// OpenZones returns the number of zones currently open.
func (d *Device) OpenZones() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.open
}

// ActiveZones returns the number of zones holding an active slot.
func (d *Device) ActiveZones() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.active
}

// zoneOf maps a device offset to its zone.
func (d *Device) zoneOf(off int64) int { return int(off / d.zoneSize) }

// addrFor maps (zone, sector-within-zone) to a flash page via the chunked
// stripe: StripeChunkSectors consecutive sectors share a block (one die);
// longer runs spread across the zone's blocks, which interleave across
// dies, so sequential zone writes parallelize like FTL-striped writes do.
func (d *Device) addrFor(z int, sector int64) flash.Addr {
	return d.stripe.Addr(z*d.cfg.BlocksPerZone, sector)
}

// programRange programs count sectors of zone z starting at startSector.
// payloads[i] is the content of sector startSector+i; a nil slice (or a nil
// payloads when every sector is metadata-only) programs a zero page. Called
// outside the device lock — the flash array does its own locking and the
// range was reserved by the caller.
func (d *Device) programRange(now time.Duration, z int, startSector, count int64, payloads [][]byte) (time.Duration, error) {
	latest := now
	tm := d.array.Timing()
	nlanes := int64(len(d.lanes[z]))
	for i := int64(0); i < count; i++ {
		var page []byte
		if payloads != nil {
			page = payloads[i]
		}
		sector := startSector + i
		// Per-zone bandwidth cap: each sector occupies one of the zone's
		// stripe lanes for a program slot, independent of physical die
		// availability. The observed completion is the later of the two.
		lane := &d.lanes[z][sector%nlanes]
		_, laneDone := lane.Acquire(now, tm.ProgPage+tm.Transfer)
		done, err := d.array.Program(now, d.addrFor(z, sector), page)
		if err != nil {
			return 0, fmt.Errorf("zns: program: %w", err)
		}
		if laneDone > done {
			done = laneDone
		}
		if done > latest {
			latest = done
		}
	}
	return latest, nil
}

// Write appends n bytes at offset off, which must equal the target zone's
// write pointer — or, with ZRWA enabled, fall anywhere inside the window
// [wp, wp+ZRWABytes). data may be nil for a metadata-only write. Implicitly
// opens an empty/closed zone, honouring the open-zone cap and active-zone
// budget; a write that fills the zone transitions it to full and releases
// both slots.
//
// With ZRWA, sectors are buffered in the window and only programmed when
// committed; a write extending past the window end implicitly commits
// everything below (end − ZRWABytes), holes included.
func (d *Device) Write(now time.Duration, data []byte, n int, off int64) (time.Duration, error) {
	if err := device.CheckRange(off, n, d.Size()); err != nil {
		return 0, err
	}
	if data != nil && len(data) != n {
		return 0, fmt.Errorf("zns: data length %d != n %d", len(data), n)
	}
	if n == 0 {
		return 0, nil
	}
	z := d.zoneOf(off)
	if d.zoneOf(off+int64(n)-1) != z {
		return 0, fmt.Errorf("%w: [%d,+%d)", ErrCrossZone, off, n)
	}

	d.mu.Lock()
	zStart := int64(z) * d.zoneSize
	wp := d.wp[z]
	a := (off - zStart) / device.SectorSize
	b := a + int64(n)/device.SectorSize
	if d.state[z] == ZoneFull {
		d.mu.Unlock()
		return 0, fmt.Errorf("%w: zone %d", ErrZoneFull, z)
	}
	if a < wp || a > wp+d.winSec {
		wpOff := zStart + wp*device.SectorSize
		d.mu.Unlock()
		if d.winSec > 0 {
			return 0, fmt.Errorf("%w: zone %d zrwa=[%d,%d) got=%d",
				ErrNotWritePointer, z, wpOff, wpOff+d.cfg.ZRWABytes, off)
		}
		return 0, fmt.Errorf("%w: zone %d wp=%d got=%d", ErrNotWritePointer, z, wpOff, off)
	}
	if err := d.implicitOpenLocked(z); err != nil {
		d.mu.Unlock()
		return 0, err
	}

	// Everything the window can no longer hold commits now; with ZRWA off
	// (winSec 0) that is the whole write, the strict sequential path.
	newWP := b - d.winSec
	if newWP < wp {
		newWP = wp
	}
	// Buffered payloads committed ahead of the incoming data (sectors below
	// a); the incoming part [a, newWP) is sliced straight from data in the
	// program loop, keeping the strict path allocation-free.
	var fromWin [][]byte
	w := d.zrwa[z]
	bufLow := newWP
	if bufLow > a {
		bufLow = a
	}
	if bufLow > wp {
		fromWin = w.takeCommitted(bufLow - wp)
	}
	if d.winSec > 0 && newWP > wp {
		d.ZRWAImplicit.Inc()
	}
	if d.winSec > 0 {
		if w == nil {
			w = &zrwaWin{written: make([]bool, d.winSec)}
			if d.cfg.StoreData {
				w.data = make([]byte, d.winSec*device.SectorSize)
			}
			d.zrwa[z] = w
		}
		w.slide(newWP - wp)
		// Buffer the uncommitted tail of the write.
		for s := a; s < b; s++ {
			if s < newWP {
				continue
			}
			idx := s - newWP
			if w.written[idx] {
				d.ZRWAAbsorbed.Inc()
			} else {
				w.written[idx] = true
			}
			if w.data != nil {
				dst := w.data[idx*device.SectorSize : (idx+1)*device.SectorSize]
				if data != nil {
					copy(dst, data[(s-a)*device.SectorSize:(s-a+1)*device.SectorSize])
				} else {
					for i := range dst {
						dst[i] = 0
					}
				}
			}
			if idx+1 > w.high {
				w.high = idx + 1
			}
		}
	}
	d.wp[z] = newWP
	if newWP*device.SectorSize == d.zoneSize {
		d.releaseLocked(z)
		d.state[z] = ZoneFull
		d.zrwa[z] = nil
	}
	d.mu.Unlock()

	latest := now
	tm := d.array.Timing()
	// Commit the buffered prefix, then the committed part of the incoming
	// data.
	if len(fromWin) > 0 {
		done, err := d.programRange(now, z, wp, int64(len(fromWin)), fromWin)
		if err != nil {
			return 0, err
		}
		if done > latest {
			latest = done
		}
	}
	if newWP > a {
		var payloads [][]byte
		if data != nil {
			payloads = make([][]byte, 0, newWP-a)
			for s := a; s < newWP; s++ {
				payloads = append(payloads, data[(s-a)*device.SectorSize:(s-a+1)*device.SectorSize])
			}
		}
		done, err := d.programRange(now, z, a, newWP-a, payloads)
		if err != nil {
			return 0, err
		}
		if done > latest {
			latest = done
		}
	}
	// Buffered sectors only cross the bus into device RAM.
	if buffered := b - newWP; buffered > 0 {
		if t := now + time.Duration(buffered)*tm.Transfer; t > latest {
			latest = t
		}
	}
	d.HostWrites.Add(uint64(n))
	return latest - now, nil
}

// Append writes n bytes at zone z's current write pointer, returning the
// assigned device offset — the zone-append primitive that lets multiple
// writers share a zone without coordinating on the write pointer.
func (d *Device) Append(now time.Duration, data []byte, n int, z int) (time.Duration, int64, error) {
	if z < 0 || z >= d.numZones {
		return 0, 0, fmt.Errorf("%w: %d", ErrZoneRange, z)
	}
	d.mu.Lock()
	off := int64(z)*d.zoneSize + d.wp[z]*device.SectorSize
	d.mu.Unlock()
	lat, err := d.Write(now, data, n, off)
	if err != nil {
		return 0, 0, err
	}
	d.Appends.Inc()
	return lat, off, nil
}

// CommitZRWA implements ZRWACommitter. Committing at or behind the write
// pointer is a no-op; committing past the window end (or the zone end) is
// rejected. A commit that reaches the zone end transitions it to full.
func (d *Device) CommitZRWA(now time.Duration, z int, upTo int64) (time.Duration, error) {
	if z < 0 || z >= d.numZones {
		return 0, fmt.Errorf("%w: %d", ErrZoneRange, z)
	}
	if !d.cfg.ZRWA {
		return 0, fmt.Errorf("%w: zone %d", ErrZRWADisabled, z)
	}
	if upTo < 0 || upTo > d.zoneSize {
		return 0, fmt.Errorf("zns: commit offset %d outside zone: %w", upTo, device.ErrOutOfRange)
	}
	if upTo%device.SectorSize != 0 {
		return 0, fmt.Errorf("zns: commit offset %d: %w", upTo, device.ErrAlignment)
	}
	d.mu.Lock()
	target := upTo / device.SectorSize
	wp := d.wp[z]
	if target <= wp {
		d.mu.Unlock()
		return 0, nil
	}
	spz := d.zoneSize / device.SectorSize
	limit := wp + d.winSec
	if limit > spz {
		limit = spz
	}
	if target > limit {
		d.mu.Unlock()
		return 0, fmt.Errorf("%w: zone %d commit to %d beyond window end %d",
			ErrNotWritePointer, z, upTo, limit*device.SectorSize)
	}
	if err := d.implicitOpenLocked(z); err != nil {
		d.mu.Unlock()
		return 0, err
	}
	w := d.zrwa[z]
	payloads := w.takeCommitted(target - wp)
	if w != nil {
		w.slide(target - wp)
	}
	d.wp[z] = target
	if target == spz {
		d.releaseLocked(z)
		d.state[z] = ZoneFull
		d.zrwa[z] = nil
	}
	d.mu.Unlock()

	latest, err := d.programRange(now, z, wp, target-wp, payloads)
	if err != nil {
		return 0, err
	}
	d.ZRWACommits.Inc()
	return latest - now, nil
}

// implicitOpenLocked transitions empty/closed → open, enforcing the open
// cap and (for empty zones, which must acquire an active slot) the active
// budget.
func (d *Device) implicitOpenLocked(z int) error {
	switch d.state[z] {
	case ZoneOpen:
		return nil
	case ZoneClosed:
		// Already active: reopening only needs an open slot.
		if d.open >= d.cfg.MaxOpenZones {
			return fmt.Errorf("%w: cap %d", ErrTooManyOpen, d.cfg.MaxOpenZones)
		}
		d.state[z] = ZoneOpen
		d.open++
		return nil
	case ZoneEmpty:
		if d.open >= d.cfg.MaxOpenZones {
			return fmt.Errorf("%w: cap %d", ErrTooManyOpen, d.cfg.MaxOpenZones)
		}
		if d.active >= d.cfg.MaxActiveZones {
			return fmt.Errorf("%w: budget %d", ErrTooManyActive, d.cfg.MaxActiveZones)
		}
		d.state[z] = ZoneOpen
		d.open++
		d.active++
		return nil
	case ZoneFull:
		return fmt.Errorf("%w: zone %d", ErrZoneFull, z)
	}
	return fmt.Errorf("zns: zone %d in unexpected state %v", z, d.state[z])
}

// releaseLocked returns zone z's open/active slots ahead of a transition to
// full or empty.
func (d *Device) releaseLocked(z int) {
	switch d.state[z] {
	case ZoneOpen:
		d.open--
		d.active--
	case ZoneClosed:
		d.active--
	}
}

// Read reads len(p) bytes at off. Reads are random-access but must not
// cross the write pointer — except for ZRWA window sectors that have been
// written, which are served from the (uncommitted) window buffer.
func (d *Device) Read(now time.Duration, p []byte, off int64) (time.Duration, error) {
	n := len(p)
	if err := device.CheckRange(off, n, d.Size()); err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	z := d.zoneOf(off)
	if d.zoneOf(off+int64(n)-1) != z {
		return 0, fmt.Errorf("%w: [%d,+%d)", ErrCrossZone, off, n)
	}
	zStart := int64(z) * d.zoneSize
	aSec := (off - zStart) / device.SectorSize
	bSec := aSec + int64(n)/device.SectorSize

	d.mu.Lock()
	wp := d.wp[z]
	var buffered int64
	if bSec > wp {
		w := d.zrwa[z]
		lo := aSec
		if lo < wp {
			lo = wp
		}
		for s := lo; s < bSec; s++ {
			if w == nil || s-wp >= int64(len(w.written)) || !w.written[s-wp] {
				d.mu.Unlock()
				return 0, fmt.Errorf("%w: zone %d wp=%d read end=%d",
					ErrReadBeyondWP, z, zStart+wp*device.SectorSize, off+int64(n))
			}
		}
		for s := lo; s < bSec; s++ {
			dst := p[(s-aSec)*device.SectorSize : (s-aSec+1)*device.SectorSize]
			if w.data != nil {
				copy(dst, w.data[(s-wp)*device.SectorSize:(s-wp+1)*device.SectorSize])
			} else {
				for i := range dst {
					dst[i] = 0
				}
			}
		}
		buffered = bSec - lo
	}
	d.mu.Unlock()

	flashEnd := bSec
	if flashEnd > wp {
		flashEnd = wp
	}
	latest := now
	for s := aSec; s < flashEnd; s++ {
		done, page, err := d.array.Read(now, d.addrFor(z, s))
		if err != nil {
			return 0, fmt.Errorf("zns: read: %w", err)
		}
		copy(p[(s-aSec)*device.SectorSize:(s-aSec+1)*device.SectorSize], page)
		if done > latest {
			latest = done
		}
	}
	// Window sectors come out of device RAM: bus transfer only.
	if buffered > 0 {
		if t := now + time.Duration(buffered)*d.array.Timing().Transfer; t > latest {
			latest = t
		}
	}
	return latest - now, nil
}

// Reset erases zone z, returning it to empty with the write pointer at the
// zone start and releasing any open/active slot it held. This is the
// application-controlled reclaim primitive: Zone-Cache resets a zone per
// region eviction; the Region-Cache middle layer resets after migrating
// live regions out.
func (d *Device) Reset(now time.Duration, z int) (time.Duration, error) {
	if z < 0 || z >= d.numZones {
		return 0, fmt.Errorf("%w: %d", ErrZoneRange, z)
	}
	d.mu.Lock()
	d.releaseLocked(z)
	wasWritten := d.wp[z] * device.SectorSize
	d.state[z] = ZoneEmpty
	d.wp[z] = 0
	d.zrwa[z] = nil
	d.reset[z]++
	d.mu.Unlock()
	if d.Trace != nil {
		d.Trace.Emit(obs.Event{T: now, Type: obs.EvZoneReset, Zone: int32(z), Region: -1, Bytes: wasWritten})
	}

	// Erase the zone's blocks; they sit on different dies and proceed in
	// parallel, so the reset cost is ~one block-erase of queueing.
	var latest time.Duration = now
	for b := 0; b < d.cfg.BlocksPerZone; b++ {
		blk := z*d.cfg.BlocksPerZone + b
		if d.array.WriteFront(blk) == 0 {
			continue // never programmed since last erase
		}
		done, err := d.array.Erase(now, blk)
		if err != nil {
			return 0, fmt.Errorf("zns: reset erase: %w", err)
		}
		if done > latest {
			latest = done
		}
	}
	d.Resets.Inc()
	return latest - now, nil
}

// Finish moves zone z's write pointer to the end, transitioning it to full
// and releasing its open/active slots. Buffered ZRWA sectors are persisted;
// the unwritten tail is filled with zero pages at real program cost — the
// zone-finish penalty that makes finishing a barely written zone expensive
// on real drives. Finishing an already full zone is free.
func (d *Device) Finish(now time.Duration, z int) (time.Duration, error) {
	if z < 0 || z >= d.numZones {
		return 0, fmt.Errorf("%w: %d", ErrZoneRange, z)
	}
	d.mu.Lock()
	if d.state[z] == ZoneFull {
		d.Finishes.Inc()
		d.mu.Unlock()
		return 0, nil
	}
	start := d.wp[z]
	spz := d.zoneSize / device.SectorSize
	fill := spz - start
	var payloads [][]byte
	if w := d.zrwa[z]; w != nil && w.high > 0 {
		payloads = w.takeCommitted(fill)
	}
	d.releaseLocked(z)
	d.wp[z] = spz
	d.state[z] = ZoneFull
	d.zrwa[z] = nil
	d.Finishes.Inc()
	d.mu.Unlock()

	latest := now
	if fill > 0 {
		done, err := d.programRange(now, z, start, fill, payloads)
		if err != nil {
			return 0, fmt.Errorf("zns: finish fill: %w", err)
		}
		latest = done
		d.FinishFill.Add(uint64(fill))
	}
	if d.Trace != nil {
		d.Trace.Emit(obs.Event{T: now, Type: obs.EvZoneFinish, Zone: int32(z), Region: -1})
	}
	return latest - now, nil
}

// MetricsInto implements obs.MetricSource: aggregate device counters plus a
// per-zone state/write-pointer/reset-count gauge set, which is what zonectl's
// watch mode and the Prometheus exposition render as the zone map. The
// per-zone closures read through ZoneInfo and are scrape-safe mid-run.
func (d *Device) MetricsInto(r *obs.Registry, labels obs.Labels) {
	ls := labels.With("layer", "zns")
	r.Counter("zns_host_write_bytes_total", "Bytes written by the host to the ZNS device", ls, &d.HostWrites)
	r.Counter("zns_zone_resets_total", "Zone reset commands executed", ls, &d.Resets)
	r.Counter("zns_zone_appends_total", "Zone append commands executed", ls, &d.Appends)
	r.Counter("zns_zone_finishes_total", "Zone finish commands executed", ls, &d.Finishes)
	r.Counter("zns_finish_fill_pages_total", "Pages programmed to fill unwritten tails at zone finish", ls, &d.FinishFill)
	r.Counter("zns_zrwa_commits_total", "Explicit ZRWA commits", ls, &d.ZRWACommits)
	r.Counter("zns_zrwa_implicit_commits_total", "Writes that implicitly rolled the ZRWA window", ls, &d.ZRWAImplicit)
	r.Counter("zns_zrwa_absorbed_writes_total", "Sector overwrites absorbed by the ZRWA window", ls, &d.ZRWAAbsorbed)
	r.Gauge("zns_open_zones", "Zones currently in the open state", ls, func() float64 {
		return float64(d.OpenZones())
	})
	r.Gauge("zns_active_zones", "Zones currently holding an active slot (open + closed)", ls, func() float64 {
		return float64(d.ActiveZones())
	})
	r.Gauge("zns_zones", "Total zones exposed by the device", ls, func() float64 {
		return float64(d.numZones)
	})
	for z := 0; z < d.numZones; z++ {
		z := z
		zl := ls.With("zone", strconv.Itoa(z))
		r.Gauge("zns_zone_state", "Zone state (0=empty 1=open 2=closed 3=full)", zl, func() float64 {
			info, _ := d.ZoneInfo(z)
			return float64(info.State)
		})
		r.Gauge("zns_zone_wp_bytes", "Zone write pointer as bytes from zone start", zl, func() float64 {
			info, _ := d.ZoneInfo(z)
			return float64(info.WP)
		})
		r.Gauge("zns_zone_reset_count", "Lifecycle resets of this zone (wear proxy)", zl, func() float64 {
			info, _ := d.ZoneInfo(z)
			return float64(info.Resets)
		})
	}
}

var (
	_ Zoned         = (*Device)(nil)
	_ ZRWACommitter = (*Device)(nil)
)

// Close transitions an open zone to closed, releasing its open slot while
// preserving the write pointer and its active slot (a closed zone still
// holds zone resources — only finish or reset frees the active budget).
func (d *Device) Close(z int) error {
	if z < 0 || z >= d.numZones {
		return fmt.Errorf("%w: %d", ErrZoneRange, z)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state[z] == ZoneOpen {
		d.state[z] = ZoneClosed
		d.open--
	}
	return nil
}
