// Package zns simulates a Zoned Namespace SSD: the NAND array is exposed as
// zones that must be written sequentially at a per-zone write pointer, can
// be read randomly, and are reclaimed wholesale via reset.
//
// The device performs no internal garbage collection and hides almost no
// over-provisioning — the two properties the paper builds on: reclaim
// policy (and therefore write amplification) moves up to the application,
// and the same hardware exports more usable capacity than a regular SSD
// (§2.2: 7–28% more). The zone/flash mapping stripes each zone across the
// array's dies, so large sequential zone writes enjoy full parallelism.
package zns

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"znscache/internal/device"
	"znscache/internal/flash"
	"znscache/internal/obs"
	"znscache/internal/sim"
	"znscache/internal/stats"
)

// ZoneState is the condition of one zone, following the ZNS spec's state
// machine (reduced to the states the cache schemes exercise).
type ZoneState uint8

// Zone states.
const (
	ZoneEmpty ZoneState = iota
	ZoneOpen
	ZoneClosed
	ZoneFull
)

// String names the state for diagnostics and zonectl.
func (s ZoneState) String() string {
	switch s {
	case ZoneEmpty:
		return "EMPTY"
	case ZoneOpen:
		return "OPEN"
	case ZoneClosed:
		return "CLOSED"
	case ZoneFull:
		return "FULL"
	default:
		return fmt.Sprintf("ZoneState(%d)", uint8(s))
	}
}

// Errors returned by zone operations.
var (
	ErrBadConfig       = errors.New("zns: invalid configuration")
	ErrNotWritePointer = errors.New("zns: write not at the zone write pointer")
	ErrZoneFull        = errors.New("zns: zone is full")
	ErrReadBeyondWP    = errors.New("zns: read beyond write pointer")
	ErrTooManyOpen     = errors.New("zns: maximum open zones exceeded")
	ErrZoneRange       = errors.New("zns: zone index out of range")
	ErrCrossZone       = errors.New("zns: I/O crosses a zone boundary")
)

// Config parameterizes the device.
type Config struct {
	Geometry flash.Geometry
	Timing   flash.Timing
	// BlocksPerZone sets the zone size (BlocksPerZone × block bytes). The
	// paper's ZN540 has 1077 MiB zones; small-zone devices (Samsung's
	// 96 MiB, §3.2) are modelled by shrinking this.
	BlocksPerZone int
	// MaxOpenZones caps concurrently writable zones (ZN540: 14).
	MaxOpenZones int
	// ZoneStripeLanes caps the write parallelism available to any single
	// zone (default 4, clamped to BlocksPerZone). Real zoned drives expose
	// a per-zone write bandwidth well below the device aggregate; saturating
	// the device requires writing several zones concurrently. This is why
	// the paper's middle layer "supports concurrent writing of multiple
	// zones" (§3.3) and why one-zone-at-a-time Zone-Cache flushes lag.
	ZoneStripeLanes int
	// StoreData retains payloads for read-back.
	StoreData bool
}

// Zone is a snapshot of one zone's state for introspection.
type Zone struct {
	Index int
	State ZoneState
	// Start is the device offset of the zone's first byte.
	Start int64
	// WP is the write pointer as an offset from Start.
	WP int64
	// Resets counts lifecycle cycles (wear proxy at zone granularity).
	Resets uint64
}

// Zoned is the zone-op interface the upper layers (the F2FS model, the
// Zone-Cache store, and the Region-Cache middle layer) program against.
// *Device implements it directly; internal/fault wraps it to inject
// errors, latency spikes, torn writes, and crash points underneath every
// consumer without any of them knowing.
type Zoned interface {
	// NumZones returns the zone count.
	NumZones() int
	// ZoneSize returns the usable bytes per zone.
	ZoneSize() int64
	// Size returns total usable capacity in bytes.
	Size() int64
	// MaxOpenZones returns the open-zone cap.
	MaxOpenZones() int
	// OpenZones returns the number of zones currently open.
	OpenZones() int
	// ZoneInfo returns a snapshot of zone z.
	ZoneInfo(z int) (Zone, error)
	// Write appends n bytes at offset off (must equal the zone's write
	// pointer). data may be nil for a metadata-only write.
	Write(now time.Duration, data []byte, n int, off int64) (time.Duration, error)
	// Append writes n bytes at zone z's write pointer, returning the
	// assigned device offset.
	Append(now time.Duration, data []byte, n int, z int) (time.Duration, int64, error)
	// Read reads len(p) bytes at off; must not cross the write pointer.
	Read(now time.Duration, p []byte, off int64) (time.Duration, error)
	// Reset erases zone z.
	Reset(now time.Duration, z int) (time.Duration, error)
	// Finish moves zone z's write pointer to the end (state full).
	Finish(now time.Duration, z int) (time.Duration, error)
	// Close transitions an open zone to closed.
	Close(z int) error
}

// Device is a simulated ZNS SSD. Safe for concurrent use.
type Device struct {
	cfg      Config
	array    *flash.Array
	zoneSize int64
	numZones int

	mu    sync.Mutex
	state []ZoneState
	wp    []int64 // sectors written, per zone
	reset []uint64
	open  int
	lanes [][]sim.Busy // per-zone write-bandwidth lanes

	// Observability. The device never writes on its own behalf, so its WA
	// factor is identically 1 — asserted in tests, relied on by Table 1.
	HostWrites stats.Counter // bytes
	Resets     stats.Counter
	Appends    stats.Counter
	Finishes   stats.Counter
	// Trace receives zone lifecycle events; nil disables tracing.
	Trace *obs.Tracer
}

// New builds the device with every zone empty.
func New(cfg Config) (*Device, error) {
	if cfg.Geometry.PageSize != device.SectorSize {
		return nil, fmt.Errorf("%w: flash page size %d must equal sector size %d",
			ErrBadConfig, cfg.Geometry.PageSize, device.SectorSize)
	}
	if cfg.BlocksPerZone <= 0 {
		return nil, fmt.Errorf("%w: BlocksPerZone must be positive", ErrBadConfig)
	}
	if cfg.Geometry.Blocks()%cfg.BlocksPerZone != 0 {
		return nil, fmt.Errorf("%w: %d blocks not divisible into zones of %d",
			ErrBadConfig, cfg.Geometry.Blocks(), cfg.BlocksPerZone)
	}
	if cfg.MaxOpenZones <= 0 {
		cfg.MaxOpenZones = 14 // ZN540 default
	}
	if cfg.ZoneStripeLanes <= 0 {
		cfg.ZoneStripeLanes = 4
	}
	if cfg.ZoneStripeLanes > cfg.BlocksPerZone {
		cfg.ZoneStripeLanes = cfg.BlocksPerZone
	}
	arr, err := flash.NewArray(cfg.Geometry, cfg.Timing, cfg.StoreData)
	if err != nil {
		return nil, err
	}
	n := cfg.Geometry.Blocks() / cfg.BlocksPerZone
	lanes := make([][]sim.Busy, n)
	for z := range lanes {
		lanes[z] = make([]sim.Busy, cfg.ZoneStripeLanes)
	}
	return &Device{
		cfg:      cfg,
		array:    arr,
		zoneSize: int64(cfg.BlocksPerZone) * cfg.Geometry.BlockBytes(),
		numZones: n,
		state:    make([]ZoneState, n),
		wp:       make([]int64, n),
		reset:    make([]uint64, n),
		lanes:    lanes,
	}, nil
}

// NumZones returns the zone count.
func (d *Device) NumZones() int { return d.numZones }

// ZoneSize returns the usable bytes per zone.
func (d *Device) ZoneSize() int64 { return d.zoneSize }

// Size returns total usable capacity: every zone, no hidden OP.
func (d *Device) Size() int64 { return d.zoneSize * int64(d.numZones) }

// MaxOpenZones returns the open-zone cap.
func (d *Device) MaxOpenZones() int { return d.cfg.MaxOpenZones }

// Array exposes the NAND for wear inspection.
func (d *Device) Array() *flash.Array { return d.array }

// ZoneInfo returns a snapshot of zone z.
func (d *Device) ZoneInfo(z int) (Zone, error) {
	if z < 0 || z >= d.numZones {
		return Zone{}, fmt.Errorf("%w: %d", ErrZoneRange, z)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return Zone{
		Index:  z,
		State:  d.state[z],
		Start:  int64(z) * d.zoneSize,
		WP:     d.wp[z] * device.SectorSize,
		Resets: d.reset[z],
	}, nil
}

// Zones returns snapshots of all zones.
func (d *Device) Zones() []Zone {
	out := make([]Zone, d.numZones)
	for z := range out {
		out[z], _ = d.ZoneInfo(z)
	}
	return out
}

// OpenZones returns the number of zones currently open.
func (d *Device) OpenZones() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.open
}

// zoneOf maps a device offset to its zone.
func (d *Device) zoneOf(off int64) int { return int(off / d.zoneSize) }

// addrFor maps (zone, sector-within-zone) to a flash page. Consecutive
// sectors stripe across the zone's blocks, which interleave across dies, so
// sequential zone writes parallelize like FTL-striped writes do.
func (d *Device) addrFor(z int, sector int64) flash.Addr {
	bpz := int64(d.cfg.BlocksPerZone)
	blockInZone := sector % bpz
	page := sector / bpz
	return flash.Addr{
		Block: z*d.cfg.BlocksPerZone + int(blockInZone),
		Page:  int(page),
	}
}

// Write appends n bytes at offset off, which must equal the target zone's
// write pointer. data may be nil for a metadata-only write. Implicitly
// opens an empty/closed zone, honouring the open-zone cap; a write that
// fills the zone transitions it to full and releases its open slot.
func (d *Device) Write(now time.Duration, data []byte, n int, off int64) (time.Duration, error) {
	if err := device.CheckRange(off, n, d.Size()); err != nil {
		return 0, err
	}
	if data != nil && len(data) != n {
		return 0, fmt.Errorf("zns: data length %d != n %d", len(data), n)
	}
	if n == 0 {
		return 0, nil
	}
	z := d.zoneOf(off)
	if d.zoneOf(off+int64(n)-1) != z {
		return 0, fmt.Errorf("%w: [%d,+%d)", ErrCrossZone, off, n)
	}

	d.mu.Lock()
	zStart := int64(z) * d.zoneSize
	wpOff := zStart + d.wp[z]*device.SectorSize
	if off != wpOff {
		st := d.state[z]
		d.mu.Unlock()
		if st == ZoneFull {
			return 0, fmt.Errorf("%w: zone %d", ErrZoneFull, z)
		}
		return 0, fmt.Errorf("%w: zone %d wp=%d got=%d", ErrNotWritePointer, z, wpOff, off)
	}
	if err := d.implicitOpenLocked(z); err != nil {
		d.mu.Unlock()
		return 0, err
	}

	sectors := int64(n) / device.SectorSize
	startSector := d.wp[z]
	// Reserve the range under the lock, then program outside it: the flash
	// array does its own locking and zones are independent.
	d.wp[z] += sectors
	if d.wp[z]*device.SectorSize == d.zoneSize {
		d.state[z] = ZoneFull
		d.open--
	}
	d.mu.Unlock()

	var latest time.Duration = now
	tm := d.array.Timing()
	for i := int64(0); i < sectors; i++ {
		var page []byte
		if data != nil {
			page = data[i*device.SectorSize : (i+1)*device.SectorSize]
		}
		sector := startSector + i
		// Per-zone bandwidth cap: each sector occupies one of the zone's
		// stripe lanes for a program slot, independent of physical die
		// availability. The observed completion is the later of the two.
		lane := &d.lanes[z][sector%int64(d.cfg.ZoneStripeLanes)]
		_, laneDone := lane.Acquire(now, tm.ProgPage+tm.Transfer)
		done, err := d.array.Program(now, d.addrFor(z, sector), page)
		if err != nil {
			return 0, fmt.Errorf("zns: program: %w", err)
		}
		if laneDone > done {
			done = laneDone
		}
		if done > latest {
			latest = done
		}
	}
	d.HostWrites.Add(uint64(n))
	return latest - now, nil
}

// Append writes n bytes at zone z's current write pointer, returning the
// assigned device offset — the zone-append primitive that lets multiple
// writers share a zone without coordinating on the write pointer.
func (d *Device) Append(now time.Duration, data []byte, n int, z int) (time.Duration, int64, error) {
	if z < 0 || z >= d.numZones {
		return 0, 0, fmt.Errorf("%w: %d", ErrZoneRange, z)
	}
	d.mu.Lock()
	off := int64(z)*d.zoneSize + d.wp[z]*device.SectorSize
	d.mu.Unlock()
	lat, err := d.Write(now, data, n, off)
	if err != nil {
		return 0, 0, err
	}
	d.Appends.Inc()
	return lat, off, nil
}

// implicitOpenLocked transitions empty/closed → open, enforcing the cap.
func (d *Device) implicitOpenLocked(z int) error {
	switch d.state[z] {
	case ZoneOpen:
		return nil
	case ZoneEmpty, ZoneClosed:
		if d.open >= d.cfg.MaxOpenZones {
			return fmt.Errorf("%w: cap %d", ErrTooManyOpen, d.cfg.MaxOpenZones)
		}
		d.state[z] = ZoneOpen
		d.open++
		return nil
	case ZoneFull:
		return fmt.Errorf("%w: zone %d", ErrZoneFull, z)
	}
	return fmt.Errorf("zns: zone %d in unexpected state %v", z, d.state[z])
}

// Read reads len(p) bytes at off. Reads are random-access but must not
// cross the write pointer — data above it does not exist yet.
func (d *Device) Read(now time.Duration, p []byte, off int64) (time.Duration, error) {
	n := len(p)
	if err := device.CheckRange(off, n, d.Size()); err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	z := d.zoneOf(off)
	if d.zoneOf(off+int64(n)-1) != z {
		return 0, fmt.Errorf("%w: [%d,+%d)", ErrCrossZone, off, n)
	}
	d.mu.Lock()
	zStart := int64(z) * d.zoneSize
	wpOff := zStart + d.wp[z]*device.SectorSize
	d.mu.Unlock()
	if off+int64(n) > wpOff {
		return 0, fmt.Errorf("%w: zone %d wp=%d read end=%d", ErrReadBeyondWP, z, wpOff, off+int64(n))
	}

	startSector := (off - zStart) / device.SectorSize
	var latest time.Duration = now
	for i := int64(0); i < int64(n)/device.SectorSize; i++ {
		done, page, err := d.array.Read(now, d.addrFor(z, startSector+i))
		if err != nil {
			return 0, fmt.Errorf("zns: read: %w", err)
		}
		copy(p[i*device.SectorSize:(i+1)*device.SectorSize], page)
		if done > latest {
			latest = done
		}
	}
	return latest - now, nil
}

// Reset erases zone z, returning it to empty with the write pointer at the
// zone start. This is the application-controlled reclaim primitive:
// Zone-Cache resets a zone per region eviction; the Region-Cache middle
// layer resets after migrating live regions out.
func (d *Device) Reset(now time.Duration, z int) (time.Duration, error) {
	if z < 0 || z >= d.numZones {
		return 0, fmt.Errorf("%w: %d", ErrZoneRange, z)
	}
	d.mu.Lock()
	if d.state[z] == ZoneOpen {
		d.open--
	}
	wasWritten := d.wp[z] * device.SectorSize
	d.state[z] = ZoneEmpty
	d.wp[z] = 0
	d.reset[z]++
	d.mu.Unlock()
	if d.Trace != nil {
		d.Trace.Emit(obs.Event{T: now, Type: obs.EvZoneReset, Zone: int32(z), Region: -1, Bytes: wasWritten})
	}

	// Erase the zone's blocks; they sit on different dies and proceed in
	// parallel, so the reset cost is ~one block-erase of queueing.
	var latest time.Duration = now
	for b := 0; b < d.cfg.BlocksPerZone; b++ {
		blk := z*d.cfg.BlocksPerZone + b
		if d.array.WriteFront(blk) == 0 {
			continue // never programmed since last erase
		}
		done, err := d.array.Erase(now, blk)
		if err != nil {
			return 0, fmt.Errorf("zns: reset erase: %w", err)
		}
		if done > latest {
			latest = done
		}
	}
	d.Resets.Inc()
	return latest - now, nil
}

// Finish moves zone z's write pointer to the end, transitioning it to full.
// Unwritten pages are simply never read (reads beyond old wp were already
// refused; after finish, reads of unwritten space return zeros).
func (d *Device) Finish(now time.Duration, z int) (time.Duration, error) {
	if z < 0 || z >= d.numZones {
		return 0, fmt.Errorf("%w: %d", ErrZoneRange, z)
	}
	d.mu.Lock()
	if d.state[z] == ZoneOpen {
		d.open--
	}
	// Sectors between wp and end become readable-as-zero: mark them by
	// moving wp; the flash pages stay unprogrammed and reads of them are
	// served from the zero page below.
	d.fillHolesLocked(z)
	d.wp[z] = d.zoneSize / device.SectorSize
	d.state[z] = ZoneFull
	d.Finishes.Inc()
	d.mu.Unlock()
	if d.Trace != nil {
		d.Trace.Emit(obs.Event{T: now, Type: obs.EvZoneFinish, Zone: int32(z), Region: -1})
	}
	return 0, nil
}

// fillHolesLocked programs metadata-only pages over the unwritten tail so
// subsequent reads below the (advanced) write pointer hit programmed pages.
// Real devices map such reads to a deallocated-read; programming zero pages
// is an equivalent observable behaviour and keeps the flash-state invariant
// "readable ⇒ programmed" simple. Finishing is rare (only at device
// shutdown in the schemes), so timing is not modelled.
func (d *Device) fillHolesLocked(z int) {
	sectorsPerZone := d.zoneSize / device.SectorSize
	for s := d.wp[z]; s < sectorsPerZone; s++ {
		// Ignore errors: pages beyond current write front only.
		d.array.Program(0, d.addrFor(z, s), nil) //nolint:errcheck
	}
}

// MetricsInto implements obs.MetricSource: aggregate device counters plus a
// per-zone state/write-pointer/reset-count gauge set, which is what zonectl's
// watch mode and the Prometheus exposition render as the zone map. The
// per-zone closures read through ZoneInfo and are scrape-safe mid-run.
func (d *Device) MetricsInto(r *obs.Registry, labels obs.Labels) {
	ls := labels.With("layer", "zns")
	r.Counter("zns_host_write_bytes_total", "Bytes written by the host to the ZNS device", ls, &d.HostWrites)
	r.Counter("zns_zone_resets_total", "Zone reset commands executed", ls, &d.Resets)
	r.Counter("zns_zone_appends_total", "Zone append commands executed", ls, &d.Appends)
	r.Counter("zns_zone_finishes_total", "Zone finish commands executed", ls, &d.Finishes)
	r.Gauge("zns_open_zones", "Zones currently in the open state", ls, func() float64 {
		return float64(d.OpenZones())
	})
	r.Gauge("zns_zones", "Total zones exposed by the device", ls, func() float64 {
		return float64(d.numZones)
	})
	for z := 0; z < d.numZones; z++ {
		z := z
		zl := ls.With("zone", strconv.Itoa(z))
		r.Gauge("zns_zone_state", "Zone state (0=empty 1=open 2=closed 3=full)", zl, func() float64 {
			info, _ := d.ZoneInfo(z)
			return float64(info.State)
		})
		r.Gauge("zns_zone_wp_bytes", "Zone write pointer as bytes from zone start", zl, func() float64 {
			info, _ := d.ZoneInfo(z)
			return float64(info.WP)
		})
		r.Gauge("zns_zone_reset_count", "Lifecycle resets of this zone (wear proxy)", zl, func() float64 {
			info, _ := d.ZoneInfo(z)
			return float64(info.Resets)
		})
	}
}

var _ Zoned = (*Device)(nil)

// Close transitions an open zone to closed, releasing its open slot while
// preserving the write pointer.
func (d *Device) Close(z int) error {
	if z < 0 || z >= d.numZones {
		return fmt.Errorf("%w: %d", ErrZoneRange, z)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state[z] == ZoneOpen {
		d.state[z] = ZoneClosed
		d.open--
	}
	return nil
}
