// Randomized zone state-machine property suite: thousands of seeded op
// sequences (write, append, read, reset, finish, close, ZRWA commit) run
// against the simulated device and an independent reference model of the
// ZNS state diagram, with every step cross-checked — returned error class,
// zone state, write pointer, ZRWA pending bytes, open/active budget
// accounting, and read-back data — followed by a full zone-contract audit.
// A fault-injected variant replays the same op grammar through the fault
// wrapper, resynchronizing the model after injected failures, so torn
// writes and injected errors can never drive the device out of its own
// contract.
//
// External test package: internal/fault imports zns, so the suite (which
// wants the contract checker and the injector) must live outside package
// zns to avoid an import cycle.
package zns_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"znscache/internal/device"
	"znscache/internal/fault"
	"znscache/internal/flash"
	"znscache/internal/zns"
)

// smGeometry is the tiny device the suite drives: 8 zones of 8 sectors, so
// short sequences exercise every state transition including zone-full.
func smGeometry() flash.Geometry {
	return flash.Geometry{
		Channels: 1, DiesPerChan: 2, BlocksPerDie: 8,
		PagesPerBlock: 4, PageSize: device.SectorSize,
	}
}

// smBudget is one budget configuration of the suite.
type smBudget struct {
	name      string
	maxOpen   int
	maxActive int
	zrwa      bool
	winSec    int64
}

// smBudgets are the four budget configurations every sequence count runs
// against: budget == cap, budget above cap, and tight/loose ZRWA variants.
func smBudgets() []smBudget {
	return []smBudget{
		{name: "open4-active4", maxOpen: 4, maxActive: 4},
		{name: "open2-active4", maxOpen: 2, maxActive: 4},
		{name: "open1-active2-zrwa", maxOpen: 1, maxActive: 2, zrwa: true, winSec: 3},
		{name: "open3-active3-zrwa", maxOpen: 3, maxActive: 3, zrwa: true, winSec: 2},
	}
}

func smDevice(tb testing.TB, b smBudget) *zns.Device {
	tb.Helper()
	cfg := zns.Config{
		Geometry:       smGeometry(),
		Timing:         flash.DefaultTiming(),
		BlocksPerZone:  2, // 8 zones, 8 sectors each
		MaxOpenZones:   b.maxOpen,
		MaxActiveZones: b.maxActive,
		StoreData:      true,
	}
	if b.zrwa {
		cfg.ZRWA = true
		cfg.ZRWABytes = b.winSec * device.SectorSize
	}
	d, err := zns.New(cfg)
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	return d
}

// Tag sentinels for modelled sector contents.
const (
	tagUnwritten = -1 // never programmed since the last reset
	tagUnknown   = -2 // post-fault: content valid but no longer predicted
)

// mZone is the reference model of one zone.
type mZone struct {
	state zns.ZoneState
	wp    int64   // sectors
	flash []int16 // per sector: tagUnwritten, tagUnknown, or 0..255 (0 = zero fill)
	win   []int16 // per window slot ahead of wp: tagUnwritten or 0..255
	dirty bool    // an injected fault touched this zone; skip predictions
}

func (z *mZone) winHigh() int64 {
	high := int64(0)
	for i, t := range z.win {
		if t != tagUnwritten {
			high = int64(i) + 1
		}
	}
	return high
}

func (z *mZone) clearWin() {
	for i := range z.win {
		z.win[i] = tagUnwritten
	}
}

// model is an independent implementation of the ZNS state diagram: zone
// states, write-pointer motion, window commits, and open/active budgets. It
// intentionally shares no code with the device.
type model struct {
	b      smBudget
	spz    int64 // sectors per zone
	zones  []mZone
	open   int
	active int
}

func newModel(b smBudget, numZones int, spz int64) *model {
	m := &model{b: b, spz: spz, zones: make([]mZone, numZones)}
	for i := range m.zones {
		m.zones[i].flash = make([]int16, spz)
		for s := range m.zones[i].flash {
			m.zones[i].flash[s] = tagUnwritten
		}
		m.zones[i].win = make([]int16, b.winSec)
		m.zones[i].clearWin()
	}
	return m
}

func (m *model) implicitOpen(z *mZone) error {
	switch z.state {
	case zns.ZoneOpen:
		return nil
	case zns.ZoneClosed:
		if m.open >= m.b.maxOpen {
			return zns.ErrTooManyOpen
		}
		z.state = zns.ZoneOpen
		m.open++
		return nil
	case zns.ZoneEmpty:
		if m.open >= m.b.maxOpen {
			return zns.ErrTooManyOpen
		}
		if m.active >= m.b.maxActive {
			return zns.ErrTooManyActive
		}
		z.state = zns.ZoneOpen
		m.open++
		m.active++
		return nil
	default:
		return zns.ErrZoneFull
	}
}

func (m *model) release(z *mZone) {
	switch z.state {
	case zns.ZoneOpen:
		m.open--
		m.active--
	case zns.ZoneClosed:
		m.active--
	}
}

// write mirrors Device.Write for a single-zone, sector-aligned write of n
// sectors at sector a, all filled with tag.
func (m *model) write(zi int, a, n int64, tag int16) error {
	z := &m.zones[zi]
	if n == 0 {
		return nil
	}
	if z.state == zns.ZoneFull {
		return zns.ErrZoneFull
	}
	if a < z.wp || a > z.wp+m.b.winSec {
		return zns.ErrNotWritePointer
	}
	if err := m.implicitOpen(z); err != nil {
		return err
	}
	b := a + n
	newWP := b - m.b.winSec
	if newWP < z.wp {
		newWP = z.wp
	}
	// Commit [wp, newWP): incoming data where the write covers it, buffered
	// window contents below that, zero-filled holes elsewhere.
	for s := z.wp; s < newWP; s++ {
		switch {
		case s >= a:
			z.flash[s] = tag
		case z.win[s-z.wp] != tagUnwritten:
			z.flash[s] = z.win[s-z.wp]
		default:
			z.flash[s] = 0
		}
	}
	// Slide the window and buffer the uncommitted tail.
	if shift := newWP - z.wp; shift > 0 && len(z.win) > 0 {
		copy(z.win, z.win[min64(shift, int64(len(z.win))):])
		for i := int64(len(z.win)) - shift; i < int64(len(z.win)); i++ {
			if i >= 0 {
				z.win[i] = tagUnwritten
			}
		}
	}
	for s := max64(a, newWP); s < b; s++ {
		z.win[s-newWP] = tag
	}
	z.wp = newWP
	if z.wp == m.spz {
		m.release(z)
		z.state = zns.ZoneFull
		z.clearWin()
	}
	return nil
}

// commit mirrors Device.CommitZRWA.
func (m *model) commit(zi int, upTo int64) error {
	if !m.b.zrwa {
		return zns.ErrZRWADisabled
	}
	if upTo < 0 || upTo > m.spz*device.SectorSize {
		return device.ErrOutOfRange
	}
	if upTo%device.SectorSize != 0 {
		return device.ErrAlignment
	}
	z := &m.zones[zi]
	target := upTo / device.SectorSize
	if target <= z.wp {
		return nil
	}
	limit := z.wp + m.b.winSec
	if limit > m.spz {
		limit = m.spz
	}
	if target > limit {
		return zns.ErrNotWritePointer
	}
	if err := m.implicitOpen(z); err != nil {
		return err
	}
	for s := z.wp; s < target; s++ {
		if z.win[s-z.wp] != tagUnwritten {
			z.flash[s] = z.win[s-z.wp]
		} else {
			z.flash[s] = 0
		}
	}
	if shift := target - z.wp; len(z.win) > 0 {
		copy(z.win, z.win[min64(shift, int64(len(z.win))):])
		for i := int64(len(z.win)) - shift; i < int64(len(z.win)); i++ {
			if i >= 0 {
				z.win[i] = tagUnwritten
			}
		}
	}
	z.wp = target
	if z.wp == m.spz {
		m.release(z)
		z.state = zns.ZoneFull
		z.clearWin()
	}
	return nil
}

// read predicts the outcome of reading n sectors at sector a and returns
// the expected per-sector tags.
func (m *model) read(zi int, a, n int64) ([]int16, error) {
	z := &m.zones[zi]
	tags := make([]int16, n)
	for s := a; s < a+n; s++ {
		switch {
		case s < z.wp:
			tags[s-a] = z.flash[s]
		case s-z.wp < int64(len(z.win)) && z.win[s-z.wp] != tagUnwritten:
			tags[s-a] = z.win[s-z.wp]
		default:
			return nil, zns.ErrReadBeyondWP
		}
	}
	return tags, nil
}

func (m *model) reset(zi int) {
	z := &m.zones[zi]
	m.release(z)
	z.state = zns.ZoneEmpty
	z.wp = 0
	for s := range z.flash {
		z.flash[s] = tagUnwritten
	}
	z.clearWin()
	z.dirty = false // a reset re-establishes fully known state
}

func (m *model) finish(zi int) {
	z := &m.zones[zi]
	if z.state == zns.ZoneFull {
		return
	}
	for s := z.wp; s < m.spz; s++ {
		if s-z.wp < int64(len(z.win)) && z.win[s-z.wp] != tagUnwritten {
			z.flash[s] = z.win[s-z.wp]
		} else {
			z.flash[s] = 0
		}
	}
	m.release(z)
	z.wp = m.spz
	z.state = zns.ZoneFull
	z.clearWin()
}

func (m *model) close(zi int) {
	z := &m.zones[zi]
	if z.state == zns.ZoneOpen {
		z.state = zns.ZoneClosed
		m.open--
	}
}

// resync reconciles the model with the device after an injected fault: the
// touched zone's contents become unpredicted, its externally visible state
// is copied back, and the budget counters are re-read. The zone contract
// checker independently verifies those device-reported values against the
// device's own per-zone states, so resync cannot launder a contract bug.
func (m *model) resync(dev zns.Zoned, zi int) {
	info, err := dev.ZoneInfo(zi)
	if err != nil {
		return
	}
	z := &m.zones[zi]
	z.state = info.State
	z.wp = info.WP / device.SectorSize
	for s := range z.flash {
		if int64(s) < z.wp {
			z.flash[s] = tagUnknown
		} else {
			z.flash[s] = tagUnwritten
		}
	}
	z.clearWin()
	if high := info.ZRWAPending / device.SectorSize; high > 0 {
		// Which window slots below the high-water mark hold data is not
		// observable; mark the zone dirty so reads stop being predicted.
		z.dirty = true
	}
	z.dirty = z.dirty || info.WP > 0 || info.State != zns.ZoneEmpty
	m.open = dev.OpenZones()
	m.active = dev.ActiveZones()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// opKind is the decoded operation class.
type opKind int

const (
	opWrite opKind = iota
	opAppend
	opRead
	opReset
	opFinish
	opClose
	opCommit
)

// decodeOp maps three raw bytes onto an op against the current model state:
// writes are addressed relative to the zone's write pointer (one sector
// behind it through one past the window end), so sequences keep hitting the
// interesting boundaries no matter how the state evolved.
func decodeOp(m *model, b0, b1, b2 byte) (kind opKind, zi int, p1, p2 int64, tag int16) {
	zi = int(b1) % len(m.zones)
	z := &m.zones[zi]
	sel := int(b0) % 100
	switch {
	case sel < 38:
		kind = opWrite
		delta := int64(b2%byte(m.b.winSec+3)) - 1 // -1 .. winSec+1
		a := z.wp + delta
		if a < 0 {
			a = 0
		}
		if a >= m.spz {
			a = m.spz - 1
		}
		n := int64(b2/16)%3 + 1
		if a+n > m.spz {
			n = m.spz - a
		}
		return kind, zi, a, n, 0
	case sel < 48:
		kind = opAppend
		if z.wp >= m.spz {
			return opRead, zi, 0, 0, 0 // full zone: read instead
		}
		n := int64(b2)%2 + 1
		if z.wp+n > m.spz {
			n = m.spz - z.wp
		}
		return kind, zi, z.wp, n, 0
	case sel < 63:
		kind = opRead
		a := int64(b2) % m.spz
		n := int64(b2/32)%2 + 1
		if a+n > m.spz {
			n = m.spz - a
		}
		return kind, zi, a, n, 0
	case sel < 73:
		return opReset, zi, 0, 0, 0
	case sel < 81:
		return opFinish, zi, 0, 0, 0
	case sel < 88:
		return opClose, zi, 0, 0, 0
	default:
		kind = opCommit
		target := z.wp + int64(b2)%(m.b.winSec+2) // 0 .. winSec+1 past wp
		return kind, zi, target * device.SectorSize, 0, 0
	}
}

// sectorFill builds n sectors filled with tag.
func sectorFill(tag int16, n int64) []byte {
	buf := make([]byte, n*device.SectorSize)
	for i := range buf {
		buf[i] = byte(tag)
	}
	return buf
}

// smRun drives one op sequence against dev (the possibly-wrapped interface)
// and inner (the raw device for contract audits), cross-checking against a
// fresh model. faulty relaxes per-op predictions on zones an injected fault
// has touched; the zone contract must hold regardless.
func smRun(tb testing.TB, b smBudget, dev zns.Zoned, inner *zns.Device, raw []byte, faulty bool) {
	tb.Helper()
	spz := inner.ZoneSize() / device.SectorSize
	zc := dev.(zns.ZRWACommitter) // both the raw device and the fault wrapper commit
	m := newModel(b, inner.NumZones(), spz)
	tag := int16(0)
	nextTag := func() int16 {
		tag = tag%255 + 1 // 1..255; zero is reserved for holes
		return tag
	}
	for i := 0; i+3 <= len(raw); i += 3 {
		kind, zi, p1, p2, _ := decodeOp(m, raw[i], raw[i+1], raw[i+2])
		z := &m.zones[zi]
		skip := faulty && z.dirty
		var wantErr, gotErr error
		step := fmt.Sprintf("op %d %v zone %d p1=%d p2=%d", i/3, kind, zi, p1, p2)

		switch kind {
		case opWrite:
			t := nextTag()
			data := sectorFill(t, p2)
			off := int64(zi)*inner.ZoneSize() + p1*device.SectorSize
			if skip {
				_, gotErr = dev.Write(0, data, len(data), off)
			} else {
				wantErr = m.write(zi, p1, p2, t)
				_, gotErr = dev.Write(0, data, len(data), off)
			}
		case opAppend:
			t := nextTag()
			data := sectorFill(t, p2)
			if skip {
				_, _, gotErr = dev.Append(0, data, len(data), zi)
			} else {
				wantErr = m.write(zi, p1, p2, t)
				var off int64
				_, off, gotErr = dev.Append(0, data, len(data), zi)
				if gotErr == nil && off != int64(zi)*inner.ZoneSize()+p1*device.SectorSize {
					tb.Fatalf("%s: append landed at %d, model expected sector %d", step, off, p1)
				}
			}
		case opRead:
			buf := make([]byte, p2*device.SectorSize)
			off := int64(zi)*inner.ZoneSize() + p1*device.SectorSize
			if skip {
				_, gotErr = dev.Read(0, buf, off)
			} else {
				var tags []int16
				tags, wantErr = m.read(zi, p1, p2)
				_, gotErr = dev.Read(0, buf, off)
				if wantErr == nil && gotErr == nil {
					for s := int64(0); s < p2; s++ {
						want := tags[s]
						if want == tagUnknown {
							continue
						}
						if got := buf[s*device.SectorSize]; got != byte(want) {
							tb.Fatalf("%s: sector %d read tag %d, model says %d", step, p1+s, got, want)
						}
					}
				}
			}
		case opReset:
			_, gotErr = dev.Reset(0, zi)
			if gotErr == nil {
				m.reset(zi)
				skip = false
			}
		case opFinish:
			_, gotErr = dev.Finish(0, zi)
			if gotErr == nil && !skip {
				m.finish(zi)
			}
		case opClose:
			gotErr = dev.Close(zi)
			if gotErr == nil && !skip {
				m.close(zi)
			}
		case opCommit:
			if skip {
				_, gotErr = zc.CommitZRWA(0, zi, p1)
			} else {
				wantErr = m.commit(zi, p1)
				_, gotErr = zc.CommitZRWA(0, zi, p1)
			}
		}

		// Injected faults end prediction for the zone until a clean reset;
		// ops on a dirty zone still mutate device state (implicit opens,
		// budget slots), so the model re-reads the zone after each one.
		// Everything else must match the model exactly.
		if faulty && (skip || (gotErr != nil && errors.Is(gotErr, fault.ErrInjected))) {
			m.resync(dev, zi)
		} else if !skip {
			if (wantErr == nil) != (gotErr == nil) || (wantErr != nil && !errors.Is(gotErr, wantErr)) {
				tb.Fatalf("%s: device err = %v, model err = %v", step, gotErr, wantErr)
			}
			info, err := inner.ZoneInfo(zi)
			if err != nil {
				tb.Fatalf("%s: ZoneInfo: %v", step, err)
			}
			mz := &m.zones[zi]
			if info.State != mz.state {
				tb.Fatalf("%s: state %v, model %v", step, info.State, mz.state)
			}
			if info.WP != mz.wp*device.SectorSize {
				tb.Fatalf("%s: wp %d, model %d", step, info.WP, mz.wp*device.SectorSize)
			}
			if info.ZRWAPending != mz.winHigh()*device.SectorSize {
				tb.Fatalf("%s: pending %d, model %d", step, info.ZRWAPending, mz.winHigh()*device.SectorSize)
			}
			if !faulty {
				if got := inner.OpenZones(); got != m.open {
					tb.Fatalf("%s: open %d, model %d", step, got, m.open)
				}
				if got := inner.ActiveZones(); got != m.active {
					tb.Fatalf("%s: active %d, model %d", step, got, m.active)
				}
			}
		}

		// The written contract must hold after every single op.
		if err := fault.CheckZoneContract(inner); err != nil {
			tb.Fatalf("%s: %v", step, err)
		}
	}
}

const smOpsPerSeq = 64

// TestZoneStateMachine is the headline property suite: seeded random op
// sequences across four budget configurations, each cross-checked against
// the reference model op by op.
func TestZoneStateMachine(t *testing.T) {
	seqs := 2000
	if testing.Short() {
		seqs = 250
	}
	for _, b := range smBudgets() {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			for seed := 0; seed < seqs; seed++ {
				raw := make([]byte, 3*smOpsPerSeq)
				rand.New(rand.NewSource(int64(seed))).Read(raw)
				dev := smDevice(t, b)
				smRun(t, b, dev, dev, raw, false)
			}
		})
	}
}

// TestZoneStateMachineFaulty replays the op grammar through the fault
// wrapper with injected errors and torn writes. Zones touched by a fault
// stop being predicted until reset, but the zone contract — budgets, state
// diagram, WP monotonicity, ZRWA bounds — must survive every schedule.
func TestZoneStateMachineFaulty(t *testing.T) {
	seqs := 400
	if testing.Short() {
		seqs = 80
	}
	for _, b := range smBudgets() {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			for seed := 0; seed < seqs; seed++ {
				raw := make([]byte, 3*smOpsPerSeq)
				rand.New(rand.NewSource(int64(1000000 + seed))).Read(raw)
				inj := fault.NewInjector(fault.Config{
					Seed:           uint64(seed)*2654435761 + 1,
					WriteErrorRate: 0.05,
					TornWriteRate:  0.08,
					ReadErrorRate:  0.04,
					ResetErrorRate: 0.04,
				})
				dev := smDevice(t, b)
				wrapped := fault.WrapZoned(dev, inj)
				smRun(t, b, wrapped, dev, raw, true)
				if err := wrapped.CheckContract(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}
