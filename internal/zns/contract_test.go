// External test package: the fault package imports zns for its wrapper
// types, so the zone-contract checker can only be exercised against the
// real device from outside the package.
package zns_test

import (
	"testing"

	"znscache/internal/device"
	"znscache/internal/fault"
	"znscache/internal/flash"
	"znscache/internal/zns"
)

func newContractDev(t *testing.T) *zns.Device {
	t.Helper()
	d, err := zns.New(zns.Config{
		Geometry: flash.Geometry{
			Channels: 2, DiesPerChan: 2, BlocksPerDie: 16,
			PagesPerBlock: 16, PageSize: device.SectorSize,
		},
		Timing:        flash.DefaultTiming(),
		BlocksPerZone: 4,
		MaxOpenZones:  4,
		StoreData:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDeviceHonoursZoneContract drives the simulated ZNS device through the
// full zone lifecycle — partial writes, fills, finish, reset, append — and
// runs the invariant checker after every step. The checker is the same one
// the fault wrapper applies under the crash harness, so this test keeps the
// reference device and the checker's notion of the contract in lockstep.
func TestDeviceHonoursZoneContract(t *testing.T) {
	d := newContractDev(t)
	check := func(step string) {
		t.Helper()
		if err := fault.CheckZoneContract(d); err != nil {
			t.Fatalf("after %s: %v", step, err)
		}
	}
	check("creation")

	zs := d.ZoneSize()
	buf := make([]byte, device.SectorSize)

	// Partially write zone 0: open, WP mid-zone.
	if _, err := d.Write(0, buf, len(buf), 0); err != nil {
		t.Fatal(err)
	}
	check("partial write")

	// Fill zone 1 completely: implicitly finished, WP == size.
	for off := zs; off < 2*zs; off += device.SectorSize {
		if _, err := d.Write(0, buf, len(buf), off); err != nil {
			t.Fatal(err)
		}
	}
	check("zone fill")

	// Explicitly finish the part-written zone 0.
	if _, err := d.Finish(0, 0); err != nil {
		t.Fatal(err)
	}
	check("finish")

	// Append into zone 2 via the append path.
	if _, _, err := d.Append(0, buf, len(buf), 2); err != nil {
		t.Fatal(err)
	}
	check("append")

	// Open zones up to the cap, then reset them all back to empty.
	if _, _, err := d.Append(0, buf, len(buf), 3); err != nil {
		t.Fatal(err)
	}
	check("open to cap")
	for z := 0; z < 4; z++ {
		if _, err := d.Reset(0, z); err != nil {
			t.Fatal(err)
		}
	}
	check("reset all")
}

// TestWrappedDeviceContractAudit runs the same lifecycle through the fault
// wrapper (zero fault rates) and asserts its continuous write-pointer audit
// stays clean: the wrapper must not report violations for legal behaviour.
func TestWrappedDeviceContractAudit(t *testing.T) {
	inj := fault.NewInjector(fault.Config{Seed: 1})
	w := fault.WrapZoned(newContractDev(t), inj)
	buf := make([]byte, device.SectorSize)
	for z := 0; z < 3; z++ {
		for i := 0; i < 4; i++ {
			if _, _, err := w.Append(0, buf, len(buf), z); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := w.Finish(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Reset(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.CheckContract(); err != nil {
		t.Fatalf("clean lifecycle flagged by the wrapper audit: %v", err)
	}
}
