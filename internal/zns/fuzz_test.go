package zns_test

import (
	"math/rand"
	"testing"
)

// FuzzZoneOps feeds arbitrary byte streams through the same op decoder the
// state-machine suite uses: byte 0 selects one of the four budget
// configurations, every following 3-byte group decodes into a zone op
// (write/append/read/reset/finish/close/ZRWA-commit) addressed relative to
// the current write pointer. Each op is cross-checked against the reference
// model — error class, zone state, write pointer, ZRWA pending, budget
// counters, read-back data — and the full zone contract is audited after
// every step, so the fuzzer hunts for any input ordering that desyncs the
// device from the ZNS state diagram. The committed corpus under
// testdata/fuzz/FuzzZoneOps seeds lifecycle-heavy sequences for each
// configuration.
func FuzzZoneOps(f *testing.F) {
	// One deterministic pseudo-random stream per budget configuration, plus
	// a handcrafted lifecycle (write-heavy, then finish/reset-heavy).
	for cfg := 0; cfg < 4; cfg++ {
		raw := make([]byte, 1+3*24)
		raw[0] = byte(cfg)
		rand.New(rand.NewSource(int64(cfg))).Read(raw[1:])
		f.Add(raw)
	}
	lifecycle := []byte{2} // ZRWA config
	for i := 0; i < 16; i++ {
		lifecycle = append(lifecycle, byte(i*7), byte(i), byte(i*13)) // writes + commits
	}
	for i := 0; i < 8; i++ {
		lifecycle = append(lifecycle, 65+byte(i*5)%35, byte(i), byte(i)) // resets/finishes/closes
	}
	f.Add(lifecycle)
	f.Add([]byte{0})           // no ops
	f.Add([]byte{3, 90, 0, 9}) // lone commit on the tight-window config
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 {
			return
		}
		budgets := smBudgets()
		b := budgets[int(raw[0])%len(budgets)]
		dev := smDevice(t, b)
		smRun(t, b, dev, dev, raw[1:], false)
	})
}
