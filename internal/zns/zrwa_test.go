package zns

import (
	"bytes"
	"errors"
	"testing"

	"znscache/internal/device"
)

// zrwaConfig is testConfig with a 4-sector random-write window.
func zrwaConfig() Config {
	cfg := testConfig()
	cfg.ZRWA = true
	cfg.ZRWABytes = 4 * device.SectorSize
	return cfg
}

func newZRWADev(t *testing.T) *Device {
	t.Helper()
	d, err := New(zrwaConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

// sectorPattern builds n sectors, each filled with a distinct byte derived
// from tag and its index, so committed data can be traced back to the write
// that produced it.
func sectorPattern(tag byte, n int) []byte {
	buf := make([]byte, n*device.SectorSize)
	for s := 0; s < n; s++ {
		for i := 0; i < device.SectorSize; i++ {
			buf[s*device.SectorSize+i] = tag + byte(s)
		}
	}
	return buf
}

func TestZRWAConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.ZRWABytes = device.SectorSize
	if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("ZRWABytes without ZRWA: err = %v", err)
	}
	cfg = zrwaConfig()
	cfg.ZRWABytes = device.SectorSize + 1
	if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unaligned ZRWABytes: err = %v", err)
	}
	cfg = zrwaConfig()
	cfg.ZRWABytes = -device.SectorSize
	if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative ZRWABytes: err = %v", err)
	}
	// Default window when enabled without a size.
	cfg = zrwaConfig()
	cfg.ZRWABytes = 0
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("defaulted ZRWABytes: %v", err)
	}
	info, _ := d.ZoneInfo(0)
	if info.ZRWAWindow != 16*device.SectorSize {
		t.Fatalf("default window = %d, want %d", info.ZRWAWindow, 16*device.SectorSize)
	}
	// Oversized windows clamp to the zone size.
	cfg = zrwaConfig()
	cfg.ZRWABytes = 4 * d.ZoneSize()
	d2, err := New(cfg)
	if err != nil {
		t.Fatalf("oversized ZRWABytes: %v", err)
	}
	info, _ = d2.ZoneInfo(0)
	if info.ZRWAWindow != d2.ZoneSize() {
		t.Fatalf("clamped window = %d, want zone size %d", info.ZRWAWindow, d2.ZoneSize())
	}
}

func TestCommitZRWADisabled(t *testing.T) {
	d := newTestDev(t)
	if _, err := d.CommitZRWA(0, 0, device.SectorSize); !errors.Is(err, ErrZRWADisabled) {
		t.Fatalf("CommitZRWA on plain device: err = %v", err)
	}
	info, _ := d.ZoneInfo(0)
	if info.ZRWAWindow != 0 || info.ZRWAPending != 0 {
		t.Fatalf("plain device reports window=%d pending=%d", info.ZRWAWindow, info.ZRWAPending)
	}
}

// TestZRWABufferedWriteHoldsWP checks that writes landing inside the window
// are buffered — the write pointer stays put, no flash pages are programmed,
// and the pending gauge tracks the high-water mark.
func TestZRWABufferedWriteHoldsWP(t *testing.T) {
	d := newZRWADev(t)
	// Write sector 2 of zone 0: ahead of wp 0 but inside the 4-sector window.
	if _, err := d.Write(0, sectorPattern('a', 1), device.SectorSize, 2*device.SectorSize); err != nil {
		t.Fatalf("window write: %v", err)
	}
	info, _ := d.ZoneInfo(0)
	if info.WP != 0 {
		t.Fatalf("wp = %d after buffered write, want 0", info.WP)
	}
	if info.State != ZoneOpen {
		t.Fatalf("state = %v, want OPEN", info.State)
	}
	if info.ZRWAPending != 3*device.SectorSize {
		t.Fatalf("pending = %d, want %d", info.ZRWAPending, 3*device.SectorSize)
	}
	if got := d.Array().WriteFront(0); got != 0 {
		t.Fatalf("block 0 write front = %d after buffered write, want 0 (no programs)", got)
	}
}

// TestZRWAAbsorbsOverwrites checks that rewriting a buffered sector is
// absorbed in the window — counted, latest data retained, nothing programmed.
func TestZRWAAbsorbsOverwrites(t *testing.T) {
	d := newZRWADev(t)
	for i := 0; i < 3; i++ {
		tag := byte('a' + i)
		if _, err := d.Write(0, sectorPattern(tag, 1), device.SectorSize, device.SectorSize); err != nil {
			t.Fatalf("overwrite %d: %v", i, err)
		}
	}
	if got := d.ZRWAAbsorbed.Load(); got != 2 {
		t.Fatalf("ZRWAAbsorbed = %d, want 2", got)
	}
	// The window serves the latest version back.
	p := make([]byte, device.SectorSize)
	if _, err := d.Read(0, p, device.SectorSize); err != nil {
		t.Fatalf("read buffered sector: %v", err)
	}
	if !bytes.Equal(p, sectorPattern('c', 1)) {
		t.Fatalf("buffered read returned stale data (byte 0 = %q, want 'c')", p[0])
	}
}

// TestZRWAExplicitCommit checks CommitZRWA: buffered sectors below the commit
// point are programmed in order (holes as zeros), the write pointer advances,
// and the committed data reads back from flash.
func TestZRWAExplicitCommit(t *testing.T) {
	d := newZRWADev(t)
	// Buffer sectors 0 and 2, leaving a hole at 1.
	if _, err := d.Write(0, sectorPattern('x', 1), device.SectorSize, 0); err == nil {
		// Window write at the wp itself commits immediately only when it
		// slides past the window; at wp it buffers. Either way no error.
	} else {
		t.Fatalf("write sector 0: %v", err)
	}
	if _, err := d.Write(0, sectorPattern('z', 1), device.SectorSize, 2*device.SectorSize); err != nil {
		t.Fatalf("write sector 2: %v", err)
	}
	lat, err := d.CommitZRWA(0, 0, 3*device.SectorSize)
	if err != nil {
		t.Fatalf("CommitZRWA: %v", err)
	}
	if lat <= 0 {
		t.Fatalf("commit latency = %v, want > 0 (3 programs)", lat)
	}
	if got := d.ZRWACommits.Load(); got != 1 {
		t.Fatalf("ZRWACommits = %d, want 1", got)
	}
	info, _ := d.ZoneInfo(0)
	if info.WP != 3*device.SectorSize {
		t.Fatalf("wp = %d after commit, want %d", info.WP, 3*device.SectorSize)
	}
	if info.ZRWAPending != 0 {
		t.Fatalf("pending = %d after commit, want 0", info.ZRWAPending)
	}
	p := make([]byte, 3*device.SectorSize)
	if _, err := d.Read(0, p, 0); err != nil {
		t.Fatalf("read committed range: %v", err)
	}
	if !bytes.Equal(p[:device.SectorSize], sectorPattern('x', 1)) {
		t.Fatal("sector 0 mismatch after commit")
	}
	if !bytes.Equal(p[device.SectorSize:2*device.SectorSize], make([]byte, device.SectorSize)) {
		t.Fatal("hole sector 1 not zero-filled")
	}
	if !bytes.Equal(p[2*device.SectorSize:], sectorPattern('z', 1)) {
		t.Fatal("sector 2 mismatch after commit")
	}
	// Committing at or behind the wp is a no-op.
	if lat, err := d.CommitZRWA(0, 0, device.SectorSize); err != nil || lat != 0 {
		t.Fatalf("no-op commit = (%v, %v), want (0, nil)", lat, err)
	}
}

// TestZRWAImplicitCommit checks the rolling commit: a write whose end extends
// past the window forces everything below end−window onto flash.
func TestZRWAImplicitCommit(t *testing.T) {
	d := newZRWADev(t)
	// Buffer sector 1 (hole at 0).
	if _, err := d.Write(0, sectorPattern('b', 1), device.SectorSize, device.SectorSize); err != nil {
		t.Fatalf("buffer sector 1: %v", err)
	}
	// Write sectors 2..5: end = 6, window = 4, so sectors 0..1 must commit.
	if _, err := d.Write(0, sectorPattern('c', 4), 4*device.SectorSize, 2*device.SectorSize); err != nil {
		t.Fatalf("rolling write: %v", err)
	}
	info, _ := d.ZoneInfo(0)
	if info.WP != 2*device.SectorSize {
		t.Fatalf("wp = %d after implicit commit, want %d", info.WP, 2*device.SectorSize)
	}
	if got := d.ZRWAImplicit.Load(); got == 0 {
		t.Fatal("ZRWAImplicit not counted")
	}
	if info.ZRWAPending != 4*device.SectorSize {
		t.Fatalf("pending = %d, want %d", info.ZRWAPending, 4*device.SectorSize)
	}
	// Committed prefix: hole at 0, data at 1.
	p := make([]byte, 2*device.SectorSize)
	if _, err := d.Read(0, p, 0); err != nil {
		t.Fatalf("read committed prefix: %v", err)
	}
	if !bytes.Equal(p[:device.SectorSize], make([]byte, device.SectorSize)) {
		t.Fatal("hole sector 0 not zero-filled")
	}
	if !bytes.Equal(p[device.SectorSize:], sectorPattern('b', 1)) {
		t.Fatal("sector 1 mismatch after implicit commit")
	}
}

// TestZRWAWriteBounds checks rejection of writes behind the wp and beyond the
// window end, and of commits past the window.
func TestZRWAWriteBounds(t *testing.T) {
	d := newZRWADev(t)
	// Fill the first two sectors (implicitly commits nothing: end 2 < window 4).
	if _, err := d.Write(0, sectorPattern('a', 2), 2*device.SectorSize, 0); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	// wp is still 0, window [0,4). A write starting at sector 5 is out.
	if _, err := d.Write(0, sectorPattern('q', 1), device.SectorSize, 5*device.SectorSize); !errors.Is(err, ErrNotWritePointer) {
		t.Fatalf("write beyond window: err = %v", err)
	}
	// Commit past the window end is rejected.
	if _, err := d.CommitZRWA(0, 0, 5*device.SectorSize); !errors.Is(err, ErrNotWritePointer) {
		t.Fatalf("commit beyond window: err = %v", err)
	}
	// Unaligned commit offset.
	if _, err := d.CommitZRWA(0, 0, device.SectorSize+3); !errors.Is(err, device.ErrAlignment) {
		t.Fatalf("unaligned commit: err = %v", err)
	}
	// Commit the pair, then a write behind the new wp is rejected.
	if _, err := d.CommitZRWA(0, 0, 2*device.SectorSize); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if _, err := d.Write(0, sectorPattern('q', 1), device.SectorSize, 0); !errors.Is(err, ErrNotWritePointer) {
		t.Fatalf("write behind wp: err = %v", err)
	}
}

// TestZRWAReadRules checks reads against the window: written window sectors
// are served, unwritten ones fail ErrReadBeyondWP even when below other
// buffered sectors.
func TestZRWAReadRules(t *testing.T) {
	d := newZRWADev(t)
	if _, err := d.Write(0, sectorPattern('k', 1), device.SectorSize, 2*device.SectorSize); err != nil {
		t.Fatalf("buffer sector 2: %v", err)
	}
	p := make([]byte, device.SectorSize)
	if _, err := d.Read(0, p, 2*device.SectorSize); err != nil {
		t.Fatalf("read buffered sector 2: %v", err)
	}
	if !bytes.Equal(p, sectorPattern('k', 1)) {
		t.Fatal("buffered sector 2 mismatch")
	}
	// Sector 1 is an unwritten hole below the buffered sector: unreadable.
	if _, err := d.Read(0, p, device.SectorSize); !errors.Is(err, ErrReadBeyondWP) {
		t.Fatalf("read hole: err = %v", err)
	}
	// A range spanning hole + buffered sector is also rejected, atomically.
	q := make([]byte, 2*device.SectorSize)
	if _, err := d.Read(0, q, device.SectorSize); !errors.Is(err, ErrReadBeyondWP) {
		t.Fatalf("read spanning hole: err = %v", err)
	}
}

// TestZRWAFinishPersistsWindow checks that Finish programs buffered window
// sectors (with the rest of the tail zero-filled) before marking the zone
// full, so a finish never loses window contents.
func TestZRWAFinishPersistsWindow(t *testing.T) {
	d := newZRWADev(t)
	if _, err := d.Write(0, sectorPattern('w', 2), 2*device.SectorSize, device.SectorSize); err != nil {
		t.Fatalf("buffer sectors 1-2: %v", err)
	}
	if _, err := d.Finish(0, 0); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	info, _ := d.ZoneInfo(0)
	if info.State != ZoneFull || info.WP != d.ZoneSize() {
		t.Fatalf("after finish: state=%v wp=%d", info.State, info.WP)
	}
	if info.ZRWAPending != 0 {
		t.Fatalf("pending = %d after finish", info.ZRWAPending)
	}
	if d.ActiveZones() != 0 {
		t.Fatalf("ActiveZones = %d after finish, want 0", d.ActiveZones())
	}
	p := make([]byte, 2*device.SectorSize)
	if _, err := d.Read(0, p, device.SectorSize); err != nil {
		t.Fatalf("read persisted window: %v", err)
	}
	if !bytes.Equal(p, sectorPattern('w', 2)) {
		t.Fatal("window contents lost at finish")
	}
	// The whole tail counts as finish fill.
	spz := d.ZoneSize() / device.SectorSize
	if got := d.FinishFill.Load(); got != uint64(spz) {
		t.Fatalf("FinishFill = %d, want %d", got, spz)
	}
}

// TestZRWAResetDiscardsWindow checks that Reset drops buffered sectors: after
// the reset nothing is readable and the zone is empty with no pending bytes.
func TestZRWAResetDiscardsWindow(t *testing.T) {
	d := newZRWADev(t)
	if _, err := d.Write(0, sectorPattern('r', 1), device.SectorSize, 0); err != nil {
		t.Fatalf("buffer sector 0: %v", err)
	}
	if _, err := d.Reset(0, 0); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	info, _ := d.ZoneInfo(0)
	if info.State != ZoneEmpty || info.WP != 0 || info.ZRWAPending != 0 {
		t.Fatalf("after reset: state=%v wp=%d pending=%d", info.State, info.WP, info.ZRWAPending)
	}
	p := make([]byte, device.SectorSize)
	if _, err := d.Read(0, p, 0); !errors.Is(err, ErrReadBeyondWP) {
		t.Fatalf("read after reset: err = %v", err)
	}
}

// TestZRWACommitToZoneEnd checks that an explicit commit reaching the zone
// end transitions it to full and releases both resource slots.
func TestZRWACommitToZoneEnd(t *testing.T) {
	d := newZRWADev(t)
	spz := d.ZoneSize() / device.SectorSize
	// Sequentially write (and implicitly roll) until the wp sits one window
	// short of the end, then buffer the final sectors and commit to the end.
	for s := int64(0); s < spz; s++ {
		if _, err := d.Write(0, sectorPattern(byte(s), 1), device.SectorSize, s*device.SectorSize); err != nil {
			t.Fatalf("write sector %d: %v", s, err)
		}
	}
	info, _ := d.ZoneInfo(0)
	if info.State == ZoneFull {
		t.Fatal("zone reached FULL by writes alone; ZRWA zones must fill via commit or finish")
	}
	if _, err := d.CommitZRWA(0, 0, d.ZoneSize()); err != nil {
		t.Fatalf("commit to zone end: %v", err)
	}
	info, _ = d.ZoneInfo(0)
	if info.State != ZoneFull || info.WP != d.ZoneSize() {
		t.Fatalf("after commit-to-end: state=%v wp=%d", info.State, info.WP)
	}
	if d.OpenZones() != 0 || d.ActiveZones() != 0 {
		t.Fatalf("open=%d active=%d after commit-to-end", d.OpenZones(), d.ActiveZones())
	}
	// All data must read back intact, including the final window.
	p := make([]byte, device.SectorSize)
	for s := int64(0); s < spz; s++ {
		if _, err := d.Read(0, p, s*device.SectorSize); err != nil {
			t.Fatalf("read back sector %d: %v", s, err)
		}
		if p[0] != byte(s) {
			t.Fatalf("sector %d byte 0 = %d, want %d", s, p[0], byte(s))
		}
	}
}

// TestZRWABufferedWriteLatency checks the cost model: a fully buffered write
// is charged bus transfer only, strictly cheaper than a committed write of
// the same size.
func TestZRWABufferedWriteLatency(t *testing.T) {
	d := newZRWADev(t)
	buffered, err := d.Write(0, sectorPattern('a', 2), 2*device.SectorSize, 0)
	if err != nil {
		t.Fatalf("buffered write: %v", err)
	}
	d2 := newTestDev(t)
	committed, err := d2.Write(0, sectorPattern('a', 2), 2*device.SectorSize, 0)
	if err != nil {
		t.Fatalf("committed write: %v", err)
	}
	if buffered <= 0 {
		t.Fatalf("buffered latency = %v, want > 0 (bus transfer)", buffered)
	}
	if buffered >= committed {
		t.Fatalf("buffered %v not cheaper than committed %v", buffered, committed)
	}
}
