package zns

import (
	"testing"
	"time"

	"znscache/internal/device"
	"znscache/internal/flash"
)

func TestZoneStripeLanesCapBandwidth(t *testing.T) {
	// The same full-zone write must take ~4x longer with 1 lane than 4.
	run := func(lanes int) time.Duration {
		cfg := testConfig()
		cfg.ZoneStripeLanes = lanes
		cfg.StoreData = false
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		lat, err := d.Write(0, nil, int(d.ZoneSize()), 0)
		if err != nil {
			t.Fatal(err)
		}
		return lat
	}
	one, four := run(1), run(4)
	if one < four*3 {
		t.Fatalf("1-lane zone write %v not ≳3x the 4-lane %v", one, four)
	}
}

func TestTwoZonesAggregateBandwidth(t *testing.T) {
	// Two half-device writes to different zones issued at the same instant
	// overlap; the later completion is well under their serial sum.
	cfg := testConfig()
	cfg.StoreData = false
	d, _ := New(cfg)
	l1, err := d.Write(0, nil, int(d.ZoneSize()), 0)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := d.Write(0, nil, int(d.ZoneSize()), d.ZoneSize())
	if err != nil {
		t.Fatal(err)
	}
	if l2 >= l1+l1 {
		t.Fatalf("concurrent zone writes serialized: %v then %v", l1, l2)
	}
}

func TestWriteAfterFinishRejected(t *testing.T) {
	d := newTestDev(t)
	d.Write(0, nil, device.SectorSize, 0)
	d.Finish(0, 0)
	if _, err := d.Write(0, nil, device.SectorSize, device.SectorSize); err == nil {
		t.Fatal("write into finished zone accepted")
	}
	// Reset makes it writable again.
	if _, err := d.Reset(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(0, nil, device.SectorSize, 0); err != nil {
		t.Fatalf("write after reset: %v", err)
	}
}

func TestResetWhileOpenReleasesSlot(t *testing.T) {
	cfg := testConfig()
	cfg.MaxOpenZones = 1
	d, _ := New(cfg)
	d.Write(0, nil, device.SectorSize, 0)
	if d.OpenZones() != 1 {
		t.Fatal("zone not open")
	}
	d.Reset(0, 0)
	// The slot must be free for another zone now.
	if _, err := d.Write(0, nil, device.SectorSize, d.ZoneSize()); err != nil {
		t.Fatalf("open after reset: %v", err)
	}
}

func TestMisalignedZoneIO(t *testing.T) {
	d := newTestDev(t)
	if _, err := d.Write(0, nil, 100, 0); err == nil {
		t.Fatal("unaligned write accepted")
	}
	buf := make([]byte, 100)
	if _, err := d.Read(0, buf, 0); err == nil {
		t.Fatal("unaligned read accepted")
	}
}

func TestZoneWearTracksResets(t *testing.T) {
	d := newTestDev(t)
	for i := 0; i < 3; i++ {
		d.Write(0, nil, int(d.ZoneSize()), 0)
		d.Reset(0, 0)
	}
	zi, _ := d.ZoneInfo(0)
	if zi.Resets != 3 {
		t.Fatalf("zone resets = %d, want 3", zi.Resets)
	}
	// Each reset erased the zone's 4 written blocks.
	if got := d.Array().EraseCount(0); got != 3 {
		t.Fatalf("block erase count = %d, want 3", got)
	}
}

func TestDefaultLaneClamp(t *testing.T) {
	cfg := Config{
		Geometry: flash.Geometry{
			Channels: 1, DiesPerChan: 1, BlocksPerDie: 4,
			PagesPerBlock: 4, PageSize: device.SectorSize,
		},
		BlocksPerZone:   2,
		ZoneStripeLanes: 16, // above BlocksPerZone: must clamp
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(0, nil, int(d.ZoneSize()), 0); err != nil {
		t.Fatalf("write on clamped lanes: %v", err)
	}
}
