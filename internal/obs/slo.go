package obs

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"znscache/internal/stats"
)

// SLO tracking: each verb gets a latency objective ("99.9% of gets under
// 2ms") tracked as good/total counters. A background ticker turns counter
// deltas into an error-budget burn rate — burn 1.0 means the budget is being
// consumed exactly as provisioned; sustained burn above the trigger captures
// a CPU+mutex pprof profile to disk so the cause of an SLO violation is
// recorded while it is happening, not reconstructed afterwards.

// Objective is one verb's latency SLO: Goal of requests must complete within
// Target.
type Objective struct {
	Verb   string
	Target time.Duration
	Goal   float64 // e.g. 0.999
}

// ParseObjectives parses a comma-separated objective list of the form
// "get=2ms@0.999,set=10ms@0.99". The goal defaults to 0.999 when the @ part
// is omitted.
func ParseObjectives(s string) ([]Objective, error) {
	var out []Objective
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		verb, spec, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("slo: %q: want verb=latency[@goal]", part)
		}
		latStr, goalStr, hasGoal := strings.Cut(spec, "@")
		target, err := time.ParseDuration(latStr)
		if err != nil || target <= 0 {
			return nil, fmt.Errorf("slo: %q: bad latency %q", part, latStr)
		}
		goal := 0.999
		if hasGoal {
			goal, err = strconv.ParseFloat(goalStr, 64)
			if err != nil || goal <= 0 || goal >= 1 {
				return nil, fmt.Errorf("slo: %q: goal must be in (0,1)", part)
			}
		}
		out = append(out, Objective{Verb: strings.ToLower(verb), Target: target, Goal: goal})
	}
	return out, nil
}

// SLOVerb tracks one verb's objective. The serving path holds a *SLOVerb
// resolved once at startup and calls ObserveN per batch; a nil receiver is a
// no-op so unconfigured verbs cost one branch.
type SLOVerb struct {
	obj   Objective
	good  stats.Counter
	total stats.Counter

	// Window state, owned by the tracker tick.
	lastGood  uint64
	lastTotal uint64
	burn      atomic.Uint64 // math.Float64bits of the latest window's burn
	hotSince  int           // consecutive windows at/above the trigger
}

// ObserveN counts n requests of latency d against the objective. Safe on a
// nil receiver.
func (v *SLOVerb) ObserveN(d time.Duration, n int) {
	if v == nil || n <= 0 {
		return
	}
	v.total.Add(uint64(n))
	if d <= v.obj.Target {
		v.good.Add(uint64(n))
	}
}

// BurnRate returns the last window's error-budget burn rate: the fraction of
// requests violating the objective divided by the budgeted fraction (1−goal).
// 0 until the first tick with traffic.
func (v *SLOVerb) BurnRate() float64 {
	return floatFromBits(v.burn.Load())
}

// Objective returns the verb's configured objective.
func (v *SLOVerb) Objective() Objective { return v.obj }

// SLOConfig parameterizes a tracker beyond its objectives.
type SLOConfig struct {
	Objectives []Objective
	// Window is the burn-rate evaluation interval (default 5s).
	Window time.Duration
	// BurnTrigger arms profile capture when any verb's burn rate meets it
	// (default 2.0 — consuming budget at twice the provisioned rate).
	BurnTrigger float64
	// BurnWindows is how many consecutive hot windows constitute
	// "sustained" burn (default 3).
	BurnWindows int
	// ProfileDir receives the captured profiles; empty disables capture.
	ProfileDir string
	// ProfileDuration is the CPU profile length (default 5s).
	ProfileDuration time.Duration
}

// SLOTracker owns the per-verb objectives, the burn-rate ticker, and the
// sustained-burn profile trigger.
type SLOTracker struct {
	cfg   SLOConfig
	verbs []*SLOVerb

	mu        sync.Mutex // guards window state across tick vs Gather reads
	capturing atomic.Bool
	captures  stats.Counter

	stop chan struct{}
	done chan struct{}
}

// NewSLOTracker builds a tracker; nil if no objectives are configured.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	if len(cfg.Objectives) == 0 {
		return nil
	}
	if cfg.Window <= 0 {
		cfg.Window = 5 * time.Second
	}
	if cfg.BurnTrigger <= 0 {
		cfg.BurnTrigger = 2.0
	}
	if cfg.BurnWindows <= 0 {
		cfg.BurnWindows = 3
	}
	if cfg.ProfileDuration <= 0 {
		cfg.ProfileDuration = 5 * time.Second
	}
	t := &SLOTracker{cfg: cfg}
	for _, o := range cfg.Objectives {
		t.verbs = append(t.verbs, &SLOVerb{obj: o})
	}
	return t
}

// Verb returns the tracker's handle for verb (nil when untracked, or when
// the tracker itself is nil — callers thread the nil straight through to
// SLOVerb.ObserveN).
func (t *SLOTracker) Verb(verb string) *SLOVerb {
	if t == nil {
		return nil
	}
	for _, v := range t.verbs {
		if v.obj.Verb == verb {
			return v
		}
	}
	return nil
}

// Start launches the burn-rate ticker. Safe on a nil tracker.
func (t *SLOTracker) Start() {
	if t == nil || t.stop != nil {
		return
	}
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	go func() {
		defer close(t.done)
		tick := time.NewTicker(t.cfg.Window)
		defer tick.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-tick.C:
				t.tick()
			}
		}
	}()
}

// Stop halts the ticker. Safe on a nil or never-started tracker.
func (t *SLOTracker) Stop() {
	if t == nil || t.stop == nil {
		return
	}
	close(t.stop)
	<-t.done
	t.stop = nil
}

// tick closes one burn-rate window: computes each verb's burn from the
// counter deltas and fires the profile trigger on sustained burn.
func (t *SLOTracker) tick() {
	t.mu.Lock()
	sustained := false
	for _, v := range t.verbs {
		good, total := v.good.Load(), v.total.Load()
		dGood, dTotal := good-v.lastGood, total-v.lastTotal
		v.lastGood, v.lastTotal = good, total
		if dTotal == 0 {
			v.burn.Store(floatBits(0))
			v.hotSince = 0
			continue
		}
		bad := float64(dTotal-dGood) / float64(dTotal)
		burn := bad / (1 - v.obj.Goal)
		v.burn.Store(floatBits(burn))
		if burn >= t.cfg.BurnTrigger {
			v.hotSince++
			if v.hotSince >= t.cfg.BurnWindows {
				sustained = true
			}
		} else {
			// Recovery rearms the trigger for this verb.
			v.hotSince = 0
		}
	}
	t.mu.Unlock()
	if sustained {
		t.captureProfiles()
	}
}

// captureProfiles writes a CPU and a mutex profile to ProfileDir, at most
// one capture in flight; re-trigger requires the burn to recover first
// (hotSince resets below the trigger) and then sustain again.
func (t *SLOTracker) captureProfiles() {
	if t.cfg.ProfileDir == "" || !t.capturing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer t.capturing.Store(false)
		stamp := time.Now().UTC().Format("20060102T150405")
		if err := os.MkdirAll(t.cfg.ProfileDir, 0o755); err != nil {
			return
		}
		cpuPath := filepath.Join(t.cfg.ProfileDir, "slo_burn_cpu_"+stamp+".pprof")
		if f, err := os.Create(cpuPath); err == nil {
			if pprof.StartCPUProfile(f) == nil {
				time.Sleep(t.cfg.ProfileDuration)
				pprof.StopCPUProfile()
			}
			f.Close()
		}
		mtxPath := filepath.Join(t.cfg.ProfileDir, "slo_burn_mutex_"+stamp+".pprof")
		if f, err := os.Create(mtxPath); err == nil {
			if p := pprof.Lookup("mutex"); p != nil {
				p.WriteTo(f, 0)
			}
			f.Close()
		}
		t.captures.Inc()
	}()
}

// Captures returns how many sustained-burn profile captures have completed.
func (t *SLOTracker) Captures() uint64 { return t.captures.Load() }

// MetricsInto implements MetricSource: per-verb good/total counters, the
// objective as a gauge, the burn-rate gauge, and the capture counter.
func (t *SLOTracker) MetricsInto(reg *Registry, labels Labels) {
	for _, v := range t.verbs {
		v := v
		l := labels.With("verb", v.obj.Verb)
		reg.Counter("slo_good_total", "Requests meeting the latency objective", l, &v.good)
		reg.Counter("slo_requests_total", "Requests measured against the latency objective", l, &v.total)
		reg.Gauge("slo_objective_seconds", "Latency objective target", l,
			func() float64 { return v.obj.Target.Seconds() })
		reg.Gauge("slo_burn_rate", "Error-budget burn rate over the last window (1.0 = provisioned rate)", l,
			v.BurnRate)
	}
	reg.Counter("slo_profile_captures_total", "Profiles captured on sustained SLO burn", labels, &t.captures)
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
