package obs

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"znscache/internal/stats"
)

// TestParsePromTextRoundTrip feeds the parser the registry's own exposition:
// whatever WritePrometheus emits, the dashboard must read back exactly.
func TestParsePromTextRoundTrip(t *testing.T) {
	reg := NewRegistry()
	var c stats.Counter
	c.Add(41)
	reg.Counter("server_ops_total", "ops", L("verb", "get"), &c)
	reg.Gauge("zns_open_zones", "open", nil, func() float64 { return 3 })
	h := stats.NewHistogram()
	h.Observe(time.Millisecond)
	reg.Histogram("server_stage_latency", "stages", L("stage", "exec"), h)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ParsePromText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Value("server_ops_total", "verb", "get"); !ok || v != 41 {
		t.Fatalf("server_ops_total{verb=get} = %v, %v", v, ok)
	}
	if v, ok := snap.Value("zns_open_zones"); !ok || v != 3 {
		t.Fatalf("zns_open_zones = %v, %v", v, ok)
	}
	if v, ok := snap.Value("server_stage_latency_count", "stage", "exec"); !ok || v != 1 {
		t.Fatalf("stage count = %v, %v", v, ok)
	}
	if _, ok := snap.Value("server_stage_latency", "stage", "exec", "quantile", "0.99"); !ok {
		t.Fatal("quantile series did not round-trip")
	}
	if sum := snap.Sum("server_ops_total"); sum != 41 {
		t.Fatalf("Sum = %v", sum)
	}
}

func TestParsePromTextMalformed(t *testing.T) {
	for _, bad := range []string{
		"justaname",
		"name{unclosed 3",
		"name notanumber",
	} {
		if _, err := ParsePromText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePromText(%q) accepted", bad)
		}
	}
	// Comments and blanks are fine.
	snap, err := ParsePromText(strings.NewReader("# HELP x y\n\nx 1\n"))
	if err != nil || len(snap.Samples) != 1 {
		t.Fatalf("comment handling: %v, %+v", err, snap)
	}
}

// renderSnap builds a snapshot from name/label/value triples for RenderTop.
func renderSnap(at time.Time, samples ...PromSample) *PromSnapshot {
	return &PromSnapshot{At: at, Samples: samples}
}

func TestRenderTopComputesRates(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	prev := renderSnap(t0,
		PromSample{Name: "server_ops_total", Labels: map[string]string{"verb": "get"}, Value: 1000},
		PromSample{Name: "server_get_hits_total", Value: 600},
		PromSample{Name: "server_get_misses_total", Value: 400},
	)
	cur := renderSnap(t0.Add(2*time.Second),
		PromSample{Name: "server_ops_total", Labels: map[string]string{"verb": "get"}, Value: 3000},
		PromSample{Name: "server_get_hits_total", Value: 1400},
		PromSample{Name: "server_get_misses_total", Value: 600},
		PromSample{Name: "server_connections_open", Value: 7},
		PromSample{Name: "server_stage_latency_count", Labels: map[string]string{"stage": "exec"}, Value: 50},
		PromSample{Name: "server_stage_latency", Labels: map[string]string{"stage": "exec", "quantile": "0.5"}, Value: 0.001},
		PromSample{Name: "server_stage_latency", Labels: map[string]string{"stage": "exec", "quantile": "0.99"}, Value: 0.004},
		PromSample{Name: "zns_open_zones", Value: 4},
		PromSample{Name: "slo_burn_rate", Labels: map[string]string{"verb": "get"}, Value: 1.25},
		PromSample{Name: "go_goroutines", Value: 12},
	)
	var buf bytes.Buffer
	RenderTop(&buf, "http://x/metrics", prev, cur)
	out := buf.String()
	for _, want := range []string{
		"ops/s 1000",   // (3000-1000)/2s
		"hit 0.800",    // interval hits 800 / lookups 1000
		"exec",         // stage row present
		"1.00ms",       // exec p50
		"zones open 4", // device panel
		"slo burn  get 1.25",
		"goroutines 12",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// First frame has no rates.
	buf.Reset()
	RenderTop(&buf, "http://x/metrics", nil, cur)
	if !strings.Contains(buf.String(), "ops/s -") {
		t.Fatalf("first frame should render '-' rates:\n%s", buf.String())
	}
}

func TestRenderTopSkipsEmptyStages(t *testing.T) {
	cur := renderSnap(time.Now(),
		PromSample{Name: "server_stage_latency_count", Labels: map[string]string{"stage": "exec"}, Value: 0},
	)
	var buf bytes.Buffer
	RenderTop(&buf, "u", nil, cur)
	if strings.Contains(buf.String(), "server stages") {
		t.Fatalf("stage panel rendered with zero samples:\n%s", buf.String())
	}
}

func TestRunTopAgainstLiveEndpoint(t *testing.T) {
	reg := NewRegistry()
	var ops stats.Counter
	reg.Counter("server_ops_total", "ops", nil, &ops)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ops.Add(100)
		reg.WritePrometheus(w) //nolint:errcheck
	}))
	defer srv.Close()

	var buf bytes.Buffer
	err := RunTop(TopConfig{
		URL:      srv.URL,
		Interval: 10 * time.Millisecond,
		Out:      &buf,
		Frames:   3,
		Plain:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "znscache top"); got != 3 {
		t.Fatalf("rendered %d frames, want 3:\n%s", got, out)
	}
	if strings.Contains(out, "\x1b[") {
		t.Fatal("Plain mode emitted ANSI control sequences")
	}
}

func TestRunTopFailsAfterTwoScrapeErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer srv.Close()
	err := RunTop(TopConfig{URL: srv.URL, Interval: 5 * time.Millisecond, Out: &bytes.Buffer{}})
	if err == nil {
		t.Fatal("RunTop kept polling a broken endpoint")
	}
}
