package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// expvarName is the /debug/vars key the registry is published under.
const expvarName = "znscache"

// NewMux builds the exposition mux for a registry:
//
//	/metrics       Prometheus text format (live, scrape-consistent)
//	/debug/vars    expvar JSON, including the registry under "znscache"
//	/debug/pprof/  the standard Go profiling endpoints
//
// The registry stays live — series registered after the mux is built appear
// on the next scrape.
func NewMux(reg *Registry) *http.ServeMux {
	reg.PublishExpvar(expvarName)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // client went away
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "znscache observability\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Server is a started exposition server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer listens on addr (e.g. ":8080" or "127.0.0.1:0") and serves the
// exposition mux in a background goroutine. The caller owns shutdown via
// Close; bench binaries typically let process exit take it down. Go runtime
// telemetry (GC pauses, heap bytes, goroutines, GOGC) registers on reg here,
// so every binary that exposes a -metrics-addr exports it without its own
// wiring.
func StartServer(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	RuntimeMetricsInto(reg, nil)
	s := &Server{ln: ln, srv: &http.Server{Handler: NewMux(reg)}}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// closeGrace is how long Close lets in-flight scrapes finish before their
// connections are hard-closed.
const closeGrace = 2 * time.Second

// Shutdown stops the server gracefully: the listener closes immediately so
// no new scrape starts, but requests already being served get until ctx's
// deadline to complete. It returns ctx.Err() if the deadline expires first.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.srv.Shutdown(ctx)
}

// Close stops the server, letting in-flight scrapes complete within a short
// grace period. A Prometheus scrape racing a cacheserver shutdown gets its
// full body instead of a severed connection; only scrapes still running
// after the grace are hard-closed.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), closeGrace)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}
