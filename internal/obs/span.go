package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"znscache/internal/stats"
)

// This file is the request-stage span layer (DESIGN.md §13): a sampled,
// low-overhead attribution of where wall-clock time goes inside one served
// request. The serving path accumulates per-stage durations into a Span and
// settles it against a shared SpanRecorder at each pipeline-batch boundary;
// the cache engine observes its own stages (fast vs locked get, set publish,
// region flush, store I/O) directly. A nil *SpanRecorder disables everything
// at the cost of one pointer test per site — the serving path must cost ~zero
// with spans off, which the benchmark in span_test.go and the CI
// bench-compare step both check.

// Stage identifies one segment of a request's life. Server-side stages are
// exported as server_stage_latency{stage=...}; cache-side stages as
// cache_stage_latency{stage=...}.
type Stage uint8

// Request stages. The server stages partition a batch's serving time:
// queue_wait + exec equals the batch's server_request_latency observation
// exactly, while sock_read/parse happen before the measured request window
// and flush after it.
const (
	// StageSockRead is time blocked reading request bytes mid-batch (a
	// stalled sender). Idle time waiting for a batch's first command is
	// client think time, not request latency, and is excluded.
	StageSockRead Stage = iota
	// StageParse is command parsing, including set-body consumption.
	StageParse
	// StageQueueWait is time a batch's shard write groups waited in the
	// dispatch queues before a worker picked them up (max across groups).
	StageQueueWait
	// StageExec is batch execution minus queue wait: engine work on the
	// shard workers plus lock-free gets on the connection goroutine.
	StageExec
	// StageFlush is the response writev.
	StageFlush

	// StageFastGet is a lock-free read-index get (cache side).
	StageFastGet
	// StageLockedGet is a get that fell back to the shard write lock.
	StageLockedGet
	// StageSetPublish is a set's engine path: append, index, read-index
	// publish.
	StageSetPublish
	// StageRegionFlush is a region roll: flush submission, pipeline waits,
	// eviction bookkeeping.
	StageRegionFlush
	// StageStoreIO is the wall-clock cost of store read/write calls inside
	// the engine. The devices are simulated, so this is simulator compute,
	// not device time — device latency lives on the virtual clock.
	StageStoreIO

	stageCount
)

// serverStageEnd is the first cache-side stage; stages below it register as
// server_stage_latency, the rest as cache_stage_latency.
const serverStageEnd = StageFastGet

var stageNames = [stageCount]string{
	"sock_read", "parse", "queue_wait", "exec", "flush",
	"fast_get", "locked_get", "set_publish", "region_flush", "store_io",
}

// String names the stage as its Prometheus label value.
func (st Stage) String() string {
	if int(st) < len(stageNames) {
		return stageNames[st]
	}
	return fmt.Sprintf("Stage(%d)", uint8(st))
}

// Span accumulates one request batch's per-stage durations. It is plain
// storage owned by one goroutine (the server keeps one per connection);
// settling it against the recorder is what costs a lock.
type Span struct {
	durs [stageCount]time.Duration
}

// Add accumulates d into stage st.
func (s *Span) Add(st Stage, d time.Duration) { s.durs[st] += d }

// Get returns the accumulated duration of stage st.
func (s *Span) Get(st Stage) time.Duration { return s.durs[st] }

// Total sums every stage.
func (s *Span) Total() time.Duration {
	var t time.Duration
	for _, d := range s.durs {
		t += d
	}
	return t
}

// Reset clears the span for the next batch.
func (s *Span) Reset() { s.durs = [stageCount]time.Duration{} }

// SlowRequest is one slow-request exemplar: the full stage breakdown of a
// batch that exceeded the recorder's SlowThreshold, with enough identity
// (verb, key, shard, batch size) to chase it through the logs. The key and
// verb are the batch's first op — an exemplar, not a census.
type SlowRequest struct {
	At       time.Time     `json:"at"`
	Verb     string        `json:"verb"`
	Key      string        `json:"key"`
	Shard    int           `json:"shard"`
	BatchOps int           `json:"batch_ops"`
	Total    time.Duration `json:"total_ns"`

	stages [stageCount]time.Duration
}

// Stages returns the breakdown as stage-name → nanoseconds, the form the
// JSON export uses.
func (sr *SlowRequest) Stages() map[string]int64 {
	out := make(map[string]int64, stageCount)
	for i, d := range sr.stages {
		if d > 0 {
			out[stageNames[i]] = int64(d)
		}
	}
	return out
}

// MarshalJSON flattens the stage array into a named map so the exemplar log
// is readable without the Stage enum.
func (sr *SlowRequest) MarshalJSON() ([]byte, error) {
	type wire struct {
		At       time.Time        `json:"at"`
		Verb     string           `json:"verb"`
		Key      string           `json:"key"`
		Shard    int              `json:"shard"`
		BatchOps int              `json:"batch_ops"`
		TotalNs  int64            `json:"total_ns"`
		Stages   map[string]int64 `json:"stages_ns"`
	}
	return json.Marshal(wire{
		At: sr.At, Verb: sr.Verb, Key: sr.Key, Shard: sr.Shard,
		BatchOps: sr.BatchOps, TotalNs: int64(sr.Total), Stages: sr.Stages(),
	})
}

// SpanConfig parameterizes a SpanRecorder. Zero values select the defaults
// noted on each field.
type SpanConfig struct {
	// SampleEvery observes 1 in every N settled spans into the stage
	// histograms (default 64; 1 samples everything). Stage durations are
	// still collected for every batch while a recorder is installed — the
	// handful of time.Now calls are cheap — so the slow-request exemplar
	// log misses nothing; sampling only bounds histogram lock traffic.
	SampleEvery int
	// SlowThreshold records a SlowRequest exemplar for every batch whose
	// stage total meets it, sampled or not (default 50ms; negative
	// disables the exemplar log).
	SlowThreshold time.Duration
	// SlowLogCap bounds the exemplar ring, newest kept (default 256).
	SlowLogCap int
}

// SpanRecorder aggregates spans from many goroutines: per-stage latency
// histograms (sampled) plus a bounded slow-request exemplar ring (exact).
// All methods are safe for concurrent use. A nil recorder means spans are
// off; call sites guard with one pointer test and touch no clocks.
type SpanRecorder struct {
	every   uint64
	slowThr time.Duration
	ctr     atomic.Uint64
	hists   [stageCount]*stats.Histogram
	sampled stats.Counter // spans observed into the histograms

	slowMu    sync.Mutex
	slowRing  []SlowRequest
	slowNext  int
	slowTotal uint64
}

// NewSpanRecorder builds a recorder per cfg.
func NewSpanRecorder(cfg SpanConfig) *SpanRecorder {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 64
	}
	switch {
	case cfg.SlowThreshold == 0:
		cfg.SlowThreshold = 50 * time.Millisecond
	case cfg.SlowThreshold < 0:
		cfg.SlowThreshold = 0
	}
	if cfg.SlowLogCap <= 0 {
		cfg.SlowLogCap = 256
	}
	r := &SpanRecorder{every: uint64(cfg.SampleEvery), slowThr: cfg.SlowThreshold}
	if cfg.SlowThreshold > 0 {
		r.slowRing = make([]SlowRequest, 0, cfg.SlowLogCap)
	}
	for i := range r.hists {
		r.hists[i] = stats.NewHistogram()
	}
	return r
}

// SampleNow draws from the shared 1-in-SampleEvery sequence: exactly one in
// every consecutive `every` calls returns true, across all goroutines.
func (r *SpanRecorder) SampleNow() bool {
	return r.ctr.Add(1)%r.every == 0
}

// SlowThreshold returns the exemplar threshold (0 when the log is disabled).
func (r *SpanRecorder) SlowThreshold() time.Duration { return r.slowThr }

// Observe records one stage sample directly — the cache-side entry point,
// where a stage is a whole operation rather than a batch segment.
func (r *SpanRecorder) Observe(st Stage, d time.Duration) {
	r.hists[st].Observe(d)
}

// Settle folds a finished span into the recorder: its stages land in the
// histograms when sampled says so, and a SlowRequest exemplar is recorded —
// regardless of sampling — when the stage total meets the threshold. id
// supplies the exemplar identity; it is only read on the slow path.
func (r *SpanRecorder) Settle(sp *Span, sampled bool, id SlowRequest) {
	if sampled {
		for i := range sp.durs {
			if i >= int(serverStageEnd) {
				break // cache stages observe themselves
			}
			r.hists[i].Observe(sp.durs[i])
		}
		r.sampled.Inc()
	}
	if r.slowThr <= 0 {
		return
	}
	total := sp.Total()
	if total < r.slowThr {
		return
	}
	id.At = time.Now()
	id.Total = total
	id.stages = sp.durs
	r.slowMu.Lock()
	if len(r.slowRing) < cap(r.slowRing) {
		r.slowRing = append(r.slowRing, id)
	} else {
		r.slowRing[r.slowNext] = id
		r.slowNext = (r.slowNext + 1) % cap(r.slowRing)
	}
	r.slowTotal++
	r.slowMu.Unlock()
}

// StageSnapshot returns stage st's histogram snapshot.
func (r *SpanRecorder) StageSnapshot(st Stage) stats.HistSnapshot {
	return r.hists[st].Snapshot()
}

// SampledCount returns how many spans were observed into the histograms.
func (r *SpanRecorder) SampledCount() uint64 { return r.sampled.Load() }

// SlowTotal returns how many slow exemplars were recorded over the
// recorder's lifetime (the ring retains only the newest SlowLogCap).
func (r *SpanRecorder) SlowTotal() uint64 {
	r.slowMu.Lock()
	defer r.slowMu.Unlock()
	return r.slowTotal
}

// SlowRequests returns the retained exemplars, oldest first.
func (r *SpanRecorder) SlowRequests() []SlowRequest {
	r.slowMu.Lock()
	defer r.slowMu.Unlock()
	out := make([]SlowRequest, 0, len(r.slowRing))
	out = append(out, r.slowRing[r.slowNext:]...)
	out = append(out, r.slowRing[:r.slowNext]...)
	return out
}

// WriteSlowLog renders the retained exemplars as indented JSON.
func (r *SpanRecorder) WriteSlowLog(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	reqs := r.SlowRequests()
	out := make([]*SlowRequest, len(reqs))
	for i := range reqs {
		out[i] = &reqs[i]
	}
	return enc.Encode(out)
}

// MetricsInto implements MetricSource: server stages register as
// server_stage_latency{stage=...}, cache stages as
// cache_stage_latency{stage=...}, plus the sampling and slow-log counters.
func (r *SpanRecorder) MetricsInto(reg *Registry, labels Labels) {
	for st := Stage(0); st < stageCount; st++ {
		name := "server_stage_latency"
		help := "Per-stage wall-clock request latency (sampled spans)"
		if st >= serverStageEnd {
			name = "cache_stage_latency"
			help = "Per-stage wall-clock cache-engine latency (sampled operations)"
		}
		reg.Histogram(name, help, labels.With("stage", st.String()), r.hists[st])
	}
	reg.Counter("span_sampled_total", "Request spans observed into the stage histograms", labels, &r.sampled)
	reg.CounterFunc("span_slow_requests_total", "Slow-request exemplars recorded", labels, r.SlowTotal)
}
