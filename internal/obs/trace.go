package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventType identifies what happened. The set covers the lifecycle moments
// the paper's analysis hinges on: zone reclaim (resets), region seals
// (flushes), GC victim selection and its migrate/drop decisions, admission
// decisions, and region evictions.
type EventType uint8

// Event types.
const (
	// EvZoneReset: a zone was reset (Zone = zone index).
	EvZoneReset EventType = iota + 1
	// EvZoneFinish: a zone was finished / transitioned to full.
	EvZoneFinish
	// EvRegionSeal: the engine flushed a region buffer to the store
	// (Region = region id, Bytes = fill bytes).
	EvRegionSeal
	// EvGCVictim: the middle layer selected a GC victim zone
	// (Zone = victim, Bytes = live regions at selection).
	EvGCVictim
	// EvGCMigrate: GC migrated one live region out of the victim
	// (Zone = victim, Region = region id, Bytes = region size).
	EvGCMigrate
	// EvGCDrop: GC dropped a cold region via the co-design filter
	// (Zone = victim, Region = region id).
	EvGCDrop
	// EvAdmit: the engine accepted an insert (Bytes = item size).
	EvAdmit
	// EvReject: the admission policy rejected an insert (Bytes = item size).
	EvReject
	// EvEvict: the engine evicted a region (Region = region id,
	// Bytes = keys dropped from the index).
	EvEvict
	// EvSlowRequest: the network server finished a request slower than its
	// configured threshold (T = wall-clock time since the server started,
	// Bytes = request latency in nanoseconds, Zone/Region = -1). The one
	// event type measured on the wall clock rather than the simulated one.
	EvSlowRequest
)

// String names the event type for JSON export and diagnostics.
func (t EventType) String() string {
	switch t {
	case EvZoneReset:
		return "zone_reset"
	case EvZoneFinish:
		return "zone_finish"
	case EvRegionSeal:
		return "region_seal"
	case EvGCVictim:
		return "gc_victim"
	case EvGCMigrate:
		return "gc_migrate"
	case EvGCDrop:
		return "gc_drop"
	case EvAdmit:
		return "admit"
	case EvReject:
		return "reject"
	case EvEvict:
		return "evict"
	case EvSlowRequest:
		return "slow_request"
	}
	return fmt.Sprintf("EventType(%d)", uint8(t))
}

// Event is one trace record. T is simulated time; Zone and Region are -1
// when not applicable; Bytes carries the event's magnitude (see the type
// constants).
type Event struct {
	T      time.Duration
	Type   EventType
	Zone   int32
	Region int32
	Bytes  int64
}

// eventJSON is the export form: type as a name, time in nanoseconds.
type eventJSON struct {
	TimeNs int64  `json:"t_ns"`
	Type   string `json:"type"`
	Zone   int32  `json:"zone"`
	Region int32  `json:"region"`
	Bytes  int64  `json:"bytes"`
}

// TraceSink receives every event as it is emitted, after it is recorded in
// the ring. Implementations must be safe for concurrent calls when the
// traced layers run concurrently (the sharded frontend, parallel sweeps).
type TraceSink interface {
	TraceEvent(Event)
}

// Tracer is a bounded ring of Events. Tracing is opt-in: layers hold a
// *Tracer that is nil when disabled, and Emit on a nil receiver returns
// immediately — the disabled cost is one pointer test at the call site.
// When enabled, emission is a mutex-guarded ring append (no allocation).
type Tracer struct {
	mu    sync.Mutex
	buf   []Event
	start int    // oldest slot once the ring has wrapped
	n     int    // occupied slots
	total uint64 // lifetime emitted, including overwritten
	sink  TraceSink
}

// DefaultTraceCap bounds a tracer when the caller passes 0: enough for the
// full region/zone churn of any harness experiment without unbounded growth.
const DefaultTraceCap = 1 << 16

// NewTracer returns a tracer retaining the most recent cap events
// (cap <= 0 uses DefaultTraceCap).
func NewTracer(cap int) *Tracer {
	if cap <= 0 {
		cap = DefaultTraceCap
	}
	return &Tracer{buf: make([]Event, cap)}
}

// SetSink attaches a sink receiving every subsequent event. Pass nil to
// detach.
func (t *Tracer) SetSink(s TraceSink) {
	t.mu.Lock()
	t.sink = s
	t.mu.Unlock()
}

// Emit records one event. Safe on a nil receiver (no-op), which is how
// layers express "tracing disabled" without a flag check.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.n == len(t.buf) {
		t.buf[t.start] = e
		t.start = (t.start + 1) % len(t.buf)
	} else {
		t.buf[(t.start+t.n)%len(t.buf)] = e
		t.n++
	}
	t.total++
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink.TraceEvent(e)
	}
}

// Total returns how many events were emitted over the tracer's lifetime,
// including ones the ring has since overwritten. Zero on a nil tracer.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events returns the retained events, oldest first. The slice is a copy.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}

// Reset discards all retained events (the lifetime total is kept).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.start, t.n = 0, 0
	t.mu.Unlock()
}

// WriteJSON exports the retained events as a JSON array, oldest first, with
// event types as names and timestamps in simulated nanoseconds.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Events()
	out := make([]eventJSON, len(events))
	for i, e := range events {
		out[i] = eventJSON{
			TimeNs: int64(e.T),
			Type:   e.Type.String(),
			Zone:   e.Zone,
			Region: e.Region,
			Bytes:  e.Bytes,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
