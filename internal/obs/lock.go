package obs

import (
	"runtime"
	"runtime/pprof"
)

// Lock-contention observability: the serving layer's whole point is to keep
// requests off the shard mutexes, so contention must be measurable. Go's
// runtime already meters it (mutex and block profiles); this file turns the
// sampling on and exposes the profile sample counts as gauges, so a scrape
// shows contention trending without pulling a full pprof dump — and the
// /debug/pprof/mutex and /debug/pprof/block endpoints on the obs HTTP server
// serve the detailed stacks for the CI artifacts.

// SetLockProfiling enables runtime mutex and block profiling at the given
// sampling rate (1 = every event; higher rates sample 1/rate mutex events
// and block events costing ≥ rate ns). Rate ≤ 0 disables both.
func SetLockProfiling(rate int) {
	if rate <= 0 {
		runtime.SetMutexProfileFraction(0)
		runtime.SetBlockProfileRate(0)
		return
	}
	runtime.SetMutexProfileFraction(rate)
	runtime.SetBlockProfileRate(rate)
}

// LockMetricsInto registers gauges for the runtime's lock-contention
// profiles: the number of recorded contention sample sites in the mutex and
// block profiles. Zero when profiling is off (SetLockProfiling not called).
func LockMetricsInto(r *Registry, labels Labels) {
	mutex := pprof.Lookup("mutex")
	block := pprof.Lookup("block")
	r.Gauge("runtime_mutex_profile_samples", "Recorded mutex-contention sample sites",
		labels, func() float64 {
			if mutex == nil {
				return 0
			}
			return float64(mutex.Count())
		})
	r.Gauge("runtime_block_profile_samples", "Recorded blocking sample sites",
		labels, func() float64 {
			if block == nil {
				return 0
			}
			return float64(block.Count())
		})
}
