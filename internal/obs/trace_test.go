package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Type: EvZoneReset})
	tr.Reset()
	if tr.Total() != 0 {
		t.Fatal("nil tracer reported nonzero total")
	}
	if tr.Events() != nil {
		t.Fatal("nil tracer returned events")
	}
}

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{T: time.Duration(i), Type: EvAdmit})
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	// Newest 4, oldest first: T = 6, 7, 8, 9.
	for i, e := range events {
		if want := time.Duration(6 + i); e.T != want {
			t.Fatalf("events[%d].T = %d, want %d", i, e.T, want)
		}
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{Type: EvEvict})
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Fatal("Reset left events behind")
	}
	if tr.Total() != 1 {
		t.Fatalf("Reset cleared the lifetime total: %d", tr.Total())
	}
}

type recordingSink struct {
	mu     sync.Mutex
	events []Event
}

func (s *recordingSink) TraceEvent(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func TestTracerSink(t *testing.T) {
	tr := NewTracer(2)
	sink := &recordingSink{}
	tr.SetSink(sink)
	tr.Emit(Event{Type: EvGCVictim, Zone: 5})
	tr.SetSink(nil)
	tr.Emit(Event{Type: EvGCMigrate})
	if len(sink.events) != 1 || sink.events[0].Zone != 5 {
		t.Fatalf("sink saw %+v, want the single pre-detach event", sink.events)
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{T: 1500, Type: EvZoneReset, Zone: 3, Region: -1, Bytes: 4096})
	tr.Emit(Event{T: 2500, Type: EvRegionSeal, Zone: -1, Region: 7, Bytes: 1 << 20})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		TimeNs int64  `json:"t_ns"`
		Type   string `json:"type"`
		Zone   int32  `json:"zone"`
		Region int32  `json:"region"`
		Bytes  int64  `json:"bytes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d events, want 2", len(decoded))
	}
	if decoded[0].Type != "zone_reset" || decoded[0].Zone != 3 || decoded[0].TimeNs != 1500 {
		t.Fatalf("first event = %+v", decoded[0])
	}
	if decoded[1].Type != "region_seal" || decoded[1].Region != 7 || decoded[1].Bytes != 1<<20 {
		t.Fatalf("second event = %+v", decoded[1])
	}
}

func TestEventTypeNames(t *testing.T) {
	named := map[EventType]string{
		EvZoneReset: "zone_reset", EvZoneFinish: "zone_finish",
		EvRegionSeal: "region_seal", EvGCVictim: "gc_victim",
		EvGCMigrate: "gc_migrate", EvGCDrop: "gc_drop",
		EvAdmit: "admit", EvReject: "reject", EvEvict: "evict",
	}
	for ty, want := range named {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
	if got := EventType(200).String(); got != "EventType(200)" {
		t.Errorf("unknown type rendered %q", got)
	}
}

// TestTracerConcurrent hammers one tracer from several goroutines under
// -race; the sharded frontend emits from concurrent shards.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	tr.SetSink(&recordingSink{})
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Emit(Event{T: time.Duration(i), Type: EvAdmit})
			}
		}()
	}
	for i := 0; i < 100; i++ {
		tr.Events()
		tr.Total()
	}
	wg.Wait()
	if tr.Total() != goroutines*per {
		t.Fatalf("total = %d, want %d", tr.Total(), goroutines*per)
	}
	if len(tr.Events()) != 64 {
		t.Fatalf("retained %d, want full ring of 64", len(tr.Events()))
	}
}
