package obs

import (
	"math"
	"runtime/metrics"
	"strings"
	"testing"
)

func TestRuntimeMetricsIntoValues(t *testing.T) {
	reg := NewRegistry()
	RuntimeMetricsInto(reg, L("job", "test"))
	got := map[string]float64{}
	for _, s := range reg.Gather() {
		if s.Labels.Get("job") != "test" {
			t.Fatalf("runtime sample lost its labels: %+v", s)
		}
		got[s.Name] += s.Value
	}
	if got["go_goroutines"] < 1 {
		t.Fatalf("go_goroutines = %v, want ≥ 1", got["go_goroutines"])
	}
	if got["go_heap_objects_bytes"] <= 0 {
		t.Fatalf("go_heap_objects_bytes = %v, want > 0", got["go_heap_objects_bytes"])
	}
	if got["go_gogc_percent"] <= 0 {
		t.Fatalf("go_gogc_percent = %v, want > 0", got["go_gogc_percent"])
	}
}

func TestRuntimeMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	RuntimeMetricsInto(reg, nil)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"go_goroutines", "go_heap_objects_bytes", "go_gc_heap_goal_bytes",
		"go_gogc_percent", "go_gc_cycles_total",
		`go_gc_pause_seconds{quantile="0.5"}`,
		`go_gc_pause_seconds{quantile="0.99"}`,
		`go_gc_pause_seconds{quantile="1"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestHistQuantile(t *testing.T) {
	if histQuantile(nil, 0.5) != 0 {
		t.Fatal("nil histogram should reduce to 0")
	}
	h := &metrics.Float64Histogram{
		Counts:  []uint64{0, 0},
		Buckets: []float64{0, 1, 2},
	}
	if histQuantile(h, 0.5) != 0 {
		t.Fatal("empty histogram should reduce to 0")
	}
	// 10 samples in [0,1), 90 in [1,2): p50 and p99 land in the second
	// bucket, p0.05 in the first.
	h.Counts = []uint64{10, 90}
	if got := histQuantile(h, 0.05); got != 1 {
		t.Fatalf("p5 = %v, want upper bound 1", got)
	}
	if got := histQuantile(h, 0.99); got != 2 {
		t.Fatalf("p99 = %v, want upper bound 2", got)
	}
	// A +Inf tail clamps to the last finite edge.
	h = &metrics.Float64Histogram{
		Counts:  []uint64{1, 1},
		Buckets: []float64{0, 1, math.Inf(1)},
	}
	if got := histQuantile(h, 1); got != 1 {
		t.Fatalf("p100 with +Inf tail = %v, want clamp to 1", got)
	}
}
