package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"znscache/internal/stats"
)

// Kind classifies a registered metric.
type Kind uint8

// Metric kinds. Histograms are exposed in Prometheus text as summaries
// (quantile series plus _sum and _count), derived from a consistent
// single-lock stats.HistSnapshot at scrape time.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind as the Prometheus TYPE line does.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "summary"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// metric is one registered series.
type metric struct {
	name    string
	help    string
	kind    Kind
	labels  Labels
	counter func() uint64    // KindCounter
	gauge   func() float64   // KindGauge
	hist    *stats.Histogram // KindHistogram
}

// key identifies a series: name plus rendered labels.
func (m *metric) key() string { return m.name + m.labels.String() }

// Sample is one gathered series value. Exactly one of Value (counters,
// gauges) or Hist (histograms) is meaningful, selected by Kind.
type Sample struct {
	Name   string
	Labels Labels
	Kind   Kind
	Value  float64
	Hist   stats.HistSnapshot
}

// Registry is a named, labeled collection of metric instruments. Instruments
// are registered by reference (the registry reads them live at gather time),
// so a layer's own accounting and the exposition can never disagree.
// Registering a series whose (name, labels) already exist replaces the old
// entry — rebuilding a rig re-binds its series rather than erroring, and the
// exposition never emits duplicate series.
type Registry struct {
	mu      sync.RWMutex
	metrics []*metric
	byKey   map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]int)}
}

// register installs m, replacing any series with the same name and labels.
func (r *Registry) register(m *metric) {
	k := m.key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byKey[k]; ok {
		r.metrics[i] = m
		return
	}
	r.byKey[k] = len(r.metrics)
	r.metrics = append(r.metrics, m)
}

// Counter registers an existing stats.Counter under name.
func (r *Registry) Counter(name, help string, labels Labels, c *stats.Counter) {
	r.CounterFunc(name, help, labels, c.Load)
}

// CounterFunc registers a counter read through fn at gather time. fn must be
// safe to call concurrently with the instrumented code.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	r.register(&metric{name: name, help: help, kind: KindCounter, labels: labels, counter: fn})
}

// Gauge registers a gauge read through fn at gather time. fn must be safe to
// call concurrently with the instrumented code.
func (r *Registry) Gauge(name, help string, labels Labels, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: KindGauge, labels: labels, gauge: fn})
}

// Histogram registers a latency histogram. It is exposed as a summary with
// quantiles 0.5/0.9/0.99/0.999 in seconds, plus _sum and _count.
func (r *Registry) Histogram(name, help string, labels Labels, h *stats.Histogram) {
	r.register(&metric{name: name, help: help, kind: KindHistogram, labels: labels, hist: h})
}

// WriteAmp registers a write-amplification accumulator as three series:
// <name>_host_bytes_total, <name>_media_bytes_total, and <name>_factor.
func (r *Registry) WriteAmp(name, help string, labels Labels, wa *stats.WriteAmp) {
	r.CounterFunc(name+"_host_bytes_total", help+" (bytes written by this layer's client)", labels, wa.Host)
	r.CounterFunc(name+"_media_bytes_total", help+" (bytes this layer wrote to the layer below)", labels, wa.Media)
	r.Gauge(name+"_factor", help+" (media/host ratio)", labels, wa.Factor)
}

// HitRatio registers a hit/miss accumulator as two counters and a ratio
// gauge: <name>_hits_total, <name>_misses_total, <name>_ratio.
func (r *Registry) HitRatio(name, help string, labels Labels, hr *stats.HitRatio) {
	r.CounterFunc(name+"_hits_total", help+" (hits)", labels, hr.Hits)
	r.CounterFunc(name+"_misses_total", help+" (misses)", labels, hr.Misses)
	r.Gauge(name+"_ratio", help+" (hits over lookups)", labels, hr.Ratio)
}

// Len reports the number of registered series.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.metrics)
}

// Gather reads every registered series. Counter and gauge samples carry
// Value; histogram samples carry a consistent Hist snapshot. Order is
// registration order.
func (r *Registry) Gather() []Sample {
	r.mu.RLock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.RUnlock()

	out := make([]Sample, 0, len(ms))
	for _, m := range ms {
		s := Sample{Name: m.name, Labels: m.labels, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			s.Value = float64(m.counter())
		case KindGauge:
			s.Value = m.gauge()
		case KindHistogram:
			s.Hist = m.hist.Snapshot()
		}
		out = append(out, s)
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Series sharing a name are grouped under one
// HELP/TYPE header, as the format requires; group order follows first
// registration, series order within a group follows registration order, so
// the output is deterministic for a fixed registration sequence. Histogram
// quantiles and sums are reported in seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.RUnlock()

	names := make([]string, 0, len(ms))
	byName := make(map[string][]*metric, len(ms))
	for _, m := range ms {
		if _, ok := byName[m.name]; !ok {
			names = append(names, m.name)
		}
		byName[m.name] = append(byName[m.name], m)
	}
	for _, name := range names {
		group := byName[name]
		head := group[0]
		if head.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, head.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, head.kind); err != nil {
			return err
		}
		for _, m := range group {
			if err := writeSeries(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one metric's sample lines.
func writeSeries(w io.Writer, m *metric) error {
	switch m.kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.counter())
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", m.name, m.labels, formatFloat(m.gauge()))
		return err
	case KindHistogram:
		s := m.hist.Snapshot()
		for _, q := range [...]struct {
			q string
			v float64
		}{
			{"0.5", s.P50.Seconds()},
			{"0.9", s.P90.Seconds()},
			{"0.99", s.P99.Seconds()},
			{"0.999", s.P999.Seconds()},
		} {
			ql := m.labels.With("quantile", q.q)
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.name, ql, formatFloat(q.v)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.name, m.labels, formatFloat(s.Sum.Seconds())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.labels, s.Count)
		return err
	}
	return fmt.Errorf("obs: unknown metric kind %v", m.kind)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trippable representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// expvarSnapshot renders the registry as a JSON-friendly map for /debug/vars:
// "name{labels}" -> value for counters and gauges, -> {count, sum_ns, p50_ns,
// ...} for histograms. Keys are sorted so the output is stable.
func (r *Registry) expvarSnapshot() map[string]interface{} {
	samples := r.Gather()
	out := make(map[string]interface{}, len(samples))
	for _, s := range samples {
		key := s.Name + s.Labels.String()
		switch s.Kind {
		case KindCounter:
			out[key] = uint64(s.Value)
		case KindGauge:
			out[key] = s.Value
		case KindHistogram:
			out[key] = map[string]interface{}{
				"count":   s.Hist.Count,
				"sum_ns":  int64(s.Hist.Sum),
				"mean_ns": int64(s.Hist.Mean),
				"p50_ns":  int64(s.Hist.P50),
				"p90_ns":  int64(s.Hist.P90),
				"p99_ns":  int64(s.Hist.P99),
				"p999_ns": int64(s.Hist.P999),
				"max_ns":  int64(s.Hist.Max),
			}
		}
	}
	return out
}

// PublishExpvar exposes the registry under the given expvar name (visible at
// /debug/vars). Publishing the same name twice is a no-op rather than the
// panic expvar.Publish would raise, so binaries can call it unconditionally.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() interface{} { return r.expvarSnapshot() }))
}

// SortSamples orders samples by name, then rendered labels — a convenience
// for consumers (zonectl's watch dump, tests) that want a stable view
// independent of registration order.
func SortSamples(samples []Sample) {
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].Name != samples[j].Name {
			return samples[i].Name < samples[j].Name
		}
		return samples[i].Labels.String() < samples[j].Labels.String()
	})
}
