package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// Go runtime telemetry via runtime/metrics, registered automatically by
// StartServer so every binary that takes -metrics-addr exports it: GC pause
// distribution, heap bytes, goroutine count, GOGC, GC cycle count. Samples
// are read at most once per runtimeSampleInterval per scrape, so a tight
// scrape loop cannot turn the runtime read into overhead.

const runtimeSampleInterval = time.Second

var runtimeNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/heap/goal:bytes",
	"/gc/gogc:percent",
	"/gc/cycles/total:gc-cycles",
	"/sched/pauses/total/gc:seconds",
}

// runtimeSampler caches one runtime/metrics read per interval.
type runtimeSampler struct {
	mu      sync.Mutex
	last    time.Time
	samples []metrics.Sample
}

func newRuntimeSampler() *runtimeSampler {
	s := &runtimeSampler{samples: make([]metrics.Sample, len(runtimeNames))}
	for i, n := range runtimeNames {
		s.samples[i].Name = n
	}
	return s
}

// value returns sample i as a float64, refreshing the whole sample set when
// the cache is stale. Histogram-kind samples reduce via reduce (nil → 0).
func (s *runtimeSampler) value(i int, reduce func(*metrics.Float64Histogram) float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := time.Now(); now.Sub(s.last) >= runtimeSampleInterval {
		metrics.Read(s.samples)
		s.last = now
	}
	switch sm := s.samples[i]; sm.Value.Kind() {
	case metrics.KindUint64:
		return float64(sm.Value.Uint64())
	case metrics.KindFloat64:
		return sm.Value.Float64()
	case metrics.KindFloat64Histogram:
		if reduce != nil {
			return reduce(sm.Value.Float64Histogram())
		}
	}
	return 0
}

// histQuantile returns the q-quantile upper bucket bound of a runtime
// histogram, in seconds. 0 for an empty histogram.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Bucket i spans Buckets[i]..Buckets[i+1]; report the upper
			// bound, clamping the +Inf tail to the last finite edge.
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) {
				ub = h.Buckets[i]
			}
			return ub
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// RuntimeMetricsInto registers Go runtime telemetry on reg. It is invoked by
// StartServer for every -metrics-addr binary; call it directly only for a
// registry that never passes through StartServer.
func RuntimeMetricsInto(reg *Registry, labels Labels) {
	s := newRuntimeSampler()
	gauges := []struct {
		idx  int
		name string
		help string
	}{
		{0, "go_goroutines", "Live goroutines"},
		{1, "go_heap_objects_bytes", "Bytes of live heap objects"},
		{2, "go_gc_heap_goal_bytes", "Heap size target of the next GC cycle"},
		{3, "go_gogc_percent", "GOGC in effect"},
	}
	for _, g := range gauges {
		idx := g.idx
		reg.Gauge(g.name, g.help, labels, func() float64 { return s.value(idx, nil) })
	}
	reg.CounterFunc("go_gc_cycles_total", "Completed GC cycles", labels,
		func() uint64 { return uint64(s.value(4, nil)) })
	for _, q := range []struct {
		q     float64
		label string
	}{{0.5, "0.5"}, {0.99, "0.99"}, {1, "1"}} {
		q := q
		reg.Gauge("go_gc_pause_seconds", "GC stop-the-world pause quantile since process start",
			labels.With("quantile", q.label),
			func() float64 {
				return s.value(5, func(h *metrics.Float64Histogram) float64 {
					return histQuantile(h, q.q)
				})
			})
	}
}
