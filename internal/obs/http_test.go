package obs

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"znscache/internal/stats"
)

func TestMuxMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	var c stats.Counter
	c.Add(9)
	r.Counter("zns_zone_resets_total", "Zone resets", L("zone", "2"), &c)
	mux := NewMux(r)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics content-type %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `zns_zone_resets_total{zone="2"} 9`) {
		t.Fatalf("/metrics missing series:\n%s", body)
	}

	// The registry stays live: a series registered after the mux was built
	// appears on the next scrape.
	r.Gauge("zns_open_zones", "", nil, func() float64 { return 1 })
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "zns_open_zones 1") {
		t.Fatalf("late-registered series missing:\n%s", rec.Body.String())
	}
}

func TestMuxDebugEndpoints(t *testing.T) {
	mux := NewMux(NewRegistry())
	for _, path := range []string{"/debug/vars", "/debug/pprof/", "/"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("%s status %d", path, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if !strings.Contains(rec.Body.String(), `"znscache"`) {
		t.Fatalf("/debug/vars missing the published registry:\n%s", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", rec.Code)
	}
}

func TestStartServer(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("up", "", nil, func() uint64 { return 1 })
	srv, err := StartServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "up 1") {
		t.Fatalf("served metrics missing series:\n%s", body)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestCloseWaitsForInflightScrape pins the graceful-shutdown contract: a
// /metrics scrape already being served when Close is called completes with
// its full body instead of a severed connection. The scrape is held open by
// a gauge whose read blocks until the test releases it after Close has begun.
func TestCloseWaitsForInflightScrape(t *testing.T) {
	r := NewRegistry()
	scraping := make(chan struct{}) // closed when the gauge read starts
	release := make(chan struct{})  // closed to let the scrape finish
	var entered bool                // close scraping only once
	r.Gauge("slow_gauge", "", nil, func() float64 {
		if !entered {
			entered = true
			close(scraping)
			<-release
		}
		return 42
	})
	srv, err := StartServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}

	type scrape struct {
		body string
		err  error
	}
	got := make(chan scrape, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			got <- scrape{err: err}
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close() //nolint:errcheck
		got <- scrape{body: string(body), err: err}
	}()

	<-scraping // the handler is mid-scrape now
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()

	// Close must not return while the scrape is still blocked.
	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) with a scrape in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	s := <-got
	if s.err != nil {
		t.Fatalf("in-flight scrape failed: %v", s.err)
	}
	if !strings.Contains(s.body, "slow_gauge 42") {
		t.Fatalf("in-flight scrape body truncated:\n%s", s.body)
	}

	// New connections are refused once Close has returned.
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Fatal("scrape succeeded after Close")
	}
}

// TestShutdownDeadlineExpires verifies Shutdown honours its context: with a
// scrape stuck past the deadline, Shutdown returns the context error rather
// than hanging.
func TestShutdownDeadlineExpires(t *testing.T) {
	r := NewRegistry()
	scraping := make(chan struct{})
	release := make(chan struct{})
	var entered bool
	r.Gauge("stuck_gauge", "", nil, func() float64 {
		if !entered {
			entered = true
			close(scraping)
			<-release
		}
		return 0
	})
	srv, err := StartServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer close(release)
	defer srv.srv.Close() //nolint:errcheck // hard stop after the test

	go http.Get("http://" + srv.Addr() + "/metrics") //nolint:errcheck
	<-scraping

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
}
