package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"znscache/internal/stats"
)

func TestMuxMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	var c stats.Counter
	c.Add(9)
	r.Counter("zns_zone_resets_total", "Zone resets", L("zone", "2"), &c)
	mux := NewMux(r)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics content-type %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `zns_zone_resets_total{zone="2"} 9`) {
		t.Fatalf("/metrics missing series:\n%s", body)
	}

	// The registry stays live: a series registered after the mux was built
	// appears on the next scrape.
	r.Gauge("zns_open_zones", "", nil, func() float64 { return 1 })
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "zns_open_zones 1") {
		t.Fatalf("late-registered series missing:\n%s", rec.Body.String())
	}
}

func TestMuxDebugEndpoints(t *testing.T) {
	mux := NewMux(NewRegistry())
	for _, path := range []string{"/debug/vars", "/debug/pprof/", "/"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("%s status %d", path, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if !strings.Contains(rec.Body.String(), `"znscache"`) {
		t.Fatalf("/debug/vars missing the published registry:\n%s", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", rec.Code)
	}
}

func TestStartServer(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("up", "", nil, func() uint64 { return 1 })
	srv, err := StartServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "up 1") {
		t.Fatalf("served metrics missing series:\n%s", body)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
