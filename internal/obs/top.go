package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Live terminal dashboard: poll a /metrics endpoint and render the serving
// headlines in place — ops/s, hit ratio, per-stage latency p50/p99, open
// zones, GC activity, SLO burn. Reached via `cacheserver -top` or
// `zonectl -top ADDR`; the renderer is pure (snapshot pair in, text out) so
// tests drive it without a server.

// PromSample is one parsed series sample from a Prometheus text exposition.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromSnapshot is one scrape, indexed for the lookups the dashboard does.
type PromSnapshot struct {
	At      time.Time
	Samples []PromSample
}

// ParsePromText parses a Prometheus text-format exposition. Comment and
// blank lines are skipped; malformed lines are an error so the dashboard
// fails loudly on a non-metrics endpoint rather than rendering zeros.
func ParsePromText(r io.Reader) (*PromSnapshot, error) {
	snap := &PromSnapshot{At: time.Now()}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, err
		}
		snap.Samples = append(snap.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

func parsePromLine(line string) (PromSample, error) {
	var s PromSample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("obs: bad metrics line %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("obs: bad metrics line %q", line)
		}
		s.Labels = map[string]string{}
		for _, pair := range splitLabelPairs(rest[1:end]) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				return s, fmt.Errorf("obs: bad label in %q", line)
			}
			s.Labels[k] = strings.Trim(v, `"`)
		}
		rest = rest[end+1:]
	}
	val, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("obs: bad value in %q", line)
	}
	s.Value = val
	return s, nil
}

// splitLabelPairs splits a,b,c at commas outside quotes. Registry label
// values never contain commas today, but quoted splitting keeps the parser
// honest against any text-format producer.
func splitLabelPairs(s string) []string {
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inQuote = !inQuote
			}
		case ',':
			if !inQuote {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// Value returns the first sample of name whose labels include every given
// key=value pair (pairs alternate key, value). ok is false when absent.
func (p *PromSnapshot) Value(name string, pairs ...string) (float64, bool) {
	for _, s := range p.Samples {
		if s.Name != name || !labelsMatch(s.Labels, pairs) {
			continue
		}
		return s.Value, true
	}
	return 0, false
}

// Sum adds every matching sample — e.g. server_ops_total across verbs.
func (p *PromSnapshot) Sum(name string, pairs ...string) float64 {
	var sum float64
	for _, s := range p.Samples {
		if s.Name == name && labelsMatch(s.Labels, pairs) {
			sum += s.Value
		}
	}
	return sum
}

// CountWhere counts matching samples whose value equals v — e.g. zones in a
// given state.
func (p *PromSnapshot) CountWhere(name string, v float64, pairs ...string) int {
	n := 0
	for _, s := range p.Samples {
		if s.Name == name && s.Value == v && labelsMatch(s.Labels, pairs) {
			n++
		}
	}
	return n
}

func labelsMatch(ls map[string]string, pairs []string) bool {
	for i := 0; i+1 < len(pairs); i += 2 {
		if ls[pairs[i]] != pairs[i+1] {
			return false
		}
	}
	return true
}

// TopConfig parameterizes RunTop.
type TopConfig struct {
	// URL is the full metrics URL, e.g. "http://127.0.0.1:9090/metrics".
	URL string
	// Interval is the poll period (default 2s).
	Interval time.Duration
	// Out receives the rendered frames (default os.Stdout via caller).
	Out io.Writer
	// Frames stops after this many rendered frames; 0 runs until Stop.
	Frames int
	// Stop ends the loop when closed (may be nil).
	Stop <-chan struct{}
	// Plain disables the in-place ANSI redraw (frames append instead) —
	// for logs and tests.
	Plain bool
}

// RunTop polls cfg.URL and renders the dashboard until Stop closes, Frames
// frames have rendered, or a scrape fails twice in a row.
func RunTop(cfg TopConfig) error {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	client := &http.Client{Timeout: cfg.Interval}
	var prev *PromSnapshot
	frames, failures := 0, 0
	tick := time.NewTicker(cfg.Interval)
	defer tick.Stop()
	for {
		cur, err := scrape(client, cfg.URL)
		if err != nil {
			failures++
			if failures >= 2 {
				return fmt.Errorf("obs: top: %w", err)
			}
		} else {
			failures = 0
			if !cfg.Plain {
				// Home the cursor and clear below; redraw in place.
				fmt.Fprint(cfg.Out, "\x1b[H\x1b[2J")
			}
			RenderTop(cfg.Out, cfg.URL, prev, cur)
			prev = cur
			frames++
			if cfg.Frames > 0 && frames >= cfg.Frames {
				return nil
			}
		}
		select {
		case <-cfg.Stop:
			return nil
		case <-tick.C:
		}
	}
}

func scrape(client *http.Client, url string) (*PromSnapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: %s", url, resp.Status)
	}
	return ParsePromText(resp.Body)
}

// RenderTop writes one dashboard frame. prev may be nil (first frame; rates
// render as "-"). The layout is fixed-width so in-place redraw is stable.
func RenderTop(w io.Writer, url string, prev, cur *PromSnapshot) {
	fmt.Fprintf(w, "znscache top · %s · %s\n\n", url, cur.At.Format("15:04:05"))

	// Serving headline: ops/s and interval hit ratio from counter deltas.
	opsRate, hitRatio := "-", "-"
	if prev != nil {
		dt := cur.At.Sub(prev.At).Seconds()
		if dt > 0 {
			dOps := cur.Sum("server_ops_total") - prev.Sum("server_ops_total")
			opsRate = fmt.Sprintf("%.0f", dOps/dt)
			dHit := cur.Sum("server_get_hits_total") - prev.Sum("server_get_hits_total")
			dMiss := cur.Sum("server_get_misses_total") - prev.Sum("server_get_misses_total")
			if dHit+dMiss > 0 {
				hitRatio = fmt.Sprintf("%.3f", dHit/(dHit+dMiss))
			}
		}
	}
	if hitRatio == "-" {
		if v, ok := cur.Value("cache_lookup_ratio"); ok {
			hitRatio = fmt.Sprintf("%.3f", v)
		}
	}
	conns, _ := cur.Value("server_connections_open")
	fmt.Fprintf(w, "  ops/s %-10s hit %-7s conns %-5.0f\n\n", opsRate, hitRatio, conns)

	// Stage latencies: the registry exports histograms as quantile series.
	renderStages(w, cur, "server_stage_latency", "server stages",
		[]string{"sock_read", "parse", "queue_wait", "exec", "flush"})
	renderStages(w, cur, "cache_stage_latency", "cache stages",
		[]string{"fast_get", "locked_get", "set_publish", "region_flush", "store_io"})

	// Device/GC panel.
	openZones, hasZones := cur.Value("zns_open_zones")
	gcRuns := cur.Sum("middle_gc_runs_total")
	if hasZones || gcRuns > 0 {
		gcRate := "-"
		if prev != nil {
			dt := cur.At.Sub(prev.At).Seconds()
			if dt > 0 {
				gcRate = fmt.Sprintf("%.2f/s", (gcRuns-prev.Sum("middle_gc_runs_total"))/dt)
			}
		}
		fmt.Fprintf(w, "  zones open %-4.0f resets %-8.0f gc runs %-6.0f (%s) migrated %-6.0f dropped %.0f\n\n",
			openZones, cur.Sum("zns_zone_resets_total"), gcRuns, gcRate,
			cur.Sum("middle_gc_migrated_regions_total"), cur.Sum("middle_gc_dropped_regions_total"))
	}

	// SLO burn per verb.
	verbs := map[string]bool{}
	for _, s := range cur.Samples {
		if s.Name == "slo_burn_rate" {
			verbs[s.Labels["verb"]] = true
		}
	}
	if len(verbs) > 0 {
		names := make([]string, 0, len(verbs))
		for v := range verbs {
			names = append(names, v)
		}
		sort.Strings(names)
		fmt.Fprint(w, "  slo burn ")
		for _, v := range names {
			b, _ := cur.Value("slo_burn_rate", "verb", v)
			fmt.Fprintf(w, " %s %-7.2f", v, b)
		}
		fmt.Fprintf(w, " captures %.0f\n\n", cur.Sum("slo_profile_captures_total"))
	}

	// Go runtime.
	if g, ok := cur.Value("go_goroutines"); ok {
		heap, _ := cur.Value("go_heap_objects_bytes")
		pause, _ := cur.Value("go_gc_pause_seconds", "quantile", "0.99")
		fmt.Fprintf(w, "  go: goroutines %-5.0f heap %-8s gc p99 pause %s\n",
			g, fmtBytes(heap), fmtSeconds(pause))
	}
}

// renderStages prints one p50/p99 row per stage that has samples.
func renderStages(w io.Writer, snap *PromSnapshot, series, title string, stages []string) {
	var rows []string
	for _, st := range stages {
		n, _ := snap.Value(series+"_count", "stage", st)
		if n == 0 {
			continue
		}
		p50, _ := snap.Value(series, "stage", st, "quantile", "0.5")
		p99, _ := snap.Value(series, "stage", st, "quantile", "0.99")
		rows = append(rows, fmt.Sprintf("%-12s %8s %8s %10.0f", st, fmtSeconds(p50), fmtSeconds(p99), n))
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "  %-12s %8s %8s %10s\n", title, "p50", "p99", "samples")
	for _, r := range rows {
		fmt.Fprintf(w, "  %s\n", r)
	}
	fmt.Fprintln(w)
}

func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}
