package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanSamplerCadence(t *testing.T) {
	r := NewSpanRecorder(SpanConfig{SampleEvery: 4, SlowThreshold: -1})
	hits := 0
	for i := 0; i < 40; i++ {
		if r.SampleNow() {
			hits++
		}
	}
	if hits != 10 {
		t.Fatalf("1-in-4 sampler fired %d times in 40 draws, want 10", hits)
	}
}

func TestSettleObservesServerStagesOnly(t *testing.T) {
	r := NewSpanRecorder(SpanConfig{SampleEvery: 1, SlowThreshold: -1})
	var sp Span
	for st := Stage(0); st < stageCount; st++ {
		sp.Add(st, time.Millisecond)
	}
	r.Settle(&sp, true, SlowRequest{})
	for st := Stage(0); st < stageCount; st++ {
		snap := r.StageSnapshot(st)
		want := uint64(1)
		if st >= serverStageEnd {
			want = 0 // cache stages observe themselves, never via Settle
		}
		if snap.Count != want {
			t.Fatalf("stage %s count = %d, want %d", st, snap.Count, want)
		}
	}
	if r.SampledCount() != 1 {
		t.Fatalf("SampledCount = %d, want 1", r.SampledCount())
	}
}

func TestSettleUnsampledStillRecordsSlowExemplar(t *testing.T) {
	r := NewSpanRecorder(SpanConfig{SampleEvery: 1, SlowThreshold: time.Millisecond})
	var sp Span
	sp.Add(StageExec, 2*time.Millisecond)
	sp.Add(StageFlush, time.Millisecond)
	r.Settle(&sp, false, SlowRequest{Verb: "get", Key: "k1", Shard: 3, BatchOps: 8})
	if got := r.StageSnapshot(StageExec).Count; got != 0 {
		t.Fatalf("unsampled settle observed %d histogram samples", got)
	}
	if r.SlowTotal() != 1 {
		t.Fatalf("SlowTotal = %d, want 1", r.SlowTotal())
	}
	reqs := r.SlowRequests()
	if len(reqs) != 1 {
		t.Fatalf("retained %d exemplars, want 1", len(reqs))
	}
	sr := reqs[0]
	if sr.Verb != "get" || sr.Key != "k1" || sr.Shard != 3 || sr.BatchOps != 8 {
		t.Fatalf("exemplar identity lost: %+v", sr)
	}
	if sr.Total != 3*time.Millisecond {
		t.Fatalf("exemplar total = %v, want 3ms", sr.Total)
	}
	stages := sr.Stages()
	if stages["exec"] != int64(2*time.Millisecond) || stages["flush"] != int64(time.Millisecond) {
		t.Fatalf("exemplar stage breakdown wrong: %v", stages)
	}
	if _, ok := stages["parse"]; ok {
		t.Fatalf("zero-duration stage leaked into the breakdown: %v", stages)
	}
}

func TestSettleBelowThresholdNotRecorded(t *testing.T) {
	r := NewSpanRecorder(SpanConfig{SlowThreshold: time.Second})
	var sp Span
	sp.Add(StageExec, time.Millisecond)
	r.Settle(&sp, false, SlowRequest{Verb: "get"})
	if r.SlowTotal() != 0 {
		t.Fatalf("sub-threshold span recorded an exemplar")
	}
}

func TestSlowRingCapAndOrder(t *testing.T) {
	r := NewSpanRecorder(SpanConfig{SlowThreshold: time.Nanosecond, SlowLogCap: 4})
	for i := 1; i <= 6; i++ {
		var sp Span
		sp.Add(StageExec, time.Duration(i)*time.Millisecond)
		r.Settle(&sp, false, SlowRequest{BatchOps: i})
	}
	if r.SlowTotal() != 6 {
		t.Fatalf("SlowTotal = %d, want 6", r.SlowTotal())
	}
	reqs := r.SlowRequests()
	if len(reqs) != 4 {
		t.Fatalf("ring retained %d, want cap 4", len(reqs))
	}
	for i, sr := range reqs {
		if want := i + 3; sr.BatchOps != want {
			t.Fatalf("ring[%d].BatchOps = %d, want %d (oldest-first, newest kept)",
				i, sr.BatchOps, want)
		}
	}
}

func TestWriteSlowLogJSON(t *testing.T) {
	r := NewSpanRecorder(SpanConfig{SlowThreshold: time.Nanosecond})
	var sp Span
	sp.Add(StageQueueWait, time.Millisecond)
	sp.Add(StageExec, 2*time.Millisecond)
	r.Settle(&sp, false, SlowRequest{Verb: "set", Key: "hot", Shard: 1, BatchOps: 2})
	var buf bytes.Buffer
	if err := r.WriteSlowLog(&buf); err != nil {
		t.Fatal(err)
	}
	var out []struct {
		Verb     string           `json:"verb"`
		Key      string           `json:"key"`
		Shard    int              `json:"shard"`
		BatchOps int              `json:"batch_ops"`
		TotalNs  int64            `json:"total_ns"`
		Stages   map[string]int64 `json:"stages_ns"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("slow log is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 1 || out[0].Verb != "set" || out[0].Key != "hot" ||
		out[0].Stages["queue_wait"] != int64(time.Millisecond) ||
		out[0].Stages["exec"] != int64(2*time.Millisecond) {
		t.Fatalf("slow log round-trip lost fields: %+v", out)
	}
}

// TestSpanRecorderConcurrent hammers one recorder from many goroutines —
// sampling draws, settles (slow and fast), direct cache-stage observes, and
// concurrent readers — and checks the shared counters add up. Run with -race.
func TestSpanRecorderConcurrent(t *testing.T) {
	r := NewSpanRecorder(SpanConfig{SampleEvery: 2, SlowThreshold: time.Millisecond, SlowLogCap: 32})
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var sp Span
				sp.Add(StageExec, time.Duration(i%3)*time.Millisecond)
				r.Settle(&sp, r.SampleNow(), SlowRequest{Verb: "get", BatchOps: w})
				r.Observe(StageFastGet, time.Microsecond)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			r.SlowRequests()
			r.StageSnapshot(StageExec)
			r.SampledCount()
		}
	}()
	wg.Wait()
	<-done
	total := uint64(workers * perWorker)
	if got := r.SampledCount(); got != total/2 {
		t.Fatalf("SampledCount = %d, want %d (1-in-2 of %d settles)", got, total/2, total)
	}
	// i%3 ∈ {0,1,2}ms; 1ms and 2ms meet the threshold — 333 of each
	// worker's 500 settles (167 ones + 166 twos).
	if want := uint64(workers * 333); r.SlowTotal() != want {
		t.Fatalf("SlowTotal = %d, want %d", r.SlowTotal(), want)
	}
	if got := r.StageSnapshot(StageFastGet).Count; got != total {
		t.Fatalf("fast_get observes = %d, want %d", got, total)
	}
}

// TestSpanAndSLOMetricsGolden pins the exported series names: the dashboard,
// the CI scrape assertions, and EXPERIMENTS.md all address these literally.
func TestSpanAndSLOMetricsGolden(t *testing.T) {
	reg := NewRegistry()
	rec := NewSpanRecorder(SpanConfig{})
	rec.MetricsInto(reg, nil)
	slo := NewSLOTracker(SLOConfig{Objectives: []Objective{
		{Verb: "get", Target: 2 * time.Millisecond, Goal: 0.999},
		{Verb: "set", Target: 10 * time.Millisecond, Goal: 0.99},
	}})
	slo.MetricsInto(reg, nil)
	RuntimeMetricsInto(reg, nil)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		`server_stage_latency_count{stage="sock_read"}`,
		`server_stage_latency_count{stage="parse"}`,
		`server_stage_latency_count{stage="queue_wait"}`,
		`server_stage_latency_count{stage="exec"}`,
		`server_stage_latency_count{stage="flush"}`,
		`cache_stage_latency_count{stage="fast_get"}`,
		`cache_stage_latency_count{stage="locked_get"}`,
		`cache_stage_latency_count{stage="set_publish"}`,
		`cache_stage_latency_count{stage="region_flush"}`,
		`cache_stage_latency_count{stage="store_io"}`,
		"span_sampled_total",
		"span_slow_requests_total",
		`slo_good_total{verb="get"}`,
		`slo_requests_total{verb="set"}`,
		`slo_objective_seconds{verb="get"} 0.002`,
		`slo_burn_rate{verb="set"}`,
		"slo_profile_captures_total",
		"go_goroutines",
		"go_heap_objects_bytes",
		`go_gc_pause_seconds{quantile="0.99"}`,
		"go_gc_cycles_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

var sinkSpan Span

// BenchmarkSpanPathDisabled measures the serving path's per-site cost with
// spans off: one nil pointer test, no clock reads. This is the ~zero the
// acceptance criterion demands; compare against BenchmarkSpanPathEnabled.
func BenchmarkSpanPathDisabled(b *testing.B) {
	var rec *SpanRecorder
	for i := 0; i < b.N; i++ {
		if rec != nil {
			t0 := time.Now()
			sinkSpan.Add(StageExec, time.Since(t0))
		}
	}
}

// BenchmarkSpanPathEnabled measures the per-batch cost with a recorder
// installed and every batch sampled — the worst case (SampleEvery 1).
func BenchmarkSpanPathEnabled(b *testing.B) {
	rec := NewSpanRecorder(SpanConfig{SampleEvery: 1, SlowThreshold: -1})
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		sinkSpan.Add(StageExec, time.Since(t0))
		rec.Settle(&sinkSpan, rec.SampleNow(), SlowRequest{})
		sinkSpan.Reset()
	}
}
