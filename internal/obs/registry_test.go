package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"znscache/internal/stats"
)

func TestLPanicsOnOddCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("L with odd argument count did not panic")
		}
	}()
	L("layer", "zns", "dangling")
}

func TestLabelsString(t *testing.T) {
	if got := (Labels{}).String(); got != "" {
		t.Fatalf("empty labels rendered %q, want \"\"", got)
	}
	ls := L("layer", "zns", "zone", "3")
	if got, want := ls.String(), `{layer="zns",zone="3"}`; got != want {
		t.Fatalf("labels rendered %q, want %q", got, want)
	}
	esc := L("k", "a\\b\"c\nd").String()
	if want := `{k="a\\b\"c\nd"}`; esc != want {
		t.Fatalf("escaped labels rendered %q, want %q", esc, want)
	}
}

func TestLabelsWithDoesNotMutate(t *testing.T) {
	base := L("layer", "cache")
	a := base.With("shard", "0")
	b := base.With("shard", "1")
	if a.Get("shard") != "0" || b.Get("shard") != "1" {
		t.Fatalf("With produced aliased sets: %v, %v", a, b)
	}
	if len(base) != 1 {
		t.Fatalf("With mutated the base set: %v", base)
	}
}

func TestRegistryGather(t *testing.T) {
	r := NewRegistry()
	var c stats.Counter
	c.Add(7)
	r.Counter("ops_total", "ops", L("layer", "x"), &c)
	r.Gauge("depth", "queue depth", nil, func() float64 { return 2.5 })
	h := stats.NewHistogram()
	h.Observe(time.Millisecond)
	r.Histogram("lat_seconds", "latency", nil, h)

	samples := r.Gather()
	if len(samples) != 3 {
		t.Fatalf("gathered %d samples, want 3", len(samples))
	}
	if samples[0].Value != 7 || samples[0].Kind != KindCounter {
		t.Fatalf("counter sample = %+v", samples[0])
	}
	if samples[1].Value != 2.5 || samples[1].Kind != KindGauge {
		t.Fatalf("gauge sample = %+v", samples[1])
	}
	if samples[2].Hist.Count != 1 {
		t.Fatalf("histogram sample count = %d, want 1", samples[2].Hist.Count)
	}

	// The registry reads by reference: bumping the counter is visible on the
	// next gather without re-registration.
	c.Inc()
	if got := r.Gather()[0].Value; got != 8 {
		t.Fatalf("live counter read %v after Inc, want 8", got)
	}
}

func TestRegistryDuplicateReplaces(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("n", "", L("rig", "1"), func() uint64 { return 1 })
	r.CounterFunc("n", "", L("rig", "1"), func() uint64 { return 2 })
	r.CounterFunc("n", "", L("rig", "2"), func() uint64 { return 3 })
	if r.Len() != 2 {
		t.Fatalf("registry has %d series, want 2 (duplicate should replace)", r.Len())
	}
	if got := r.Gather()[0].Value; got != 2 {
		t.Fatalf("replaced series reads %v, want 2", got)
	}
}

func TestWriteAmpAndHitRatioComposites(t *testing.T) {
	r := NewRegistry()
	var wa stats.WriteAmp
	wa.AddHost(100)
	wa.AddMedia(150)
	r.WriteAmp("zns_wa", "write amplification", nil, &wa)
	var hr stats.HitRatio
	hr.Hit()
	hr.Hit()
	hr.Miss()
	r.HitRatio("cache_lookup", "lookups", nil, &hr)

	byName := map[string]float64{}
	for _, s := range r.Gather() {
		byName[s.Name] = s.Value
	}
	if byName["zns_wa_host_bytes_total"] != 100 || byName["zns_wa_media_bytes_total"] != 150 {
		t.Fatalf("write-amp counters = %v", byName)
	}
	if got := byName["zns_wa_factor"]; got != 1.5 {
		t.Fatalf("wa factor = %v, want 1.5", got)
	}
	if byName["cache_lookup_hits_total"] != 2 || byName["cache_lookup_misses_total"] != 1 {
		t.Fatalf("hit-ratio counters = %v", byName)
	}
	if got := byName["cache_lookup_ratio"]; got < 0.66 || got > 0.67 {
		t.Fatalf("hit ratio = %v, want ~2/3", got)
	}
}

// TestRegistryConcurrent exercises register/gather/exposition races under
// -race: sweeps register rebuilt rigs from a worker pool while a scraper
// reads.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var c stats.Counter
	h := stats.NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("ops_total", "ops", L("rig", string(rune('a'+w))), &c)
				r.Histogram("lat_seconds", "latency", L("rig", string(rune('a'+w))), h)
				c.Inc()
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		r.Gather()
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Errorf("WritePrometheus: %v", err)
		}
		_ = r.expvarSnapshot()
	}
	close(stop)
	wg.Wait()
}

// TestWritePrometheusGolden locks the text exposition format against
// testdata/metrics.prom: HELP/TYPE grouping, label rendering, summary
// quantiles in seconds.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	var c stats.Counter
	c.Add(42)
	r.Counter("zns_zone_resets_total", "Zone resets executed", L("scheme", "Zone-Cache", "zone", "0"), &c)
	r.CounterFunc("zns_zone_resets_total", "Zone resets executed", L("scheme", "Zone-Cache", "zone", "1"),
		func() uint64 { return 7 })
	r.Gauge("zns_open_zones", "Zones currently open", L("scheme", "Zone-Cache"), func() float64 { return 3 })
	h := stats.NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	r.Histogram("cache_get_seconds", "Get latency", L("scheme", "Zone-Cache"), h)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.prom")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate by writing the output below)\n%s", err, buf.String())
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from %s.\ngot:\n%s\nwant:\n%s", golden, buf.String(), want)
	}
}

func TestSortSamples(t *testing.T) {
	samples := []Sample{
		{Name: "b"},
		{Name: "a", Labels: L("z", "1")},
		{Name: "a", Labels: L("a", "1")},
	}
	SortSamples(samples)
	if samples[0].Labels.Get("a") != "1" || samples[1].Labels.Get("z") != "1" || samples[2].Name != "b" {
		t.Fatalf("sorted order wrong: %+v", samples)
	}
}

func TestExpvarSnapshot(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("n", "", L("k", "v"), func() uint64 { return 5 })
	h := stats.NewHistogram()
	h.Observe(2 * time.Millisecond)
	r.Histogram("lat", "", nil, h)
	snap := r.expvarSnapshot()
	if got := snap[`n{k="v"}`]; got != uint64(5) {
		t.Fatalf("counter expvar = %v (%T), want 5", got, got)
	}
	hm, ok := snap["lat"].(map[string]interface{})
	if !ok {
		t.Fatalf("histogram expvar = %T, want map", snap["lat"])
	}
	if hm["count"] != uint64(1) {
		t.Fatalf("histogram count = %v, want 1", hm["count"])
	}
}
