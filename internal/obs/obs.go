// Package obs is the observability substrate for the simulated stack: a
// metrics registry every layer (zns, ssd, f2fs, middle, store, cache,
// sharded, lsm) registers its instruments into, a bounded typed event trace,
// and live exposition over HTTP (Prometheus text format, expvar, pprof).
//
// The registry does not own the instruments — layers keep their existing
// atomic counters, write-amplification accumulators, and latency histograms
// (package stats), and register them here under stable names and labels.
// The per-layer Stats() methods therefore stay exact views over the same
// instruments the registry exposes: a scrape mid-run and a Stats() call read
// the same values.
//
// Everything here is safe for concurrent use. Registration typically happens
// at rig-build time while an HTTP scraper reads concurrently; the harness
// sweeps build rigs from a worker pool.
package obs

import "strings"

// Label is one name/value pair attached to a metric series.
type Label struct {
	Key, Value string
}

// Labels is an ordered label set. Order is preserved in the exposition, so
// registration order determines series identity text.
type Labels []Label

// L builds a label set from alternating key/value strings:
// obs.L("layer", "zns", "scheme", "Region-Cache"). Panics on an odd count —
// label sets are always literal at call sites, so this is a build-time bug,
// not an input error.
func L(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("obs: L requires an even number of strings")
	}
	ls := make(Labels, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{Key: kv[i], Value: kv[i+1]})
	}
	return ls
}

// With returns a copy of ls with one label appended. The receiver is never
// mutated, so a base label set can be shared across layers.
func (ls Labels) With(key, value string) Labels {
	out := make(Labels, 0, len(ls)+1)
	out = append(out, ls...)
	return append(out, Label{Key: key, Value: value})
}

// Get returns the value for key, or "" if absent.
func (ls Labels) Get(key string) string {
	for _, l := range ls {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// String renders the set in Prometheus brace form, e.g.
// {layer="zns",zone="3"}; an empty set renders as "".
func (ls Labels) String() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// MetricSource is implemented by layers that can register their instruments
// into a registry. The labels are appended to every series the source
// registers, letting the caller scope a source to a scheme/rig/shard.
type MetricSource interface {
	MetricsInto(r *Registry, labels Labels)
}
