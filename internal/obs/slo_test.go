package obs

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives("get=2ms@0.999, set=10ms@0.99,DELETE=5ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []Objective{
		{Verb: "get", Target: 2 * time.Millisecond, Goal: 0.999},
		{Verb: "set", Target: 10 * time.Millisecond, Goal: 0.99},
		{Verb: "delete", Target: 5 * time.Millisecond, Goal: 0.999}, // default goal
	}
	if len(objs) != len(want) {
		t.Fatalf("parsed %d objectives, want %d", len(objs), len(want))
	}
	for i, o := range objs {
		if o != want[i] {
			t.Fatalf("objective %d = %+v, want %+v", i, o, want[i])
		}
	}
	for _, bad := range []string{"get", "get=fast", "get=0s", "get=2ms@1.5", "get=2ms@0", "get=2ms@x"} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Errorf("ParseObjectives(%q) accepted", bad)
		}
	}
	if objs, err := ParseObjectives(""); err != nil || objs != nil {
		t.Fatalf("empty spec: %v, %v", objs, err)
	}
}

func TestSLONilSafety(t *testing.T) {
	var tr *SLOTracker
	tr.Start()
	tr.Stop()
	v := tr.Verb("get")
	if v != nil {
		t.Fatal("nil tracker returned a verb")
	}
	v.ObserveN(time.Millisecond, 5) // must not panic
}

func TestBurnRateMath(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{Objectives: []Objective{
		{Verb: "get", Target: time.Millisecond, Goal: 0.9},
	}})
	v := tr.Verb("get")
	if v == nil {
		t.Fatal("tracked verb not found")
	}
	if tr.Verb("set") != nil {
		t.Fatal("untracked verb resolved")
	}

	// 80 good, 20 bad → bad fraction 0.2, budget 0.1, burn 2.0.
	v.ObserveN(500*time.Microsecond, 80)
	v.ObserveN(2*time.Millisecond, 20)
	tr.tick()
	if burn := v.BurnRate(); math.Abs(burn-2.0) > 1e-9 {
		t.Fatalf("burn = %v, want 2.0", burn)
	}

	// A quiet window resets the burn (no traffic, no budget consumed).
	tr.tick()
	if burn := v.BurnRate(); burn != 0 {
		t.Fatalf("burn after idle window = %v, want 0", burn)
	}

	// Exactly on target counts as good: burn stays 0.
	v.ObserveN(time.Millisecond, 50)
	tr.tick()
	if burn := v.BurnRate(); burn != 0 {
		t.Fatalf("burn with all-good window = %v, want 0", burn)
	}
}

func TestSustainedBurnCapturesProfiles(t *testing.T) {
	dir := t.TempDir()
	tr := NewSLOTracker(SLOConfig{
		Objectives:      []Objective{{Verb: "get", Target: time.Millisecond, Goal: 0.99}},
		BurnTrigger:     1.0,
		BurnWindows:     2,
		ProfileDir:      dir,
		ProfileDuration: 10 * time.Millisecond,
	})
	v := tr.Verb("get")

	// One hot window arms; the second fires.
	v.ObserveN(5*time.Millisecond, 100)
	tr.tick()
	if tr.Captures() != 0 {
		t.Fatal("profile captured after a single hot window")
	}
	v.ObserveN(5*time.Millisecond, 100)
	tr.tick()

	deadline := time.Now().Add(5 * time.Second)
	for tr.Captures() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sustained burn never captured a profile")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cpus, _ := filepath.Glob(filepath.Join(dir, "slo_burn_cpu_*.pprof"))
	mtxs, _ := filepath.Glob(filepath.Join(dir, "slo_burn_mutex_*.pprof"))
	if len(cpus) != 1 || len(mtxs) != 1 {
		t.Fatalf("profiles on disk: cpu=%v mutex=%v, want one of each", cpus, mtxs)
	}
	if fi, err := os.Stat(cpus[0]); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile empty: %v %v", fi, err)
	}
}

func TestCaptureDisabledWithoutProfileDir(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{
		Objectives:  []Objective{{Verb: "get", Target: time.Millisecond, Goal: 0.99}},
		BurnTrigger: 1.0,
		BurnWindows: 1,
	})
	v := tr.Verb("get")
	v.ObserveN(5*time.Millisecond, 10)
	tr.tick()
	time.Sleep(20 * time.Millisecond)
	if tr.Captures() != 0 {
		t.Fatal("capture fired with no ProfileDir")
	}
}

func TestNewSLOTrackerEmpty(t *testing.T) {
	if tr := NewSLOTracker(SLOConfig{}); tr != nil {
		t.Fatal("tracker built with no objectives")
	}
}

func TestSLOTrackerStartStop(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{
		Objectives: []Objective{{Verb: "get", Target: time.Millisecond, Goal: 0.99}},
		Window:     5 * time.Millisecond,
	})
	tr.Verb("get").ObserveN(5*time.Millisecond, 100)
	tr.Start()
	tr.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for tr.Verb("get").BurnRate() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ticker never evaluated a window")
		}
		time.Sleep(time.Millisecond)
	}
	tr.Stop()
	tr.Stop() // idempotent
}

func TestSLOGoodCounting(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{Objectives: []Objective{
		{Verb: "get", Target: 2 * time.Millisecond, Goal: 0.999},
	}})
	v := tr.Verb("get")
	v.ObserveN(time.Millisecond, 3)   // good
	v.ObserveN(3*time.Millisecond, 2) // bad
	reg := NewRegistry()
	tr.MetricsInto(reg, nil)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		`slo_good_total{verb="get"} 3`,
		`slo_requests_total{verb="get"} 5`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}
