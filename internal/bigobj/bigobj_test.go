package bigobj_test

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"znscache/internal/bigobj"
	"znscache/internal/cache"
	"znscache/internal/harness"
	"znscache/internal/sim"
)

// testStore builds a bigobj store over a tiny real rig of the given scheme.
// 10 × 256 KiB zones, 64 KiB regions, values tracked — the same profile the
// crash harness uses, so every structure (flush, seal, eviction, GC) cycles
// even in unit tests.
func testStore(t *testing.T, scheme harness.Scheme, chunkSize int) (*bigobj.Store, *harness.Rig) {
	t.Helper()
	hw := harness.HWProfile{Zones: 10, BlocksPerZone: 4, PagesPerBlock: 16, Channels: 4, DiesPerChan: 1}
	rig, err := harness.Build(harness.RigConfig{
		Scheme:      scheme,
		HW:          hw,
		CacheBytes:  6 * hw.ZoneBytes(),
		RegionBytes: 64 << 10,
		TrackValues: true,
	})
	if err != nil {
		t.Fatalf("build rig: %v", err)
	}
	st, err := bigobj.New(bigobj.Config{Backend: rig.Engine, ChunkSize: chunkSize, Clock: rig.Clock})
	if err != nil {
		t.Fatalf("bigobj.New: %v", err)
	}
	return st, rig
}

// pattern fills a deterministic, position-dependent byte slice so any
// misplaced chunk or offset error corrupts the comparison.
func pattern(seed uint64, n int) []byte {
	b := make([]byte, n)
	r := sim.NewRand(seed)
	r.Bytes(b)
	return b
}

func TestPutReadRoundTrip(t *testing.T) {
	for _, scheme := range harness.AllSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			st, _ := testStore(t, scheme, 8<<10)
			// Sizes around every boundary: sub-chunk, exact multiples,
			// straddles, and empty.
			sizes := []int{0, 1, 100, 8 << 10, 8<<10 + 1, 16 << 10, 40<<10 - 7}
			for i, n := range sizes {
				key := "obj-" + string(rune('a'+i))
				want := pattern(uint64(i+1), n)
				if err := st.Put(key, bytes.NewReader(want), 0); err != nil {
					t.Fatalf("Put(%q, %d bytes): %v", key, n, err)
				}
				stat, err := st.Stat(key)
				if err != nil {
					t.Fatalf("Stat(%q): %v", key, err)
				}
				if stat.Size != int64(n) {
					t.Fatalf("Stat(%q).Size = %d, want %d", key, stat.Size, n)
				}
				wantChunks := (n + 8<<10 - 1) / (8 << 10)
				if stat.ChunkCount != wantChunks {
					t.Fatalf("Stat(%q).ChunkCount = %d, want %d", key, stat.ChunkCount, wantChunks)
				}
				got := make([]byte, n)
				rn, err := st.ReadAt(key, got, 0)
				if err != nil && err != io.EOF {
					t.Fatalf("ReadAt(%q): %v", key, err)
				}
				if rn != n || !bytes.Equal(got, want) {
					t.Fatalf("ReadAt(%q) = %d bytes, mismatch=%v", key, rn, !bytes.Equal(got, want))
				}
			}
		})
	}
}

func TestRangeReadEdgeCases(t *testing.T) {
	const chunk = 8 << 10
	st, _ := testStore(t, harness.RegionCache, chunk)
	size := 3*chunk + 100 // 4 chunks, short tail
	want := pattern(7, size)
	if err := st.Put("obj", bytes.NewReader(want), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}

	readRange := func(off, length int64) ([]byte, error) {
		rr, err := st.NewRangeReader("obj", off, length)
		if err != nil {
			return nil, err
		}
		defer rr.Close()
		return io.ReadAll(rr)
	}

	cases := []struct {
		name        string
		off, length int64
		want        []byte
	}{
		{"full", 0, -1, want},
		{"exact length", 0, int64(size), want},
		{"span chunk boundary", chunk - 10, 20, want[chunk-10 : chunk+10]},
		{"span three chunks", chunk / 2, 2 * chunk, want[chunk/2 : chunk/2+2*chunk]},
		{"tail chunk only", 3 * chunk, -1, want[3*chunk:]},
		{"off+len past tail", int64(size) - 50, 1000, want[size-50:]},
		{"zero length", chunk, 0, []byte{}},
		{"zero length at zero", 0, 0, []byte{}},
		{"off at tail", int64(size), -1, []byte{}},
		{"off past tail", int64(size) + 5000, 10, []byte{}},
		{"single byte at boundary", chunk, 1, want[chunk : chunk+1]},
	}
	for _, tc := range cases {
		got, err := readRange(tc.off, tc.length)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !bytes.Equal(got, tc.want) {
			t.Fatalf("%s: got %d bytes, want %d (content mismatch=%v)",
				tc.name, len(got), len(tc.want), !bytes.Equal(got, tc.want))
		}
	}

	if _, err := st.NewRangeReader("obj", -1, 10); err == nil {
		t.Fatalf("negative offset: want error")
	}

	// ReadAt semantics: short read at the tail returns io.EOF with the
	// bytes up to the tail.
	p := make([]byte, 200)
	n, err := st.ReadAt("obj", p, int64(size)-50)
	if n != 50 || err != io.EOF {
		t.Fatalf("ReadAt past tail = (%d, %v), want (50, EOF)", n, err)
	}
	if !bytes.Equal(p[:n], want[size-50:]) {
		t.Fatalf("ReadAt past tail returned wrong bytes")
	}
	// Zero-length ReadAt on a present object succeeds with no error.
	if n, err := st.ReadAt("obj", nil, 0); n != 0 || err != nil {
		t.Fatalf("zero-length ReadAt = (%d, %v), want (0, nil)", n, err)
	}
	// ReadAt with offset at/past the tail is (0, EOF).
	if n, err := st.ReadAt("obj", p, int64(size)); n != 0 || err != io.EOF {
		t.Fatalf("ReadAt at tail = (%d, %v), want (0, EOF)", n, err)
	}
}

func TestMissAndDelete(t *testing.T) {
	st, _ := testStore(t, harness.RegionCache, 8<<10)
	if _, err := st.NewRangeReader("ghost", 0, -1); !errors.Is(err, bigobj.ErrNotFound) {
		t.Fatalf("open absent object: %v, want ErrNotFound", err)
	}
	want := pattern(3, 20<<10)
	if err := st.Put("obj", bytes.NewReader(want), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if !st.Delete("obj") {
		t.Fatalf("Delete: want true")
	}
	if st.Delete("obj") {
		t.Fatalf("second Delete: want false")
	}
	if _, err := st.NewRangeReader("obj", 0, -1); !errors.Is(err, bigobj.ErrNotFound) {
		t.Fatalf("open deleted object: %v, want ErrNotFound", err)
	}
	s := st.Stats()
	if s.Deletes != 1 || s.ObjectMisses != 2 {
		t.Fatalf("stats after delete: %+v", s)
	}
}

func TestExpiryManifestFirst(t *testing.T) {
	st, rig := testStore(t, harness.RegionCache, 8<<10)
	want := pattern(9, 20<<10)
	if err := st.Put("obj", bytes.NewReader(want), 10*time.Second); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got := make([]byte, len(want))
	if _, err := st.ReadAt("obj", got, 0); err != nil {
		t.Fatalf("ReadAt before expiry: %v", err)
	}
	// Step the virtual clock past the manifest TTL but inside the chunk
	// slack window: the manifest must expire first, so the object misses
	// whole — never a partial read of surviving chunks.
	rig.Clock.Advance(11 * time.Second)
	if _, err := st.NewRangeReader("obj", 0, -1); !errors.Is(err, bigobj.ErrNotFound) {
		t.Fatalf("open expired object: %v, want ErrNotFound", err)
	}
	if st.Stats().PartialMisses != 0 {
		t.Fatalf("expiry produced a partial miss; want whole-object miss")
	}
}

func TestOverwriteShrinksAndBumpsGeneration(t *testing.T) {
	const chunk = 8 << 10
	st, _ := testStore(t, harness.RegionCache, chunk)
	big := pattern(11, 5*chunk)
	if err := st.Put("obj", bytes.NewReader(big), 0); err != nil {
		t.Fatalf("Put big: %v", err)
	}
	small := pattern(12, chunk+10)
	if err := st.Put("obj", bytes.NewReader(small), 0); err != nil {
		t.Fatalf("Put small: %v", err)
	}
	got := make([]byte, len(small))
	n, err := st.ReadAt("obj", got, 0)
	if err != nil || n != len(small) || !bytes.Equal(got, small) {
		t.Fatalf("read after shrink: n=%d err=%v match=%v", n, err, bytes.Equal(got, small))
	}
	stat, err := st.Stat("obj")
	if err != nil || stat.ChunkCount != 2 {
		t.Fatalf("Stat after shrink: %+v err=%v", stat, err)
	}
}

func TestAdmissionPerObject(t *testing.T) {
	rejectBig := admitUnder{limit: 10 << 10}
	hw := harness.HWProfile{Zones: 10, BlocksPerZone: 4, PagesPerBlock: 16, Channels: 4, DiesPerChan: 1}
	rig, err := harness.Build(harness.RigConfig{
		Scheme:      harness.RegionCache,
		HW:          hw,
		CacheBytes:  6 * hw.ZoneBytes(),
		RegionBytes: 64 << 10,
		TrackValues: true,
	})
	if err != nil {
		t.Fatalf("build rig: %v", err)
	}
	st, err := bigobj.New(bigobj.Config{
		Backend: rig.Engine, ChunkSize: 4 << 10, Clock: rig.Clock, Admission: rejectBig,
	})
	if err != nil {
		t.Fatalf("bigobj.New: %v", err)
	}
	// A 20 KiB object is rejected as one object even though every 4 KiB
	// chunk individually would pass the policy.
	if err := st.Put("big", bytes.NewReader(pattern(1, 20<<10)), 0); !errors.Is(err, bigobj.ErrRejected) {
		t.Fatalf("Put big: %v, want ErrRejected", err)
	}
	if st.Contains("big") {
		t.Fatalf("rejected object present")
	}
	if err := st.Put("small", bytes.NewReader(pattern(2, 8<<10)), 0); err != nil {
		t.Fatalf("Put small: %v", err)
	}
	s := st.Stats()
	if s.PutRejects != 1 || s.Puts != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// admitUnder admits objects strictly smaller than limit.
type admitUnder struct{ limit int }

func (a admitUnder) Admit(_ string, valLen int) bool { return valLen < a.limit }

func TestPartialObjectMissAfterChunkLoss(t *testing.T) {
	const chunk = 8 << 10
	st, rig := testStore(t, harness.RegionCache, chunk)
	want := pattern(21, 4*chunk)
	if err := st.Put("obj", bytes.NewReader(want), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Simulate eviction losing one middle chunk out from under the
	// manifest.
	if !rig.Engine.Delete("obj/2") {
		t.Fatalf("chunk key obj/2 not present")
	}
	got := make([]byte, len(want))
	n, err := st.ReadAt("obj", got, 0)
	if !errors.Is(err, bigobj.ErrPartialObject) {
		t.Fatalf("ReadAt over lost chunk: n=%d err=%v, want ErrPartialObject", n, err)
	}
	// The bytes before the hole were fine; nothing at or past the hole
	// may be returned.
	if n != 2*chunk {
		t.Fatalf("ReadAt returned %d bytes, want %d (stop at lost chunk)", n, 2*chunk)
	}
	if !bytes.Equal(got[:n], want[:n]) {
		t.Fatalf("bytes before the hole mismatch")
	}
	// Lazy repair dropped the manifest: the next open is a clean
	// whole-object miss.
	if _, err := st.NewRangeReader("obj", 0, -1); !errors.Is(err, bigobj.ErrNotFound) {
		t.Fatalf("open after lazy repair: %v, want ErrNotFound", err)
	}
	s := st.Stats()
	if s.PartialMisses != 1 || s.ManifestRepairs != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestRepairEager(t *testing.T) {
	const chunk = 8 << 10
	st, rig := testStore(t, harness.RegionCache, chunk)
	for i, key := range []string{"a", "b", "c"} {
		if err := st.Put(key, bytes.NewReader(pattern(uint64(30+i), 3*chunk)), 0); err != nil {
			t.Fatalf("Put(%q): %v", key, err)
		}
	}
	rig.Engine.Delete("b/1")
	dropped := st.Repair([]string{"a", "b", "c", "ghost"})
	if dropped != 1 {
		t.Fatalf("Repair dropped %d, want 1", dropped)
	}
	if st.Contains("b") {
		t.Fatalf("broken manifest survived Repair")
	}
	for _, key := range []string{"a", "c"} {
		got := make([]byte, 3*chunk)
		if _, err := st.ReadAt(key, got, 0); err != nil {
			t.Fatalf("ReadAt(%q) after Repair: %v", key, err)
		}
	}
	if st.Stats().ManifestRepairs != 1 {
		t.Fatalf("stats: %+v", st.Stats())
	}
}

func TestChunkMustFitRegion(t *testing.T) {
	hw := harness.HWProfile{Zones: 10, BlocksPerZone: 4, PagesPerBlock: 16, Channels: 4, DiesPerChan: 1}
	rig, err := harness.Build(harness.RigConfig{
		Scheme:      harness.RegionCache,
		HW:          hw,
		CacheBytes:  6 * hw.ZoneBytes(),
		RegionBytes: 64 << 10,
		TrackValues: true,
	})
	if err != nil {
		t.Fatalf("build rig: %v", err)
	}
	if _, err := bigobj.New(bigobj.Config{Backend: rig.Engine, ChunkSize: 128 << 10, Clock: rig.Clock}); err == nil {
		t.Fatalf("oversized chunk accepted against 64 KiB regions")
	}
}

// Both engine frontends satisfy the Backend seam.
var (
	_ bigobj.Backend = (*cache.Cache)(nil)
	_ bigobj.Backend = (*cache.Sharded)(nil)
)
