package bigobj_test

import (
	"bytes"
	"errors"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"znscache/internal/bigobj"
	"znscache/internal/harness"
	"znscache/internal/sim"
)

// TestTornReadOracleUnderEviction is the acceptance-criteria property test:
// under concurrent overwrites and eviction pressure, no range read ever
// returns bytes that are not an exact slice of some version acknowledged for
// that key — never a splice of two generations, never a partially-written
// chunk, never stale bytes after an in-place slot reuse. Reads may fail
// (partial-object miss, whole-object miss); they may never lie.
//
// The object content encodes its version in every byte, so a single torn
// byte anywhere in a returned range breaks the version check. Run under
// -race this also exercises the pin table and store mutex for data races.
func TestTornReadOracleUnderEviction(t *testing.T) {
	const (
		chunk   = 4 << 10
		objects = 6
		readers = 4
	)
	writes := 160
	if testing.Short() {
		writes = 50
	}

	for _, scheme := range []harness.Scheme{harness.RegionCache, harness.ZoneCache} {
		t.Run(scheme.String(), func(t *testing.T) {
			// A cache much smaller than the working set forces continuous
			// eviction: 6 objects × up to 9 chunks × 4 KiB ≈ 216 KiB of
			// payload cycling through ~1.5 MiB of device with 6 zones of
			// cache — regions seal, evict, and reset throughout the run.
			st, _ := testStore(t, scheme, chunk)

			// version v of object o is (v*objects+o) repeated — any byte
			// identifies both the object and the version that wrote it.
			content := func(o, v int, size int) []byte {
				b := make([]byte, size)
				tag := byte(v*objects + o)
				for i := range b {
					b[i] = tag
				}
				return b
			}
			sizeOf := func(o, v int) int {
				// 2..9 chunks with a ragged tail, varying per version so
				// overwrites shrink and grow across chunk-count boundaries.
				return (2+(o+v)%8)*chunk - (v%2)*137
			}

			// version[o] is the latest acknowledged version of object o;
			// readers accept any version whose tag is consistent across
			// the whole returned range.
			var version [objects]atomic.Int64
			keyOf := func(o int) string { return "t-" + string(rune('a'+o)) }

			var wrong atomic.Int64
			var stop atomic.Bool
			var wg sync.WaitGroup

			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rng := sim.NewRand(uint64(1000 + r))
					buf := make([]byte, 3*chunk)
					for !stop.Load() {
						o := rng.Intn(objects)
						vAtStart := version[o].Load()
						if vAtStart < 0 {
							continue
						}
						off := int64(rng.Intn(6 * chunk))
						n, err := st.ReadAt(keyOf(o), buf, off)
						if err != nil && !errors.Is(err, bigobj.ErrNotFound) &&
							!errors.Is(err, bigobj.ErrPartialObject) && err != io.EOF {
							t.Errorf("reader %d: unexpected error: %v", r, err)
							wrong.Add(1)
							return
						}
						if n == 0 {
							continue
						}
						got := buf[:n]
						// Every byte of a returned range must carry one
						// consistent (object, version) tag for our object,
						// at a version acknowledged by the writer.
						tag := got[0]
						consistent := true
						for _, b := range got {
							if b != tag {
								consistent = false
								break
							}
						}
						// The commit point is the manifest write inside Put;
						// the writer publishes version[o] just after Put
						// returns, so a read overlapping that gap may
						// legitimately observe vNow+1. Anything outside
						// [vAtStart, vNow+1] — or any mixed-tag range — is
						// a torn read.
						vNow := version[o].Load()
						okTag := false
						if consistent && int(tag)%objects == o {
							v := int(tag) / objects
							okTag = int64(v) >= vAtStart && int64(v) <= vNow+1
						}
						if !okTag {
							wrong.Add(1)
							t.Errorf("reader %d: torn read on %q off=%d n=%d (tag %d, versions %d..%d)",
								r, keyOf(o), off, n, got[0], vAtStart, vNow)
							return
						}
						// Offset/length discipline: the returned range
						// must lie entirely inside the observed version.
						v := int(tag) / objects
						if off+int64(n) > int64(sizeOf(o, v)) {
							wrong.Add(1)
							t.Errorf("reader %d: read past the size of %q v%d", r, keyOf(o), v)
							return
						}
					}
				}(r)
			}

			// Writer: overwrite objects in seeded order, bumping the
			// version only after the Put commits (the manifest is the
			// commit point, so a torn Put must never surface its tag).
			wrng := sim.NewRand(42)
			for o := range version {
				version[o].Store(-1)
			}
			for i := 0; i < writes; i++ {
				o := wrng.Intn(objects)
				v := int(version[o].Load() + 1)
				if v*objects+o > 255 {
					continue // tag space exhausted for this object
				}
				data := content(o, v, sizeOf(o, v))
				if err := st.Put(keyOf(o), bytes.NewReader(data), 0); err != nil {
					t.Fatalf("Put %q v%d: %v", keyOf(o), v, err)
				}
				version[o].Store(int64(v))
				runtime.Gosched() // interleave with the readers
			}
			// Keep the readers running against the final state until they
			// have exercised the read path for real, then stop them.
			for i := 0; i < 10000 && st.Stats().Opens < 500; i++ {
				runtime.Gosched()
			}
			stop.Store(true)
			wg.Wait()

			if w := wrong.Load(); w != 0 {
				t.Fatalf("%d torn reads", w)
			}
			s := st.Stats()
			if s.ChunkHits == 0 {
				t.Fatalf("oracle never served a chunk: %+v", s)
			}
			t.Logf("stats: %+v", s)
		})
	}
}

// TestConcurrentRangeReadersShareLosslessly drives many concurrent range
// readers over a static object while a churn writer evicts everything else,
// checking every read byte-for-byte. This isolates the pin-retention path:
// the hot object's chunks are evicted and refetched continuously, and
// in-flight readers must be served from retained pin data instead of
// tearing.
func TestConcurrentRangeReadersShareLosslessly(t *testing.T) {
	const chunk = 4 << 10
	st, _ := testStore(t, harness.RegionCache, chunk)

	size := 9*chunk + 311
	want := pattern(77, size)
	if err := st.Put("hot", bytes.NewReader(want), 0); err != nil {
		t.Fatalf("Put hot: %v", err)
	}

	iters := 300
	if testing.Short() {
		iters = 60
	}

	var stop atomic.Bool
	var churn sync.WaitGroup
	// Churn writer: floods the cache with other objects so the hot
	// object's chunks are constantly evicted.
	churn.Add(1)
	go func() {
		defer churn.Done()
		i := 0
		for !stop.Load() {
			key := "churn-" + string(rune('a'+i%20))
			st.Put(key, bytes.NewReader(pattern(uint64(i), 2*chunk)), 0)
			i++
		}
	}()

	var fails atomic.Int64
	var readersWG sync.WaitGroup
	for r := 0; r < 4; r++ {
		readersWG.Add(1)
		go func(r int) {
			defer readersWG.Done()
			rng := sim.NewRand(uint64(200 + r))
			for i := 0; i < iters; i++ {
				off := int64(rng.Intn(size))
				length := int64(1 + rng.Intn(4*chunk))
				rr, err := st.NewRangeReader("hot", off, length)
				if errors.Is(err, bigobj.ErrNotFound) {
					// Lazy repair may have dropped the object after an
					// eviction-induced partial miss; refill and go on.
					st.Put("hot", bytes.NewReader(want), 0)
					continue
				}
				if err != nil {
					t.Errorf("reader %d: open: %v", r, err)
					return
				}
				got, err := io.ReadAll(rr)
				rr.Close()
				if errors.Is(err, bigobj.ErrPartialObject) {
					fails.Add(1)
					continue // clean failure is allowed; torn bytes are not
				}
				if err != nil {
					t.Errorf("reader %d: read: %v", r, err)
					return
				}
				end := off + length
				if end > int64(size) {
					end = int64(size)
				}
				if !bytes.Equal(got, want[off:end]) {
					t.Errorf("reader %d: torn range [%d,%d)", r, off, end)
					return
				}
			}
		}(r)
	}
	// Readers finish their iteration budget, then the churn writer stops.
	readersWG.Wait()
	stop.Store(true)
	churn.Wait()

	s := st.Stats()
	t.Logf("clean partial misses: %d, deferred evictions: %d, stats: %+v", fails.Load(), s.EvictionsDeferred, s)
}
