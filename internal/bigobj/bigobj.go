// Package bigobj is a chunked large-object layer over the region cache
// engine. The engine stores values no larger than one region, so CDN-shaped
// objects (hundreds of KiB to multiple MiB, served as byte ranges) cannot
// live in it directly. bigobj splits each object into fixed-size chunks
// stored as ordinary engine values keyed "<objkey>/<n>", plus a small
// manifest value under the object key recording size, chunk geometry, a
// generation number, and a content hash. ZNCache makes the same move on raw
// ZNS zones — fixed-size chunk caching with active-reader tracking — because
// per-chunk eviction means one hot byte range never pins a whole object.
//
// Correctness model:
//
//   - The manifest is the commit point. Put streams chunks first and writes
//     the manifest last, so a crash or error mid-put leaves orphan chunks
//     (reclaimed by normal eviction) but never a readable half-object.
//   - Every chunk carries the generation of the put that wrote it. A reader
//     holds the generation from the manifest it opened and rejects any chunk
//     with a different generation, so an overwrite racing a range read
//     produces a clean partial-object miss, never a splice of two versions.
//   - Delete tombstones the manifest first, then drops chunks. Concurrent
//     readers either finish from pinned chunk data or fail clean.
//   - Active readers pin the chunks they still need. Pinned chunk bytes are
//     retained in the pin table across engine eviction, so an in-flight read
//     is never torn by eviction pressure; eviction of unpinned chunks under
//     a live manifest surfaces as a counted partial-object miss on the next
//     read, and the manifest is lazily repaired (dropped) so the object
//     misses whole from then on.
//
// The store serializes all backend calls under one mutex (cache.Cache is
// not goroutine-safe) but releases it between per-chunk operations of a
// range read, so readers and writers interleave at chunk granularity.
package bigobj

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"sync"
	"time"

	"znscache/internal/cache"
	"znscache/internal/obs"
	"znscache/internal/sim"
	"znscache/internal/stats"
)

// DefaultChunkSize is the chunk payload size when Config.ChunkSize is zero.
// 512 KiB matches ZNCache's CHUNK_SIZE and divides the default zone size.
const DefaultChunkSize = 512 << 10

// chunkTTLSlack is added to chunk TTLs so the manifest always expires
// strictly first: readers then see a whole-object miss instead of a manifest
// whose tail chunks expired underneath it.
const chunkTTLSlack = 2 * time.Second

// Backend is the engine surface bigobj needs. Both *cache.Cache and
// *cache.Sharded satisfy it.
type Backend interface {
	SetTTL(key string, value []byte, valLen int, ttl time.Duration) error
	Get(key string) ([]byte, bool, error)
	Delete(key string) bool
	Contains(key string) bool
}

// Errors returned by the read path. Use errors.Is: returned values wrap
// these sentinels with key/chunk context.
var (
	// ErrNotFound reports that no manifest exists under the key (never
	// stored, deleted, expired, or dropped by repair).
	ErrNotFound = errors.New("bigobj: object not found")
	// ErrPartialObject reports that the manifest was readable but a chunk
	// the read needed was missing, from a different generation, or
	// corrupt. The read fails clean — no bytes from the broken chunk are
	// returned — and the manifest is dropped so later reads miss whole.
	ErrPartialObject = errors.New("bigobj: partial object")
	// ErrRejected reports that the admission policy declined the object.
	ErrRejected = errors.New("bigobj: admission rejected object")
)

// Config configures a Store.
type Config struct {
	// Backend is the engine the store writes through. Required.
	Backend Backend
	// ChunkSize is the chunk payload size in bytes. Defaults to
	// DefaultChunkSize. Chunk values (payload + header) must fit the
	// engine's region size or every put fails with cache.ErrItemTooLarge.
	ChunkSize int
	// Admission is consulted once per object (not per chunk) with the
	// object's total size. Nil admits everything. Reuses the PR 4 policy
	// instances; the instance belongs to this store's backend engine.
	Admission cache.Admission
	// Clock, when set, seeds generation numbers from virtual time so a
	// store built over a restored engine never reissues a generation an
	// earlier incarnation used. The harness always provides it.
	Clock *sim.Clock
}

// Stats is a point-in-time snapshot of store counters.
type Stats struct {
	Puts              uint64 // objects committed (manifest written)
	PutBytes          uint64 // payload bytes streamed into committed puts
	PutRejects        uint64 // objects refused by admission
	PutErrors         uint64 // puts aborted by stream/backend errors
	Opens             uint64 // NewRangeReader/ReadAt calls
	ObjectMisses      uint64 // opens that found no manifest
	PartialMisses     uint64 // reads that failed on a missing/mismatched chunk
	ChunkHits         uint64 // chunk fetches served by the backend or a pin
	ChunkMisses       uint64 // chunk fetches the backend could not serve
	ReadBytes         uint64 // payload bytes returned to readers
	EvictionsDeferred uint64 // pinned chunks evicted under a reader but served from retained pin data
	ManifestRepairs   uint64 // manifests dropped because chunks were lost
	Deletes           uint64 // explicit Delete calls that found a manifest
}

// Store is a chunked large-object cache over a Backend. Methods are safe
// for concurrent use even when the backend is a bare *cache.Cache.
type Store struct {
	backend   Backend
	chunkSize int
	admit     cache.Admission

	mu      sync.Mutex
	genNext uint64
	pins    map[pinKey]*pin
	scratch []byte // chunk encode buffer, reused across Puts (guarded by mu)

	puts              stats.Counter
	putBytes          stats.Counter
	putRejects        stats.Counter
	putErrors         stats.Counter
	opens             stats.Counter
	objectMisses      stats.Counter
	partialMisses     stats.Counter
	chunkHits         stats.Counter
	chunkMisses       stats.Counter
	readBytes         stats.Counter
	evictionsDeferred stats.Counter
	manifestRepairs   stats.Counter
	deletes           stats.Counter
}

// New builds a Store over cfg.Backend.
func New(cfg Config) (*Store, error) {
	if cfg.Backend == nil {
		return nil, errors.New("bigobj: Config.Backend is required")
	}
	cs := cfg.ChunkSize
	if cs == 0 {
		cs = DefaultChunkSize
	}
	if cs < 512 {
		return nil, fmt.Errorf("bigobj: chunk size %d below minimum 512", cs)
	}
	s := &Store{
		backend:   cfg.Backend,
		chunkSize: cs,
		admit:     cfg.Admission,
		pins:      make(map[pinKey]*pin),
		genNext:   1,
	}
	if cfg.Clock == nil {
		if c, ok := cfg.Backend.(interface{ Clock() *sim.Clock }); ok {
			cfg.Clock = c.Clock()
		}
	}
	if cfg.Clock != nil {
		// Virtual time is monotonic across snapshot/restore, and every
		// committed put advances it, so seeding from Now() keeps
		// generations unique across store incarnations over the same
		// restored engine.
		s.genNext = uint64(cfg.Clock.Now()) + 1
	}
	if rs, ok := cfg.Backend.(interface{ RegionSize() int64 }); ok {
		// A chunk value must fit one region alongside its own header and
		// the engine's per-item header; fail construction, not every put.
		if int64(cs+chunkHeaderSize+64) > rs.RegionSize() {
			return nil, fmt.Errorf("bigobj: chunk size %d does not fit region size %d", cs, rs.RegionSize())
		}
	}
	return s, nil
}

// ChunkSize returns the configured chunk payload size.
func (s *Store) ChunkSize() int { return s.chunkSize }

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	return Stats{
		Puts:              s.puts.Load(),
		PutBytes:          s.putBytes.Load(),
		PutRejects:        s.putRejects.Load(),
		PutErrors:         s.putErrors.Load(),
		Opens:             s.opens.Load(),
		ObjectMisses:      s.objectMisses.Load(),
		PartialMisses:     s.partialMisses.Load(),
		ChunkHits:         s.chunkHits.Load(),
		ChunkMisses:       s.chunkMisses.Load(),
		ReadBytes:         s.readBytes.Load(),
		EvictionsDeferred: s.evictionsDeferred.Load(),
		ManifestRepairs:   s.manifestRepairs.Load(),
		Deletes:           s.deletes.Load(),
	}
}

// MetricsInto registers the store's counters on r under bigobj_* names.
func (s *Store) MetricsInto(r *obs.Registry, labels obs.Labels) {
	r.Counter("bigobj_puts_total", "objects committed (manifest written)", labels, &s.puts)
	r.Counter("bigobj_put_bytes_total", "payload bytes streamed into committed puts", labels, &s.putBytes)
	r.Counter("bigobj_put_rejects_total", "objects refused by the admission policy", labels, &s.putRejects)
	r.Counter("bigobj_put_errors_total", "puts aborted by stream or backend errors", labels, &s.putErrors)
	r.Counter("bigobj_opens_total", "range reader opens (NewRangeReader/ReadAt)", labels, &s.opens)
	r.Counter("bigobj_object_misses_total", "opens that found no manifest", labels, &s.objectMisses)
	r.Counter("bigobj_partial_object_misses_total", "reads failed clean on a missing or mismatched chunk", labels, &s.partialMisses)
	r.Counter("bigobj_chunk_hits_total", "chunk fetches served from the backend or a pin", labels, &s.chunkHits)
	r.Counter("bigobj_chunk_misses_total", "chunk fetches the backend could not serve", labels, &s.chunkMisses)
	r.Counter("bigobj_read_bytes_total", "payload bytes returned to readers", labels, &s.readBytes)
	r.Counter("bigobj_pinned_evictions_deferred_total", "engine evictions of pinned chunks absorbed by retained pin data", labels, &s.evictionsDeferred)
	r.Counter("bigobj_manifest_repairs_total", "manifests dropped because chunks under them were lost", labels, &s.manifestRepairs)
	r.Counter("bigobj_deletes_total", "explicit deletes that found a manifest", labels, &s.deletes)
	r.Gauge("bigobj_pinned_chunks", "chunks currently pinned by active readers", labels, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.pins))
	})
}

// chunkKey builds the engine key for chunk i of key.
func chunkKey(key string, i uint32) string {
	return key + "/" + strconv.FormatUint(uint64(i), 10)
}

// sizeHint extracts a total-size hint from readers that know their length
// (bytes.Reader, strings.Reader, io.LimitedReader...). Returns -1 when the
// reader is opaque.
func sizeHint(r io.Reader) int64 {
	switch v := r.(type) {
	case interface{ Size() int64 }:
		return v.Size()
	case interface{ Len() int }:
		return int64(v.Len())
	case *io.LimitedReader:
		return v.N
	}
	return -1
}

// Put streams r into the cache as a chunked object under key, replacing any
// existing object. The admission policy is consulted once for the whole
// object using the reader's size hint (falling back to one chunk when the
// reader is opaque). Chunks are written first and the manifest last, so a
// failed put never leaves a readable object; the previous object (if any)
// stays readable until the new manifest commits, modulo chunk-key overlap.
// ttl <= 0 stores without expiry.
func (s *Store) Put(key string, r io.Reader, ttl time.Duration) error {
	if key == "" {
		return errors.New("bigobj: empty key")
	}
	if s.admit != nil {
		hint := sizeHint(r)
		if hint < 0 {
			hint = int64(s.chunkSize)
		}
		admitLen := hint
		if admitLen > int64(maxInt) {
			admitLen = int64(maxInt)
		}
		if !s.admit.Admit(key, int(admitLen)) {
			s.putRejects.Inc()
			return fmt.Errorf("%w: key %q", ErrRejected, key)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	gen := s.genNext
	s.genNext++

	// Remember the previous geometry so stale higher-index chunks are
	// dropped after the new manifest commits (a shrinking overwrite must
	// not leave old-generation tail chunks pinned in the engine).
	var prevCount uint32
	if raw, ok, err := s.backend.Get(key); err == nil && ok {
		if m, err := decodeManifest(raw); err == nil {
			prevCount = m.chunkCount
		}
	}

	chunkTTL := ttl
	if ttl > 0 {
		chunkTTL = ttl + chunkTTLSlack
	}

	h := fnv.New64a()
	var size int64
	var idx uint32
	if cap(s.scratch) < chunkHeaderSize+s.chunkSize {
		s.scratch = make([]byte, chunkHeaderSize+s.chunkSize)
	}
	buf := s.scratch[:chunkHeaderSize+s.chunkSize]
	for {
		n, err := io.ReadFull(r, buf[chunkHeaderSize:])
		if n > 0 {
			h.Write(buf[chunkHeaderSize : chunkHeaderSize+n])
			encodeChunkHeader(buf, gen, idx, uint32(n))
			val := buf[:chunkHeaderSize+n]
			if serr := s.backend.SetTTL(chunkKey(key, idx), val, len(val), chunkTTL); serr != nil {
				s.abortPut(key, gen, idx+1)
				return fmt.Errorf("bigobj: put %q chunk %d: %w", key, idx, serr)
			}
			size += int64(n)
			idx++
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			s.abortPut(key, gen, idx)
			return fmt.Errorf("bigobj: put %q: read: %w", key, err)
		}
	}

	man := manifest{
		gen:        gen,
		size:       size,
		chunkSize:  uint32(s.chunkSize),
		chunkCount: idx,
		hash:       h.Sum64(),
	}
	mv := encodeManifest(man)
	if err := s.backend.SetTTL(key, mv, len(mv), ttl); err != nil {
		s.abortPut(key, gen, idx)
		return fmt.Errorf("bigobj: put %q manifest: %w", key, err)
	}
	// Commit point passed: drop stale tail chunks from the previous
	// generation. Readers of the old manifest already fail clean on the
	// generation check.
	for i := idx; i < prevCount; i++ {
		s.backend.Delete(chunkKey(key, i))
	}
	s.puts.Inc()
	s.putBytes.Add(uint64(size))
	return nil
}

// abortPut cleans up the chunks of a failed put. Called with mu held. Only
// chunks of this put's generation are dropped — a chunk slot already
// overwritten by a racing newer put is left alone.
func (s *Store) abortPut(key string, gen uint64, wrote uint32) {
	s.putErrors.Inc()
	for i := uint32(0); i < wrote; i++ {
		ck := chunkKey(key, i)
		if raw, ok, err := s.backend.Get(ck); err == nil && ok {
			if g, _, _, herr := decodeChunkHeader(raw); herr == nil && g == gen {
				s.backend.Delete(ck)
			}
		}
	}
}

// Stat describes a stored object.
type Stat struct {
	Size       int64
	ChunkSize  int
	ChunkCount int
	Hash       uint64
}

// Stat returns the manifest view of key, or ErrNotFound.
func (s *Store) Stat(key string) (Stat, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, err := s.getManifest(key)
	if err != nil {
		return Stat{}, err
	}
	return Stat{
		Size:       m.size,
		ChunkSize:  int(m.chunkSize),
		ChunkCount: int(m.chunkCount),
		Hash:       m.hash,
	}, nil
}

// Contains reports whether a manifest exists under key (chunks unverified).
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.backend.Contains(key)
}

// getManifest fetches and decodes the manifest under key. Called with mu
// held.
func (s *Store) getManifest(key string) (manifest, error) {
	raw, ok, err := s.backend.Get(key)
	if err != nil || !ok {
		return manifest{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	m, derr := decodeManifest(raw)
	if derr != nil {
		return manifest{}, fmt.Errorf("%w: %q: %v", ErrNotFound, key, derr)
	}
	return m, nil
}

// Delete tombstones the manifest first, then drops the object's chunks.
// Concurrent readers of the old generation finish from pinned data or fail
// clean on the next unpinned chunk. Returns true when a manifest existed.
func (s *Store) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, err := s.getManifest(key)
	if err != nil {
		// No (readable) manifest; still drop the bare key if present.
		s.backend.Delete(key)
		return false
	}
	s.backend.Delete(key)
	for i := uint32(0); i < m.chunkCount; i++ {
		s.backend.Delete(chunkKey(key, i))
	}
	s.deletes.Inc()
	return true
}

// dropManifest removes the manifest under key iff it still carries gen, and
// counts a repair. Chunks are left to normal eviction: deleting them here
// could destroy chunk slots already rewritten by a racing newer put. Called
// with mu held.
func (s *Store) dropManifest(key string, gen uint64) {
	raw, ok, err := s.backend.Get(key)
	if err != nil || !ok {
		return
	}
	m, derr := decodeManifest(raw)
	if derr != nil || m.gen != gen {
		return
	}
	s.backend.Delete(key)
	s.manifestRepairs.Inc()
}

// Repair scans the given object keys (typically cache.SnapshotKeys of the
// snapshot just restored) and drops every manifest that lost chunks to the
// crash/restore path, counting each as one manifest repair. Keys without a
// manifest are skipped. Returns the number of manifests dropped.
//
// This is the eager half of restore safety; the read path performs the same
// repair lazily when it trips over a broken object.
func (s *Store) Repair(keys []string) int {
	dropped := 0
	for _, key := range keys {
		s.mu.Lock()
		m, err := s.getManifest(key)
		if err != nil {
			s.mu.Unlock()
			continue
		}
		broken := false
		for i := uint32(0); i < m.chunkCount; i++ {
			raw, ok, gerr := s.backend.Get(chunkKey(key, i))
			if gerr != nil || !ok {
				broken = true
				break
			}
			g, ci, _, herr := decodeChunkHeader(raw)
			if herr != nil || g != m.gen || ci != i {
				broken = true
				break
			}
		}
		if broken {
			s.dropManifest(key, m.gen)
			dropped++
		}
		s.mu.Unlock()
	}
	return dropped
}

const maxInt = int(^uint(0) >> 1)
