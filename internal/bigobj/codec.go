// Wire formats for manifests and chunk values. Both carry a magic tag and
// the put generation; readers validate every field before returning bytes,
// so a foreign value under an object key, a stale chunk from an older put,
// or a truncated record all surface as clean errors instead of torn reads.
// (Byte-level corruption inside a value is the engine's job — every item is
// checksummed on read — so these headers only need to catch *wrong value*
// cases, not flipped bits.)
package bigobj

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Manifest layout (manifestSize bytes, little-endian):
//
//	0:4   magic "ZBM1"
//	4:12  generation
//	12:20 object size in bytes
//	20:24 chunk payload size
//	24:28 chunk count
//	28:36 FNV-1a hash of the whole content
const manifestSize = 36

// Chunk header layout (chunkHeaderSize bytes, little-endian), followed by
// the payload:
//
//	0:4   magic "ZBC1"
//	4:12  generation of the put that wrote this chunk
//	12:16 chunk index
//	16:20 payload length
const chunkHeaderSize = 20

var (
	manifestMagic = [4]byte{'Z', 'B', 'M', '1'}
	chunkMagic    = [4]byte{'Z', 'B', 'C', '1'}

	errNotManifest = errors.New("bigobj: value is not a manifest")
	errNotChunk    = errors.New("bigobj: value is not a chunk")
)

// manifest is the decoded form of an object's manifest value.
type manifest struct {
	gen        uint64
	size       int64
	chunkSize  uint32
	chunkCount uint32
	hash       uint64
}

// encodeManifest renders m into a fresh value buffer.
func encodeManifest(m manifest) []byte {
	b := make([]byte, manifestSize)
	copy(b[0:4], manifestMagic[:])
	binary.LittleEndian.PutUint64(b[4:12], m.gen)
	binary.LittleEndian.PutUint64(b[12:20], uint64(m.size))
	binary.LittleEndian.PutUint32(b[20:24], m.chunkSize)
	binary.LittleEndian.PutUint32(b[24:28], m.chunkCount)
	binary.LittleEndian.PutUint64(b[28:36], m.hash)
	return b
}

// decodeManifest parses a manifest value, validating magic and geometry.
func decodeManifest(b []byte) (manifest, error) {
	if len(b) != manifestSize || [4]byte(b[0:4]) != manifestMagic {
		return manifest{}, errNotManifest
	}
	m := manifest{
		gen:        binary.LittleEndian.Uint64(b[4:12]),
		size:       int64(binary.LittleEndian.Uint64(b[12:20])),
		chunkSize:  binary.LittleEndian.Uint32(b[20:24]),
		chunkCount: binary.LittleEndian.Uint32(b[24:28]),
		hash:       binary.LittleEndian.Uint64(b[28:36]),
	}
	if m.size < 0 || m.chunkSize == 0 {
		return manifest{}, fmt.Errorf("%w: bad geometry", errNotManifest)
	}
	want := (m.size + int64(m.chunkSize) - 1) / int64(m.chunkSize)
	if int64(m.chunkCount) != want {
		return manifest{}, fmt.Errorf("%w: chunk count %d does not cover size %d at chunk size %d",
			errNotManifest, m.chunkCount, m.size, m.chunkSize)
	}
	return m, nil
}

// encodeChunkHeader writes the chunk header into b[0:chunkHeaderSize].
func encodeChunkHeader(b []byte, gen uint64, idx, payloadLen uint32) {
	copy(b[0:4], chunkMagic[:])
	binary.LittleEndian.PutUint64(b[4:12], gen)
	binary.LittleEndian.PutUint32(b[12:16], idx)
	binary.LittleEndian.PutUint32(b[16:20], payloadLen)
}

// decodeChunkHeader parses a chunk value's header and validates that the
// declared payload length matches the value size. The payload itself is
// b[chunkHeaderSize:].
func decodeChunkHeader(b []byte) (gen uint64, idx uint32, payload []byte, err error) {
	if len(b) < chunkHeaderSize || [4]byte(b[0:4]) != chunkMagic {
		return 0, 0, nil, errNotChunk
	}
	gen = binary.LittleEndian.Uint64(b[4:12])
	idx = binary.LittleEndian.Uint32(b[12:16])
	plen := binary.LittleEndian.Uint32(b[16:20])
	if int(plen) != len(b)-chunkHeaderSize {
		return 0, 0, nil, fmt.Errorf("%w: declared payload %d, have %d", errNotChunk, plen, len(b)-chunkHeaderSize)
	}
	return gen, idx, b[chunkHeaderSize:], nil
}
