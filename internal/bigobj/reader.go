// Range-read path: per-chunk fetch with active-reader pinning.
//
// A RangeReader pins every chunk of its span when it opens (refcounts in the
// store's pin table) and releases each chunk as the read advances past it —
// "the chunks it still needs", per ZNCache's active-reader tracking. Chunk
// bytes are attached to the pin at first fetch, so once a reader has seen a
// chunk, engine eviction cannot tear the in-flight read: the retained bytes
// serve the rest of that chunk (and any concurrent reader of the same
// generation). A chunk evicted *before* the reader reaches it fails the read
// with a clean, counted partial-object miss, and the manifest is dropped so
// the object misses whole from then on.
package bigobj

import (
	"fmt"
	"io"
)

// pinKey identifies one pinned chunk. The generation is part of the key so
// readers of an overwritten object never share pins (or bytes) with readers
// of the new version.
type pinKey struct {
	key string
	gen uint64
	idx uint32
}

// pin is one pin-table entry: a refcount of active readers that still need
// the chunk, plus the chunk payload once any of them has fetched it.
type pin struct {
	refs int
	data []byte
}

// RangeReader streams a byte range of one object. It is not safe for
// concurrent use by multiple goroutines (open one reader per goroutine);
// distinct readers over one Store are safe. Close must be called to release
// pinned chunks.
type RangeReader struct {
	s    *Store
	key  string
	man  manifest
	off  int64 // next absolute offset to read
	end  int64 // absolute end of the range, exclusive
	cur  uint32
	last uint32
	pins bool // chunks [cur..last] are pinned

	cacheIdx uint32
	cache    []byte // payload of chunk cacheIdx

	closed bool
	err    error // sticky read error
}

// NewRangeReader opens a reader over [off, off+length) of the object under
// key. length < 0 means "to the end of the object"; a range reaching past
// the tail is truncated at the tail. Opening an absent object returns
// ErrNotFound. The reader pins its chunk span until Close or until the read
// advances past each chunk.
func (s *Store) NewRangeReader(key string, off, length int64) (*RangeReader, error) {
	if off < 0 {
		return nil, fmt.Errorf("bigobj: negative offset %d", off)
	}
	s.opens.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	man, err := s.getManifest(key)
	if err != nil {
		s.objectMisses.Inc()
		return nil, err
	}
	end := man.size
	if length >= 0 && off+length < end {
		end = off + length
	}
	r := &RangeReader{s: s, key: key, man: man, off: off, end: end}
	if off < end {
		r.cur = uint32(off / int64(man.chunkSize))
		r.last = uint32((end - 1) / int64(man.chunkSize))
		r.pins = true
		for i := r.cur; i <= r.last; i++ {
			pk := pinKey{key: key, gen: man.gen, idx: i}
			p := s.pins[pk]
			if p == nil {
				p = &pin{}
				s.pins[pk] = p
			}
			p.refs++
		}
	}
	return r, nil
}

// Size returns the total object size recorded in the manifest.
func (r *RangeReader) Size() int64 { return r.man.size }

// Read implements io.Reader over the requested range.
func (r *RangeReader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, fmt.Errorf("bigobj: read on closed reader for %q", r.key)
	}
	if r.err != nil {
		return 0, r.err
	}
	if r.off >= r.end {
		return 0, io.EOF
	}
	if len(p) == 0 {
		return 0, nil
	}
	idx := uint32(r.off / int64(r.man.chunkSize))
	if r.cache == nil || r.cacheIdx != idx {
		if err := r.fetch(idx); err != nil {
			return 0, err
		}
	}
	chunkStart := int64(idx) * int64(r.man.chunkSize)
	rel := int(r.off - chunkStart)
	n := len(r.cache) - rel
	if rem := r.end - r.off; int64(n) > rem {
		n = int(rem)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.cache[rel:rel+n])
	r.off += int64(n)
	r.s.readBytes.Add(uint64(n))
	r.advance()
	return n, nil
}

// fetch loads chunk idx: from the pin table if a concurrent reader already
// retained it, else from the backend, validating generation, index, and
// payload length. Any failure drops the manifest (lazy repair), releases the
// reader's remaining pins, and sticks a partial-object error.
func (r *RangeReader) fetch(idx uint32) error {
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()

	pk := pinKey{key: r.key, gen: r.man.gen, idx: idx}
	if p := s.pins[pk]; p != nil && p.data != nil {
		s.chunkHits.Inc()
		r.cache, r.cacheIdx = p.data, idx
		return nil
	}

	fail := func(detail string) error {
		s.chunkMisses.Inc()
		s.partialMisses.Inc()
		s.dropManifest(r.key, r.man.gen)
		r.err = fmt.Errorf("%w: %q chunk %d: %s", ErrPartialObject, r.key, idx, detail)
		r.releaseLocked()
		return r.err
	}

	raw, ok, err := s.backend.Get(chunkKey(r.key, idx))
	if err != nil {
		return fail(fmt.Sprintf("backend: %v", err))
	}
	if !ok {
		return fail("missing (evicted, expired, or lost)")
	}
	gen, ci, payload, herr := decodeChunkHeader(raw)
	if herr != nil {
		return fail(herr.Error())
	}
	if gen != r.man.gen {
		return fail(fmt.Sprintf("generation %d, want %d (overwritten mid-read)", gen, r.man.gen))
	}
	if ci != idx {
		return fail(fmt.Sprintf("carries index %d", ci))
	}
	want := int64(r.man.chunkSize)
	if tail := r.man.size - int64(idx)*int64(r.man.chunkSize); tail < want {
		want = tail
	}
	if int64(len(payload)) != want {
		return fail(fmt.Sprintf("payload %d bytes, want %d (partially written)", len(payload), want))
	}
	s.chunkHits.Inc()
	if p := s.pins[pk]; p != nil {
		p.data = payload // retain for this reader and any concurrent ones
	}
	r.cache, r.cacheIdx = payload, idx
	return nil
}

// advance releases pins on chunks the read has fully passed.
func (r *RangeReader) advance() {
	if !r.pins {
		return
	}
	var upto uint32
	if r.off >= r.end {
		upto = r.last + 1
	} else {
		upto = uint32(r.off / int64(r.man.chunkSize))
	}
	if upto <= r.cur {
		return
	}
	s := r.s
	s.mu.Lock()
	for i := r.cur; i < upto && i <= r.last; i++ {
		s.unpinLocked(pinKey{key: r.key, gen: r.man.gen, idx: i})
	}
	s.mu.Unlock()
	r.cur = upto
	if r.cur > r.last {
		r.pins = false
	}
}

// releaseLocked drops the reader's remaining pins. Called with s.mu held.
func (r *RangeReader) releaseLocked() {
	if !r.pins {
		return
	}
	for i := r.cur; i <= r.last; i++ {
		r.s.unpinLocked(pinKey{key: r.key, gen: r.man.gen, idx: i})
	}
	r.pins = false
}

// Close releases any remaining pinned chunks. Safe to call twice.
func (r *RangeReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.s.mu.Lock()
	r.releaseLocked()
	r.s.mu.Unlock()
	r.cache = nil
	return nil
}

// unpinLocked decrements one pin and, at zero, retires the entry. If the pin
// retained chunk bytes that the engine has meanwhile evicted, that eviction
// was absorbed by the pin — count it. Called with mu held.
func (s *Store) unpinLocked(pk pinKey) {
	p := s.pins[pk]
	if p == nil {
		return
	}
	p.refs--
	if p.refs > 0 {
		return
	}
	if p.data != nil && !s.backend.Contains(chunkKey(pk.key, pk.idx)) {
		s.evictionsDeferred.Inc()
	}
	delete(s.pins, pk)
}

// ReadAt reads len(p) bytes at offset off into p, with io.ReaderAt
// semantics: a read reaching the object tail returns the bytes up to the
// tail and io.EOF; a missing object returns ErrNotFound; a broken object
// returns ErrPartialObject with no bytes from the broken chunk.
func (s *Store) ReadAt(key string, p []byte, off int64) (int, error) {
	rr, err := s.NewRangeReader(key, off, int64(len(p)))
	if err != nil {
		return 0, err
	}
	defer rr.Close()
	n := 0
	for n < len(p) {
		m, rerr := rr.Read(p[n:])
		n += m
		if rerr == io.EOF {
			return n, io.EOF
		}
		if rerr != nil {
			return n, rerr
		}
	}
	return n, nil
}
