package middle

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"znscache/internal/device"
	"znscache/internal/fault"
	"znscache/internal/flash"
	"znscache/internal/zns"
)

// newBudgetZNS builds the standard 32-zone test device with explicit
// open/active limits.
func newBudgetZNS(t *testing.T, maxOpen, maxActive int) *zns.Device {
	t.Helper()
	d, err := zns.New(zns.Config{
		Geometry: flash.Geometry{
			Channels: 2, DiesPerChan: 2, BlocksPerDie: 64,
			PagesPerBlock: 16, PageSize: device.SectorSize,
		},
		Timing:         flash.DefaultTiming(),
		BlocksPerZone:  8,
		MaxOpenZones:   maxOpen,
		MaxActiveZones: maxActive,
		StoreData:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// hogActiveSlot writes a sector into the device's last zone and closes it,
// leaving a closed zone that pins one unit of active budget without ever
// being in the middle layer's in-flight set (the placement pool drains from
// zone 0 upward, so short tests never touch it).
func hogActiveSlot(t *testing.T, dev *zns.Device) int {
	t.Helper()
	z := dev.NumZones() - 1
	off := int64(z) * dev.ZoneSize()
	if _, err := dev.Write(0, bytes.Repeat([]byte{0xEE}, device.SectorSize), device.SectorSize, off); err != nil {
		t.Fatalf("hog write: %v", err)
	}
	if err := dev.Close(z); err != nil {
		t.Fatalf("hog close: %v", err)
	}
	return z
}

// TestFlushStallsNotErrors is the budget-scheduling contract: with the
// active budget partly pinned elsewhere, region flushes that trip the
// device's zone-resource limits stall — the layer frees budget by finishing
// or closing another zone — and complete without surfacing an error.
func TestFlushStallsNotErrors(t *testing.T) {
	cases := []struct {
		name               string
		maxOpen, maxActive int
		openZones          int
		hog                bool
	}{
		// Active budget: 2 slots, one pinned by a foreign closed zone, so the
		// layer's second in-flight zone can only open after finishing the first.
		{"active-budget", 2, 2, 2, true},
		// Open cap below the in-flight set: every zone switch closes another
		// zone first (cheap juggling, no finishes required).
		{"open-cap", 1, 4, 2, false},
		// Both limits tight at once.
		{"open-and-active", 1, 2, 2, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dev := newBudgetZNS(t, tc.maxOpen, tc.maxActive)
			if tc.hog {
				hogActiveSlot(t, dev)
			}
			l, err := New(dev, Config{RegionSize: testRegion, OpenZones: tc.openZones, MinEmptyZones: 4})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			data := bytes.Repeat([]byte{0x5A}, testRegion)
			for id := 0; id < 12; id++ {
				if _, err := l.WriteRegion(0, id, data); err != nil {
					t.Fatalf("WriteRegion(%d) errored instead of stalling: %v", id, err)
				}
			}
			if got := l.BudgetStalls.Load(); got == 0 {
				t.Fatal("no budget stalls recorded; the limits were never hit")
			}
			if dev.OpenZones() > tc.maxOpen {
				t.Fatalf("open zones %d exceed cap %d", dev.OpenZones(), tc.maxOpen)
			}
			if dev.ActiveZones() > tc.maxActive {
				t.Fatalf("active zones %d exceed budget %d", dev.ActiveZones(), tc.maxActive)
			}
			if err := fault.CheckZoneContract(dev); err != nil {
				t.Fatal(err)
			}
			// Every region written must still be readable.
			got := make([]byte, testRegion)
			for id := 0; id < 12; id++ {
				if _, err := l.ReadRegion(0, id, got, testRegion, 0); err != nil {
					t.Fatalf("ReadRegion(%d): %v", id, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("region %d corrupted", id)
				}
			}
		})
	}
}

// TestActiveStallPaysFinishCost checks the stall accounting: freeing active
// budget finishes a partly-written zone, which costs real fill time that
// must land in StallTimeNs, the finish counter, and the flush's latency.
func TestActiveStallPaysFinishCost(t *testing.T) {
	dev := newBudgetZNS(t, 2, 2)
	hogActiveSlot(t, dev)
	l, err := New(dev, Config{RegionSize: testRegion, OpenZones: 2, MinEmptyZones: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	data := bytes.Repeat([]byte{0x5A}, testRegion)
	// First flush opens a zone; keep writing until a flush lands on the
	// other in-flight zone and must finish the first to free its slot.
	baseline, err := l.WriteRegion(0, 0, data)
	if err != nil {
		t.Fatalf("WriteRegion(0): %v", err)
	}
	var stalledLat int64
	for id := 1; id < 12 && l.BudgetStalls.Load() == 0; id++ {
		lat, err := l.WriteRegion(0, id, data)
		if err != nil {
			t.Fatalf("WriteRegion(%d): %v", id, err)
		}
		stalledLat = int64(lat)
	}
	if l.BudgetStalls.Load() == 0 {
		t.Fatal("no stall occurred")
	}
	if l.ZoneFinishes.Load() == 0 {
		t.Fatal("stall did not finish a zone")
	}
	if l.StallTimeNs.Load() == 0 {
		t.Fatal("stall time not recorded (finishing a partial zone must cost fill time)")
	}
	if dev.FinishFill.Load() == 0 {
		t.Fatal("device recorded no finish fill; the early finish was free")
	}
	if stalledLat <= int64(baseline) {
		t.Fatalf("stalled flush latency %d not above unstalled %d", stalledLat, baseline)
	}
}

// TestActiveStallResetsDeadZone checks the cheap path: when another in-flight
// zone's regions have all been invalidated, the layer frees budget by
// resetting it (returning it to the empty pool) instead of finishing it.
func TestActiveStallResetsDeadZone(t *testing.T) {
	dev := newBudgetZNS(t, 2, 2)
	hogActiveSlot(t, dev)
	l, err := New(dev, Config{RegionSize: testRegion, OpenZones: 2, MinEmptyZones: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	data := bytes.Repeat([]byte{0x5A}, testRegion)
	resetsBefore := dev.Resets.Load()
	// Write one region then evict it, leaving its zone dead in the in-flight
	// set; keep writing fresh regions (evicting each immediately so dead
	// zones stay available) until a stall fires.
	for id := 0; id < 12 && l.BudgetStalls.Load() == 0; id++ {
		if _, err := l.WriteRegion(0, id, data); err != nil {
			t.Fatalf("WriteRegion(%d): %v", id, err)
		}
		if _, err := l.EvictRegion(0, id); err != nil {
			t.Fatalf("EvictRegion(%d): %v", id, err)
		}
	}
	if l.BudgetStalls.Load() == 0 {
		t.Fatal("no stall occurred")
	}
	if l.ZoneFinishes.Load() != 0 {
		t.Fatalf("layer finished %d zones; dead zones should be reset, not finished",
			l.ZoneFinishes.Load())
	}
	if dev.Resets.Load() == resetsBefore {
		t.Fatal("no device reset despite dead in-flight zones")
	}
	if l.Resets.Load() != 0 {
		t.Fatalf("GC reset counter moved (%d); budget resets are not GC", l.Resets.Load())
	}
	if err := fault.CheckZoneContract(dev); err != nil {
		t.Fatal(err)
	}
}

// TestFlushResumesAfterExternalFree checks the hard-exhaustion edge: when
// the layer itself holds nothing it can free, the flush surfaces the
// device's budget error without corrupting state, and succeeds as soon as
// the external holder finishes or resets its zone.
func TestFlushResumesAfterExternalFree(t *testing.T) {
	for _, free := range []string{"finish", "reset"} {
		t.Run(free, func(t *testing.T) {
			dev := newBudgetZNS(t, 1, 1)
			hog := hogActiveSlot(t, dev)
			l, err := New(dev, Config{RegionSize: testRegion, OpenZones: 1, MinEmptyZones: 4})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			data := bytes.Repeat([]byte{0x77}, testRegion)
			if _, err := l.WriteRegion(0, 0, data); !errors.Is(err, zns.ErrTooManyActive) {
				t.Fatalf("WriteRegion with budget fully pinned: err = %v, want ErrTooManyActive", err)
			}
			// The failed flush must not have retired or corrupted anything.
			if l.ZoneFinishes.Load() != 0 || l.Abandoned.Load() != 0 {
				t.Fatalf("failed flush mutated zones: finishes=%d abandoned=%d",
					l.ZoneFinishes.Load(), l.Abandoned.Load())
			}
			switch free {
			case "finish":
				if _, err := dev.Finish(0, hog); err != nil {
					t.Fatalf("external finish: %v", err)
				}
			case "reset":
				if _, err := dev.Reset(0, hog); err != nil {
					t.Fatalf("external reset: %v", err)
				}
			}
			if _, err := l.WriteRegion(0, 0, data); err != nil {
				t.Fatalf("WriteRegion after external %s: %v", free, err)
			}
			got := make([]byte, testRegion)
			if _, err := l.ReadRegion(0, 0, got, testRegion, 0); err != nil {
				t.Fatalf("ReadRegion: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("region corrupted")
			}
			if err := fault.CheckZoneContract(dev); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentFlushesUnderBudget is the -race stress: many goroutines
// flushing (and evicting) regions over a device whose open cap and active
// budget both sit below the layer's configured concurrency. Every flush must
// complete, the limits must hold, and the zone contract must be clean.
func TestConcurrentFlushesUnderBudget(t *testing.T) {
	dev := newBudgetZNS(t, 2, 3)
	hogActiveSlot(t, dev)
	l, err := New(dev, Config{RegionSize: testRegion, OpenZones: 4, MinEmptyZones: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const (
		workers = 8
		perW    = 40
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte(w)}, testRegion)
			for i := 0; i < perW; i++ {
				id := w*perW + i
				if _, err := l.WriteRegion(0, id, data); err != nil {
					errCh <- fmt.Errorf("worker %d WriteRegion(%d): %w", w, id, err)
					return
				}
				// Evict a third of the regions to create dead slots (and the
				// occasional dead zone) while flushes race.
				if i%3 == 0 {
					if _, err := l.EvictRegion(0, id); err != nil {
						errCh <- fmt.Errorf("worker %d EvictRegion(%d): %w", w, id, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if dev.OpenZones() > 2 {
		t.Fatalf("open zones %d exceed cap 2", dev.OpenZones())
	}
	if dev.ActiveZones() > 3 {
		t.Fatalf("active zones %d exceed budget 3", dev.ActiveZones())
	}
	if l.BudgetStalls.Load() == 0 {
		t.Fatal("stress never stalled; budget pressure was not exercised")
	}
	if err := fault.CheckZoneContract(dev); err != nil {
		t.Fatal(err)
	}
	// Spot-check surviving regions.
	got := make([]byte, testRegion)
	for w := 0; w < workers; w++ {
		id := w*perW + 1 // never evicted (i%3 != 0)
		if _, err := l.ReadRegion(0, id, got, testRegion, 0); err != nil {
			t.Fatalf("ReadRegion(%d): %v", id, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(w)}, testRegion)) {
			t.Fatalf("region %d corrupted", id)
		}
	}
}
