package middle

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"znscache/internal/device"
	"znscache/internal/flash"
	"znscache/internal/sim"
	"znscache/internal/zns"
)

const testRegion = 4 * device.SectorSize // 16 KiB regions

// newZNS: 32 zones × 8 blocks × 16 pages × 4 KiB = 512 KiB zones, so 32
// regions-per-zone... actually 512 KiB / 16 KiB = 32 regions per zone.
func newZNS(t *testing.T, store bool) *zns.Device {
	t.Helper()
	d, err := zns.New(zns.Config{
		Geometry: flash.Geometry{
			Channels: 2, DiesPerChan: 2, BlocksPerDie: 64,
			PagesPerBlock: 16, PageSize: device.SectorSize,
		},
		Timing:        flash.DefaultTiming(),
		BlocksPerZone: 8,
		MaxOpenZones:  8,
		StoreData:     store,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newLayer(t *testing.T, store bool, mutate ...func(*Config)) *Layer {
	t.Helper()
	cfg := Config{RegionSize: testRegion, OpenZones: 2, MinEmptyZones: 4}
	for _, m := range mutate {
		m(&cfg)
	}
	l, err := New(newZNS(t, store), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return l
}

func TestNewValidation(t *testing.T) {
	dev := newZNS(t, false)
	if _, err := New(dev, Config{RegionSize: 1000}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unaligned region err = %v", err)
	}
	if _, err := New(dev, Config{RegionSize: 3 * device.SectorSize}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("non-dividing region err = %v", err)
	}
	if _, err := New(dev, Config{RegionSize: device.SectorSize}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bitmap overflow (128 rpz) err = %v", err)
	}
	if _, err := New(dev, Config{RegionSize: testRegion, NumRegions: 100000}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("overcommit err = %v", err)
	}
	if _, err := New(dev, Config{RegionSize: testRegion, OpenZones: 100}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("open zones above device cap err = %v", err)
	}
}

func TestDefaultCapacityLeavesOP(t *testing.T) {
	l := newLayer(t, false)
	totalRegions := l.Device().NumZones() * l.regionsPerZone
	if l.NumRegions() >= totalRegions {
		t.Fatalf("NumRegions %d leaves no OP (device holds %d)", l.NumRegions(), totalRegions)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	l := newLayer(t, true)
	want := bytes.Repeat([]byte{0x55}, testRegion)
	if _, err := l.WriteRegion(0, 7, want); err != nil {
		t.Fatalf("WriteRegion: %v", err)
	}
	got := make([]byte, device.SectorSize)
	if _, err := l.ReadRegion(0, 7, got, len(got), device.SectorSize); err != nil {
		t.Fatalf("ReadRegion: %v", err)
	}
	if !bytes.Equal(got, want[device.SectorSize:2*device.SectorSize]) {
		t.Fatal("round-trip mismatch")
	}
}

func TestReadUnmappedFails(t *testing.T) {
	l := newLayer(t, false)
	if _, err := l.ReadRegion(0, 3, nil, device.SectorSize, 0); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("unmapped read err = %v", err)
	}
}

func TestRewriteRelocatesRegion(t *testing.T) {
	l := newLayer(t, true)
	a := bytes.Repeat([]byte{1}, testRegion)
	b := bytes.Repeat([]byte{2}, testRegion)
	l.WriteRegion(0, 0, a)
	m1 := l.mapTable[0]
	l.WriteRegion(0, 0, b)
	m2 := l.mapTable[0]
	if m1 == m2 {
		t.Fatal("rewrite did not move the region (zones are append-only)")
	}
	got := make([]byte, device.SectorSize)
	l.ReadRegion(0, 0, got, len(got), 0)
	if !bytes.Equal(got, b[:device.SectorSize]) {
		t.Fatal("stale data after rewrite")
	}
	if l.MappedRegions() != 1 {
		t.Fatalf("MappedRegions = %d, want 1", l.MappedRegions())
	}
}

func TestEvictIsMetadataOnly(t *testing.T) {
	l := newLayer(t, false)
	l.WriteRegion(0, 0, nil)
	resets := l.Device().(*zns.Device).Resets.Load()
	lat, err := l.EvictRegion(0, 0)
	if err != nil || lat != 0 {
		t.Fatalf("EvictRegion = (%v, %v)", lat, err)
	}
	if l.MappedRegions() != 0 {
		t.Fatal("mapping survived eviction")
	}
	if l.Device().(*zns.Device).Resets.Load() != resets {
		t.Fatal("eviction touched the device")
	}
}

func TestMultipleOpenZones(t *testing.T) {
	l := newLayer(t, false, func(c *Config) { c.OpenZones = 4 })
	// Write a handful of regions; they must spread across several zones.
	for id := 0; id < 8; id++ {
		if _, err := l.WriteRegion(0, id, nil); err != nil {
			t.Fatal(err)
		}
	}
	zonesUsed := map[int]bool{}
	for _, m := range l.mapTable {
		zonesUsed[m.zone] = true
	}
	if len(zonesUsed) < 2 {
		t.Fatalf("writes landed in %d zone(s), want spread over several", len(zonesUsed))
	}
}

// churn drives region overwrites until GC has run at least once.
func churn(t *testing.T, l *Layer, rounds int) {
	t.Helper()
	rng := sim.NewRand(3)
	n := l.NumRegions()
	for i := 0; i < n*rounds; i++ {
		id := rng.Intn(n)
		if _, err := l.WriteRegion(0, id, nil); err != nil {
			t.Fatalf("churn write %d: %v", i, err)
		}
	}
}

func TestGCReclaimsZones(t *testing.T) {
	l := newLayer(t, false)
	churn(t, l, 4)
	if l.GCRuns.Load() == 0 {
		t.Fatal("GC never ran under churn")
	}
	if l.EmptyZones() == 0 {
		t.Fatal("GC failed to maintain empty zones")
	}
	if l.Resets.Load() == 0 {
		t.Fatal("no zone resets recorded")
	}
}

func TestGCWAAboveOneUnderChurn(t *testing.T) {
	l := newLayer(t, false)
	churn(t, l, 5)
	if wa := l.WA.Factor(); wa <= 1.0 {
		t.Fatalf("WA factor = %v, want > 1 (migrations)", wa)
	}
}

func TestGCPreservesRegionContent(t *testing.T) {
	l := newLayer(t, true)
	keep := bytes.Repeat([]byte{0xAB}, testRegion)
	l.WriteRegion(0, 0, keep)
	// Churn all other regions so GC migrates region 0 at least once.
	rng := sim.NewRand(9)
	for i := 0; i < l.NumRegions()*5; i++ {
		id := 1 + rng.Intn(l.NumRegions()-1)
		if _, err := l.WriteRegion(0, id, nil); err != nil {
			t.Fatal(err)
		}
	}
	if l.Migrated.Load() == 0 {
		t.Fatal("test vacuous: no migrations happened")
	}
	got := make([]byte, testRegion)
	if _, err := l.ReadRegion(0, 0, got, len(got), 0); err != nil {
		t.Fatalf("read after GC: %v", err)
	}
	if !bytes.Equal(got, keep) {
		t.Fatal("region content corrupted by GC")
	}
}

func TestMoreOPLowersWA(t *testing.T) {
	run := func(numRegions int) float64 {
		l, err := New(newZNS(t, false), Config{
			RegionSize: testRegion, OpenZones: 2, MinEmptyZones: 4,
			NumRegions: numRegions,
		})
		if err != nil {
			t.Fatal(err)
		}
		churn(t, l, 5)
		return l.WA.Factor()
	}
	total := 32 * 32 // zones × regions-per-zone
	tight := run(total * 85 / 100)
	loose := run(total * 60 / 100)
	if loose >= tight {
		t.Fatalf("WA with 40%% OP (%v) not below WA with 15%% OP (%v)", loose, tight)
	}
}

func TestCoDesignDropSkipsMigration(t *testing.T) {
	var dropped []int
	l := newLayer(t, false, func(c *Config) {
		c.DropFilter = func(int) bool { return true } // everything is cold
		c.OnDrop = func(id int) { dropped = append(dropped, id) }
	})
	churn(t, l, 4)
	if l.Dropped.Load() == 0 {
		t.Fatal("co-design filter never dropped a region")
	}
	if l.Migrated.Load() != 0 {
		t.Fatalf("migrations (%d) happened despite drop-all filter", l.Migrated.Load())
	}
	if len(dropped) == 0 {
		t.Fatal("OnDrop callback not invoked")
	}
	// With drop-all, WA stays at exactly 1: no migrated bytes.
	if wa := l.WA.Factor(); wa != 1.0 {
		t.Fatalf("WA = %v, want 1.0 with drop-all co-design", wa)
	}
}

func TestBitmapMatchesMappings(t *testing.T) {
	// Invariant: per-zone bitmap popcount == live mappings into that zone.
	if err := quick.Check(func(ops []uint16) bool {
		l, err := New(newZNS(t, false), Config{
			RegionSize: testRegion, OpenZones: 2, MinEmptyZones: 3,
		})
		if err != nil {
			return false
		}
		n := l.NumRegions()
		for _, op := range ops {
			id := int(op) % n
			if op%3 == 0 {
				l.EvictRegion(0, id)
			} else if _, err := l.WriteRegion(0, id, nil); err != nil {
				return false
			}
		}
		counts := make(map[int]int)
		for _, m := range l.mapTable {
			counts[m.zone]++
		}
		for z := range l.zones {
			pop := 0
			for s := 0; s < l.regionsPerZone; s++ {
				if l.zones[z].bitmap&(1<<uint(s)) != 0 {
					pop++
				}
			}
			if pop != counts[z] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEveryLiveRegionHasOneMapping(t *testing.T) {
	l := newLayer(t, false)
	churn(t, l, 3)
	// Each mapped region must point at a slot that references it back.
	for id, m := range l.mapTable {
		if l.zones[m.zone].regions[m.slot] != id {
			t.Fatalf("mapping inconsistency: region %d -> %+v but slot holds %d",
				id, m, l.zones[m.zone].regions[m.slot])
		}
	}
}
