// Package middle implements the paper's Region-Cache middle layer (§3.3,
// Figure 1c): a thin translation layer between CacheLib's region interface
// and the ZNS zone interface.
//
// Data management. Regions (e.g. 16 MiB) are packed into zones; the mapping
// region ID → (zone, slot) lives in an ordered map, and each zone carries a
// bitmap of valid region slots ("for a zone with 1024 MiB and 16 MiB
// regions, the bitmap will only cost 64 bits"). Rewriting a region deletes
// its old mapping and clears the old bitmap bit. Multiple zones are written
// concurrently — round-robin across OpenZones — because per-zone write
// bandwidth is below the device aggregate. A zone is finished when it has
// no space for another region.
//
// Garbage collection. A reclaim pass watches the empty-zone count; when it
// drops below MinEmptyZones (paper: 8), it selects a finished zone whose
// valid ratio is at or below VictimValidRatio (paper: 20%) — or failing
// that, the emptiest finished zone — migrates its live regions to open
// zones, and resets it. Migrated bytes are the layer's write amplification
// (Table 1's Region-Cache row). GC device traffic is issued "in the
// background": it occupies the device (delaying later host I/O through
// queueing) but is not charged to the host operation that triggered it.
//
// Co-design (§3.4). With a DropFilter installed, GC consults the cache
// before migrating each live region: a region the cache considers cold is
// dropped instead of copied ("not all the valid regions are needed to be
// migrated"), trading a slightly lower hit ratio for lower WA.
package middle

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"znscache/internal/cache"
	"znscache/internal/device"
	"znscache/internal/obs"
	"znscache/internal/sim"
	"znscache/internal/stats"
	"znscache/internal/zns"
)

// Errors returned by the middle layer.
var (
	ErrBadConfig = errors.New("middle: invalid configuration")
	ErrRegion    = errors.New("middle: region index out of range")
	ErrBounds    = errors.New("middle: access beyond region")
	ErrNotMapped = errors.New("middle: region not mapped")
	ErrNoSpace   = errors.New("middle: no writable zone available")
)

// Config parameterizes the layer.
type Config struct {
	// RegionSize is the region granularity (paper default 16 MiB).
	RegionSize int64
	// NumRegions is the cache capacity in regions. The gap between
	// NumRegions×RegionSize and the device capacity is the layer's
	// over-provisioning (Figure 4 sweeps it).
	NumRegions int
	// OpenZones is how many zones accept region writes concurrently
	// (default 4) — the multi-zone writing of §3.3.
	OpenZones int
	// MinEmptyZones triggers GC when the empty-zone pool drops below it
	// (paper: 8; default 4).
	MinEmptyZones int
	// VictimValidRatio is the preferred victim threshold: zones whose
	// valid-region ratio is at or below it are collected first (paper: 20%).
	VictimValidRatio float64
	// DropFilter, when non-nil, is the co-design hook: during GC it is
	// asked per live region whether the region may be dropped rather than
	// migrated. Dropped region IDs are reported through OnDrop.
	DropFilter func(regionID int) bool
	// OnDrop is invoked for every region GC dropped via DropFilter.
	OnDrop func(regionID int)
	// PlacementSeed seeds the open-zone selection noise (deterministic).
	PlacementSeed uint64
}

func (c *Config) fillDefaults() {
	if c.OpenZones == 0 {
		c.OpenZones = 4
	}
	if c.MinEmptyZones == 0 {
		c.MinEmptyZones = 4
	}
	if c.VictimValidRatio == 0 {
		c.VictimValidRatio = 0.20
	}
}

// mapping locates a region on the device.
type mapping struct {
	zone int
	slot int
}

// zoneMeta is the per-zone middle-layer state.
type zoneMeta struct {
	bitmap  uint64 // valid slots; regionsPerZone ≤ 64 enforced at build
	written int    // slots written so far (zone wp in region units)
	regions []int  // slot -> region ID (-1 when slot invalid)
}

// Layer is the middle layer; it implements cache.RegionStore.
type Layer struct {
	dev            zns.Zoned
	cfg            Config
	inFlight       int // openSet size cap: min(OpenZones, device active budget)
	regionsPerZone int

	mu       sync.Mutex
	mapTable map[int]mapping // region ID -> location
	zones    []zoneMeta
	empty    []int // zones with nothing written
	openSet  []int // zones currently accepting region writes
	rng      *sim.Rand
	full     map[int]struct{}
	scratch  []byte

	// Observability.
	WA       stats.WriteAmp // region bytes written by host vs device (incl. GC)
	GCRuns   stats.Counter
	Migrated stats.Counter // regions migrated by GC
	Dropped  stats.Counter // regions dropped by the co-design filter
	Resets   stats.Counter
	// Abandoned counts zones retired after a failed/torn write desynced
	// their write pointer from the slot accounting (fault injection).
	Abandoned stats.Counter
	// ZoneFinishes counts every finish the layer issues — exhausted zones
	// retired by placement, zones abandoned after faults, and zones finished
	// early to free the active budget.
	ZoneFinishes stats.Counter
	// BudgetStalls counts region writes that hit the device's open-zone cap
	// or active-zone budget and had to close, finish, or reset another zone
	// before they could proceed; StallTimeNs is the simulated time those
	// flushes spent waiting on that budget-freeing work.
	BudgetStalls stats.Counter
	StallTimeNs  stats.Counter
	// GCTimeNs accumulates simulated nanoseconds spent reclaiming zones
	// (migration reads/writes plus the zone reset) — the device-busy time GC
	// steals from foreground traffic.
	GCTimeNs stats.Counter
	// Trace receives GC victim/migrate/drop events; nil disables tracing.
	Trace *obs.Tracer
}

// New builds the layer over a ZNS device.
func New(dev zns.Zoned, cfg Config) (*Layer, error) {
	cfg.fillDefaults()
	if cfg.RegionSize <= 0 || cfg.RegionSize%device.SectorSize != 0 {
		return nil, fmt.Errorf("%w: region size %d", ErrBadConfig, cfg.RegionSize)
	}
	if dev.ZoneSize()%cfg.RegionSize != 0 {
		return nil, fmt.Errorf("%w: zone size %d not a multiple of region size %d",
			ErrBadConfig, dev.ZoneSize(), cfg.RegionSize)
	}
	rpz := int(dev.ZoneSize() / cfg.RegionSize)
	if rpz > 64 {
		return nil, fmt.Errorf("%w: %d regions per zone exceeds bitmap width 64", ErrBadConfig, rpz)
	}
	// OpenZones above the device's zone-resource budget is allowed — the
	// layer schedules around the budget at run time (closing, finishing, and
	// resetting zones to stay inside it), which is exactly the regime the
	// unwritten-contracts sweep measures. The in-flight set is still clamped
	// to the active budget: in-flight zones beyond it could never all hold
	// slots, they would only churn finishes.
	inFlight := cfg.OpenZones
	if b := dev.MaxActiveZones(); inFlight > b {
		inFlight = b
	}
	capRegions := dev.NumZones() * rpz
	if cfg.NumRegions == 0 {
		// Leave the GC watermark plus open zones as OP by default.
		cfg.NumRegions = capRegions - (cfg.MinEmptyZones+cfg.OpenZones)*rpz
	}
	// The layer needs headroom beyond the live regions: the open zones
	// accepting writes plus at least one zone of GC working space.
	minSlack := (cfg.OpenZones + 1) * rpz
	if cfg.NumRegions <= 0 || cfg.NumRegions > capRegions-minSlack {
		return nil, fmt.Errorf("%w: NumRegions %d must be in (0, %d] for %d-zone device",
			ErrBadConfig, cfg.NumRegions, capRegions-minSlack, dev.NumZones())
	}
	l := &Layer{
		dev:            dev,
		cfg:            cfg,
		inFlight:       inFlight,
		regionsPerZone: rpz,
		mapTable:       make(map[int]mapping),
		zones:          make([]zoneMeta, dev.NumZones()),
		full:           make(map[int]struct{}),
		rng:            sim.NewRand(cfg.PlacementSeed),
	}
	for z := range l.zones {
		l.zones[z].regions = make([]int, rpz)
		for s := range l.zones[z].regions {
			l.zones[z].regions[s] = -1
		}
	}
	for z := dev.NumZones() - 1; z >= 0; z-- {
		l.empty = append(l.empty, z)
	}
	return l, nil
}

// NumRegions implements cache.RegionStore.
func (l *Layer) NumRegions() int { return l.cfg.NumRegions }

// RegionSize implements cache.RegionStore.
func (l *Layer) RegionSize() int64 { return l.cfg.RegionSize }

// Device exposes the ZNS device for stats.
func (l *Layer) Device() zns.Zoned { return l.dev }

// EmptyZones reports the reclaimable-pool size (tests, zonectl).
func (l *Layer) EmptyZones() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.empty)
}

// MappedRegions reports how many regions currently have a location.
func (l *Layer) MappedRegions() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.mapTable)
}

// takeEmptyLocked pops an empty zone; returns -1 when none remain.
func (l *Layer) takeEmptyLocked() int {
	if len(l.empty) == 0 {
		return -1
	}
	z := l.empty[len(l.empty)-1]
	l.empty = l.empty[:len(l.empty)-1]
	return z
}

// writableZoneLocked returns an open zone with at least one free slot,
// opening a new zone from the empty pool as needed. Zones that fill are
// moved to the full set.
//
// The zone is chosen pseudo-randomly among the open set, not round-robin:
// with several flusher threads racing for zones (the concurrent multi-zone
// writing of §3.3), consecutive regions interleave irregularly across open
// zones. That placement noise is what leaves a few live regions behind in
// otherwise-dead zones and makes GC cost sensitive to the OP ratio
// (Table 1) — a perfectly round-robin placement would let region deaths
// drain zones in lockstep and hide that effect.
func (l *Layer) writableZoneLocked() (int, error) {
	for len(l.openSet) > 0 {
		idx := l.rng.Intn(len(l.openSet))
		z := l.openSet[idx]
		if l.zones[z].written < l.regionsPerZone {
			return z, nil
		}
		// Zone exhausted: finish it (release the device open slot) and
		// track it as a GC candidate.
		if _, err := l.dev.Finish(0, z); err != nil {
			return -1, err
		}
		l.ZoneFinishes.Inc()
		l.full[z] = struct{}{}
		l.openSet = append(l.openSet[:idx], l.openSet[idx+1:]...)
	}
	// Refill the open set, never beyond the device's active budget.
	for len(l.openSet) < l.inFlight {
		z := l.takeEmptyLocked()
		if z == -1 {
			break
		}
		l.openSet = append(l.openSet, z)
	}
	if len(l.openSet) == 0 {
		return -1, ErrNoSpace
	}
	return l.openSet[l.rng.Intn(len(l.openSet))], nil
}

// placeRegionLocked appends data as region id into a writable zone at time
// now, updating mapping and bitmap. Returns the device completion latency,
// including any time spent stalled on the device's zone-resource budget.
//
// A write rejected for zone resources (open cap or active budget) is not a
// fault: the flush stalls while the layer frees budget — closing another
// open zone, resetting a dead one, or finishing the fullest one — and then
// retries the same slot. The target zone is untouched by a budget rejection
// (the device refuses before moving the write pointer), so no abandonment
// is needed on that path.
//
// Any other failed device write may have advanced the zone's write pointer
// partway (a torn write), leaving the zone out of sync with the layer's slot
// accounting. The zone is abandoned — retired to the full set with its
// remaining slots unusable, so GC reclaims it later — and the error is
// returned; the caller's retry re-routes to a different zone.
func (l *Layer) placeRegionLocked(now time.Duration, id int, data []byte) (time.Duration, error) {
	z, err := l.writableZoneLocked()
	if err != nil {
		return 0, err
	}
	zm := &l.zones[z]
	slot := zm.written
	off := int64(z)*l.dev.ZoneSize() + int64(slot)*l.cfg.RegionSize
	var lat, stall time.Duration
	stalled := false
	// Two frees per in-flight zone bounds the juggle: each retry either
	// closes or retires one zone, and there are at most inFlight candidates.
	for attempt := 0; ; attempt++ {
		lat, err = l.dev.Write(now+stall, data, int(l.cfg.RegionSize), off)
		if err == nil {
			break
		}
		if errors.Is(err, zns.ErrTooManyOpen) || errors.Is(err, zns.ErrTooManyActive) {
			if attempt < 2*l.inFlight+2 {
				took, ferr := l.freeBudgetLocked(now+stall, z, errors.Is(err, zns.ErrTooManyActive))
				if ferr == nil {
					stalled = true
					stall += took
					continue
				}
			}
			// Budget exhausted and nothing freeable: the zone's state is
			// intact (the device rejected before writing), so surface the
			// error without retiring it.
			return 0, fmt.Errorf("middle: zone write: %w", err)
		}
		l.abandonZoneLocked(z)
		return 0, fmt.Errorf("middle: zone write: %w", err)
	}
	if stalled {
		l.BudgetStalls.Inc()
		l.StallTimeNs.Add(uint64(stall))
	}
	zm.written++
	zm.bitmap |= 1 << uint(slot)
	zm.regions[slot] = id
	l.mapTable[id] = mapping{zone: z, slot: slot}
	if zm.written == l.regionsPerZone {
		// Filled exactly: it transitioned to full on the device already.
		l.full[z] = struct{}{}
		for i, o := range l.openSet {
			if o == z {
				l.openSet = append(l.openSet[:i], l.openSet[i+1:]...)
				break
			}
		}
	}
	return stall + lat, nil
}

// freeBudgetLocked releases one unit of zone-resource budget so a stalled
// write to zone keep can proceed. Open-cap pressure is relieved by closing
// another in-flight zone (cheap: the zone stays writable and re-opens on its
// next write). Active-budget pressure needs a zone out of the open/closed
// states entirely: a dead in-flight zone (every slot already invalidated) is
// reset back to the empty pool for free; otherwise the fullest other
// in-flight zone is finished early — paying the device's fill cost and
// stranding its unwritten slots, the capacity-and-WA tax of running with
// fewer active zones than the layer wants. Returns the simulated time the
// freeing took, or an error when nothing can be freed.
func (l *Layer) freeBudgetLocked(now time.Duration, keep int, needActive bool) (time.Duration, error) {
	if !needActive {
		for _, z := range l.openSet {
			if z == keep {
				continue
			}
			info, err := l.dev.ZoneInfo(z)
			if err != nil || info.State != zns.ZoneOpen {
				continue
			}
			if err := l.dev.Close(z); err != nil {
				return 0, err
			}
			return 0, nil
		}
		return 0, fmt.Errorf("middle: open cap reached with no closable zone: %w", ErrNoSpace)
	}
	// A dead in-flight zone — written into, then every region invalidated —
	// frees its active slot by reset and rejoins the empty pool.
	for i, z := range l.openSet {
		if z == keep {
			continue
		}
		zm := &l.zones[z]
		if zm.written == 0 || zm.bitmap != 0 {
			continue
		}
		lat, err := l.dev.Reset(now, z)
		if err != nil {
			return 0, err
		}
		zm.written = 0
		for s := range zm.regions {
			zm.regions[s] = -1
		}
		l.openSet = append(l.openSet[:i], l.openSet[i+1:]...)
		l.empty = append(l.empty, z)
		return lat, nil
	}
	// Otherwise retire the fullest other in-flight zone: finishing the zone
	// with the least unwritten tail minimizes the fill cost and the stranded
	// slots.
	best := -1
	for _, z := range l.openSet {
		if z == keep || l.zones[z].written == 0 {
			continue
		}
		if best == -1 || l.zones[z].written > l.zones[best].written {
			best = z
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("middle: active budget exhausted with no reclaimable zone: %w", ErrNoSpace)
	}
	lat, err := l.dev.Finish(now, best)
	if err != nil {
		return 0, err
	}
	l.ZoneFinishes.Inc()
	l.zones[best].written = l.regionsPerZone // unwritten slots are stranded
	l.full[best] = struct{}{}
	for i, o := range l.openSet {
		if o == best {
			l.openSet = append(l.openSet[:i], l.openSet[i+1:]...)
			break
		}
	}
	return lat, nil
}

// abandonZoneLocked retires a zone whose device write pointer can no longer
// be trusted (a torn or failed write). Regions already placed in it remain
// readable at their slot offsets; the remaining slots are written off and
// the zone joins the GC candidates. Finish releases the device's open slot;
// if even that fails (crash), the bookkeeping still retires the zone so the
// layer never re-routes writes into it.
func (l *Layer) abandonZoneLocked(z int) {
	l.dev.Finish(0, z) //nolint:errcheck
	l.ZoneFinishes.Inc()
	zm := &l.zones[z]
	zm.written = l.regionsPerZone
	l.full[z] = struct{}{}
	l.Abandoned.Inc()
	for i, o := range l.openSet {
		if o == z {
			l.openSet = append(l.openSet[:i], l.openSet[i+1:]...)
			break
		}
	}
}

// invalidateLocked clears region id's mapping and bitmap bit if present.
func (l *Layer) invalidateLocked(id int) {
	m, ok := l.mapTable[id]
	if !ok {
		return
	}
	delete(l.mapTable, id)
	zm := &l.zones[m.zone]
	zm.bitmap &^= 1 << uint(m.slot)
	zm.regions[m.slot] = -1
}

// WriteRegion implements cache.RegionStore: invalidate any previous copy of
// the region, append the new copy to an open zone, then let the background
// collector catch up if the empty pool is low.
func (l *Layer) WriteRegion(now time.Duration, id int, data []byte) (time.Duration, error) {
	if id < 0 || id >= l.cfg.NumRegions {
		return 0, fmt.Errorf("%w: %d", ErrRegion, id)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.invalidateLocked(id)
	lat, err := l.placeRegionLocked(now, id, data)
	if err != nil {
		return 0, err
	}
	l.WA.AddHost(uint64(l.cfg.RegionSize))
	l.WA.AddMedia(uint64(l.cfg.RegionSize))
	// Background GC: issued at `now`, not charged to this host write.
	if err := l.collectLocked(now); err != nil {
		return 0, err
	}
	return lat, nil
}

// ReadRegion implements cache.RegionStore: mapping lookup, then one device
// read at zone base + slot offset + in-region offset.
func (l *Layer) ReadRegion(now time.Duration, id int, p []byte, n int, off int64) (time.Duration, error) {
	if id < 0 || id >= l.cfg.NumRegions {
		return 0, fmt.Errorf("%w: %d", ErrRegion, id)
	}
	if off < 0 || n < 0 || off+int64(n) > l.cfg.RegionSize {
		return 0, fmt.Errorf("%w: [%d,+%d)", ErrBounds, off, n)
	}
	l.mu.Lock()
	m, ok := l.mapTable[id]
	if !ok {
		l.mu.Unlock()
		return 0, fmt.Errorf("%w: %d", ErrNotMapped, id)
	}
	if p == nil {
		if cap(l.scratch) < n {
			l.scratch = make([]byte, n)
		}
		p = l.scratch[:n]
	}
	devOff := int64(m.zone)*l.dev.ZoneSize() + int64(m.slot)*l.cfg.RegionSize + off
	lat, err := l.dev.Read(now, p[:n], devOff)
	l.mu.Unlock()
	if err != nil {
		return 0, fmt.Errorf("middle: zone read: %w", err)
	}
	return lat, nil
}

// EvictRegion implements cache.RegionStore: purely a metadata operation —
// clear the mapping and bitmap bit. The space comes back when GC (or a
// whole-zone invalidation) reclaims the zone.
func (l *Layer) EvictRegion(now time.Duration, id int) (time.Duration, error) {
	if id < 0 || id >= l.cfg.NumRegions {
		return 0, fmt.Errorf("%w: %d", ErrRegion, id)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.invalidateLocked(id)
	return 0, nil
}

// collectLocked reclaims zones until the empty pool reaches the watermark.
// Wholly-dead zones are reset immediately (free reclaim); otherwise the
// victim with the lowest valid ratio is drained. Consecutive reclaims in one
// pass run back-to-back on the simulated timeline: each victim starts where
// the previous one (migrations and reset included) finished.
func (l *Layer) collectLocked(now time.Duration) error {
	for len(l.empty) < l.cfg.MinEmptyZones {
		victim, ok := l.pickVictimLocked()
		if !ok {
			return nil // nothing collectable yet
		}
		l.GCRuns.Inc()
		took, err := l.reclaimZoneLocked(now, victim)
		if err != nil {
			return err
		}
		l.GCTimeNs.Add(uint64(took))
		now += took
	}
	return nil
}

// pickVictimLocked chooses among finished zones: any zone at or below the
// valid-ratio threshold, else the emptiest one.
func (l *Layer) pickVictimLocked() (int, bool) {
	best, bestValid := -1, l.regionsPerZone+1
	for z := range l.full {
		v := bits.OnesCount64(l.zones[z].bitmap)
		if v < bestValid {
			best, bestValid = z, v
		}
	}
	if best == -1 {
		return -1, false
	}
	// The threshold is a preference, not a hard gate: when space runs out
	// the emptiest zone is taken regardless, like the paper's configurable
	// zone selection.
	if float64(bestValid) <= l.cfg.VictimValidRatio*float64(l.regionsPerZone) {
		return best, true
	}
	// Emergency: collect even expensive zones — but never a fully-valid one.
	// Migrating a zone with zero dead slots reclaims nothing: every region
	// is rewritten into the open zones and the "freed" zone must immediately
	// absorb the same data again, pure write amplification that can
	// ping-pong forever when the empty pool is down to its last zone.
	if len(l.empty) <= 1 && bestValid < l.regionsPerZone {
		return best, true
	}
	return best, bestValid == 0
}

// reclaimZoneLocked migrates (or co-design-drops) the victim's live regions
// and resets it, returning the simulated time the whole reclaim took —
// migration reads and writes plus the final zone reset, so callers and trace
// consumers see the full device-busy cost of the pass.
func (l *Layer) reclaimZoneLocked(now time.Duration, victim int) (time.Duration, error) {
	delete(l.full, victim)
	zm := &l.zones[victim]
	if l.Trace != nil {
		l.Trace.Emit(obs.Event{
			T: now, Type: obs.EvGCVictim, Zone: int32(victim), Region: -1,
			Bytes: int64(bits.OnesCount64(zm.bitmap)),
		})
	}
	cur := now
	for slot := 0; slot < l.regionsPerZone; slot++ {
		if zm.bitmap&(1<<uint(slot)) == 0 {
			continue
		}
		id := zm.regions[slot]
		// Co-design: ask the cache whether this region is worth keeping.
		if l.cfg.DropFilter != nil && l.cfg.DropFilter(id) {
			l.invalidateLocked(id)
			l.Dropped.Inc()
			if l.Trace != nil {
				l.Trace.Emit(obs.Event{T: cur, Type: obs.EvGCDrop, Zone: int32(victim), Region: int32(id)})
			}
			if l.cfg.OnDrop != nil {
				l.OnDropAsync(id)
			}
			continue
		}
		// Migrate: read the region and append it elsewhere. The old mapping
		// is cleared only after the new copy lands, so a failed migration
		// (injected error, crash) leaves the region readable in the victim
		// and the victim back in the GC candidates for a later retry.
		n := int(l.cfg.RegionSize)
		if cap(l.scratch) < n {
			l.scratch = make([]byte, n)
		}
		buf := l.scratch[:n]
		src := int64(victim)*l.dev.ZoneSize() + int64(slot)*l.cfg.RegionSize
		rlat, err := l.dev.Read(cur, buf, src)
		if err != nil {
			l.full[victim] = struct{}{}
			return 0, fmt.Errorf("middle: GC read: %w", err)
		}
		wlat, err := l.placeRegionLocked(cur+rlat, id, buf)
		if err != nil {
			l.full[victim] = struct{}{}
			return 0, fmt.Errorf("middle: GC write: %w", err)
		}
		// The old copy in the victim is dead now; clear its slot directly
		// (invalidateLocked would follow the map table to the new copy).
		zm.bitmap &^= 1 << uint(slot)
		zm.regions[slot] = -1
		cur += rlat + wlat
		l.WA.AddMedia(uint64(l.cfg.RegionSize))
		l.Migrated.Inc()
		if l.Trace != nil {
			l.Trace.Emit(obs.Event{
				T: cur, Type: obs.EvGCMigrate, Zone: int32(victim),
				Region: int32(id), Bytes: l.cfg.RegionSize,
			})
		}
	}
	// The reset's latency is part of the reclaim: fold it into cur so the
	// returned duration (and anything downstream of it — GC busy-time
	// accounting, back-to-back victim scheduling) covers the whole pass
	// instead of silently ending at the last migration.
	rlat, err := l.dev.Reset(cur, victim)
	if err != nil {
		l.full[victim] = struct{}{} // keep it collectable for a later retry
		return 0, fmt.Errorf("middle: GC reset: %w", err)
	}
	cur += rlat
	l.Resets.Inc()
	zm.bitmap = 0
	zm.written = 0
	for s := range zm.regions {
		zm.regions[s] = -1
	}
	l.empty = append(l.empty, victim)
	return cur - now, nil
}

// OnDropAsync invokes the drop callback outside the critical path contract;
// the current implementation calls it synchronously (single-threaded sim).
func (l *Layer) OnDropAsync(id int) {
	if l.cfg.OnDrop != nil {
		l.cfg.OnDrop(id)
	}
}

// MetricsInto implements obs.MetricSource: the layer's write amplification,
// GC activity counters, and pool-health gauges.
func (l *Layer) MetricsInto(r *obs.Registry, labels obs.Labels) {
	ls := labels.With("layer", "middle")
	r.WriteAmp("middle_wa", "Middle-layer write amplification", ls, &l.WA)
	r.Counter("middle_gc_runs_total", "GC reclaim passes", ls, &l.GCRuns)
	r.Counter("middle_gc_migrated_regions_total", "Live regions migrated by GC", ls, &l.Migrated)
	r.Counter("middle_gc_dropped_regions_total", "Regions dropped by the co-design filter", ls, &l.Dropped)
	r.Counter("middle_zone_resets_total", "Zones reclaimed (reset) by GC", ls, &l.Resets)
	r.Counter("middle_gc_busy_nanoseconds_total", "Simulated time spent in GC reclaim (migrations + resets)", ls, &l.GCTimeNs)
	r.Counter("middle_zones_abandoned_total", "Zones retired after a torn/failed write", ls, &l.Abandoned)
	r.Counter("middle_zone_finish_total", "Zone finishes issued by the layer (exhausted, abandoned, or budget-evicted zones)", ls, &l.ZoneFinishes)
	r.Counter("middle_budget_stall_total", "Region flushes stalled on the device zone-resource budget", ls, &l.BudgetStalls)
	r.Counter("middle_budget_stall_nanoseconds_total", "Simulated time flushes spent freeing zone-resource budget", ls, &l.StallTimeNs)
	r.Gauge("middle_empty_zones", "Zones in the reclaimable pool", ls, func() float64 {
		return float64(l.EmptyZones())
	})
	r.Gauge("middle_mapped_regions", "Regions with a live device mapping", ls, func() float64 {
		return float64(l.MappedRegions())
	})
}

// RegionReadableBytes implements the cache engine's recovery cross-check. A
// mapped region is fully readable at its slot (regions land with a single
// whole-region write, so a torn placement never leaves a mapping behind); an
// unmapped region — evicted, GC-dropped, or torn away after the snapshot was
// taken — has nothing readable.
func (l *Layer) RegionReadableBytes(id int) (int64, bool) {
	if id < 0 || id >= l.cfg.NumRegions {
		return 0, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.mapTable[id]; !ok {
		return 0, true
	}
	return l.cfg.RegionSize, true
}

// ZoneValidRatio reports the live fraction of a zone (tests, zonectl).
func (l *Layer) ZoneValidRatio(z int) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return float64(bits.OnesCount64(l.zones[z].bitmap)) / float64(l.regionsPerZone)
}

var _ cache.RegionStore = (*Layer)(nil)
