package middle

import (
	"testing"

	"znscache/internal/device"
	"znscache/internal/zns"
)

func TestPlacementDeterministicPerSeed(t *testing.T) {
	build := func(seed uint64) map[int]mapping {
		l, err := New(newZNS(t, false), Config{
			RegionSize: testRegion, OpenZones: 4, MinEmptyZones: 3,
			PlacementSeed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < 40; id++ {
			if _, err := l.WriteRegion(0, id, nil); err != nil {
				t.Fatal(err)
			}
		}
		out := map[int]mapping{}
		for id, m := range l.mapTable {
			out[id] = m
		}
		return out
	}
	a, b := build(7), build(7)
	for id, m := range a {
		if b[id] != m {
			t.Fatalf("same seed diverged at region %d: %v vs %v", id, m, b[id])
		}
	}
	c := build(8)
	same := true
	for id, m := range a {
		if c[id] != m {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical placement (noise missing)")
	}
}

func TestVictimThresholdPrefersCheapZones(t *testing.T) {
	l := newLayer(t, false, func(c *Config) {
		c.MinEmptyZones = 6
		c.VictimValidRatio = 0.20
	})
	// Write each region once: zones fill, empty pool shrinks, GC starts
	// collecting — but with every region still live, only the emergency
	// path may take valid-heavy zones. With ample empty zones remaining,
	// no migration should happen.
	for id := 0; id < l.NumRegions()/2; id++ {
		if _, err := l.WriteRegion(0, id, nil); err != nil {
			t.Fatal(err)
		}
	}
	if l.Migrated.Load() != 0 {
		t.Fatalf("GC migrated %d regions from fully-live zones with free space available",
			l.Migrated.Load())
	}
}

func TestEvictThenRewriteReusesSpaceViaGC(t *testing.T) {
	l := newLayer(t, false)
	n := l.NumRegions()
	// Two full passes of evict+rewrite over every region: the layer must
	// keep functioning purely by reclaiming dead zones.
	for pass := 0; pass < 2; pass++ {
		for id := 0; id < n; id++ {
			l.EvictRegion(0, id)
			if _, err := l.WriteRegion(0, id, nil); err != nil {
				t.Fatalf("pass %d region %d: %v", pass, id, err)
			}
		}
	}
	if l.MappedRegions() != n {
		t.Fatalf("mapped %d, want %d", l.MappedRegions(), n)
	}
	if l.Resets.Load() == 0 {
		t.Fatal("no zone was reclaimed across two full passes")
	}
}

func TestReadRegionPartialSpans(t *testing.T) {
	l := newLayer(t, true)
	data := make([]byte, testRegion)
	for i := range data {
		data[i] = byte(i / device.SectorSize)
	}
	l.WriteRegion(0, 3, data)
	// Read each sector individually and verify placement math.
	got := make([]byte, device.SectorSize)
	for s := 0; s < testRegion/device.SectorSize; s++ {
		if _, err := l.ReadRegion(0, 3, got, len(got), int64(s)*device.SectorSize); err != nil {
			t.Fatalf("sector %d: %v", s, err)
		}
		if got[0] != byte(s) {
			t.Fatalf("sector %d returned sector %d's data", s, got[0])
		}
	}
}

func TestDeviceWAIsAlwaysOne(t *testing.T) {
	// The ZNS device itself never amplifies: flash programs == host sectors
	// even while the middle layer migrates (its GC writes are host writes
	// from the device's perspective).
	l := newLayer(t, false)
	churn(t, l, 4)
	dev := l.Device().(*zns.Device)
	hostSectors := dev.HostWrites.Load() / uint64(device.SectorSize)
	if progs := dev.Array().Programs.Load(); progs != hostSectors {
		t.Fatalf("device programs %d != host sectors %d", progs, hostSectors)
	}
}
