package middle

import (
	"math/bits"
	"testing"

	"znscache/internal/device"
	"znscache/internal/zns"
)

func TestPlacementDeterministicPerSeed(t *testing.T) {
	build := func(seed uint64) map[int]mapping {
		l, err := New(newZNS(t, false), Config{
			RegionSize: testRegion, OpenZones: 4, MinEmptyZones: 3,
			PlacementSeed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < 40; id++ {
			if _, err := l.WriteRegion(0, id, nil); err != nil {
				t.Fatal(err)
			}
		}
		out := map[int]mapping{}
		for id, m := range l.mapTable {
			out[id] = m
		}
		return out
	}
	a, b := build(7), build(7)
	for id, m := range a {
		if b[id] != m {
			t.Fatalf("same seed diverged at region %d: %v vs %v", id, m, b[id])
		}
	}
	c := build(8)
	same := true
	for id, m := range a {
		if c[id] != m {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical placement (noise missing)")
	}
}

func TestVictimThresholdPrefersCheapZones(t *testing.T) {
	l := newLayer(t, false, func(c *Config) {
		c.MinEmptyZones = 6
		c.VictimValidRatio = 0.20
	})
	// Write each region once: zones fill, empty pool shrinks, GC starts
	// collecting — but with every region still live, only the emergency
	// path may take valid-heavy zones. With ample empty zones remaining,
	// no migration should happen.
	for id := 0; id < l.NumRegions()/2; id++ {
		if _, err := l.WriteRegion(0, id, nil); err != nil {
			t.Fatal(err)
		}
	}
	if l.Migrated.Load() != 0 {
		t.Fatalf("GC migrated %d regions from fully-live zones with free space available",
			l.Migrated.Load())
	}
}

func TestReclaimCountsResetLatency(t *testing.T) {
	// A wholly-dead victim needs no migrations, so the only simulated time a
	// reclaim can take is the zone reset itself. GCTimeNs must still move:
	// dropping the Reset latency would report a free reclaim.
	l := newLayer(t, false, func(c *Config) {
		c.OpenZones = 1
		c.MinEmptyZones = 31 // keep GC permanently eager
		c.NumRegions = 64
	})
	rpz := l.regionsPerZone
	for id := 0; id < rpz; id++ {
		if _, err := l.WriteRegion(0, id, nil); err != nil {
			t.Fatal(err)
		}
	}
	for id := 0; id < rpz; id++ {
		l.EvictRegion(0, id)
	}
	// The next write's GC pass finds the dead zone and resets it.
	if _, err := l.WriteRegion(0, rpz, nil); err != nil {
		t.Fatal(err)
	}
	if l.Resets.Load() == 0 {
		t.Fatal("test vacuous: GC never reset the dead zone")
	}
	if l.Migrated.Load() != 0 {
		t.Fatalf("migrated %d regions from a wholly-dead zone", l.Migrated.Load())
	}
	if l.GCTimeNs.Load() == 0 {
		t.Fatal("pure-reset reclaim recorded zero GC time (Reset latency dropped)")
	}
}

func TestEmergencyGCRefusesFullyValidVictim(t *testing.T) {
	// Fill two zones with live regions only, then starve the empty pool to
	// the emergency threshold. A fully-valid victim reclaims nothing —
	// migrating it is pure write amplification — so the picker must refuse
	// even in an emergency.
	l := newLayer(t, false, func(c *Config) { c.OpenZones = 1 })
	rpz := l.regionsPerZone
	for id := 0; id < 2*rpz; id++ {
		if _, err := l.WriteRegion(0, id, nil); err != nil {
			t.Fatal(err)
		}
	}
	if len(l.full) < 2 {
		t.Fatalf("test setup: %d full zones, want ≥ 2", len(l.full))
	}
	saved := l.empty
	l.empty = l.empty[:1]
	if _, ok := l.pickVictimLocked(); ok {
		t.Fatal("emergency GC picked a fully-valid zone (zero reclaimable slots)")
	}
	// With even one dead slot the emergency path must fire again.
	for z := range l.full {
		l.invalidateLocked(l.zones[z].regions[0])
		break
	}
	victim, ok := l.pickVictimLocked()
	if !ok {
		t.Fatal("emergency GC refused a zone with a reclaimable slot")
	}
	if v := bits.OnesCount64(l.zones[victim].bitmap); v == l.regionsPerZone {
		t.Fatalf("picked victim %d is fully valid", victim)
	}
	l.empty = saved
}

func TestEvictThenRewriteReusesSpaceViaGC(t *testing.T) {
	l := newLayer(t, false)
	n := l.NumRegions()
	// Two full passes of evict+rewrite over every region: the layer must
	// keep functioning purely by reclaiming dead zones.
	for pass := 0; pass < 2; pass++ {
		for id := 0; id < n; id++ {
			l.EvictRegion(0, id)
			if _, err := l.WriteRegion(0, id, nil); err != nil {
				t.Fatalf("pass %d region %d: %v", pass, id, err)
			}
		}
	}
	if l.MappedRegions() != n {
		t.Fatalf("mapped %d, want %d", l.MappedRegions(), n)
	}
	if l.Resets.Load() == 0 {
		t.Fatal("no zone was reclaimed across two full passes")
	}
}

func TestReadRegionPartialSpans(t *testing.T) {
	l := newLayer(t, true)
	data := make([]byte, testRegion)
	for i := range data {
		data[i] = byte(i / device.SectorSize)
	}
	l.WriteRegion(0, 3, data)
	// Read each sector individually and verify placement math.
	got := make([]byte, device.SectorSize)
	for s := 0; s < testRegion/device.SectorSize; s++ {
		if _, err := l.ReadRegion(0, 3, got, len(got), int64(s)*device.SectorSize); err != nil {
			t.Fatalf("sector %d: %v", s, err)
		}
		if got[0] != byte(s) {
			t.Fatalf("sector %d returned sector %d's data", s, got[0])
		}
	}
}

func TestDeviceWAIsAlwaysOne(t *testing.T) {
	// The ZNS device itself never amplifies: flash programs == host sectors
	// even while the middle layer migrates (its GC writes are host writes
	// from the device's perspective).
	l := newLayer(t, false)
	churn(t, l, 4)
	dev := l.Device().(*zns.Device)
	hostSectors := dev.HostWrites.Load() / uint64(device.SectorSize)
	if progs := dev.Array().Programs.Load(); progs != hostSectors {
		t.Fatalf("device programs %d != host sectors %d", progs, hostSectors)
	}
}
