package fault

import (
	"fmt"
	"sync"
	"time"

	"znscache/internal/device"
	"znscache/internal/zns"
)

// BlockDevice wraps a device.BlockDevice with fault injection. It is the
// layer Block-Cache's store sits on when faults are enabled.
type BlockDevice struct {
	inner device.BlockDevice
	inj   *Injector
}

// WrapBlock wraps dev with injector inj.
func WrapBlock(dev device.BlockDevice, inj *Injector) *BlockDevice {
	return &BlockDevice{inner: dev, inj: inj}
}

// Inner exposes the wrapped device.
func (d *BlockDevice) Inner() device.BlockDevice { return d.inner }

// ReadAt implements device.BlockDevice.
func (d *BlockDevice) ReadAt(now time.Duration, p []byte, off int64) (time.Duration, error) {
	dec := d.inj.decideRead()
	if dec.err != nil {
		return 0, dec.err
	}
	lat, err := d.inner.ReadAt(now, p, off)
	return lat + dec.spike, err
}

// WriteAt implements device.BlockDevice. Torn writes persist a prefix of
// the sectors before failing; the crashing write does the same and then
// seals the device.
func (d *BlockDevice) WriteAt(now time.Duration, data []byte, n int, off int64) (time.Duration, error) {
	dec := d.inj.decideWrite(n / device.SectorSize)
	if dec.err != nil {
		if k := dec.tornSectors; k > 0 {
			var prefix []byte
			if data != nil {
				prefix = data[:k*device.SectorSize]
			}
			d.inner.WriteAt(now, prefix, k*device.SectorSize, off) //nolint:errcheck
		}
		return 0, dec.err
	}
	lat, err := d.inner.WriteAt(now, data, n, off)
	return lat + dec.spike, err
}

// Discard implements device.BlockDevice.
func (d *BlockDevice) Discard(off, n int64) error {
	if dec := d.inj.decideReset(); dec.err != nil {
		return dec.err
	}
	return d.inner.Discard(off, n)
}

// Size implements device.BlockDevice.
func (d *BlockDevice) Size() int64 { return d.inner.Size() }

// TakeLastWriteStall forwards the inner device's foreground-GC stall report
// (the SyncCoster chain Block-Cache relies on); zero when the inner device
// does not track stalls.
func (d *BlockDevice) TakeLastWriteStall() time.Duration {
	if sr, ok := d.inner.(interface{ TakeLastWriteStall() time.Duration }); ok {
		return sr.TakeLastWriteStall()
	}
	return 0
}

var _ device.BlockDevice = (*BlockDevice)(nil)

// ZonedDevice wraps a zns.Zoned with fault injection and zone-contract
// auditing. Beyond injecting faults it records, after every operation, any
// violation of the written contract of a ZNS device: the write pointer must
// move monotonically between resets, never past the zone capacity, and
// reads must never have been served above it.
type ZonedDevice struct {
	inner zns.Zoned
	inj   *Injector

	mu         sync.Mutex
	lastWP     []int64 // bytes, per zone; -1 = unobserved
	violations []string
}

// maxViolations caps the recorded contract-violation log.
const maxViolations = 32

// WrapZoned wraps dev with injector inj.
func WrapZoned(dev zns.Zoned, inj *Injector) *ZonedDevice {
	wp := make([]int64, dev.NumZones())
	for i := range wp {
		wp[i] = -1
	}
	return &ZonedDevice{inner: dev, inj: inj, lastWP: wp}
}

// Inner exposes the wrapped device.
func (d *ZonedDevice) Inner() zns.Zoned { return d.inner }

// NumZones implements zns.Zoned.
func (d *ZonedDevice) NumZones() int { return d.inner.NumZones() }

// ZoneSize implements zns.Zoned.
func (d *ZonedDevice) ZoneSize() int64 { return d.inner.ZoneSize() }

// Size implements zns.Zoned.
func (d *ZonedDevice) Size() int64 { return d.inner.Size() }

// MaxOpenZones implements zns.Zoned.
func (d *ZonedDevice) MaxOpenZones() int { return d.inner.MaxOpenZones() }

// OpenZones implements zns.Zoned.
func (d *ZonedDevice) OpenZones() int { return d.inner.OpenZones() }

// MaxActiveZones implements zns.Zoned.
func (d *ZonedDevice) MaxActiveZones() int { return d.inner.MaxActiveZones() }

// ActiveZones implements zns.Zoned.
func (d *ZonedDevice) ActiveZones() int { return d.inner.ActiveZones() }

// ZoneInfo implements zns.Zoned.
func (d *ZonedDevice) ZoneInfo(z int) (zns.Zone, error) { return d.inner.ZoneInfo(z) }

// Close implements zns.Zoned.
func (d *ZonedDevice) Close(z int) error {
	if err := d.inj.decideMeta(); err != nil {
		return err
	}
	return d.inner.Close(z)
}

// zoneOf maps a device offset to its zone index.
func (d *ZonedDevice) zoneOf(off int64) int { return int(off / d.inner.ZoneSize()) }

// observe audits zone z's write pointer after an operation: it must not
// have moved backwards (afterReset expects exactly zero) nor past the zone
// capacity. Violations are recorded for CheckContract.
func (d *ZonedDevice) observe(z int, afterReset bool) {
	info, err := d.inner.ZoneInfo(z)
	if err != nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if info.WP < 0 || info.WP > d.inner.ZoneSize() {
		d.recordLocked("zone %d wp %d outside [0, %d]", z, info.WP, d.inner.ZoneSize())
	}
	if afterReset {
		if info.WP != 0 {
			d.recordLocked("zone %d wp %d after reset", z, info.WP)
		}
	} else if prev := d.lastWP[z]; prev >= 0 && info.WP < prev {
		d.recordLocked("zone %d wp moved backwards %d -> %d without reset", z, prev, info.WP)
	}
	d.lastWP[z] = info.WP
}

func (d *ZonedDevice) recordLocked(format string, args ...interface{}) {
	if len(d.violations) < maxViolations {
		d.violations = append(d.violations, fmt.Sprintf(format, args...))
	}
}

// Write implements zns.Zoned with write-error, torn-write, latency, and
// crash injection. A torn write forwards only a seeded prefix of the
// sectors, leaving the zone's write pointer mid-write — exactly the state a
// power cut leaves a real zone in.
func (d *ZonedDevice) Write(now time.Duration, data []byte, n int, off int64) (time.Duration, error) {
	dec := d.inj.decideWrite(n / device.SectorSize)
	if dec.err != nil {
		if k := dec.tornSectors; k > 0 {
			var prefix []byte
			if data != nil {
				prefix = data[:k*device.SectorSize]
			}
			d.inner.Write(now, prefix, k*device.SectorSize, off) //nolint:errcheck
			d.observe(d.zoneOf(off), false)
		}
		return 0, dec.err
	}
	lat, err := d.inner.Write(now, data, n, off)
	if err == nil {
		d.observe(d.zoneOf(off), false)
	}
	return lat + dec.spike, err
}

// Append implements zns.Zoned.
func (d *ZonedDevice) Append(now time.Duration, data []byte, n int, z int) (time.Duration, int64, error) {
	dec := d.inj.decideWrite(n / device.SectorSize)
	if dec.err != nil {
		if k := dec.tornSectors; k > 0 {
			var prefix []byte
			if data != nil {
				prefix = data[:k*device.SectorSize]
			}
			d.inner.Append(now, prefix, k*device.SectorSize, z) //nolint:errcheck
			d.observe(z, false)
		}
		return 0, 0, dec.err
	}
	lat, off, err := d.inner.Append(now, data, n, z)
	if err == nil {
		d.observe(z, false)
	}
	return lat + dec.spike, off, err
}

// Read implements zns.Zoned.
func (d *ZonedDevice) Read(now time.Duration, p []byte, off int64) (time.Duration, error) {
	dec := d.inj.decideRead()
	if dec.err != nil {
		return 0, dec.err
	}
	lat, err := d.inner.Read(now, p, off)
	return lat + dec.spike, err
}

// Reset implements zns.Zoned.
func (d *ZonedDevice) Reset(now time.Duration, z int) (time.Duration, error) {
	dec := d.inj.decideReset()
	if dec.err != nil {
		return 0, dec.err
	}
	lat, err := d.inner.Reset(now, z)
	if err == nil {
		d.observe(z, true)
	}
	return lat + dec.spike, err
}

// Finish implements zns.Zoned.
func (d *ZonedDevice) Finish(now time.Duration, z int) (time.Duration, error) {
	if err := d.inj.decideMeta(); err != nil {
		return 0, err
	}
	lat, err := d.inner.Finish(now, z)
	if err == nil {
		d.observe(z, false)
	}
	return lat, err
}

// CommitZRWA implements zns.ZRWACommitter when the inner device supports
// it. A commit is a write-class operation for injection purposes: it can
// fail, spike, tear (committing only a prefix of the requested sectors),
// or crash, mirroring what a power cut does to an in-flight commit.
func (d *ZonedDevice) CommitZRWA(now time.Duration, z int, upTo int64) (time.Duration, error) {
	zc, ok := d.inner.(zns.ZRWACommitter)
	if !ok {
		return 0, fmt.Errorf("fault: inner device has no ZRWA support")
	}
	info, err := d.inner.ZoneInfo(z)
	if err != nil {
		return 0, err
	}
	sectors := int((upTo - info.WP) / device.SectorSize)
	if sectors < 0 {
		sectors = 0
	}
	dec := d.inj.decideWrite(sectors)
	if dec.err != nil {
		if k := dec.tornSectors; k > 0 {
			zc.CommitZRWA(now, z, info.WP+int64(k)*device.SectorSize) //nolint:errcheck
			d.observe(z, false)
		}
		return 0, dec.err
	}
	lat, err := zc.CommitZRWA(now, z, upTo)
	if err == nil {
		d.observe(z, false)
	}
	return lat + dec.spike, err
}

// CheckContract returns an error describing every zone-contract violation
// the wrapper observed plus any static inconsistency in the current device
// state; nil when the contract held.
func (d *ZonedDevice) CheckContract() error {
	d.mu.Lock()
	recorded := append([]string(nil), d.violations...)
	d.mu.Unlock()
	if err := CheckZoneContract(d.inner); err != nil {
		recorded = append(recorded, err.Error())
	}
	if len(recorded) == 0 {
		return nil
	}
	return fmt.Errorf("fault: zone contract violated: %v", recorded)
}

var _ zns.Zoned = (*ZonedDevice)(nil)
