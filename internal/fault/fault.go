// Package fault injects device misbehaviour underneath the cache stack so
// the persistence story can be tested against more than a well-behaved
// simulator: transient read/write/reset errors, latency spikes, torn
// (partial) writes that leave a zone's write pointer mid-region, and crash
// points that make the device unreachable at a chosen write count —
// simulating process death with whatever happened to be durable at that
// instant.
//
// All decisions are drawn from one seeded PRNG, so a (seed, workload) pair
// replays the exact same fault schedule on every run and host — a failing
// crash-consistency seed is a reproducible bug report. The wrappers
// implement the same interfaces the real devices do (device.BlockDevice and
// zns.Zoned) and are threaded under all four schemes by harness.Build, so
// no layer above the device knows faults exist.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"znscache/internal/obs"
	"znscache/internal/sim"
	"znscache/internal/stats"
)

// Errors surfaced by injected faults.
var (
	// ErrInjected marks a transient injected failure; the operation may
	// succeed if retried.
	ErrInjected = errors.New("fault: injected device error")
	// ErrTorn marks a write that persisted only a prefix before failing.
	// It wraps ErrInjected (torn writes are retryable: the caller rewrites).
	ErrTorn = fmt.Errorf("%w: torn write", ErrInjected)
	// ErrCrash marks the crash point: the simulated process is dead and
	// every device operation fails until Revive. Not retryable.
	ErrCrash = errors.New("fault: device unreachable after simulated crash")
)

// Config parameterizes an Injector. All rates are per-operation
// probabilities in [0, 1]; zero disables that fault class.
type Config struct {
	// Seed drives every decision; runs with equal seeds and workloads see
	// identical fault schedules.
	Seed uint64
	// ReadErrorRate fails reads with ErrInjected.
	ReadErrorRate float64
	// WriteErrorRate fails writes with ErrInjected before any byte lands.
	WriteErrorRate float64
	// ResetErrorRate fails zone resets (and block discards) with ErrInjected.
	ResetErrorRate float64
	// TornWriteRate fails writes with ErrTorn after persisting a seeded
	// sector-aligned prefix — the distinctive ZNS hazard: the write pointer
	// advances partway and the zone no longer matches what any layer above
	// believes was written.
	TornWriteRate float64
	// LatencySpikeRate adds LatencySpike to an operation's service time,
	// modelling zone-management interference and pathological tail latency.
	LatencySpikeRate float64
	// LatencySpike is the added latency (default 2ms).
	LatencySpike time.Duration
	// CrashAfterWrites, when non-zero, makes the Nth device write operation
	// (and everything after it) fail with ErrCrash. The crashing write
	// itself persists a seeded prefix first — a torn final write.
	CrashAfterWrites uint64
}

func (c *Config) fillDefaults() {
	if c.LatencySpike == 0 {
		c.LatencySpike = 2 * time.Millisecond
	}
}

// Injector is the shared decision engine behind the device wrappers. One
// injector may back several wrapped devices; decisions are serialized, so
// the fault schedule is a function of the global operation order.
type Injector struct {
	mu      sync.Mutex
	cfg     Config
	rng     *sim.Rand
	writes  uint64
	crashed bool

	// Counters, exposed via MetricsInto as fault_injected_total.
	Injected   stats.Counter // all injected faults, every kind
	ReadErrs   stats.Counter
	WriteErrs  stats.Counter
	ResetErrs  stats.Counter
	TornWrites stats.Counter
	Spikes     stats.Counter
	Crashes    stats.Counter // ops refused because the device is crashed
}

// NewInjector builds an injector from cfg.
func NewInjector(cfg Config) *Injector {
	cfg.fillDefaults()
	return &Injector{cfg: cfg, rng: sim.NewRand(cfg.Seed)}
}

// Crashed reports whether the crash point has been reached.
func (i *Injector) Crashed() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// Revive lifts the crash condition: the recovery path re-attaches to the
// device after the simulated process restart. Fault rates stay armed; the
// write-count trigger does not re-fire.
func (i *Injector) Revive() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.crashed = false
	i.cfg.CrashAfterWrites = 0
}

// ArmCrash (re)arms the crash trigger: the device dies on the n-th write
// operation, counted from the injector's creation. The crash harness uses
// it to place the crash point after the snapshot cut, whose absolute write
// count it cannot know when the injector is built.
func (i *Injector) ArmCrash(afterWrites uint64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.cfg.CrashAfterWrites = afterWrites
}

// Writes returns how many device write operations the injector has seen.
func (i *Injector) Writes() uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.writes
}

// decision is the outcome of one operation's draw.
type decision struct {
	err   error
	spike time.Duration
	// tornSectors is the prefix persisted by a torn write, in sectors;
	// -1 means the full write proceeds.
	tornSectors int
}

// decideRead draws the fate of a read operation.
func (i *Injector) decideRead() decision {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		i.Crashes.Inc()
		return decision{err: ErrCrash, tornSectors: -1}
	}
	d := decision{tornSectors: -1}
	if i.cfg.ReadErrorRate > 0 && i.rng.Float64() < i.cfg.ReadErrorRate {
		i.Injected.Inc()
		i.ReadErrs.Inc()
		d.err = ErrInjected
		return d
	}
	d.spike = i.decideSpikeLocked()
	return d
}

// decideWrite draws the fate of a write of the given sector count. It also
// advances the crash trigger: the CrashAfterWrites-th write crashes the
// device, persisting a seeded prefix first.
func (i *Injector) decideWrite(sectors int) decision {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		i.Crashes.Inc()
		return decision{err: ErrCrash, tornSectors: 0}
	}
	i.writes++
	if i.cfg.CrashAfterWrites > 0 && i.writes >= i.cfg.CrashAfterWrites {
		i.crashed = true
		i.Injected.Inc()
		i.Crashes.Inc()
		// The dying write lands a random prefix: the torn final write a
		// real power cut leaves behind.
		return decision{err: ErrCrash, tornSectors: i.prefixLocked(sectors)}
	}
	d := decision{tornSectors: -1}
	if i.cfg.WriteErrorRate > 0 && i.rng.Float64() < i.cfg.WriteErrorRate {
		i.Injected.Inc()
		i.WriteErrs.Inc()
		d.err = ErrInjected
		d.tornSectors = 0
		return d
	}
	if i.cfg.TornWriteRate > 0 && i.rng.Float64() < i.cfg.TornWriteRate {
		i.Injected.Inc()
		i.TornWrites.Inc()
		d.err = ErrTorn
		d.tornSectors = i.prefixLocked(sectors)
		return d
	}
	d.spike = i.decideSpikeLocked()
	return d
}

// decideReset draws the fate of a reset/discard operation.
func (i *Injector) decideReset() decision {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		i.Crashes.Inc()
		return decision{err: ErrCrash, tornSectors: -1}
	}
	d := decision{tornSectors: -1}
	if i.cfg.ResetErrorRate > 0 && i.rng.Float64() < i.cfg.ResetErrorRate {
		i.Injected.Inc()
		i.ResetErrs.Inc()
		d.err = ErrInjected
		return d
	}
	d.spike = i.decideSpikeLocked()
	return d
}

// decideMeta gates metadata ops (finish, close, zone info writes) on the
// crash state only; they never fail transiently.
func (i *Injector) decideMeta() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		i.Crashes.Inc()
		return ErrCrash
	}
	return nil
}

func (i *Injector) decideSpikeLocked() time.Duration {
	if i.cfg.LatencySpikeRate > 0 && i.rng.Float64() < i.cfg.LatencySpikeRate {
		i.Injected.Inc()
		i.Spikes.Inc()
		return i.cfg.LatencySpike
	}
	return 0
}

// prefixLocked picks how many sectors of an n-sector write survive a torn
// write: uniform in [0, n).
func (i *Injector) prefixLocked(sectors int) int {
	if sectors <= 0 {
		return 0
	}
	return i.rng.Intn(sectors)
}

// MetricsInto implements obs.MetricSource: one fault_injected_total series
// per fault kind plus the all-kinds total, matching how the cache side
// counts the quarantines those faults cause.
func (i *Injector) MetricsInto(r *obs.Registry, labels obs.Labels) {
	ls := labels.With("layer", "fault")
	r.Counter("fault_injected_total", "Faults injected, all kinds", ls, &i.Injected)
	r.Counter("fault_injected_total", "Injected read errors", ls.With("kind", "read_error"), &i.ReadErrs)
	r.Counter("fault_injected_total", "Injected write errors", ls.With("kind", "write_error"), &i.WriteErrs)
	r.Counter("fault_injected_total", "Injected reset errors", ls.With("kind", "reset_error"), &i.ResetErrs)
	r.Counter("fault_injected_total", "Injected torn writes", ls.With("kind", "torn_write"), &i.TornWrites)
	r.Counter("fault_injected_total", "Injected latency spikes", ls.With("kind", "latency_spike"), &i.Spikes)
	r.Counter("fault_crash_refusals_total", "Operations refused after the crash point", ls, &i.Crashes)
}
