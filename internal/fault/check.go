package fault

import (
	"fmt"
	"strings"

	"znscache/internal/zns"
)

// CheckZoneContract audits a zoned device's visible state against the ZNS
// written contract — every write pointer within [0, zone size], empty zones
// at wp 0, full zones at wp == zone size, closed zones strictly between,
// no more open zones than the device's cap — and the zone-resource budget:
// open + closed zones must match the device's reported active count and
// stay within the active budget, which itself can never sit below the open
// cap. ZRWA bounds are audited per zone: pending window bytes only on
// open/closed zones, never beyond the window size or the zone end. Tests
// call it after any run that touched a zoned device; a non-nil error lists
// every violation.
//
// It deliberately takes the zns.Zoned interface so the same check runs
// against the raw device and against the fault wrapper (whose CheckContract
// additionally replays the per-operation monotonicity audit).
func CheckZoneContract(dev zns.Zoned) error {
	var bad []string
	size := dev.ZoneSize()
	open, active := 0, 0
	for z := 0; z < dev.NumZones(); z++ {
		info, err := dev.ZoneInfo(z)
		if err != nil {
			bad = append(bad, fmt.Sprintf("zone %d: info: %v", z, err))
			continue
		}
		if info.WP < 0 || info.WP > size {
			bad = append(bad, fmt.Sprintf("zone %d: wp %d outside [0, %d]", z, info.WP, size))
		}
		switch info.State {
		case zns.ZoneEmpty:
			if info.WP != 0 {
				bad = append(bad, fmt.Sprintf("zone %d: EMPTY with wp %d", z, info.WP))
			}
		case zns.ZoneFull:
			if info.WP != size {
				bad = append(bad, fmt.Sprintf("zone %d: FULL with wp %d != %d", z, info.WP, size))
			}
		case zns.ZoneOpen, zns.ZoneClosed:
			// A zone holding resources must have something in flight: a
			// nonzero write pointer, or (with ZRWA) bytes buffered in the
			// window ahead of a still-zero write pointer.
			if (info.WP == 0 && info.ZRWAPending == 0) || info.WP > size {
				bad = append(bad, fmt.Sprintf("zone %d: %v with wp %d and no pending window bytes",
					z, info.State, info.WP))
			}
			if info.State == zns.ZoneOpen {
				open++
			}
			active++
		default:
			bad = append(bad, fmt.Sprintf("zone %d: unknown state %v", z, info.State))
		}
		// ZRWA window bounds: pending bytes can only exist on a zone that is
		// holding resources, must fit the window, and must not run past the
		// zone end.
		if info.ZRWAPending < 0 {
			bad = append(bad, fmt.Sprintf("zone %d: negative zrwa pending %d", z, info.ZRWAPending))
		}
		if info.ZRWAPending > 0 {
			if info.ZRWAWindow == 0 {
				bad = append(bad, fmt.Sprintf("zone %d: zrwa pending %d without a window", z, info.ZRWAPending))
			}
			if info.State != zns.ZoneOpen && info.State != zns.ZoneClosed {
				bad = append(bad, fmt.Sprintf("zone %d: %v with zrwa pending %d", z, info.State, info.ZRWAPending))
			}
		}
		if info.ZRWAWindow > 0 && info.ZRWAPending > info.ZRWAWindow {
			bad = append(bad, fmt.Sprintf("zone %d: zrwa pending %d exceeds window %d", z, info.ZRWAPending, info.ZRWAWindow))
		}
		if info.ZRWAPending > 0 && info.WP+info.ZRWAPending > size {
			bad = append(bad, fmt.Sprintf("zone %d: zrwa pending %d past zone end (wp %d)", z, info.ZRWAPending, info.WP))
		}
	}
	if cap := dev.MaxOpenZones(); open > cap {
		bad = append(bad, fmt.Sprintf("%d zones open, cap %d", open, cap))
	}
	if got := dev.OpenZones(); got > dev.MaxOpenZones() {
		bad = append(bad, fmt.Sprintf("device reports %d open zones, cap %d", got, dev.MaxOpenZones()))
	}
	if budget := dev.MaxActiveZones(); budget < dev.MaxOpenZones() {
		bad = append(bad, fmt.Sprintf("active budget %d below open cap %d", budget, dev.MaxOpenZones()))
	}
	if budget := dev.MaxActiveZones(); active > budget {
		bad = append(bad, fmt.Sprintf("%d zones active, budget %d", active, budget))
	}
	if got := dev.ActiveZones(); got != active {
		bad = append(bad, fmt.Sprintf("device reports %d active zones, states say %d", got, active))
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("fault: zone contract violated:\n  %s", strings.Join(bad, "\n  "))
}
