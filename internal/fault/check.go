package fault

import (
	"fmt"
	"strings"

	"znscache/internal/zns"
)

// CheckZoneContract audits a zoned device's visible state against the ZNS
// written contract: every write pointer within [0, zone size], empty zones
// at wp 0, full zones at wp == zone size, closed zones strictly between,
// and no more open zones than the device's cap. Tests call it after any
// run that touched a zoned device; a non-nil error lists every violation.
//
// It deliberately takes the zns.Zoned interface so the same check runs
// against the raw device and against the fault wrapper (whose CheckContract
// additionally replays the per-operation monotonicity audit).
func CheckZoneContract(dev zns.Zoned) error {
	var bad []string
	size := dev.ZoneSize()
	open := 0
	for z := 0; z < dev.NumZones(); z++ {
		info, err := dev.ZoneInfo(z)
		if err != nil {
			bad = append(bad, fmt.Sprintf("zone %d: info: %v", z, err))
			continue
		}
		if info.WP < 0 || info.WP > size {
			bad = append(bad, fmt.Sprintf("zone %d: wp %d outside [0, %d]", z, info.WP, size))
		}
		switch info.State {
		case zns.ZoneEmpty:
			if info.WP != 0 {
				bad = append(bad, fmt.Sprintf("zone %d: EMPTY with wp %d", z, info.WP))
			}
		case zns.ZoneFull:
			if info.WP != size {
				bad = append(bad, fmt.Sprintf("zone %d: FULL with wp %d != %d", z, info.WP, size))
			}
		case zns.ZoneOpen, zns.ZoneClosed:
			if info.WP == 0 || info.WP > size {
				bad = append(bad, fmt.Sprintf("zone %d: %v with wp %d", z, info.State, info.WP))
			}
			if info.State == zns.ZoneOpen {
				open++
			}
		default:
			bad = append(bad, fmt.Sprintf("zone %d: unknown state %v", z, info.State))
		}
	}
	if cap := dev.MaxOpenZones(); open > cap {
		bad = append(bad, fmt.Sprintf("%d zones open, cap %d", open, cap))
	}
	if got := dev.OpenZones(); got > dev.MaxOpenZones() {
		bad = append(bad, fmt.Sprintf("device reports %d open zones, cap %d", got, dev.MaxOpenZones()))
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("fault: zone contract violated:\n  %s", strings.Join(bad, "\n  "))
}
