package fault

import (
	"errors"
	"testing"
	"time"

	"znscache/internal/device"
	"znscache/internal/flash"
	"znscache/internal/obs"
	"znscache/internal/zns"
)

// fakeBlock is a minimal block device recording the writes that reach it.
type fakeBlock struct {
	size   int64
	writes []int // sectors per write that landed
}

func (f *fakeBlock) ReadAt(now time.Duration, p []byte, off int64) (time.Duration, error) {
	return 0, nil
}

func (f *fakeBlock) WriteAt(now time.Duration, data []byte, n int, off int64) (time.Duration, error) {
	f.writes = append(f.writes, n/device.SectorSize)
	return 0, nil
}

func (f *fakeBlock) Discard(off, n int64) error { return nil }
func (f *fakeBlock) Size() int64                { return f.size }

// schedule runs a fixed op sequence through a wrapped fake device and
// returns the per-op error outcomes.
func schedule(inj *Injector, ops int) []error {
	dev := WrapBlock(&fakeBlock{size: 1 << 20}, inj)
	buf := make([]byte, 4*device.SectorSize)
	out := make([]error, 0, 2*ops)
	for i := 0; i < ops; i++ {
		_, err := dev.WriteAt(0, buf, len(buf), 0)
		out = append(out, err)
		_, err = dev.ReadAt(0, buf[:device.SectorSize], 0)
		out = append(out, err)
	}
	return out
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	cfg := Config{Seed: 42, ReadErrorRate: 0.2, WriteErrorRate: 0.2, TornWriteRate: 0.2}
	a := schedule(NewInjector(cfg), 200)
	b := schedule(NewInjector(cfg), 200)
	faults := 0
	for i := range a {
		if !errors.Is(a[i], ErrInjected) && a[i] != nil {
			t.Fatalf("op %d: unexpected error class %v", i, a[i])
		}
		if (a[i] == nil) != (b[i] == nil) || (a[i] != nil && a[i].Error() != b[i].Error()) {
			t.Fatalf("same seed diverged at op %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] != nil {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no faults fired at 20% rates over 400 ops")
	}
	cfg.Seed = 43
	c := schedule(NewInjector(cfg), 200)
	same := true
	for i := range a {
		if (a[i] == nil) != (c[i] == nil) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical fault schedule")
	}
}

func TestTornWritePersistsPrefix(t *testing.T) {
	fb := &fakeBlock{size: 1 << 20}
	dev := WrapBlock(fb, NewInjector(Config{Seed: 7, TornWriteRate: 1}))
	buf := make([]byte, 8*device.SectorSize)
	sawPrefix := false
	for i := 0; i < 64 && !sawPrefix; i++ {
		_, err := dev.WriteAt(0, buf, len(buf), 0)
		if !errors.Is(err, ErrTorn) {
			t.Fatalf("write %d: err = %v, want ErrTorn", i, err)
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatal("ErrTorn must wrap ErrInjected (torn writes are retryable)")
		}
		for _, sectors := range fb.writes {
			if sectors <= 0 || sectors >= 8 {
				t.Fatalf("torn prefix of %d sectors escaped [1, 7]", sectors)
			}
			sawPrefix = true
		}
		fb.writes = nil
	}
	if !sawPrefix {
		t.Fatal("64 torn writes never persisted a non-empty prefix")
	}
}

func TestCrashReviveAndArm(t *testing.T) {
	fb := &fakeBlock{size: 1 << 20}
	inj := NewInjector(Config{Seed: 3, CrashAfterWrites: 3})
	dev := WrapBlock(fb, inj)
	buf := make([]byte, device.SectorSize)
	for i := 0; i < 2; i++ {
		if _, err := dev.WriteAt(0, buf, len(buf), 0); err != nil {
			t.Fatalf("pre-crash write %d: %v", i, err)
		}
	}
	if _, err := dev.WriteAt(0, buf, len(buf), 0); !errors.Is(err, ErrCrash) {
		t.Fatalf("3rd write err = %v, want ErrCrash", err)
	}
	if !inj.Crashed() {
		t.Fatal("injector not crashed after the trigger write")
	}
	// Everything fails while crashed, including reads and discards.
	if _, err := dev.ReadAt(0, buf, 0); !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash read err = %v", err)
	}
	if err := dev.Discard(0, device.SectorSize); !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash discard err = %v", err)
	}

	inj.Revive()
	if inj.Crashed() {
		t.Fatal("Revive left the injector crashed")
	}
	for i := 0; i < 8; i++ {
		if _, err := dev.WriteAt(0, buf, len(buf), 0); err != nil {
			t.Fatalf("post-revive write %d: %v (trigger must not re-fire)", i, err)
		}
	}

	// Re-arm relative to the current absolute write count.
	inj.ArmCrash(inj.Writes() + 2)
	if _, err := dev.WriteAt(0, buf, len(buf), 0); err != nil {
		t.Fatalf("write before re-armed crash: %v", err)
	}
	if _, err := dev.WriteAt(0, buf, len(buf), 0); !errors.Is(err, ErrCrash) {
		t.Fatalf("re-armed crash write err = %v, want ErrCrash", err)
	}
}

// badZoned wraps a healthy device but lies about one zone's state, so the
// invariant checker has a real violation to catch.
type badZoned struct {
	zns.Zoned
}

func (b *badZoned) ZoneInfo(z int) (zns.Zone, error) {
	info, err := b.Zoned.ZoneInfo(z)
	if z == 0 && err == nil {
		info.State = zns.ZoneEmpty
		info.WP = b.ZoneSize() + 1 // empty zone with an out-of-range WP
	}
	return info, err
}

func TestCheckZoneContractDetectsViolation(t *testing.T) {
	dev, err := zns.New(zns.Config{
		Geometry: flash.Geometry{
			Channels: 2, DiesPerChan: 2, BlocksPerDie: 16,
			PagesPerBlock: 16, PageSize: device.SectorSize,
		},
		Timing:        flash.DefaultTiming(),
		BlocksPerZone: 4, MaxOpenZones: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckZoneContract(dev); err != nil {
		t.Fatalf("healthy device flagged: %v", err)
	}
	if err := CheckZoneContract(&badZoned{Zoned: dev}); err == nil {
		t.Fatal("checker missed an empty zone with wp past the zone size")
	}
}

func TestInjectorMetricsExposed(t *testing.T) {
	inj := NewInjector(Config{Seed: 1, WriteErrorRate: 1})
	dev := WrapBlock(&fakeBlock{size: 1 << 20}, inj)
	buf := make([]byte, device.SectorSize)
	for i := 0; i < 5; i++ {
		if _, err := dev.WriteAt(0, buf, len(buf), 0); !errors.Is(err, ErrInjected) {
			t.Fatalf("write %d err = %v", i, err)
		}
	}
	reg := obs.NewRegistry()
	inj.MetricsInto(reg, obs.Labels{})
	total, byKind := -1.0, -1.0
	for _, s := range reg.Gather() {
		if s.Name != "fault_injected_total" {
			continue
		}
		if k := s.Labels.Get("kind"); k == "" {
			total = s.Value
		} else if k == "write_error" {
			byKind = s.Value
		}
	}
	if total != 5 || byKind != 5 {
		t.Fatalf("fault_injected_total = %v (write_error %v), want 5 and 5", total, byKind)
	}
}
